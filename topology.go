// topology.go exposes the interaction-topology layer of the public API. The
// paper's model (§1.1) runs on the complete interaction graph — every
// ordered pair of distinct agents may interact — but self-stabilizing
// leader election is topology-sensitive (the ring changes both achievable
// time and protocol design, arXiv:2009.10926), so Config.Topology lets
// every protocol run on an arbitrary directed interaction graph: the
// scheduler then samples uniformly from the graph's edge set instead of
// from [n]². The complete topology (the zero value) keeps the exact
// historical code path — the plain uniform scheduler, zero per-interaction
// overhead, bit-identical schedules — so existing configurations are
// untouched.
//
// Non-complete topologies compose with everything agent-level: run options,
// recordings (stored as edge indices), Ensemble grids (Grid.Topologies),
// adversarial starts and transient faults. The species backend is the one
// exception: it samples state pairs from counts, so agent adjacency does
// not exist there and combining it with a non-complete topology fails fast
// (see the capability table, DESIGN.md §9).

package sspp

import (
	"fmt"
	"strconv"
	"strings"

	"sspp/internal/graph"
	"sspp/internal/rng"
	"sspp/internal/sim"
)

// topoSeedSalt decorrelates the topology-generation stream from the
// protocol seed, so the random-graph draw and the protocol's internal
// randomness never share a stream.
const topoSeedSalt = 0x7071_6C6F_9E37_79B9

// Topology names an interaction-graph family for Config.Topology. The zero
// value is the complete graph of the paper's model; the other families are
// built per population by the constructors below (Ring, Torus2D,
// RandomRegular, ErdosRenyi, NewTopology). Random families are
// deterministic per (n, seed): a System draws its graph from Config.Seed,
// so a run is reproducible from its Config alone.
type Topology struct {
	name string
	// build materializes the graph for n agents; nil marks the complete
	// topology, which is never materialized (the uniform scheduler IS it).
	build func(n int, seed uint64) (*graph.Graph, error)
}

// Complete returns the complete-graph topology of the paper's model: every
// ordered pair of distinct agents is an interaction-graph edge. This is the
// zero value of Topology, and the default.
func Complete() Topology { return Topology{} }

// Ring returns the bidirectional ring topology: agent i interacts with
// i±1 mod n only. The topology of the ring leader-election literature
// (arXiv:2009.10926).
func Ring() Topology {
	return Topology{name: "ring", build: func(n int, _ uint64) (*graph.Graph, error) {
		return graph.Ring(n)
	}}
}

// Torus2D returns the two-dimensional torus topology over the most nearly
// square w×h factorization of n (a prime n degenerates to the ring).
func Torus2D() Topology {
	return Topology{name: "torus", build: func(n int, _ uint64) (*graph.Graph, error) {
		return graph.Torus2D(n)
	}}
}

// RandomRegular returns a connected random d-regular topology (the union of
// ⌊d/2⌋ uniform Hamiltonian cycles, plus a perfect matching when d is odd —
// which then requires an even population). The graph is drawn
// deterministically from the system's seed.
func RandomRegular(d int) Topology {
	return Topology{name: fmt.Sprintf("random-regular(%d)", d),
		build: func(n int, seed uint64) (*graph.Graph, error) {
			return graph.RandomRegular(n, d, seed)
		}}
}

// ErdosRenyi returns the G(n, p) topology: every unordered agent pair is
// adjacent independently with probability p, drawn deterministically from
// the system's seed. Unlike the other families the result is not guaranteed
// connected — below the ln(n)/n threshold it usually is not, and no
// protocol can stabilize across components; check System.TopologyConnected
// before spending a budget on one.
func ErdosRenyi(p float64) Topology {
	return Topology{name: fmt.Sprintf("erdos-renyi(%g)", p),
		build: func(n int, seed uint64) (*graph.Graph, error) {
			return graph.ErdosRenyi(n, p, seed)
		}}
}

// NewTopology builds a user topology from an explicit edge generator: edges
// returns the directed edge list for a population of n agents (at least one
// edge, endpoints in [0, n), no self-loops; an edge (a, b) lets a initiate
// with b responding — emit both orientations for symmetric adjacency). The
// generator must be deterministic in (n, seed) for runs to be reproducible.
func NewTopology(name string, edges func(n int, seed uint64) [][2]int) Topology {
	if name == "" {
		name = "custom"
	}
	return Topology{name: name, build: func(n int, seed uint64) (*graph.Graph, error) {
		if edges == nil {
			return nil, fmt.Errorf("sspp: topology %q has a nil edge generator", name)
		}
		return graph.FromEdges(name, n, edges(n, seed))
	}}
}

// Name returns the topology's family name ("complete" for the zero value).
func (t Topology) Name() string {
	if t.build == nil {
		return "complete"
	}
	return t.name
}

// ParseTopology maps a topology name back to a Topology: the inverse of
// Name for every built-in family, so topology names round-trip through JSON
// exports, grid specs (cmd/sppd) and command-line flags. Both parameter
// spellings are accepted — the Name() form ("random-regular(8)",
// "erdos-renyi(0.1)") and the flag form cmd/benchtab historically used
// ("random-regular=8", "erdos-renyi=0.1"). "" parses as the complete graph.
// User topologies built with NewTopology carry arbitrary names and cannot be
// reconstructed from one.
func ParseTopology(name string) (Topology, error) {
	parseArg := func(family string) (string, bool) {
		if rest, ok := strings.CutPrefix(name, family+"("); ok {
			if arg, ok := strings.CutSuffix(rest, ")"); ok {
				return arg, true
			}
			return "", false
		}
		return strings.CutPrefix(name, family+"=")
	}
	switch {
	case name == "" || name == "complete":
		return Complete(), nil
	case name == "ring":
		return Ring(), nil
	case name == "torus":
		return Torus2D(), nil
	case strings.HasPrefix(name, "random-regular"):
		arg, ok := parseArg("random-regular")
		if !ok {
			return Topology{}, fmt.Errorf("sspp: malformed random-regular topology %q (want random-regular(D))", name)
		}
		d, err := strconv.Atoi(arg)
		if err != nil {
			return Topology{}, fmt.Errorf("sspp: bad random-regular degree in %q: %v", name, err)
		}
		return RandomRegular(d), nil
	case strings.HasPrefix(name, "erdos-renyi"):
		arg, ok := parseArg("erdos-renyi")
		if !ok {
			return Topology{}, fmt.Errorf("sspp: malformed erdos-renyi topology %q (want erdos-renyi(P))", name)
		}
		p, err := strconv.ParseFloat(arg, 64)
		if err != nil {
			return Topology{}, fmt.Errorf("sspp: bad erdos-renyi density in %q: %v", name, err)
		}
		return ErdosRenyi(p), nil
	default:
		return Topology{}, fmt.Errorf("sspp: unknown topology %q (want complete, ring, torus, random-regular(D) or erdos-renyi(P))", name)
	}
}

// IsComplete reports whether the topology is the complete graph — the
// paper's model, run on the zero-overhead uniform-scheduler fast path.
func (t Topology) IsComplete() bool { return t.build == nil }

// String returns the topology's name.
func (t Topology) String() string { return t.Name() }

// materialize builds the interaction graph for a population of n agents,
// deriving the graph seed from the protocol seed. Returns (nil, nil) for
// the complete topology.
func (t Topology) materialize(n int, seed uint64) (*graph.Graph, error) {
	if t.build == nil {
		return nil, nil
	}
	g, err := t.build(n, seed^topoSeedSalt)
	if err != nil {
		return nil, fmt.Errorf("sspp: topology %q: %w", t.Name(), err)
	}
	return g, nil
}

// Topology returns the system's interaction topology name and, for
// non-complete topologies, the materialized graph's edge count (0 for
// complete — the complete graph is never materialized).
func (s *System) Topology() (name string, edges int) {
	if s.graph == nil {
		return "complete", 0
	}
	return s.cfg.Topology.Name(), s.graph.M()
}

// Sampler returns a Scheduler dealing this system's interaction topology
// from the given seed: the uniform scheduler of the paper's model for the
// complete topology (identical to NewUniform(seed)), or a sampler over the
// system's materialized edge set otherwise. Use it to drive Run via
// WithScheduler when the schedule must be captured (NewRecorder) or shared
// across runs; Run's SchedulerSeed path constructs exactly this scheduler
// internally.
func (s *System) Sampler(seed uint64) Scheduler {
	if s.graph == nil {
		return rng.New(seed)
	}
	return sim.NewEdgeSampler(s.graph, rng.New(seed))
}

// TopologyConnected reports whether the system's materialized interaction
// graph is connected (always true for the complete topology). A protocol
// cannot stabilize globally on a disconnected graph — check this before
// burning a budget on an ErdosRenyi topology below the ln(n)/n threshold.
func (s *System) TopologyConnected() bool {
	return s.graph == nil || s.graph.Connected()
}

// topologize adapts a scheduler to the system's topology. Complete-topology
// systems return the scheduler as is — the historical fast path, bit for
// bit. On a non-complete topology a uniform PRNG stream is re-bound as the
// edge-index source (the pairs it would deal from [n]² are not graph
// edges), and topology-aware schedules — an EdgeSampler from Sampler, a
// Recorder around one, an edge-indexed replay — pass through unchanged.
// Anything else deals pairs from [n]², which would silently simulate the
// complete graph under a topology label, so it is an error — mirroring the
// species backend's scheduler contract.
func (s *System) topologize(sched Scheduler) (Scheduler, error) {
	if s.graph == nil {
		return sched, nil
	}
	if src, ok := sched.(*rng.PRNG); ok {
		if s.clockMode == ClockContinuous || s.clockMode == ClockContinuousExact {
			// Under the continuous clocks the scheduler carries the event
			// clock itself: the next-reaction scheduler deals the same
			// uniform-edge jump chain in distribution and timestamps every
			// deal, starting from the parallel time already accrued.
			return sim.NewNextReaction(s.graph, src, s.ParallelTime()), nil
		}
		return sim.NewEdgeSampler(s.graph, src), nil
	}
	if gs, ok := sched.(sim.GraphScheduler); ok && gs.Graph() != nil {
		// The schedule must belong to THIS graph: a recording from another
		// population or family would deal out-of-range or off-graph pairs
		// under this system's topology label.
		if !gs.Graph().Same(s.graph) {
			return nil, fmt.Errorf("sspp: scheduler %T samples a different interaction graph "+
				"(%q over %d agents, %d edges) than this system's %q (%d agents, %d edges)",
				sched, gs.Graph().Name(), gs.Graph().N(), gs.Graph().M(),
				s.cfg.Topology.Name(), s.graph.N(), s.graph.M())
		}
		return sched, nil
	}
	return nil, fmt.Errorf("sspp: scheduler %T deals pairs from [n]², not from the %q edge set — "+
		"use SchedulerSeed, System.Sampler, or a recording captured from one", sched, s.cfg.Topology.Name())
}
