package sspp

import (
	"testing"
)

// TestBatchDealsUniformSchedule: the batched scheduler is a drop-in for the
// uniform one — identical seed, identical pair sequence.
func TestBatchDealsUniformSchedule(t *testing.T) {
	const n = 48
	uni := NewUniform(9)
	batch := NewBatch(9, 64)
	for i := 0; i < 10_000; i++ {
		ua, ub := uni.Pair(n)
		ba, bb := batch.Pair(n)
		if ua != ba || ub != bb {
			t.Fatalf("pair %d diverges: uniform (%d,%d) vs batch (%d,%d)", i, ua, ub, ba, bb)
		}
	}
}

// TestBatchRunMatchesUniformRun: a full protocol run is identical under
// both schedulers.
func TestBatchRunMatchesUniformRun(t *testing.T) {
	run := func(sched Scheduler) (Result, string) {
		sys, err := New(Config{N: 16, R: 4, Seed: 61})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Inject(AdversaryTriggered, 62); err != nil {
			t.Fatal(err)
		}
		return sys.Run(WithScheduler(sched)), sys.Events()
	}
	ru, eu := run(NewUniform(63))
	rb, eb := run(NewBatch(63, 0))
	if ru != rb || eu != eb {
		t.Fatalf("batch diverges from uniform: %+v/%s vs %+v/%s", ru, eu, rb, eb)
	}
}

// TestSchedulersDealValidPairs: every scheduler produces ordered pairs of
// distinct in-range agents.
func TestSchedulersDealValidPairs(t *testing.T) {
	const n = 12
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = float64(i + 1)
	}
	scheds := map[string]Scheduler{
		"uniform":  NewUniform(1),
		"batch":    NewBatch(2, 16),
		"zipf":     NewZipf(3, n, 0.8),
		"weighted": NewWeighted(4, weights),
	}
	for name, s := range scheds {
		for i := 0; i < 5000; i++ {
			a, b := s.Pair(n)
			if a < 0 || a >= n || b < 0 || b >= n || a == b {
				t.Fatalf("%s: invalid pair (%d, %d)", name, a, b)
			}
		}
	}
}

// TestRecordReplayReproducesRun: a schedule captured with a Recorder and
// replayed on a fresh identical system reproduces the identical trajectory
// — the reproducible-trace workflow.
func TestRecordReplayReproducesRun(t *testing.T) {
	build := func() *System {
		sys, err := New(Config{N: 16, R: 4, Seed: 65})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Inject(AdversaryTwoLeaders, 66); err != nil {
			t.Fatal(err)
		}
		return sys
	}
	rec := NewRecorder(NewZipf(67, 16, 0.5)) // non-uniform: replay must capture it
	first := build()
	res1 := first.Run(WithScheduler(rec))
	if !res1.Stabilized {
		t.Fatal("recorded run did not stabilize")
	}
	recording := rec.Recording()
	if recording.Len() == 0 || uint64(recording.Len()) != res1.Interactions {
		t.Fatalf("recording holds %d pairs, run executed %d", recording.Len(), res1.Interactions)
	}
	second := build()
	res2 := second.Run(WithScheduler(recording.Replay()))
	if res1 != res2 {
		t.Fatalf("replayed result %+v differs from recorded %+v", res2, res1)
	}
	r1, r2 := first.Ranks(), second.Ranks()
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("replayed ranks diverge at agent %d", i)
		}
	}
	if first.Events() != second.Events() {
		t.Fatalf("replayed events diverge:\n%s\n%s", first.Events(), second.Events())
	}
}

// TestReplayWrapsAround: a consumer that outruns the recording cycles back
// to its start instead of failing.
func TestReplayWrapsAround(t *testing.T) {
	rec := NewRecorder(NewUniform(68))
	const n = 8
	for i := 0; i < 5; i++ {
		rec.Pair(n)
	}
	replay := rec.Recording().Replay()
	var first [5][2]int
	for i := 0; i < 5; i++ {
		first[i][0], first[i][1] = replay.Pair(n)
	}
	for i := 0; i < 5; i++ {
		a, b := replay.Pair(n)
		if a != first[i][0] || b != first[i][1] {
			t.Fatalf("wrap-around pair %d = (%d,%d), want (%d,%d)", i, a, b, first[i][0], first[i][1])
		}
	}
}

// TestZipfSkewsContactRates: larger s concentrates interactions on
// low-index agents (sanity of the non-uniform model behind T16).
func TestZipfSkewsContactRates(t *testing.T) {
	const n = 16
	counts := make([]int, n)
	z := NewZipf(69, n, 1.2)
	for i := 0; i < 40_000; i++ {
		a, b := z.Pair(n)
		counts[a]++
		counts[b]++
	}
	if counts[0] <= counts[n-1] {
		t.Fatalf("no skew: agent 0 saw %d, agent %d saw %d", counts[0], n-1, counts[n-1])
	}
}
