package sspp

import (
	"bytes"
	"strings"
	"testing"
)

// TestBatchDealsUniformSchedule: the batched scheduler is a drop-in for the
// uniform one — identical seed, identical pair sequence.
func TestBatchDealsUniformSchedule(t *testing.T) {
	const n = 48
	uni := NewUniform(9)
	batch := NewBatch(9, 64)
	for i := 0; i < 10_000; i++ {
		ua, ub := uni.Pair(n)
		ba, bb := batch.Pair(n)
		if ua != ba || ub != bb {
			t.Fatalf("pair %d diverges: uniform (%d,%d) vs batch (%d,%d)", i, ua, ub, ba, bb)
		}
	}
}

// TestBatchRunMatchesUniformRun: a full protocol run is identical under
// both schedulers.
func TestBatchRunMatchesUniformRun(t *testing.T) {
	run := func(sched Scheduler) (Result, string) {
		sys, err := New(Config{N: 16, R: 4, Seed: 61})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Inject(AdversaryTriggered, 62); err != nil {
			t.Fatal(err)
		}
		return sys.Run(WithScheduler(sched)), sys.Events()
	}
	ru, eu := run(NewUniform(63))
	rb, eb := run(NewBatch(63, 0))
	if ru != rb || eu != eb {
		t.Fatalf("batch diverges from uniform: %+v/%s vs %+v/%s", ru, eu, rb, eb)
	}
}

// TestSchedulersDealValidPairs: every scheduler produces ordered pairs of
// distinct in-range agents.
func TestSchedulersDealValidPairs(t *testing.T) {
	const n = 12
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = float64(i + 1)
	}
	scheds := map[string]Scheduler{
		"uniform":  NewUniform(1),
		"batch":    NewBatch(2, 16),
		"zipf":     NewZipf(3, n, 0.8),
		"weighted": NewWeighted(4, weights),
	}
	for name, s := range scheds {
		for i := 0; i < 5000; i++ {
			a, b := s.Pair(n)
			if a < 0 || a >= n || b < 0 || b >= n || a == b {
				t.Fatalf("%s: invalid pair (%d, %d)", name, a, b)
			}
		}
	}
}

// TestRecordReplayReproducesRun: a schedule captured with a Recorder and
// replayed on a fresh identical system reproduces the identical trajectory
// — the reproducible-trace workflow.
func TestRecordReplayReproducesRun(t *testing.T) {
	build := func() *System {
		sys, err := New(Config{N: 16, R: 4, Seed: 65})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Inject(AdversaryTwoLeaders, 66); err != nil {
			t.Fatal(err)
		}
		return sys
	}
	rec := NewRecorder(NewZipf(67, 16, 0.5)) // non-uniform: replay must capture it
	first := build()
	res1 := first.Run(WithScheduler(rec))
	if !res1.Stabilized {
		t.Fatal("recorded run did not stabilize")
	}
	recording := rec.Recording()
	if recording.Len() == 0 || uint64(recording.Len()) != res1.Interactions {
		t.Fatalf("recording holds %d pairs, run executed %d", recording.Len(), res1.Interactions)
	}
	second := build()
	res2 := second.Run(WithScheduler(recording.Replay()))
	if res1 != res2 {
		t.Fatalf("replayed result %+v differs from recorded %+v", res2, res1)
	}
	r1, r2 := first.Ranks(), second.Ranks()
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("replayed ranks diverge at agent %d", i)
		}
	}
	if first.Events() != second.Events() {
		t.Fatalf("replayed events diverge:\n%s\n%s", first.Events(), second.Events())
	}
}

// TestReplayWrapsAround: a consumer that outruns the recording cycles back
// to its start instead of failing.
func TestReplayWrapsAround(t *testing.T) {
	rec := NewRecorder(NewUniform(68))
	const n = 8
	for i := 0; i < 5; i++ {
		rec.Pair(n)
	}
	replay := rec.Recording().Replay()
	var first [5][2]int
	for i := 0; i < 5; i++ {
		first[i][0], first[i][1] = replay.Pair(n)
	}
	for i := 0; i < 5; i++ {
		a, b := replay.Pair(n)
		if a != first[i][0] || b != first[i][1] {
			t.Fatalf("wrap-around pair %d = (%d,%d), want (%d,%d)", i, a, b, first[i][0], first[i][1])
		}
	}
}

// TestRecordingEncodeDecodeRoundTrip: a recording archived through the
// versioned wire format and decoded back replays the identical trajectory,
// in pair mode (complete topology) and edge-indexed mode (ring, random
// regular graph) alike — and re-encoding the decoded recording reproduces
// the archive byte-for-byte.
func TestRecordingEncodeDecodeRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"complete", Config{N: 16, R: 4, Seed: 71}},
		{"ring", Config{Protocol: ProtocolNameRank, N: 16, Seed: 3, Topology: Ring()}},
		{"random-regular", Config{N: 16, R: 4, Seed: 1, Topology: RandomRegular(8)}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			build := func() *System {
				sys, err := New(c.cfg)
				if err != nil {
					t.Fatal(err)
				}
				return sys
			}
			var sched Scheduler = NewUniform(73) // pair mode on the complete topology
			if !c.cfg.Topology.IsComplete() {
				sched = build().Sampler(73) // edge-indexed mode
			}
			rec := NewRecorder(sched)
			first := build()
			res1 := first.Run(WithScheduler(rec))
			if !res1.Stabilized {
				t.Fatal("recorded run did not stabilize")
			}
			var buf bytes.Buffer
			if err := rec.Recording().Encode(&buf); err != nil {
				t.Fatal(err)
			}
			archived := buf.String()
			decoded, err := DecodeRecording(strings.NewReader(archived))
			if err != nil {
				t.Fatal(err)
			}
			if decoded.Len() != rec.Recording().Len() {
				t.Fatalf("decoded %d interactions, recorded %d", decoded.Len(), rec.Recording().Len())
			}
			var again bytes.Buffer
			if err := decoded.Encode(&again); err != nil {
				t.Fatal(err)
			}
			if again.String() != archived {
				t.Fatal("re-encoding the decoded recording changed the archive bytes")
			}
			second := build()
			res2 := second.Run(WithScheduler(decoded.Replay()))
			if res1 != res2 {
				t.Fatalf("archived replay %+v differs from recorded %+v", res2, res1)
			}
			if first.Events() != second.Events() {
				t.Fatalf("archived replay events diverge:\n%s\n%s", first.Events(), second.Events())
			}
		})
	}
}

// TestRecordingGoldenWire pins the version-1 wire layout byte-for-byte: the
// golden archives below must keep decoding (and re-encoding to the identical
// bytes) for as long as the engine accepts version 1 — discrete recordings
// still encode as version 1, so the re-encode checks double as a guard that
// the version 2 (timed) extension never perturbs archived discrete bytes.
func TestRecordingGoldenWire(t *testing.T) {
	if RecordingVersion != 2 {
		t.Fatalf("RecordingVersion = %d; the golden archives pin versions 1-2", RecordingVersion)
	}
	golden := map[string]struct {
		wire string
		len  int
	}{
		"complete": {
			wire: `{"version":1,"pairs":[0,1,2,3,1,0]}` + "\n",
			len:  3,
		},
		"ring": {
			wire: `{"version":1,"topology":"ring","n":4,"edge_list":[[0,1],[1,0],[1,2],[2,1],[2,3],[3,2],[3,0],[0,3]],"edges":[0,3,5,2]}` + "\n",
			len:  4,
		},
		"random-regular": {
			wire: `{"version":1,"topology":"random-regular","n":5,"edge_list":[[0,2],[2,0],[1,3],[3,1],[2,4],[4,2],[0,4],[4,0],[1,2],[2,1]],"edges":[8,0,7,4,1]}` + "\n",
			len:  5,
		},
	}
	for name, g := range golden {
		name, g := name, g
		t.Run(name, func(t *testing.T) {
			rec, err := DecodeRecording(strings.NewReader(g.wire))
			if err != nil {
				t.Fatal(err)
			}
			if rec.Len() != g.len {
				t.Fatalf("decoded %d interactions, want %d", rec.Len(), g.len)
			}
			var buf bytes.Buffer
			if err := rec.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			if buf.String() != g.wire {
				t.Fatalf("re-encoded archive drifted from the golden bytes:\n got %q\nwant %q", buf.String(), g.wire)
			}
			// The decoded schedule deals real pairs.
			replay := rec.Replay()
			for i := 0; i < g.len; i++ {
				a, b := replay.Pair(5)
				if a < 0 || b < 0 || a == b {
					t.Fatalf("golden pair %d invalid: (%d, %d)", i, a, b)
				}
			}
		})
	}
}

// TestDecodeRecordingRejectsBadArchives: unknown versions and internally
// inconsistent payloads fail the decode up front.
func TestDecodeRecordingRejectsBadArchives(t *testing.T) {
	bad := map[string]string{
		"future version": `{"version":3,"pairs":[0,1]}`,
		"timeless v2":    `{"version":2,"pairs":[0,1]}`,
		"mixed modes":    `{"version":1,"topology":"ring","n":4,"edge_list":[[0,1]],"edges":[0],"pairs":[0,1]}`,
		"odd pairs":      `{"version":1,"pairs":[0,1,2]}`,
		"negative pair":  `{"version":1,"pairs":[0,-1]}`,
		"edge index out": `{"version":1,"topology":"ring","n":4,"edge_list":[[0,1],[1,0]],"edges":[2]}`,
		"self-loop edge": `{"version":1,"topology":"ring","n":4,"edge_list":[[1,1]],"edges":[0]}`,
		"not json":       `schedule`,
	}
	for name, wire := range bad {
		if _, err := DecodeRecording(strings.NewReader(wire)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestZipfSkewsContactRates: larger s concentrates interactions on
// low-index agents (sanity of the non-uniform model behind T16).
func TestZipfSkewsContactRates(t *testing.T) {
	const n = 16
	counts := make([]int, n)
	z := NewZipf(69, n, 1.2)
	for i := 0; i < 40_000; i++ {
		a, b := z.Pair(n)
		counts[a]++
		counts[b]++
	}
	if counts[0] <= counts[n-1] {
		t.Fatalf("no skew: agent 0 saw %d, agent %d saw %d", counts[0], n-1, counts[n-1])
	}
}
