package sspp_test

import (
	"fmt"

	"sspp"
)

// The simplest session: build a population, let it stabilize, read the
// leader. Everything is deterministic given the seeds.
func ExampleNew() {
	sys, err := sspp.New(sspp.Config{N: 16, R: 4, Seed: 1})
	if err != nil {
		panic(err)
	}
	res := sys.RunToSafeSet(2, 0)
	fmt.Println("stabilized:", res.Stabilized)
	fmt.Println("unique leader exists:", sys.Leaders() == 1)
	fmt.Println("ranking is a permutation:", sys.CorrectRanking())
	// Output:
	// stabilized: true
	// unique leader exists: true
	// ranking is a permutation: true
}

// Self-stabilization: inject a two-leader fault and watch the protocol
// recover through detection and a full reset.
func ExampleSystem_Inject() {
	sys, err := sspp.New(sspp.Config{N: 16, R: 4, Seed: 3})
	if err != nil {
		panic(err)
	}
	if err := sys.Inject(sspp.AdversaryTwoLeaders, 5); err != nil {
		panic(err)
	}
	fmt.Println("leaders before:", sys.Leaders())
	res := sys.RunToSafeSet(6, 0)
	fmt.Println("stabilized:", res.Stabilized)
	fmt.Println("leaders after:", sys.Leaders())
	fmt.Println("hard reset was needed:", sys.HardResets() > 0)
	// Output:
	// leaders before: 2
	// stabilized: true
	// leaders after: 1
	// hard reset was needed: true
}

// Message-layer faults are repaired softly: the ranking survives.
func ExampleSystem_RunToSafeSet() {
	sys, err := sspp.New(sspp.Config{N: 12, R: 6, Seed: 7})
	if err != nil {
		panic(err)
	}
	// A correctly ranked population whose collision-detection messages have
	// been corrupted (the class installs both in one step).
	if err := sys.Inject(sspp.AdversaryCorruptMessages, 9); err != nil {
		panic(err)
	}
	before := sys.Ranks()
	sys.RunToSafeSet(10, 0)
	after := sys.Ranks()

	same := true
	for i := range before {
		if before[i] != after[i] {
			same = false
		}
	}
	fmt.Println("hard resets:", sys.HardResets())
	fmt.Println("ranking preserved:", same)
	// Output:
	// hard resets: 0
	// ranking preserved: true
}

// StateBits evaluates the Figure 1 state-complexity formula: the price of
// the r trade-off.
func ExampleStateBits() {
	fmt.Printf("n=1024, r=1:   2^%.0f states\n", sspp.StateBits(1024, 1))
	fmt.Printf("n=1024, r=512: 2^%.0f states\n", sspp.StateBits(1024, 512))
	// Output:
	// n=1024, r=1:   2^99 states
	// n=1024, r=512: 2^71303241 states
}
