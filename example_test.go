package sspp_test

import (
	"fmt"

	"sspp"
)

// The simplest session: build a population, let it run to the safe set of
// Lemma 6.1, read the leader. Everything is deterministic given the seeds.
func ExampleNew() {
	sys, err := sspp.New(sspp.Config{N: 16, R: 4, Seed: 1})
	if err != nil {
		panic(err)
	}
	res := sys.Run(sspp.Until(sspp.SafeSet), sspp.SchedulerSeed(2))
	fmt.Println("stabilized:", res.Stabilized)
	fmt.Println("unique leader exists:", sys.Leaders() == 1)
	fmt.Println("ranking is a permutation:", sys.CorrectRanking())
	// Output:
	// stabilized: true
	// unique leader exists: true
	// ranking is a permutation: true
}

// Self-stabilization: inject a two-leader fault and watch the protocol
// recover through detection and a full reset.
func ExampleSystem_Inject() {
	sys, err := sspp.New(sspp.Config{N: 16, R: 4, Seed: 3})
	if err != nil {
		panic(err)
	}
	if err := sys.Inject(sspp.AdversaryTwoLeaders, 5); err != nil {
		panic(err)
	}
	fmt.Println("leaders before:", sys.Leaders())
	res := sys.Run(sspp.Until(sspp.SafeSet), sspp.SchedulerSeed(6))
	fmt.Println("stabilized:", res.Stabilized)
	fmt.Println("leaders after:", sys.Leaders())
	fmt.Println("hard reset was needed:", sys.HardResets() > 0)
	// Output:
	// leaders before: 2
	// stabilized: true
	// leaders after: 1
	// hard reset was needed: true
}

// Message-layer faults are repaired softly: the ranking survives.
func ExampleSystem_Run() {
	sys, err := sspp.New(sspp.Config{N: 12, R: 6, Seed: 7})
	if err != nil {
		panic(err)
	}
	// A correctly ranked population whose collision-detection messages have
	// been corrupted (the class installs both in one step).
	if err := sys.Inject(sspp.AdversaryCorruptMessages, 9); err != nil {
		panic(err)
	}
	before := sys.Ranks()
	sys.Run(sspp.Until(sspp.SafeSet), sspp.SchedulerSeed(10))
	after := sys.Ranks()

	same := true
	for i := range before {
		if before[i] != after[i] {
			same = false
		}
	}
	fmt.Println("hard resets:", sys.HardResets())
	fmt.Println("ranking preserved:", same)
	// Output:
	// hard resets: 0
	// ranking preserved: true
}

// Run options compose: stop conditions are first-class predicates, a
// confirmation window turns output correctness into output stability, and
// Observe streams snapshots without perturbing the schedule.
func ExampleSystem_Run_options() {
	sys, err := sspp.New(sspp.Config{N: 16, R: 8, Seed: 4})
	if err != nil {
		panic(err)
	}
	observations := 0
	res := sys.Run(
		sspp.Until(sspp.CorrectOutput),
		sspp.Confirm(320), // hold the single leader for 20·n interactions
		sspp.SchedulerSeed(7),
		sspp.Observe(1000, func(sspp.Snapshot) { observations++ }),
	)
	fmt.Println("stabilized:", res.Stabilized)
	fmt.Println("condition:", res.Condition)
	fmt.Println("observed at least once:", observations > 0)
	// Output:
	// stabilized: true
	// condition: correct-output
	// observed at least once: true
}

// An Ensemble declares a whole family of runs — a grid of (n, r) points ×
// adversary classes × seeds — and executes it in parallel with
// deterministic, worker-count-independent aggregation.
func ExampleEnsemble() {
	ens, err := sspp.NewEnsemble(sspp.Grid{
		Points:      []sspp.Point{{N: 16, R: 4}, {N: 16, R: 8}},
		Adversaries: []sspp.Adversary{sspp.AdversaryTriggered},
		Seeds:       3,
	})
	if err != nil {
		panic(err)
	}
	out := ens.Run()
	for _, cell := range out.Cells {
		fmt.Printf("n=%d r=%d %s: %d/%d recovered\n",
			cell.Point.N, cell.Point.R, cell.Adversary, cell.Recovered, cell.Seeds)
	}
	fast, _ := out.Cell(sspp.Point{N: 16, R: 8}, sspp.AdversaryTriggered)
	slow, _ := out.Cell(sspp.Point{N: 16, R: 4}, sspp.AdversaryTriggered)
	fmt.Println("larger r is faster:", fast.Interactions.Mean < slow.Interactions.Mean)
	// Output:
	// n=16 r=4 triggered: 3/3 recovered
	// n=16 r=8 triggered: 3/3 recovered
	// larger r is faster: true
}

// StateBits evaluates the Figure 1 state-complexity formula: the price of
// the r trade-off.
func ExampleStateBits() {
	fmt.Printf("n=1024, r=1:   2^%.0f states\n", sspp.StateBits(1024, 1))
	fmt.Printf("n=1024, r=512: 2^%.0f states\n", sspp.StateBits(1024, 512))
	// Output:
	// n=1024, r=1:   2^99 states
	// n=1024, r=512: 2^71303241 states
}
