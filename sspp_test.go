package sspp

import (
	"strings"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{N: 1, R: 1}); err == nil {
		t.Fatal("n < 2 must fail")
	}
	if _, err := New(Config{N: 32, R: 17}); err == nil {
		t.Fatal("r > n/2 must fail")
	}
	if _, err := New(Config{N: 32, R: 17}); err != nil && !strings.Contains(err.Error(), "sspp:") {
		t.Fatal("errors must be wrapped with the package prefix")
	}
}

func TestEndToEnd(t *testing.T) {
	sys, err := New(Config{N: 16, R: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sys.N() != 16 || sys.R() != 4 {
		t.Fatal("accessors broken")
	}
	res := sys.Run(Until(SafeSet), SchedulerSeed(2))
	if !res.Stabilized {
		t.Fatalf("no stabilization within default budget %d", sys.DefaultBudget())
	}
	if res.ParallelTime <= 0 {
		t.Fatalf("parallel time = %v", res.ParallelTime)
	}
	leader, ok := sys.Leader()
	if !ok {
		t.Fatal("no unique leader after stabilization")
	}
	if got := sys.Ranks()[leader]; got != 1 {
		t.Fatalf("leader rank = %d, want 1", got)
	}
	if !sys.Correct() || !sys.CorrectRanking() || !sys.InSafeSet() {
		t.Fatal("predicates disagree after stabilization")
	}
	if sys.Leaders() != 1 {
		t.Fatal("Leaders() should be 1")
	}
	if sys.Interactions() == 0 {
		t.Fatal("interaction counter did not advance")
	}
	_, _, verifying := sys.Roles()
	if verifying != 16 {
		t.Fatalf("verifying = %d, want 16", verifying)
	}
}

func TestInjectAndRecover(t *testing.T) {
	sys, err := New(Config{N: 16, R: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Inject(AdversaryTwoLeaders, 5); err != nil {
		t.Fatal(err)
	}
	if sys.Leaders() != 2 {
		t.Fatalf("injection produced %d leaders, want 2", sys.Leaders())
	}
	res := sys.Run(Until(SafeSet), SchedulerSeed(6))
	if !res.Stabilized {
		t.Fatal("no recovery from two leaders")
	}
	if sys.HardResets() == 0 {
		t.Fatal("two-leader recovery requires a hard reset")
	}
	if sys.Events() == "" {
		t.Fatal("event log empty")
	}
	if sys.EventCount("core.hard_reset") != sys.HardResets() {
		t.Fatal("EventCount/HardResets mismatch")
	}
}

func TestInjectUnknownClass(t *testing.T) {
	sys, err := New(Config{N: 8, R: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Inject(Adversary("bogus"), 1); err == nil {
		t.Fatal("unknown class must error")
	}
}

func TestRunToStableOutput(t *testing.T) {
	sys, err := New(Config{N: 16, R: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.RunToStableOutput(7, 0, 0)
	if !res.Stabilized {
		t.Fatal("output never stabilized")
	}
	if !sys.Correct() {
		t.Fatal("output-stable but incorrect")
	}
}

func TestStepDeterminism(t *testing.T) {
	build := func() *System {
		sys, err := New(Config{N: 16, R: 4, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	a, b := build(), build()
	a.Step(11, 5000)
	b.Step(11, 5000)
	ra, rb := a.Ranks(), b.Ranks()
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("same seeds diverged at agent %d", i)
		}
	}
}

func TestSyntheticCoinsConfig(t *testing.T) {
	sys, err := New(Config{N: 16, R: 4, Seed: 5, SyntheticCoins: true})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run(Until(SafeSet), SchedulerSeed(8))
	if !res.Stabilized {
		t.Fatal("derandomized mode did not stabilize")
	}
}

func TestStateBits(t *testing.T) {
	if StateBits(1024, 512) <= StateBits(1024, 1) {
		t.Fatal("state bits must grow with r")
	}
}
