package sspp

import (
	"bytes"
	"runtime"
	"testing"
)

// TestProtocolsCatalogue pins the registry contents and the capability
// matrix of DESIGN.md §7.
func TestProtocolsCatalogue(t *testing.T) {
	wantCaps := map[string][]string{
		ProtocolElectLeader: {CapabilityRanker, CapabilitySafeSet, CapabilityInjectable, CapabilitySnapshotter, CapabilityCompactable, CapabilityChurnable},
		ProtocolCIW:         {CapabilityRanker, CapabilitySafeSet, CapabilityInjectable, CapabilityCompactable, CapabilityChurnable},
		ProtocolNameRank:    {CapabilityRanker, CapabilitySafeSet, CapabilityCompactable},
		ProtocolLooseLE:     {CapabilityInjectable, CapabilityCompactable, CapabilityChurnable},
		ProtocolFastLE:      {CapabilitySafeSet},
	}
	infos := Protocols()
	if len(infos) != len(wantCaps) {
		t.Fatalf("registry has %d protocols, want %d", len(infos), len(wantCaps))
	}
	if infos[0].Name != ProtocolElectLeader {
		t.Fatalf("first protocol = %q, want the paper's", infos[0].Name)
	}
	for _, info := range infos {
		want, ok := wantCaps[info.Name]
		if !ok {
			t.Fatalf("unexpected protocol %q", info.Name)
		}
		if len(info.Capabilities) != len(want) {
			t.Fatalf("%s capabilities = %v, want %v", info.Name, info.Capabilities, want)
		}
		for i := range want {
			if info.Capabilities[i] != want[i] {
				t.Fatalf("%s capabilities = %v, want %v", info.Name, info.Capabilities, want)
			}
		}
		if info.Description == "" {
			t.Fatalf("%s has no description", info.Name)
		}
	}
}

// registryConfigs returns a runnable small configuration per protocol.
func registryConfigs() map[string]Config {
	return map[string]Config{
		ProtocolElectLeader: {Protocol: ProtocolElectLeader, N: 16, R: 4, Seed: 1},
		ProtocolCIW:         {Protocol: ProtocolCIW, N: 16, Seed: 1},
		ProtocolNameRank:    {Protocol: ProtocolNameRank, N: 16, Seed: 1},
		ProtocolLooseLE:     {Protocol: ProtocolLooseLE, N: 16, Seed: 1},
		ProtocolFastLE:      {Protocol: ProtocolFastLE, N: 16, Seed: 1},
	}
}

// TestEveryProtocolRunsThroughTheEngine is the acceptance test of the
// registry refactor: every protocol stabilizes through the same public
// sys.Run path, with the SafeSet condition degrading to confirmed correct
// output exactly for the protocols without a safe set.
func TestEveryProtocolRunsThroughTheEngine(t *testing.T) {
	for name, cfg := range registryConfigs() {
		t.Run(name, func(t *testing.T) {
			sys, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := sys.ProtocolName(); got != name {
				t.Fatalf("ProtocolName = %q, want %q", got, name)
			}
			res := sys.Run(SchedulerSeed(7))
			if !res.Stabilized {
				t.Fatalf("%s did not stabilize within %d interactions", name, sys.DefaultBudget())
			}
			if !sys.Correct() {
				t.Fatalf("%s stabilized but output incorrect", name)
			}
			if sys.Leaders() != 1 {
				t.Fatalf("%s leaders = %d", name, sys.Leaders())
			}
			if leader, ok := sys.Leader(); !ok || leader < 0 || leader >= sys.N() {
				t.Fatalf("%s leader = (%d, %v)", name, leader, ok)
			}
			if sys.Interactions() != res.Interactions {
				t.Fatalf("%s Interactions = %d, run reported %d",
					name, sys.Interactions(), res.Interactions)
			}
			wantCond := "safe-set"
			if name == ProtocolLooseLE {
				wantCond = "correct-output" // the documented fallback
			}
			if res.Condition != wantCond {
				t.Fatalf("%s condition = %q, want %q", name, res.Condition, wantCond)
			}
			// Capability-dependent surfaces degrade, never panic.
			ranks := sys.Ranks()
			isRanker := name != ProtocolLooseLE && name != ProtocolFastLE
			if isRanker != (ranks != nil) {
				t.Fatalf("%s Ranks = %v, ranker capability mismatch", name, ranks)
			}
			if isRanker && !sys.CorrectRanking() {
				t.Fatalf("%s ranking incorrect after stabilization", name)
			}
			_ = sys.Snapshot()
		})
	}
}

// TestSafeSetFallbackConfirmWindow: for a protocol without a safe set, the
// fallback honours an explicit Confirm and reports the stretch start.
func TestSafeSetFallbackConfirmWindow(t *testing.T) {
	sys, err := New(Config{Protocol: ProtocolLooseLE, N: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	const window = 256
	res := sys.Run(SchedulerSeed(4), Confirm(window))
	if !res.Stabilized {
		t.Fatal("loosele never held a leader through the window")
	}
	if res.Interactions-res.StabilizedAt < window {
		t.Fatalf("window not honoured: stretch %d < %d",
			res.Interactions-res.StabilizedAt, window)
	}
}

// TestInjectCapabilityDispatch: Inject works for injectable protocols,
// reports a clear error for the rest, and rejects unrealizable classes.
func TestInjectCapabilityDispatch(t *testing.T) {
	for name, cfg := range registryConfigs() {
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		err = sys.Inject(AdversaryTwoLeaders, 9)
		switch name {
		case ProtocolElectLeader, ProtocolCIW, ProtocolLooseLE:
			if err != nil {
				t.Fatalf("%s: two-leaders injection failed: %v", name, err)
			}
			if got := sys.Leaders(); got != 2 {
				t.Fatalf("%s: leaders after injection = %d, want 2", name, got)
			}
			if res := sys.Run(SchedulerSeed(10)); !res.Stabilized {
				t.Fatalf("%s: no recovery from two leaders", name)
			}
		default:
			if err == nil {
				t.Fatalf("%s: injection must report the missing capability", name)
			}
		}
	}
	// ElectLeader-specific classes are rejected, not mangled, by baselines.
	sys, err := New(Config{Protocol: ProtocolCIW, N: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Inject(AdversaryMixedGenerations, 1); err == nil {
		t.Fatal("ciw accepted an ElectLeader-specific class")
	}
}

// TestTransientDispatch: mid-run transient faults strike injectable
// baselines and are cleanly skipped elsewhere.
func TestTransientDispatch(t *testing.T) {
	sys, err := New(Config{Protocol: ProtocolCIW, N: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res := sys.Run(SchedulerSeed(3)); !res.Stabilized {
		t.Fatal("ciw setup failed")
	}
	hit, err := sys.InjectTransient(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hit) != 4 {
		t.Fatalf("ciw transient hit %d agents, want 4", len(hit))
	}
	if res := sys.Run(SchedulerSeed(6)); !res.Stabilized {
		t.Fatal("ciw did not recover from transient corruption")
	}
	noInj, err := New(Config{Protocol: ProtocolNameRank, N: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if hit, err := noInj.InjectTransient(4, 5); err == nil || hit != nil {
		t.Fatalf("namerank transient = %v, %v; want an error (no capability)", hit, err)
	}
	// A scheduled fault burst on a non-injectable protocol fails the run up
	// front instead of silently reporting a clean result.
	res := noInj.Run(SchedulerSeed(6), InjectTransientAt(100, 4, 7))
	if res.Err == nil || res.Interactions != 0 || res.Stabilized {
		t.Fatalf("scheduled fault on namerank = %+v, want up-front Err", res)
	}
}

// TestNewCustomProtocol: a user-supplied protocol runs on the identical
// engine, including the safe-set fallback and custom conditions.
type countdownProto struct {
	n    int
	left int
}

func (p *countdownProto) N() int { return p.n }
func (p *countdownProto) Interact(a, b int) {
	if p.left > 0 {
		p.left--
	}
}
func (p *countdownProto) Correct() bool { return p.left == 0 }

func TestNewCustomProtocol(t *testing.T) {
	sys, err := NewCustom(&countdownProto{n: 8, left: 100})
	if err != nil {
		t.Fatal(err)
	}
	if sys.ProtocolName() != "custom" {
		t.Fatalf("ProtocolName = %q", sys.ProtocolName())
	}
	res := sys.Run(SchedulerSeed(1), PollEvery(1), Confirm(1))
	if !res.Stabilized || res.Condition != "correct-output" {
		t.Fatalf("custom run = %+v", res)
	}
	if res.StabilizedAt != 100 {
		t.Fatalf("stabilized at %d, want 100", res.StabilizedAt)
	}
	if _, err := NewCustom(nil); err == nil {
		t.Fatal("nil protocol accepted")
	}
	if _, err := NewCustom(&countdownProto{n: 1}); err == nil {
		t.Fatal("n < 2 accepted")
	}
}

// TestRegistryValidation: unknown names and invalid per-protocol configs
// are rejected with wrapped errors.
func TestRegistryValidation(t *testing.T) {
	if _, err := New(Config{Protocol: "bogus", N: 16}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := New(Config{Protocol: ProtocolCIW, N: 1}); err == nil {
		t.Fatal("n < 2 accepted for ciw")
	}
	if _, err := New(Config{Protocol: ProtocolCIW, N: 16, SyntheticCoins: true}); err == nil {
		t.Fatal("synthetic coins accepted outside electleader")
	}
}

// TestRunBitStableAcrossSchedulerImplementations pins the cross-protocol
// determinism contract of the engine: for every registry protocol, a run
// under NewBatch deals the identical schedule as NewUniform with the same
// seed, so results and final configurations match bit for bit.
func TestRunBitStableAcrossSchedulerImplementations(t *testing.T) {
	for name, cfg := range registryConfigs() {
		t.Run(name, func(t *testing.T) {
			run := func(sched Scheduler) (Result, []int, int) {
				sys, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res := sys.Run(WithScheduler(sched))
				return res, sys.Ranks(), sys.Leaders()
			}
			r1, ranks1, l1 := run(NewUniform(99))
			r2, ranks2, l2 := run(NewBatch(99, 0))
			if r1 != r2 || l1 != l2 {
				t.Fatalf("uniform %+v (leaders %d) != batch %+v (leaders %d)", r1, l1, r2, l2)
			}
			if len(ranks1) != len(ranks2) {
				t.Fatalf("rank vectors diverge: %v vs %v", ranks1, ranks2)
			}
			for i := range ranks1 {
				if ranks1[i] != ranks2[i] {
					t.Fatalf("rank %d diverges: %d vs %d", i, ranks1[i], ranks2[i])
				}
			}
		})
	}
}

// TestCrossProtocolEnsembleJSONWorkerCountIndependent is the golden
// determinism test for the generalized Ensemble: a grid crossed over every
// registry protocol produces byte-identical EnsembleResult and
// CompareResult JSON for workers ∈ {1, 4, GOMAXPROCS}.
func TestCrossProtocolEnsembleJSONWorkerCountIndependent(t *testing.T) {
	grid := Grid{
		Protocols:   []string{ProtocolElectLeader, ProtocolCIW, ProtocolNameRank, ProtocolLooseLE, ProtocolFastLE},
		Points:      []Point{{N: 16, R: 4}},
		Adversaries: []Adversary{"", AdversaryTwoLeaders},
		Seeds:       2,
		BaseSeed:    17,
	}
	render := func(workers int) ([]byte, []byte) {
		ens, err := NewEnsemble(grid, Workers(workers))
		if err != nil {
			t.Fatal(err)
		}
		res := ens.Run()
		var ej, cj bytes.Buffer
		if err := res.WriteJSON(&ej); err != nil {
			t.Fatal(err)
		}
		if err := res.Compare().WriteJSON(&cj); err != nil {
			t.Fatal(err)
		}
		return ej.Bytes(), cj.Bytes()
	}
	seqE, seqC := render(1)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		parE, parC := render(workers)
		if !bytes.Equal(seqE, parE) {
			t.Fatalf("ensemble JSON differs between workers=1 and workers=%d", workers)
		}
		if !bytes.Equal(seqC, parC) {
			t.Fatalf("compare JSON differs between workers=1 and workers=%d", workers)
		}
	}
	if !bytes.Contains(seqE, []byte(`"protocols"`)) {
		t.Fatalf("protocol-crossed export lacks the protocols field:\n%s", seqE)
	}
	// The pivot has one row per (point, adversary) with all protocols.
	res, err := NewEnsemble(grid, Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	cmp := res.Run().Compare()
	if len(cmp.Rows) != 2 || len(cmp.Rows[0].Cells) != len(grid.Protocols) {
		t.Fatalf("pivot shape: %d rows × %d cells", len(cmp.Rows), len(cmp.Rows[0].Cells))
	}
	// Clean starts stabilize for every protocol; the adversarial column
	// fails exactly for the protocols without the injectable capability.
	for _, row := range cmp.Rows {
		for _, cell := range row.Cells {
			injectable := cell.Protocol != ProtocolNameRank && cell.Protocol != ProtocolFastLE
			switch {
			case row.Adversary == "" && cell.Recovered != grid.Seeds:
				t.Fatalf("%s clean cell: %d/%d recovered", cell.Protocol, cell.Recovered, grid.Seeds)
			case row.Adversary != "" && !injectable && cell.Failures != grid.Seeds:
				t.Fatalf("%s adversarial cell: %d failures, want all %d (unrealizable)",
					cell.Protocol, cell.Failures, grid.Seeds)
			case row.Adversary != "" && injectable && cell.Recovered == 0:
				t.Fatalf("%s never recovered from %s", cell.Protocol, row.Adversary)
			}
		}
	}
}

// TestEnsembleTransientMode: the TransientK recovery grid stabilizes,
// strikes, and reports post-fault recovery statistics.
func TestEnsembleTransientMode(t *testing.T) {
	ens, err := NewEnsemble(Grid{
		Points:     []Point{{N: 16, R: 4}},
		Seeds:      3,
		BaseSeed:   5,
		TransientK: 8,
	}, Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	cell := ens.Run().Cells[0]
	if cell.Recovered == 0 {
		t.Fatal("no trial recovered from the transient burst")
	}
	if cell.Interactions.Mean <= 0 {
		t.Fatalf("recovery time distribution empty: %+v", cell.Interactions)
	}
	// A protocol without the injectable capability cannot host the mode.
	if _, err := NewEnsemble(Grid{
		Protocols:  []string{ProtocolNameRank},
		Points:     []Point{{N: 16}},
		TransientK: 2,
	}); err == nil {
		t.Fatal("TransientK accepted for a non-injectable protocol")
	}
}
