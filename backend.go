// backend.go implements backend selection and the public species surface.
// A System can run its protocol on one of two simulation backends: the
// agent backend stores one struct per agent (the default), while the
// species backend (internal/species) stores the population as a multiset of
// states and samples interactions from the counts, reaching populations of
// 10⁶–10⁸ agents. Protocols advertise a species form through the
// compactable capability — every built-in protocol has one, including
// ElectLeader_r, whose rich coupled state is interned behind canonical keys
// (internal/core/compact.go); Config.Backend selects explicitly, and
// BackendAuto picks the species backend for compactable protocols once the
// population crosses SpeciesAutoThreshold.

package sspp

import (
	"fmt"

	"sspp/internal/rng"
	"sspp/internal/sim"
	"sspp/internal/species"
)

// The simulation backends accepted by Config.Backend.
const (
	// BackendAgent stores one struct per agent — every protocol supports
	// it, and "" selects it, keeping pre-backend configurations unchanged.
	BackendAgent = "agent"
	// BackendSpecies stores the population as state counts and samples
	// interactions from them; requires the compactable capability. Agent
	// identities do not exist under it: runs accept only uniform schedulers
	// (SchedulerSeed / NewUniform), and per-agent surfaces (Ranks, Leader
	// index, Inject) are unavailable.
	BackendSpecies = "species"
	// BackendAuto selects BackendSpecies for compactable protocols at
	// populations of SpeciesAutoThreshold agents or more, BackendAgent
	// otherwise.
	BackendAuto = "auto"
)

// SpeciesAutoThreshold is the population size at which BackendAuto switches
// compactable protocols to the species backend.
const SpeciesAutoThreshold = 1 << 16

// speciesSeedSalt decorrelates the species backend's fallback sampling
// stream from the protocol seed; engine runs rebind the scheduler stream.
const speciesSeedSalt = 0xA5A5_5A5A_0F0F_F0F0

// resolveBackend maps a Config.Backend value to the concrete backend for
// the given protocol spec. A resolution landing on the species backend is
// rejected when the configuration asks for a non-complete topology: the
// species backend samples state pairs from counts, so agent adjacency does
// not exist there (capability table, DESIGN.md §9). The auto threshold
// fails fast too rather than silently degrading a million-agent run to the
// agent backend.
func resolveBackend(cfg Config, spec *protocolSpec) (string, error) {
	_, compactable := sim.AsCompactable(spec.zero)
	species := func() (string, error) {
		if cfg.SyntheticCoins {
			return "", fmt.Errorf("sspp: synthetic-coin mode has no species form "+
				"(the Appendix B coin state is per-agent identity) — protocol %q with synthetic coins needs Backend: %q",
				spec.name, BackendAgent)
		}
		if !cfg.Topology.IsComplete() {
			return "", fmt.Errorf("sspp: the species backend supports only the complete topology "+
				"(state-pair sampling has no agent adjacency; see the capability table, DESIGN.md §9) — "+
				"protocol %q with topology %q needs Backend: %q", spec.name, cfg.Topology.Name(), BackendAgent)
		}
		return BackendSpecies, nil
	}
	switch cfg.Backend {
	case "", BackendAgent:
		return BackendAgent, nil
	case BackendSpecies:
		if !compactable {
			return "", fmt.Errorf("sspp: protocol %q has no species form (missing the compactable capability)", spec.name)
		}
		return species()
	case BackendAuto:
		if compactable && cfg.N >= SpeciesAutoThreshold {
			return species()
		}
		return BackendAgent, nil
	default:
		return "", fmt.Errorf("sspp: unknown backend %q (want %q, %q or %q)",
			cfg.Backend, BackendAgent, BackendSpecies, BackendAuto)
	}
}

// compactProto converts a freshly built agent-level protocol to its species
// form. The agent instance only serves as the configuration source; the
// returned protocol carries the capability set its compact model declares.
func compactProto(p sim.Protocol, seed uint64) (sim.Protocol, error) {
	comp, ok := sim.AsCompactable(p)
	if !ok {
		return nil, fmt.Errorf("sspp: protocol %T has no species form", p)
	}
	sp, err := species.NewSystem(comp.Compact(), seed^speciesSeedSalt)
	if err != nil {
		return nil, fmt.Errorf("sspp: %w", err)
	}
	return species.Capable(sp), nil
}

// StateCounts is a read-only view of a species-form population: state keys
// with their agent counts. The Correct and SafeSet predicates of a
// SpeciesModel receive one.
type StateCounts interface {
	// N returns the population size (the sum of all counts).
	N() int
	// Occupied returns the number of states with a positive count.
	Occupied() int
	// Count returns the number of agents currently in state key.
	Count(key uint64) int64
	// Each calls fn for every occupied state until fn returns false; the
	// iteration order is unspecified.
	Each(fn func(key uint64, count int64) bool)
}

// Rand is the deterministic randomness handle passed to SpeciesModel.React.
// It draws from the run's scheduler stream, so species runs stay
// reproducible from the same seeds as agent runs.
type Rand struct {
	src *rng.PRNG
}

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 { return r.src.Uint64() }

// Intn returns a uniformly random int in [0, n); it panics if n <= 0.
func (r *Rand) Intn(n int) int { return r.src.Intn(n) }

// Float64 returns a uniformly random float64 in [0, 1).
func (r *Rand) Float64() float64 { return r.src.Float64() }

// Bool returns a uniformly random boolean.
func (r *Rand) Bool() bool { return r.src.Bool() }

// SpeciesModel describes a user protocol in species form: dynamics over
// opaque uint64 state keys with agent counts, instead of indexed agents.
// Any protocol whose transition depends only on the two interacting states
// — not on agent identities — has one, and running it through NewSpecies
// scales to populations far beyond one-struct-per-agent storage.
type SpeciesModel struct {
	// States, when positive, declares that every key lies in [0, States):
	// the engine then uses dense arrays instead of a hash map.
	States uint64
	// Diagonal declares that ordered pairs of distinct states never react
	// (only (s, s) pairs can change state); the engine then skips runs of
	// silent interactions with one geometric draw.
	Diagonal bool
	// Init returns the initial configuration as parallel key/count slices
	// (distinct keys, positive counts, summing to the population size n ≥ 2).
	Init func() (keys []uint64, counts []int64)
	// React applies the transition function to the ordered state pair
	// (a initiates, b responds), drawing randomness from rnd.
	React func(a, b uint64, rnd *Rand) (uint64, uint64)
	// Leader reports whether agents in state key output "leader". Required
	// unless Correct is provided.
	Leader func(key uint64) bool
	// Rank returns the rank output of state key (0 when none); nil for
	// protocols without a ranking output.
	Rank func(key uint64) int32
	// Correct, when non-nil, overrides the default output predicate
	// (exactly one agent in a leader state).
	Correct func(v StateCounts) bool
	// SafeSet, when non-nil, defines the protocol's safe set; Until(SafeSet)
	// then measures it directly instead of falling back to confirmed output.
	SafeSet func(v StateCounts) bool
}

// compile converts the public model to the engine's internal form.
func (m SpeciesModel) compile() sim.CompactModel {
	cm := sim.CompactModel{
		StateSpace: m.States,
		Diagonal:   m.Diagonal,
		Init:       m.Init,
		Leader:     m.Leader,
		Rank:       m.Rank,
	}
	if m.React != nil {
		rnd := &Rand{}
		cm.React = func(a, b uint64, src *rng.PRNG) (uint64, uint64) {
			rnd.src = src
			return m.React(a, b, rnd)
		}
	}
	if m.Correct != nil {
		cm.Correct = func(v sim.CountView) bool { return m.Correct(v) }
	}
	if m.SafeSet != nil {
		cm.SafeSet = func(v sim.CountView) bool { return m.SafeSet(v) }
	}
	return cm
}

// NewSpecies wraps a user-supplied species model in a System, running it
// through the same engine as everything else: composable Run options, stop
// predicates, Ensemble grids. Only uniform schedulers are supported (agent
// identities do not exist in species form), and the default interaction
// budget is the generic 1000·n·ln(n+1) envelope of custom protocols.
func NewSpecies(model SpeciesModel) (*System, error) {
	sp, err := species.NewSystem(model.compile(), speciesSeedSalt)
	if err != nil {
		return nil, fmt.Errorf("sspp: %w", err)
	}
	return &System{
		proto:   species.Capable(sp),
		events:  sim.NewEvents(),
		cfg:     Config{N: sp.N(), Backend: BackendSpecies},
		backend: BackendSpecies,
	}, nil
}
