// scheduler.go exposes the pluggable pair schedulers of the execution model.
// The paper's guarantees (Theorem 1.1) are proved for the uniform scheduler;
// the other implementations cover throughput (NewBatch), robustness probes
// under heterogeneous contact rates (NewZipf, NewWeighted), and exact
// schedule capture/replay for reproducible traces (NewRecorder). Every
// scheduler here is deterministic given its seed, and any user type with a
// Pair method plugs into Run via WithScheduler and into Ensemble sweeps via
// the internal runners.

package sspp

import (
	"io"

	"sspp/internal/rng"
	"sspp/internal/sim"
)

// Scheduler draws ordered pairs of distinct agents in [0, n): a is the
// initiator, b the responder. Implementations are single-goroutine state
// machines; a System run consumes one Pair per interaction.
type Scheduler interface {
	Pair(n int) (a, b int)
}

// NewUniform returns the uniform random scheduler of the population model
// (paper §1.1): every ordered pair of distinct agents is equally likely.
// This is what SchedulerSeed uses under the hood.
func NewUniform(seed uint64) Scheduler {
	return rng.New(seed)
}

// NewBatch returns a high-throughput uniform scheduler that pre-draws pairs
// in blocks of the given size (0 selects a default). While the population
// size stays fixed — the case for any single System — the schedule it deals
// is identical to NewUniform with the same seed, only the draw pattern
// differs, so it is a drop-in replacement for throughput-bound sweeps.
// Changing n between calls discards the rest of the current block, and the
// schedule then diverges from the uniform one.
func NewBatch(seed uint64, size int) Scheduler {
	return sim.NewBatch(rng.New(seed), size)
}

// NewZipf returns a non-uniform scheduler with Zipf-like contact rates
// w_i ∝ 1/(i+1)^s over a population of n agents: s = 0 is uniform, larger s
// concentrates interactions on low-index agents. The paper's bounds assume
// the uniform scheduler; this models heterogeneous real-world contact rates
// (experiment T16).
func NewZipf(seed uint64, n int, s float64) Scheduler {
	return sim.NewZipf(rng.New(seed), n, s)
}

// NewWeighted returns a non-uniform scheduler that picks each endpoint
// independently with probability proportional to its weight (re-drawing
// identical pairs). The slice is not retained.
func NewWeighted(seed uint64, weights []float64) Scheduler {
	return sim.NewWeighted(rng.New(seed), weights)
}

// Recorder is a Scheduler that wraps another scheduler and records every
// pair it deals, for exact replay.
type Recorder struct {
	*sim.Recorder
}

// NewRecorder wraps inner so the schedule it deals can be replayed exactly
// with Recording().Replay().
func NewRecorder(inner Scheduler) *Recorder {
	return &Recorder{sim.NewRecorder(inner)}
}

// Recording returns the schedule captured so far.
func (r *Recorder) Recording() *Recording {
	return &Recording{r.Recorder.Recording()}
}

// Recording is a captured pair schedule; Replay turns it back into a
// Scheduler that deals the identical pairs in order (wrapping around if the
// consumer outruns it).
type Recording struct {
	rec *sim.Recording
}

// RecordingVersion identifies the Recording wire layout written by Encode
// and accepted by DecodeRecording.
const RecordingVersion = sim.RecordingVersion

// Len returns the number of recorded pairs.
func (rec *Recording) Len() int { return rec.rec.Len() }

// Replay returns a Scheduler dealing the recorded pairs in order.
func (rec *Recording) Replay() Scheduler { return rec.rec.Replay() }

// Encode writes the recording as versioned JSON (RecordingVersion). Both
// modes round-trip: generic pair streams, and edge-indexed topology
// schedules, which archive the resolving graph's edge list so replay does
// not depend on regenerating the topology.
func (rec *Recording) Encode(w io.Writer) error { return rec.rec.Encode(w) }

// DecodeRecording reads a versioned JSON recording written by Encode,
// rejecting unknown versions and internally inconsistent payloads.
func DecodeRecording(r io.Reader) (*Recording, error) {
	rec, err := sim.DecodeRecording(r)
	if err != nil {
		return nil, err
	}
	return &Recording{rec}, nil
}
