package sspp

import (
	"context"
	"testing"

	"sspp/internal/adversary"
	"sspp/internal/core"
	"sspp/internal/rng"
)

// buildCorePair builds a System and a bare core.Protocol with identical
// configuration and adversarial start, so a facade run can be compared
// against the legacy core run loops pair for pair.
func buildCorePair(t *testing.T, n, r int, seed uint64, class Adversary, advSeed uint64) (*System, *core.Protocol) {
	t.Helper()
	sys, err := New(Config{N: n, R: r, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.New(n, r, core.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	if class != "" {
		if err := sys.Inject(class, advSeed); err != nil {
			t.Fatal(err)
		}
		if err := adversary.Apply(p, adversary.Class(class), rng.New(advSeed)); err != nil {
			t.Fatal(err)
		}
	}
	return sys, p
}

// TestRunToSafeSetGolden pins the acceptance criterion of the API redesign:
// the deprecated RunToSafeSet wrapper (now a thin shim over Run) returns
// results identical to the legacy core run loop for identical seeds.
func TestRunToSafeSetGolden(t *testing.T) {
	cases := []struct {
		n, r      int
		class     Adversary
		seed      uint64
		schedSeed uint64
	}{
		{16, 4, AdversaryTriggered, 1, 2},
		{16, 4, AdversaryTwoLeaders, 3, 4},
		{24, 6, AdversaryRandomGarbage, 5, 6},
		{16, 8, "", 7, 8},
		{12, 3, AdversaryStuckRankers, 9, 10},
	}
	for _, c := range cases {
		sys, p := buildCorePair(t, c.n, c.r, c.seed, c.class, c.seed+50)
		budget := sys.DefaultBudget()
		res := sys.RunToSafeSet(c.schedSeed, 0)
		took, ok := p.RunToSafeSet(rng.New(c.schedSeed), budget)
		if res.Stabilized != ok || res.Interactions != took {
			t.Errorf("n=%d r=%d class=%q: wrapper (%d, %v) != legacy (%d, %v)",
				c.n, c.r, c.class, res.Interactions, res.Stabilized, took, ok)
		}
		if ok {
			want := float64(took) / float64(c.n)
			if res.ParallelTime != want {
				t.Errorf("parallel time %v, want %v", res.ParallelTime, want)
			}
			if res.StabilizedAt != took {
				t.Errorf("StabilizedAt %d, want %d", res.StabilizedAt, took)
			}
		}
	}
}

// TestRunToStableOutputGolden: the deprecated RunToStableOutput wrapper
// matches the legacy core loop bit for bit, including the historical
// contract that Interactions reports the start of the confirmed stretch.
func TestRunToStableOutputGolden(t *testing.T) {
	cases := []struct {
		n, r         int
		class        Adversary
		seed         uint64
		schedSeed    uint64
		max, confirm uint64
	}{
		{16, 8, "", 4, 7, 0, 0},
		{16, 4, AdversaryTriggered, 11, 12, 0, 100},
		{16, 4, AdversaryNoLeader, 13, 14, 0, 0},
		{16, 4, AdversaryTriggered, 15, 16, 500, 50}, // tight budget: not stabilized
	}
	for _, c := range cases {
		sys, p := buildCorePair(t, c.n, c.r, c.seed, c.class, c.seed+50)
		budget := c.max
		if budget == 0 {
			budget = sys.DefaultBudget()
		}
		confirm := c.confirm
		if confirm == 0 {
			confirm = uint64(20 * c.n)
		}
		res := sys.RunToStableOutput(c.schedSeed, c.max, c.confirm)
		at, ok := p.RunToOutputStable(rng.New(c.schedSeed), budget, confirm)
		if res.Stabilized != ok || res.Interactions != at {
			t.Errorf("n=%d r=%d class=%q: wrapper (%d, %v) != legacy (%d, %v)",
				c.n, c.r, c.class, res.Interactions, res.Stabilized, at, ok)
		}
	}
}

// TestTraceGolden pins the deprecated Trace wrapper to the Run option list
// its doc comment names: identical Result, identical observation stream.
func TestTraceGolden(t *testing.T) {
	build := func() *System {
		sys, err := New(Config{N: 16, R: 4, Seed: 61})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Inject(AdversaryTriggered, 62); err != nil {
			t.Fatal(err)
		}
		return sys
	}
	const cadence = 64
	var traceObs, runObs []uint64
	resTrace := build().Trace(63, 0, cadence, func(s Snapshot) {
		traceObs = append(traceObs, s.Interactions)
	})
	resRun := build().Run(Until(SafeSet), SchedulerSeed(63), MaxInteractions(0),
		PollEvery(cadence), Observe(cadence, func(s Snapshot) {
			runObs = append(runObs, s.Interactions)
		}))
	if resTrace != resRun {
		t.Fatalf("Trace %+v != documented replacement %+v", resTrace, resRun)
	}
	if len(traceObs) == 0 || len(traceObs) != len(runObs) {
		t.Fatalf("observation streams diverge: %v vs %v", traceObs, runObs)
	}
	for i := range traceObs {
		if traceObs[i] != runObs[i] {
			t.Fatalf("observation %d diverges: %d vs %d", i, traceObs[i], runObs[i])
		}
	}
}

// TestRunDefaultsMatchExplicit: a bare Run() equals the fully spelled-out
// option list it documents.
func TestRunDefaultsMatchExplicit(t *testing.T) {
	build := func() *System {
		sys, err := New(Config{N: 16, R: 4, Seed: 21})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Inject(AdversaryTriggered, 22); err != nil {
			t.Fatal(err)
		}
		return sys
	}
	a := build().Run()
	b := build().Run(Until(SafeSet), SchedulerSeed(22), MaxInteractions(0))
	if a != b {
		t.Fatalf("defaults diverge: %+v vs %+v", a, b)
	}
	if a.Condition != "safe-set" {
		t.Fatalf("condition = %q", a.Condition)
	}
}

// TestObserveFinalDeliveredExactlyOnce is the regression test for the
// final-observation contract: every cadence, plus exactly one closing
// observation — never two — even when the budget is exhausted exactly on a
// cadence boundary.
func TestObserveFinalDeliveredExactlyOnce(t *testing.T) {
	never := ConditionFunc("never", func(*System) bool { return false })
	newSys := func() *System {
		sys, err := New(Config{N: 16, R: 4, Seed: 31})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	cases := []struct {
		name         string
		max, cadence uint64
		wantObs      int
		wantLast     uint64
	}{
		{"budget on cadence boundary", 800, 200, 4, 800},
		{"budget off boundary", 700, 200, 4, 700}, // 200, 400, 600 + final at 700
		{"cadence larger than budget", 150, 400, 1, 150},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var at []uint64
			res := newSys().Run(
				Until(never),
				MaxInteractions(c.max),
				Observe(c.cadence, func(s Snapshot) { at = append(at, s.Interactions) }),
			)
			if res.Stabilized {
				t.Fatal("never-condition stabilized")
			}
			if len(at) != c.wantObs {
				t.Fatalf("observations = %d at %v, want %d", len(at), at, c.wantObs)
			}
			if at[len(at)-1] != c.wantLast {
				t.Fatalf("last observation at %d, want %d", at[len(at)-1], c.wantLast)
			}
			for i := 1; i < len(at); i++ {
				if at[i] <= at[i-1] {
					t.Fatalf("duplicate or unordered observation at %v", at)
				}
			}
		})
	}
}

// TestObserveFinalOnEarlyStop: when the run stops on its condition, the
// closing observation shows the final state and is not duplicated when the
// stop lands on an observation boundary.
func TestObserveFinalOnEarlyStop(t *testing.T) {
	sys, err := New(Config{N: 16, R: 4, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Inject(AdversaryTriggered, 34); err != nil {
		t.Fatal(err)
	}
	var at []uint64
	res := sys.Run(
		Until(SafeSet),
		SchedulerSeed(35),
		// Observation cadence equals the poll cadence, so the stopping poll
		// coincides with an observation boundary.
		PollEvery(64),
		Observe(64, func(s Snapshot) { at = append(at, s.Interactions) }),
	)
	if !res.Stabilized {
		t.Fatal("no stabilization")
	}
	if len(at) == 0 || at[len(at)-1] != res.Interactions {
		t.Fatalf("final observation missing: %v vs end %d", at, res.Interactions)
	}
	if len(at) >= 2 && at[len(at)-1] == at[len(at)-2] {
		t.Fatalf("final observation duplicated: %v", at)
	}
}

// TestRunCustomCondition: user-supplied predicates are first-class stop
// conditions.
func TestRunCustomCondition(t *testing.T) {
	sys, err := New(Config{N: 16, R: 4, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	allVerifying := ConditionFunc("all-verifying", func(s *System) bool {
		_, _, verifying := s.Roles()
		return verifying == s.N()
	})
	res := sys.Run(Until(allVerifying), SchedulerSeed(42))
	if !res.Stabilized {
		t.Fatal("population never fully verifying")
	}
	if res.Condition != "all-verifying" {
		t.Fatalf("condition = %q", res.Condition)
	}
	_, _, verifying := sys.Roles()
	if verifying != 16 {
		t.Fatalf("verifying = %d at stop", verifying)
	}
}

// TestRunConfirmWindow: with Confirm, StabilizedAt reports the start of the
// confirmed stretch and the run executes at least the window past it.
func TestRunConfirmWindow(t *testing.T) {
	sys, err := New(Config{N: 16, R: 8, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	const window = 640
	res := sys.Run(Until(CorrectOutput), SchedulerSeed(44), Confirm(window))
	if !res.Stabilized {
		t.Fatal("output never stabilized")
	}
	if res.Interactions-res.StabilizedAt < window {
		t.Fatalf("window not honoured: stretch %d < %d",
			res.Interactions-res.StabilizedAt, window)
	}
	if !sys.Correct() {
		t.Fatal("confirmed but incorrect")
	}
}

// TestRunWithContextCancel: a cancelled context stops the run at the next
// poll with Err set and Stabilized false.
func TestRunWithContextCancel(t *testing.T) {
	sys, err := New(Config{N: 16, R: 4, Seed: 45})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Inject(AdversaryTriggered, 46); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	polls := 0
	gate := ConditionFunc("cancel-after-3", func(s *System) bool {
		polls++
		if polls == 3 {
			cancel()
		}
		return false
	})
	res := sys.Run(Until(gate), SchedulerSeed(47), WithContext(ctx))
	if res.Err == nil {
		t.Fatal("cancellation not reported")
	}
	if res.Stabilized {
		t.Fatal("cancelled run reported stabilized")
	}
	if res.Interactions == 0 || res.Interactions >= sys.DefaultBudget() {
		t.Fatalf("cancelled at %d interactions", res.Interactions)
	}
}

// TestRunPreCancelledContext: a context cancelled before the run starts
// executes zero interactions.
func TestRunPreCancelledContext(t *testing.T) {
	sys, err := New(Config{N: 16, R: 4, Seed: 48})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := sys.Run(WithContext(ctx), SchedulerSeed(49))
	if res.Err == nil || res.Interactions != 0 || res.Stabilized {
		t.Fatalf("pre-cancelled run = %+v", res)
	}
}

// TestInjectTransientAt: a fault burst scheduled inside the run strikes at
// its exact interaction count and the run recovers past it.
func TestInjectTransientAt(t *testing.T) {
	sys, err := New(Config{N: 16, R: 4, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	// Stabilize first, so the scheduled burst is the only disturbance.
	if res := sys.Run(SchedulerSeed(52)); !res.Stabilized {
		t.Fatal("setup failed")
	}
	var sawUnsafe bool
	res := sys.Run(
		Until(SafeSet),
		SchedulerSeed(53),
		Confirm(uint64(40*sys.N())),
		InjectTransientAt(100, 8, 54),
		Observe(8, func(s Snapshot) {
			if !s.InSafeSet {
				sawUnsafe = true
			}
		}),
	)
	if !res.Stabilized {
		t.Fatal("no recovery from scheduled burst")
	}
	if res.Interactions <= 100 {
		t.Fatalf("run ended at %d, before the scheduled fault", res.Interactions)
	}
	if !sawUnsafe {
		t.Fatal("burst of 8/16 agents never left the safe set")
	}
	if sys.Leaders() != 1 {
		t.Fatalf("leaders = %d after recovery", sys.Leaders())
	}
}

// TestRunDeterministicWithScheduler: two identical systems driven by two
// identically seeded schedulers produce identical results and final states.
func TestRunDeterministicWithScheduler(t *testing.T) {
	run := func(sched Scheduler) (Result, string) {
		sys, err := New(Config{N: 16, R: 4, Seed: 55})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Inject(AdversaryRandomGarbage, 56); err != nil {
			t.Fatal(err)
		}
		return sys.Run(WithScheduler(sched)), sys.Events()
	}
	r1, e1 := run(NewUniform(57))
	r2, e2 := run(NewUniform(57))
	if r1 != r2 || e1 != e2 {
		t.Fatalf("non-deterministic: %+v/%s vs %+v/%s", r1, e1, r2, e2)
	}
}
