package sspp

import (
	"testing"
)

// TestSoak is a longer-running confidence test (skipped with -short): a
// mid-size population is repeatedly struck by random adversarial classes and
// transient bursts, and must recover every single time with no false
// behaviour in between. This emulates the lifetime of a deployed
// self-stabilizing system.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test is not -short")
	}
	const n, r = 24, 6
	sys, err := New(Config{N: n, R: r, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if res := sys.Run(Until(SafeSet), SchedulerSeed(78)); !res.Stabilized {
		t.Fatal("initial stabilization failed")
	}
	classes := AdversaryClasses()
	for round := 0; round < 12; round++ {
		seed := uint64(1000 + round)
		if round%2 == 0 {
			class := classes[round%len(classes)]
			if err := sys.Inject(class, seed); err != nil {
				// Some classes are unrealizable at some (n, r); strike with
				// a transient burst instead.
				if _, err := sys.InjectTransient(3, seed); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			if _, err := sys.InjectTransient(1+round%n, seed); err != nil {
				t.Fatal(err)
			}
		}
		res := sys.Run(Until(SafeSet), SchedulerSeed(seed+1))
		if !res.Stabilized {
			t.Fatalf("round %d: no recovery (events %s)", round, sys.Events())
		}
		if sys.Leaders() != 1 || !sys.CorrectRanking() {
			t.Fatalf("round %d: invalid stable state", round)
		}
		// Quiet period: correctness must hold without any further resets.
		hard := sys.HardResets()
		sys.Step(seed+2, 50_000)
		if !sys.Correct() {
			t.Fatalf("round %d: correctness lost during quiet period", round)
		}
		if sys.HardResets() != hard {
			t.Fatalf("round %d: spurious hard reset during quiet period", round)
		}
	}
}
