// workload.go is the public surface of the workload layer
// (internal/workload): time-varying schedules of mid-run disruption —
// transient fault bursts, whole-population adversary re-injections, and
// population churn under configurable arrival processes — attached to a Run
// with WithWorkload, plus the versioned trace format that makes any recorded
// workload replay bit-exactly across protocols and backends.

package sspp

import (
	"fmt"
	"io"
	"sort"

	"sspp/internal/rng"
	"sspp/internal/sim"
	"sspp/internal/workload"
)

// Workload is a schedule of timed disruption phases, compiled against the
// population size and the interaction budget when the run starts. Build one
// with NewWorkload from the phase constructors below; attach it with the
// WithWorkload run option.
type Workload struct {
	phases []workload.Phase
}

// WorkloadPhase is one phase of a Workload: a one-shot event or a whole
// arrival process.
type WorkloadPhase struct {
	phase workload.Phase
}

// NewWorkload assembles a workload from phases. The compiled schedule is
// sorted by firing time; events sharing an instant fire consecutively with
// no interactions in between, leaves before joins.
func NewWorkload(phases ...WorkloadPhase) *Workload {
	w := &Workload{phases: make([]workload.Phase, 0, len(phases))}
	for _, p := range phases {
		if p.phase != nil {
			w.phases = append(w.phases, p.phase)
		}
	}
	return w
}

// uses reports the workload's static capability footprint — whether its
// phases can emit fault events and churn events — without expanding any
// arrival process (ensemble grid validation runs before any trial exists).
func (w *Workload) uses() (faults, churn bool) {
	return workload.PhasesUse(w.phases)
}

// TransientBurst corrupts k uniformly chosen agents in place at interaction
// t (the InjectTransient fault model as a workload phase).
func TransientBurst(t uint64, k int, seed uint64) WorkloadPhase {
	return WorkloadPhase{workload.OneShot{Ev: workload.Event{At: t, Kind: workload.KindTransient, K: k, Seed: seed}}}
}

// Reinjection rewrites the whole configuration according to the adversary
// class at interaction t — a mid-run re-injection, the strongest scheduled
// fault.
func Reinjection(t uint64, class Adversary, seed uint64) WorkloadPhase {
	return WorkloadPhase{workload.OneShot{Ev: workload.Event{At: t, Kind: workload.KindInject, Class: string(class), Seed: seed}}}
}

// JoinAt adds one agent at interaction t, entering in the class-chosen state
// ("" selects the protocol's canonical clean join state).
func JoinAt(t uint64, class Adversary, seed uint64) WorkloadPhase {
	return WorkloadPhase{workload.OneShot{Ev: workload.Event{At: t, Kind: workload.KindJoin, Class: string(class), Seed: seed}}}
}

// LeaveAt removes one uniformly chosen agent at interaction t.
func LeaveAt(t uint64, seed uint64) WorkloadPhase {
	return WorkloadPhase{workload.OneShot{Ev: workload.Event{At: t, Kind: workload.KindLeave, Seed: seed}}}
}

// ReplacementChurn is a Poisson churn process keeping n constant: arrivals
// come with exponential gaps at an expected rate of `rate` events per n
// interactions (i.e. per unit of parallel time) from start until end (end 0
// means the run budget), and each arrival is a leave paired with a join at
// the same instant — the only churn shape replacement-only protocols
// (electleader) accept, and the fixed-capacity model of real deployments.
func ReplacementChurn(start, end uint64, rate float64, class Adversary, seed uint64) WorkloadPhase {
	return WorkloadPhase{workload.Poisson{Start: start, End: end, Rate: rate, Replace: true, Class: string(class), Seed: seed}}
}

// JoinLeaveChurn is a Poisson churn process with a drifting population: each
// arrival is a join with probability joinFrac and a leave otherwise. The
// schedule is validated against the protocol's churn bounds up front.
func JoinLeaveChurn(start, end uint64, rate, joinFrac float64, class Adversary, seed uint64) WorkloadPhase {
	return WorkloadPhase{workload.Poisson{Start: start, End: end, Rate: rate, JoinFrac: joinFrac, Class: string(class), Seed: seed}}
}

// ChurnBursts is a periodic churn process: every `every` interactions from
// start until end (end 0 means the run budget), `leaves` agents leave and
// `joins` agents join, all at the same instant.
func ChurnBursts(start, end, every uint64, joins, leaves int, class Adversary, seed uint64) WorkloadPhase {
	return WorkloadPhase{workload.Bursts{Start: start, End: end, Every: every, Joins: joins, Leaves: leaves, Class: string(class), Seed: seed}}
}

// PopulationStep is a one-shot population step at interaction t: delta
// agents join (delta > 0) or leave (delta < 0) at one instant.
func PopulationStep(t uint64, delta int, class Adversary, seed uint64) WorkloadPhase {
	return WorkloadPhase{workload.Step{At: t, Delta: delta, Class: string(class), Seed: seed}}
}

// applyWorkloadEvent fires one scheduled event against the running protocol,
// dispatching on its capabilities: count-based churn (species backend) wins
// over agent-level churn, and the fault kinds go through the injectable
// capability. Validation has already guaranteed the capability exists.
func (s *System) applyWorkloadEvent(ev workload.Event) error {
	src := rng.New(ev.Seed)
	switch ev.Kind {
	case workload.KindTransient:
		_, err := s.injectTransientWith(ev.K, src)
		return err
	case workload.KindInject:
		return s.injectWith(Adversary(ev.Class), src)
	case workload.KindJoin:
		if cc, ok := sim.AsCountChurnable(s.proto); ok && cc.CanChurn() {
			return cc.JoinState(ev.Class, src)
		}
		if ch, ok := sim.AsChurnable(s.proto); ok {
			_, err := ch.JoinAgent(ev.Class, src)
			return err
		}
		return fmt.Errorf("sspp: protocol %q does not support churn", s.ProtocolName())
	case workload.KindLeave:
		if cc, ok := sim.AsCountChurnable(s.proto); ok && cc.CanChurn() {
			_, err := cc.LeaveState(src)
			return err
		}
		if ch, ok := sim.AsChurnable(s.proto); ok {
			// The victim is uniform over the live agents. Replacement-churn
			// protocols keep dead slots in place until the paired join fires,
			// so a pick may land on an already-vacant slot — redraw. The
			// retry bound only triggers on a persistent error.
			var err error
			for attempts := 0; attempts < 128; attempts++ {
				if err = ch.LeaveAgent(src.Intn(s.N())); err == nil {
					return nil
				}
			}
			return err
		}
		return fmt.Errorf("sspp: protocol %q does not support churn", s.ProtocolName())
	default:
		return fmt.Errorf("sspp: unknown workload event kind %q", ev.Kind)
	}
}

// traceRecorder accumulates a WorkloadTrace during a Run: the dealt pairs,
// the pre-interaction state keys (when the protocol exposes them), and every
// fired event's census diff.
type traceRecorder struct {
	s      *System
	keyer  sim.StateKeyer
	proto  string
	n0     int
	pairs  []int32
	keys   []uint64
	events []workload.TraceEvent
}

func newTraceRecorder(s *System) *traceRecorder {
	r := &traceRecorder{s: s, proto: s.ProtocolName(), n0: s.N()}
	r.keyer, _ = sim.AsStateKeyer(s.proto)
	return r
}

// pair records one dealt interaction with the agents' pre-interaction state
// keys.
func (r *traceRecorder) pair(a, b int) {
	r.pairs = append(r.pairs, int32(a), int32(b))
	if r.keyer != nil {
		r.keys = append(r.keys, r.keyer.StateKey(a), r.keyer.StateKey(b))
	}
}

// census snapshots the population's state multiset (nil when the protocol
// has no state-key capability; the trace then replays on the agent backend
// only).
func (r *traceRecorder) census() map[uint64]int64 {
	if r.keyer == nil {
		return nil
	}
	m := make(map[uint64]int64, 64)
	for i := 0; i < r.s.N(); i++ {
		m[r.keyer.StateKey(i)]++
	}
	return m
}

// event records one fired event as the census diff it caused.
func (r *traceRecorder) event(ev workload.Event, before map[uint64]int64, nAfter int) {
	te := workload.TraceEvent{Event: ev, NAfter: nAfter}
	if r.keyer != nil {
		after := r.census()
		for k, c := range after {
			if d := c - before[k]; d != 0 {
				te.Deltas = append(te.Deltas, workload.KeyDelta{Key: k, Delta: d})
			}
		}
		for k, c := range before {
			if _, live := after[k]; !live {
				te.Deltas = append(te.Deltas, workload.KeyDelta{Key: k, Delta: -c})
			}
		}
		sort.Slice(te.Deltas, func(i, j int) bool { return te.Deltas[i].Key < te.Deltas[j].Key })
	}
	r.events = append(r.events, te)
}

func (r *traceRecorder) finish(steps uint64) *WorkloadTrace {
	return &WorkloadTrace{tr: &workload.Trace{
		Version:  workload.TraceVersion,
		Protocol: r.proto,
		N:        r.n0,
		Steps:    steps,
		Pairs:    r.pairs,
		Keys:     r.keys,
		Events:   r.events,
	}}
}

// WorkloadTrace is a recorded workload run (workload.Trace v1): the full
// interaction schedule, the pre-interaction state keys, and every fired
// event with its exact effect on the state multiset. Record one with the
// RecordTrace run option; replay it with System.ReplayTrace — the replay
// reproduces the recording bit-exactly, on the agent backend (pairs plus
// re-fired events) and on the species backend (state-key pairs plus recorded
// count deltas) alike.
type WorkloadTrace struct {
	tr *workload.Trace
}

// Version returns the trace format version.
func (t *WorkloadTrace) Version() int { return t.tr.Version }

// Protocol returns the protocol the trace was recorded from.
func (t *WorkloadTrace) Protocol() string { return t.tr.Protocol }

// N returns the initial population size.
func (t *WorkloadTrace) N() int { return t.tr.N }

// Steps returns the number of recorded interactions.
func (t *WorkloadTrace) Steps() uint64 { return t.tr.Steps }

// Events returns the number of recorded events.
func (t *WorkloadTrace) Events() int { return len(t.tr.Events) }

// Encode writes the trace as versioned JSON.
func (t *WorkloadTrace) Encode(w io.Writer) error { return t.tr.Encode(w) }

// DecodeWorkloadTrace reads a versioned JSON trace, rejecting unknown
// versions and internally inconsistent traces.
func DecodeWorkloadTrace(r io.Reader) (*WorkloadTrace, error) {
	tr, err := workload.Decode(r)
	if err != nil {
		return nil, err
	}
	return &WorkloadTrace{tr: tr}, nil
}

// countReplayer is the species backend's replay surface (promoted from
// *species.System through its capability wrappers).
type countReplayer interface {
	ApplyPair(a, b uint64) error
	ApplyDeltas(deltas []workload.KeyDelta) error
}

// ReplayTrace re-executes a recorded workload trace on this system, which
// must run the trace's protocol at the trace's population size, positioned
// at the same starting configuration the recording started from. On the
// agent backend the recorded pairs are re-dealt and the events re-fired from
// their recorded seeds; on the species backend the recorded state-key pairs
// and per-event count deltas are applied. Both reproduce the recording's
// final configuration exactly (the bit-exact replay property pinned by the
// workload property tests).
func (s *System) ReplayTrace(t *WorkloadTrace) error {
	if t == nil || t.tr == nil {
		return fmt.Errorf("sspp: nil workload trace")
	}
	tr := t.tr
	if err := tr.Validate(); err != nil {
		return err
	}
	if tr.Topology != "" {
		return fmt.Errorf("sspp: edge-indexed traces (topology %q) replay through DecodeRecording", tr.Topology)
	}
	if got := s.ProtocolName(); got != tr.Protocol {
		return fmt.Errorf("sspp: trace was recorded from protocol %q, this system runs %q", tr.Protocol, got)
	}
	if got := s.N(); got != tr.N {
		return fmt.Errorf("sspp: trace starts at population %d, this system holds %d", tr.N, got)
	}
	if cr, ok := s.proto.(countReplayer); ok {
		if uint64(len(tr.Keys)) != 2*tr.Steps {
			return fmt.Errorf("sspp: trace carries no state keys (recorded from a protocol without the state-key capability); replay it on the agent backend")
		}
		ei := 0
		for step := uint64(0); step <= tr.Steps; step++ {
			for ei < len(tr.Events) && tr.Events[ei].At == step {
				if err := cr.ApplyDeltas(tr.Events[ei].Deltas); err != nil {
					return err
				}
				ei++
			}
			if step < tr.Steps {
				if err := cr.ApplyPair(tr.Keys[2*step], tr.Keys[2*step+1]); err != nil {
					return err
				}
			}
		}
		s.clock += tr.Steps
		return nil
	}
	ei := 0
	for step := uint64(0); step <= tr.Steps; step++ {
		for ei < len(tr.Events) && tr.Events[ei].At == step {
			if err := s.applyWorkloadEvent(tr.Events[ei].Event); err != nil {
				return err
			}
			ei++
		}
		if step < tr.Steps {
			s.proto.Interact(int(tr.Pairs[2*step]), int(tr.Pairs[2*step+1]))
		}
	}
	s.clock += tr.Steps
	return nil
}
