// Looseleader: contrast the paper's strict self-stabilization with the
// loosely-stabilizing leader election of the related work (Sudo et al.):
// loose stabilization converges fast from any configuration but holds the
// leader only for a finite, τ-controlled time.
//
//	go run ./examples/looseleader [-n 64]
package main

import (
	"flag"
	"fmt"
	"math"

	"sspp"
	"sspp/internal/baseline"
	"sspp/internal/sim"
)

func main() {
	n := flag.Int("n", 64, "population size")
	flag.Parse()

	nln := float64(*n) * math.Log(float64(*n))
	fmt.Printf("loosely-stabilizing leader election, n = %d\n\n", *n)
	fmt.Printf("%-12s %-16s %-18s\n", "τ/(n·ln n)", "converged after", "held unique leader")

	for _, factor := range []float64{0.25, 1, 4, 16} {
		tau := int32(factor * nln)
		l := baseline.NewLooseLE(*n, tau)
		// The public schedulers plug into the internal runner directly; the
		// batched scheduler deals the identical uniform schedule.
		sched := sspp.NewBatch(7, 0)
		res := sim.RunSched(l, sched, sim.Options{
			MaxInteractions:    uint64(64 * nln),
			StopAfterStableFor: uint64(4 * *n),
		})
		conv := "never"
		if res.Stabilized {
			conv = fmt.Sprintf("%d", res.StabilizedAt)
		}
		// Holding fraction over a follow-up window.
		held, polls := 0, 0
		for i := 0; i < 400; i++ {
			sim.StepsSched(l, sched, uint64(*n))
			polls++
			if l.Correct() {
				held++
			}
		}
		fmt.Printf("%-12.2f %-16s %6.1f%% of the time\n",
			factor, conv, 100*float64(held)/float64(polls))
	}

	fmt.Println("\nsmall τ: timers expire before the leader's heartbeat epidemic arrives,")
	fmt.Println("so spurious leaders keep appearing; large τ holds the leader long — but")
	fmt.Println("never forever. ElectLeader_r (examples/quickstart) holds it forever.")
}
