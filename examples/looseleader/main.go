// Looseleader: contrast the paper's strict self-stabilization with the
// loosely-stabilizing leader election of the related work (Sudo et al.):
// loose stabilization converges fast from any configuration but holds the
// leader only for a finite, τ-controlled time. The protocol comes from the
// public registry (Config.Protocol = "loosele") and runs through the same
// engine as ElectLeader_r — having no safe set, it is measured by the
// engine's fallback: correct output held through a confirmation window.
//
//	go run ./examples/looseleader [-n 64]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"sspp"
)

func main() {
	n := flag.Int("n", 64, "population size")
	flag.Parse()

	// The timer ticks on an agent's own interactions and the leader's
	// heartbeat epidemic needs Θ(log n) of them to arrive, so the
	// interesting τ scale is Θ(ln n).
	ln := math.Log(float64(*n))
	fmt.Printf("loosely-stabilizing leader election, n = %d\n\n", *n)
	fmt.Printf("%-12s %-16s %-18s\n", "τ/ln(n)", "converged after", "held unique leader")

	for _, factor := range []float64{0.5, 1, 4, 16} {
		tau := int32(factor * ln)
		if tau < 1 {
			// Keep the tiny-τ row honest at small n: Config.Tau = 0 would
			// select the registry default (4·ln n) instead.
			tau = 1
		}
		sys, err := sspp.New(sspp.Config{Protocol: sspp.ProtocolLooseLE, N: *n, Tau: tau})
		if err != nil {
			log.Fatal(err)
		}
		// The batched scheduler deals the identical uniform schedule.
		sched := sspp.NewBatch(7, 0)
		res := sys.Run(
			sspp.WithScheduler(sched),
			sspp.MaxInteractions(uint64(200*float64(*n)*ln)),
			sspp.Confirm(uint64(4**n)),
		)
		conv := "never"
		if res.Stabilized {
			conv = fmt.Sprintf("%d", res.StabilizedAt)
		}
		// Holding fraction over a follow-up window, on the same schedule.
		held, polls := 0, 0
		for i := 0; i < 400; i++ {
			sys.StepSched(sched, uint64(*n))
			polls++
			if sys.Correct() {
				held++
			}
		}
		fmt.Printf("%-12.2f %-16s %6.1f%% of the time\n",
			factor, conv, 100*float64(held)/float64(polls))
	}

	fmt.Println("\nsmall τ: timers expire before the leader's heartbeat epidemic arrives,")
	fmt.Println("so spurious leaders keep appearing; large τ holds the leader long — but")
	fmt.Println("never forever. ElectLeader_r (examples/quickstart) holds it forever.")
}
