// Topology: run the same protocols on different interaction graphs. The
// paper's model is the complete graph — every ordered pair of agents may
// interact — but real deployments (and the ring leader-election literature,
// arXiv:2009.10926) are not complete. Config.Topology restricts the
// scheduler to an interaction graph's edge set; everything else (run
// options, predicates, recordings, ensembles) composes unchanged.
//
//	go run ./examples/topology
package main

import (
	"fmt"
	"log"

	"sspp"
)

func main() {
	const n, r = 16, 4

	// The paper's ElectLeader_r on three topologies. On the complete graph
	// it stabilizes in Theorem 1.1 time; on a random 8-regular expander it
	// still stabilizes, paying a mixing-time blowup; the ring defeats it
	// within any practical budget — complete-graph protocols do not port to
	// sparse topologies (experiment T-ring quantifies this).
	for _, top := range []sspp.Topology{
		sspp.Complete(),
		sspp.RandomRegular(8),
		sspp.Ring(),
	} {
		sys, err := sspp.New(sspp.Config{N: n, R: r, Seed: 1, Topology: top})
		if err != nil {
			log.Fatal(err)
		}
		name, edges := sys.Topology()
		res := sys.Run(sspp.SchedulerSeed(2), sspp.MaxInteractions(2_000_000))
		verdict := fmt.Sprintf("safe set after %d interactions", res.StabilizedAt)
		if !res.Stabilized {
			verdict = fmt.Sprintf("NO stabilization within %d interactions", res.Interactions)
		}
		fmt.Printf("electleader on %-17s (%3d edges): %s\n", name, edges, verdict)
	}

	// Broadcast-style protocols port to any connected graph: the namerank
	// baseline elects by names spreading hop by hop, so the ring only slows
	// it down.
	ring, err := sspp.New(sspp.Config{Protocol: sspp.ProtocolNameRank, N: n, Seed: 3,
		Topology: sspp.Ring()})
	if err != nil {
		log.Fatal(err)
	}
	res := ring.Run(sspp.SchedulerSeed(4))
	fmt.Printf("namerank    on ring: stabilized=%v after %d interactions\n",
		res.Stabilized, res.StabilizedAt)

	// Topology schedules record as edge indices and replay exactly: capture
	// a ring schedule once, re-run it on a fresh identical system.
	build := func() *sspp.System {
		sys, err := sspp.New(sspp.Config{Protocol: sspp.ProtocolNameRank, N: n, Seed: 3,
			Topology: sspp.Ring()})
		if err != nil {
			log.Fatal(err)
		}
		return sys
	}
	rec := sspp.NewRecorder(build().Sampler(4))
	first := build().Run(sspp.WithScheduler(rec))
	replayed := build().Run(sspp.WithScheduler(rec.Recording().Replay()))
	same := first.Interactions == replayed.Interactions &&
		first.Stabilized == replayed.Stabilized &&
		first.StabilizedAt == replayed.StabilizedAt
	fmt.Printf("recorded %d ring edges; replay reproduces the run exactly: %v\n",
		rec.Recording().Len(), same)

	// NewTopology runs user graphs: a star forces every interaction through
	// a hub.
	star := sspp.NewTopology("star", func(n int, _ uint64) [][2]int {
		var edges [][2]int
		for i := 1; i < n; i++ {
			edges = append(edges, [2]int{0, i}, [2]int{i, 0})
		}
		return edges
	})
	hub, err := sspp.New(sspp.Config{Protocol: sspp.ProtocolNameRank, N: n, Seed: 5,
		Topology: star})
	if err != nil {
		log.Fatal(err)
	}
	res = hub.Run(sspp.SchedulerSeed(6))
	name, edges := hub.Topology()
	fmt.Printf("namerank    on %s (%d edges): stabilized=%v after %d interactions\n",
		name, edges, res.Stabilized, res.StabilizedAt)
}
