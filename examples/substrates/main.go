// Substrates: demonstrate the two probabilistic primitives the paper's
// analysis leans on — one-way epidemics (Lemma A.2) and token load
// balancing (Lemma E.6 / Berenbrink et al. 2019) — and measure their
// constants. Each substrate is written here as a tiny custom protocol and
// driven by the same public engine as everything else (sspp.NewCustom +
// Run with a first-class stop condition): the engine is not specific to
// leader election.
//
//	go run ./examples/substrates [-n 512]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"sspp"
)

// epidemicProto is a one- or two-way infection epidemic: agent 0 starts
// informed, Interact spreads the information along the interaction edge,
// and the output is correct once everyone is informed.
type epidemicProto struct {
	infected []bool
	count    int
	twoWay   bool
}

func newEpidemic(n int, twoWay bool) *epidemicProto {
	e := &epidemicProto{infected: make([]bool, n), twoWay: twoWay}
	e.infected[0] = true
	e.count = 1
	return e
}

func (e *epidemicProto) N() int { return len(e.infected) }

func (e *epidemicProto) Interact(a, b int) {
	if e.infected[a] && !e.infected[b] {
		e.infected[b] = true
		e.count++
	} else if e.twoWay && e.infected[b] && !e.infected[a] {
		e.infected[a] = true
		e.count++
	}
}

func (e *epidemicProto) Correct() bool { return e.count == len(e.infected) }

// balanceProto is the token load-balancing substrate of Berenbrink et al.
// (IPDPS 2019): 2n tokens start as a point mass on agent 0, and an
// interacting pair rebalances to ⌈(x+y)/2⌉ and ⌊(x+y)/2⌋ tokens. Correct
// once the discrepancy (max − min load) is at most 3.
type balanceProto struct {
	tokens []int64
}

func newPointMass(n int, tokens int64) *balanceProto {
	p := &balanceProto{tokens: make([]int64, n)}
	p.tokens[0] = tokens
	return p
}

func (p *balanceProto) N() int { return len(p.tokens) }

func (p *balanceProto) Interact(a, b int) {
	sum := p.tokens[a] + p.tokens[b]
	half := sum / 2
	p.tokens[a] = sum - half
	p.tokens[b] = half
}

func (p *balanceProto) discrepancy() int64 {
	min, max := p.tokens[0], p.tokens[0]
	for _, t := range p.tokens[1:] {
		if t < min {
			min = t
		}
		if t > max {
			max = t
		}
	}
	return max - min
}

func (p *balanceProto) Correct() bool { return p.discrepancy() <= 3 }

// measure runs one substrate to its stop condition and returns the arrival
// time in interactions (-1 when the budget ran out).
func measure(proto sspp.Protocol, seed, budget uint64) float64 {
	sys, err := sspp.NewCustom(proto)
	if err != nil {
		log.Fatal(err)
	}
	res := sys.Run(
		sspp.Until(sspp.CorrectOutput),
		sspp.SchedulerSeed(seed),
		sspp.MaxInteractions(budget),
		sspp.PollEvery(8),
	)
	if !res.Stabilized {
		return -1
	}
	return float64(res.StabilizedAt)
}

// acc is a tiny mean/max accumulator.
type acc struct {
	sum, max float64
	n        int
}

func (a *acc) add(x float64) {
	if x < 0 {
		return
	}
	a.sum += x
	a.n++
	if x > a.max {
		a.max = x
	}
}

func (a *acc) mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

func main() {
	n := flag.Int("n", 512, "population size")
	runs := flag.Int("runs", 20, "runs per measurement")
	flag.Parse()

	nln := float64(*n) * math.Log(float64(*n))
	budget := uint64(200 * nln)

	// Lemma A.2: epidemics complete within c_epi·n·log n, c_epi < 7.
	var one, two acc
	for s := 0; s < *runs; s++ {
		one.add(measure(newEpidemic(*n, false), uint64(s), budget))
		two.add(measure(newEpidemic(*n, true), uint64(s)+500, budget))
	}
	fmt.Printf("epidemics at n = %d (%d runs):\n", *n, *runs)
	fmt.Printf("  one-way:  mean %-9.0f interactions  = %.2f · n·ln n (max %.2f)\n",
		one.mean(), one.mean()/nln, one.max/nln)
	fmt.Printf("  two-way:  mean %-9.0f interactions  = %.2f · n·ln n (max %.2f)\n",
		two.mean(), two.mean()/nln, two.max/nln)
	fmt.Printf("  Lemma A.2 claims completion within c_epi·n·log n for c_epi < 7\n\n")

	// Lemma E.6 substrate: load balancing from a point mass of 2n tokens.
	var lb acc
	for s := 0; s < *runs; s++ {
		lb.add(measure(newPointMass(*n, int64(2**n)), uint64(s)+900, budget))
	}
	fmt.Printf("load balancing at n = %d, 2n tokens on one agent (%d runs):\n", *n, *runs)
	fmt.Printf("  discrepancy ≤ 3 after mean %-9.0f interactions = %.2f · n·ln n\n",
		lb.mean(), lb.mean()/nln)
	fmt.Printf("  ([9] Thm 1, which Lemma E.6 couples to message dispersal)\n")
}
