// Substrates: demonstrate the two probabilistic primitives the paper's
// analysis leans on — one-way epidemics (Lemma A.2) and token load balancing
// (Lemma E.6 / Berenbrink et al. 2019) — and measure their constants.
//
//	go run ./examples/substrates [-n 512]
package main

import (
	"flag"
	"fmt"
	"math"

	"sspp/internal/epidemic"
	"sspp/internal/loadbalance"
	"sspp/internal/rng"
	"sspp/internal/stats"
)

func main() {
	n := flag.Int("n", 512, "population size")
	runs := flag.Int("runs", 20, "runs per measurement")
	flag.Parse()

	nln := float64(*n) * math.Log(float64(*n))

	// Lemma A.2: epidemics complete within c_epi·n·log n, c_epi < 7.
	var one, two stats.Acc
	for s := 0; s < *runs; s++ {
		one.Add(float64(epidemic.CompletionTime(*n, rng.New(uint64(s)), false)))
		two.Add(float64(epidemic.CompletionTime(*n, rng.New(uint64(s)+500), true)))
	}
	fmt.Printf("epidemics at n = %d (%d runs):\n", *n, *runs)
	fmt.Printf("  one-way:  mean %-9.0f interactions  = %.2f · n·ln n (max %.2f)\n",
		one.Mean(), one.Mean()/nln, one.Max()/nln)
	fmt.Printf("  two-way:  mean %-9.0f interactions  = %.2f · n·ln n (max %.2f)\n",
		two.Mean(), two.Mean()/nln, two.Max()/nln)
	fmt.Printf("  Lemma A.2 claims completion within c_epi·n·log n for c_epi < 7\n\n")

	// Lemma E.6 substrate: load balancing from a point mass of 2n tokens.
	var lb stats.Acc
	for s := 0; s < *runs; s++ {
		p := loadbalance.NewPointMass(*n, int64(2**n))
		took, ok := loadbalance.RunUntilDiscrepancy(p, rng.New(uint64(s)+900), 3,
			uint64(200*nln))
		if ok {
			lb.Add(float64(took))
		}
	}
	fmt.Printf("load balancing at n = %d, 2n tokens on one agent (%d runs):\n", *n, *runs)
	fmt.Printf("  discrepancy ≤ 3 after mean %-9.0f interactions = %.2f · n·ln n\n",
		lb.Mean(), lb.Mean()/nln)
	fmt.Printf("  ([9] Thm 1, which Lemma E.6 couples to message dispersal)\n")
}
