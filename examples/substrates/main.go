// Substrates: demonstrate the two probabilistic primitives the paper's
// analysis leans on — one-way epidemics (Lemma A.2) and token load
// balancing (Lemma E.6 / Berenbrink et al. 2019) — and measure their
// constants. Each substrate is written here as a tiny custom protocol and
// driven by the same public engine as everything else (sspp.NewCustom +
// Run with a first-class stop condition): the engine is not specific to
// leader election.
//
// Both substrates also carry a species form (sspp.SpeciesModel +
// sspp.NewSpecies): the same dynamics expressed over state counts instead
// of agents, which the count-based backend runs at populations far beyond
// one-struct-per-agent storage — the final section re-measures the epidemic
// constant at n two orders of magnitude larger.
//
//	go run ./examples/substrates [-n 512]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"sspp"
)

// epidemicProto is a one- or two-way infection epidemic: agent 0 starts
// informed, Interact spreads the information along the interaction edge,
// and the output is correct once everyone is informed.
type epidemicProto struct {
	infected []bool
	count    int
	twoWay   bool
}

func newEpidemic(n int, twoWay bool) *epidemicProto {
	e := &epidemicProto{infected: make([]bool, n), twoWay: twoWay}
	e.infected[0] = true
	e.count = 1
	return e
}

func (e *epidemicProto) N() int { return len(e.infected) }

func (e *epidemicProto) Interact(a, b int) {
	if e.infected[a] && !e.infected[b] {
		e.infected[b] = true
		e.count++
	} else if e.twoWay && e.infected[b] && !e.infected[a] {
		e.infected[a] = true
		e.count++
	}
}

func (e *epidemicProto) Correct() bool { return e.count == len(e.infected) }

// balanceProto is the token load-balancing substrate of Berenbrink et al.
// (IPDPS 2019): 2n tokens start as a point mass on agent 0, and an
// interacting pair rebalances to ⌈(x+y)/2⌉ and ⌊(x+y)/2⌋ tokens. Correct
// once the discrepancy (max − min load) is at most 3.
type balanceProto struct {
	tokens []int64
}

func newPointMass(n int, tokens int64) *balanceProto {
	p := &balanceProto{tokens: make([]int64, n)}
	p.tokens[0] = tokens
	return p
}

func (p *balanceProto) N() int { return len(p.tokens) }

func (p *balanceProto) Interact(a, b int) {
	sum := p.tokens[a] + p.tokens[b]
	half := sum / 2
	p.tokens[a] = sum - half
	p.tokens[b] = half
}

func (p *balanceProto) discrepancy() int64 {
	min, max := p.tokens[0], p.tokens[0]
	for _, t := range p.tokens[1:] {
		if t < min {
			min = t
		}
		if t > max {
			max = t
		}
	}
	return max - min
}

func (p *balanceProto) Correct() bool { return p.discrepancy() <= 3 }

// epidemicModel is the one-way epidemic in species form: two states
// (0 = susceptible, 1 = informed), an informed initiator infects the
// responder, and the run is done when every agent sits in state 1. The
// count-based backend runs it with O(1) work per interaction regardless of
// n — there are never more than two occupied states.
func epidemicModel(n int) sspp.SpeciesModel {
	return sspp.SpeciesModel{
		States: 2,
		Init: func() ([]uint64, []int64) {
			return []uint64{0, 1}, []int64{int64(n) - 1, 1}
		},
		React: func(a, b uint64, _ *sspp.Rand) (uint64, uint64) {
			if a == 1 {
				return 1, 1
			}
			return a, b
		},
		Leader:  func(key uint64) bool { return key == 1 },
		Correct: func(v sspp.StateCounts) bool { return v.Count(1) == int64(v.N()) },
	}
}

// balanceModel is the load-balancing substrate in species form: the state
// key is the agent's token load, and an interacting pair rebalances to
// ⌈(x+y)/2⌉ / ⌊(x+y)/2⌋. Correct once the spread of occupied loads is at
// most 3 — a scan over occupied states, not agents.
func balanceModel(n int, tokens int64) sspp.SpeciesModel {
	return sspp.SpeciesModel{
		Init: func() ([]uint64, []int64) {
			return []uint64{0, uint64(tokens)}, []int64{int64(n) - 1, 1}
		},
		React: func(a, b uint64, _ *sspp.Rand) (uint64, uint64) {
			sum := a + b
			half := sum / 2
			return sum - half, half
		},
		Leader: func(key uint64) bool { return false },
		Correct: func(v sspp.StateCounts) bool {
			var min, max uint64
			first := true
			v.Each(func(key uint64, _ int64) bool {
				if first {
					min, max = key, key
					first = false
				} else {
					if key < min {
						min = key
					}
					if key > max {
						max = key
					}
				}
				return true
			})
			return !first && max-min <= 3
		},
	}
}

// measureSpecies runs a species model to correct output and returns the
// arrival time in interactions (-1 when the budget ran out).
func measureSpecies(model sspp.SpeciesModel, seed, budget uint64, poll uint64) float64 {
	sys, err := sspp.NewSpecies(model)
	if err != nil {
		log.Fatal(err)
	}
	res := sys.Run(
		sspp.Until(sspp.CorrectOutput),
		sspp.SchedulerSeed(seed),
		sspp.MaxInteractions(budget),
		sspp.PollEvery(poll),
	)
	if !res.Stabilized {
		return -1
	}
	return float64(res.StabilizedAt)
}

// measure runs one substrate to its stop condition and returns the arrival
// time in interactions (-1 when the budget ran out).
func measure(proto sspp.Protocol, seed, budget uint64) float64 {
	sys, err := sspp.NewCustom(proto)
	if err != nil {
		log.Fatal(err)
	}
	res := sys.Run(
		sspp.Until(sspp.CorrectOutput),
		sspp.SchedulerSeed(seed),
		sspp.MaxInteractions(budget),
		sspp.PollEvery(8),
	)
	if !res.Stabilized {
		return -1
	}
	return float64(res.StabilizedAt)
}

// acc is a tiny mean/max accumulator.
type acc struct {
	sum, max float64
	n        int
}

func (a *acc) add(x float64) {
	if x < 0 {
		return
	}
	a.sum += x
	a.n++
	if x > a.max {
		a.max = x
	}
}

func (a *acc) mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

func main() {
	n := flag.Int("n", 512, "population size")
	runs := flag.Int("runs", 20, "runs per measurement")
	flag.Parse()

	nln := float64(*n) * math.Log(float64(*n))
	budget := uint64(200 * nln)

	// Lemma A.2: epidemics complete within c_epi·n·log n, c_epi < 7.
	var one, two acc
	for s := 0; s < *runs; s++ {
		one.add(measure(newEpidemic(*n, false), uint64(s), budget))
		two.add(measure(newEpidemic(*n, true), uint64(s)+500, budget))
	}
	fmt.Printf("epidemics at n = %d (%d runs):\n", *n, *runs)
	fmt.Printf("  one-way:  mean %-9.0f interactions  = %.2f · n·ln n (max %.2f)\n",
		one.mean(), one.mean()/nln, one.max/nln)
	fmt.Printf("  two-way:  mean %-9.0f interactions  = %.2f · n·ln n (max %.2f)\n",
		two.mean(), two.mean()/nln, two.max/nln)
	fmt.Printf("  Lemma A.2 claims completion within c_epi·n·log n for c_epi < 7\n\n")

	// Lemma E.6 substrate: load balancing from a point mass of 2n tokens.
	var lb acc
	for s := 0; s < *runs; s++ {
		lb.add(measure(newPointMass(*n, int64(2**n)), uint64(s)+900, budget))
	}
	fmt.Printf("load balancing at n = %d, 2n tokens on one agent (%d runs):\n", *n, *runs)
	fmt.Printf("  discrepancy ≤ 3 after mean %-9.0f interactions = %.2f · n·ln n\n",
		lb.mean(), lb.mean()/nln)
	fmt.Printf("  ([9] Thm 1, which Lemma E.6 couples to message dispersal)\n\n")

	// Species forms: the same substrates over state counts. First confirm
	// the constants agree at the agent-scale n, then push the epidemic two
	// orders of magnitude past it — a population the agent representation
	// would not enumerate per interaction.
	var spEpi, spLB acc
	for s := 0; s < *runs; s++ {
		spEpi.add(measureSpecies(epidemicModel(*n), uint64(s)+1300, budget, 8))
		spLB.add(measureSpecies(balanceModel(*n, int64(2**n)), uint64(s)+1700, budget, 8))
	}
	fmt.Printf("species backend at n = %d (same dynamics, state counts):\n", *n)
	fmt.Printf("  one-way epidemic:  mean %-9.0f interactions = %.2f · n·ln n\n",
		spEpi.mean(), spEpi.mean()/nln)
	fmt.Printf("  load balancing:    mean %-9.0f interactions = %.2f · n·ln n\n\n",
		spLB.mean(), spLB.mean()/nln)

	big := 1 << 16
	bigNln := float64(big) * math.Log(float64(big))
	bigBudget := uint64(40 * bigNln)
	var bigEpi acc
	for s := 0; s < 5; s++ {
		bigEpi.add(measureSpecies(epidemicModel(big), uint64(s)+2300, bigBudget, uint64(big)/4))
	}
	fmt.Printf("species epidemic at n = %d (5 runs): mean %.0f interactions = %.2f · n·ln n\n",
		big, bigEpi.mean(), bigEpi.mean()/bigNln)
	fmt.Printf("  the Lemma A.2 constant is scale-free; the species backend reaches this n with two occupied states\n")
}
