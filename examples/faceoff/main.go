// Faceoff: run every protocol in the public registry through the one
// engine — the paper's ElectLeader_r next to the related-work baselines
// that anchor its trade-off curve — and watch the capability interfaces at
// work: rank outputs, safe sets (or the confirmed-output fallback), and
// adversarial injection where the protocol supports it.
//
//	go run ./examples/faceoff [-n 48] [-r 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"sspp"
)

func main() {
	n := flag.Int("n", 48, "population size")
	r := flag.Int("r", 8, "ElectLeader_r trade-off parameter (ignored by baselines)")
	flag.Parse()

	fmt.Printf("protocol faceoff at n = %d: one engine, every protocol\n\n", *n)
	fmt.Printf("%-12s %-40s %-14s %-14s %-10s\n",
		"protocol", "capabilities", "stop condition", "interactions", "par. time")

	for _, info := range sspp.Protocols() {
		sys, err := sspp.New(sspp.Config{Protocol: info.Name, N: *n, R: *r, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		// Self-stabilizing protocols take the canonical fault first; the
		// rest run from their clean start (no recovery guarantee to probe).
		start := "clean start"
		if err := sys.Inject(sspp.AdversaryTwoLeaders, 7); err == nil {
			start = "two leaders injected"
		}
		res := sys.Run(sspp.SchedulerSeed(2))
		// StabilizedAt excludes any confirmation window (loosele's fallback
		// runs 20·n past it), keeping the two time columns consistent.
		outcome := fmt.Sprintf("%d", res.StabilizedAt)
		pt := fmt.Sprintf("%.1f", res.ParallelTime)
		if !res.Stabilized {
			outcome, pt = "never", "-"
		}
		fmt.Printf("%-12s %-40s %-14s %-14s %-10s   (%s)\n",
			info.Name, strings.Join(info.Capabilities, ","), res.Condition,
			outcome, pt, start)
	}

	fmt.Println("\nthe engine dispatches on each protocol's capabilities: protocols with a")
	fmt.Println("safe set stop on the paper's Lemma 6.1 notion; loosele has none, so the")
	fmt.Println("SafeSet condition falls back to correct output confirmed for 20·n")
	fmt.Println("interactions; namerank and fastle reject injection — they are not")
	fmt.Println("self-stabilizing, which is exactly the gap Theorem 1.1 closes.")

	// The same engine also runs the whole comparison as one declarative
	// grid; see cmd/benchtab -compare for the full faceoff table.
	ens, err := sspp.NewEnsemble(sspp.Grid{
		Protocols: []string{sspp.ProtocolElectLeader, sspp.ProtocolCIW},
		Points:    []sspp.Point{{N: *n, R: *r}},
		Seeds:     3,
	})
	if err != nil {
		log.Fatal(err)
	}
	cmp := ens.Run().Compare()
	fmt.Println("\nensemble rematch (3 seeds, clean starts):")
	for _, row := range cmp.Rows {
		for _, cell := range row.Cells {
			fmt.Printf("  %-12s mean %.0f interactions over %d/%d runs\n",
				cell.Protocol, cell.Interactions.Mean, cell.Recovered, cell.Seeds)
		}
	}
}
