// Recovery: walk every adversarial configuration class and watch
// ElectLeader_r recover, printing which faults are repaired softly (the
// ranking survives) and which require a full reset — the §3.2 soft-reset
// mechanism in action.
//
//	go run ./examples/recovery [-n 24] [-r 6]
package main

import (
	"flag"
	"fmt"
	"log"

	"sspp"
)

func main() {
	n := flag.Int("n", 24, "population size")
	r := flag.Int("r", 6, "trade-off parameter")
	flag.Parse()

	fmt.Printf("recovery from every adversarial class (n=%d, r=%d)\n\n", *n, *r)
	fmt.Printf("%-20s %-14s %-12s %-12s %-16s\n",
		"class", "interactions", "hard resets", "soft resets", "ranking survived")

	for _, class := range sspp.AdversaryClasses() {
		sys, err := sspp.New(sspp.Config{N: *n, R: *r, Seed: 42})
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Inject(class, 43); err != nil {
			fmt.Printf("%-20s (not realizable at this n, r: %v)\n", class, err)
			continue
		}
		before := sys.Ranks()
		hadRanking := sys.CorrectRanking()
		res := sys.Run(sspp.Until(sspp.SafeSet), sspp.SchedulerSeed(44))
		if !res.Stabilized {
			fmt.Printf("%-20s did not stabilize within budget\n", class)
			continue
		}
		survived := "n/a (no initial ranking)"
		switch {
		case !hadRanking:
		case sys.HardResets() > 0:
			survived = "no (hard reset)"
		default:
			survived = "yes"
			after := sys.Ranks()
			for i := range before {
				if before[i] != after[i] {
					survived = "changed"
					break
				}
			}
		}
		if sspp.RankingPreserved(class) {
			survived += " (required, §3.2)"
		}
		fmt.Printf("%-20s %-14d %-12d %-12d %-16s\n",
			class, res.Interactions, sys.HardResets(),
			sys.EventCount("verify.soft_reset"), survived)
	}

	fmt.Println("\nmessage-layer faults (corrupt-messages, duplicate-messages) must be")
	fmt.Println("repaired with zero hard resets — the soft-reset guarantee of §3.2;")
	fmt.Println("rank-layer faults force a full reset and a fresh ranking.")
}
