// Quickstart: build an ElectLeader_r population, corrupt it, and watch it
// self-stabilize to a unique leader.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sspp"
)

func main() {
	// A population of 64 agents with trade-off parameter r = 8:
	// Theorem 1.1 promises stabilization in O((n²/r)·log n) interactions
	// using 2^O(r²·log n) states per agent.
	sys, err := sspp.New(sspp.Config{N: 64, R: 8, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("population: n=%d, r=%d (2^%.0f states per agent)\n",
		sys.N(), sys.R(), sspp.StateBits(sys.N(), sys.R()))

	// Self-stabilization means recovery from ANY configuration. Plant two
	// leaders (duplicate rank 1) — the classic fault.
	if err := sys.Inject(sspp.AdversaryTwoLeaders, 7); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("injected fault: %d agents claim to be the leader\n", sys.Leaders())

	// Run under the uniform random scheduler until the safe set (a
	// configuration that stays correct forever) is reached. Run options
	// compose: the stop condition is a first-class predicate, the budget
	// defaults to the generous Theorem 1.1 multiple.
	res := sys.Run(
		sspp.Until(sspp.SafeSet),
		sspp.SchedulerSeed(2),
	)
	if !res.Stabilized {
		log.Fatalf("no stabilization within budget (%d interactions)", res.Interactions)
	}

	leader, _ := sys.Leader()
	fmt.Printf("stabilized after %d interactions (parallel time %.1f)\n",
		res.Interactions, res.ParallelTime)
	fmt.Printf("unique leader: agent %d\n", leader)
	fmt.Printf("hard resets on the way: %d\n", sys.HardResets())
	fmt.Printf("ranking is a permutation of 1..n: %v\n", sys.CorrectRanking())
}
