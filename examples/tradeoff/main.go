// Tradeoff: sweep the parameter r at fixed n and print the space-time
// trade-off of Theorem 1.1 — stabilization time falls like 1/r while the
// per-agent state count explodes like 2^O(r²·log n).
//
//	go run ./examples/tradeoff [-n 48] [-seeds 3]
package main

import (
	"flag"
	"fmt"
	"log"

	"sspp"
)

func main() {
	n := flag.Int("n", 48, "population size")
	seeds := flag.Int("seeds", 3, "runs per r")
	flag.Parse()

	fmt.Printf("space-time trade-off at n = %d (averaged over %d seeds)\n\n", *n, *seeds)
	fmt.Printf("%-6s %-18s %-16s %-20s %-10s\n",
		"r", "interactions", "parallel time", "state bits (2^b)", "speedup")

	var base float64
	for r := 1; r <= *n/4; r *= 2 {
		mean, ok := averageStabilization(*n, r, *seeds)
		if !ok {
			fmt.Printf("%-6d (did not stabilize within budget)\n", r)
			continue
		}
		if base == 0 {
			base = mean
		}
		fmt.Printf("%-6d %-18.0f %-16.1f %-20.0f %-10.2f\n",
			r, mean, mean/float64(*n), sspp.StateBits(*n, r), base/mean)
	}
	fmt.Println("\nTheorem 1.1: interactions = O((n²/r)·log n) — doubling r should")
	fmt.Println("roughly halve the time until the Θ(n·log n) floor; the state bits")
	fmt.Println("column is the price being paid (2^O(r²·log n)).")
}

// averageStabilization runs ElectLeader_r from a full reset `seeds` times
// and returns the mean safe-set arrival in interactions.
func averageStabilization(n, r, seeds int) (float64, bool) {
	var sum float64
	count := 0
	for s := 0; s < seeds; s++ {
		sys, err := sspp.New(sspp.Config{N: n, R: r, Seed: uint64(s + 1)})
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Inject(sspp.AdversaryTriggered, uint64(s+100)); err != nil {
			log.Fatal(err)
		}
		res := sys.RunToSafeSet(uint64(s+200), 0)
		if !res.Stabilized {
			continue
		}
		sum += float64(res.Interactions)
		count++
	}
	if count == 0 {
		return 0, false
	}
	return sum / float64(count), true
}
