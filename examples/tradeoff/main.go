// Tradeoff: sweep the parameter r at fixed n and print the space-time
// trade-off of Theorem 1.1 — stabilization time falls like 1/r while the
// per-agent state count explodes like 2^O(r²·log n). The whole sweep is one
// declarative Ensemble grid, executed in parallel across GOMAXPROCS with
// deterministic aggregation.
//
//	go run ./examples/tradeoff [-n 48] [-seeds 3]
package main

import (
	"flag"
	"fmt"
	"log"

	"sspp"
)

func main() {
	n := flag.Int("n", 48, "population size")
	seeds := flag.Int("seeds", 3, "runs per r")
	workers := flag.Int("workers", 0, "ensemble workers (0 = GOMAXPROCS)")
	flag.Parse()

	// Declare the sweep: one (n, r) point per regime, all started from a
	// full reset (the triggered class), seeds independent runs each.
	var points []sspp.Point
	for r := 1; r <= *n/4; r *= 2 {
		points = append(points, sspp.Point{N: *n, R: r})
	}
	ens, err := sspp.NewEnsemble(sspp.Grid{
		Points:      points,
		Adversaries: []sspp.Adversary{sspp.AdversaryTriggered},
		Seeds:       *seeds,
	}, sspp.Workers(*workers))
	if err != nil {
		log.Fatal(err)
	}
	out := ens.Run()

	fmt.Printf("space-time trade-off at n = %d (averaged over %d seeds)\n\n", *n, *seeds)
	fmt.Printf("%-6s %-18s %-16s %-20s %-10s\n",
		"r", "interactions", "parallel time", "state bits (2^b)", "speedup")

	var base float64
	for _, cell := range out.Cells {
		r := cell.Point.R
		if cell.Recovered == 0 {
			fmt.Printf("%-6d (did not stabilize within budget)\n", r)
			continue
		}
		mean := cell.Interactions.Mean
		if base == 0 {
			base = mean
		}
		fmt.Printf("%-6d %-18.0f %-16.1f %-20.0f %-10.2f\n",
			r, mean, cell.ParallelTime.Mean, sspp.StateBits(*n, r), base/mean)
	}
	fmt.Println("\nTheorem 1.1: interactions = O((n²/r)·log n) — doubling r should")
	fmt.Println("roughly halve the time until the Θ(n·log n) floor; the state bits")
	fmt.Println("column is the price being paid (2^O(r²·log n)).")
}
