// Churn: recovery under ongoing population churn, through the public
// workload layer. The paper pitches self-stabilization as robustness to
// arbitrary disruption; a workload makes the disruption *ongoing* — agents
// leave and fresh ones join mid-run under an arrival process — and the
// engine reports recovery after every single event, not just after the
// last. The sweep below measures how per-event recovery time grows with
// the churn rate (events per unit of parallel time).
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"

	"sspp"
)

func main() {
	const n, r = 32, 8

	// One run, up close: stabilize ElectLeader_r, then replace one agent
	// every 30000 interactions (a leave paired with a join at the same
	// instant — the only churn shape a ranked population admits). The
	// bursts are far enough apart for the system to recover between them,
	// so the per-event ledger shows each replacement healing on its own.
	sys, err := sspp.New(sspp.Config{N: n, R: r, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if res := sys.Run(sspp.SchedulerSeed(2)); !res.Stabilized {
		log.Fatal("initial stabilization failed")
	}
	wl := sspp.NewWorkload(sspp.ChurnBursts(0, 90_001, 30_000, 1, 1, "", 3))
	res := sys.Run(sspp.SchedulerSeed(4), sspp.WithWorkload(wl))
	fmt.Printf("electleader n=%d under sparse replacement churn: re-stabilized=%v after %d interactions\n",
		n, res.Stabilized, res.StabilizedAt)
	for i, ev := range res.EventOutcomes() {
		if ev.Kind != "join" { // each replacement is a leave+join pair; report per pair
			continue
		}
		fmt.Printf("  replacement %d at %6d: recovered at %6d (+%d interactions)\n",
			i/2, ev.At, ev.RecoveredAt, ev.RecoveredAt-ev.At)
	}

	// The sweep: recovery time vs churn rate, over seeds, through the
	// Ensemble workload mode. Each cell stabilizes first, absorbs a
	// 10-parallel-time Poisson replacement storm, and aggregates per-event
	// recovery; the JSON of this grid is byte-identical at any worker
	// count. At these rates events strike faster than the protocols
	// recover, so recovery times are dominated by when the storm ends —
	// sustained churn pushes re-stabilization past the last event.
	fmt.Printf("\nper-event recovery vs churn rate (electleader vs ciw, n=%d, 5 seeds):\n", n)
	fmt.Printf("  %-8s %-12s %-22s %-10s\n", "rate/pt", "protocol", "mean recovery (inter.)", "recovered")
	for _, rate := range []float64{0.5, 1, 2, 4} {
		grid := sspp.Grid{
			Protocols: []string{sspp.ProtocolElectLeader, sspp.ProtocolCIW},
			Points:    []sspp.Point{{N: n, R: r}},
			Seeds:     5,
			Workload:  sspp.NewWorkload(sspp.ReplacementChurn(0, uint64(10*n), rate, "", 7)),
		}
		ens, err := sspp.NewEnsemble(grid)
		if err != nil {
			log.Fatal(err)
		}
		for _, cell := range ens.Run().Cells {
			var sum float64
			var count, recovered int
			for _, ev := range cell.Events {
				sum += ev.Recovery.Mean * float64(ev.Recovery.N)
				count += ev.Recovery.N
				recovered += ev.Recovered
			}
			mean := "-"
			if count > 0 {
				mean = fmt.Sprintf("%.0f", sum/float64(count))
			}
			fmt.Printf("  %-8.1f %-12s %-22s %d/%d\n",
				rate, cell.Protocol, mean, cell.Recovered, cell.Seeds)
		}
	}
}
