// Client: drive the sppd simulation service end to end — boot a server,
// submit an Ensemble grid, stream live checkpoints over SSE, fetch the
// content-addressed result, watch a warm repeat hit the cache, and verify a
// bit-exact trial replay through the public API.
//
//	go run ./examples/client
//
// The example talks to sppd the way any external client would: plain HTTP
// and JSON, no internal imports. The sspp import below is only for the
// replay verification at the end — decoding the recording and re-running
// the trial locally.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"sspp"
)

func main() {
	// Build and boot a private sppd on a free port. The first stdout line
	// is always "sppd listening on <addr>" — that contract is what makes
	// scripting against -addr 127.0.0.1:0 possible.
	tmp, err := os.MkdirTemp("", "sppd-client")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)
	bin := filepath.Join(tmp, "sppd")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/sppd").CombinedOutput(); err != nil {
		log.Fatalf("build sppd: %v\n%s", err, out)
	}
	srv := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "2")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	defer srv.Process.Kill()
	lines := bufio.NewScanner(stdout)
	if !lines.Scan() {
		log.Fatal("sppd exited before announcing its address")
	}
	addr, ok := strings.CutPrefix(lines.Text(), "sppd listening on ")
	if !ok {
		log.Fatalf("unexpected banner %q", lines.Text())
	}
	base := "http://" + addr
	fmt.Printf("sppd up at %s\n", base)

	// Submit a grid asynchronously: 2 points × 3 seeds of the paper's
	// ElectLeader_r, with live checkpoints every 2000 interactions.
	grid := `{
		"points": [{"n": 48, "r": 8}, {"n": 64, "r": 8}],
		"seeds": 3,
		"checkpoint_every": 2000
	}`
	resp, err := http.Post(base+"/v1/grids?async=1", "application/json", strings.NewReader(grid))
	if err != nil {
		log.Fatal(err)
	}
	var accepted struct {
		Job   string   `json:"job"`
		Cells []string `json:"cells"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("job %s: %d cells\n", accepted.Job, len(accepted.Cells))

	// Stream the SSE feed until the job finishes. Checkpoints carry
	// population snapshots (leader counts, safe-set flag) mid-flight.
	events, err := http.Get(base + "/v1/grids/" + accepted.Job + "/events")
	if err != nil {
		log.Fatal(err)
	}
	var event string
	checkpoints := 0
	sc := bufio.NewScanner(events.Body)
	for sc.Scan() {
		line := sc.Text()
		if name, ok := strings.CutPrefix(line, "event: "); ok {
			event = name
			continue
		}
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue
		}
		switch event {
		case "checkpoint":
			checkpoints++
		case "cell", "done", "error":
			fmt.Printf("  %s %s\n", event, data)
		}
	}
	events.Body.Close()
	fmt.Printf("  %d checkpoints streamed\n", checkpoints)

	// Fetch the finished result. Every cell is content-addressed: the hash
	// is a canonical encoding of the resolved cell config, so any client
	// that asks for the same science gets the same address.
	resp, err = http.Get(base + "/v1/grids/" + accepted.Job)
	if err != nil {
		log.Fatal(err)
	}
	cold, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		log.Fatalf("result fetch: status %d, err %v", resp.StatusCode, err)
	}
	var result struct {
		Cells []struct {
			Hash string `json:"hash"`
			Cell struct {
				Point        struct{ N, R int }  `json:"point"`
				Recovered    int                 `json:"recovered"`
				Interactions struct{ Mean float64 } `json:"interactions"`
				Samples      []float64           `json:"samples"`
			} `json:"cell"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(cold, &result); err != nil {
		log.Fatal(err)
	}
	for _, c := range result.Cells {
		fmt.Printf("  cell %s...: n=%d recovered %d/3, mean %.0f interactions\n",
			c.Hash[:12], c.Cell.Point.N, c.Cell.Recovered, c.Cell.Interactions.Mean)
	}

	// A warm repeat: same grid, synchronous this time. The response is
	// byte-identical and the X-Sppd-Cache header shows nothing re-ran.
	resp, err = http.Post(base+"/v1/grids", "application/json", strings.NewReader(grid))
	if err != nil {
		log.Fatal(err)
	}
	warm, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("warm repeat: X-Sppd-Cache %q, byte-identical=%v\n",
		resp.Header.Get("X-Sppd-Cache"), bytes.Equal(cold, warm))
	if !bytes.Equal(cold, warm) {
		log.Fatal("cache served different bytes for the same grid")
	}

	// Bit-exact replay: ask for the interaction schedule of one trial and
	// re-run it locally through the public API. The recording plus the
	// protocol seed fully determine the trial.
	cell := result.Cells[0]
	resp, err = http.Get(base + "/v1/cells/" + cell.Hash + "/replay?seed=0")
	if err != nil {
		log.Fatal(err)
	}
	var replay struct {
		ProtoSeed uint64          `json:"proto_seed"`
		Recording json.RawMessage `json:"recording"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&replay); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	rec, err := sspp.DecodeRecording(bytes.NewReader(replay.Recording))
	if err != nil {
		log.Fatal(err)
	}
	sys, err := sspp.New(sspp.Config{N: cell.Cell.Point.N, R: cell.Cell.Point.R, Seed: replay.ProtoSeed})
	if err != nil {
		log.Fatal(err)
	}
	res := sys.Run(sspp.Until(sspp.SafeSet), sspp.WithScheduler(rec.Replay()))
	fmt.Printf("replay: %d recorded pairs, local re-run stabilized at %d (server sample %d)\n",
		rec.Len(), res.StabilizedAt, uint64(cell.Cell.Samples[0]))
	if !res.Stabilized || res.StabilizedAt != uint64(cell.Cell.Samples[0]) {
		log.Fatal("replay diverged from the server's trial")
	}
}
