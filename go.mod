module sspp

go 1.24
