package sspp

import (
	"fmt"
	"testing"
)

// TestEveryAdversaryClassInjectsAndRecovers is the full catalogue × sizes
// table: every AdversaryClasses() entry must inject without error and the
// system must recover to the safe set of Lemma 6.1 for small (n, r) in all
// three r-regimes (constant, log-ish, linear). Message-layer classes must
// additionally keep the ranking intact (the §3.2 soft-reset guarantee,
// via RankingPreserved).
func TestEveryAdversaryClassInjectsAndRecovers(t *testing.T) {
	sizes := []struct{ n, r int }{
		{12, 3},
		{16, 4},
		{16, 8},
	}
	classes := AdversaryClasses()
	if len(classes) != 12 {
		t.Fatalf("classes = %d, want 12", len(classes))
	}
	for _, size := range sizes {
		for i, class := range classes {
			size, class, seed := size, class, uint64(i+1)
			t.Run(fmt.Sprintf("n=%d/r=%d/%s", size.n, size.r, class), func(t *testing.T) {
				t.Parallel()
				sys, err := New(Config{N: size.n, R: size.r, Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				if err := sys.Inject(class, seed+100); err != nil {
					t.Fatalf("inject: %v", err)
				}
				var before []int
				if RankingPreserved(class) {
					before = sys.Ranks()
				}
				res := sys.Run(Until(SafeSet), SchedulerSeed(seed+200))
				if !res.Stabilized {
					t.Fatalf("no recovery within %d interactions (events %s)",
						res.Interactions, sys.Events())
				}
				if sys.Leaders() != 1 {
					t.Fatalf("leaders = %d in safe set", sys.Leaders())
				}
				if !sys.CorrectRanking() {
					t.Fatal("ranking not a permutation in safe set")
				}
				if before != nil {
					if sys.HardResets() != 0 {
						t.Fatalf("message fault caused %d hard resets", sys.HardResets())
					}
					for j, r := range sys.Ranks() {
						if before[j] != r {
							t.Fatalf("rank of agent %d changed %d -> %d", j, before[j], r)
						}
					}
				}
			})
		}
	}
}

// TestDescribeEveryClass: the catalogue is fully documented.
func TestDescribeEveryClass(t *testing.T) {
	for _, c := range AdversaryClasses() {
		if DescribeAdversary(c) == "unknown class" || DescribeAdversary(c) == "" {
			t.Errorf("class %q undescribed", c)
		}
	}
	if DescribeAdversary("bogus") != "unknown class" {
		t.Error("unknown class described")
	}
}

// TestRankingPreservedCatalogue: exactly the message-layer classes promise
// ranking preservation.
func TestRankingPreservedCatalogue(t *testing.T) {
	want := map[Adversary]bool{
		AdversaryCorruptMessages:   true,
		AdversaryDuplicateMessages: true,
	}
	for _, c := range AdversaryClasses() {
		if RankingPreserved(c) != want[c] {
			t.Errorf("RankingPreserved(%q) = %v", c, RankingPreserved(c))
		}
	}
}
