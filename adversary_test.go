package sspp

import (
	"fmt"
	"testing"

	"sspp/internal/rng"
	"sspp/internal/stats/statcheck"
	"sspp/internal/trials"
)

// TestEveryAdversaryClassInjectsAndRecovers is the full catalogue × sizes
// table: every AdversaryClasses() entry must inject without error and the
// system must recover to the safe set of Lemma 6.1 for small (n, r) in all
// three r-regimes (constant, log-ish, linear). Message-layer classes must
// additionally keep the ranking intact (the §3.2 soft-reset guarantee,
// via RankingPreserved).
func TestEveryAdversaryClassInjectsAndRecovers(t *testing.T) {
	sizes := []struct{ n, r int }{
		{12, 3},
		{16, 4},
		{16, 8},
	}
	classes := AdversaryClasses()
	if len(classes) != 12 {
		t.Fatalf("classes = %d, want 12", len(classes))
	}
	for _, size := range sizes {
		for i, class := range classes {
			size, class, seed := size, class, uint64(i+1)
			t.Run(fmt.Sprintf("n=%d/r=%d/%s", size.n, size.r, class), func(t *testing.T) {
				t.Parallel()
				sys, err := New(Config{N: size.n, R: size.r, Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				if err := sys.Inject(class, seed+100); err != nil {
					t.Fatalf("inject: %v", err)
				}
				var before []int
				if RankingPreserved(class) {
					before = sys.Ranks()
				}
				res := sys.Run(Until(SafeSet), SchedulerSeed(seed+200))
				if !res.Stabilized {
					t.Fatalf("no recovery within %d interactions (events %s)",
						res.Interactions, sys.Events())
				}
				if sys.Leaders() != 1 {
					t.Fatalf("leaders = %d in safe set", sys.Leaders())
				}
				if !sys.CorrectRanking() {
					t.Fatal("ranking not a permutation in safe set")
				}
				if before != nil {
					if sys.HardResets() != 0 {
						t.Fatalf("message fault caused %d hard resets", sys.HardResets())
					}
					for j, r := range sys.Ranks() {
						if before[j] != r {
							t.Fatalf("rank of agent %d changed %d -> %d", j, before[j], r)
						}
					}
				}
			})
		}
	}
}

// TestDescribeEveryClass: the catalogue is fully documented.
func TestDescribeEveryClass(t *testing.T) {
	for _, c := range AdversaryClasses() {
		if DescribeAdversary(c) == "unknown class" || DescribeAdversary(c) == "" {
			t.Errorf("class %q undescribed", c)
		}
	}
	if DescribeAdversary("bogus") != "unknown class" {
		t.Error("unknown class described")
	}
}

// TestInjectTransientCapabilityTable: every registry protocol either
// supports transient faults (returns the victims) or fails fast with an
// error — never a silent no-op — and the Run engine rejects scheduled
// faults for the non-injectable protocols up front, with zero interactions
// executed.
func TestInjectTransientCapabilityTable(t *testing.T) {
	injectable := map[string]bool{
		ProtocolElectLeader: true,
		ProtocolCIW:         true,
		ProtocolLooseLE:     true,
		ProtocolNameRank:    false,
		ProtocolFastLE:      false,
	}
	for name, cfg := range registryConfigs() {
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			want, known := injectable[name]
			if !known {
				t.Fatalf("protocol %q missing from the test's capability table", name)
			}
			sys, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			victims, err := sys.InjectTransient(3, 7)
			if want {
				if err != nil {
					t.Fatalf("InjectTransient: %v", err)
				}
				if len(victims) != 3 {
					t.Fatalf("%d victims, want 3", len(victims))
				}
			} else {
				if err == nil {
					t.Fatal("InjectTransient silently accepted without the injectable capability")
				}
				if victims != nil {
					t.Fatalf("victims %v returned alongside the error", victims)
				}
			}

			fresh, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res := fresh.Run(SchedulerSeed(9), InjectTransientAt(50, 3, 7))
			if want {
				if res.Err != nil {
					t.Fatalf("scheduled fault rejected for an injectable protocol: %v", res.Err)
				}
			} else if res.Err == nil || res.Interactions != 0 {
				t.Fatalf("scheduled fault on %s: err=%v after %d interactions (want up-front rejection)",
					name, res.Err, res.Interactions)
			}
		})
	}
}

// churnEquivCases are the catalogue extension to the species backend: every
// churn-join class realizable by both backends of a churnable compactable
// protocol. (The species backend has no per-agent injection surface, so the
// transient classes stay agent-only; churn is the disruption shape both
// backends share.)
var churnEquivCases = []struct {
	protocol string
	class    Adversary
}{
	{ProtocolCIW, AdversaryCleanRankers},
	{ProtocolCIW, AdversaryRandomGarbage},
	{ProtocolCIW, AdversaryDuplicateRanks},
	{ProtocolLooseLE, AdversaryNoLeader},
	{ProtocolLooseLE, AdversaryTwoLeaders},
	{ProtocolLooseLE, AdversaryRandomGarbage},
}

// collectChurnSamples runs paired churn trials of one (protocol, class) on
// one backend at n=512: each trial stabilizes through a five-burst
// join/leave storm whose joins enter in the adversary class, and the sample
// is the confirmed re-stabilization time. Seeds are pre-derived per trial
// index, so both backends sample at matched seeds (the equiv_test.go
// pattern).
func collectChurnSamples(t *testing.T, protocol string, class Adversary, count int, baseSeed uint64, backend string) (samples []float64, failures int) {
	t.Helper()
	const n = 512
	type outcome struct {
		took uint64
		ok   bool
	}
	outs := trials.Run(0, count, baseSeed, func(_ int, src *rng.PRNG) outcome {
		protoSeed := src.Uint64()
		schedSeed := src.Uint64()
		wlSeed := src.Uint64()
		sys, err := New(Config{Protocol: protocol, N: n, Seed: protoSeed, Backend: backend})
		if err != nil {
			return outcome{}
		}
		wl := NewWorkload(ChurnBursts(uint64(n), uint64(5*n)+1, uint64(n), 8, 8, class, wlSeed))
		res := sys.Run(
			Until(CorrectOutput),
			Confirm(uint64(4*n)),
			SchedulerSeed(schedSeed),
			WithWorkload(wl),
		)
		if res.Err != nil || !res.Stabilized {
			return outcome{}
		}
		return outcome{took: res.StabilizedAt, ok: true}
	})
	for _, o := range outs {
		if o.ok {
			samples = append(samples, float64(o.took))
		} else {
			failures++
		}
	}
	return samples, failures
}

// TestChurnClassBackendEquivalence extends the adversary catalogue across
// backends: for every churn-join class both backends realize, the agent and
// species re-stabilization-time distributions under the identical churn
// workload must be statistically indistinguishable (KS + Mann–Whitney at
// alpha 0.01, the internal/species equivalence gate).
func TestChurnClassBackendEquivalence(t *testing.T) {
	count := 200
	if testing.Short() {
		count = 60
	}
	for i, tc := range churnEquivCases {
		tc, baseSeed := tc, uint64(2000+10*i)
		t.Run(tc.protocol+"/"+string(tc.class), func(t *testing.T) {
			t.Parallel()
			agent, agentFail := collectChurnSamples(t, tc.protocol, tc.class, count, baseSeed, BackendAgent)
			spec, specFail := collectChurnSamples(t, tc.protocol, tc.class, count, baseSeed, BackendSpecies)
			if diff := agentFail - specFail; diff < -2 || diff > 2 {
				t.Fatalf("failure counts diverge: agent %d, species %d", agentFail, specFail)
			}
			if len(agent) < count*9/10 || len(spec) < count*9/10 {
				t.Fatalf("too many failed trials: agent %d/%d, species %d/%d ok",
					len(agent), count, len(spec), count)
			}
			eq := statcheck.CheckEquivalence(tc.protocol+"/"+string(tc.class), agent, spec, 0.01)
			t.Log(eq)
			if !eq.Passed {
				t.Fatalf("backends statistically distinguishable under churn: %v", eq)
			}
		})
	}
}

// TestRankingPreservedCatalogue: exactly the message-layer classes promise
// ranking preservation.
func TestRankingPreservedCatalogue(t *testing.T) {
	want := map[Adversary]bool{
		AdversaryCorruptMessages:   true,
		AdversaryDuplicateMessages: true,
	}
	for _, c := range AdversaryClasses() {
		if RankingPreserved(c) != want[c] {
			t.Errorf("RankingPreserved(%q) = %v", c, RankingPreserved(c))
		}
	}
}
