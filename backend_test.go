// backend_test.go covers the public backend surface: Config.Backend
// selection and validation, the uniform-scheduler contract of the species
// backend, the user-facing NewSpecies entry point, and Grid.Backend through
// the parallel Ensemble (matched-seed exact-vs-species faceoffs with
// worker-count-independent JSON).

package sspp

import (
	"bytes"
	"runtime"
	"testing"

	"sspp/internal/sim"
)

// TestBackendSelection: "" and "agent" stay agent-level, "species" requires
// compactability, "auto" switches on the population threshold, and unknown
// names are rejected.
func TestBackendSelection(t *testing.T) {
	cases := []struct {
		name        string
		cfg         Config
		wantBackend string
		wantErr     bool
	}{
		{"default agent", Config{Protocol: ProtocolCIW, N: 16, Seed: 1}, BackendAgent, false},
		{"explicit agent", Config{Protocol: ProtocolCIW, N: 16, Seed: 1, Backend: BackendAgent}, BackendAgent, false},
		{"explicit species", Config{Protocol: ProtocolCIW, N: 16, Seed: 1, Backend: BackendSpecies}, BackendSpecies, false},
		{"species on electleader", Config{Protocol: ProtocolElectLeader, N: 16, R: 4, Seed: 1, Backend: BackendSpecies}, BackendSpecies, false},
		{"species rejects synthetic coins", Config{Protocol: ProtocolElectLeader, N: 16, R: 4, Seed: 1, Backend: BackendSpecies, SyntheticCoins: true}, "", true},
		{"species on fastle", Config{Protocol: ProtocolFastLE, N: 16, Seed: 1, Backend: BackendSpecies}, "", true},
		{"auto below threshold", Config{Protocol: ProtocolCIW, N: 1024, Seed: 1, Backend: BackendAuto}, BackendAgent, false},
		{"auto above threshold", Config{Protocol: ProtocolCIW, N: SpeciesAutoThreshold, Seed: 1, Backend: BackendAuto}, BackendSpecies, false},
		{"auto electleader below threshold stays agent", Config{Protocol: ProtocolElectLeader, N: 256, R: 4, Seed: 1, Backend: BackendAuto}, BackendAgent, false},
		{"auto electleader above threshold goes species", Config{Protocol: ProtocolElectLeader, N: SpeciesAutoThreshold, R: 64, Seed: 1, Backend: BackendAuto}, BackendSpecies, false},
		{"unknown backend", Config{Protocol: ProtocolCIW, N: 16, Seed: 1, Backend: "quantum"}, "", true},
	}
	for _, tc := range cases {
		sys, err := New(tc.cfg)
		if tc.wantErr {
			if err == nil {
				t.Errorf("%s: accepted", tc.name)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if got := sys.Backend(); got != tc.wantBackend {
			t.Errorf("%s: backend %q, want %q", tc.name, got, tc.wantBackend)
		}
	}
}

// TestSpeciesUniformSchedulerContract: the species backend accepts the
// uniform schedulers (SchedulerSeed, NewUniform — including through
// Ensemble's PRNG streams) and fails fast on anything with agent
// identities baked in.
func TestSpeciesUniformSchedulerContract(t *testing.T) {
	newSys := func() *System {
		sys, err := New(Config{Protocol: ProtocolLooseLE, N: 64, Seed: 3, Backend: BackendSpecies})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	if res := newSys().Run(SchedulerSeed(9), MaxInteractions(10_000)); res.Err != nil {
		t.Fatalf("SchedulerSeed: %v", res.Err)
	}
	if res := newSys().Run(WithScheduler(NewUniform(9)), MaxInteractions(10_000)); res.Err != nil {
		t.Fatalf("NewUniform: %v", res.Err)
	}
	for name, sched := range map[string]Scheduler{
		"batch": NewBatch(9, 0),
		"zipf":  NewZipf(9, 64, 1.0),
	} {
		res := newSys().Run(WithScheduler(sched), MaxInteractions(10_000))
		if res.Err == nil {
			t.Errorf("%s scheduler accepted by the species backend", name)
		}
		if res.Interactions != 0 {
			t.Errorf("%s: executed %d interactions before failing", name, res.Interactions)
		}
	}
}

// TestSpeciesPerAgentSurfacesDegrade: injection and per-agent outputs
// report their absence instead of panicking.
func TestSpeciesPerAgentSurfacesDegrade(t *testing.T) {
	sys, err := New(Config{Protocol: ProtocolCIW, N: 64, Seed: 3, Backend: BackendSpecies})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Inject(AdversaryTwoLeaders, 7); err == nil {
		t.Fatal("Inject accepted on the species backend")
	}
	if got, err := sys.InjectTransient(3, 7); err == nil || got != nil {
		t.Fatalf("InjectTransient = %v, %v; want an error (no injectable capability)", got, err)
	}
	if got := sys.Ranks(); got != nil {
		t.Fatalf("Ranks = %v on a count-based backend", got)
	}
	if _, ok := sys.Leader(); ok {
		t.Fatal("Leader index exists without agent identities")
	}
	res := sys.Run(SchedulerSeed(4), InjectTransientAt(100, 2, 5))
	if res.Err == nil {
		t.Fatal("scheduled transient fault accepted on the species backend")
	}
	// The generic surfaces stay live.
	if sys.Leaders() != 64 {
		t.Fatalf("Leaders = %d at the all-rank-1 start", sys.Leaders())
	}
	if sys.CorrectRanking() {
		t.Fatal("all-rank-1 start reported as a permutation")
	}
}

// TestElectLeaderSpeciesEndToEnd: the paper's protocol runs on the species
// backend through the public engine, stabilizes into its safe set, and
// degrades its per-agent surfaces (identities do not exist under counts).
func TestElectLeaderSpeciesEndToEnd(t *testing.T) {
	sys, err := New(Config{Protocol: ProtocolElectLeader, N: 128, R: 16, Seed: 5, Backend: BackendSpecies})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Backend() != BackendSpecies {
		t.Fatalf("backend %q", sys.Backend())
	}
	res := sys.Run(Until(SafeSet), SchedulerSeed(9))
	if res.Err != nil || !res.Stabilized {
		t.Fatalf("species electleader did not stabilize: %+v", res)
	}
	if res.Condition != "safe-set" {
		t.Fatalf("condition %q: the compact model's safe set was not dispatched", res.Condition)
	}
	if sys.Leaders() != 1 || !sys.Correct() || !sys.CorrectRanking() {
		t.Fatalf("post-stabilization outputs: leaders=%d correct=%v ranking=%v",
			sys.Leaders(), sys.Correct(), sys.CorrectRanking())
	}
	if got := sys.Ranks(); got != nil {
		t.Fatalf("Ranks = %v on a count-based backend", got)
	}
	if _, ok := sys.Leader(); ok {
		t.Fatal("Leader index exists without agent identities")
	}
	if err := sys.Inject(AdversaryTwoLeaders, 7); err == nil {
		t.Fatal("Inject accepted on the species backend")
	}
}

// TestSpeciesCleanStartFastPath pins the clean-start constructor wiring
// (registry compactClean → System.New): an electleader species build through
// the fast path must be bit-for-bit equivalent to the instance-backed
// compactProto path at matched seeds — same stabilization time, same events,
// same snapshot — because the fast path is an optimization, not a semantics
// change.
func TestSpeciesCleanStartFastPath(t *testing.T) {
	cfg := Config{Protocol: ProtocolElectLeader, N: 256, R: 32, Seed: 11, Backend: BackendSpecies}
	fast, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The pre-fast-path build, assembled by hand: construct the agent
	// instance and compact it away, exactly as New did before compactClean.
	spec, err := specFor(cfg.Protocol)
	if err != nil {
		t.Fatal(err)
	}
	ev := sim.NewEvents()
	p, err := spec.build(cfg, ev)
	if err != nil {
		t.Fatal(err)
	}
	if p, err = compactProto(p, cfg.Seed); err != nil {
		t.Fatal(err)
	}
	slow := &System{proto: p, events: ev, cfg: cfg, spec: spec, backend: BackendSpecies, clockMode: ClockDiscrete}

	resFast := fast.Run(Until(SafeSet), SchedulerSeed(3))
	resSlow := slow.Run(Until(SafeSet), SchedulerSeed(3))
	if resFast.Err != nil || resSlow.Err != nil {
		t.Fatalf("run errors: fast=%v slow=%v", resFast.Err, resSlow.Err)
	}
	if resFast != resSlow {
		t.Fatalf("results diverged:\nfast: %+v\nslow: %+v", resFast, resSlow)
	}
	if sf, ss := fast.Snapshot(), slow.Snapshot(); sf != ss {
		t.Fatalf("snapshots diverged:\nfast: %+v\nslow: %+v", sf, ss)
	}
	if fast.Events() != slow.Events() {
		t.Fatalf("event counts diverged:\nfast: %s\nslow: %s", fast.Events(), slow.Events())
	}
}

// TestElectLeaderSpeciesMillionAgents: the scale target of the compaction —
// a population of 10⁶ agents builds and steps on the species backend (the
// agent instance serves only as the configuration template). Bounded steps:
// full stabilization at this scale is the nightly soak's job. The modest r
// keeps the per-state payload (the O(r) ranking channel) small; throughput
// as a function of r is experiment S3's subject.
func TestElectLeaderSpeciesMillionAgents(t *testing.T) {
	if testing.Short() {
		t.Skip("large-n smoke test")
	}
	sys, err := New(Config{Protocol: ProtocolElectLeader, N: 1_000_000, R: 64, Seed: 1, Backend: BackendSpecies})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run(SchedulerSeed(2), MaxInteractions(200_000))
	if res.Err != nil {
		t.Fatalf("species electleader at n=10⁶: %v", res.Err)
	}
	if res.Interactions != 200_000 {
		t.Fatalf("ran %d interactions, want the full 200000 budget", res.Interactions)
	}
}

// TestNewSpeciesPublicModel runs a user-supplied species model — the
// one-way epidemic — through the public engine end to end.
func TestNewSpeciesPublicModel(t *testing.T) {
	const n = 512
	sys, err := NewSpecies(SpeciesModel{
		States: 2,
		Init: func() ([]uint64, []int64) {
			return []uint64{0, 1}, []int64{n - 1, 1}
		},
		React: func(a, b uint64, _ *Rand) (uint64, uint64) {
			if a == 1 {
				return 1, 1 // informed initiator infects the responder
			}
			return a, b
		},
		Leader:  func(key uint64) bool { return key == 1 },
		Correct: func(v StateCounts) bool { return v.Count(1) == n },
		SafeSet: func(v StateCounts) bool { return v.Count(1) == n }, // absorbing
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Backend() != BackendSpecies || sys.N() != n {
		t.Fatalf("backend %q, n %d", sys.Backend(), sys.N())
	}
	res := sys.Run(Until(SafeSet), SchedulerSeed(11))
	if !res.Stabilized {
		t.Fatalf("epidemic did not complete: %+v", res)
	}
	if res.Condition != "safe-set" {
		t.Fatalf("condition %q: the model's safe set was not dispatched", res.Condition)
	}
	if sys.Leaders() != n {
		t.Fatalf("%d informed agents after completion", sys.Leaders())
	}
	// NewSpecies validation.
	if _, err := NewSpecies(SpeciesModel{}); err == nil {
		t.Fatal("empty model accepted")
	}
}

// TestEnsembleBackendFaceoff: two grids differing only in Backend run at
// matched seeds, species cells must populate like agent cells, and the
// species export is byte-identical across worker counts.
func TestEnsembleBackendFaceoff(t *testing.T) {
	grid := Grid{
		Protocols: []string{ProtocolCIW, ProtocolLooseLE},
		Points:    []Point{{N: 64}, {N: 128}},
		Seeds:     4,
		BaseSeed:  7,
	}
	agentGrid := grid
	speciesGrid := grid
	speciesGrid.Backend = BackendSpecies

	agentEns, err := NewEnsemble(agentGrid)
	if err != nil {
		t.Fatal(err)
	}
	speciesEns, err := NewEnsemble(speciesGrid)
	if err != nil {
		t.Fatal(err)
	}
	agentRes := agentEns.Run()
	speciesRes := speciesEns.Run()
	if speciesRes.Backend != BackendSpecies || agentRes.Backend != "" {
		t.Fatalf("backend stamps: agent %q, species %q", agentRes.Backend, speciesRes.Backend)
	}
	for i, sc := range speciesRes.Cells {
		ac := agentRes.Cells[i]
		if sc.Recovered != sc.Seeds {
			t.Fatalf("species cell %s n=%d recovered %d/%d", sc.Protocol, sc.Point.N, sc.Recovered, sc.Seeds)
		}
		if ac.Recovered != ac.Seeds {
			t.Fatalf("agent cell %s n=%d recovered %d/%d", ac.Protocol, ac.Point.N, ac.Recovered, ac.Seeds)
		}
		// Matched seeds, same chain: the distributions live on the same
		// scale. A loose factor bound catches gross mis-modelling without
		// flaking (the tight gate is the KS harness in internal/species).
		if sc.Interactions.Mean > 6*ac.Interactions.Mean || ac.Interactions.Mean > 6*sc.Interactions.Mean {
			t.Fatalf("cell %s n=%d means diverge: agent %.0f vs species %.0f",
				sc.Protocol, sc.Point.N, ac.Interactions.Mean, sc.Interactions.Mean)
		}
	}
	if cmp := speciesRes.Compare(); cmp.Backend != BackendSpecies {
		t.Fatal("Compare dropped the backend stamp")
	}

	parallel := runtime.GOMAXPROCS(0)
	if parallel < 4 {
		parallel = 4
	}
	seqEns, _ := NewEnsemble(speciesGrid, Workers(1))
	parEns, _ := NewEnsemble(speciesGrid, Workers(parallel))
	seq, err1 := seqEns.Run().JSON()
	par, err2 := parEns.Run().JSON()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !bytes.Equal(seq, par) {
		t.Fatal("species ensemble JSON differs across worker counts")
	}
	if !bytes.Equal(seq, mustJSON(t, speciesRes)) {
		t.Fatal("species ensemble JSON differs from the default-worker run")
	}
}

// TestEnsembleBackendValidation: species grids reject non-compactable
// protocols, adversarial starts, transient faults, and unknown backends.
func TestEnsembleBackendValidation(t *testing.T) {
	base := Grid{Points: []Point{{N: 32, R: 8}}, Seeds: 2}

	g := base
	g.Backend = BackendSpecies
	g.Protocols = []string{ProtocolElectLeader}
	if _, err := NewEnsemble(g); err != nil {
		t.Errorf("species grid with electleader rejected: %v", err)
	}

	g = base
	g.Backend = BackendSpecies
	g.Protocols = []string{ProtocolFastLE}
	if _, err := NewEnsemble(g); err == nil {
		t.Error("species grid with a non-compactable protocol accepted")
	}

	g = base
	g.Backend = BackendSpecies
	g.Protocols = []string{ProtocolCIW}
	g.Adversaries = []Adversary{AdversaryTwoLeaders}
	if _, err := NewEnsemble(g); err == nil {
		t.Error("species grid with adversarial starts accepted")
	}

	g = base
	g.Backend = BackendSpecies
	g.Protocols = []string{ProtocolCIW}
	g.TransientK = 2
	if _, err := NewEnsemble(g); err == nil {
		t.Error("species grid with transient faults accepted")
	}

	g = base
	g.Backend = "quantum"
	if _, err := NewEnsemble(g); err == nil {
		t.Error("unknown backend accepted")
	}

	g = base
	g.Backend = BackendAuto
	g.Protocols = []string{ProtocolCIW}
	if _, err := NewEnsemble(g); err != nil {
		t.Errorf("auto backend rejected: %v", err)
	}

	// Auto resolves per point: a grid whose large points would run on the
	// species backend must reject the fault model up front instead of
	// silently skipping it at those points — while the same grid with only
	// small (agent-resolved) points stays valid.
	g = Grid{Protocols: []string{ProtocolCIW}, Backend: BackendAuto, Seeds: 2, TransientK: 2,
		Points: []Point{{N: 32}, {N: SpeciesAutoThreshold}}}
	if _, err := NewEnsemble(g); err == nil {
		t.Error("auto grid with transient faults at a species-resolved point accepted")
	}
	g.Points = []Point{{N: 32}, {N: 64}}
	if _, err := NewEnsemble(g); err != nil {
		t.Errorf("auto grid with agent-resolved points rejected: %v", err)
	}
	g.TransientK = 0
	g.Adversaries = []Adversary{AdversaryTwoLeaders}
	g.Points = []Point{{N: SpeciesAutoThreshold}}
	if _, err := NewEnsemble(g); err == nil {
		t.Error("auto grid with adversarial starts at a species-resolved point accepted")
	}
}

// mustJSON marshals an EnsembleResult or fails the test.
func mustJSON(t *testing.T, r *EnsembleResult) []byte {
	t.Helper()
	b, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}
