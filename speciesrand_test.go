// speciesrand_test.go covers the Rand handle user species models draw
// randomness through: every method must forward to the bound scheduler
// stream, keeping a randomized user model runnable end to end.

package sspp

import "testing"

func TestSpeciesModelRandHandle(t *testing.T) {
	const n = 64
	sys, err := NewSpecies(SpeciesModel{
		States: 2,
		Init: func() ([]uint64, []int64) {
			return []uint64{0, 1}, []int64{n - 1, 1}
		},
		React: func(a, b uint64, rnd *Rand) (uint64, uint64) {
			// Draw through every Rand method; the draws also perturb the
			// epidemic so a broken forwarder would surface as a stall or a
			// panic on the nil stream.
			u := rnd.Uint64()
			i := rnd.Intn(4)
			f := rnd.Float64()
			flip := rnd.Bool()
			if a == 1 || b == 1 {
				return 1, 1
			}
			if u%16 == 0 && i == 0 && f < 0.25 && flip {
				return 1, b // spontaneous infection, rare
			}
			return a, b
		},
		Leader:  func(key uint64) bool { return key == 1 },
		Correct: func(v StateCounts) bool { return v.Count(1) == n },
	})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run(Until(CorrectOutput), SchedulerSeed(3), MaxInteractions(1_000_000))
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Stabilized {
		t.Fatalf("randomized epidemic did not finish: %+v", res)
	}
	if got := CorrectOutput.String(); got != res.Condition {
		t.Fatalf("CorrectOutput.String() = %q, Result.Condition = %q", got, res.Condition)
	}
}
