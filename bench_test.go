// bench_test.go is the benchmark harness of deliverable (d): one testing.B
// target per experiment in DESIGN.md §5 (T1–T13, F1, F2), each running a
// scaled-down instance of the corresponding measurement, plus micro-benches
// of the protocol's hot paths. cmd/benchtab produces the full-size tables;
// these targets make every experiment reproducible through `go test -bench`.
package sspp

import (
	"fmt"
	"math"
	"testing"

	"sspp/internal/adversary"
	"sspp/internal/baseline"
	"sspp/internal/coin"
	"sspp/internal/core"
	"sspp/internal/detect"
	"sspp/internal/epidemic"
	"sspp/internal/loadbalance"
	"sspp/internal/ranking"
	"sspp/internal/rng"
	"sspp/internal/sim"
)

// runFromClass builds ElectLeader_r, injects the class, and runs to the safe
// set, reporting interactions as a benchmark metric.
func runFromClass(b *testing.B, n, r int, class adversary.Class) {
	b.Helper()
	budget := uint64(1000 * float64(n*n) / float64(r) * math.Log(float64(n)+1))
	var total uint64
	for i := 0; i < b.N; i++ {
		seed := uint64(i)
		p, err := core.New(n, r, core.WithSeed(seed))
		if err != nil {
			b.Fatal(err)
		}
		if err := adversary.Apply(p, class, rng.New(seed+7)); err != nil {
			b.Fatal(err)
		}
		took, ok := p.RunToSafeSet(rng.New(seed+13), budget)
		if !ok {
			b.Fatalf("iteration %d: no stabilization within %d", i, budget)
		}
		total += took
	}
	b.ReportMetric(float64(total)/float64(b.N), "interactions/op")
}

// BenchmarkT1_StabilizeFromReset measures stabilization from a triggered
// configuration (Theorem 1.1 / Lemma 6.2) at n=32, r=8.
func BenchmarkT1_StabilizeFromReset(b *testing.B) {
	runFromClass(b, 32, 8, adversary.ClassTriggered)
}

// BenchmarkF1_TradeoffCurve sweeps r at n=32: interactions/op should fall
// roughly like 1/r (the headline trade-off).
func BenchmarkF1_TradeoffCurve(b *testing.B) {
	for _, r := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			runFromClass(b, 32, r, adversary.ClassTriggered)
		})
	}
}

// BenchmarkF2_ScalingInN sweeps n at r=n/4: interactions/op should grow
// quasi-linearly (O(n·log n) shape).
func BenchmarkF2_ScalingInN(b *testing.B) {
	for _, n := range []int{16, 32, 48} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			runFromClass(b, n, n/4, adversary.ClassTriggered)
		})
	}
}

// BenchmarkT2_StateComplexity measures the Figure 1 bit-complexity formula
// evaluation across the trade-off (a pure-computation experiment).
func BenchmarkT2_StateComplexity(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, r := range []float64{1, 16, 256} {
			sink += core.ElectLeaderBits(1024, r)
		}
	}
	_ = sink
}

// BenchmarkT3_AssignRanks measures standalone ranking from a clean start
// (Lemma D.1) at n=64, r=8. The guarantee is w.h.p., not certain — the
// standalone sub-protocol is not self-stabilizing, so across thousands of
// iterations an occasional misfired sheriff election never completes (in
// the full protocol the countdown/verifier machinery repairs exactly this).
// Such runs are counted in the whp_failures metric rather than failing the
// benchmark; their rate must stay small.
func BenchmarkT3_AssignRanks(b *testing.B) {
	const n, r = 64, 8
	var total uint64
	completed, failures := 0, 0
	for i := 0; i < b.N; i++ {
		pr, err := ranking.NewProtocol(n, r, rng.New(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		res := sim.Run(pr, rng.New(uint64(i)+99), sim.Options{
			MaxInteractions:    1 << 21,
			StopAfterStableFor: uint64(4 * n),
		})
		if !res.Stabilized {
			failures++
			continue
		}
		completed++
		total += res.StabilizedAt
	}
	if failures*20 > completed {
		b.Fatalf("ranking failure rate too high: %d of %d", failures, completed+failures)
	}
	if completed > 0 {
		b.ReportMetric(float64(total)/float64(completed), "interactions/op")
	}
	b.ReportMetric(float64(failures), "whp_failures")
}

// BenchmarkT4_FastLeaderElect measures sheriff election (Lemma D.10) at
// n=256.
func BenchmarkT4_FastLeaderElect(b *testing.B) {
	const n = 256
	for i := 0; i < b.N; i++ {
		f := ranking.NewFastLE(n, coin.FromPRNG(rng.New(uint64(i))))
		res := sim.Run(f, rng.New(uint64(i)+5), sim.Options{
			MaxInteractions:    1 << 24,
			StopAfterStableFor: uint64(4 * n),
		})
		if !res.Stabilized {
			b.Fatal("election failed")
		}
	}
}

// BenchmarkT5_Epidemic measures two-way epidemic completion (Lemma A.2) at
// n=1024.
func BenchmarkT5_Epidemic(b *testing.B) {
	var total uint64
	for i := 0; i < b.N; i++ {
		total += epidemic.CompletionTime(1024, rng.New(uint64(i)), true)
	}
	b.ReportMetric(float64(total)/float64(b.N), "interactions/op")
}

// BenchmarkT6_LoadBalance measures load balancing to discrepancy ≤ 3 from a
// point mass (Lemma E.6 substrate) at n=512.
func BenchmarkT6_LoadBalance(b *testing.B) {
	const n = 512
	for i := 0; i < b.N; i++ {
		p := loadbalance.NewPointMass(n, 2*n)
		if _, ok := loadbalance.RunUntilDiscrepancy(p, rng.New(uint64(i)), 3, 1<<24); !ok {
			b.Fatal("balancing failed")
		}
	}
}

// BenchmarkT7_DetectionLatency measures ⊤ latency under one duplicated rank
// (Lemma E.1(b)) at n=32, r=8.
func BenchmarkT7_DetectionLatency(b *testing.B) {
	const n, r = 32, 8
	ranks := make([]int32, n)
	for i := range ranks {
		ranks[i] = int32(i + 1)
	}
	ranks[1] = 1
	var total uint64
	for i := 0; i < b.N; i++ {
		h, err := detect.NewHarness(n, r, ranks, rng.New(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		sched := rng.New(uint64(i) + 3)
		var t uint64
		for !h.AnyTop() {
			x, y := sched.Pair(n)
			h.Interact(x, y)
			t++
		}
		total += t
	}
	b.ReportMetric(float64(total)/float64(b.N), "interactions/op")
}

// BenchmarkT8_Soundness runs the detection layer on a correct ranking for a
// fixed horizon (Lemma E.1(a)): throughput of the soundness experiment.
func BenchmarkT8_Soundness(b *testing.B) {
	const n, r = 16, 8
	h, err := detect.NewHarness(n, r, nil, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	sched := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, y := sched.Pair(n)
		h.Interact(x, y)
	}
	if h.AnyTop() {
		b.Fatal("false positive")
	}
}

// BenchmarkT9_SoftReset measures repair of corrupted messages on a correct
// ranking (§3.2) at n=12, r=6.
func BenchmarkT9_SoftReset(b *testing.B) {
	runFromClass(b, 12, 6, adversary.ClassCorruptMessages)
}

// BenchmarkT10_Recovery measures safe-set arrival from representative rungs
// of the recovery ladder at n=16, r=4.
func BenchmarkT10_Recovery(b *testing.B) {
	for _, class := range []adversary.Class{
		adversary.ClassMixedRoles,
		adversary.ClassMixedGenerations,
		adversary.ClassTwoLeaders,
		adversary.ClassRandomGarbage,
	} {
		b.Run(string(class), func(b *testing.B) {
			runFromClass(b, 16, 4, class)
		})
	}
}

// BenchmarkT11_Baselines compares the n-state CIW baseline against
// ElectLeader_r at n=32.
func BenchmarkT11_Baselines(b *testing.B) {
	const n = 32
	b.Run("CIW", func(b *testing.B) {
		var total uint64
		for i := 0; i < b.N; i++ {
			c := baseline.NewCIW(n)
			res := sim.Run(c, rng.New(uint64(i)), sim.Options{
				MaxInteractions:    1 << 26,
				StopAfterStableFor: uint64(20 * n * n),
			})
			if !res.Stabilized {
				b.Fatal("CIW failed")
			}
			total += res.StabilizedAt
		}
		b.ReportMetric(float64(total)/float64(b.N), "interactions/op")
	})
	b.Run("ElectLeader_r=8", func(b *testing.B) {
		runFromClass(b, n, 8, adversary.ClassTriggered)
	})
}

// BenchmarkT12_SyntheticCoin measures the fully derandomized protocol
// (Appendix B) at n=16, r=4.
func BenchmarkT12_SyntheticCoin(b *testing.B) {
	const n, r = 16, 4
	budget := uint64(1000 * float64(n*n) / float64(r) * math.Log(float64(n)+1))
	for i := 0; i < b.N; i++ {
		p, err := core.New(n, r, core.WithSeed(uint64(i)), core.WithSyntheticCoins())
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := p.RunToSafeSet(rng.New(uint64(i)+13), budget); !ok {
			b.Fatal("no stabilization")
		}
	}
}

// BenchmarkT14_TransientFaults measures re-stabilization after a mid-run
// burst corrupting 4 of 16 agents.
func BenchmarkT14_TransientFaults(b *testing.B) {
	const n, r = 16, 4
	budget := uint64(1000 * float64(n*n) / float64(r) * math.Log(float64(n)+1))
	var total uint64
	for i := 0; i < b.N; i++ {
		seed := uint64(i)
		p, err := core.New(n, r, core.WithSeed(seed))
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := p.RunToSafeSet(rng.New(seed+1), budget); !ok {
			b.Fatal("setup failed")
		}
		adversary.Transient(p, 4, rng.New(seed+2))
		took, ok := p.RunToSafeSet(rng.New(seed+3), budget)
		if !ok {
			b.Fatal("no recovery")
		}
		total += took
	}
	b.ReportMetric(float64(total)/float64(b.N), "interactions/op")
}

// BenchmarkT15_ObservedStates measures a stabilization run with full
// agent-state fingerprinting enabled (the T15 instrumentation overhead).
func BenchmarkT15_ObservedStates(b *testing.B) {
	const n, r = 16, 4
	budget := uint64(1000 * float64(n*n) / float64(r) * math.Log(float64(n)+1))
	for i := 0; i < b.N; i++ {
		p, err := core.New(n, r, core.WithSeed(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		distinct := make(map[string]struct{}, 1<<12)
		var buf []byte
		sched := rng.New(uint64(i) + 3)
		var took uint64
		for took < budget {
			x, y := sched.Pair(n)
			p.Interact(x, y)
			buf = p.AgentKey(x, buf[:0])
			distinct[string(buf)] = struct{}{}
			buf = p.AgentKey(y, buf[:0])
			distinct[string(buf)] = struct{}{}
			took++
			if took%n == 0 && p.InSafeSet() {
				break
			}
		}
		if len(distinct) == 0 {
			b.Fatal("no states recorded")
		}
	}
}

// BenchmarkT13_LooseLeader measures loose-stabilization convergence at n=64,
// τ = 4·n·ln n.
func BenchmarkT13_LooseLeader(b *testing.B) {
	const n = 64
	tau := int32(4 * float64(n) * math.Log(n))
	for i := 0; i < b.N; i++ {
		l := baseline.NewLooseLE(n, tau)
		res := sim.Run(l, rng.New(uint64(i)), sim.Options{
			MaxInteractions:    1 << 24,
			StopAfterStableFor: uint64(4 * n),
		})
		if !res.Stabilized {
			b.Fatal("no convergence")
		}
	}
}

// --- hot-path micro-benchmarks ---

// BenchmarkInteraction_Verifiers measures a single ElectLeader_r interaction
// between same-group verifiers (the detection hot path: consistency check,
// message restamp, balance-load).
func BenchmarkInteraction_Verifiers(b *testing.B) {
	for _, r := range []int{4, 16} {
		b.Run(fmt.Sprintf("groupsize=%d", r), func(b *testing.B) {
			n := 2 * r
			p, err := core.New(n, r, core.WithSeed(1))
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < n; i++ {
				p.ForceVerifier(i, int32(i+1))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Interact(0, 1) // ranks 1 and 2: same group
			}
			if p.AnyTop() {
				b.Fatal("false positive")
			}
		})
	}
}

// BenchmarkInteraction_Rankers measures a single ranker-ranker interaction
// (the AssignRanks_r hot path).
func BenchmarkInteraction_Rankers(b *testing.B) {
	const n, r = 64, 8
	p, err := core.New(n, r, core.WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	sched := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, y := sched.Pair(n)
		p.Interact(x, y)
	}
}

// BenchmarkSafeSetCheck measures the InSafeSet predicate (polled by every
// safe-set run) on a stabilized configuration.
func BenchmarkSafeSetCheck(b *testing.B) {
	const n, r = 32, 8
	p, err := core.New(n, r, core.WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		p.ForceVerifier(i, int32(i+1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !p.InSafeSet() {
			b.Fatal("should be safe")
		}
	}
}
