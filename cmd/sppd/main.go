// Command sppd serves simulations over HTTP: Ensemble grid specs go in,
// content-addressed cell results come out (internal/serve). Repeated and
// overlapping grids are served from the result cache byte-identically to a
// fresh computation, and the endpoints expose SSE checkpoint feeds and
// bit-exact trial replays (README "sppd" and DESIGN.md §12).
//
// Usage:
//
//	sppd                       # listen on 127.0.0.1:8377, in-memory cache only
//	sppd -addr :9000           # explicit listen address
//	sppd -workers 4            # bound concurrent cell simulations
//	sppd -cache 10000          # in-memory LRU capacity (cells)
//	sppd -dir /var/lib/sppd    # persist results and replays on disk
//
// The first line on stdout is always "sppd listening on <resolved addr>",
// printed after the listener is bound — scripts (and examples/client) can
// pass -addr 127.0.0.1:0 and parse the resolved port from it.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"sspp/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sppd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr    = flag.String("addr", "127.0.0.1:8377", "listen address (host:port; port 0 picks a free port)")
		workers = flag.Int("workers", 0, "max concurrent cell simulations (0 = GOMAXPROCS)")
		cache   = flag.Int("cache", 0, "in-memory result cache capacity in cells (0 = 4096)")
		dir     = flag.String("dir", "", "on-disk store directory (empty = in-memory only)")
	)
	flag.Parse()

	srv, err := serve.NewServer(serve.Options{Workers: *workers, CacheEntries: *cache, Dir: *dir})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("sppd listening on %s\n", ln.Addr())
	return http.Serve(ln, srv.Handler())
}
