// Command benchtab regenerates the reproduction tables and figures of
// EXPERIMENTS.md (DESIGN.md §5 maps each to the paper statement it
// validates).
//
// Usage:
//
//	benchtab                 # run every experiment (can take tens of minutes)
//	benchtab -quick          # reduced sizes and seeds (a few minutes)
//	benchtab -experiment T7  # a single experiment
//	benchtab -list           # enumerate experiments
//	benchtab -workers 1      # force sequential trials (default: GOMAXPROCS)
//	benchtab -json           # machine-readable output for BENCH_*.json archives
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"sspp/internal/experiments"
	"sspp/internal/trials"
)

// jsonTable is the archival form of one experiment table (BENCH_*.json).
type jsonTable struct {
	ID        string     `json:"id"`
	Title     string     `json:"title"`
	Claim     string     `json:"claim,omitempty"`
	Header    []string   `json:"header"`
	Rows      [][]string `json:"rows"`
	Notes     []string   `json:"notes,omitempty"`
	ElapsedMS int64      `json:"elapsed_ms"`
}

// schemaVersion identifies the jsonReport layout, so archived BENCH_*.json
// trajectories stay comparable across PRs. Bump on any breaking change to
// jsonReport or jsonTable.
const schemaVersion = 2

// jsonReport is the top-level -json document.
type jsonReport struct {
	SchemaVersion int    `json:"schema_version"`
	Quick         bool   `json:"quick"`
	Seeds         int    `json:"seeds,omitempty"`
	BaseSeed      uint64 `json:"base_seed"`
	// Workers is the requested worker setting (0 = GOMAXPROCS) and
	// WorkersResolved the resolved pool size (individual tables may use
	// fewer when they have fewer trials). Tables are byte-identical for
	// every value (internal/trials), so the stamp is provenance, not a
	// reproducibility input.
	Workers         int         `json:"workers"`
	WorkersResolved int         `json:"workers_resolved"`
	GoMaxProc       int         `json:"gomaxprocs"`
	Tables          []jsonTable `json:"tables"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		quick    = flag.Bool("quick", false, "reduced sizes and seed counts")
		exp      = flag.String("experiment", "", "run a single experiment by ID (e.g. T7)")
		seeds    = flag.Int("seeds", 0, "override the number of seeds per point")
		list     = flag.Bool("list", false, "list experiments and exit")
		workers  = flag.Int("workers", 0, "trial-engine workers (0 = GOMAXPROCS, 1 = sequential)")
		jsonOut  = flag.Bool("json", false, "emit a machine-readable JSON report instead of text tables")
		baseSeed = flag.Uint64("baseseed", 0, "offset all trial seeds (reproducibility studies)")
	)
	flag.Parse()

	registry := experiments.All()
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return nil
	}
	cfg := experiments.Config{Quick: *quick, Seeds: *seeds, BaseSeed: *baseSeed, Workers: *workers}

	ids := experiments.IDs()
	if *exp != "" {
		if registry[*exp] == nil {
			return fmt.Errorf("unknown experiment %q (use -list)", *exp)
		}
		ids = []string{*exp}
	}
	report := jsonReport{
		SchemaVersion:   schemaVersion,
		Quick:           *quick,
		Seeds:           *seeds,
		BaseSeed:        *baseSeed,
		Workers:         *workers,
		WorkersResolved: trials.DefaultWorkers(*workers),
		GoMaxProc:       runtime.GOMAXPROCS(0),
	}
	for _, id := range ids {
		start := time.Now()
		table := registry[id](cfg)
		elapsed := time.Since(start)
		if *jsonOut {
			report.Tables = append(report.Tables, jsonTable{
				ID:        table.ID,
				Title:     table.Title,
				Claim:     table.Claim,
				Header:    table.Header,
				Rows:      table.Rows,
				Notes:     table.Notes,
				ElapsedMS: elapsed.Milliseconds(),
			})
			continue
		}
		table.Render(os.Stdout)
		fmt.Printf("  [%s completed in %s]\n\n", id, elapsed.Round(time.Millisecond))
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	return nil
}
