// Command benchtab regenerates the reproduction tables and figures of
// EXPERIMENTS.md (DESIGN.md §5 maps each to the paper statement it
// validates).
//
// Usage:
//
//	benchtab                 # run every experiment (can take tens of minutes)
//	benchtab -quick          # reduced sizes and seeds (a few minutes)
//	benchtab -experiment T7  # a single experiment
//	benchtab -list           # enumerate experiments
//	benchtab -workers 1      # force sequential trials (default: GOMAXPROCS)
//	benchtab -json           # machine-readable output for BENCH_*.json archives
//	benchtab -compare        # cross-protocol faceoff through the public Ensemble
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"sspp"
	"sspp/internal/experiments"
	"sspp/internal/trials"
)

// jsonTable is the archival form of one experiment table (BENCH_*.json).
type jsonTable struct {
	ID        string     `json:"id"`
	Title     string     `json:"title"`
	Claim     string     `json:"claim,omitempty"`
	Header    []string   `json:"header"`
	Rows      [][]string `json:"rows"`
	Notes     []string   `json:"notes,omitempty"`
	ElapsedMS int64      `json:"elapsed_ms"`
}

// schemaVersion identifies the jsonReport layout, so archived BENCH_*.json
// trajectories stay comparable across PRs. Bump on any breaking change to
// jsonReport or jsonTable. v3: the interaction-topology layer — the T-ring
// table joined the registry (its rows carry a topology column), and the
// -compare faceoff accepts -topology (its CompareResult JSON then stamps
// the topology names). v4: the workload layer — the T-churn table joined the
// registry (per-event recovery columns over Ensemble workload cells). v5:
// the continuous-clock layer — the S2 table joined the registry (exact vs
// tau-leaped continuous stepping, with a clock column and native parallel
// times). v6: ElectLeader_r's species form — the S3 table joined the
// registry (faceted rows: agent-vs-species throughput over (n, r) plus
// extended-range safe-set arrival with T1's normalization column). v7: the
// serve layer — the S4 table joined the registry (cold-vs-warm sppd cache
// latency, hit ratios under overlapping request mixes).
const schemaVersion = 7

// jsonReport is the top-level -json document.
type jsonReport struct {
	SchemaVersion int    `json:"schema_version"`
	Quick         bool   `json:"quick"`
	Seeds         int    `json:"seeds,omitempty"`
	BaseSeed      uint64 `json:"base_seed"`
	// Workers is the requested worker setting (0 = GOMAXPROCS) and
	// WorkersResolved the resolved pool size (individual tables may use
	// fewer when they have fewer trials). Tables are byte-identical for
	// every value (internal/trials), so the stamp is provenance, not a
	// reproducibility input.
	Workers         int         `json:"workers"`
	WorkersResolved int         `json:"workers_resolved"`
	GoMaxProc       int         `json:"gomaxprocs"`
	Tables          []jsonTable `json:"tables"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		quick    = flag.Bool("quick", false, "reduced sizes and seed counts")
		exp      = flag.String("experiment", "", "run a single experiment by ID (e.g. T7)")
		seeds    = flag.Int("seeds", 0, "override the number of seeds per point")
		list     = flag.Bool("list", false, "list experiments and exit")
		workers  = flag.Int("workers", 0, "trial-engine workers (0 = GOMAXPROCS, 1 = sequential)")
		jsonOut  = flag.Bool("json", false, "emit a machine-readable JSON report instead of text tables")
		baseSeed = flag.Uint64("baseseed", 0, "offset all trial seeds (reproducibility studies)")
		compare  = flag.Bool("compare", false, "run the cross-protocol comparison grid through the public Ensemble")
		topology = flag.String("topology", "", "interaction topology for -compare: complete (default), ring, torus, random-regular=D, erdos-renyi=P")
	)
	flag.Parse()

	if *compare {
		return runCompare(*quick, *seeds, *baseSeed, *workers, *jsonOut, *topology)
	}
	if *topology != "" {
		return fmt.Errorf("-topology applies to the -compare faceoff (the experiment tables fix their own topologies; see T-ring)")
	}

	registry := experiments.All()
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return nil
	}
	cfg := experiments.Config{Quick: *quick, Seeds: *seeds, BaseSeed: *baseSeed, Workers: *workers}

	ids := experiments.IDs()
	if *exp != "" {
		if registry[*exp] == nil {
			return fmt.Errorf("unknown experiment %q (use -list)", *exp)
		}
		ids = []string{*exp}
	}
	report := jsonReport{
		SchemaVersion:   schemaVersion,
		Quick:           *quick,
		Seeds:           *seeds,
		BaseSeed:        *baseSeed,
		Workers:         *workers,
		WorkersResolved: trials.DefaultWorkers(*workers),
		GoMaxProc:       runtime.GOMAXPROCS(0),
	}
	for _, id := range ids {
		start := time.Now() //sspp:allow rngdiscipline -- harness wall-clock for the throughput column, not simulation randomness
		table := registry[id](cfg)
		elapsed := time.Since(start) //sspp:allow rngdiscipline -- harness wall-clock for the throughput column, not simulation randomness
		if *jsonOut {
			report.Tables = append(report.Tables, jsonTable{
				ID:        table.ID,
				Title:     table.Title,
				Claim:     table.Claim,
				Header:    table.Header,
				Rows:      table.Rows,
				Notes:     table.Notes,
				ElapsedMS: elapsed.Milliseconds(),
			})
			continue
		}
		table.Render(os.Stdout)
		fmt.Printf("  [%s completed in %s]\n\n", id, elapsed.Round(time.Millisecond))
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	return nil
}

// runCompare crosses every registry protocol over shared parameter points
// and starting classes through the public Ensemble — one engine, every
// protocol — and renders the pivoted comparison (text or CompareResult
// JSON, byte-identical at any worker count). A non-complete -topology runs
// the identical faceoff on that interaction graph (with a correspondingly
// larger budget — sparse topologies mix slower).
func runCompare(quick bool, seeds int, baseSeed uint64, workers int, jsonOut bool, topology string) error {
	if seeds == 0 {
		seeds = 5
		if quick {
			seeds = 3
		}
	}
	top, err := sspp.ParseTopology(topology)
	if err != nil {
		return err
	}
	points := []sspp.Point{{N: 32, R: 8}, {N: 64, R: 16}}
	if quick {
		points = points[:1]
	}
	var protos []string
	for _, info := range sspp.Protocols() {
		protos = append(protos, info.Name)
	}
	grid := sspp.Grid{
		Protocols:   protos,
		Points:      points,
		Adversaries: []sspp.Adversary{"", sspp.AdversaryTwoLeaders},
		Seeds:       seeds,
		BaseSeed:    baseSeed,
	}
	if !top.IsComplete() {
		grid.Topologies = []sspp.Topology{top}
		// Sparse topologies mix far slower than the complete graph the
		// default budgets assume (see experiment T-ring).
		maxN := 0
		for _, pt := range points {
			if pt.N > maxN {
				maxN = pt.N
			}
		}
		grid.MaxInteractions = uint64(1000 * maxN * maxN * maxN)
	}
	ens, err := sspp.NewEnsemble(grid, sspp.Workers(workers))
	if err != nil {
		return err
	}
	cmp := ens.Run().Compare()
	if jsonOut {
		return cmp.WriteJSON(os.Stdout)
	}
	fmt.Printf("cross-protocol faceoff (%d seeds per cell; topology %s; ElectLeader_r uses r; baselines ignore it)\n\n",
		seeds, top.Name())
	fmt.Printf("  %-12s %-4s %-3s %-12s %-10s %-18s %-14s\n",
		"protocol", "n", "r", "start", "recovered", "mean interactions", "parallel time")
	for _, row := range cmp.Rows {
		start := "clean"
		if row.Adversary != "" {
			start = string(row.Adversary)
		}
		for _, cell := range row.Cells {
			mean, pt := "-", "-"
			if cell.Recovered > 0 {
				mean = fmt.Sprintf("%.0f", cell.Interactions.Mean)
				pt = fmt.Sprintf("%.1f", cell.ParallelTime.Mean)
			}
			fmt.Printf("  %-12s %-4d %-3d %-12s %-10s %-18s %-14s\n",
				cell.Protocol, row.Point.N, row.Point.R, start,
				fmt.Sprintf("%d/%d", cell.Recovered, cell.Seeds), mean, pt)
		}
		fmt.Println()
	}
	fmt.Println("  0/n recovered under an adversarial start marks protocols without the")
	fmt.Println("  injectable capability (namerank, fastle) — no recovery guarantee to measure —")
	fmt.Println("  or classes the protocol cannot realize. loosele is measured by the safe-set")
	fmt.Println("  fallback: correct output confirmed for 20·n interactions.")
	return nil
}
