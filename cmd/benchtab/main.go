// Command benchtab regenerates the reproduction tables and figures of
// EXPERIMENTS.md (DESIGN.md §5 maps each to the paper statement it
// validates).
//
// Usage:
//
//	benchtab                 # run every experiment (can take tens of minutes)
//	benchtab -quick          # reduced sizes and seeds (a few minutes)
//	benchtab -experiment T7  # a single experiment
//	benchtab -list           # enumerate experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sspp/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		quick = flag.Bool("quick", false, "reduced sizes and seed counts")
		exp   = flag.String("experiment", "", "run a single experiment by ID (e.g. T7)")
		seeds = flag.Int("seeds", 0, "override the number of seeds per point")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	registry := experiments.All()
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return nil
	}
	cfg := experiments.Config{Quick: *quick, Seeds: *seeds}

	ids := experiments.IDs()
	if *exp != "" {
		if registry[*exp] == nil {
			return fmt.Errorf("unknown experiment %q (use -list)", *exp)
		}
		ids = []string{*exp}
	}
	for _, id := range ids {
		start := time.Now()
		table := registry[id](cfg)
		table.Render(os.Stdout)
		fmt.Printf("  [%s completed in %s]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
