// ssppvet is the project's multichecker: it runs the internal/analyzers
// suite (rngdiscipline, maporder, capdispatch, importguard, hotpathalloc —
// see DESIGN.md §11) over sspp packages.
//
// Two modes, one binary:
//
//	go install ./cmd/ssppvet && go vet -vettool=$(which ssppvet) ./...
//	go run ./cmd/ssppvet ./...   # standalone: re-execs go vet -vettool=self
//
// The vettool protocol (cmd/go's unitchecker contract) is implemented here
// directly against the standard library: the build environment has no
// module cache and no network, so golang.org/x/tools/go/analysis/unitchecker
// is unavailable. The contract is small: answer the -V=full and -flags
// handshakes, then for each package accept a JSON .cfg naming the Go files
// and the export-data files of every dependency, type-check with the gc
// importer reading that export data, analyze, and write the (empty) facts
// file go vet expects. Dependency-only invocations (VetxOnly) and non-sspp
// packages are acknowledged without analysis, so a whole-repo run
// type-checks only this module's packages.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"

	"sspp/internal/analyzers"
	"sspp/internal/analyzers/analysis"
)

// vetConfig is the JSON cmd/go writes for each package unit (the fields
// this tool consumes; unknown fields are ignored by encoding/json).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func main() {
	args := os.Args[1:]
	// cmd/go handshakes: tool identity (cached into the build ID, so it
	// must change when the binary changes) and the declared flag set.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		self, _ := os.ReadFile(os.Args[0])
		fmt.Printf("%s version devel buildID=%x\n", os.Args[0], sha256.Sum256(self))
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(args) >= 1 && strings.HasSuffix(args[len(args)-1], ".cfg") {
		os.Exit(unitcheck(args[len(args)-1]))
	}
	// Standalone mode: ssppvet ./... re-execs go vet with itself as the
	// vettool, so CI and the command line share one entry point.
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssppvet:", err)
		os.Exit(1)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, args...)...)
	cmd.Stdin, cmd.Stdout, cmd.Stderr = os.Stdin, os.Stdout, os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintln(os.Stderr, "ssppvet:", err)
		os.Exit(1)
	}
}

// unitcheck analyzes one package unit described by cfgPath and returns the
// process exit code: 0 clean, 1 tool failure, 2 findings.
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssppvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ssppvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// Facts file first: go vet requires it even when nothing is analyzed.
	// This suite carries no cross-package facts, so the content is a stub.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("ssppvet: no facts"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "ssppvet:", err)
			return 1
		}
	}
	// Dependency-only invocations and foreign packages (stdlib when
	// someone points the tool outside this module) are acknowledged, not
	// analyzed: the invariants are sspp's.
	if cfg.VetxOnly || !inScope(cfg.ImportPath) {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssppvet:", err)
			return 1
		}
		files = append(files, f)
	}
	// The gc importer reads the export data cmd/go already built for every
	// dependency, resolved through the vendor/ImportMap indirection.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	conf := types.Config{
		Importer:  importer.ForCompiler(fset, compilerOf(cfg), lookup),
		GoVersion: cfg.GoVersion,
	}
	info := analysis.NewInfo()
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "ssppvet: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	unit := &analysis.Unit{Fset: fset, Files: files, Pkg: pkg, Info: info}
	diags, err := unit.Check(analyzers.Suite())
	if err != nil {
		fmt.Fprintf(os.Stderr, "ssppvet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// inScope reports whether the import path belongs to this module (plain
// packages and their in-package test variants).
func inScope(path string) bool {
	return path == "sspp" || strings.HasPrefix(path, "sspp/")
}

func compilerOf(cfg vetConfig) string {
	if cfg.Compiler != "" {
		return cfg.Compiler
	}
	return "gc"
}
