// Command verifyspace runs the repository's exhaustive/bounded verification
// artifacts (internal/modelcheck):
//
//   - detect soundness: enumerate every schedule and every random draw of
//     DetectCollision_r from a correct initialization and confirm the error
//     state ⊤ is unreachable (Lemma E.2, exhaustively for tiny n, bounded
//     otherwise);
//   - detect completeness: with a duplicated rank, confirm ⊤ is reachable;
//   - verify-closure: Lemma 6.1 for the StableVerify_r layer — from safe
//     configurations (single-generation and the two-generation soft-reset
//     wave) no schedule and no draws ever request a hard reset;
//   - ciw: full state-space analysis of the n-state CIW baseline —
//     closure (permutations are silent) and probabilistic stabilization
//     (every configuration reaches a permutation).
//
// Usage:
//
//	verifyspace -check detect-sound -n 3 -budget 50000
//	verifyspace -check detect-complete -n 3
//	verifyspace -check verify-closure -n 2
//	verifyspace -check ciw -n 5
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sspp/internal/modelcheck"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "verifyspace:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		check   = flag.String("check", "detect-sound", "detect-sound | detect-complete | verify-closure | ciw")
		n       = flag.Int("n", 3, "population size")
		budget  = flag.Int("budget", 100_000, "configuration budget for bounded checks")
		sig     = flag.Int("sig", 2, "signature-space override (detect checks)")
		refresh = flag.Int("refresh", 3, "signature refresh constant (detect checks)")
	)
	flag.Parse()

	start := time.Now() //sspp:allow rngdiscipline -- wall-clock progress reporting; verification itself is exhaustive, not sampled
	switch *check {
	case "detect-sound":
		m, err := modelcheck.NewDetectMachine(*n, *n, nil, int32(*sig), *refresh)
		if err != nil {
			return err
		}
		rep := modelcheck.Explore(m, anyTop, true, modelcheck.Options{MaxStates: *budget})
		fmt.Printf("detect soundness (Lemma E.2), n=%d, sig space=%d, refresh c=%d\n", *n, *sig, *refresh)
		printReport(rep, start)
		if rep.Violations > 0 {
			return fmt.Errorf("⊤ reachable from a correct initialization — soundness violated")
		}
		if rep.Truncated {
			fmt.Println("verdict: NO ⊤ within the explored bound (bounded guarantee)")
		} else {
			fmt.Println("verdict: reachable space fully closed — ⊤ unreachable, soundness PROVED at this size")
		}
	case "detect-complete":
		ranks := make([]int32, *n)
		for i := range ranks {
			ranks[i] = int32(i + 1)
		}
		if *n >= 2 {
			ranks[1] = 1 // duplicate
		}
		m, err := modelcheck.NewDetectMachine(*n, *n, ranks, int32(*sig), *refresh)
		if err != nil {
			return err
		}
		rep := modelcheck.Explore(m, anyTop, true, modelcheck.Options{MaxStates: *budget})
		fmt.Printf("detect completeness (Lemma E.1(b) dual), n=%d with duplicated rank 1\n", *n)
		printReport(rep, start)
		if rep.Violations == 0 {
			return fmt.Errorf("⊤ not reachable despite a duplicate rank — completeness violated")
		}
		fmt.Printf("verdict: ⊤ reachable (first at depth %d) — detection cannot be evaded\n",
			rep.FirstViolationDepth)
	case "verify-closure":
		m, err := modelcheck.NewVerifyMachine(*n, *n, nil, int32(*sig), *refresh, 3)
		if err != nil {
			return err
		}
		bad := func(s modelcheck.State) bool { return s.(*modelcheck.VerifyConfig).HardReset() }
		rep := modelcheck.Explore(m, bad, true, modelcheck.Options{MaxStates: *budget})
		fmt.Printf("verify-layer closure (Lemma 6.1), n=%d, sig space=%d, refresh c=%d\n", *n, *sig, *refresh)
		printReport(rep, start)
		if rep.Violations > 0 {
			return fmt.Errorf("hard reset reachable from a safe configuration — closure violated")
		}
		if rep.Truncated {
			fmt.Println("verdict: no hard reset within the explored bound (bounded guarantee)")
		} else {
			fmt.Println("verdict: reachable space fully closed — safe configurations stay safe, closure PROVED at this size")
		}
	case "ciw":
		rep, err := modelcheck.CheckCIW(*n)
		if err != nil {
			return err
		}
		fmt.Printf("CIW baseline full analysis, n=%d: %d configurations\n", rep.N, rep.States)
		fmt.Printf("  permutations (silent targets): %d\n", rep.Permutations)
		fmt.Printf("  permutations silent:           %v\n", rep.PermutationsSilent)
		fmt.Printf("  all configurations reach one:  %v\n", rep.AllReachStable)
		fmt.Printf("  wall time: %s\n", time.Since(start).Round(time.Millisecond)) //sspp:allow rngdiscipline -- wall-clock progress reporting; verification itself is exhaustive, not sampled
		if !rep.AllReachStable || !rep.PermutationsSilent {
			return fmt.Errorf("CIW verification failed")
		}
		fmt.Println("verdict: closure + probabilistic stabilization PROVED exactly at this size")
	default:
		return fmt.Errorf("unknown check %q", *check)
	}
	return nil
}

// anyTop is the bad-state predicate for the detect machine.
func anyTop(s modelcheck.State) bool {
	return s.(*modelcheck.DetectConfig).AnyTop()
}

// printReport prints the exploration statistics.
func printReport(rep modelcheck.Report, start time.Time) {
	fmt.Printf("  configurations explored: %d (truncated: %v, max depth %d)\n",
		rep.Explored, rep.Truncated, rep.MaxDepth)
	fmt.Printf("  violations: %d\n", rep.Violations)
	fmt.Printf("  wall time: %s\n", time.Since(start).Round(time.Millisecond)) //sspp:allow rngdiscipline -- wall-clock progress reporting; verification itself is exhaustive, not sampled
}
