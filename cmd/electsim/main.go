// Command electsim runs a single ElectLeader_r configuration and reports its
// stabilization behaviour, optionally starting from an adversarial
// configuration and optionally tracing notable events.
//
// Usage:
//
//	electsim -n 64 -r 8 -adversary two-leaders -seed 1 -v
//
// Flags:
//
//	-n int        population size (default 64)
//	-r int        trade-off parameter 1..n/2 (default 8)
//	-seed uint    protocol & adversary seed (default 1)
//	-sched uint   scheduler seed (default seed+1)
//	-adversary s  adversarial start class ("list" to enumerate; default clean)
//	-max uint     interaction budget (default: 1000·(n²/r)·ln n)
//	-synthetic    run fully derandomized (Appendix B synthetic coins)
//	-v            print the event log and rank vector
package main

import (
	"flag"
	"fmt"
	"os"

	"sspp"
	"sspp/internal/trace"
)

// traceRun executes the run while printing a phase timeline. The cadence
// defaults to 1/400 of the default budget so a typical run fits on a screen.
func traceRun(sys *sspp.System, sched, maxI, cadence uint64) sspp.Result {
	if cadence == 0 {
		budget := maxI
		if budget == 0 {
			budget = sys.DefaultBudget()
		}
		cadence = budget / 400
		if cadence == 0 {
			cadence = 1
		}
	}
	tl := trace.New(sys.N())
	var last sspp.Snapshot
	res := sys.Run(
		sspp.Until(sspp.SafeSet),
		sspp.SchedulerSeed(sched),
		sspp.MaxInteractions(maxI),
		sspp.PollEvery(cadence),
		sspp.Observe(cadence, func(s sspp.Snapshot) {
			marks := ""
			if s.HardResets > last.HardResets {
				marks += "H"
			}
			if s.SoftResets > last.SoftResets {
				marks += "S"
			}
			if s.Tops > last.Tops {
				marks += "T"
			}
			// Only record rows at composition changes or marks, so long quiet
			// phases collapse.
			if marks != "" || s.Resetting != last.Resetting || s.Ranking != last.Ranking ||
				s.Verifying != last.Verifying || s.Leaders != last.Leaders || s.InSafeSet {
				tl.Add(trace.Row{
					T:         s.Interactions,
					Resetting: s.Resetting,
					Ranking:   s.Ranking,
					Verifying: s.Verifying,
					Leaders:   s.Leaders,
					Marks:     marks,
					Safe:      s.InSafeSet,
				})
			}
			last = s
		}),
	)
	tl.Render(os.Stdout, 48)
	fmt.Println(tl.Summary())
	return res
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "electsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n         = flag.Int("n", 64, "population size")
		r         = flag.Int("r", 8, "trade-off parameter r (1..n/2)")
		seed      = flag.Uint64("seed", 1, "protocol & adversary seed")
		sched     = flag.Uint64("sched", 0, "scheduler seed (default seed+1)")
		adv       = flag.String("adversary", "", "adversarial start class (\"list\" to enumerate)")
		maxI      = flag.Uint64("max", 0, "interaction budget (0 = default)")
		synthetic = flag.Bool("synthetic", false, "use synthetic coins (Appendix B)")
		verbose   = flag.Bool("v", false, "print event log and ranks")
		doTrace   = flag.Bool("trace", false, "print a phase timeline of the run")
		cadence   = flag.Uint64("cadence", 0, "trace sampling cadence in interactions (0 = adaptive)")
	)
	flag.Parse()

	if *adv == "list" {
		for _, c := range sspp.AdversaryClasses() {
			fmt.Printf("  %-20s %s\n", c, sspp.DescribeAdversary(c))
		}
		return nil
	}
	if *sched == 0 {
		*sched = *seed + 1
	}

	sys, err := sspp.New(sspp.Config{N: *n, R: *r, Seed: *seed, SyntheticCoins: *synthetic})
	if err != nil {
		return err
	}
	if *adv != "" {
		if err := sys.Inject(sspp.Adversary(*adv), *seed+2); err != nil {
			return err
		}
		fmt.Printf("injected adversary %q: %s\n", *adv, sspp.DescribeAdversary(sspp.Adversary(*adv)))
	}
	fmt.Printf("ElectLeader_r  n=%d r=%d seed=%d sched=%d synthetic=%v\n",
		*n, *r, *seed, *sched, *synthetic)
	fmt.Printf("state space: 2^%.0f states per agent (Fig. 1 formula)\n",
		sspp.StateBits(*n, *r))

	var res sspp.Result
	if *doTrace {
		res = traceRun(sys, *sched, *maxI, *cadence)
	} else {
		res = sys.Run(
			sspp.Until(sspp.SafeSet),
			sspp.SchedulerSeed(*sched),
			sspp.MaxInteractions(*maxI),
		)
	}
	if !res.Stabilized {
		fmt.Printf("NOT stabilized within %d interactions (leaders=%d)\n",
			res.Interactions, sys.Leaders())
		if *verbose {
			fmt.Println("events:", sys.Events())
		}
		return fmt.Errorf("stabilization budget exhausted")
	}
	leader, _ := sys.Leader()
	fmt.Printf("stabilized: %d interactions (parallel time %.1f)\n",
		res.Interactions, res.ParallelTime)
	fmt.Printf("leader: agent %d   hard resets: %d\n", leader, sys.HardResets())
	if *verbose {
		fmt.Println("events:", sys.Events())
		fmt.Println("ranks:", sys.Ranks())
	}
	return nil
}
