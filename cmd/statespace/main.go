// Command statespace prints the state-complexity landscape of the paper
// (Figures 1–4 formulas plus the Section 2 baselines): for each n it tabulates
// the bit complexity (log₂ of the state count) of ElectLeader_r across the
// r trade-off, next to the n-state silent protocols and the time-optimal
// regime of Burman et al. (PODC'21).
//
// Usage:
//
//	statespace -n 1024
//	statespace -n 4096 -module detect   # per-module breakdown
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"sspp/internal/core"
)

func main() {
	var (
		n      = flag.Int("n", 1024, "population size")
		module = flag.String("module", "", "per-module breakdown: detect|ranking|verify")
	)
	flag.Parse()
	if *n < 4 {
		fmt.Fprintln(os.Stderr, "statespace: n must be at least 4")
		os.Exit(1)
	}
	nf := float64(*n)
	logN := math.Log2(nf)

	if *module != "" {
		printModule(*module, nf)
		return
	}

	fmt.Printf("State complexity at n = %d (bits = log₂ of per-agent state count)\n\n", *n)
	fmt.Printf("%-14s %-22s %-24s\n", "r", "ElectLeader_r bits", "time bound (interactions)")
	rs := []float64{1, 2, logN, logN * logN, math.Sqrt(nf), nf / 4, nf / 2}
	sort.Float64s(rs)
	for _, r := range rs {
		if r < 1 || r > nf/2 {
			continue
		}
		bits := core.ElectLeaderBits(nf, r)
		bound := nf * nf / r * math.Log(nf)
		fmt.Printf("%-14.0f %-22.0f %-24.3g\n", r, bits, bound)
	}
	fmt.Println("\nBaselines (Section 2):")
	fmt.Printf("  %-44s %12.1f bits, time Θ(n²) exp.\n", "Cai-Izumi-Wada (n states, silent)", core.CaiIzumiWadaBits(nf))
	fmt.Printf("  %-44s %12.1f bits, time O(n·log n) whp\n", "Gąsieniec et al. '25 (n+O(log n) states)", core.GasieniecBits(nf))
	fmt.Printf("  %-44s %12.3g bits, time O(n·log n) whp\n", "Burman et al. '21 (time-optimal regime)", core.BurmanBits(nf))
	fmt.Printf("\nHeadline (Thm 1.1): at r=Θ(n), ElectLeader_r needs Θ(n²·log n) = %.3g bits\n",
		core.ElectLeaderBits(nf, nf/2))
	fmt.Printf("where Burman et al. need n^Θ(log n) = %.3g bits: super-polynomial → sub-cubic.\n",
		core.BurmanBits(nf))
}

// printModule prints a per-module breakdown across group sizes / r values.
func printModule(module string, nf float64) {
	switch module {
	case "detect":
		fmt.Printf("DetectCollision_r bits by group size g (Fig. 3: 2^O(g²·log g))\n")
		for _, g := range []float64{2, 4, 8, 16, 32, 64, 128} {
			fmt.Printf("  g=%-6.0f %18.0f bits\n", g, core.DetectBits(g))
		}
	case "ranking":
		fmt.Printf("AssignRanks_r bits at n=%.0f (Appendix D: 2^O(r·log n))\n", nf)
		for _, r := range []float64{1, 4, 16, 64, nf / 4} {
			if r > nf/2 {
				continue
			}
			fmt.Printf("  r=%-6.0f %18.0f bits\n", r, core.RankingBits(nf, r))
		}
	case "verify":
		fmt.Printf("StableVerify_r bits at n=%.0f (Fig. 2)\n", nf)
		for _, r := range []float64{1, 4, 16, 64, nf / 4} {
			if r > nf/2 {
				continue
			}
			fmt.Printf("  r=%-6.0f %18.0f bits\n", r, core.VerifyBits(nf, r))
		}
	default:
		fmt.Fprintf(os.Stderr, "statespace: unknown module %q\n", module)
		os.Exit(1)
	}
}
