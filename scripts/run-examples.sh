#!/bin/sh
# Example rot guard: build and run every example with a hard per-example
# timeout. Examples are executable documentation of the public API; this
# gate means an API change that breaks or stalls one can never land
# silently. Each example must complete on default flags within the timeout
# (they are demos, not benchmarks).
set -eu
cd "$(dirname "$0")/.."

TIMEOUT="${EXAMPLE_TIMEOUT:-10}"

# Compile everything first so the per-example timeout measures runtime, not
# the build.
go build ./examples/...

status=0
for dir in examples/*/; do
    name=$(basename "$dir")
    printf '==> go run ./examples/%s ... ' "$name"
    if timeout "$TIMEOUT" go run "./examples/$name" > /dev/null 2> /tmp/example-"$name".err; then
        echo "ok"
    else
        echo "FAIL"
        echo "FAIL: example $name exited nonzero or exceeded ${TIMEOUT}s" >&2
        sed 's/^/    /' /tmp/example-"$name".err >&2 || true
        status=1
    fi
done

[ "$status" -eq 0 ] && echo "examples: OK"
exit $status
