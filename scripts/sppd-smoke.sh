#!/bin/sh
# sppd smoke gate: boot the simulation service, submit the same small grid
# twice, and require (a) the warm repeat to be byte-identical to the cold
# compute and (b) the X-Sppd-Cache provenance to show the repeat was served
# entirely from cache — the service's two headline contracts, end to end
# over real HTTP. Runs in seconds; CI runs it on every push.
set -eu
cd "$(dirname "$0")/.."

OUT="${TMPDIR:-/tmp}/sppd-smoke"
mkdir -p "$OUT"

go build -o "$OUT/sppd" ./cmd/sppd
"$OUT/sppd" -addr 127.0.0.1:0 -workers 2 > "$OUT/banner" &
SPPD_PID=$!
trap 'kill "$SPPD_PID" 2>/dev/null || true' EXIT

# The first stdout line is "sppd listening on <addr>", printed after bind.
# Generous poll budget (30s): the bind itself is instant, but loaded CI
# machines can delay process start-up well past a human-scale timeout.
i=0
while [ ! -s "$OUT/banner" ] && [ "$i" -lt 300 ]; do
    sleep 0.1
    i=$((i + 1))
done
ADDR=$(sed -n 's/^sppd listening on //p' "$OUT/banner")
if [ -z "$ADDR" ]; then
    echo "sppd did not announce a listen address" >&2
    cat "$OUT/banner" >&2
    exit 1
fi

GRID='{"points":[{"n":48,"r":8}],"seeds":2}'
curl -sS -D "$OUT/h1" -o "$OUT/r1" -X POST -H 'Content-Type: application/json' -d "$GRID" "http://$ADDR/v1/grids"
curl -sS -D "$OUT/h2" -o "$OUT/r2" -X POST -H 'Content-Type: application/json' -d "$GRID" "http://$ADDR/v1/grids"

if ! cmp -s "$OUT/r1" "$OUT/r2"; then
    echo "FAIL: warm repeat is not byte-identical to the cold compute" >&2
    exit 1
fi
if ! grep -qi 'x-sppd-cache: computed=1 dedup=0 memory=0 disk=0' "$OUT/h1"; then
    echo "FAIL: cold submission provenance is not computed=1" >&2
    cat "$OUT/h1" >&2
    exit 1
fi
if ! grep -qi 'x-sppd-cache: computed=0 dedup=0 memory=1 disk=0' "$OUT/h2"; then
    echo "FAIL: warm repeat was not served from the in-memory cache" >&2
    cat "$OUT/h2" >&2
    exit 1
fi
curl -sS "http://$ADDR/v1/healthz" | grep -q '"ok": true'

echo "sppd smoke: OK (warm repeat byte-identical, served from cache)"
