#!/bin/sh
# Public-API guard: examples/ and cmd/ must reach the internals only via
# the root sspp package. examples/ has zero tolerance — every example is a
# demo of the public API. cmd/ carries an explicit allowlist for the
# reproduction-harness commands whose whole job is driving an internal
# subsystem (the experiment tables, the phase-timeline renderer, the
# state-space formulas, the model checker); extend it deliberately, never
# casually.
set -eu
cd "$(dirname "$0")/.."

status=0

if grep -Rn '"sspp/internal/' examples/ 2>/dev/null; then
    echo "FAIL: examples/ import sspp/internal/... — use only the public sspp API" >&2
    status=1
fi

allow='cmd/benchtab/main.go:sspp/internal/experiments
cmd/benchtab/main.go:sspp/internal/trials
cmd/electsim/main.go:sspp/internal/trace
cmd/statespace/main.go:sspp/internal/core
cmd/verifyspace/main.go:sspp/internal/modelcheck'

bad=$(grep -Rn '"sspp/internal/' cmd/ 2>/dev/null | while IFS=: read -r file line imp; do
    pkg=$(printf '%s' "$imp" | sed 's/.*"\(sspp\/internal\/[^"]*\)".*/\1/')
    if ! printf '%s\n' "$allow" | grep -qx "$file:$pkg"; then
        printf '  %s:%s imports %s\n' "$file" "$line" "$pkg"
    fi
done)

if [ -n "$bad" ]; then
    echo "FAIL: cmd/ internal imports outside the allowlist:" >&2
    printf '%s\n' "$bad" >&2
    status=1
fi

[ "$status" -eq 0 ] && echo "public-API import guard: OK"
exit $status
