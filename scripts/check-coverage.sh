#!/bin/sh
# Coverage ratchet: total statement coverage must not fall below the floor
# recorded in scripts/coverage-floor.txt. The floor only moves up (or is
# lowered consciously in a reviewed change) — so test coverage can ratchet
# forward but never silently erode. Regenerate the floor after raising
# coverage with:
#
#   ./scripts/check-coverage.sh --update
set -eu
cd "$(dirname "$0")/.."

profile="${COVERPROFILE:-coverage.out}"
floor_file="scripts/coverage-floor.txt"

# The coverage run IS the test run (a failing test fails this script); its
# output stays visible so CI failures are diagnosable from this step alone.
go test -count=1 -coverprofile="$profile" ./...
total=$(go tool cover -func="$profile" | tail -n 1 | awk '{gsub(/%/, "", $3); print $3}')

if [ "${1:-}" = "--update" ]; then
    # Record a small slack below the measured value: trial-scheduling order
    # can flip a few rarely taken branches between runs.
    printf '%s\n' "$total" | awk '{printf "%.1f\n", $1 - 1.5}' > "$floor_file"
    echo "coverage floor updated to $(cat "$floor_file")% (measured ${total}%)"
    exit 0
fi

floor=$(cat "$floor_file")
echo "total statement coverage: ${total}% (floor: ${floor}%)"
if ! awk -v t="$total" -v f="$floor" 'BEGIN { exit (t + 0 >= f + 0) ? 0 : 1 }'; then
    echo "FAIL: coverage ${total}% fell below the recorded floor ${floor}%" >&2
    echo "add tests for the new code, or consciously lower $floor_file" >&2
    exit 1
fi
