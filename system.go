// Package sspp is the public interface to this repository's reproduction of
// "A Space-Time Trade-off for Fast Self-Stabilizing Leader Election in
// Population Protocols" (Austin, Berenbrink, Friedetzky, Götte, Hintze;
// PODC 2025, arXiv:2505.01210).
//
// The package wraps the full ElectLeader_r implementation (internal/core and
// its substrates) — and the related-work baselines that anchor the paper's
// trade-off curve — behind four composable concepts:
//
//   - System — one population built from a Config. Runs are declared with
//     composable RunOption values: stop conditions are first-class
//     predicates (SafeSet, CorrectOutput, or user-supplied ConditionFunc),
//     and budgets, confirmation windows, observation hooks, mid-run
//     transient faults, and cancellation all compose freely.
//   - Protocol registry — Config.Protocol selects which protocol the System
//     runs: the paper's ElectLeader_r (the default) or one of the Section 2
//     baselines (ciw, namerank, loosele, fastle — see Protocols()). Every
//     protocol runs through the same engine; optional capabilities (rank
//     outputs, safe sets, adversarial injection, state snapshots) are
//     detected per protocol, and SafeSet degrades to confirmed correct
//     output for protocols without a safe set. NewCustom runs user-supplied
//     protocols on the identical machinery.
//   - Scheduler — the source of interaction pairs. NewUniform is the
//     paper's model (§1.1: every ordered pair equally likely); NewBatch is
//     a high-throughput drop-in with the identical schedule, NewZipf and
//     NewWeighted model non-uniform contact rates, and NewRecorder /
//     Recording.Replay capture and re-run exact schedules.
//   - Topology — the interaction graph pairs are drawn from.
//     Config.Topology defaults to the complete graph of the paper's model
//     (zero overhead, bit-identical to the pre-topology engine); Ring,
//     Torus2D, RandomRegular, ErdosRenyi and NewTopology restrict the
//     scheduler to a graph's edge set, the graph-restricted population
//     model of the ring leader-election literature.
//   - Ensemble — a declarative grid of protocols × Topologies × (n, r)
//     Points × adversary classes × seed counts, executed across GOMAXPROCS
//     workers with deterministic aggregation: results (and their JSON
//     export, plus the pivoted CompareResult) are byte-identical for every
//     worker count.
//
// A minimal session:
//
//	sys, err := sspp.New(sspp.Config{N: 64, R: 8, Seed: 1})
//	if err != nil { ... }
//	_ = sys.Inject(sspp.AdversaryTwoLeaders, 7)
//	res := sys.Run(
//		sspp.Until(sspp.SafeSet), // the Lemma 6.1 stop condition
//		sspp.SchedulerSeed(2),
//	)
//	if res.Stabilized {
//		leader, _ := sys.Leader()
//		fmt.Println("leader:", leader, "after", res.Interactions, "interactions")
//	}
//
// And a cross-protocol family of runs — the comparison shape the paper's
// trade-off (and its related work) actually calls for:
//
//	ens, err := sspp.NewEnsemble(sspp.Grid{
//		Protocols:   []string{sspp.ProtocolElectLeader, sspp.ProtocolCIW},
//		Points:      []sspp.Point{{N: 32, R: 8}, {N: 64, R: 16}},
//		Adversaries: []sspp.Adversary{sspp.AdversaryTwoLeaders},
//		Seeds:       10,
//	})
//	if err != nil { ... }
//	out := ens.Run() // parallel; byte-identical at any worker count
//	_ = out.Compare().WriteJSON(os.Stdout)
//
// Everything is deterministic given the seeds. See DESIGN.md §"Public API"
// and §"Protocol registry" for the mapping from these types to the paper's
// concepts, and EXPERIMENTS.md for the reproduction results; cmd/benchtab
// regenerates every table.
package sspp

import (
	"fmt"
	"math"

	"sspp/internal/core"
	"sspp/internal/graph"
	"sspp/internal/rng"
	"sspp/internal/sim"
	"sspp/internal/species"
)

// Config configures a System.
type Config struct {
	// Protocol selects the protocol from the registry ("" means
	// "electleader", the paper's ElectLeader_r; see Protocols() for the
	// catalogue).
	Protocol string
	// N is the population size (n ≥ 2).
	N int
	// R is the space-time trade-off parameter of ElectLeader_r
	// (1 ≤ r ≤ n/2): larger r is faster and uses more states (Theorem 1.1).
	// Ignored by the baseline protocols.
	R int
	// Seed seeds the protocol-internal randomness. Scheduler randomness is
	// separate: see SchedulerSeed and WithScheduler.
	Seed uint64
	// SyntheticCoins runs ElectLeader_r fully derandomized (Appendix B).
	// Only supported by the "electleader" protocol.
	SyntheticCoins bool
	// Tau is the timeout parameter of the "loosele" protocol (0 selects
	// 4·ln n). Ignored by every other protocol.
	Tau int32
	// Backend selects the simulation backend: BackendAgent ("" or "agent",
	// one struct per agent — the default), BackendSpecies ("species", the
	// population as state counts; requires the compactable capability), or
	// BackendAuto ("auto", species for compactable protocols at populations
	// of SpeciesAutoThreshold or more).
	Backend string
	// Topology selects the interaction graph the scheduler samples pairs
	// from. The zero value is the complete graph of the paper's model (§1.1)
	// — the historical behaviour, bit for bit; Ring(), Torus2D(),
	// RandomRegular(d), ErdosRenyi(p) and NewTopology restrict interactions
	// to a graph's edge set. Random families draw their graph
	// deterministically from Seed. Non-complete topologies require the agent
	// backend (the species backend has no agent adjacency — see DESIGN.md §9).
	Topology Topology
	// Clock selects the simulation clock: ClockDiscrete ("" or "discrete",
	// the historical interaction-counting clock — bit-identical schedules and
	// results), ClockContinuous ("continuous", the continuous-time population
	// model: interactions form a Poisson process of rate n/2 per unit
	// parallel time, with τ-leaped bulk stepping on the species backend for
	// deterministic models), or ClockContinuousExact ("continuous-exact",
	// the continuous clock without τ-leaping — the exact jump chain equipped
	// with native event times). See DESIGN.md §12.
	Clock string
}

// System is a running population: one protocol instance plus the engine
// state needed to run it. All predicates and mutators dispatch on the
// protocol's optional capabilities and degrade gracefully — e.g. Ranks
// returns nil for protocols without rank outputs, and Inject reports an
// error for protocols without adversarial-injection support.
type System struct {
	proto     sim.Protocol
	events    *sim.Events
	cfg       Config
	spec      *protocolSpec   // nil for NewCustom systems
	backend   string          // resolved backend (BackendAgent or BackendSpecies)
	graph     *graph.Graph    // materialized interaction graph; nil for the complete topology
	clock     uint64          // engine-counted interactions (Clocked protocols report their own)
	clockMode string          // resolved Config.Clock (ClockDiscrete default)
	tk        *sim.TimeKeeper // continuous clock on the complete topology, agent backend
	pt        float64         // accumulated parallel time (see ParallelTime)
}

// The simulation clocks accepted by Config.Clock.
const (
	// ClockDiscrete counts interactions; parallel time is derived as
	// interactions divided by the live population size. "" selects it,
	// keeping pre-clock configurations bit-identical.
	ClockDiscrete = "discrete"
	// ClockContinuous runs the continuous-time population model natively:
	// exponential holding times at rate n/2, and — on the species backend
	// with a deterministic model — τ-leaped bulk stepping that fires whole
	// reaction bundles per draw.
	ClockContinuous = "continuous"
	// ClockContinuousExact is the continuous clock without τ-leaping: the
	// exact jump chain of the discrete scheduler equipped with native event
	// times (the reference arm the leaping gate compares against).
	ClockContinuousExact = "continuous-exact"
)

// clockSeedSalt decorrelates the holding-time stream from the protocol seed
// (and from the topology and species salts), so equipping a run with the
// continuous clock never perturbs its jump chain.
const clockSeedSalt = 0x636C_6F63_6BD1_B54A

// resolveClock maps a Config.Clock value to its canonical constant.
func resolveClock(clock string) (string, error) {
	switch clock {
	case "", ClockDiscrete:
		return ClockDiscrete, nil
	case ClockContinuous, ClockContinuousExact:
		return clock, nil
	default:
		return "", fmt.Errorf("sspp: unknown clock %q (want %q, %q or %q)",
			clock, ClockDiscrete, ClockContinuous, ClockContinuousExact)
	}
}

// New builds a System running the protocol named by cfg.Protocol (default:
// the paper's ElectLeader_r). The initial configuration is the protocol's
// canonical start — for ElectLeader_r the clean post-awakening one (all
// agents fresh rankers); use Inject for adversarial starts.
func New(cfg Config) (*System, error) {
	spec, err := specFor(cfg.Protocol)
	if err != nil {
		return nil, err
	}
	if err := spec.validate(cfg); err != nil {
		return nil, fmt.Errorf("sspp: %w", err)
	}
	backend, err := resolveBackend(cfg, spec)
	if err != nil {
		return nil, err
	}
	g, err := cfg.Topology.materialize(cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	ev := sim.NewEvents()
	var p sim.Protocol
	if backend == BackendSpecies && spec.compactClean != nil {
		// Clean-start fast path: build the species form directly instead of
		// constructing the agent instance only to compact it away (for
		// ElectLeader_r that instance costs O(n·r) before the first
		// interaction). Bit-for-bit equivalent to the compactProto path —
		// pinned by TestCompactCleanMirrorsCompact and the system-level
		// equivalence test in backend_test.go.
		model, err := spec.compactClean(cfg, ev)
		if err != nil {
			return nil, fmt.Errorf("sspp: %w", err)
		}
		sp, err := species.NewSystem(model, cfg.Seed^speciesSeedSalt)
		if err != nil {
			return nil, fmt.Errorf("sspp: %w", err)
		}
		p = species.Capable(sp)
	} else {
		if p, err = spec.build(cfg, ev); err != nil {
			return nil, fmt.Errorf("sspp: %w", err)
		}
		if backend == BackendSpecies {
			if p, err = compactProto(p, cfg.Seed); err != nil {
				return nil, err
			}
		}
	}
	clock, err := resolveClock(cfg.Clock)
	if err != nil {
		return nil, err
	}
	sys := &System{proto: p, events: ev, cfg: cfg, spec: spec, backend: backend, graph: g, clockMode: clock}
	if clock != ClockDiscrete {
		timeSrc := rng.New(cfg.Seed ^ clockSeedSalt)
		if cs, ok := sim.AsContinuousStepper(p); ok {
			cs.StartContinuous(timeSrc, clock == ClockContinuous)
		} else if g == nil {
			sys.tk = sim.NewTimeKeeper(timeSrc, cfg.N)
		}
		// On a non-complete topology the per-run next-reaction scheduler
		// carries the clock itself (see topologize).
	}
	return sys, nil
}

// ProtocolName returns the registry name of the system's protocol
// ("custom" for NewCustom systems).
func (s *System) ProtocolName() string {
	if s.spec != nil {
		return s.spec.name
	}
	return "custom"
}

// Capabilities returns the optional engine capabilities the system's
// protocol implements (the Capability* constants). Under the species
// backend this reflects the running count-based backend, not the agent
// form the protocol was compacted from.
func (s *System) Capabilities() []string { return capabilitiesOf(s.proto) }

// Backend returns the resolved simulation backend the system runs on
// (BackendAgent or BackendSpecies).
func (s *System) Backend() string {
	if s.backend == "" {
		return BackendAgent
	}
	return s.backend
}

// N returns the population size.
func (s *System) N() int { return s.proto.N() }

// R returns the trade-off parameter (0 for protocols without one).
func (s *System) R() int {
	if rr, ok := s.proto.(interface{ R() int }); ok {
		return rr.R()
	}
	return 0
}

// Interactions returns the number of interactions executed so far.
func (s *System) Interactions() uint64 {
	if c, ok := sim.AsClocked(s.proto); ok {
		return c.Clock()
	}
	return s.clock
}

// ParallelTime returns the parallel time elapsed so far. Under the
// discrete clock it is the deterministic count of interactions divided by
// the live population size (accrued per stepping chunk, so it tracks churn);
// under the continuous clocks it is the native event time of the underlying
// Poisson process — read from the protocol's own continuous stepper, the
// TimeKeeper, or the next-reaction scheduler, whichever carries the clock.
func (s *System) ParallelTime() float64 {
	if s.clockMode != ClockDiscrete && s.clockMode != "" {
		if cs, ok := sim.AsContinuousStepper(s.proto); ok {
			return cs.ParallelTime()
		}
	}
	if s.tk != nil {
		return s.tk.Time()
	}
	return s.pt
}

// advanceClock accrues parallel time for k just-executed interactions on
// whichever clock the system carries — except the protocol's own continuous
// stepper, which accrues natively, and the next-reaction scheduler, whose
// time the stepping loops read back directly.
func (s *System) advanceClock(k uint64) {
	if k == 0 {
		return
	}
	if s.clockMode != ClockDiscrete && s.clockMode != "" {
		if _, ok := sim.AsContinuousStepper(s.proto); ok {
			return
		}
	}
	if s.tk != nil {
		s.tk.AdvanceMany(k)
		return
	}
	s.pt += float64(k) / float64(s.N())
}

// DefaultBudget returns the default interaction budget: a generous
// multiple of the protocol's expected stabilization shape — for
// ElectLeader_r the Theorem 1.1 bound (n²/r)·log n, for CIW the Θ(n²)
// silent-ranking time, for the O(n·log n) baselines and custom protocols a
// c·n·ln(n+1) envelope.
func (s *System) DefaultBudget() uint64 {
	if s.spec != nil {
		return s.spec.budget(s.cfg)
	}
	n := float64(s.N())
	return uint64(1000 * n * math.Log(n+1))
}

// Leader returns the index of the unique leader, or ok = false when the
// configuration does not currently have exactly one leader. O(1) for
// ElectLeader_r (the core tracks the leader incrementally); a scan for the
// baselines.
func (s *System) Leader() (int, bool) {
	if li, ok := sim.AsLeaderIndexer(s.proto); ok {
		return li.LeaderIndex()
	}
	return -1, false
}

// Leaders returns the number of agents currently outputting "leader".
func (s *System) Leaders() int {
	if lc, ok := s.proto.(interface{ Leaders() int }); ok {
		return lc.Leaders()
	}
	if rk, ok := sim.AsRanker(s.proto); ok {
		leaders := 0
		for i := 0; i < s.N(); i++ {
			if rk.RankOutput(i) == 1 {
				leaders++
			}
		}
		return leaders
	}
	return 0
}

// Ranks returns every agent's current rank output, or nil for protocols
// without the ranker capability.
func (s *System) Ranks() []int {
	rk, ok := sim.AsRanker(s.proto)
	if !ok {
		return nil
	}
	out := make([]int, s.N())
	for i := range out {
		out[i] = int(rk.RankOutput(i))
	}
	return out
}

// Correct reports whether the configuration currently has correct output
// (exactly one leader).
func (s *System) Correct() bool { return s.proto.Correct() }

// CorrectRanking reports whether the rank outputs form a permutation
// (false for protocols without a ranking output). Count-based backends
// check the permutation over state counts even though per-agent rank
// outputs (Ranks) do not exist for them.
func (s *System) CorrectRanking() bool {
	// The structural probe covers every full sim.Ranker too (CorrectRanking
	// is part of that method set), so one branch dispatches both.
	if rc, ok := s.proto.(interface{ CorrectRanking() bool }); ok {
		return rc.CorrectRanking()
	}
	return false
}

// InSafeSet reports whether the configuration is in (the checkable core of)
// the protocol's safe set — for ElectLeader_r the safe set of Lemma 6.1.
// Protocols without the safe-set capability always report false; runs
// against Until(SafeSet) fall back to confirmed correct output for them.
func (s *System) InSafeSet() bool {
	if ss, ok := sim.AsSafeSetter(s.proto); ok {
		return ss.InSafeSet()
	}
	return false
}

// Roles returns the number of agents that are resetting, ranking, and
// verifying (all zero for protocols without ElectLeader_r's role
// structure).
func (s *System) Roles() (resetting, ranking, verifying int) {
	if r, ok := s.proto.(interface{ Roles() (int, int, int) }); ok {
		return r.Roles()
	}
	return 0, 0, 0
}

// EventCount returns how often the named event occurred; see Events for the
// available names. Baseline protocols do not emit events.
func (s *System) EventCount(name string) uint64 { return s.events.Count(name) }

// Events returns all recorded event names with counts, rendered compactly.
func (s *System) Events() string { return s.events.String() }

// HardResets returns the number of full resets triggered so far.
func (s *System) HardResets() uint64 { return s.events.Count(core.EventHardReset) }

// StateBits returns log₂ of the per-agent state-space size of ElectLeader_r
// for the given parameters (the Figure 1 formula) — 2^O(r²·log n).
func StateBits(n, r int) float64 {
	return core.ElectLeaderBits(float64(n), float64(r))
}

// Snapshot is a point-in-time view of the population used by the Observe
// run option and the tracing tools built on it. Fields a protocol cannot
// fill (e.g. role counts outside ElectLeader_r) stay zero.
type Snapshot struct {
	// Interactions is the total interactions executed so far.
	Interactions uint64
	// ParallelTime is the parallel time elapsed so far (see
	// System.ParallelTime for the clock semantics).
	ParallelTime float64
	// Resetting, Ranking, Verifying are the role counts.
	Resetting, Ranking, Verifying int
	// Leaders is the number of agents outputting "leader".
	Leaders int
	// HardResets, SoftResets, Tops are cumulative event counts.
	HardResets, SoftResets, Tops uint64
	// InSafeSet reports whether the configuration is in the safe set.
	InSafeSet bool
}

// Snapshot returns the current population composition. Protocols with the
// snapshotter capability fill the full role/event detail; the generic
// fallback reports the interaction count, leader count and safe-set flag.
func (s *System) Snapshot() Snapshot {
	var ss sim.Snapshot
	ss.Interactions = s.Interactions()
	if sn, ok := sim.AsSnapshotter(s.proto); ok {
		sn.SnapshotInto(&ss)
	} else {
		ss.Leaders = s.Leaders()
		ss.InSafeSet = s.InSafeSet()
	}
	return Snapshot{
		Interactions: ss.Interactions,
		ParallelTime: s.ParallelTime(),
		Resetting:    ss.Resetting,
		Ranking:      ss.Ranking,
		Verifying:    ss.Verifying,
		Leaders:      ss.Leaders,
		HardResets:   ss.HardResets,
		SoftResets:   ss.SoftResets,
		Tops:         ss.Tops,
		InSafeSet:    ss.InSafeSet,
	}
}
