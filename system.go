// Package sspp is the public interface to this repository's reproduction of
// "A Space-Time Trade-off for Fast Self-Stabilizing Leader Election in
// Population Protocols" (Austin, Berenbrink, Friedetzky, Götte, Hintze;
// PODC 2025, arXiv:2505.01210).
//
// The package wraps the full ElectLeader_r implementation (internal/core and
// its substrates) behind three composable concepts:
//
//   - System — one population built from a Config. Runs are declared with
//     composable RunOption values: stop conditions are first-class
//     predicates (SafeSet, CorrectOutput, or user-supplied ConditionFunc),
//     and budgets, confirmation windows, observation hooks, mid-run
//     transient faults, and cancellation all compose freely.
//   - Scheduler — the source of interaction pairs. NewUniform is the
//     paper's model (§1.1: every ordered pair equally likely); NewBatch is
//     a high-throughput drop-in with the identical schedule, NewZipf and
//     NewWeighted model non-uniform contact rates, and NewRecorder /
//     Recording.Replay capture and re-run exact schedules.
//   - Ensemble — a declarative grid of (n, r) Points × adversary classes ×
//     seed counts, executed across GOMAXPROCS workers with deterministic
//     aggregation: results (and their JSON export) are byte-identical for
//     every worker count.
//
// A minimal session:
//
//	sys, err := sspp.New(sspp.Config{N: 64, R: 8, Seed: 1})
//	if err != nil { ... }
//	_ = sys.Inject(sspp.AdversaryTwoLeaders, 7)
//	res := sys.Run(
//		sspp.Until(sspp.SafeSet), // the Lemma 6.1 stop condition
//		sspp.SchedulerSeed(2),
//	)
//	if res.Stabilized {
//		leader, _ := sys.Leader()
//		fmt.Println("leader:", leader, "after", res.Interactions, "interactions")
//	}
//
// And a family of runs — the shape the paper's tunable (n²/r)·log n result
// actually calls for:
//
//	ens, err := sspp.NewEnsemble(sspp.Grid{
//		Points:      []sspp.Point{{N: 32, R: 4}, {N: 64, R: 8}},
//		Adversaries: []sspp.Adversary{sspp.AdversaryTriggered},
//		Seeds:       10,
//	})
//	if err != nil { ... }
//	out := ens.Run() // parallel; byte-identical at any worker count
//	_ = out.WriteJSON(os.Stdout)
//
// Everything is deterministic given the seeds. See DESIGN.md §"Public API"
// for the mapping from these types to the paper's concepts, and
// EXPERIMENTS.md for the reproduction results; cmd/benchtab regenerates
// every table.
package sspp

import (
	"fmt"
	"math"

	"sspp/internal/core"
	"sspp/internal/sim"
)

// Config configures a System.
type Config struct {
	// N is the population size (n ≥ 2).
	N int
	// R is the space-time trade-off parameter (1 ≤ r ≤ n/2): larger r is
	// faster and uses more states (Theorem 1.1).
	R int
	// Seed seeds the protocol-internal randomness. Scheduler randomness is
	// separate: see SchedulerSeed and WithScheduler.
	Seed uint64
	// SyntheticCoins runs the protocol fully derandomized (Appendix B).
	SyntheticCoins bool
}

// System is a running ElectLeader_r population.
type System struct {
	proto  *core.Protocol
	events *sim.Events
	cfg    Config
}

// New builds a System. The initial configuration is the clean
// post-awakening one (all agents fresh rankers); use Inject for adversarial
// starts.
func New(cfg Config) (*System, error) {
	ev := sim.NewEvents()
	opts := []core.Option{core.WithSeed(cfg.Seed), core.WithEvents(ev)}
	if cfg.SyntheticCoins {
		opts = append(opts, core.WithSyntheticCoins())
	}
	p, err := core.New(cfg.N, cfg.R, opts...)
	if err != nil {
		return nil, fmt.Errorf("sspp: %w", err)
	}
	return &System{proto: p, events: ev, cfg: cfg}, nil
}

// N returns the population size.
func (s *System) N() int { return s.proto.N() }

// R returns the trade-off parameter.
func (s *System) R() int { return s.proto.R() }

// Interactions returns the number of interactions executed so far.
func (s *System) Interactions() uint64 { return s.proto.Clock() }

// DefaultBudget returns the default interaction budget for the system's
// (n, r): a generous multiple of the Theorem 1.1 bound (n²/r)·log n.
func (s *System) DefaultBudget() uint64 {
	n, r := float64(s.N()), float64(s.R())
	return uint64(1000 * n * n / r * math.Log(n+1))
}

// Leader returns the index of the unique leader, or ok = false when the
// configuration does not currently have exactly one leader. O(1): the core
// tracks the leader incrementally, so no scan is performed.
func (s *System) Leader() (int, bool) { return s.proto.LeaderIndex() }

// Leaders returns the number of agents currently outputting "leader". O(1).
func (s *System) Leaders() int { return s.proto.Leaders() }

// Ranks returns every agent's current rank output.
func (s *System) Ranks() []int {
	out := make([]int, s.N())
	for i := range out {
		out[i] = int(s.proto.RankOutput(i))
	}
	return out
}

// Correct reports whether exactly one agent outputs "leader".
func (s *System) Correct() bool { return s.proto.Correct() }

// CorrectRanking reports whether the rank outputs form a permutation.
func (s *System) CorrectRanking() bool { return s.proto.CorrectRanking() }

// InSafeSet reports whether the configuration is in (the checkable core of)
// the safe set of Lemma 6.1.
func (s *System) InSafeSet() bool { return s.proto.InSafeSet() }

// Roles returns the number of agents that are resetting, ranking, and
// verifying.
func (s *System) Roles() (resetting, ranking, verifying int) {
	return s.proto.Roles()
}

// EventCount returns how often the named event occurred; see Events for the
// available names.
func (s *System) EventCount(name string) uint64 { return s.events.Count(name) }

// Events returns all recorded event names with counts, rendered compactly.
func (s *System) Events() string { return s.events.String() }

// HardResets returns the number of full resets triggered so far.
func (s *System) HardResets() uint64 { return s.events.Count(core.EventHardReset) }

// StateBits returns log₂ of the per-agent state-space size of ElectLeader_r
// for the given parameters (the Figure 1 formula) — 2^O(r²·log n).
func StateBits(n, r int) float64 {
	return core.ElectLeaderBits(float64(n), float64(r))
}

// Snapshot is a point-in-time view of the population used by the Observe
// run option and the tracing tools built on it.
type Snapshot struct {
	// Interactions is the total interactions executed so far.
	Interactions uint64
	// Resetting, Ranking, Verifying are the role counts.
	Resetting, Ranking, Verifying int
	// Leaders is the number of agents outputting "leader".
	Leaders int
	// HardResets, SoftResets, Tops are cumulative event counts.
	HardResets, SoftResets, Tops uint64
	// InSafeSet reports whether the configuration is in the safe set.
	InSafeSet bool
}

// Snapshot returns the current population composition.
func (s *System) Snapshot() Snapshot {
	resetting, rankingCount, verifying := s.proto.Roles()
	return Snapshot{
		Interactions: s.proto.Clock(),
		Resetting:    resetting,
		Ranking:      rankingCount,
		Verifying:    verifying,
		Leaders:      s.proto.Leaders(),
		HardResets:   s.events.Count(core.EventHardReset),
		SoftResets:   s.events.Count("verify.soft_reset"),
		Tops:         s.events.Count("verify.top"),
		InSafeSet:    s.proto.InSafeSet(),
	}
}
