// ensemble.go implements the first-class parallel experiment layer: an
// Ensemble declares a grid of (n, r) parameter points × adversary classes ×
// seed counts and runs every trial across GOMAXPROCS workers through the
// deterministic trial engine (internal/trials). Aggregation is byte-exact
// for every worker count: trial randomness is pre-derived per (cell, seed)
// and results land in declaration order, so the summary statistics — and
// their JSON export — are a pure function of the Grid.
//
// The per-seed randomness derivation matches the historical
// internal/experiments harness (stream s is the s-th sequential Fork of
// rng.New(BaseSeed); each trial draws protoSeed, then forks adversary and
// scheduler streams), so Ensemble cells reproduce the experiment tables'
// numbers byte-identically.

package sspp

import (
	"encoding/json"
	"fmt"
	"io"

	"sspp/internal/adversary"
	"sspp/internal/core"
	"sspp/internal/rng"
	"sspp/internal/stats"
	"sspp/internal/trials"
)

// EnsembleSchemaVersion identifies the EnsembleResult JSON layout.
const EnsembleSchemaVersion = 1

// Point is one (n, r) parameter point of an Ensemble grid.
type Point struct {
	N int `json:"n"`
	R int `json:"r"`
}

// Grid declares a family of runs: the cross product of parameter Points ×
// Adversaries × Seeds independent seeds per cell. Every run starts from the
// adversarial configuration, runs to the safe set of Lemma 6.1 under the
// uniform scheduler, and reports its arrival time.
type Grid struct {
	// Points are the (n, r) parameter points (at least one).
	Points []Point
	// Adversaries are the starting-configuration classes; empty means a
	// single clean (un-corrupted) start per point.
	Adversaries []Adversary
	// Seeds is the number of independent runs per cell (default 5).
	Seeds int
	// BaseSeed offsets all trial randomness for reproducibility studies.
	BaseSeed uint64
	// MaxInteractions is the per-run budget (0: each point's DefaultBudget,
	// the generous Theorem 1.1 multiple).
	MaxInteractions uint64
	// SyntheticCoins runs every trial fully derandomized (Appendix B).
	SyntheticCoins bool
}

// Ensemble executes a Grid across a worker pool. Build with NewEnsemble.
type Ensemble struct {
	grid    Grid
	workers int
}

// EnsembleOption configures NewEnsemble.
type EnsembleOption func(*Ensemble)

// Workers sets the trial-engine worker count (< 1, the default, means
// GOMAXPROCS). Results are byte-identical for every value.
func Workers(k int) EnsembleOption {
	return func(e *Ensemble) { e.workers = k }
}

// NewEnsemble validates the grid and returns an Ensemble ready to Run.
func NewEnsemble(g Grid, opts ...EnsembleOption) (*Ensemble, error) {
	if len(g.Points) == 0 {
		return nil, fmt.Errorf("sspp: ensemble grid has no points")
	}
	for _, pt := range g.Points {
		if err := core.ValidateParams(pt.N, pt.R); err != nil {
			return nil, fmt.Errorf("sspp: ensemble point (n=%d, r=%d): %w", pt.N, pt.R, err)
		}
	}
	known := make(map[Adversary]bool)
	for _, c := range AdversaryClasses() {
		known[c] = true
	}
	for _, a := range g.Adversaries {
		if !known[a] {
			return nil, fmt.Errorf("sspp: ensemble grid names unknown adversary class %q", a)
		}
	}
	if g.Seeds < 0 {
		return nil, fmt.Errorf("sspp: ensemble grid has negative seed count %d", g.Seeds)
	}
	if g.Seeds == 0 {
		g.Seeds = 5
	}
	e := &Ensemble{grid: g}
	for _, o := range opts {
		o(e)
	}
	return e, nil
}

// Distribution summarizes the per-seed samples of one cell measurement
// (mean/median/quantiles via internal/stats). N is the sample count; the
// zero Distribution means no successful samples.
type Distribution struct {
	N      int     `json:"count"`
	Mean   float64 `json:"mean"`
	Median float64 `json:"median"`
	P10    float64 `json:"p10"`
	P90    float64 `json:"p90"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	CI95   float64 `json:"ci95"`
}

// summarize converts a sample slice into a Distribution.
func summarize(xs []float64) Distribution {
	if len(xs) == 0 {
		return Distribution{}
	}
	s := stats.Summarize(xs)
	return Distribution{
		N: s.N, Mean: s.Mean, Median: s.Median, P10: s.P10, P90: s.P90,
		Min: s.Min, Max: s.Max, CI95: s.CI95,
	}
}

// Cell is the aggregated outcome of one grid cell (a Point × Adversary
// pair): safe-set arrival statistics over the cell's seeds.
type Cell struct {
	// Point is the (n, r) parameter point.
	Point Point `json:"point"`
	// Adversary is the starting-configuration class ("" for a clean start).
	Adversary Adversary `json:"adversary,omitempty"`
	// Seeds is the number of trials run for the cell.
	Seeds int `json:"seeds"`
	// Recovered counts trials that reached the safe set within budget.
	Recovered int `json:"recovered"`
	// Failures counts trials that did not (including unrealizable
	// injections at this point).
	Failures int `json:"failures"`
	// Interactions summarizes safe-set arrival times over recovered trials,
	// in interactions.
	Interactions Distribution `json:"interactions"`
	// ParallelTime is Interactions scaled by 1/n (the paper's time unit).
	ParallelTime Distribution `json:"parallel_time"`
	// HardResets summarizes full resets per recovered trial.
	HardResets Distribution `json:"hard_resets"`
	// Samples holds the raw safe-set arrival times (interactions) of the
	// recovered trials, in seed order.
	Samples []float64 `json:"samples"`
}

// EnsembleResult is the aggregated outcome of an Ensemble run. Its JSON
// encoding is byte-identical for every worker count.
type EnsembleResult struct {
	SchemaVersion int    `json:"schema_version"`
	Seeds         int    `json:"seeds"`
	BaseSeed      uint64 `json:"base_seed"`
	Cells         []Cell `json:"cells"`
}

// Cell returns the cell for the given point and adversary class.
func (r *EnsembleResult) Cell(p Point, a Adversary) (Cell, bool) {
	for _, c := range r.Cells {
		if c.Point == p && c.Adversary == a {
			return c, true
		}
	}
	return Cell{}, false
}

// JSON renders the result as indented JSON.
func (r *EnsembleResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// WriteJSON writes the indented JSON rendering to w.
func (r *EnsembleResult) WriteJSON(w io.Writer) error {
	b, err := r.JSON()
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// trialOutcome is the raw result of one (cell, seed) trial.
type trialOutcome struct {
	ok   bool
	took uint64
	hard uint64
}

// seedStreams holds the pre-derived randomness of one seed index: the
// protocol seed plus the initial states of the adversary and scheduler
// streams. Every cell uses the same per-seed derivation — stream s is the
// s-th sequential Fork of rng.New(BaseSeed), then protoSeed is drawn and
// the two sub-streams forked, exactly as the historical experiment harness
// did — so cell results are independent of the grid layout and the worker
// count. Trials copy the PRNG states by value, never sharing instances.
type seedStreams struct {
	protoSeed  uint64
	adv, sched rng.PRNG
}

// deriveSeedStreams pre-derives the per-seed randomness once, O(seeds).
func deriveSeedStreams(baseSeed uint64, seeds int) []seedStreams {
	root := rng.New(baseSeed)
	out := make([]seedStreams, seeds)
	for s := range out {
		src := root.Fork()
		out[s].protoSeed = src.Uint64()
		out[s].adv = *src.Fork()
		out[s].sched = *src.Fork()
	}
	return out
}

// Run executes every trial of the grid across the worker pool and
// aggregates per cell, in grid declaration order.
func (e *Ensemble) Run() *EnsembleResult {
	g := e.grid
	advs := g.Adversaries
	if len(advs) == 0 {
		advs = []Adversary{""}
	}
	cells := len(g.Points) * len(advs)
	jobs := cells * g.Seeds
	streams := deriveSeedStreams(g.BaseSeed, g.Seeds)

	outs := trials.Run(e.workers, jobs, g.BaseSeed, func(j int, _ *rng.PRNG) trialOutcome {
		ci, s := j/g.Seeds, j%g.Seeds
		pt := g.Points[ci/len(advs)]
		class := advs[ci%len(advs)]
		advSrc, schedSrc := streams[s].adv, streams[s].sched
		sys, err := New(Config{N: pt.N, R: pt.R, Seed: streams[s].protoSeed, SyntheticCoins: g.SyntheticCoins})
		if err != nil {
			return trialOutcome{}
		}
		if class != "" {
			if err := adversary.Apply(sys.proto, adversary.Class(class), &advSrc); err != nil {
				return trialOutcome{}
			}
		}
		res := sys.Run(Until(SafeSet), WithScheduler(&schedSrc),
			MaxInteractions(g.MaxInteractions))
		return trialOutcome{ok: res.Stabilized, took: res.Interactions, hard: sys.HardResets()}
	})

	out := &EnsembleResult{
		SchemaVersion: EnsembleSchemaVersion,
		Seeds:         g.Seeds,
		BaseSeed:      g.BaseSeed,
		Cells:         make([]Cell, 0, cells),
	}
	for ci := 0; ci < cells; ci++ {
		cell := Cell{
			Point:     g.Points[ci/len(advs)],
			Adversary: advs[ci%len(advs)],
			Seeds:     g.Seeds,
			Samples:   []float64{},
		}
		var par, hard []float64
		for s := 0; s < g.Seeds; s++ {
			o := outs[ci*g.Seeds+s]
			if !o.ok {
				cell.Failures++
				continue
			}
			cell.Recovered++
			cell.Samples = append(cell.Samples, float64(o.took))
			par = append(par, float64(o.took)/float64(cell.Point.N))
			hard = append(hard, float64(o.hard))
		}
		cell.Interactions = summarize(cell.Samples)
		cell.ParallelTime = summarize(par)
		cell.HardResets = summarize(hard)
		out.Cells = append(out.Cells, cell)
	}
	return out
}
