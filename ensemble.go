// ensemble.go implements the first-class parallel experiment layer: an
// Ensemble declares a grid of protocols × (n, r) parameter points ×
// adversary classes × seed counts and runs every trial across GOMAXPROCS
// workers through the deterministic trial engine (internal/trials).
// Aggregation is byte-exact for every worker count: trial randomness is
// pre-derived per (cell, seed) and results land in declaration order, so
// the summary statistics — and their JSON export, plus the pivoted
// CompareResult — are a pure function of the Grid.
//
// The per-seed randomness derivation matches the historical
// internal/experiments harness (stream s is the s-th sequential Fork of
// rng.New(BaseSeed); each trial draws protoSeed, then forks adversary and
// scheduler streams), so Ensemble cells reproduce the experiment tables'
// numbers byte-identically.

package sspp

import (
	"encoding/json"
	"fmt"
	"io"

	"sspp/internal/rng"
	"sspp/internal/sim"
	"sspp/internal/stats"
	"sspp/internal/trials"
)

// EnsembleSchemaVersion identifies the EnsembleResult JSON layout. Fields
// added for the protocol registry ("protocols", per-cell "protocol") are
// omitted when a grid does not cross protocols, so single-protocol exports
// are byte-identical to the pre-registry layout.
const EnsembleSchemaVersion = 1

// CompareSchemaVersion identifies the CompareResult JSON layout.
const CompareSchemaVersion = 1

// Point is one (n, r) parameter point of an Ensemble grid. R parameterizes
// ElectLeader_r and is ignored by the baseline protocols.
type Point struct {
	N int `json:"n"`
	R int `json:"r"`
}

// Grid declares a family of runs: the cross product of Protocols ×
// parameter Points × Adversaries × Seeds independent seeds per cell. Every
// run starts from the (optionally adversarial) configuration, runs to its
// protocol's stabilization condition — the safe set where the protocol has
// one, confirmed correct output otherwise — under the uniform scheduler,
// and reports its arrival time.
type Grid struct {
	// Protocols are registry protocol names (see Protocols()); empty means
	// the paper's ElectLeader_r alone, keeping the pre-registry JSON layout.
	Protocols []string
	// Topologies are the interaction topologies to cross (Complete(),
	// Ring(), RandomRegular(d), ...); empty means the complete graph alone,
	// keeping the pre-topology JSON layout. Cells are stamped with the
	// topology name; random families draw their graph per trial from the
	// trial's protocol seed. Non-complete entries require the agent backend.
	Topologies []Topology
	// Clocks are the simulation clocks to cross (ClockDiscrete,
	// ClockContinuous, ClockContinuousExact); empty means the discrete clock
	// alone, keeping the pre-clock JSON layout. Cells are stamped with the
	// clock name.
	Clocks []string
	// Points are the (n, r) parameter points (at least one).
	Points []Point
	// Adversaries are the starting-configuration classes; empty means a
	// single clean (un-corrupted) start per point, and an explicit ""
	// entry adds a clean-start column next to adversarial ones. Trials
	// whose protocol cannot realize a class (no injectable capability, or
	// an ElectLeader-specific class on a baseline) count as failures.
	Adversaries []Adversary
	// Seeds is the number of independent runs per cell (default 5).
	Seeds int
	// BaseSeed offsets all trial randomness for reproducibility studies.
	BaseSeed uint64
	// MaxInteractions is the per-run budget (0: each system's
	// DefaultBudget, the generous multiple of its expected shape).
	MaxInteractions uint64
	// Confirm overrides the confirmation window of protocols measured at
	// the output level (0: the per-run default of 20·n). It also applies to
	// safe-set protocols, where it demands the safe set hold that long.
	Confirm uint64
	// TransientK, when positive, switches every trial to the recovery
	// shape of experiment T14: stabilize first, corrupt TransientK agents
	// in place, and measure the re-stabilization time (cell statistics then
	// summarize recovery, and HardResets counts only post-fault resets).
	// Requires protocols with the injectable capability.
	TransientK int
	// Workload, when non-nil, generalizes the TransientK recovery shape to
	// full disruption schedules: every trial stabilizes first, then runs
	// again with the workload attached (WithWorkload) until every scheduled
	// event has fired, and cells additionally aggregate per-event recovery
	// statistics across seeds (Cell.Events). Workload phases carry their own
	// seeds, so a cell's schedule is identical across its seeds — which is
	// what makes per-event aggregation well-defined. Exclusive with
	// TransientK; requires the agent backend, fault phases require the
	// injectable capability, churn phases the churnable capability and the
	// complete topology.
	Workload *Workload
	// Tau is the timeout parameter for "loosele" points (0: 4·ln n).
	Tau int32
	// SyntheticCoins runs every trial fully derandomized (Appendix B;
	// "electleader" only).
	SyntheticCoins bool
	// Backend selects the simulation backend for every trial ("" or
	// BackendAgent: one struct per agent; BackendSpecies: state counts,
	// requiring every grid protocol's compactable capability and clean
	// starts; BackendAuto: species per point once n crosses the threshold).
	// Two grids differing only in Backend pair their trials at matched
	// seeds — the exact-vs-species faceoff shape of the equivalence tests.
	Backend string
}

// gridSeeds resolves the effective per-cell seed count of a grid (0 means
// the default of 5; negative values are rejected by NewEnsemble).
func gridSeeds(s int) int {
	if s == 0 {
		return 5
	}
	return s
}

// Ensemble executes a Grid across a worker pool. Build with NewEnsemble.
type Ensemble struct {
	grid     Grid
	workers  int
	obsEvery uint64
	obsFn    func(TrialObservation)
}

// EnsembleOption configures NewEnsemble.
type EnsembleOption func(*Ensemble)

// Workers sets the trial-engine worker count (< 1, the default, means
// GOMAXPROCS). Results are byte-identical for every value.
func Workers(k int) EnsembleOption {
	return func(e *Ensemble) { e.workers = k }
}

// TrialObservation is one Observe checkpoint of one ensemble trial.
type TrialObservation struct {
	// Cell is the trial's cell index in grid declaration order — the index
	// into EnsembleResult.Cells (protocols outermost, then topologies,
	// clocks, points, adversaries).
	Cell int
	// Seed is the trial's seed index within the cell.
	Seed int
	// Snapshot is the population snapshot at the checkpoint.
	Snapshot Snapshot
}

// ObserveTrials streams every trial's Observe checkpoints during Run: fn
// receives a TrialObservation every cadence interactions of every trial
// (plus the final state of each run, per Observe's contract). Trials run
// concurrently across the worker pool, so fn must be safe for concurrent
// use; checkpoints of one trial arrive in order, but checkpoints of
// different trials interleave arbitrarily.
//
// Observation is inert on agent-backend trials under the discrete clock —
// their results are bit-identical with and without it. Species-backend and
// continuous-clock trials step in chunks whose boundaries the observation
// cadence shifts (geometric silent-skips, τ-leaps and bulk time draws are
// truncated at chunk ends), so attaching an observer there can perturb
// their sampled randomness; callers that cache or compare results across
// observed and unobserved runs (cmd/sppd) must restrict observation to the
// inert combination.
func ObserveTrials(cadence uint64, fn func(TrialObservation)) EnsembleOption {
	return func(e *Ensemble) {
		if fn != nil {
			e.obsEvery = cadence
			e.obsFn = fn
		}
	}
}

// NewEnsemble validates the grid and returns an Ensemble ready to Run.
func NewEnsemble(g Grid, opts ...EnsembleOption) (*Ensemble, error) {
	if len(g.Points) == 0 {
		return nil, fmt.Errorf("sspp: ensemble grid has no points")
	}
	protos := g.Protocols
	if len(protos) == 0 {
		protos = []string{""}
	}
	topos := g.Topologies
	if len(topos) == 0 {
		topos = []Topology{Complete()}
	}
	// Probe-materialize every non-complete topology at every point, at the
	// exact protocol seed each trial will use — the random families draw
	// their graph from that seed, so an unbuildable combination (odd-degree
	// random-regular on an odd population, an Erdős–Rényi draw with no
	// edges at one trial's seed) fails the grid up front instead of being
	// silently aggregated as a failure to stabilize.
	if seeds := gridSeeds(g.Seeds); seeds > 0 {
		streams := deriveSeedStreams(g.BaseSeed, seeds)
		for _, top := range topos {
			if top.IsComplete() {
				continue
			}
			for _, pt := range g.Points {
				for s, st := range streams {
					gr, err := top.materialize(pt.N, st.protoSeed)
					if err != nil {
						return nil, fmt.Errorf("sspp: ensemble point (n=%d), seed %d: %w", pt.N, s, err)
					}
					// Stabilization is global: on a disconnected graph every
					// trial would burn its full budget and be aggregated as
					// a failure to stabilize, so reject the draw instead.
					if !gr.Connected() {
						return nil, fmt.Errorf("sspp: ensemble point (n=%d), seed %d: topology %q draws a "+
							"disconnected graph — no protocol can stabilize across components (raise the "+
							"density, or probe single systems via System.TopologyConnected)",
							pt.N, s, top.Name())
					}
				}
			}
		}
	}
	// The workload's static capability footprint gates grid validation: fault
	// phases need injectable protocols, churn phases churnable ones on the
	// complete topology, and the whole mode needs agent-backend trials.
	wlFaults, wlChurn := false, false
	if g.Workload != nil {
		if g.TransientK > 0 {
			return nil, fmt.Errorf("sspp: ensemble grid sets both Workload and TransientK — express the burst as a workload phase (TransientBurst)")
		}
		wlFaults, wlChurn = g.Workload.uses()
		if wlChurn {
			for _, top := range topos {
				if !top.IsComplete() {
					return nil, fmt.Errorf("sspp: the workload's churn phases require the complete topology; topology %q does not support them (see the capability table, DESIGN.md §10)", top.Name())
				}
			}
		}
	}
	for _, name := range protos {
		spec, err := specFor(name)
		if err != nil {
			return nil, err
		}
		for _, pt := range g.Points {
			cfg := Config{Protocol: name, N: pt.N, R: pt.R, Tau: g.Tau,
				SyntheticCoins: g.SyntheticCoins}
			if err := spec.validate(cfg); err != nil {
				return nil, fmt.Errorf("sspp: ensemble point (n=%d, r=%d) for protocol %q: %w",
					pt.N, pt.R, spec.name, err)
			}
		}
		if g.TransientK > 0 {
			if _, ok := sim.AsInjectable(spec.zero); !ok {
				return nil, fmt.Errorf("sspp: TransientK requires the injectable capability, which protocol %q lacks", spec.name)
			}
		}
		if wlFaults {
			if _, ok := sim.AsInjectable(spec.zero); !ok {
				return nil, fmt.Errorf("sspp: the workload's fault phases require the injectable capability, which protocol %q lacks (see the capability table, DESIGN.md §9)", spec.name)
			}
		}
		if wlChurn {
			if _, ok := sim.AsChurnable(spec.zero); !ok {
				return nil, fmt.Errorf("sspp: the workload's churn phases require the churnable capability, which protocol %q lacks (see the capability table, DESIGN.md §10)", spec.name)
			}
		}
		// speciesTrials reports whether any of this protocol's trials will
		// run on the species backend, where agent-identity surfaces
		// (injection, transient faults) do not exist. Resolution is
		// delegated per (topology, point) to resolveBackend — the same
		// function every trial uses — so grid validation can never diverge
		// from what the trials actually do: a grid never silently skips its
		// fault model at large n, and a species resolution under a
		// non-complete topology is rejected here with the capability-table
		// error.
		speciesTrials := false
		for _, top := range topos {
			for _, pt := range g.Points {
				backend, err := resolveBackend(Config{Backend: g.Backend, N: pt.N, Topology: top}, spec)
				if err != nil {
					return nil, err
				}
				if backend == BackendSpecies {
					speciesTrials = true
				}
			}
		}
		if speciesTrials {
			if g.Workload != nil {
				return nil, fmt.Errorf("sspp: ensemble workloads require the agent backend (protocol %q would run trials on the species backend)", spec.name)
			}
			if g.TransientK > 0 {
				return nil, fmt.Errorf("sspp: the species backend does not support transient faults (no agent identities; protocol %q would run on it)", spec.name)
			}
			for _, a := range g.Adversaries {
				if a != "" {
					return nil, fmt.Errorf("sspp: the species backend does not support adversarial starts (class %q; protocol %q would run on it)", a, spec.name)
				}
			}
		}
	}
	for _, c := range g.Clocks {
		if _, err := resolveClock(c); err != nil {
			return nil, err
		}
	}
	known := make(map[Adversary]bool)
	for _, c := range AdversaryClasses() {
		known[c] = true
	}
	for _, a := range g.Adversaries {
		if a != "" && !known[a] {
			return nil, fmt.Errorf("sspp: ensemble grid names unknown adversary class %q", a)
		}
	}
	if g.Seeds < 0 {
		return nil, fmt.Errorf("sspp: ensemble grid has negative seed count %d", g.Seeds)
	}
	g.Seeds = gridSeeds(g.Seeds)
	if g.TransientK < 0 {
		return nil, fmt.Errorf("sspp: ensemble grid has negative transient burst size %d", g.TransientK)
	}
	e := &Ensemble{grid: g}
	for _, o := range opts {
		o(e)
	}
	return e, nil
}

// Distribution summarizes the per-seed samples of one cell measurement
// (mean/median/quantiles via internal/stats). N is the sample count; the
// zero Distribution means no successful samples.
type Distribution struct {
	N      int     `json:"count"`
	Mean   float64 `json:"mean"`
	Median float64 `json:"median"`
	P10    float64 `json:"p10"`
	P90    float64 `json:"p90"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	CI95   float64 `json:"ci95"`
}

// summarize converts a sample slice into a Distribution.
func summarize(xs []float64) Distribution {
	if len(xs) == 0 {
		return Distribution{}
	}
	s := stats.Summarize(xs)
	return Distribution{
		N: s.N, Mean: s.Mean, Median: s.Median, P10: s.P10, P90: s.P90,
		Min: s.Min, Max: s.Max, CI95: s.CI95,
	}
}

// Cell is the aggregated outcome of one grid cell (a Protocol × Point ×
// Adversary triple): stabilization-arrival statistics over the cell's
// seeds.
type Cell struct {
	// Protocol is the registry protocol name ("" when the grid did not
	// cross protocols, i.e. the default ElectLeader_r).
	Protocol string `json:"protocol,omitempty"`
	// Topology is the interaction-topology name ("" when the grid did not
	// cross topologies, i.e. the complete graph of the paper's model).
	Topology string `json:"topology,omitempty"`
	// Clock is the simulation-clock name ("" when the grid did not cross
	// clocks, i.e. the discrete interaction-counting clock).
	Clock string `json:"clock,omitempty"`
	// Point is the (n, r) parameter point.
	Point Point `json:"point"`
	// Adversary is the starting-configuration class ("" for a clean start).
	Adversary Adversary `json:"adversary,omitempty"`
	// Seeds is the number of trials run for the cell.
	Seeds int `json:"seeds"`
	// Recovered counts trials that stabilized within budget (and, with
	// TransientK, re-stabilized after the fault burst).
	Recovered int `json:"recovered"`
	// Failures counts trials that did not (including unrealizable
	// injections at this point).
	Failures int `json:"failures"`
	// Interactions summarizes stabilization arrival times over recovered
	// trials, in interactions (with TransientK: post-fault recovery times).
	Interactions Distribution `json:"interactions"`
	// ParallelTime is Interactions scaled by 1/n (the paper's time unit).
	ParallelTime Distribution `json:"parallel_time"`
	// HardResets summarizes full resets per recovered trial (with
	// TransientK: resets after the fault burst only).
	HardResets Distribution `json:"hard_resets"`
	// Samples holds the raw stabilization arrival times (interactions) of
	// the recovered trials, in seed order.
	Samples []float64 `json:"samples"`
	// Events aggregates per-event recovery across the cell's seeds when the
	// grid carried a Workload: one entry per scheduled event, in firing
	// order (omitted otherwise, keeping pre-workload exports byte-identical).
	Events []EventCell `json:"events,omitempty"`
}

// EventCell is the per-seed aggregation of one scheduled workload event
// within a cell: how many trials reached it, how many were observed to
// recover afterwards, and the distribution of recovery times.
type EventCell struct {
	// At is the interaction count the event was scheduled for.
	At uint64 `json:"at"`
	// Kind is the event kind's wire name (transient, inject, join, leave).
	Kind string `json:"kind"`
	// K is the burst size of transient events.
	K int `json:"k,omitempty"`
	// Class is the adversary class of inject and join events.
	Class string `json:"class,omitempty"`
	// Fired counts trials that reached the event before stopping.
	Fired int `json:"fired"`
	// Recovered counts trials whose stop condition was observed to hold at
	// some poll after the event fired.
	Recovered int `json:"recovered"`
	// Recovery summarizes RecoveredAt − At over recovered trials, in
	// interactions (resolution: the polling cadence).
	Recovery Distribution `json:"recovery"`
}

// EnsembleResult is the aggregated outcome of an Ensemble run. Its JSON
// encoding is byte-identical for every worker count.
type EnsembleResult struct {
	SchemaVersion int `json:"schema_version"`
	// Protocols echoes the grid's protocol list (omitted when the grid did
	// not cross protocols).
	Protocols []string `json:"protocols,omitempty"`
	// Topologies echoes the grid's topology names (omitted when the grid
	// did not cross topologies, keeping pre-topology exports byte-identical).
	Topologies []string `json:"topologies,omitempty"`
	// Clocks echoes the grid's clock names (omitted when the grid did not
	// cross clocks, keeping pre-clock exports byte-identical).
	Clocks []string `json:"clocks,omitempty"`
	// Backend echoes the grid's backend (omitted for the default agent
	// backend, keeping pre-backend exports byte-identical).
	Backend  string `json:"backend,omitempty"`
	Seeds    int    `json:"seeds"`
	BaseSeed uint64 `json:"base_seed"`
	Cells    []Cell `json:"cells"`
}

// Cell returns the first cell for the given point and adversary class
// (across all protocols when the grid crossed several; see ProtocolCell).
func (r *EnsembleResult) Cell(p Point, a Adversary) (Cell, bool) {
	for _, c := range r.Cells {
		if c.Point == p && c.Adversary == a {
			return c, true
		}
	}
	return Cell{}, false
}

// ProtocolCell returns the cell for the given protocol, point and adversary
// class ("" matches the default single-protocol grid).
func (r *EnsembleResult) ProtocolCell(protocol string, p Point, a Adversary) (Cell, bool) {
	for _, c := range r.Cells {
		if c.Protocol == protocol && c.Point == p && c.Adversary == a {
			return c, true
		}
	}
	return Cell{}, false
}

// TopologyCell returns the cell for the given protocol, topology name,
// point and adversary class ("" matches the respective un-crossed axis).
func (r *EnsembleResult) TopologyCell(protocol, topology string, p Point, a Adversary) (Cell, bool) {
	for _, c := range r.Cells {
		if c.Protocol == protocol && c.Topology == topology && c.Point == p && c.Adversary == a {
			return c, true
		}
	}
	return Cell{}, false
}

// ClockCell returns the cell for the given protocol, topology name, clock
// name, point and adversary class ("" matches the respective un-crossed
// axis).
func (r *EnsembleResult) ClockCell(protocol, topology, clock string, p Point, a Adversary) (Cell, bool) {
	for _, c := range r.Cells {
		if c.Protocol == protocol && c.Topology == topology && c.Clock == clock && c.Point == p && c.Adversary == a {
			return c, true
		}
	}
	return Cell{}, false
}

// JSON renders the result as indented JSON.
func (r *EnsembleResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// WriteJSON writes the indented JSON rendering to w.
func (r *EnsembleResult) WriteJSON(w io.Writer) error {
	b, err := r.JSON()
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// CompareRow is one (point, adversary) row of a CompareResult, holding the
// per-protocol cells side by side.
type CompareRow struct {
	// Topology is the interaction-topology name ("" when the grid did not
	// cross topologies).
	Topology string `json:"topology,omitempty"`
	// Clock is the simulation-clock name ("" when the grid did not cross
	// clocks).
	Clock string `json:"clock,omitempty"`
	// Point is the (n, r) parameter point.
	Point Point `json:"point"`
	// Adversary is the starting-configuration class ("" for clean starts).
	Adversary Adversary `json:"adversary,omitempty"`
	// Cells holds one cell per protocol, in CompareResult.Protocols order.
	Cells []Cell `json:"cells"`
}

// CompareResult pivots an EnsembleResult for cross-protocol comparison: one
// row per (point, adversary) with the protocols side by side. Like the
// EnsembleResult it derives from, its JSON encoding is byte-identical for
// every worker count.
type CompareResult struct {
	SchemaVersion int          `json:"schema_version"`
	Protocols     []string     `json:"protocols"`
	Topologies    []string     `json:"topologies,omitempty"`
	Clocks        []string     `json:"clocks,omitempty"`
	Backend       string       `json:"backend,omitempty"`
	Seeds         int          `json:"seeds"`
	BaseSeed      uint64       `json:"base_seed"`
	Rows          []CompareRow `json:"rows"`
}

// Compare pivots the result by protocol: every (topology, point, adversary)
// triple becomes one row holding each protocol's cell. Grids that did not
// cross protocols pivot to single-cell rows labelled "electleader".
func (r *EnsembleResult) Compare() *CompareResult {
	protos := r.Protocols
	if len(protos) == 0 {
		protos = []string{ProtocolElectLeader}
	}
	out := &CompareResult{
		SchemaVersion: CompareSchemaVersion,
		Protocols:     protos,
		Topologies:    r.Topologies,
		Clocks:        r.Clocks,
		Backend:       r.Backend,
		Seeds:         r.Seeds,
		BaseSeed:      r.BaseSeed,
	}
	if len(r.Cells)%len(protos) != 0 {
		return out
	}
	perProto := len(r.Cells) / len(protos)
	for j := 0; j < perProto; j++ {
		row := CompareRow{
			Topology:  r.Cells[j].Topology,
			Clock:     r.Cells[j].Clock,
			Point:     r.Cells[j].Point,
			Adversary: r.Cells[j].Adversary,
			Cells:     make([]Cell, 0, len(protos)),
		}
		for pi := range protos {
			cell := r.Cells[pi*perProto+j]
			if cell.Protocol == "" {
				cell.Protocol = protos[pi]
			}
			row.Cells = append(row.Cells, cell)
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// JSON renders the comparison as indented JSON.
func (r *CompareResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// WriteJSON writes the indented JSON rendering to w.
func (r *CompareResult) WriteJSON(w io.Writer) error {
	b, err := r.JSON()
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// trialOutcome is the raw result of one (cell, seed) trial.
type trialOutcome struct {
	ok   bool
	took uint64
	hard uint64
	// events holds the per-event outcomes of Workload trials (nil otherwise);
	// the schedule is identical across a cell's seeds, so outcomes align by
	// index during aggregation.
	events []EventOutcome
}

// seedStreams holds the pre-derived randomness of one seed index: the
// protocol seed plus the initial states of the adversary and scheduler
// streams. Every cell uses the same per-seed derivation — stream s is the
// s-th sequential Fork of rng.New(BaseSeed), then protoSeed is drawn and
// the two sub-streams forked, exactly as the historical experiment harness
// did — so cell results are independent of the grid layout and the worker
// count. Trials copy the PRNG states by value, never sharing instances.
type seedStreams struct {
	protoSeed  uint64
	adv, sched rng.PRNG
}

// deriveSeedStreams pre-derives the per-seed randomness once, O(seeds).
func deriveSeedStreams(baseSeed uint64, seeds int) []seedStreams {
	root := rng.New(baseSeed)
	out := make([]seedStreams, seeds)
	for s := range out {
		src := root.Fork()
		out[s].protoSeed = src.Uint64()
		out[s].adv = *src.Fork()
		out[s].sched = *src.Fork()
	}
	return out
}

// gridAxes is the resolved axis layout of a grid: every axis slice with its
// empty-means-default resolution applied, plus the strides of the cell-index
// arithmetic shared by Run, cell aggregation and TrialRecording.
type gridAxes struct {
	protos     []string
	topos      []Topology
	topoNames  []string // "" when the grid did not cross topologies
	clocks     []string
	clockNames []string // "" when the grid did not cross clocks
	advs       []Adversary
	perClock   int // cells per clock value: |points| × |advs|
	perTopo    int // cells per topology value: |clocks| × perClock
	perProto   int // cells per protocol value: |topos| × perTopo
}

// cells returns the total cell count of the grid.
func (ax *gridAxes) cells() int { return len(ax.protos) * ax.perProto }

// axes resolves the grid's axis slices and strides.
func (g *Grid) axes() gridAxes {
	ax := gridAxes{
		protos:     g.Protocols,
		topos:      g.Topologies,
		topoNames:  []string{""},
		clocks:     g.Clocks,
		clockNames: []string{""},
		advs:       g.Adversaries,
	}
	if len(ax.protos) == 0 {
		ax.protos = []string{""}
	}
	if len(g.Topologies) > 0 {
		ax.topoNames = make([]string, len(ax.topos))
		for i, top := range ax.topos {
			ax.topoNames[i] = top.Name()
		}
	} else {
		ax.topos = []Topology{Complete()}
	}
	if len(g.Clocks) > 0 {
		ax.clockNames = ax.clocks
	} else {
		ax.clocks = []string{""}
	}
	if len(ax.advs) == 0 {
		ax.advs = []Adversary{""}
	}
	ax.perClock = len(g.Points) * len(ax.advs)
	ax.perTopo = len(ax.clocks) * ax.perClock
	ax.perProto = len(ax.topos) * ax.perTopo
	return ax
}

// at resolves cell index ci to its grid coordinates (declaration order).
func (ax *gridAxes) at(g *Grid, ci int) (proto, clock string, top Topology, pt Point, class Adversary) {
	proto = ax.protos[ci/ax.perProto]
	top = ax.topos[ci%ax.perProto/ax.perTopo]
	clock = ax.clocks[ci%ax.perTopo/ax.perClock]
	pt = g.Points[ci%ax.perClock/len(ax.advs)]
	class = ax.advs[ci%len(ax.advs)]
	return
}

// runTrial executes one (protocol, topology, point, adversary, seed) trial:
// build, optionally inject, run to the stabilization condition — and, in
// TransientK mode, corrupt and run again, reporting the recovery. ci and s
// identify the trial for the ObserveTrials hook.
func (e *Ensemble) runTrial(ci, s int, proto, clock string, top Topology, pt Point, class Adversary, st seedStreams) trialOutcome {
	g := e.grid
	advSrc, schedSrc := st.adv, st.sched
	sys, err := New(Config{Protocol: proto, N: pt.N, R: pt.R, Seed: st.protoSeed,
		SyntheticCoins: g.SyntheticCoins, Tau: g.Tau, Backend: g.Backend, Topology: top,
		Clock: clock})
	if err != nil {
		return trialOutcome{}
	}
	if class != "" {
		if err := sys.injectWith(class, &advSrc); err != nil {
			return trialOutcome{}
		}
	}
	opts := []RunOption{Until(SafeSet), WithScheduler(&schedSrc),
		MaxInteractions(g.MaxInteractions)}
	if g.Confirm > 0 {
		opts = append(opts, Confirm(g.Confirm))
	}
	if e.obsFn != nil {
		opts = append(opts, Observe(e.obsEvery, func(snap Snapshot) {
			e.obsFn(TrialObservation{Cell: ci, Seed: s, Snapshot: snap})
		}))
	}
	res := sys.Run(opts...)
	if !res.Stabilized {
		return trialOutcome{}
	}
	if g.Workload != nil {
		// Recovery shape generalized: the stabilized population absorbs the
		// whole schedule, and the per-event outcomes ride along whether or
		// not the final re-stabilization landed within budget.
		hardBefore := sys.HardResets()
		res = sys.Run(append(opts, WithWorkload(g.Workload))...)
		out := trialOutcome{events: res.EventOutcomes()}
		if res.Stabilized {
			out.ok = true
			out.took = res.StabilizedAt
			out.hard = sys.HardResets() - hardBefore
		}
		return out
	}
	if g.TransientK > 0 {
		hardBefore := sys.HardResets()
		if _, err := sys.injectTransientWith(g.TransientK, &advSrc); err != nil {
			return trialOutcome{}
		}
		res = sys.Run(opts...)
		if !res.Stabilized {
			return trialOutcome{}
		}
		return trialOutcome{ok: true, took: res.StabilizedAt,
			hard: sys.HardResets() - hardBefore}
	}
	return trialOutcome{ok: true, took: res.StabilizedAt, hard: sys.HardResets()}
}

// Run executes every trial of the grid across the worker pool and
// aggregates per cell, in grid declaration order (protocols outermost,
// then topologies, then clocks, then points, then adversaries).
func (e *Ensemble) Run() *EnsembleResult {
	g := e.grid
	ax := g.axes()
	cells := ax.cells()
	jobs := cells * g.Seeds
	streams := deriveSeedStreams(g.BaseSeed, g.Seeds)

	outs := trials.Run(e.workers, jobs, g.BaseSeed, func(j int, _ *rng.PRNG) trialOutcome {
		ci, s := j/g.Seeds, j%g.Seeds
		proto, clock, top, pt, class := ax.at(&g, ci)
		return e.runTrial(ci, s, proto, clock, top, pt, class, streams[s])
	})

	out := &EnsembleResult{
		SchemaVersion: EnsembleSchemaVersion,
		Protocols:     g.Protocols,
		Backend:       g.Backend,
		Seeds:         g.Seeds,
		BaseSeed:      g.BaseSeed,
		Cells:         make([]Cell, 0, cells),
	}
	if len(g.Topologies) > 0 {
		out.Topologies = ax.topoNames
	}
	if len(g.Clocks) > 0 {
		out.Clocks = ax.clockNames
	}
	for ci := 0; ci < cells; ci++ {
		cell := Cell{
			Protocol:  ax.protos[ci/ax.perProto],
			Topology:  ax.topoNames[ci%ax.perProto/ax.perTopo],
			Clock:     ax.clockNames[ci%ax.perTopo/ax.perClock],
			Point:     g.Points[ci%ax.perClock/len(ax.advs)],
			Adversary: ax.advs[ci%len(ax.advs)],
			Seeds:     g.Seeds,
			Samples:   []float64{},
		}
		var par, hard []float64
		for s := 0; s < g.Seeds; s++ {
			o := outs[ci*g.Seeds+s]
			if !o.ok {
				cell.Failures++
				continue
			}
			cell.Recovered++
			cell.Samples = append(cell.Samples, float64(o.took))
			par = append(par, float64(o.took)/float64(cell.Point.N))
			hard = append(hard, float64(o.hard))
		}
		cell.Interactions = summarize(cell.Samples)
		cell.ParallelTime = summarize(par)
		cell.HardResets = summarize(hard)
		if g.Workload != nil {
			// Per-event recovery aggregation: the schedule is identical
			// across a cell's seeds (trials that failed before the workload
			// ran contribute no outcomes), so outcomes align by index.
			var evCells []EventCell
			var recSamples [][]float64
			for s := 0; s < g.Seeds; s++ {
				for i, eo := range outs[ci*g.Seeds+s].events {
					if i == len(evCells) {
						evCells = append(evCells, EventCell{At: eo.At, Kind: eo.Kind, K: eo.K, Class: eo.Class})
						recSamples = append(recSamples, nil)
					}
					if eo.Fired {
						evCells[i].Fired++
					}
					if eo.Recovered {
						evCells[i].Recovered++
						recSamples[i] = append(recSamples[i], float64(eo.RecoveredAt-eo.At))
					}
				}
			}
			for i := range evCells {
				evCells[i].Recovery = summarize(recSamples[i])
			}
			cell.Events = evCells
		}
		out.Cells = append(out.Cells, cell)
	}
	return out
}

// TrialRecording re-executes the (cell, seed) trial identified by ci (the
// index into EnsembleResult.Cells) and s (the seed index) with a recording
// scheduler, returning the captured schedule and the trial's derived
// protocol seed. The pair (recording, protoSeed) fully determines the trial
// through the public API: rebuild the trial's Config with Seed set to
// protoSeed, run it under WithScheduler(rec.Replay()) and the same budget,
// and the run is bit-identical to the ensemble's — the replay surface of
// cmd/sppd.
//
// Supported for clean-start cells (no adversary class, no TransientK, no
// Workload) on the complete topology and the agent backend: those are
// exactly the trials whose outcome is a pure function of (protoSeed,
// schedule). Cells with adversarial starts or faults additionally consume a
// private adversary stream that the public API cannot re-derive, species
// cells consume scheduler randomness in chunk-shaped draws rather than
// pairs, and non-complete topologies sample edge indices through a
// graph-bound scheduler; all three return an error.
func (e *Ensemble) TrialRecording(ci, s int) (*Recording, uint64, error) {
	g := e.grid
	ax := g.axes()
	if ci < 0 || ci >= ax.cells() {
		return nil, 0, fmt.Errorf("sspp: cell index %d out of range [0, %d)", ci, ax.cells())
	}
	seeds := gridSeeds(g.Seeds)
	if s < 0 || s >= seeds {
		return nil, 0, fmt.Errorf("sspp: seed index %d out of range [0, %d)", s, seeds)
	}
	proto, clock, top, pt, class := ax.at(&g, ci)
	if class != "" {
		return nil, 0, fmt.Errorf("sspp: trial recording requires a clean start (cell %d starts from adversary class %q, drawn from a stream the public replay cannot re-derive)", ci, class)
	}
	if g.TransientK > 0 || g.Workload != nil {
		return nil, 0, fmt.Errorf("sspp: trial recording does not cover TransientK or Workload grids (their fault streams are not part of the schedule)")
	}
	if !top.IsComplete() {
		return nil, 0, fmt.Errorf("sspp: trial recording requires the complete topology (cell %d uses %q; capture edge-indexed schedules with NewRecorder directly)", ci, top.Name())
	}
	spec, err := specFor(proto)
	if err != nil {
		return nil, 0, err
	}
	backend, err := resolveBackend(Config{Backend: g.Backend, N: pt.N, Topology: top}, spec)
	if err != nil {
		return nil, 0, err
	}
	if backend != BackendAgent {
		return nil, 0, fmt.Errorf("sspp: trial recording requires the agent backend (cell %d resolves to %q, which consumes scheduler randomness in bulk draws, not pairs)", ci, backend)
	}
	st := deriveSeedStreams(g.BaseSeed, seeds)[s]
	schedSrc := st.sched
	rec := NewRecorder(&schedSrc)
	sys, err := New(Config{Protocol: proto, N: pt.N, R: pt.R, Seed: st.protoSeed,
		SyntheticCoins: g.SyntheticCoins, Tau: g.Tau, Backend: g.Backend, Topology: top,
		Clock: clock})
	if err != nil {
		return nil, 0, err
	}
	opts := []RunOption{Until(SafeSet), WithScheduler(rec),
		MaxInteractions(g.MaxInteractions)}
	if g.Confirm > 0 {
		opts = append(opts, Confirm(g.Confirm))
	}
	res := sys.Run(opts...)
	if res.Err != nil {
		return nil, 0, res.Err
	}
	return rec.Recording(), st.protoSeed, nil
}
