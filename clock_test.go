// clock_test.go exercises the continuous-time engine through the public
// API: Config.Clock resolution, the discrete-clock bit-identity contract,
// native parallel time in Result/Snapshot, the MaxParallelTime stop
// predicate, churn-consistent parallel time across clocks, and the
// KS/Mann-Whitney acceptance gate for τ-leaped versus exact stabilization
// distributions on the species backend.

package sspp

import (
	"math"
	"testing"

	"sspp/internal/rng"
	"sspp/internal/stats/statcheck"
	"sspp/internal/trials"
)

func TestClockResolution(t *testing.T) {
	for _, clock := range []string{"", ClockDiscrete, ClockContinuous, ClockContinuousExact} {
		if _, err := New(Config{Protocol: ProtocolCIW, N: 32, Seed: 1, Clock: clock}); err != nil {
			t.Fatalf("clock %q rejected: %v", clock, err)
		}
	}
	if _, err := New(Config{Protocol: ProtocolCIW, N: 32, Seed: 1, Clock: "poisson"}); err == nil {
		t.Fatal("unknown clock accepted")
	}
}

// TestContinuousExactPreservesDiscreteSchedule pins the decorrelation of
// the holding-time stream: equipping a run with the continuous-exact clock
// must not perturb its jump chain — the same seeds stabilize at the same
// interaction count on both clocks, on both backends — while the reported
// ParallelTime switches from the derived t/n to the native Poisson event
// time of the same order of magnitude.
func TestContinuousExactPreservesDiscreteSchedule(t *testing.T) {
	for _, backend := range []string{BackendAgent, BackendSpecies} {
		run := func(clock string) Result {
			sys, err := New(Config{Protocol: ProtocolCIW, N: 256, Seed: 9, Backend: backend, Clock: clock})
			if err != nil {
				t.Fatal(err)
			}
			return sys.Run(SchedulerSeed(10))
		}
		disc := run(ClockDiscrete)
		cont := run(ClockContinuousExact)
		if !disc.Stabilized || !cont.Stabilized {
			t.Fatalf("%s: stabilized %v/%v", backend, disc.Stabilized, cont.Stabilized)
		}
		if disc.Interactions != cont.Interactions || disc.StabilizedAt != cont.StabilizedAt {
			t.Fatalf("%s: continuous-exact clock perturbed the jump chain: %d/%d vs %d/%d interactions",
				backend, disc.Interactions, disc.StabilizedAt, cont.Interactions, cont.StabilizedAt)
		}
		derived := float64(disc.StabilizedAt) / 256
		if disc.ParallelTime != derived {
			t.Fatalf("%s: discrete ParallelTime %v, want %v", backend, disc.ParallelTime, derived)
		}
		// The native time is Gamma(t)·2/n-distributed around 2t/n... for the
		// ordered-pair clock at rate n/2; at t ≈ 10⁴ the fluctuation is ~1%,
		// so a factor-2 corridor around the derived mean never flakes.
		if cont.ParallelTime == derived {
			t.Fatalf("%s: continuous ParallelTime equals the derived value exactly — not a native clock", backend)
		}
		if ratio := cont.ParallelTime / (2 * derived); ratio < 0.5 || ratio > 2 {
			t.Fatalf("%s: native ParallelTime %v far from the Poisson scale %v", backend, cont.ParallelTime, 2*derived)
		}
	}
}

// TestMaxParallelTimeCondition runs a non-stabilizing predicate purely on
// the clock: the run must stop within one poll cadence of the requested
// parallel time on both clocks.
func TestMaxParallelTimeCondition(t *testing.T) {
	const n = 128
	for _, clock := range []string{ClockDiscrete, ClockContinuousExact, ClockContinuous} {
		sys, err := New(Config{Protocol: ProtocolLooseLE, N: n, Seed: 3, Clock: clock})
		if err != nil {
			t.Fatal(err)
		}
		const target = 8.0
		res := sys.Run(Until(MaxParallelTime(target)), SchedulerSeed(4), MaxInteractions(1_000_000))
		if !res.Stabilized {
			t.Fatalf("clock %s: MaxParallelTime(%v) never held within budget (t=%d)", clock, target, res.Interactions)
		}
		got := sys.ParallelTime()
		if got < target {
			t.Fatalf("clock %s: stopped at parallel time %v before the target %v", clock, got, target)
		}
		// One poll cadence is n/2+1 interactions ≈ 0.5 parallel-time units;
		// the continuous clocks add Poisson jitter on top, still ≪ 2 units.
		if got > target+2 {
			t.Fatalf("clock %s: overshot to %v, target %v", clock, got, target)
		}
	}
}

// TestObserveCarriesParallelTime: snapshots expose a monotone ParallelTime
// on every clock, and a positive one as soon as interactions have run.
func TestObserveCarriesParallelTime(t *testing.T) {
	for _, clock := range []string{ClockDiscrete, ClockContinuous} {
		sys, err := New(Config{Protocol: ProtocolCIW, N: 64, Seed: 5, Backend: BackendSpecies, Clock: clock})
		if err != nil {
			t.Fatal(err)
		}
		last := -1.0
		monotone := true
		sys.Run(SchedulerSeed(6), Observe(64, func(s Snapshot) {
			if s.ParallelTime < last {
				monotone = false
			}
			last = s.ParallelTime
		}))
		if !monotone {
			t.Fatalf("clock %s: ParallelTime not monotone across snapshots", clock)
		}
		if last <= 0 {
			t.Fatalf("clock %s: final snapshot reports no parallel time", clock)
		}
	}
}

// TestChurnStormParallelTimeConsistency is the anchoring regression test: a
// Poisson replacement storm at n=10⁴ must report the same parallel time
// under the discrete and continuous clocks up to Poisson fluctuation. The
// replacement storm keeps n constant, so with the same scheduler stream the
// two runs execute the identical interaction sequence; at t = 2·10⁵ the
// continuous clock concentrates to ~0.2% around t/n.
func TestChurnStormParallelTimeConsistency(t *testing.T) {
	const (
		n      = 10_000
		budget = 200_000
	)
	run := func(clock string) (Result, float64) {
		sys, err := New(Config{Protocol: ProtocolCIW, N: n, Seed: 21, Clock: clock})
		if err != nil {
			t.Fatal(err)
		}
		res := sys.Run(
			SchedulerSeed(22),
			MaxInteractions(budget),
			WithWorkload(NewWorkload(ReplacementChurn(0, budget, 50, "", 23))),
		)
		return res, sys.ParallelTime()
	}
	resD, ptD := run(ClockDiscrete)
	resC, ptC := run(ClockContinuousExact)
	if resD.Err != nil || resC.Err != nil {
		t.Fatalf("storm runs failed: %v / %v", resD.Err, resC.Err)
	}
	if resD.Interactions != resC.Interactions {
		t.Fatalf("clocks executed different schedules: %d vs %d interactions", resD.Interactions, resC.Interactions)
	}
	// Replacement churn holds n constant, so the per-segment sum telescopes
	// back to Interactions/n — up to float accumulation across the ~10³
	// churn-delimited segments.
	if want := float64(resD.Interactions) / n; math.Abs(ptD-want) > 1e-9*want {
		t.Fatalf("discrete storm parallel time %v, want %v", ptD, want)
	}
	if rel := math.Abs(ptC-2*ptD) / (2 * ptD); rel > 0.05 {
		t.Fatalf("continuous storm parallel time %v deviates %.1f%% from the Poisson scale %v", ptC, 100*rel, 2*ptD)
	}
	// Both storms recovered: the events all fired and the population held.
	// Each replacement is a leave/join pair at one instant, and same-instant
	// replacements batch their leaves ahead of their joins, so N may dip a
	// few below n mid-batch — but never far, and never above.
	var leaves, joins int
	outcomes := resD.EventOutcomes()
	for _, eo := range outcomes {
		if !eo.Fired {
			t.Fatalf("discrete storm event at %d did not fire", eo.At)
		}
		switch eo.Kind {
		case "leave":
			leaves++
		case "join":
			joins++
		}
		if eo.N > n || eo.N < n-8 {
			t.Fatalf("replacement storm drifted the population to %d", eo.N)
		}
	}
	if leaves == 0 || leaves != joins {
		t.Fatalf("unbalanced replacement storm: %d leaves vs %d joins", leaves, joins)
	}
	if last := outcomes[len(outcomes)-1]; last.N != n {
		t.Fatalf("population ended the storm at %d", last.N)
	}
}

// tauLeapGateCase is one protocol row of the τ-leaping acceptance gate.
type tauLeapGateCase struct {
	protocol string
	baseSeed uint64
}

// collectClockSamples runs the protocol's trials on the species backend
// under the given clock and returns the stabilization times (interactions,
// correct output confirmed for 4n) in trial order — deterministic for every
// worker count, which the gate's byte-identity subtest pins.
func collectClockSamples(t *testing.T, protocol, clock string, n, trialCount int, baseSeed uint64, workers int) (samples []float64, failures int) {
	t.Helper()
	type outcome struct {
		took uint64
		ok   bool
	}
	outs := trials.Run(workers, trialCount, baseSeed, func(_ int, src *rng.PRNG) outcome {
		protoSeed := src.Uint64()
		schedSeed := src.Uint64()
		sys, err := New(Config{Protocol: protocol, N: n, Seed: protoSeed, Backend: BackendSpecies, Clock: clock})
		if err != nil {
			return outcome{}
		}
		res := sys.Run(
			Until(CorrectOutput),
			Confirm(uint64(4*n)),
			SchedulerSeed(schedSeed),
		)
		if res.Err != nil || !res.Stabilized {
			return outcome{}
		}
		return outcome{took: res.StabilizedAt, ok: true}
	})
	for _, o := range outs {
		if o.ok {
			samples = append(samples, float64(o.took))
		} else {
			failures++
		}
	}
	return samples, failures
}

// TestTauLeapStatisticalEquivalence is the τ-leaping acceptance gate: for
// every compactable registry protocol at n=512 on the species backend, the
// stabilization-time distribution under the τ-leaped continuous clock must
// be statistically indistinguishable (two-sample KS and Mann-Whitney, both
// p > 0.01) from the exact continuous clock at matched seeds. The exact arm
// deals the identical jump chain as the discrete clock, so this gates the
// leaping approximation itself.
func TestTauLeapStatisticalEquivalence(t *testing.T) {
	const n = 512
	trialCount := 200
	if testing.Short() {
		trialCount = 60
	}
	cases := []tauLeapGateCase{
		{protocol: ProtocolCIW, baseSeed: 7001},
		{protocol: ProtocolLooseLE, baseSeed: 7002},
		{protocol: ProtocolNameRank, baseSeed: 7003},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.protocol, func(t *testing.T) {
			t.Parallel()
			exact, exactFail := collectClockSamples(t, tc.protocol, ClockContinuousExact, n, trialCount, tc.baseSeed, 0)
			leaped, leapFail := collectClockSamples(t, tc.protocol, ClockContinuous, n, trialCount, tc.baseSeed, 0)
			if diff := exactFail - leapFail; diff < -2 || diff > 2 {
				t.Fatalf("failure counts diverge: exact %d, leaped %d", exactFail, leapFail)
			}
			if len(exact) < trialCount*9/10 || len(leaped) < trialCount*9/10 {
				t.Fatalf("too many failed trials: exact %d/%d, leaped %d/%d ok",
					len(exact), trialCount, len(leaped), trialCount)
			}
			eq := statcheck.CheckEquivalence(tc.protocol, exact, leaped, 0.01)
			t.Log(eq)
			if !eq.Passed {
				t.Fatalf("τ-leaping statistically distinguishable from exact: %v", eq)
			}
		})
	}
}

// TestTauLeapSamplesWorkerCountIndependent pins the determinism the gate
// rests on: the leaped sample vector is byte-identical for one worker and
// for a parallel pool.
func TestTauLeapSamplesWorkerCountIndependent(t *testing.T) {
	trialCount := 24
	if testing.Short() {
		trialCount = 8
	}
	seq, seqFail := collectClockSamples(t, ProtocolCIW, ClockContinuous, 256, trialCount, 55, 1)
	par, parFail := collectClockSamples(t, ProtocolCIW, ClockContinuous, 256, trialCount, 55, 4)
	if seqFail != parFail || len(seq) != len(par) {
		t.Fatalf("sample counts differ: %d/%d vs %d/%d", len(seq), seqFail, len(par), parFail)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("trial %d: %v sequential vs %v parallel", i, seq[i], par[i])
		}
	}
}

// TestContinuousClockOnTopologies: on a non-complete topology the
// next-reaction scheduler carries the clock — runs step, accrue parallel
// time at the global rate, and MaxParallelTime stops on it.
func TestContinuousClockOnTopologies(t *testing.T) {
	for _, top := range []Topology{Ring(), Torus2D()} {
		sys, err := New(Config{Protocol: ProtocolLooseLE, N: 64, Seed: 31, Topology: top, Clock: ClockContinuous})
		if err != nil {
			t.Fatal(err)
		}
		res := sys.Run(Until(MaxParallelTime(4)), SchedulerSeed(32), MaxInteractions(100_000))
		if !res.Stabilized {
			t.Fatalf("%s: MaxParallelTime never held (t=%d, pt=%v)", top.Name(), res.Interactions, sys.ParallelTime())
		}
		if pt := sys.ParallelTime(); pt < 4 || pt > 7 {
			t.Fatalf("%s: parallel time %v outside [4, 7]", top.Name(), pt)
		}
		if res.Interactions == 0 {
			t.Fatalf("%s: no interactions executed", top.Name())
		}
	}
}

// TestDiscreteStepParallelTime: the Step/StepSched entry points accrue
// derived parallel time under the discrete clock too.
func TestDiscreteStepParallelTime(t *testing.T) {
	sys, err := New(Config{Protocol: ProtocolCIW, N: 100, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	sys.Step(42, 250)
	if got := sys.ParallelTime(); got != 2.5 {
		t.Fatalf("ParallelTime %v after 250 interactions at n=100, want 2.5", got)
	}
	if snap := sys.Snapshot(); snap.ParallelTime != 2.5 {
		t.Fatalf("Snapshot.ParallelTime %v, want 2.5", snap.ParallelTime)
	}
}
