package baseline

import (
	"testing"
	"testing/quick"

	"sspp/internal/coin"
	"sspp/internal/rng"
	"sspp/internal/sim"
)

func TestCIWRule(t *testing.T) {
	c := NewCIWFromRanks([]int32{3, 3, 1})
	c.Interact(0, 1)
	if c.Rank(0) != 3 || c.Rank(1) != 1 {
		t.Fatalf("rule broken: %d/%d, want 3/1 (wait: 3 mod 3 + 1 = 1)", c.Rank(0), c.Rank(1))
	}
	c.Interact(0, 2) // ranks 3 and 1: no-op
	if c.Rank(0) != 3 || c.Rank(2) != 1 {
		t.Fatal("distinct ranks must not interact")
	}
}

func TestCIWWraparound(t *testing.T) {
	c := NewCIWFromRanks([]int32{3, 3, 2})
	c.Interact(0, 1)
	if c.Rank(1) != 1 {
		t.Fatalf("rank n must wrap to 1, got %d", c.Rank(1))
	}
}

func TestCIWClamping(t *testing.T) {
	c := NewCIWFromRanks([]int32{-5, 99, 2})
	if c.Rank(0) != 1 || c.Rank(1) != 3 {
		t.Fatalf("clamping failed: %d/%d", c.Rank(0), c.Rank(1))
	}
}

func TestCIWStabilizes(t *testing.T) {
	const n = 32
	for seed := uint64(0); seed < 5; seed++ {
		c := NewCIW(n)
		res := sim.Run(c, rng.New(seed), sim.Options{
			MaxInteractions:    uint64(500 * n * n),
			StopAfterStableFor: uint64(10 * n * n), // silent: ranks cannot regress once a permutation
		})
		if !res.Stabilized {
			t.Fatalf("seed %d: CIW did not stabilize", seed)
		}
		if !c.CorrectRanking() && c.Correct() {
			// Correct() (one leader) can momentarily hold without a full
			// permutation; after the confirmation window we expect both.
			t.Logf("seed %d: leader unique but ranking incomplete (allowed mid-run)", seed)
		}
	}
}

// TestCIWSilentOnPermutation: a permutation is a terminal (silent)
// configuration.
func TestCIWSilentOnPermutation(t *testing.T) {
	c := NewCIWFromRanks([]int32{2, 4, 1, 3})
	r := rng.New(7)
	for i := 0; i < 10_000; i++ {
		a, b := r.Pair(4)
		c.Interact(a, b)
	}
	want := []int32{2, 4, 1, 3}
	for i, w := range want {
		if c.Rank(i) != w {
			t.Fatalf("silent config changed: agent %d %d -> %d", i, w, c.Rank(i))
		}
	}
}

// TestCIWRanksAlwaysInRangeProperty: the rule never leaves [1, n].
func TestCIWRanksAlwaysInRangeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + int(r.Intn(13))
		ranks := make([]int32, n)
		for i := range ranks {
			ranks[i] = int32(1 + r.Intn(n))
		}
		c := NewCIWFromRanks(ranks)
		for i := 0; i < 500; i++ {
			a, b := r.Pair(n)
			c.Interact(a, b)
			if c.Rank(a) < 1 || int(c.Rank(a)) > n || c.Rank(b) < 1 || int(c.Rank(b)) > n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNameRankCompletes(t *testing.T) {
	const n = 64
	for seed := uint64(0); seed < 5; seed++ {
		nr := NewNameRank(n, coin.FromPRNG(rng.New(seed)))
		res := sim.Run(nr, rng.New(seed+10), sim.Options{
			MaxInteractions:    1 << 22,
			StopAfterStableFor: uint64(4 * n),
		})
		if !res.Stabilized {
			t.Fatalf("seed %d: NameRank did not complete", seed)
		}
	}
}

func TestNameRankBitsGrow(t *testing.T) {
	nr := NewNameRank(16, coin.FromPRNG(rng.New(1)))
	before := nr.Bits(0)
	sim.Steps(nr, rng.New(2), 2000)
	if nr.Bits(0) <= before {
		t.Fatalf("name-set bits did not grow: %d -> %d", before, nr.Bits(0))
	}
	// At completion each agent stores ~n names of 3·log₂(n) bits each.
	if nr.Bits(0) < 16*12 {
		t.Fatalf("completed agent stores %d bits, want >= %d", nr.Bits(0), 16*12)
	}
}

func TestMergeSorted(t *testing.T) {
	cases := []struct{ x, y, want []int64 }{
		{nil, nil, []int64{}},
		{[]int64{1, 3}, []int64{2}, []int64{1, 2, 3}},
		{[]int64{1, 2}, []int64{1, 2}, []int64{1, 2}},
		{[]int64{5}, nil, []int64{5}},
	}
	for _, c := range cases {
		got := mergeSorted(c.x, c.y)
		if len(got) != len(c.want) {
			t.Fatalf("mergeSorted(%v,%v) = %v", c.x, c.y, got)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("mergeSorted(%v,%v) = %v", c.x, c.y, got)
			}
		}
	}
}

func TestLooseLEConverges(t *testing.T) {
	const n = 64
	l := NewLooseLE(n, 16*64)
	res := sim.Run(l, rng.New(3), sim.Options{
		MaxInteractions:    1 << 22,
		StopAfterStableFor: uint64(8 * n),
	})
	if !res.Stabilized {
		t.Fatalf("loose LE did not converge: %d leaders", l.Leaders())
	}
}

// TestLooseLEHoldingIsFinite: with a tiny τ (far below the epidemic time)
// timers die before the leader's heartbeats arrive, so spurious leaders keep
// appearing and the single-leader condition is held only a small fraction of
// the time — demonstrating loose (not strict) stabilization.
func TestLooseLEHoldingIsFinite(t *testing.T) {
	const n = 32
	l := NewLooseLE(n, 4)
	r := rng.New(4)
	polls, correct := 0, 0
	for i := 0; i < 200_000; i++ {
		a, b := r.Pair(n)
		l.Interact(a, b)
		if i%n == 0 {
			polls++
			if l.Correct() {
				correct++
			}
			if l.Leaders() < 1 {
				t.Fatal("population must never be leaderless under timeout dynamics")
			}
		}
	}
	if frac := float64(correct) / float64(polls); frac > 0.9 {
		t.Fatalf("tiny τ held a unique leader %.0f%% of the time; loose stabilization should churn", frac*100)
	}
}

func TestLooseLETauClamp(t *testing.T) {
	if NewLooseLE(4, 0).Tau() != 1 {
		t.Fatal("τ must clamp to 1")
	}
}
