// loose.go implements a loosely-stabilizing leader election in the style of
// Sudo, Nakamura, Yamauchi, Ooshita, Kakugawa, Masuzawa (TCS 2012) and its
// successors (related work, §2): from any configuration a unique leader
// emerges within O(τ + n·log n)-ish interactions, and is then *held* for a
// long but finite time governed by the timeout parameter τ, rather than
// forever. Experiment T13 reproduces the convergence-vs-holding-time
// trade-off that distinguishes loose stabilization from the paper's strict
// self-stabilization.

package baseline

import "sspp/internal/sim"

// LooseLE is a timeout-based loosely-stabilizing leader election.
//
// Every agent carries a countdown timer. Leaders re-arm their own timer to τ
// on every interaction; timers propagate by a max-epidemic and decrement at
// every interaction. An agent whose timer reaches zero assumes leadership is
// lost and promotes itself; two leaders meeting demote the responder.
type LooseLE struct {
	tau    int32
	leader []bool
	timer  []int32
}

// LooseLE is deliberately NOT a SafeSetter: loose stabilization holds the
// leader only for a finite time, so there is no configuration set that is
// correct forever — the engine measures it at the output level instead
// (correct output through a confirmation window).
var (
	_ sim.Protocol   = (*LooseLE)(nil)
	_ sim.Injectable = (*LooseLE)(nil)
)

// NewLooseLE returns a LooseLE over n agents with timeout τ and no initial
// leader (all timers at zero forces an immediate self-promotion burst — the
// adversarial start).
func NewLooseLE(n int, tau int32) *LooseLE {
	if tau < 1 {
		tau = 1
	}
	return &LooseLE{
		tau:    tau,
		leader: make([]bool, n),
		timer:  make([]int32, n),
	}
}

// N returns the population size.
func (l *LooseLE) N() int { return len(l.timer) }

// Interact applies the timeout dynamics to the ordered pair.
func (l *LooseLE) Interact(a, b int) {
	// Leaders re-arm; two leaders collapse to one (responder demotes).
	if l.leader[a] && l.leader[b] {
		l.leader[b] = false
	}
	if l.leader[a] {
		l.timer[a] = l.tau
	}
	if l.leader[b] {
		l.timer[b] = l.tau
	}
	// Max-epidemic on timers, then both decrement.
	m := l.timer[a]
	if l.timer[b] > m {
		m = l.timer[b]
	}
	m--
	if m < 0 {
		m = 0
	}
	l.timer[a], l.timer[b] = m, m
	// Timeout: a non-leader whose timer died promotes itself.
	for _, i := range [2]int{a, b} {
		if !l.leader[i] && l.timer[i] == 0 {
			l.leader[i] = true
			l.timer[i] = l.tau
		}
	}
}

// Correct reports whether exactly one agent is a leader.
func (l *LooseLE) Correct() bool { return l.Leaders() == 1 }

// Leaders returns the current number of leaders.
func (l *LooseLE) Leaders() int {
	c := 0
	for _, b := range l.leader {
		if b {
			c++
		}
	}
	return c
}

// LeaderIndex returns the unique leader, or ok = false when the
// configuration does not currently have exactly one.
func (l *LooseLE) LeaderIndex() (int, bool) {
	idx, leaders := -1, 0
	for i, b := range l.leader {
		if b {
			idx = i
			leaders++
		}
	}
	return idx, leaders == 1
}

// Tau returns the timeout parameter.
func (l *LooseLE) Tau() int32 { return l.tau }
