// compact.go implements the Compactable capability for the baselines: each
// protocol describes itself as a sim.CompactModel — dynamics over state keys
// with counts — which the species backend (internal/species) runs with
// per-interaction cost depending on occupied states, not n. The models
// capture the instance they are derived from, so a species run starts from
// exactly the agent-level instance's configuration (including NameRank's
// seeded name draw), which is what lets the backend-equivalence tests pair
// trials at matched seeds.

package baseline

import (
	"encoding/binary"
	"fmt"
	"sort"

	"sspp/internal/adversary"
	"sspp/internal/rng"
	"sspp/internal/sim"
)

// The baselines all have species forms. The paper's ElectLeader_r has one
// too (internal/core/compact.go): its rich composite states are interned
// behind canonical keys, with Release-based table eviction keeping the
// intern table at O(occupied states).
var (
	_ sim.Compactable = (*CIW)(nil)
	_ sim.Compactable = (*LooseLE)(nil)
	_ sim.Compactable = (*NameRank)(nil)
)

// Compact describes CIW in species form: the state key is the rank itself,
// only equal-rank pairs react ((k, k) → (k, k mod n + 1)), and the safe set
// — the permutations — is exactly "every state is a singleton", an O(1)
// check on the occupied-state tally. The population size n is a mutable
// closure variable shared by React and the churn hooks: Rescale updates it
// when churn changes the population, so the wrap rule and the key-space
// bound track the live size.
func (c *CIW) Compact() sim.CompactModel {
	n := len(c.ranks)
	return sim.CompactModel{
		StateSpace:    uint64(n) + 1,
		Diagonal:      true,
		Deterministic: true,
		Init: func() ([]uint64, []int64) {
			counts := make([]int64, n+1)
			for _, r := range c.ranks {
				counts[r]++
			}
			var keys []uint64
			var occ []int64
			for r, cnt := range counts {
				if cnt > 0 {
					keys = append(keys, uint64(r))
					occ = append(occ, cnt)
				}
			}
			return keys, occ
		},
		React: func(a, b uint64, _ *rng.PRNG) (uint64, uint64) {
			if a == b {
				return a, a%uint64(n) + 1
			}
			return a, b
		},
		Leader: func(key uint64) bool { return key == 1 },
		Rank:   func(key uint64) int32 { return int32(key) },
		SafeSet: func(v sim.CountView) bool {
			// A permutation is the only way n agents occupy n distinct
			// states when every state is a rank in [1, n].
			return v.Occupied() == v.N()
		},
		Churn: &sim.CompactChurn{
			MinN: 2,
			Join: func(class string, nNew int, v sim.CountView, src *rng.PRNG) (uint64, error) {
				switch adversary.Class(class) {
				case "", adversary.ClassCleanRankers:
					return 1, nil
				case adversary.ClassRandomGarbage:
					return uint64(src.Intn(nNew)) + 1, nil
				case adversary.ClassDuplicateRanks:
					// Copy a uniformly chosen existing agent's rank
					// (count-weighted over the pre-join multiset).
					u := int64(src.Uint64n(uint64(v.N())))
					var key uint64
					v.Each(func(k uint64, cnt int64) bool {
						if u < cnt {
							key = k
							return false
						}
						u -= cnt
						return true
					})
					return key, nil
				default:
					return 0, fmt.Errorf("baseline: class %q not realizable as a CIW join state", class)
				}
			},
			Rescale: func(nNew int) (uint64, func(uint64) uint64) {
				shrink := nNew < n
				n = nNew
				if !shrink {
					return uint64(nNew) + 1, nil
				}
				bound := uint64(nNew)
				return bound + 1, func(k uint64) uint64 {
					if k > bound {
						return bound
					}
					return k
				}
			},
		},
	}
}

// looseKey packs a LooseLE agent state (leader bit, timer) into a key.
func looseKey(leader bool, timer int32) uint64 {
	k := uint64(timer) << 1
	if leader {
		k |= 1
	}
	return k
}

// StateKey returns agent i's state in the species-form key encoding of
// Compact — the hook mirror tests and state-census tooling use to relate
// agent-level and count-level representations.
func (l *LooseLE) StateKey(i int) uint64 { return looseKey(l.leader[i], l.timer[i]) }

// Compact describes LooseLE in species form: the key packs (leader, timer),
// so the occupied-state count is at most 2(τ+1) no matter how large the
// population. Like the agent-level protocol it has no safe set — loose
// stabilization holds the leader only for a finite time.
func (l *LooseLE) Compact() sim.CompactModel {
	tau := l.tau
	return sim.CompactModel{
		StateSpace:    uint64(tau+1) << 1,
		Deterministic: true,
		Init: func() ([]uint64, []int64) {
			counts := make(map[uint64]int64, 4)
			for i := range l.timer {
				counts[looseKey(l.leader[i], l.timer[i])]++
			}
			keys := make([]uint64, 0, len(counts))
			for k := range counts {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			occ := make([]int64, len(keys))
			for i, k := range keys {
				occ[i] = counts[k]
			}
			return keys, occ
		},
		React: func(a, b uint64, _ *rng.PRNG) (uint64, uint64) {
			la, ta := a&1 == 1, int32(a>>1)
			lb, tb := b&1 == 1, int32(b>>1)
			// Two leaders collapse (responder demotes), leaders re-arm.
			if la && lb {
				lb = false
			}
			if la {
				ta = tau
			}
			if lb {
				tb = tau
			}
			// Max-epidemic on timers, then both decrement.
			m := ta
			if tb > m {
				m = tb
			}
			m--
			if m < 0 {
				m = 0
			}
			ta, tb = m, m
			// Timeout: a non-leader whose timer died promotes itself.
			if !la && ta == 0 {
				la, ta = true, tau
			}
			if !lb && tb == 0 {
				lb, tb = true, tau
			}
			return looseKey(la, ta), looseKey(lb, tb)
		},
		Leader: func(key uint64) bool { return key&1 == 1 },
		Churn: &sim.CompactChurn{
			// The (leader, timer) state space is n-independent, so no
			// Rescale is needed; any population of at least two works.
			MinN: 2,
			Join: func(class string, _ int, _ sim.CountView, src *rng.PRNG) (uint64, error) {
				switch adversary.Class(class) {
				case "":
					return looseKey(false, tau), nil
				case adversary.ClassNoLeader:
					return looseKey(false, 0), nil
				case adversary.ClassTwoLeaders:
					return looseKey(true, tau), nil
				case adversary.ClassRandomGarbage:
					return looseKey(src.Bool(), src.Int31n(tau+1)), nil
				default:
					return 0, fmt.Errorf("baseline: class %q not realizable as a LooseLE join state", class)
				}
			},
		},
	}
}

// nameState is one interned NameRank agent state: the agent's own name, the
// sorted set of names it has seen, and its committed rank (0 undecided).
type nameState struct {
	own  int64
	seen []int64
	rank int32
}

// encodeNameState renders the state canonically for interning.
func encodeNameState(st nameState) string {
	b := make([]byte, 12, 12+8*len(st.seen))
	binary.LittleEndian.PutUint64(b, uint64(st.own))
	binary.LittleEndian.PutUint32(b[8:], uint32(st.rank))
	for _, v := range st.seen {
		b = binary.LittleEndian.AppendUint64(b, uint64(v))
	}
	return string(b)
}

// Compact describes NameRank in species form. Its states (name sets) are
// too rich for a packed key, so the model interns them: keys index a table
// owned by the model, and identical states share one key so the multiset
// semantics are preserved — including initial name collisions, which leave
// the run uncommittable in both backends alike.
func (nr *NameRank) Compact() sim.CompactModel {
	n := nr.n
	var tab []nameState
	intern := make(map[string]uint64)
	keyOf := func(st nameState) uint64 {
		enc := encodeNameState(st)
		if id, ok := intern[enc]; ok {
			return id
		}
		id := uint64(len(tab))
		tab = append(tab, st)
		intern[enc] = id
		return id
	}
	commit := func(st *nameState) {
		if st.rank == 0 && len(st.seen) >= n {
			st.rank = int32(sort.Search(len(st.seen), func(k int) bool {
				return st.seen[k] >= st.own
			})) + 1
		}
	}
	permutation := func(v sim.CountView) bool {
		if v.Occupied() != n {
			return false
		}
		seen := make([]bool, n+1)
		ok := true
		v.Each(func(key uint64, c int64) bool {
			r := tab[key].rank
			if c != 1 || r < 1 || int(r) > n || seen[r] {
				ok = false
				return false
			}
			seen[r] = true
			return true
		})
		return ok
	}
	return sim.CompactModel{
		Deterministic: true,
		Init: func() ([]uint64, []int64) {
			counts := make(map[uint64]int64, n)
			order := make([]uint64, 0, n)
			for i := 0; i < n; i++ {
				st := nameState{
					own:  nr.names[i],
					seen: append([]int64(nil), nr.seen[i]...),
					rank: nr.rank[i],
				}
				k := keyOf(st)
				if counts[k] == 0 {
					order = append(order, k)
				}
				counts[k]++
			}
			occ := make([]int64, len(order))
			for i, k := range order {
				occ[i] = counts[k]
			}
			return order, occ
		},
		React: func(a, b uint64, _ *rng.PRNG) (uint64, uint64) {
			sa, sb := tab[a], tab[b]
			if sa.rank != 0 && sb.rank != 0 {
				return a, b // both committed: silent
			}
			merged := mergeSorted(sa.seen, sb.seen)
			na := nameState{own: sa.own, seen: merged, rank: sa.rank}
			nb := nameState{own: sb.own, seen: merged, rank: sb.rank}
			commit(&na)
			commit(&nb)
			return keyOf(na), keyOf(nb)
		},
		Leader:  func(key uint64) bool { return tab[key].rank == 1 },
		Rank:    func(key uint64) int32 { return tab[key].rank },
		Correct: permutation,
		SafeSet: permutation,
	}
}
