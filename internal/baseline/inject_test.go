// inject_test.go covers the Injectable surface of the baselines: each
// realizable adversary class must land the population in the configuration
// the class names, unrealizable classes must be rejected, and transient
// corruption must hit exactly the reported victims with type-valid states.

package baseline

import (
	"testing"

	"sspp/internal/rng"
)

func TestCIWInjectClasses(t *testing.T) {
	const n = 16
	src := rng.New(11)
	c := NewCIW(n)

	if err := c.Inject("clean-rankers", src); err != nil {
		t.Fatal(err)
	}
	for i, r := range c.ranks {
		if r != 1 {
			t.Fatalf("clean-rankers: agent %d has rank %d, want 1", i, r)
		}
	}

	countRank := func(want int32) int {
		k := 0
		for _, r := range c.ranks {
			if r == want {
				k++
			}
		}
		return k
	}
	if err := c.Inject("two-leaders", src); err != nil {
		t.Fatal(err)
	}
	if countRank(1) != 2 || countRank(2) != 0 {
		t.Fatalf("two-leaders: %d rank-1 and %d rank-2 agents, want 2 and 0", countRank(1), countRank(2))
	}
	if err := c.Inject("no-leader", src); err != nil {
		t.Fatal(err)
	}
	if countRank(1) != 0 || countRank(2) != 2 {
		t.Fatalf("no-leader: %d rank-1 and %d rank-2 agents, want 0 and 2", countRank(1), countRank(2))
	}

	validRanks := func(ctx string) {
		t.Helper()
		for i, r := range c.ranks {
			if r < 1 || r > n {
				t.Fatalf("%s: agent %d has rank %d outside [1, %d]", ctx, i, r, n)
			}
		}
	}
	if err := c.Inject("duplicate-ranks", src); err != nil {
		t.Fatal(err)
	}
	validRanks("duplicate-ranks")
	if err := c.Inject("random-garbage", src); err != nil {
		t.Fatal(err)
	}
	validRanks("random-garbage")

	if err := c.Inject("mixed-roles", src); err == nil {
		t.Fatal("class mixed-roles accepted: CIW has no role structure")
	}

	// Transient corruption: distinct victims, type-valid states, and the
	// k ≤ 0 / k > n edges of the victim draw.
	hit := c.InjectTransient(4, src)
	if len(hit) != 4 {
		t.Fatalf("transient k=4 hit %d agents", len(hit))
	}
	seen := make([]bool, n)
	for _, i := range hit {
		if seen[i] {
			t.Fatalf("transient victims repeat index %d", i)
		}
		seen[i] = true
	}
	validRanks("transient")
	if hit := c.InjectTransient(0, src); hit != nil {
		t.Fatalf("transient k=0 hit %d agents, want none", len(hit))
	}
	if hit := c.InjectTransient(n+5, src); len(hit) != n {
		t.Fatalf("transient k>n hit %d agents, want the whole population", len(hit))
	}
}

func TestLooseLEInjectClasses(t *testing.T) {
	const (
		n   = 12
		tau = int32(5)
	)
	src := rng.New(13)
	l := NewLooseLE(n, tau)

	if err := l.Inject("no-leader", src); err != nil {
		t.Fatal(err)
	}
	for i := range l.timer {
		if l.leader[i] || l.timer[i] != 0 {
			t.Fatalf("no-leader: agent %d is (%v, %d), want a dead non-leader", i, l.leader[i], l.timer[i])
		}
	}

	if err := l.Inject("two-leaders", src); err != nil {
		t.Fatal(err)
	}
	leaders := 0
	for i := range l.timer {
		if l.leader[i] {
			leaders++
		}
		if l.timer[i] != tau {
			t.Fatalf("two-leaders: agent %d has timer %d, want a re-armed %d", i, l.timer[i], tau)
		}
	}
	if leaders != 2 {
		t.Fatalf("two-leaders: %d leaders, want 2", leaders)
	}

	if err := l.Inject("random-garbage", src); err != nil {
		t.Fatal(err)
	}
	for i := range l.timer {
		if l.timer[i] < 0 || l.timer[i] > tau {
			t.Fatalf("random-garbage: agent %d has timer %d outside [0, %d]", i, l.timer[i], tau)
		}
	}

	if err := l.Inject("duplicate-ranks", src); err == nil {
		t.Fatal("class duplicate-ranks accepted: LooseLE has no ranks")
	}

	hit := l.InjectTransient(3, src)
	if len(hit) != 3 {
		t.Fatalf("transient k=3 hit %d agents", len(hit))
	}
	for _, i := range hit {
		if l.timer[i] < 0 || l.timer[i] > tau {
			t.Fatalf("transient: victim %d has timer %d outside [0, %d]", i, l.timer[i], tau)
		}
	}
}
