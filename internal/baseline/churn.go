// churn.go implements the agent-level Churnable capability for the baselines
// whose state space survives a changing population. CIW's ranks live in
// [1, n], so a shrink clamps stranded out-of-range ranks to the new maximum —
// without the clamp a rank above n could never be corrected ((k, k) fires
// only on collisions) and the protocol would lose liveness. LooseLE's
// (leader, timer) states are n-independent, so joins and leaves are plain
// slice surgery. NameRank is deliberately not churnable: its name space and
// commit threshold are anchored at the build-time n.

package baseline

import (
	"fmt"

	"sspp/internal/adversary"
	"sspp/internal/rng"
	"sspp/internal/sim"
)

var (
	_ sim.Churnable  = (*CIW)(nil)
	_ sim.Churnable  = (*LooseLE)(nil)
	_ sim.StateKeyer = (*CIW)(nil)
	_ sim.StateKeyer = (*LooseLE)(nil)
)

// StateKey returns agent i's state in the species-form key encoding of
// Compact (the rank is the key).
func (c *CIW) StateKey(i int) uint64 { return uint64(c.ranks[i]) }

// ChurnBounds: CIW supports any population of at least two agents.
func (c *CIW) ChurnBounds() (minN, maxN int) { return 2, 0 }

// JoinAgent adds one agent in the class-chosen rank state. Realizable join
// classes: "" / clean-rankers (rank 1, the canonical initial state),
// random-garbage (a uniform rank in the new [1, n]), and duplicate-ranks
// (copying a uniformly chosen existing agent's rank).
func (c *CIW) JoinAgent(class string, src *rng.PRNG) (int, error) {
	nNew := len(c.ranks) + 1
	var rank int32
	switch adversary.Class(class) {
	case "", adversary.ClassCleanRankers:
		rank = 1
	case adversary.ClassRandomGarbage:
		rank = int32(src.Intn(nNew)) + 1
	case adversary.ClassDuplicateRanks:
		rank = c.ranks[src.Intn(len(c.ranks))]
	default:
		return 0, fmt.Errorf("baseline: class %q not realizable as a CIW join state", class)
	}
	c.ranks = append(c.ranks, rank)
	return len(c.ranks) - 1, nil
}

// LeaveAgent removes agent i (swap-remove; agent identities carry no state in
// CIW) and clamps any rank the shrunken [1, n] strands.
func (c *CIW) LeaveAgent(i int) error {
	n := len(c.ranks)
	if i < 0 || i >= n {
		return fmt.Errorf("baseline: CIW leave index %d out of range [0, %d)", i, n)
	}
	if n <= 1 {
		return fmt.Errorf("baseline: cannot remove the last CIW agent")
	}
	c.ranks[i] = c.ranks[n-1]
	c.ranks = c.ranks[:n-1]
	max := int32(len(c.ranks))
	for j, r := range c.ranks {
		if r > max {
			c.ranks[j] = max
		}
	}
	return nil
}

// ChurnBounds: LooseLE supports any population of at least two agents.
func (l *LooseLE) ChurnBounds() (minN, maxN int) { return 2, 0 }

// JoinAgent adds one agent in the class-chosen (leader, timer) state.
// Realizable join classes: "" (a follower with a full timer — the state of an
// agent that just heard from a leader), no-leader (a dead timer, about to
// self-promote), two-leaders (a spurious leader claim), and random-garbage.
func (l *LooseLE) JoinAgent(class string, src *rng.PRNG) (int, error) {
	var leader bool
	var timer int32
	switch adversary.Class(class) {
	case "":
		leader, timer = false, l.tau
	case adversary.ClassNoLeader:
		leader, timer = false, 0
	case adversary.ClassTwoLeaders:
		leader, timer = true, l.tau
	case adversary.ClassRandomGarbage:
		leader, timer = src.Bool(), src.Int31n(l.tau+1)
	default:
		return 0, fmt.Errorf("baseline: class %q not realizable as a LooseLE join state", class)
	}
	l.leader = append(l.leader, leader)
	l.timer = append(l.timer, timer)
	return len(l.timer) - 1, nil
}

// LeaveAgent removes agent i (swap-remove).
func (l *LooseLE) LeaveAgent(i int) error {
	n := len(l.timer)
	if i < 0 || i >= n {
		return fmt.Errorf("baseline: LooseLE leave index %d out of range [0, %d)", i, n)
	}
	if n <= 1 {
		return fmt.Errorf("baseline: cannot remove the last LooseLE agent")
	}
	l.leader[i] = l.leader[n-1]
	l.timer[i] = l.timer[n-1]
	l.leader = l.leader[:n-1]
	l.timer = l.timer[:n-1]
	return nil
}
