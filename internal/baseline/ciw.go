// Package baseline implements the comparison protocols that anchor the
// paper's trade-off (Section 2, Related Work):
//
//   - CIW: the classic n-state silent self-stabilizing ranking in the style
//     of Cai, Izumi, and Wada (Theory Comput. Syst. 2012) — the
//     state-optimal anchor with Θ(n²) expected stabilization time.
//   - NameRank: the O(n³)-names broadcast ranking described by [16] and in
//     Appendix D as the state-heavy alternative for the time-optimal regime
//     (O(n·log n) bits, O(n·log n) interactions, not self-stabilizing).
//   - LooseLE: a loosely-stabilizing leader election in the style of Sudo
//     et al. (TCS 2012 / DISC 2021): fast convergence from any
//     configuration, but the leader is only held for a finite (tunable)
//     time rather than forever.
package baseline

import (
	"sspp/internal/sim"
)

// CIW is an n-state silent self-stabilizing ranking protocol: each agent's
// whole state is its rank in [1, n]; when two agents with the same rank k
// interact, the responder moves to rank k mod n + 1. Stable configurations
// are exactly the permutations (the protocol is silent there), and from any
// configuration a permutation is reached with probability 1, in Θ(n²)
// expected interactions for the leader-election output.
type CIW struct {
	ranks []int32
}

// CIW exposes the ranking and safe-set capabilities of the run engine; its
// safe set is exactly the permutation configurations, where the protocol is
// silent (no interaction changes any state), so "correct ranking" is
// "correct forever".
var (
	_ sim.Protocol   = (*CIW)(nil)
	_ sim.Ranker     = (*CIW)(nil)
	_ sim.SafeSetter = (*CIW)(nil)
	_ sim.Injectable = (*CIW)(nil)
)

// NewCIW returns a CIW instance over n agents starting from the all-rank-1
// configuration (the canonical worst-ish case).
func NewCIW(n int) *CIW {
	ranks := make([]int32, n)
	for i := range ranks {
		ranks[i] = 1
	}
	return &CIW{ranks: ranks}
}

// NewCIWFromRanks returns a CIW instance with the given initial rank beliefs
// (values are clamped into [1, n]); the slice is copied.
func NewCIWFromRanks(ranks []int32) *CIW {
	c := &CIW{ranks: append([]int32(nil), ranks...)}
	n := int32(len(c.ranks))
	for i, r := range c.ranks {
		if r < 1 {
			c.ranks[i] = 1
		}
		if r > n {
			c.ranks[i] = n
		}
	}
	return c
}

// N returns the population size.
func (c *CIW) N() int { return len(c.ranks) }

// Interact applies the (k, k) → (k, k mod n + 1) rule.
func (c *CIW) Interact(a, b int) {
	if c.ranks[a] == c.ranks[b] {
		c.ranks[b] = c.ranks[b]%int32(len(c.ranks)) + 1
	}
}

// Correct reports whether exactly one agent holds rank 1 (the leader).
func (c *CIW) Correct() bool {
	leaders := 0
	for _, r := range c.ranks {
		if r == 1 {
			leaders++
		}
	}
	return leaders == 1
}

// CorrectRanking reports whether the ranks form a permutation of [1, n].
func (c *CIW) CorrectRanking() bool {
	seen := make([]bool, len(c.ranks))
	for _, r := range c.ranks {
		if r < 1 || int(r) > len(c.ranks) || seen[r-1] {
			return false
		}
		seen[r-1] = true
	}
	return true
}

// Rank returns agent i's rank belief.
func (c *CIW) Rank(i int) int32 { return c.ranks[i] }

// RankOutput returns agent i's rank output (the whole state is the rank).
func (c *CIW) RankOutput(i int) int32 { return c.ranks[i] }

// Leaders returns the number of agents currently outputting "leader"
// (holding rank 1).
func (c *CIW) Leaders() int {
	leaders := 0
	for _, r := range c.ranks {
		if r == 1 {
			leaders++
		}
	}
	return leaders
}

// LeaderIndex returns the unique rank-1 agent, or ok = false when the
// configuration does not currently have exactly one.
func (c *CIW) LeaderIndex() (int, bool) {
	idx, leaders := -1, 0
	for i, r := range c.ranks {
		if r == 1 {
			idx = i
			leaders++
		}
	}
	return idx, leaders == 1
}

// InSafeSet reports whether the configuration is a permutation: CIW is
// silent there (the (k, k) rule never fires again), so the output is
// correct forever — the protocol's safe set.
func (c *CIW) InSafeSet() bool { return c.CorrectRanking() }
