// compact_churn_test.go covers the count-level churn hooks of the baseline
// species forms (CompactModel.Churn) and the StateKey encoding bridge: join
// classes must land in the states the adversary class names, CIW's Rescale
// must track the live population, and LooseLE's per-agent StateKey must
// reproduce the Init multiset exactly.

package baseline

import (
	"testing"

	"sspp/internal/rng"
	"sspp/internal/species"
)

func TestCIWCompactChurnHooks(t *testing.T) {
	const n = 8
	c := NewCIW(n)
	cm := c.Compact()
	sp, err := species.NewSystem(cm, 3)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(5)
	for _, class := range []string{"", "clean-rankers"} {
		k, err := cm.Churn.Join(class, n+1, sp, src)
		if err != nil || k != 1 {
			t.Fatalf("join class %q: key %d err %v, want the clean rank 1", class, k, err)
		}
	}
	k, err := cm.Churn.Join("random-garbage", n+1, sp, src)
	if err != nil || k < 1 || k > n+1 {
		t.Fatalf("random-garbage join: key %d err %v, want a rank in [1, %d]", k, err, n+1)
	}
	k, err = cm.Churn.Join("duplicate-ranks", n+1, sp, src)
	if err != nil || sp.Count(k) == 0 {
		t.Fatalf("duplicate-ranks join: key %d (count %d) err %v, want an occupied rank", k, sp.Count(k), err)
	}
	if _, err := cm.Churn.Join("no-leader", n+1, sp, src); err == nil {
		t.Fatal("class no-leader accepted as a CIW join state")
	}

	// Growing keeps existing keys valid; shrinking clamps them to the new
	// wrap bound so the key space stays [1, n].
	bound, remap := cm.Churn.Rescale(n + 2)
	if bound != n+3 || remap != nil {
		t.Fatalf("grow rescale: bound %d remap %v, want %d and no remap", bound, remap != nil, n+3)
	}
	bound, remap = cm.Churn.Rescale(4)
	if bound != 5 || remap == nil {
		t.Fatalf("shrink rescale: bound %d remap %v, want 5 with a clamping remap", bound, remap != nil)
	}
	if remap(7) != 4 || remap(3) != 3 {
		t.Fatalf("shrink remap: 7→%d 3→%d, want out-of-range ranks clamped to 4 and in-range kept", remap(7), remap(3))
	}
}

func TestLooseLEStateKeyAndJoinClasses(t *testing.T) {
	const (
		n   = 6
		tau = int32(4)
	)
	l := NewLooseLE(n, tau)
	cm := l.Compact()

	// StateKey must reproduce the Init multiset agent by agent.
	counts := make(map[uint64]int64, 4)
	for i := 0; i < n; i++ {
		counts[l.StateKey(i)]++
	}
	keys, occ := cm.Init()
	if len(keys) != len(counts) {
		t.Fatalf("Init occupies %d states, StateKey tallies %d", len(keys), len(counts))
	}
	for j, k := range keys {
		if counts[k] != occ[j] {
			t.Fatalf("state %#x: Init count %d, StateKey tally %d", k, occ[j], counts[k])
		}
	}

	src := rng.New(9)
	joins := []struct {
		class string
		want  uint64
	}{
		{"", looseKey(false, tau)},
		{"no-leader", looseKey(false, 0)},
		{"two-leaders", looseKey(true, tau)},
	}
	for _, j := range joins {
		k, err := cm.Churn.Join(j.class, n, nil, src)
		if err != nil || k != j.want {
			t.Fatalf("join class %q: key %#x err %v, want %#x", j.class, k, err, j.want)
		}
	}
	k, err := cm.Churn.Join("random-garbage", n, nil, src)
	if err != nil || int32(k>>1) > tau {
		t.Fatalf("random-garbage join: key %#x err %v, want a timer in [0, %d]", k, err, tau)
	}
	if _, err := cm.Churn.Join("duplicate-ranks", n, nil, src); err == nil {
		t.Fatal("class duplicate-ranks accepted as a LooseLE join state")
	}
}
