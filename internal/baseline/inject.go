// inject.go implements the Injectable capability for the self- and
// loosely-stabilizing baselines. The class vocabulary is shared with
// internal/adversary (the canonical names of DESIGN.md §5); each baseline
// realizes the subset of classes that is meaningful for its state space and
// rejects the rest, which the Ensemble layer counts as unrealizable
// injections.

package baseline

import (
	"fmt"

	"sspp/internal/adversary"
	"sspp/internal/rng"
)

// victims draws k distinct agent indices from [0, n) (all of them when
// k ≥ n), matching the transient-fault model of internal/adversary.
func victims(n, k int, src *rng.PRNG) []int {
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + src.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}

// shuffledPermutation fills ranks with a uniformly random permutation of
// [1, n].
func shuffledPermutation(ranks []int32, src *rng.PRNG) {
	for i := range ranks {
		ranks[i] = int32(i + 1)
	}
	for i := range ranks {
		j := i + src.Intn(len(ranks)-i)
		ranks[i], ranks[j] = ranks[j], ranks[i]
	}
}

// Inject rewrites the CIW configuration according to the adversary class.
// Realizable classes: clean-rankers (the all-rank-1 worst-ish start),
// two-leaders, no-leader, duplicate-ranks, random-garbage. The remaining
// classes describe ElectLeader_r-specific structure (roles, generations,
// messages) with no CIW counterpart and return an error.
func (c *CIW) Inject(class string, src *rng.PRNG) error {
	n := len(c.ranks)
	switch adversary.Class(class) {
	case adversary.ClassCleanRankers:
		for i := range c.ranks {
			c.ranks[i] = 1
		}
	case adversary.ClassTwoLeaders:
		shuffledPermutation(c.ranks, src)
		for i, r := range c.ranks {
			if r == 2 {
				c.ranks[i] = 1 // second leader; rank 2 now missing
				break
			}
		}
	case adversary.ClassNoLeader:
		shuffledPermutation(c.ranks, src)
		for i, r := range c.ranks {
			if r == 1 {
				c.ranks[i] = 2 // rank 2 duplicated; no leader left
				break
			}
		}
	case adversary.ClassDuplicateRanks:
		shuffledPermutation(c.ranks, src)
		k := n / 8
		if k < 2 {
			k = 2
		}
		for _, i := range victims(n, k, src) {
			c.ranks[i] = c.ranks[src.Intn(n)]
		}
	case adversary.ClassRandomGarbage:
		for i := range c.ranks {
			c.ranks[i] = int32(src.Intn(n)) + 1
		}
	default:
		return fmt.Errorf("baseline: class %q not realizable for CIW", class)
	}
	return nil
}

// InjectTransient corrupts k uniformly chosen agents with random ranks in
// [1, n] and returns the victim indices.
func (c *CIW) InjectTransient(k int, src *rng.PRNG) []int {
	hit := victims(len(c.ranks), k, src)
	for _, i := range hit {
		c.ranks[i] = int32(src.Intn(len(c.ranks))) + 1
	}
	return hit
}

// Inject rewrites the LooseLE configuration according to the adversary
// class. Realizable classes: no-leader (the canonical all-timers-zero
// adversarial start), two-leaders, random-garbage; the others describe
// rank/role structure LooseLE does not have.
func (l *LooseLE) Inject(class string, src *rng.PRNG) error {
	n := len(l.timer)
	switch adversary.Class(class) {
	case adversary.ClassNoLeader:
		for i := range l.timer {
			l.leader[i] = false
			l.timer[i] = 0
		}
	case adversary.ClassTwoLeaders:
		for i := range l.timer {
			l.leader[i] = false
			l.timer[i] = l.tau
		}
		for _, i := range victims(n, 2, src) {
			l.leader[i] = true
		}
	case adversary.ClassRandomGarbage:
		for i := range l.timer {
			l.leader[i] = src.Bool()
			l.timer[i] = src.Int31n(l.tau + 1)
		}
	default:
		return fmt.Errorf("baseline: class %q not realizable for LooseLE", class)
	}
	return nil
}

// InjectTransient corrupts k uniformly chosen agents with random leader
// bits and timers and returns the victim indices.
func (l *LooseLE) InjectTransient(k int, src *rng.PRNG) []int {
	hit := victims(len(l.timer), k, src)
	for _, i := range hit {
		l.leader[i] = src.Bool()
		l.timer[i] = src.Int31n(l.tau + 1)
	}
	return hit
}
