// churn_test.go unit-tests the agent-level Churnable surface of the
// baselines: class-chosen join states, swap-remove leaves (with CIW's
// stranded-rank clamp), and the error paths the engine relies on to fail
// fast.

package baseline

import (
	"testing"

	"sspp/internal/adversary"
	"sspp/internal/rng"
)

func TestCIWChurnSurface(t *testing.T) {
	c := NewCIWFromRanks([]int32{1, 2, 3, 4})
	if k := c.StateKey(2); k != 3 {
		t.Fatalf("StateKey(2) = %d, want the rank 3", k)
	}
	if minN, maxN := c.ChurnBounds(); minN != 2 || maxN != 0 {
		t.Fatalf("bounds (%d, %d), want (2, 0)", minN, maxN)
	}
	src := rng.New(3)
	for _, class := range []string{"", string(adversary.ClassCleanRankers)} {
		i, err := c.JoinAgent(class, src)
		if err != nil {
			t.Fatal(err)
		}
		if i != c.N()-1 || c.Rank(i) != 1 {
			t.Fatalf("class %q joined at %d with rank %d, want a fresh rank-1 ranker", class, i, c.Rank(i))
		}
	}
	i, err := c.JoinAgent(string(adversary.ClassRandomGarbage), src)
	if err != nil {
		t.Fatal(err)
	}
	if r := c.Rank(i); r < 1 || int(r) > c.N() {
		t.Fatalf("random-garbage join rank %d outside [1, %d]", r, c.N())
	}
	i, err = c.JoinAgent(string(adversary.ClassDuplicateRanks), src)
	if err != nil {
		t.Fatal(err)
	}
	dup := false
	for j := 0; j < i; j++ {
		if c.Rank(j) == c.Rank(i) {
			dup = true
		}
	}
	if !dup {
		t.Fatalf("duplicate-ranks join rank %d duplicates nobody", c.Rank(i))
	}
	if _, err := c.JoinAgent("bogus", src); err == nil {
		t.Fatal("unrealizable join class accepted")
	}
}

func TestCIWLeaveClampsStrandedRanks(t *testing.T) {
	c := NewCIWFromRanks([]int32{1, 2, 3, 4})
	if err := c.LeaveAgent(4); err == nil {
		t.Fatal("out-of-range leave accepted")
	}
	// Removing agent 0 swap-moves rank 4 into slot 0; the shrunken space
	// [1, 3] strands it, so the clamp must pull it down to 3.
	if err := c.LeaveAgent(0); err != nil {
		t.Fatal(err)
	}
	if c.N() != 3 || c.Rank(0) != 3 || c.Rank(1) != 2 || c.Rank(2) != 3 {
		t.Fatalf("after the leave: n=%d ranks %d/%d/%d, want 3 and 3/2/3", c.N(), c.Rank(0), c.Rank(1), c.Rank(2))
	}
	for c.N() > 1 {
		if err := c.LeaveAgent(0); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.LeaveAgent(0); err == nil {
		t.Fatal("leave emptied the population")
	}
}

func TestLooseLEChurnSurface(t *testing.T) {
	const tau = 8
	l := NewLooseLE(3, tau)
	if minN, maxN := l.ChurnBounds(); minN != 2 || maxN != 0 {
		t.Fatalf("bounds (%d, %d), want (2, 0)", minN, maxN)
	}
	src := rng.New(4)
	cases := []struct {
		class      string
		leader     bool
		timerExact int32 // -1: any value in [0, tau]
	}{
		{"", false, tau},
		{string(adversary.ClassNoLeader), false, 0},
		{string(adversary.ClassTwoLeaders), true, tau},
		{string(adversary.ClassRandomGarbage), false, -1},
	}
	for _, tc := range cases {
		i, err := l.JoinAgent(tc.class, src)
		if err != nil {
			t.Fatal(err)
		}
		if i != l.N()-1 {
			t.Fatalf("class %q joined at %d, want the last slot %d", tc.class, i, l.N()-1)
		}
		if tc.timerExact >= 0 && (l.leader[i] != tc.leader || l.timer[i] != tc.timerExact) {
			t.Fatalf("class %q joined as (%v, %d), want (%v, %d)",
				tc.class, l.leader[i], l.timer[i], tc.leader, tc.timerExact)
		}
		if l.timer[i] < 0 || l.timer[i] > tau {
			t.Fatalf("class %q joined with timer %d outside [0, %d]", tc.class, l.timer[i], tau)
		}
	}
	if _, err := l.JoinAgent("bogus", src); err == nil {
		t.Fatal("unrealizable join class accepted")
	}
	if err := l.LeaveAgent(l.N()); err == nil {
		t.Fatal("out-of-range leave accepted")
	}
	// Remove slot 0 and check the swap brought the last agent's state along.
	wantLeader, wantTimer := l.leader[l.N()-1], l.timer[l.N()-1]
	if err := l.LeaveAgent(0); err != nil {
		t.Fatal(err)
	}
	if l.leader[0] != wantLeader || l.timer[0] != wantTimer {
		t.Fatalf("swap-remove left slot 0 as (%v, %d), want the moved (%v, %d)",
			l.leader[0], l.timer[0], wantLeader, wantTimer)
	}
	for l.N() > 1 {
		if err := l.LeaveAgent(0); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.LeaveAgent(0); err == nil {
		t.Fatal("leave emptied the population")
	}
}
