// compact_test.go property-tests the species forms of the baselines against
// the agent-level implementations they must mirror: the same recorded
// schedule is applied to both representations (the agent pair drives an
// explicit state-pair reaction through species.System.ApplyPair), after
// which the species counts must equal the reference multiset of agent
// states exactly — not statistically — at every checkpoint. The schedule is
// captured with sim.NewRecorder and replayed with Recording.Replay, so a
// divergence is reproducible from the failing seed.

package baseline

import (
	"testing"

	"sspp/internal/rng"
	"sspp/internal/sim"
	"sspp/internal/species"
)

const (
	mirrorSteps = 100_000
	mirrorEvery = 5_000
)

// mirrorAgainstAgent drives sp with the state pairs the agent-level
// protocol interacts under sched, checking the species multiset against the
// reference map every mirrorEvery interactions. keyOf must report agent i's
// current state key.
func mirrorAgainstAgent(t *testing.T, p sim.Protocol, sp *species.System,
	sched sim.Scheduler, steps int, keyOf func(i int) uint64) {
	t.Helper()
	n := p.N()
	for i := 0; i < steps; i++ {
		a, b := sched.Pair(n)
		if err := sp.ApplyPair(keyOf(a), keyOf(b)); err != nil {
			t.Fatalf("interaction %d (%d, %d): %v", i, a, b, err)
		}
		p.Interact(a, b)
		if (i+1)%mirrorEvery == 0 {
			compareCounts(t, i+1, n, sp, keyOf)
			if err := sp.SelfCheck(); err != nil {
				t.Fatalf("interaction %d: %v", i+1, err)
			}
		}
	}
	compareCounts(t, steps, n, sp, keyOf)
	if err := sp.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

// compareCounts requires the species multiset to equal the reference map
// built from the agent-level states: same occupied-state set, same counts,
// counts summing to n with none negative (SelfCheck enforces the latter
// two structurally as well).
func compareCounts(t *testing.T, step, n int, sp *species.System, keyOf func(i int) uint64) {
	t.Helper()
	ref := make(map[uint64]int64, n)
	for i := 0; i < n; i++ {
		ref[keyOf(i)]++
	}
	if sp.Occupied() != len(ref) {
		t.Fatalf("interaction %d: species occupies %d states, reference %d", step, sp.Occupied(), len(ref))
	}
	var sum int64
	sp.Each(func(key uint64, c int64) bool {
		if ref[key] != c {
			t.Fatalf("interaction %d: state %#x count %d, reference %d", step, key, c, ref[key])
		}
		sum += c
		return true
	})
	if sum != int64(n) {
		t.Fatalf("interaction %d: species counts sum to %d, want n=%d", step, sum, n)
	}
}

// TestCIWSpeciesMirrorsAgentLevel: 10⁵ recorded interactions applied to
// both representations leave identical multisets, and replaying the
// recording reproduces the agent-level run exactly.
func TestCIWSpeciesMirrorsAgentLevel(t *testing.T) {
	const n = 256
	agent := NewCIW(n)
	sp, err := species.NewSystem(agent.Compact(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := sim.NewRecorder(rng.New(77))
	mirrorAgainstAgent(t, agent, sp, rec, mirrorSteps, func(i int) uint64 {
		return uint64(agent.Rank(i))
	})

	// Replay the captured schedule into a fresh agent instance: the exact
	// final configuration must come back (the reproducibility contract the
	// mirror test itself rests on).
	replayed := NewCIW(n)
	sim.StepsSched(replayed, rec.Recording().Replay(), mirrorSteps)
	for i := 0; i < n; i++ {
		if replayed.Rank(i) != agent.Rank(i) {
			t.Fatalf("replay diverged at agent %d: rank %d vs %d", i, replayed.Rank(i), agent.Rank(i))
		}
	}
}

// TestLooseLESpeciesMirrorsAgentLevel: same mirror for the timeout
// dynamics, whose state space (leader bit × timer) stays tiny.
func TestLooseLESpeciesMirrorsAgentLevel(t *testing.T) {
	const n = 256
	agent := NewLooseLE(n, 24)
	sp, err := species.NewSystem(agent.Compact(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := sim.NewRecorder(rng.New(99))
	keyOf := func(i int) uint64 { return looseKey(agent.leader[i], agent.timer[i]) }
	mirrorAgainstAgent(t, agent, sp, rec, mirrorSteps, keyOf)
	if max := int(2 * (agent.Tau() + 1)); sp.Occupied() > max {
		t.Fatalf("LooseLE occupies %d states, state space bound is %d", sp.Occupied(), max)
	}

	replayed := NewLooseLE(n, 24)
	sim.StepsSched(replayed, rec.Recording().Replay(), mirrorSteps)
	for i := 0; i < n; i++ {
		if replayed.leader[i] != agent.leader[i] || replayed.timer[i] != agent.timer[i] {
			t.Fatalf("replay diverged at agent %d", i)
		}
	}
}

// TestNameRankSpeciesInvariants: NameRank's interned states cannot be
// mirrored key-by-key from outside the model, so the species run is checked
// structurally: counts always sum to n, the occupied-state count never
// exceeds n, committed ranks only ever come from [1, n], and a run that
// reports correct output reports a committed permutation.
func TestNameRankSpeciesInvariants(t *testing.T) {
	const n = 128
	names := rng.New(5)
	agent := NewNameRank(n, func(k int) int { return names.Intn(k) })
	sp, err := species.NewSystem(agent.Compact(), 2)
	if err != nil {
		t.Fatal(err)
	}
	sp.BindSource(rng.New(6))
	for round := 0; round < 40; round++ {
		sp.StepMany(500)
		if err := sp.SelfCheck(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if sp.Occupied() > n {
			t.Fatalf("round %d: %d occupied states for %d agents", round, sp.Occupied(), n)
		}
	}
	if !sp.Correct() {
		t.Fatalf("NameRank species did not commit a permutation within %d interactions", 40*500)
	}
	if !sp.CorrectRanking() {
		t.Fatal("correct output without a committed permutation")
	}
}

// TestCompactableCapability pins which baselines advertise a species form.
func TestCompactableCapability(t *testing.T) {
	if _, ok := interface{}((*CIW)(nil)).(sim.Compactable); !ok {
		t.Error("CIW lost the compactable capability")
	}
	if _, ok := interface{}((*LooseLE)(nil)).(sim.Compactable); !ok {
		t.Error("LooseLE lost the compactable capability")
	}
	if _, ok := interface{}((*NameRank)(nil)).(sim.Compactable); !ok {
		t.Error("NameRank lost the compactable capability")
	}
}
