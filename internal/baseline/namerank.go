// namerank.go implements the names-broadcast ranking sketched in Appendix D
// and used by [16]: every agent draws a name from [n³] u.a.r., the set of
// all names is spread by a union epidemic, and once an agent has seen n
// distinct names it ranks itself by the position of its own name in the
// sorted order. The protocol needs O(n·log n) bits per agent — the
// state-space cost the paper's deputy construction avoids — and completes in
// O(n·log n) interactions w.h.p. It is not self-stabilizing: it serves as a
// ranking-layer baseline (experiment T3/T11 context).

package baseline

import (
	"sort"

	"sspp/internal/coin"
	"sspp/internal/sim"
)

// NameRank is the names-broadcast ranking baseline.
type NameRank struct {
	n     int
	names []int64   // own name per agent
	seen  [][]int64 // sorted set of names seen, per agent
	rank  []int32   // 0 until decided
}

// NameRank ranks but is not Injectable: it is not self-stabilizing, so an
// adversarial rewrite has no recovery guarantee to measure. Its safe set is
// the committed permutations: committed agents never change rank, so a
// correct configuration is correct forever.
var (
	_ sim.Protocol   = (*NameRank)(nil)
	_ sim.Ranker     = (*NameRank)(nil)
	_ sim.SafeSetter = (*NameRank)(nil)
)

// NewNameRank returns a NameRank over n agents, drawing names from [n³]
// using sample. Name collisions (probability O(1/n)) leave some agents
// unranked; Correct() then stays false, mirroring the w.h.p. guarantee.
func NewNameRank(n int, sample coin.Sampler) *NameRank {
	nr := &NameRank{
		n:     n,
		names: make([]int64, n),
		seen:  make([][]int64, n),
		rank:  make([]int32, n),
	}
	space := n * n * n
	for i := range nr.names {
		nr.names[i] = int64(sample(space)) + 1
		nr.seen[i] = []int64{nr.names[i]}
	}
	return nr
}

// N returns the population size.
func (nr *NameRank) N() int { return len(nr.names) }

// Interact merges the two agents' name sets; an agent that has collected n
// names commits to the rank of its own name in sorted order.
func (nr *NameRank) Interact(a, b int) {
	if nr.rank[a] != 0 && nr.rank[b] != 0 {
		return // both committed: silent
	}
	merged := mergeSorted(nr.seen[a], nr.seen[b])
	nr.seen[a] = merged
	nr.seen[b] = append([]int64(nil), merged...)
	for _, i := range [2]int{a, b} {
		if nr.rank[i] == 0 && len(nr.seen[i]) >= nr.n {
			nr.rank[i] = int32(sort.Search(len(nr.seen[i]), func(k int) bool {
				return nr.seen[i][k] >= nr.names[i]
			})) + 1
		}
	}
}

// mergeSorted returns the sorted union of two sorted slices without
// duplicates.
func mergeSorted(x, y []int64) []int64 {
	out := make([]int64, 0, len(x)+len(y))
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		switch {
		case x[i] < y[j]:
			out = append(out, x[i])
			i++
		case x[i] > y[j]:
			out = append(out, y[j])
			j++
		default:
			out = append(out, x[i])
			i++
			j++
		}
	}
	out = append(out, x[i:]...)
	out = append(out, y[j:]...)
	return out
}

// Correct reports whether every agent has committed to a rank and the ranks
// form a permutation of [1, n].
func (nr *NameRank) Correct() bool {
	seen := make([]bool, nr.n)
	for _, r := range nr.rank {
		if r < 1 || int(r) > nr.n || seen[r-1] {
			return false
		}
		seen[r-1] = true
	}
	return true
}

// Rank returns agent i's committed rank (0 if undecided).
func (nr *NameRank) Rank(i int) int32 { return nr.rank[i] }

// RankOutput returns agent i's committed rank (0 if undecided).
func (nr *NameRank) RankOutput(i int) int32 { return nr.rank[i] }

// CorrectRanking reports whether the committed ranks form a permutation;
// for NameRank this coincides with Correct.
func (nr *NameRank) CorrectRanking() bool { return nr.Correct() }

// Leaders returns the number of agents committed to rank 1.
func (nr *NameRank) Leaders() int {
	leaders := 0
	for _, r := range nr.rank {
		if r == 1 {
			leaders++
		}
	}
	return leaders
}

// LeaderIndex returns the unique rank-1 agent, or ok = false when there is
// not exactly one.
func (nr *NameRank) LeaderIndex() (int, bool) {
	idx, leaders := -1, 0
	for i, r := range nr.rank {
		if r == 1 {
			idx = i
			leaders++
		}
	}
	return idx, leaders == 1
}

// InSafeSet reports whether every agent has committed and the ranks form a
// permutation: committed agents never change rank and a fully committed
// pair interacts silently, so such a configuration is correct forever.
func (nr *NameRank) InSafeSet() bool { return nr.Correct() }

// Bits returns the current memory footprint of agent i in bits: 3·log₂(n)
// per stored name. This measures the O(n·log n)-bit cost the paper's deputy
// broadcast avoids.
func (nr *NameRank) Bits(i int) int {
	perName := 1
	for v := 2; v < nr.n*nr.n*nr.n; v <<= 1 {
		perName++
	}
	return perName * (len(nr.seen[i]) + 1)
}
