package a

import (
	"encoding/json"
	"sort"
)

// Result marks functions that touch it as artifact-emitting.
type Result struct {
	Names []string
	Total int
}

type KeyDelta struct {
	Key   uint64
	Delta int64
}

// unsorted leaks map order straight into an emitted Result.
func unsorted(m map[string]int) Result {
	var r Result
	for k := range m { // want `iteration over map map\[string\]int in artifact-emitting function unsorted`
		r.Names = append(r.Names, k)
	}
	return r
}

// collectThenSort is the blessed idiom: append-only body, sorted after.
func collectThenSort(m map[string]int) Result {
	var r Result
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	r.Names = keys
	return r
}

// deltaDiff mirrors the workload trace recorder: conditional appends of
// composite literals onto a selector target, sorted after both loops.
func deltaDiff(before, after map[uint64]int64) Result {
	var r Result
	var deltas []KeyDelta
	for k, c := range after {
		if d := c - before[k]; d != 0 {
			deltas = append(deltas, KeyDelta{Key: k, Delta: d})
		}
	}
	for k, c := range before {
		if _, live := after[k]; !live {
			deltas = append(deltas, KeyDelta{Key: k, Delta: -c})
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Key < deltas[j].Key })
	r.Total = len(deltas)
	return r
}

// deltaDiffUnsorted is the same shape with the sort removed: flagged.
func deltaDiffUnsorted(before, after map[uint64]int64) Result {
	var r Result
	var deltas []KeyDelta
	for k, c := range after { // want `iteration over map map\[uint64\]int64 in artifact-emitting function deltaDiffUnsorted`
		if d := c - before[k]; d != 0 {
			deltas = append(deltas, KeyDelta{Key: k, Delta: d})
		}
	}
	r.Total = len(deltas)
	return r
}

// impureBody calls a function inside the loop: not a recognizable collect,
// flagged even though a sort follows.
func impureBody(m map[string]int) Result {
	var r Result
	var keys []string
	for k := range m { // want `iteration over map map\[string\]int in artifact-emitting function impureBody`
		keys = append(keys, decorate(k))
	}
	sort.Strings(keys)
	r.Names = keys
	return r
}

func decorate(s string) string { return s + "!" }

// viaJSON: encoding/json marks the function as emitting.
func viaJSON(m map[string]int) ([]byte, error) {
	var names []string
	for k := range m { // want `iteration over map map\[string\]int in artifact-emitting function viaJSON`
		names = append(names, k)
	}
	return json.Marshal(names)
}

// transitive: callers of emitting functions are emitting too.
func transitive(m map[string]int) Result {
	var names []string
	for k := range m { // want `iteration over map map\[string\]int in artifact-emitting function transitive`
		names = append(names, k)
	}
	return sink(names)
}

func sink(names []string) Result { return Result{Names: names} }

// notEmitting never reaches an artifact: map order is its own business.
func notEmitting(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// keyless range cannot observe order.
func keyless(m map[string]int) Result {
	n := 0
	for range m {
		n++
	}
	return Result{Total: n}
}

// closures inherit the enclosing declaration's emitter status, and the
// sort may live inside the same literal.
func inClosure(m map[uint64]int64) Result {
	build := func() []uint64 {
		keys := make([]uint64, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		return keys
	}
	return Result{Total: len(build())}
}

func allowlisted(m map[string]int) Result {
	var r Result
	//sspp:allow maporder -- fixture: order laundered by a scheme this analyzer cannot see
	for k := range m {
		r.Names = append(r.Names, k)
	}
	return r
}
