// Package maporder guards the repository's byte-identical-artifact claims
// against Go's randomized map iteration order. Ensemble/Compare JSON is
// pinned byte-identical at any worker count, recorded workload traces
// replay bit-exactly across backends, and golden tests diff raw bytes —
// so map iteration order must never reach a Result, a Cell, a JSON
// encoder, or rendered output.
//
// The analyzer marks a function as artifact-emitting when it (directly or
// through package-local calls) touches a named Result or Cell type, calls
// into encoding/json, or renders to a writer via fmt.Fprint*. Inside an
// emitting function, every `for k := range m` over a map is flagged unless
// it is a recognizable collect-then-sort idiom: the loop body only defines
// locals, branches, and appends onto slices, and every appended-to slice is
// passed to a sort.*/slices.Sort* call after the loop in the same function.
// Anything cleverer needs an //sspp:allow maporder with a reason.
//
// The analysis is package-local: a map range that leaks order through a
// cross-package call chain is out of reach (that chain crosses the public
// API, where returned data is already required to be order-normalized).
// Test files are skipped.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sspp/internal/analyzers/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "map iteration order must not reach Results, Cells, JSON, or rendered artifacts; collect and sort first",
	Run:  run,
}

// artifactTypes are the named types whose presence marks a function as
// producing deterministic artifacts (the engine's Result structs and the
// Ensemble's Cell grid entries).
var artifactTypes = map[string]bool{"Result": true, "Cell": true}

func run(pass *analysis.Pass) error {
	// funcs maps this package's declared functions (by object) to their
	// declarations, for the package-local call graph.
	funcs := map[*types.Func]*ast.FuncDecl{}
	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		filename := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(filename, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				funcs[obj] = fd
			}
			decls = append(decls, fd)
		}
	}

	emitting := map[*ast.FuncDecl]bool{}
	callees := map[*ast.FuncDecl][]*types.Func{}
	for _, fd := range decls {
		emitting[fd] = emitsDirectly(pass, fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn, ok := calleeFunc(pass, call); ok && fn.Pkg() == pass.Pkg {
				callees[fd] = append(callees[fd], fn)
			}
			return true
		})
	}
	// Propagate emitter status up the call graph to a fixed point: a caller
	// of an emitting function feeds the same artifact.
	for changed := true; changed; {
		changed = false
		for _, fd := range decls {
			if emitting[fd] {
				continue
			}
			for _, fn := range callees[fd] {
				if cd, ok := funcs[fn]; ok && emitting[cd] {
					emitting[fd] = true
					changed = true
					break
				}
			}
		}
	}

	for _, fd := range decls {
		if !emitting[fd] {
			continue
		}
		checkFunc(pass, fd)
	}
	return nil
}

// emitsDirectly reports whether fd itself touches an artifact sink: a
// Result/Cell-typed value, encoding/json, or fmt.Fprint* rendering.
func emitsDirectly(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			var obj types.Object
			if o, ok := pass.TypesInfo.Uses[n]; ok {
				obj = o
			} else if o, ok := pass.TypesInfo.Defs[n]; ok {
				obj = o
			}
			if obj != nil && touchesArtifactType(obj.Type()) {
				found = true
			}
		case *ast.CallExpr:
			if fn, ok := calleeFunc(pass, n); ok && fn.Pkg() != nil {
				switch {
				case fn.Pkg().Path() == "encoding/json":
					found = true
				case fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint"):
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// touchesArtifactType walks pointer/slice/array/map/chan structure looking
// for a named Result or Cell type.
func touchesArtifactType(t types.Type) bool {
	for depth := 0; t != nil && depth < 8; depth++ {
		switch u := t.(type) {
		case *types.Named:
			if artifactTypes[u.Obj().Name()] {
				return true
			}
			return false
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		case *types.Chan:
			t = u.Elem()
		default:
			return false
		}
	}
	return false
}

// calleeFunc resolves the *types.Func a call invokes, when it statically
// names one (plain call or method call; closures and func values resolve
// to nothing).
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) (*types.Func, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, ok := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn, ok
	case *ast.SelectorExpr:
		fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn, ok
	}
	return nil, false
}

// checkFunc flags unlaundered map ranges in one emitting function.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rs.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		// A keyless `for range m` cannot observe the order.
		if rs.Key == nil {
			return true
		}
		if sortedCollect(pass, fd, rs) {
			return true
		}
		pass.Reportf(rs.Pos(), "iteration over map %s in artifact-emitting function %s depends on Go's randomized map order; collect into a slice and sort before emitting", tv.Type, fd.Name.Name)
		return true
	})
}

// sortedCollect reports whether rs is a collect-then-sort idiom: the body
// only defines locals, branches, and appends onto slices, and each
// appended-to slice is sorted after the loop within the innermost function
// literal or declaration enclosing rs.
func sortedCollect(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) bool {
	targets := map[string]bool{}
	clean := true
	var walkStmt func(s ast.Stmt)
	walkStmt = func(s ast.Stmt) {
		if !clean {
			return
		}
		switch s := s.(type) {
		case *ast.BlockStmt:
			for _, sub := range s.List {
				walkStmt(sub)
			}
		case *ast.IfStmt:
			if s.Init != nil {
				walkStmt(s.Init)
			}
			walkStmt(s.Body)
			if s.Else != nil {
				walkStmt(s.Else)
			}
		case *ast.BranchStmt:
			// continue/break keep the collect loop clean.
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				// Defining loop-locals (including from map index reads) is
				// order-free as long as they stay inside the loop.
				for _, rhs := range s.Rhs {
					if hasImpureCall(pass, rhs) {
						clean = false
					}
				}
				return
			}
			if target, ok := appendTarget(pass, s); ok {
				targets[target] = true
				return
			}
			clean = false
		default:
			clean = false
		}
	}
	walkStmt(rs.Body)
	if !clean || len(targets) == 0 {
		return false
	}
	// Every append target must be sorted after the loop, within the
	// innermost enclosing function (declaration or literal).
	body := enclosingFuncBody(fd, rs)
	for target := range targets {
		if !sortedAfter(pass, body, rs.End(), target) {
			return false
		}
	}
	return true
}

// appendTarget matches `x = append(x, ...)` (any expression x, compared by
// rendering) and returns the rendered target.
func appendTarget(pass *analysis.Pass, s *ast.AssignStmt) (string, bool) {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return "", false
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return "", false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return "", false
	}
	if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return "", false
	}
	lhs := types.ExprString(s.Lhs[0])
	if types.ExprString(call.Args[0]) != lhs {
		return "", false
	}
	for _, arg := range call.Args[1:] {
		if hasImpureCall(pass, arg) {
			return "", false
		}
	}
	return lhs, true
}

// hasImpureCall reports whether expr contains a call to anything but the
// order-free builtins — calls could observe or publish iteration order.
func hasImpureCall(pass *analysis.Pass, expr ast.Expr) bool {
	impure := false
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				return true
			}
		}
		impure = true
		return false
	})
	return impure
}

// enclosingFuncBody returns the body of the innermost function literal in
// fd that contains pos, or fd's own body.
func enclosingFuncBody(fd *ast.FuncDecl, rs *ast.RangeStmt) *ast.BlockStmt {
	body := fd.Body
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if lit, ok := n.(*ast.FuncLit); ok {
			if lit.Body.Pos() <= rs.Pos() && rs.End() <= lit.Body.End() {
				body = lit.Body
			}
		}
		return true
	})
	return body
}

// sortedAfter reports whether a sort.*/slices.Sort* call with target as an
// argument appears after pos within body.
func sortedAfter(pass *analysis.Pass, body *ast.BlockStmt, pos token.Pos, target string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		fn, ok := calleeFunc(pass, call)
		if !ok || fn.Pkg() == nil {
			return true
		}
		path, name := fn.Pkg().Path(), fn.Name()
		isSort := path == "sort" || (path == "slices" && strings.HasPrefix(name, "Sort"))
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			if types.ExprString(arg) == target {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
