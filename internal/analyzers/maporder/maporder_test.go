package maporder_test

import (
	"testing"

	"sspp/internal/analyzers/analysistest"
	"sspp/internal/analyzers/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, maporder.Analyzer, "a")
}
