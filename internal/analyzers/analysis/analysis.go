// Package analysis is a deliberately small, dependency-free mirror of the
// golang.org/x/tools/go/analysis API surface this repository needs. The
// toolchain baked into the build environment carries no module cache and no
// network, so the real x/tools framework is unavailable; the project's
// analyzers (internal/analyzers/...) are written against this shim instead.
// The shapes match x/tools closely enough that a future PR with network
// access can swap the import path and delete this package.
//
// What is intentionally missing compared to x/tools: facts (no cross-package
// analysis state), result dependencies between analyzers (every analyzer is
// self-contained per package), and suggested fixes. What is added: a
// project-wide suppression convention —
//
//	//sspp:allow <analyzer> -- <reason>
//
// placed on (or on the line directly above) an offending line silences that
// analyzer there. The reason is mandatory; a bare //sspp:allow is itself a
// diagnostic. Suppressions are handled centrally in Unit.Check so every
// analyzer gets them for free and fixtures can test them uniformly.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer is one static check: a name (used in diagnostics and in
// //sspp:allow comments), a human-readable invariant statement, and a Run
// function applied to one type-checked package at a time.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass presents one type-checked package to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, attributed to the analyzer that produced it.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// A Unit is one type-checked package ready to be analyzed: the parsed files
// (with comments), the checked *types.Package, and the filled Info maps.
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated. Both drivers (cmd/ssppvet and analysistest) type-check with it.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Check runs every analyzer over the unit, applies //sspp:allow
// suppressions, and returns the surviving diagnostics in file/position
// order. Analyzer errors (not findings — failures of the analyzer itself)
// abort the whole check.
func (u *Unit) Check(analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     u.Files,
			Pkg:       u.Pkg,
			TypesInfo: u.Info,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	diags = append(diags, u.filterAllowed(&diags)...)
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := u.Fset.Position(diags[i].Pos), u.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// allowRe matches the suppression convention. The reason after "--" is
// required: an allow without a recorded why is how invariant rot starts.
var allowRe = regexp.MustCompile(`^//sspp:allow\s+([a-zA-Z][a-zA-Z0-9_,]*)\s*(?:--\s*(.*))?$`)

// filterAllowed drops suppressed diagnostics from *diags in place and
// returns extra diagnostics for malformed allow comments (missing reason).
// An allow comment covers its own line and the following line, so it works
// both trailing the offending statement and on its own line above it.
func (u *Unit) filterAllowed(diags *[]Diagnostic) []Diagnostic {
	type key struct {
		file string
		line int
	}
	allowed := map[key]map[string]bool{}
	var malformed []Diagnostic
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//sspp:allow") {
					continue
				}
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil || strings.TrimSpace(m[2]) == "" {
					malformed = append(malformed, Diagnostic{
						Analyzer: "allow",
						Pos:      c.Pos(),
						Message:  `malformed //sspp:allow: want "//sspp:allow <analyzer> -- <reason>" with a non-empty reason`,
					})
					continue
				}
				pos := u.Fset.Position(c.Pos())
				for _, name := range strings.Split(m[1], ",") {
					for _, line := range []int{pos.Line, pos.Line + 1} {
						k := key{pos.Filename, line}
						if allowed[k] == nil {
							allowed[k] = map[string]bool{}
						}
						allowed[k][name] = true
					}
				}
			}
		}
	}
	if len(allowed) == 0 {
		return malformed
	}
	kept := (*diags)[:0]
	for _, d := range *diags {
		pos := u.Fset.Position(d.Pos)
		if allowed[key{pos.Filename, pos.Line}][d.Analyzer] {
			continue
		}
		kept = append(kept, d)
	}
	*diags = kept
	return malformed
}
