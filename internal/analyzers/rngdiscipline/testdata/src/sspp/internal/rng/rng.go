// The real sspp/internal/rng is the one package allowed to touch stdlib
// randomness sources; the analyzer must stay silent here.
package rng

import (
	"math/rand"
	"time"
)

func seedOfLastResort() int64 { return time.Now().UnixNano() }

func legacyDraw() int { return rand.Int() }
