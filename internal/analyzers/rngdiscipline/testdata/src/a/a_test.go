package a

import "time"

// Test files may read the wall clock (deadlines, timing); the import bans
// still apply but time.Now is exempt here.
func deadline() time.Time { return time.Now().Add(time.Second) }
