package a

import (
	"crypto/rand"     // want `import of crypto/rand breaks seed-determinism`
	mrand "math/rand" // want `import of math/rand breaks seed-determinism`
	"time"
)

func draws() int {
	b := make([]byte, 8)
	rand.Read(b)
	return mrand.Int()
}

func stamp() time.Time {
	return time.Now() // want `time.Now reads the wall clock in simulation code`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since reads the wall clock in simulation code`
}

// durations and clock-free time APIs are fine.
func window() time.Duration { return 3 * time.Second }

func allowedStamp() int64 {
	//sspp:allow rngdiscipline -- harness wall-clock timing, not simulation state
	return time.Now().UnixNano()
}
