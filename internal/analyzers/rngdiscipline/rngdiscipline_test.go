package rngdiscipline_test

import (
	"testing"

	"sspp/internal/analyzers/analysistest"
	"sspp/internal/analyzers/rngdiscipline"
)

func TestRNGDiscipline(t *testing.T) {
	analysistest.Run(t, rngdiscipline.Analyzer, "a", "sspp/internal/rng")
}
