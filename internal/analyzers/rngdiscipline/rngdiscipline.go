// Package rngdiscipline enforces the repository's randomness discipline:
// every stochastic draw flows through sspp/internal/rng — xoshiro256++
// streams forked deterministically from a single seed — because every
// headline artifact (worker-count-byte-identical Ensemble JSON, bit-exact
// trace replay, matched-seed backend equivalence) is a deterministic
// function of that seed. A single math/rand call or wall-clock read in
// simulation code silently breaks all three.
//
// Flagged outside internal/rng:
//   - importing math/rand, math/rand/v2, or crypto/rand;
//   - calling time.Now, time.Since, or time.Until in non-test code
//     (wall-clock reads feeding simulation state or artifacts; benchmark
//     harness timing is the intended //sspp:allow case).
//
// Test files keep the import bans (property tests must replay from seeds
// too) but may read the wall clock for deadlines and timing.
package rngdiscipline

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"sspp/internal/analyzers/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "rngdiscipline",
	Doc:  "all randomness must come from sspp/internal/rng forked streams; no stdlib RNGs, no wall clock in simulation code",
	Run:  run,
}

var bannedImports = map[string]string{
	"math/rand":    "use a forked *rng.PRNG stream instead",
	"math/rand/v2": "use a forked *rng.PRNG stream instead",
	"crypto/rand":  "simulations must be replayable from a uint64 seed",
}

var bannedCalls = map[string]bool{
	"time.Now":   true,
	"time.Since": true,
	"time.Until": true,
}

func run(pass *analysis.Pass) error {
	// internal/rng is the one place allowed to define randomness.
	if path := pass.Pkg.Path(); path == "sspp/internal/rng" || strings.HasSuffix(path, "/internal/rng") {
		return nil
	}
	for _, f := range pass.Files {
		filename := pass.Fset.Position(f.Pos()).Filename
		isTest := strings.HasSuffix(filename, "_test.go")
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, banned := bannedImports[path]; banned {
				pass.Reportf(imp.Pos(), "import of %s breaks seed-determinism: %s", path, why)
			}
		}
		if isTest {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			if name := fn.FullName(); bannedCalls[name] {
				pass.Reportf(call.Pos(), "%s reads the wall clock in simulation code; results must be a function of the seed alone", name)
			}
			return true
		})
	}
	return nil
}
