package capdispatch_test

import (
	"testing"

	"sspp/internal/analyzers/analysistest"
	"sspp/internal/analyzers/capdispatch"
)

func TestCapDispatch(t *testing.T) {
	analysistest.Run(t, capdispatch.Analyzer, "a", "sspp/internal/sim")
}
