package a

import "sspp/internal/sim"

// localCap is not a sim capability: asserting it is fine.
type localCap interface {
	Flush() error
}

func adHoc(p sim.Protocol) int32 {
	if rk, ok := p.(sim.Ranker); ok { // want `capability interface sim\.Ranker outside internal/sim/capability\.go`
		return rk.RankOutput(0)
	}
	return 0
}

func adHocSwitch(p sim.Protocol) bool {
	switch p.(type) {
	case sim.SafeSetter: // want `capability interface sim\.SafeSetter outside internal/sim/capability\.go`
		return true
	case localCap:
		return false
	}
	return false
}

func viaHelper(p sim.Protocol) int32 {
	if rk, ok := sim.AsRanker(p); ok {
		return rk.RankOutput(0)
	}
	return 0
}

func assertLocal(v any) bool {
	_, ok := v.(localCap)
	return ok
}

func allowlisted(p sim.Protocol) bool {
	_, ok := p.(sim.Compactable) //sspp:allow capdispatch -- fixture: documented escape hatch
	return ok
}
