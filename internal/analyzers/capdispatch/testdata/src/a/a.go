package a

import "sspp/internal/sim"

// localCap is not a sim capability: asserting it is fine.
type localCap interface {
	Flush() error
}

func adHoc(p sim.Protocol) int32 {
	if rk, ok := p.(sim.Ranker); ok { // want `capability interface sim\.Ranker outside internal/sim/capability\.go`
		return rk.RankOutput(0)
	}
	return 0
}

func adHocSwitch(p sim.Protocol) bool {
	switch p.(type) {
	case sim.SafeSetter: // want `capability interface sim\.SafeSetter outside internal/sim/capability\.go`
		return true
	case localCap:
		return false
	}
	return false
}

func viaHelper(p sim.Protocol) int32 {
	if rk, ok := sim.AsRanker(p); ok {
		return rk.RankOutput(0)
	}
	return 0
}

func assertLocal(v any) bool {
	_, ok := v.(localCap)
	return ok
}

func allowlisted(p sim.Protocol) bool {
	_, ok := p.(sim.Compactable) //sspp:allow capdispatch -- fixture: documented escape hatch
	return ok
}

func adHocNamed(p sim.Protocol) (int, bool) {
	if li, ok := p.(sim.LeaderIndexer); ok { // want `capability interface sim\.LeaderIndexer outside internal/sim/capability\.go`
		return li.LeaderIndex()
	}
	return 0, false
}

// An anonymous interface with a capability's exact method-name set is the
// same ad-hoc dispatch with the name erased.
func adHocAnonymous(p sim.Protocol) (int, bool) {
	if li, ok := p.(interface{ LeaderIndex() (int, bool) }); ok { // want `anonymous interface assertion has the method set of capability sim\.LeaderIndexer`
		return li.LeaderIndex()
	}
	return 0, false
}

func adHocAnonymousSwitch(p sim.Protocol) bool {
	switch p.(type) {
	case interface{ InSafeSet() bool }: // want `anonymous interface assertion has the method set of capability sim\.SafeSetter`
		return true
	}
	return false
}

// A proper subset of a capability's method set is a narrower probe, not
// capability dispatch: legal.
func subsetProbe(p sim.Protocol) bool {
	_, ok := p.(interface{ CorrectRanking() bool })
	return ok
}

// A superset is not the capability either.
func supersetProbe(p sim.Protocol) bool {
	_, ok := p.(interface {
		LeaderIndex() (int, bool)
		Flush() error
	})
	return ok
}
