// Even inside the sim package, dispatch outside capability.go must go
// through the helpers: the file boundary is the invariant.
package sim

func engineProbe(p Protocol) bool {
	_, ok := p.(SafeSetter) // want `capability interface sim\.SafeSetter outside internal/sim/capability\.go`
	return ok
}
