// Fixture shadow of the real sspp/internal/sim capability surface: the
// interfaces the analyzer polices plus the As* helpers, whose assertions
// are legal because they live in capability.go.
package sim

type Protocol interface {
	N() int
	Interact(a, b int)
}

type Ranker interface {
	RankOutput(i int) int32
}

type LeaderIndexer interface {
	LeaderIndex() (int, bool)
}

type SafeSetter interface {
	InSafeSet() bool
}

type Compactable interface {
	Compact() int
}

func AsRanker(p any) (Ranker, bool) {
	r, ok := p.(Ranker)
	return r, ok
}

func AsLeaderIndexer(p any) (LeaderIndexer, bool) {
	li, ok := p.(LeaderIndexer)
	return li, ok
}

func AsSafeSetter(p any) (SafeSetter, bool) {
	s, ok := p.(SafeSetter)
	return s, ok
}
