// Package capdispatch keeps the DESIGN §7–§10 capability table the single
// source of truth for protocol capability dispatch. The engine and facade
// discover optional protocol capabilities (Ranker, SafeSetter, Compactable,
// Churnable, …) through the As* helpers in internal/sim/capability.go; a
// raw type assertion against a capability interface anywhere else is an
// ad-hoc dispatch site the capability table does not know about — exactly
// how a future backend silently diverges from the documented degradation
// rules.
//
// Type assertions and type switches against the capability interfaces are
// legal only in internal/sim/capability.go (where the helpers live), and an
// anonymous interface literal whose method-name set exactly matches a
// capability is the same dispatch with the name erased — flagged too.
// Narrower probes (a proper subset of a capability's methods) stay legal.
// Test files are exempt: asserting a capability is how tests state
// expectations about the table itself.
package capdispatch

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"sspp/internal/analyzers/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "capdispatch",
	Doc:  "capability interfaces may be type-asserted only in internal/sim/capability.go; use the sim.As* dispatch helpers",
	Run:  run,
}

// capabilities is the closed set of dispatch interfaces from
// internal/sim/capability.go. Adding a capability means adding it here, in
// capabilityMethods below, and adding its As* helper next to the interface —
// which is the point.
var capabilities = map[string]bool{
	"Ranker":            true,
	"LeaderIndexer":     true,
	"SafeSetter":        true,
	"Injectable":        true,
	"Snapshotter":       true,
	"Clocked":           true,
	"Churnable":         true,
	"CountChurnable":    true,
	"StateKeyer":        true,
	"Compactable":       true,
	"CountBased":        true,
	"ContinuousStepper": true,
}

// capabilityMethods maps each capability to its exact method-name set, in
// sorted order. An anonymous interface assertion whose method names equal a
// capability's set is the same ad-hoc dispatch with the name erased — the
// historical `interface{ LeaderIndex() (int, bool) }` in system.go predated
// sim.LeaderIndexer exactly this way. Proper subsets stay legal: probing one
// method of a wider capability (e.g. `interface{ CorrectRanking() bool }`)
// is a narrower question than capability dispatch.
var capabilityMethods = map[string][]string{
	"Ranker":            {"CorrectRanking", "RankOutput"},
	"LeaderIndexer":     {"LeaderIndex"},
	"SafeSetter":        {"InSafeSet"},
	"Injectable":        {"Inject", "InjectTransient"},
	"Snapshotter":       {"SnapshotInto"},
	"Clocked":           {"Clock"},
	"Churnable":         {"ChurnBounds", "JoinAgent", "LeaveAgent"},
	"CountChurnable":    {"CanChurn", "ChurnBounds", "JoinState", "LeaveState"},
	"StateKeyer":        {"StateKey"},
	"Compactable":       {"Compact"},
	"CountBased":        {"BindSource", "StepMany"},
	"ContinuousStepper": {"ParallelTime", "StartContinuous"},
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		filename := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(filename, "_test.go") {
			continue
		}
		if filepath.Base(filename) == "capability.go" && strings.HasSuffix(pass.Pkg.Path(), "internal/sim") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.TypeAssertExpr:
				if n.Type != nil { // nil Type is the x.(type) of a type switch
					check(pass, n.Type)
				}
			case *ast.TypeSwitchStmt:
				for _, clause := range n.Body.List {
					cc, ok := clause.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, texpr := range cc.List {
						check(pass, texpr)
					}
				}
			}
			return true
		})
	}
	return nil
}

// check reports texpr when it names a capability interface defined in the
// internal/sim package, or is an anonymous interface whose method-name set
// exactly matches one of the capabilities.
func check(pass *analysis.Pass, texpr ast.Expr) {
	tv, ok := pass.TypesInfo.Types[texpr]
	if !ok || tv.Type == nil {
		return
	}
	switch t := tv.Type.(type) {
	case *types.Named:
		obj := t.Obj()
		if obj.Pkg() == nil || !capabilities[obj.Name()] {
			return
		}
		if !strings.HasSuffix(obj.Pkg().Path(), "internal/sim") {
			return
		}
		if _, isIface := t.Underlying().(*types.Interface); !isIface {
			return
		}
		pass.Reportf(texpr.Pos(), "type assertion against capability interface sim.%s outside internal/sim/capability.go; dispatch through sim.As%s so the capability table stays the single source of truth", obj.Name(), obj.Name())
	case *types.Interface:
		if name := matchCapabilityShape(t); name != "" {
			pass.Reportf(texpr.Pos(), "anonymous interface assertion has the method set of capability sim.%s; dispatch through sim.As%s so the capability table stays the single source of truth", name, name)
		}
	}
}

// matchCapabilityShape returns the capability whose method-name set the
// interface equals exactly, or "".
func matchCapabilityShape(iface *types.Interface) string {
	names := make([]string, iface.NumMethods())
	for i := range names {
		names[i] = iface.Method(i).Name()
	}
	sort.Strings(names)
	for cap, methods := range capabilityMethods {
		if len(methods) != len(names) {
			continue
		}
		equal := true
		for i := range methods {
			if methods[i] != names[i] {
				equal = false
				break
			}
		}
		if equal {
			return cap
		}
	}
	return ""
}
