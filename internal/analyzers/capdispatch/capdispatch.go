// Package capdispatch keeps the DESIGN §7–§10 capability table the single
// source of truth for protocol capability dispatch. The engine and facade
// discover optional protocol capabilities (Ranker, SafeSetter, Compactable,
// Churnable, …) through the As* helpers in internal/sim/capability.go; a
// raw type assertion against a capability interface anywhere else is an
// ad-hoc dispatch site the capability table does not know about — exactly
// how a future backend silently diverges from the documented degradation
// rules.
//
// Type assertions and type switches against the capability interfaces are
// legal only in internal/sim/capability.go (where the helpers live). Test
// files are exempt: asserting a capability is how tests state expectations
// about the table itself.
package capdispatch

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"

	"sspp/internal/analyzers/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "capdispatch",
	Doc:  "capability interfaces may be type-asserted only in internal/sim/capability.go; use the sim.As* dispatch helpers",
	Run:  run,
}

// capabilities is the closed set of dispatch interfaces from
// internal/sim/capability.go. Adding a capability means adding it here and
// adding its As* helper next to the interface — which is the point.
var capabilities = map[string]bool{
	"Ranker":            true,
	"SafeSetter":        true,
	"Injectable":        true,
	"Snapshotter":       true,
	"Clocked":           true,
	"Churnable":         true,
	"CountChurnable":    true,
	"StateKeyer":        true,
	"Compactable":       true,
	"CountBased":        true,
	"ContinuousStepper": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		filename := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(filename, "_test.go") {
			continue
		}
		if filepath.Base(filename) == "capability.go" && strings.HasSuffix(pass.Pkg.Path(), "internal/sim") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.TypeAssertExpr:
				if n.Type != nil { // nil Type is the x.(type) of a type switch
					check(pass, n.Type)
				}
			case *ast.TypeSwitchStmt:
				for _, clause := range n.Body.List {
					cc, ok := clause.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, texpr := range cc.List {
						check(pass, texpr)
					}
				}
			}
			return true
		})
	}
	return nil
}

// check reports texpr when it names a capability interface defined in the
// internal/sim package.
func check(pass *analysis.Pass, texpr ast.Expr) {
	tv, ok := pass.TypesInfo.Types[texpr]
	if !ok || tv.Type == nil {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !capabilities[obj.Name()] {
		return
	}
	if !strings.HasSuffix(obj.Pkg().Path(), "internal/sim") {
		return
	}
	if _, isIface := named.Underlying().(*types.Interface); !isIface {
		return
	}
	pass.Reportf(texpr.Pos(), "type assertion against capability interface sim.%s outside internal/sim/capability.go; dispatch through sim.As%s so the capability table stays the single source of truth", obj.Name(), obj.Name())
}
