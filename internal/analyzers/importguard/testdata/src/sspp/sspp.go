// The root facade may import anything internal: it IS the public API.
package sspp

import (
	"sspp/internal/core"
	"sspp/internal/species"
)

func New() int { return core.N() + species.Counts() }
