package main

import "sspp"

func main() { _ = sspp.New() }
