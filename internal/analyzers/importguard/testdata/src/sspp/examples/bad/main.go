package main

import (
	"sspp"
	"sspp/internal/core" // want `examples are public-API demos`
)

func main() { _ = sspp.New() + core.N() }
