package species

func Counts() int { return 0 }
