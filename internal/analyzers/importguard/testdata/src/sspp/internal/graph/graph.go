package graph

func Edges() int { return 0 }
