package sim

import (
	"sspp/internal/core" // want `engine layer internal/sim must stay protocol-agnostic`
	"sspp/internal/graph"
)

func Run() int { return core.N() + graph.Edges() }
