package experiments

import "sspp/internal/species"

func S1() int { return species.Counts() }
