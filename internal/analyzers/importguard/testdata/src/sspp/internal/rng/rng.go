package rng

import "sspp/internal/core" // want `internal/rng is the determinism root and must not import module packages`

func Draw() int { return core.N() }
