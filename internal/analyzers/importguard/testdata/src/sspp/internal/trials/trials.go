package trials

import "sspp/internal/species" // want `reaches into the species backend's internals`

func Run() int { return species.Counts() }
