package core

func N() int { return 1 }
