package main

import "sspp/internal/trials" // want `sspp/cmd/rogue imports sspp/internal/trials outside the cmd allowlist`

func main() { _ = trials.Run() }
