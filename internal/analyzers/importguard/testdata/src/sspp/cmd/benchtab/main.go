package main

import (
	"sspp/internal/core" // want `sspp/cmd/benchtab imports sspp/internal/core outside the cmd allowlist`
	"sspp/internal/experiments"
	"sspp/internal/trials"
)

func main() { _ = experiments.S1() + core.N() + trials.Run() }
