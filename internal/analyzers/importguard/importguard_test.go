package importguard_test

import (
	"os"
	"testing"

	"sspp/internal/analyzers/analysistest"
	"sspp/internal/analyzers/importguard"
)

func TestImportGuard(t *testing.T) {
	analysistest.Run(t, importguard.Analyzer,
		"sspp",
		"sspp/internal/rng",
		"sspp/internal/sim",
		"sspp/internal/trials",
		"sspp/internal/experiments",
		"sspp/examples/good",
		"sspp/examples/bad",
		"sspp/cmd/benchtab",
		"sspp/cmd/rogue",
	)
}

// TestParityWithCheckImportsScript is the transition contract for deleting
// scripts/check-imports.sh: every violation class the shell script caught
// is covered by an importguard fixture, and the script itself is gone.
//
//	script rule                                  fixture
//	examples/ importing sspp/internal/...   ->   sspp/examples/bad
//	cmd/ internal import outside allowlist  ->   sspp/cmd/rogue, sspp/cmd/benchtab
//	cmd allowlist entries stay legal        ->   sspp/cmd/benchtab (experiments, trials)
//
// The analyzer additionally enforces layering rules (engine purity, rng
// leaf, species encapsulation) the script never could.
func TestParityWithCheckImportsScript(t *testing.T) {
	if _, err := os.Stat("../../../scripts/check-imports.sh"); err == nil {
		t.Errorf("scripts/check-imports.sh still exists; importguard replaced it — delete the script and its CI step")
	}
	// The fixture wants asserted by TestImportGuard are the parity proof;
	// this test pins the script's allowlist table against the analyzer's.
	for pkg, want := range map[string][]string{
		"sspp/cmd/benchtab":    {"sspp/internal/experiments", "sspp/internal/trials"},
		"sspp/cmd/electsim":    {"sspp/internal/trace"},
		"sspp/cmd/statespace":  {"sspp/internal/core"},
		"sspp/cmd/verifyspace": {"sspp/internal/modelcheck"},
	} {
		got := importguard.CmdAllowlist(pkg)
		if len(got) != len(want) {
			t.Errorf("cmd allowlist for %s = %v, want %v (check-imports.sh parity)", pkg, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("cmd allowlist for %s = %v, want %v (check-imports.sh parity)", pkg, got, want)
			}
		}
	}
}
