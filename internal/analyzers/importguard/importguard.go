// Package importguard is the compiled successor of scripts/check-imports.sh
// plus the internal layering rules the shell script could not express. One
// rule set, machine-checked on every package:
//
//  1. examples/ are demos of the public API: no sspp/internal imports, ever.
//  2. cmd/ carries an explicit allowlist for reproduction-harness binaries
//     whose whole job is driving one internal subsystem; anything not in
//     the table uses the public sspp facade.
//  3. internal/sim is the protocol-agnostic engine: it may import only
//     internal/rng and internal/graph from this module — never a concrete
//     protocol package (core, baseline, species, …).
//  4. internal/rng is the determinism root: it imports nothing from the
//     module, so every other package can depend on it without cycles and
//     its streams cannot be influenced from above.
//  5. internal/species' sampler internals stay encapsulated: only the
//     backend facade (the root package) and internal/experiments may
//     import it; protocols reach the species engine through the
//     sim.Compactable capability instead.
//
// Extend the tables deliberately, never casually — each entry is a
// documented hole in the layering.
package importguard

import (
	"strconv"
	"strings"

	"sspp/internal/analyzers/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "importguard",
	Doc:  "public-API and internal-layering import rules (successor of scripts/check-imports.sh)",
	Run:  run,
}

// cmdAllow maps cmd packages to the internal import prefixes their harness
// role justifies. These entries are the check-imports.sh allowlist carried
// over verbatim, plus ssppvet (which exists to analyze the internals) and
// sppd (whose HTTP layer is internal/serve).
var cmdAllow = map[string][]string{
	"sspp/cmd/benchtab":    {"sspp/internal/experiments", "sspp/internal/trials"},
	"sspp/cmd/electsim":    {"sspp/internal/trace"},
	"sspp/cmd/statespace":  {"sspp/internal/core"},
	"sspp/cmd/verifyspace": {"sspp/internal/modelcheck"},
	"sspp/cmd/ssppvet":     {"sspp/internal/analyzers"},
	"sspp/cmd/sppd":        {"sspp/internal/serve"},
}

// simAllow is the engine layer's entire legal module import surface.
var simAllow = map[string]bool{
	"sspp/internal/rng":   true,
	"sspp/internal/graph": true,
}

// speciesImporters may import the count-based backend directly.
var speciesImporters = map[string]bool{
	"sspp":                      true,
	"sspp/internal/experiments": true,
}

func run(pass *analysis.Pass) error {
	pkgPath := pass.Pkg.Path()
	for _, f := range pass.Files {
		// Test files may cross layers freely: the equivalence and mirror
		// harnesses exist precisely to wire independent layers together.
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			report := func(format string, args ...any) {
				pass.Reportf(imp.Pos(), format, args...)
			}
			switch {
			case strings.HasPrefix(pkgPath, "sspp/examples/"):
				if strings.HasPrefix(path, "sspp/internal/") {
					report("examples are public-API demos: import of %s must go through the root sspp package", path)
				}
			case strings.HasPrefix(pkgPath, "sspp/cmd/"):
				if strings.HasPrefix(path, "sspp/internal/") && !allowedFor(pkgPath, path) {
					report("%s imports %s outside the cmd allowlist; use the public sspp API or extend the importguard table deliberately", pkgPath, path)
				}
			case pkgPath == "sspp/internal/sim" || strings.HasSuffix(pkgPath, "/internal/sim"):
				if strings.HasPrefix(path, "sspp/") && !simAllow[path] {
					report("the engine layer internal/sim must stay protocol-agnostic: it may import only internal/rng and internal/graph, not %s", path)
				}
			case pkgPath == "sspp/internal/rng" || strings.HasSuffix(pkgPath, "/internal/rng"):
				if strings.HasPrefix(path, "sspp/") {
					report("internal/rng is the determinism root and must not import module packages (%s)", path)
				}
			}
			if path == "sspp/internal/species" && !speciesImporters[pkgPath] && pkgPath != "sspp/internal/species" {
				report("%s reaches into the species backend's internals; only the backend facade (sspp) and internal/experiments may import it — protocols use the sim.Compactable capability", pkgPath)
			}
		}
	}
	return nil
}

// CmdAllowlist exposes the cmd allowlist for the check-imports.sh parity
// test; the returned slice is the table entry itself, in table order.
func CmdAllowlist(pkg string) []string { return cmdAllow[pkg] }

func allowedFor(pkgPath, imp string) bool {
	for _, prefix := range cmdAllow[pkgPath] {
		if imp == prefix || strings.HasPrefix(imp, prefix+"/") {
			return true
		}
	}
	return false
}
