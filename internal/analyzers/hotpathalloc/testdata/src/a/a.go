package a

import (
	"fmt"
	"reflect"
	"sort"
)

type sink interface {
	Put(v any)
}

type counterSink struct{ n int }

func (c *counterSink) Put(v any) { c.n++ }

func anyArg(v any) {}

func ptrArg(p *int) {}

//sspp:hotpath
func hotFmt(n int) {
	if n < 0 {
		panic(fmt.Sprintf("n=%d", n)) // want `call to fmt\.Sprintf in //sspp:hotpath function hotFmt`
	}
}

//sspp:hotpath
func hotReflect(v int) string {
	return reflect.TypeOf(v).Name() // want `call to reflect\.TypeOf in //sspp:hotpath function hotReflect`
}

//sspp:hotpath
func hotExplicitBox(n int) any {
	return any(n) // want `conversion to interface type any in //sspp:hotpath function hotExplicitBox boxes`
}

//sspp:hotpath
func hotImplicitBox(s sink, n int) {
	s.Put(n) // want `passing int to interface parameter in //sspp:hotpath function hotImplicitBox boxes`
}

//sspp:hotpath
func hotStructBox(pair struct{ A, B int }) {
	anyArg(pair) // want `passing struct\{A int; B int\} to interface parameter in //sspp:hotpath function hotStructBox boxes`
}

//sspp:hotpath
func hotClosure(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want `closure in //sspp:hotpath function hotClosure` `passing \[\]int to interface parameter`
}

// Pointer-shaped values ride in the interface word for free.
//
//sspp:hotpath
func hotPointerOK(s sink, p *int) {
	s.Put(p)
	anyArg(p)
	ptrArg(p)
}

// Constant-string panics are fine: no fmt, no boxing beyond the static
// string header the compiler interns.
//
//sspp:hotpath
func hotPanicOK(n int) int {
	if n <= 0 {
		panic("a: nonpositive n")
	}
	return n - 1
}

// Interface-to-interface passing does not box.
//
//sspp:hotpath
func hotIfaceThrough(s sink, v any) {
	s.Put(v)
}

// Unannotated functions may do all of this.
func coldEverything(n int) any {
	defer func() {}()
	_ = fmt.Sprintf("n=%d", n)
	return any(n)
}

//sspp:hotpath
func hotAllowlisted(s sink, n int) {
	s.Put(n) //sspp:allow hotpathalloc -- fixture: measured, the compiler caches this box
}
