package hotpathalloc_test

import (
	"testing"

	"sspp/internal/analyzers/analysistest"
	"sspp/internal/analyzers/hotpathalloc"
)

func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, hotpathalloc.Analyzer, "a")
}
