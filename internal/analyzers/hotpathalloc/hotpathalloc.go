// Package hotpathalloc keeps the PR 1 "0 allocs/op" guarantees honest at
// compile time. Functions annotated
//
//	//sspp:hotpath
//
// in their doc comment (core.Interact, the species sampler draw, the
// silent-skip stepper, edge sampling, the rng draw kernels) are the
// per-interaction code the throughput claims rest on. Inside them the
// analyzer rejects the constructs that allocate or wreck inlining:
//
//   - any call into fmt, reflect, or log (fmt.Sprintf in a panic argument
//     counts: it bloats the inline budget of the whole function — hoist
//     the message into a constant or a cold helper);
//   - explicit conversions to an interface type;
//   - implicit interface conversions at call sites — passing a concrete
//     non-pointer-shaped value (struct, string, slice, int, …) to an
//     interface parameter boxes it onto the heap. Pointer-shaped values
//     (pointers, maps, chans, funcs) ride in the interface word for free
//     and are not flagged;
//   - function literals: a closure in a hot function is an allocation
//     waiting for the inliner to have a bad day.
//
// The testing.AllocsPerRun guards in internal/core/perf_bench_test.go
// prove the end state; this analyzer points at the exact expression when a
// refactor is about to regress them.
package hotpathalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"sspp/internal/analyzers/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "//sspp:hotpath functions must stay allocation-free: no fmt/reflect/log, no interface boxing, no closures",
	Run:  run,
}

// bannedPkgs allocate, reflect, or drag the inline budget through the
// floor; none belong in a per-interaction path.
var bannedPkgs = map[string]bool{"fmt": true, "reflect": true, "log": true}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd) {
				continue
			}
			checkHot(pass, fd)
		}
	}
	return nil
}

func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if text := strings.TrimSpace(c.Text); text == "//sspp:hotpath" || strings.HasPrefix(text, "//sspp:hotpath ") {
			return true
		}
	}
	return false
}

func checkHot(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure in //sspp:hotpath function %s: the captured environment allocates; hoist it to a method or pass state explicitly", fd.Name.Name)
			return false // the literal's body is cold relative to this check
		case *ast.CallExpr:
			checkCall(pass, fd, n)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	// panic is the cold path by definition: its argument never boxes on
	// the happy path. Calls in the argument (fmt.Sprintf) still get their
	// own CallExpr visit and stay banned — they bloat the inline budget
	// whether or not they run.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			return
		}
	}
	// Banned-package calls (fmt.Sprintf, reflect.ValueOf, ...). Methods are
	// skipped: the package-level entry point that produced the receiver
	// (reflect.TypeOf, ...) is the diagnostic.
	if fn, ok := calleeFunc(pass, call); ok && fn.Pkg() != nil && bannedPkgs[fn.Pkg().Path()] &&
		fn.Type().(*types.Signature).Recv() == nil {
		pass.Reportf(call.Pos(), "call to %s.%s in //sspp:hotpath function %s: it allocates and blocks inlining; use a constant message or a cold helper", fn.Pkg().Name(), fn.Name(), fd.Name.Name)
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	// Explicit conversion T(x) with T an interface type.
	if tv.IsType() {
		if isInterface(tv.Type) && len(call.Args) == 1 && !isInterfaceExpr(pass, call.Args[0]) {
			pass.Reportf(call.Pos(), "conversion to interface type %s in //sspp:hotpath function %s boxes the value onto the heap", tv.Type, fd.Name.Name)
		}
		return
	}
	// Implicit boxing at ordinary call sites.
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return // builtin (append, len, panic, ...): no interface params
	}
	params := sig.Params()
	if params == nil {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // x... passes the slice through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !isInterface(pt) {
			continue
		}
		at, ok := pass.TypesInfo.Types[arg]
		if !ok || at.Type == nil || isInterface(at.Type) || at.IsNil() {
			continue
		}
		if pointerShaped(at.Type) {
			continue
		}
		pass.Reportf(arg.Pos(), "passing %s to interface parameter in //sspp:hotpath function %s boxes the value onto the heap", at.Type, fd.Name.Name)
	}
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) (*types.Func, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, ok := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn, ok
	case *ast.SelectorExpr:
		fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn, ok
	}
	return nil, false
}

func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isInterfaceExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Type != nil && isInterface(tv.Type)
}

// pointerShaped reports whether values of t fit in the interface data word
// without allocating: pointers, unsafe pointers, maps, chans, funcs.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return true
	}
	return false
}
