// Package analyzers assembles the project's static-analysis suite: the
// machine-checked forms of the invariants every headline claim rests on
// (DESIGN.md §11). cmd/ssppvet runs the suite over every package via
// `go vet -vettool`; each analyzer's own package documents and tests the
// invariant it encodes.
package analyzers

import (
	"sspp/internal/analyzers/analysis"
	"sspp/internal/analyzers/capdispatch"
	"sspp/internal/analyzers/hotpathalloc"
	"sspp/internal/analyzers/importguard"
	"sspp/internal/analyzers/maporder"
	"sspp/internal/analyzers/rngdiscipline"
)

// Suite returns the full analyzer suite in stable (alphabetical) order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		capdispatch.Analyzer,
		hotpathalloc.Analyzer,
		importguard.Analyzer,
		maporder.Analyzer,
		rngdiscipline.Analyzer,
	}
}
