// Package analysistest drives internal/analyzers fixtures the way
// golang.org/x/tools/go/analysis/analysistest does: each analyzer owns a
// testdata/src/<importpath>/ tree of small packages annotated with
//
//	... offending line ...  // want `regexp`
//
// comments, and Run type-checks the fixture packages, applies the analyzer,
// and diffs the produced diagnostics against the want annotations — both
// directions: a want with no diagnostic fails, a diagnostic with no want
// fails.
//
// Fixture imports resolve fixture-first: an import path with a directory
// under testdata/src/ loads from the fixture tree (letting fixtures shadow
// real repo packages such as sspp/internal/sim with minimal fakes), and
// anything else — the standard library — goes through the stdlib source
// importer, which works offline from GOROOT source.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"sspp/internal/analyzers/analysis"
)

// Run loads each fixture package in pkgpaths from testdata/src/ (relative
// to the calling test's package directory), runs a over it, and reports
// mismatches between diagnostics and // want annotations as test errors.
func Run(t *testing.T, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	ld := newLoader("testdata")
	for _, path := range pkgpaths {
		unit, err := ld.load(path)
		if err != nil {
			t.Errorf("loading fixture %s: %v", path, err)
			continue
		}
		diags, err := unit.Check([]*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("checking fixture %s: %v", path, err)
			continue
		}
		compare(t, unit, diags)
	}
}

// A want is one expectation parsed from a fixture comment.
type want struct {
	file string
	line int
	rx   *regexp.Regexp
	raw  string
	met  bool
}

var wantRe = regexp.MustCompile("//\\s*want\\s+((?:(?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")\\s*)+)$")
var wantArgRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func compare(t *testing.T, unit *analysis.Unit, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range unit.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := unit.Fset.Position(c.Pos())
				for _, q := range wantArgRe.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
						continue
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, rx: rx, raw: pat})
				}
			}
		}
	}
	for _, d := range diags {
		pos := unit.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.met && w.file == pos.Filename && w.line == pos.Line && w.rx.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s [%s]", pos.Filename, pos.Line, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// loader loads fixture packages with memoization and cycle detection.
type loader struct {
	testdata string
	fset     *token.FileSet
	std      types.Importer
	pkgs     map[string]*types.Package
	units    map[string]*analysis.Unit
	loading  map[string]bool
}

func newLoader(testdata string) *loader {
	fset := token.NewFileSet()
	return &loader{
		testdata: testdata,
		fset:     fset,
		// The source importer type-checks stdlib packages from GOROOT
		// source: slower than export data, but it needs neither a module
		// cache nor a network, which is the whole point of this harness.
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*types.Package{},
		units:   map[string]*analysis.Unit{},
		loading: map[string]bool{},
	}
}

// Import implements types.Importer with fixture-first resolution, so
// fixture packages can import each other (and shadow real import paths).
func (ld *loader) Import(path string) (*types.Package, error) {
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	if dir := filepath.Join(ld.testdata, "src", path); dirExists(dir) {
		unit, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return unit.Pkg, nil
	}
	return ld.std.Import(path)
}

func (ld *loader) load(path string) (*analysis.Unit, error) {
	if unit, ok := ld.units[path]; ok {
		return unit, nil
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("fixture import cycle through %s", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)

	dir := filepath.Join(ld.testdata, "src", path)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture %s: no Go files in %s", path, dir)
	}
	info := analysis.NewInfo()
	conf := &types.Config{Importer: ld}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %w", path, err)
	}
	ld.pkgs[path] = pkg
	unit := &analysis.Unit{Fset: ld.fset, Files: files, Pkg: pkg, Info: info}
	ld.units[path] = unit
	return unit, nil
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}
