// key.go provides a canonical binary encoding of AssignRanks_r states, used
// by the observed-state-space experiment (T15) and any future model-checking
// of the ranking layer. Two states with equal keys are identical.

package ranking

// AppendKey appends a canonical encoding of the state to b and returns the
// extended slice.
func (s *State) AppendKey(b []byte) []byte {
	b = append(b, byte(s.Phase))
	b = appendI64(b, s.LE.ID)
	b = appendI64(b, s.LE.MinID)
	b = appendI32(b, s.LE.Count)
	b = append(b, boolByte(s.LE.Drawn), boolByte(s.LE.Done), boolByte(s.LE.Leader))
	b = appendI32(b, s.LowBadge)
	b = appendI32(b, s.HighBadge)
	b = appendI32(b, s.DeputyID)
	b = appendI32(b, s.Counter)
	b = append(b, boolByte(s.HasLabel))
	b = appendI32(b, s.Label.Deputy)
	b = appendI32(b, s.Label.Serial)
	b = appendI32(b, s.SleepT)
	b = appendI32(b, s.Rank)
	// The channel is run-length encoded: a length prefix (nil and empty are
	// distinct states — channelSum treats nil as "no channel"), then
	// (run length, value) pairs over maximal runs. Maximal runs make the
	// encoding canonical, and channels are overwhelmingly long runs of equal
	// serials (all zeros on a fresh ranker), so the encoding is O(runs)
	// bytes instead of O(r) — which is what keeps the species backend's
	// intern table cheap at large r.
	b = appendI32(b, int32(len(s.Channel)))
	for i := 0; i < len(s.Channel); {
		v := s.Channel[i]
		j := i + 1
		for j < len(s.Channel) && s.Channel[j] == v {
			j++
		}
		b = appendI32(b, int32(j-i))
		b = appendI32(b, v)
		i = j
	}
	return b
}

// appendI32 appends a little-endian int32.
func appendI32(b []byte, v int32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// appendI64 appends a little-endian int64.
func appendI64(b []byte, v int64) []byte {
	return append(b,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// boolByte encodes a bool as one byte.
func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}
