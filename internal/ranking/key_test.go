// key_test.go checks the canonical state encoding of key.go: equal states
// share a key, any field difference separates keys, and the run-length
// encoded channel stays O(runs) bytes — the property the species backend's
// intern table depends on at large r.

package ranking

import (
	"bytes"
	"testing"
)

// keyState returns a state with every encoded field away from its zero
// value, so a key collision from a dropped field would show up.
func keyState() *State {
	return &State{
		Phase:     PhaseSheriff,
		LE:        LEState{Drawn: true, ID: 7, MinID: 3, Count: 2, Done: true, Leader: true},
		LowBadge:  1,
		HighBadge: 4,
		DeputyID:  2,
		Counter:   5,
		HasLabel:  true,
		Label:     Label{Deputy: 2, Serial: 9},
		SleepT:    1,
		Rank:      3,
		Channel:   []int32{0, 0, 0, 4, 4},
	}
}

func TestAppendKeyCanonical(t *testing.T) {
	a, b := keyState(), keyState()
	if !bytes.Equal(a.AppendKey(nil), b.AppendKey(nil)) {
		t.Fatal("equal states must encode to equal keys")
	}
	// Same channel length and value multiset, different run structure.
	b.Channel = []int32{0, 0, 4, 4, 0}
	if bytes.Equal(a.AppendKey(nil), b.AppendKey(nil)) {
		t.Fatal("distinct channels must encode to distinct keys")
	}
	b = keyState()
	b.Rank = 4
	if bytes.Equal(a.AppendKey(nil), b.AppendKey(nil)) {
		t.Fatal("distinct ranks must encode to distinct keys")
	}
	b = keyState()
	b.LE.Leader = false
	if bytes.Equal(a.AppendKey(nil), b.AppendKey(nil)) {
		t.Fatal("distinct leader bits must encode to distinct keys")
	}
	// AppendKey extends the slice it is given.
	prefix := []byte{0xAA, 0x55}
	key := a.AppendKey(prefix)
	if !bytes.Equal(key[:2], prefix) || len(key) <= 2 {
		t.Fatalf("AppendKey must append after the existing prefix, got %d bytes", len(key))
	}
}

func TestAppendKeyChannelRunLengthEncoding(t *testing.T) {
	// A constant channel of any length is one run: the key size must not
	// grow with r. A fresh ranker's channel is exactly this shape, which is
	// what keeps interning cheap on the species backend.
	small, large := keyState(), keyState()
	small.Channel = make([]int32, 8)
	large.Channel = make([]int32, 4096)
	ks, kl := small.AppendKey(nil), large.AppendKey(nil)
	if len(ks) != len(kl) {
		t.Fatalf("constant channels encode in %d and %d bytes; one run must cost O(1)", len(ks), len(kl))
	}
	if bytes.Equal(ks, kl) {
		t.Fatal("the length prefix must separate channels of different lengths")
	}
	// An alternating channel is all runs of one: the encoding degrades to
	// O(len) but must stay canonical.
	alt := keyState()
	alt.Channel = []int32{1, 2, 1, 2}
	if !bytes.Equal(alt.AppendKey(nil), alt.AppendKey(nil)) {
		t.Fatal("encoding must be deterministic")
	}
	if len(alt.AppendKey(nil)) <= len(ks) {
		t.Fatal("an all-singleton-runs channel must cost more than a one-run channel")
	}
}
