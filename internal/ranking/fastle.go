// fastle.go implements FastLeaderElect (Appendix D.2, Fig. 4, Lemma D.10):
// a simple non-self-stabilizing leader election that works from awakening
// configurations, used by AssignRanks_r to nominate the sheriff.
//
// Each agent draws an identifier almost-u.a.r. from [n³] on its first
// activation, spreads the minimum identifier by a two-way min-epidemic, and
// counts down c·log n of its own interactions; when the counter expires the
// agent declares itself leader iff its own identifier equals the smallest
// one it has seen.

package ranking

import (
	"sspp/internal/coin"
	"sspp/internal/sim"
)

// LEState is the per-agent state of FastLeaderElect.
type LEState struct {
	// Drawn records whether the agent has had its first activation and
	// drawn its identifier.
	Drawn bool
	// ID is the identifier drawn from [IDSpace] (valid once Drawn).
	ID int64
	// MinID is the smallest identifier observed so far (MinIdentifier).
	MinID int64
	// Count is the remaining own-interaction budget (LECount).
	Count int32
	// Done reports that the protocol concluded for this agent (LeaderDone).
	Done bool
	// Leader is the election outcome (LeaderBit), valid once Done.
	Leader bool
}

// leActivate performs the first-activation identifier draw and arms the
// interaction counter.
func leActivate(s *LEState, idSpace int64, count0 int32, sample coin.Sampler) {
	if s.Drawn {
		return
	}
	s.Drawn = true
	s.ID = int64(sample(int(idSpace))) + 1
	s.MinID = s.ID
	s.Count = count0
}

// leStep applies one FastLeaderElect interaction to the pair (u, v):
// first-activation draws, min-epidemic merge (Eq. 10), and counter expiry.
func leStep(u, v *LEState, idSpace int64, count0 int32, su, sv coin.Sampler) {
	leActivate(u, idSpace, count0, su)
	leActivate(v, idSpace, count0, sv)
	m := u.MinID
	if v.MinID < m {
		m = v.MinID
	}
	u.MinID, v.MinID = m, m
	for _, s := range [2]*LEState{u, v} {
		if s.Done {
			continue
		}
		s.Count--
		if s.Count <= 0 {
			s.Done = true
			s.Leader = s.ID == s.MinID
		}
	}
}

// FastLE is the standalone FastLeaderElect population protocol used to
// validate Lemma D.10 (experiment T4). Agents start un-activated, modelling
// an awakening configuration where agents begin executing lazily.
type FastLE struct {
	agents  []LEState
	idSpace int64
	count0  int32
	sample  coin.Sampler
}

// FastLE has a safe set in the engine's sense: once every agent has
// concluded (Done), the leader bits never change again, so a correct
// configuration is correct forever. It is not Injectable — Lemma D.10 only
// covers awakening starts, so there is no recovery guarantee to measure.
var (
	_ sim.Protocol   = (*FastLE)(nil)
	_ sim.SafeSetter = (*FastLE)(nil)
)

// NewFastLE returns a FastLeaderElect instance over n agents. sample
// provides the identifier randomness (PRNG-backed or synthetic-coin).
func NewFastLE(n int, sample coin.Sampler) *FastLE {
	p := DefaultParams(n, 1)
	return &FastLE{
		agents:  make([]LEState, n),
		idSpace: p.IDSpace,
		count0:  p.LECount0,
		sample:  sample,
	}
}

// N returns the population size.
func (f *FastLE) N() int { return len(f.agents) }

// Interact applies one FastLeaderElect step to the pair.
func (f *FastLE) Interact(a, b int) {
	leStep(&f.agents[a], &f.agents[b], f.idSpace, f.count0, f.sample, f.sample)
}

// Correct reports whether the election has concluded at every agent with
// exactly one leader.
func (f *FastLE) Correct() bool {
	leaders := 0
	for i := range f.agents {
		s := &f.agents[i]
		if !s.Done {
			return false
		}
		if s.Leader {
			leaders++
		}
	}
	return leaders == 1
}

// Leaders returns the number of agents currently holding LeaderBit = 1.
func (f *FastLE) Leaders() int {
	c := 0
	for i := range f.agents {
		if f.agents[i].Done && f.agents[i].Leader {
			c++
		}
	}
	return c
}

// LeaderIndex returns the unique concluded leader, or ok = false when the
// election has not concluded with exactly one.
func (f *FastLE) LeaderIndex() (int, bool) {
	idx, leaders := -1, 0
	for i := range f.agents {
		if f.agents[i].Done && f.agents[i].Leader {
			idx = i
			leaders++
		}
	}
	return idx, leaders == 1
}

// InSafeSet reports whether the election has concluded everywhere with
// exactly one leader: Done agents never flip their leader bit, so this
// holds forever once reached.
func (f *FastLE) InSafeSet() bool { return f.Correct() }

// AllDone reports whether the protocol has concluded at every agent.
func (f *FastLE) AllDone() bool {
	for i := range f.agents {
		if !f.agents[i].Done {
			return false
		}
	}
	return true
}
