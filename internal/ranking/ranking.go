// Package ranking implements AssignRanks_r, the parametrized silent
// (non-self-stabilizing) ranking protocol of Appendix D (Protocols 7–11),
// together with its sheriff-nomination sub-protocol FastLeaderElect
// (Appendix D.2).
//
// Starting from a dormant configuration, a sheriff is elected, recursively
// splits a pool of r badges to create r deputies, and each deputy hands out
// labels (deputyID, serial) from a private pool of ⌈c·n/r⌉. Every agent
// continuously broadcasts, per deputy, the largest label serial it has seen
// (the channel field, a max-epidemic). Once the channel sums to n, every
// label is known to everybody, agents fall asleep for Θ(log n) of their own
// interactions — long enough for the broadcast to finish everywhere — and
// wake up ranked: the rank of label (i, j) is the label's position in the
// lexicographic order, Σ_{i'<i} channel[i'] + j.
//
// Lemma D.1: from a dormant configuration AssignRanks_r assigns unique ranks
// in [n] within c_ranking·(n²/r)·log n interactions w.h.p. and then becomes
// silent, using 2^O(r·log n) states.
//
// The protocol is exercised in two ways: standalone through Protocol
// (experiment T3), and as the Ranking-role module inside ElectLeader_r
// (internal/core). In the latter case it must behave deterministically from
// *arbitrary* states, so every transition below is total: undefined phase
// combinations are no-ops, and agents that wake without complete information
// keep their initial rank belief 1, which the verification layer later
// flags and repairs (this mirrors the paper, where rank is "initialised to
// 1 and updated only when the agent becomes ranked").

package ranking

import (
	"fmt"
	"math"

	"sspp/internal/coin"
	"sspp/internal/rng"
	"sspp/internal/sim"
)

// Phase enumerates the six agent types of AssignRanks_r (Appendix D).
type Phase uint8

const (
	// PhaseLeaderElection: the agent runs FastLeaderElect.
	PhaseLeaderElection Phase = iota
	// PhaseSheriff: the agent holds a contiguous pool of badges.
	PhaseSheriff
	// PhaseDeputy: the agent holds one badge and assigns labels.
	PhaseDeputy
	// PhaseRecipient: the agent waits for a label from a deputy.
	PhaseRecipient
	// PhaseSleeper: the agent has a complete channel and waits out the
	// broadcast before picking its rank.
	PhaseSleeper
	// PhaseRanked: the agent has chosen its final rank; the protocol is
	// silent for it.
	PhaseRanked
)

// String returns the phase name.
func (p Phase) String() string {
	switch p {
	case PhaseLeaderElection:
		return "leader-election"
	case PhaseSheriff:
		return "sheriff"
	case PhaseDeputy:
		return "deputy"
	case PhaseRecipient:
		return "recipient"
	case PhaseSleeper:
		return "sleeper"
	case PhaseRanked:
		return "ranked"
	default:
		return fmt.Sprintf("phase(%d)", uint8(p))
	}
}

// Label is a temporary label (deputy id, serial) handed out by a deputy.
type Label struct {
	// Deputy is the issuing deputy's id in [1, r].
	Deputy int32
	// Serial is the per-deputy serial in [1, LabelCap].
	Serial int32
}

// Params holds the parameters of AssignRanks_r.
type Params struct {
	// N is the population size.
	N int
	// R is the number of deputies (the trade-off parameter r, 1 ≤ r ≤ n/2).
	R int32
	// LabelCap is the per-deputy label pool size ⌈c·n/r⌉ with c > 1.
	LabelCap int32
	// LECount0 is the FastLeaderElect interaction budget (c·log n, c > 14).
	LECount0 int32
	// SleepCap is the sleeper timer bound (c_sleep·log n).
	SleepCap int32
	// IDSpace is the identifier space for FastLeaderElect (n³).
	IDSpace int64
}

// DefaultParams returns parameters with the paper's asymptotics for a
// population of n agents and trade-off parameter r. The constants are chosen
// so that the w.h.p. events of Lemmas D.3–D.9 hold comfortably at simulation
// scales; they are plain struct fields and freely tunable.
func DefaultParams(n, r int) Params {
	if r < 1 {
		r = 1
	}
	ln := math.Log(float64(n) + 1)
	lcap := int32(math.Ceil(2 * float64(n) / float64(r)))
	if lcap < 2 {
		lcap = 2
	}
	nn := int64(n)
	return Params{
		N:        n,
		R:        int32(r),
		LabelCap: lcap,
		LECount0: int32(math.Ceil(40 * ln)),
		SleepCap: int32(math.Ceil(24 * ln)),
		IDSpace:  nn * nn * nn,
	}
}

// Validate reports whether the parameters are internally consistent.
func (p Params) Validate() error {
	if p.N < 2 {
		return fmt.Errorf("ranking: N = %d < 2", p.N)
	}
	maxR := int32(p.N / 2)
	if maxR < 1 {
		maxR = 1
	}
	if p.R < 1 || p.R > maxR {
		return fmt.Errorf("ranking: R = %d outside [1, %d] for N = %d", p.R, maxR, p.N)
	}
	if int64(p.R)*int64(p.LabelCap) < int64(p.N) {
		return fmt.Errorf("ranking: label pool R·LabelCap = %d < N = %d", int64(p.R)*int64(p.LabelCap), p.N)
	}
	if p.LECount0 < 1 || p.SleepCap < 1 || p.IDSpace < int64(p.N) {
		return fmt.Errorf("ranking: degenerate timers/idspace %+v", p)
	}
	return nil
}

// State is the per-agent state of AssignRanks_r (the qAR component of
// ElectLeader_r). Fields outside the current phase are meaningless, matching
// the paper's "inactive fields are deleted" convention.
type State struct {
	// Phase is the agent's current type.
	Phase Phase
	// LE is the FastLeaderElect sub-state (PhaseLeaderElection).
	LE LEState
	// LowBadge, HighBadge delimit a sheriff's badge pool (PhaseSheriff).
	LowBadge, HighBadge int32
	// DeputyID is the deputy's badge number in [1, r] (PhaseDeputy).
	DeputyID int32
	// Counter counts labels issued by this deputy, including its own
	// (PhaseDeputy).
	Counter int32
	// HasLabel reports whether Label is set (PhaseRecipient, PhaseSleeper).
	HasLabel bool
	// Label is the temporary label received from a deputy.
	Label Label
	// SleepT is the sleeper's interaction counter (PhaseSleeper),
	// initialized to 1 as in Appendix D.
	SleepT int32
	// Channel stores, per deputy id, the largest label serial observed
	// (all phases except ranked).
	Channel []int32
	// Rank is the agent's current rank belief, initialized to 1 and updated
	// exactly once, when the agent becomes ranked.
	Rank int32
}

// InitState returns the clean initial state q0,AR installed by Reset
// (Protocol 6): the agent is in leader election with an empty channel and
// rank belief 1.
func InitState(p Params) *State {
	return ReinitInto(p, nil)
}

// ReinitInto resets s to the clean initial state q0,AR, reusing its channel
// buffer when correctly sized; a nil s allocates fresh (InitState).
// Reset-heavy runs recycle ranker states through this to cut GC pressure.
func ReinitInto(p Params, s *State) *State {
	if s == nil {
		return &State{
			Phase:   PhaseLeaderElection,
			Channel: make([]int32, p.R),
			Rank:    1,
		}
	}
	ch := s.Channel
	if int32(len(ch)) == p.R {
		clear(ch)
	} else {
		ch = make([]int32, p.R)
	}
	*s = State{Phase: PhaseLeaderElection, Channel: ch, Rank: 1}
	return s
}

// Ranked reports whether the agent has committed to its final rank.
func (s *State) Ranked() bool { return s.Phase == PhaseRanked }

// channelSum returns Σ_i Channel[i], or -1 when the channel is absent.
func (s *State) channelSum() int64 {
	if s.Channel == nil {
		return -1
	}
	var sum int64
	for _, c := range s.Channel {
		sum += int64(c)
	}
	return sum
}

// rankFromLabel computes the lexicographic rank of the agent's label given
// its channel: Σ_{i' < Deputy} channel[i'] + Serial. Agents without a label
// or channel keep their current rank belief (the verifier repairs this).
func (s *State) rankFromLabel() int32 {
	if !s.HasLabel || s.Channel == nil {
		return s.Rank
	}
	var below int64
	for i := int32(0); i < s.Label.Deputy-1 && int(i) < len(s.Channel); i++ {
		below += int64(s.Channel[i])
	}
	return int32(below) + s.Label.Serial
}

// becomeRanked commits the agent to its rank and discards all other state,
// making the sub-protocol silent for this agent.
func (s *State) becomeRanked() {
	s.Rank = s.rankFromLabel()
	*s = State{Phase: PhaseRanked, Rank: s.Rank}
}

// becomeSheriff converts a leader-election winner into the initial sheriff
// with the full badge pool {1..r} (or directly into a deputy when r = 1).
func (s *State) becomeSheriff(p Params) {
	s.Phase = PhaseSheriff
	s.LowBadge, s.HighBadge = 1, p.R
	if s.Channel == nil {
		s.Channel = make([]int32, p.R)
	}
	s.maybeDeputize()
}

// maybeDeputize converts a sheriff whose badge pool shrank to one badge into
// a deputy (Protocol 9 lines 6–11). Badge values outside [1, r] — possible
// only under adversarial initialization — are clamped so the transition
// stays total.
func (s *State) maybeDeputize() {
	if s.Phase != PhaseSheriff || s.LowBadge < s.HighBadge {
		return
	}
	id := s.LowBadge
	if id < 1 {
		id = 1
	}
	if len(s.Channel) > 0 && int(id) > len(s.Channel) {
		id = int32(len(s.Channel))
	}
	*s = State{
		Phase:    PhaseDeputy,
		DeputyID: id,
		Counter:  1,
		HasLabel: true,
		Label:    Label{Deputy: id, Serial: 1},
		Channel:  s.Channel,
		Rank:     s.Rank,
	}
	if int(id-1) < len(s.Channel) && s.Channel[id-1] < 1 {
		s.Channel[id-1] = 1
	}
}

// Interact applies one AssignRanks_r interaction (Protocol 7) to the ordered
// pair (u, v). su and sv supply each agent's randomness (identifier draws).
// The transition is total: any combination of phases is handled.
func Interact(p Params, u, v *State, su, sv coin.Sampler) {
	// Protocol 7 line 1: pairs touching leader election only run
	// ElectSheriff; the channel machinery (lines 8–11) is confined to the
	// else-branch.
	if u.Phase == PhaseLeaderElection || v.Phase == PhaseLeaderElection {
		electSheriff(p, u, v, su, sv) // Protocol 8
		return
	}
	switch {
	case u.Phase == PhaseSleeper || v.Phase == PhaseSleeper:
		sleep(p, u, v) // Protocol 11
	case u.Phase == PhaseSheriff && v.Phase == PhaseRecipient:
		deputize(p, u, v) // Protocol 9
	case v.Phase == PhaseSheriff && u.Phase == PhaseRecipient:
		deputize(p, v, u)
	case u.Phase == PhaseDeputy && v.Phase == PhaseRecipient && !v.HasLabel:
		labeling(p, u, v) // Protocol 10
	case v.Phase == PhaseDeputy && u.Phase == PhaseRecipient && !u.HasLabel:
		labeling(p, v, u)
	}
	mergeChannels(p, u, v) // Protocol 7 lines 8–11
}

// electSheriff is Protocol 8: leader-election agents run FastLeaderElect
// among themselves; a leader-election agent meeting a non-leader-election
// agent learns the election is over and becomes a recipient.
func electSheriff(p Params, u, v *State, su, sv coin.Sampler) {
	uLE, vLE := u.Phase == PhaseLeaderElection, v.Phase == PhaseLeaderElection
	switch {
	case uLE && vLE:
		leStep(&u.LE, &v.LE, p.IDSpace, p.LECount0, su, sv)
		for _, s := range [2]*State{u, v} {
			if s.LE.Done && s.LE.Leader {
				s.becomeSheriff(p)
			}
		}
	case uLE:
		u.Phase = PhaseRecipient
	case vLE:
		v.Phase = PhaseRecipient
	}
}

// deputize is Protocol 9: the sheriff w hands the upper half of its badge
// pool to the recipient x, and any endpoint left with a single badge becomes
// a deputy.
func deputize(p Params, w, x *State) {
	if w.LowBadge >= w.HighBadge {
		// Degenerate pool (only reachable from adversarial initialization):
		// collapse to a deputy without splitting.
		if w.LowBadge < 1 {
			w.LowBadge = 1
		}
		if w.LowBadge > p.R {
			w.LowBadge = p.R
		}
		w.HighBadge = w.LowBadge
		w.maybeDeputize()
		return
	}
	x.Phase = PhaseSheriff
	x.HighBadge = w.HighBadge
	w.HighBadge = (w.HighBadge + w.LowBadge) / 2
	x.LowBadge = w.HighBadge + 1
	if x.Channel == nil {
		x.Channel = make([]int32, p.R)
	}
	x.maybeDeputize()
	w.maybeDeputize()
}

// labeling is Protocol 10: once the deputy's channel certifies that all r
// deputies exist (sum ≥ r), it assigns the next label from its pool to an
// unlabelled recipient.
func labeling(p Params, w, x *State) {
	if w.channelSum() < int64(p.R) {
		return
	}
	if w.Counter >= p.LabelCap {
		return
	}
	w.Counter++
	if int(w.DeputyID-1) < len(w.Channel) && w.DeputyID >= 1 {
		w.Channel[w.DeputyID-1] = w.Counter
	}
	x.HasLabel = true
	x.Label = Label{Deputy: w.DeputyID, Serial: w.Counter}
}

// sleep is Protocol 11: sleepers tick their timers; ranked agents wake
// sleepers (rank epidemic); an expired timer wakes both endpoints; and a
// sleeper pulls a non-sleeping, non-ranked partner into sleep.
func sleep(p Params, u, v *State) {
	for _, s := range [2]*State{u, v} {
		if s.Phase == PhaseSleeper && s.SleepT < p.SleepCap {
			s.SleepT++
		}
	}
	uSl, vSl := u.Phase == PhaseSleeper, v.Phase == PhaseSleeper
	switch {
	case uSl && v.Phase == PhaseRanked:
		u.becomeRanked()
	case vSl && u.Phase == PhaseRanked:
		v.becomeRanked()
	case (uSl && u.SleepT >= p.SleepCap) || (vSl && v.SleepT >= p.SleepCap):
		u.becomeRanked()
		v.becomeRanked()
	case uSl && !vSl:
		becomeSleeper(v)
	case vSl && !uSl:
		becomeSleeper(u)
	}
}

// becomeSleeper puts a non-ranked agent to sleep with timer 1, keeping its
// label and channel (Appendix D state description).
func becomeSleeper(s *State) {
	if s.Phase == PhaseRanked || s.Phase == PhaseSleeper {
		return
	}
	s.Phase = PhaseSleeper
	s.SleepT = 1
}

// mergeChannels is Protocol 7 lines 8–11: agents holding channels exchange
// entrywise maxima, and any non-sleeping agent whose channel now sums to
// exactly n goes to sleep.
func mergeChannels(p Params, u, v *State) {
	uc, vc := u.Channel, v.Channel
	if uc != nil && vc != nil {
		for i := range uc {
			if i >= len(vc) {
				break
			}
			if vc[i] > uc[i] {
				uc[i] = vc[i]
			} else {
				vc[i] = uc[i]
			}
		}
	}
	for _, s := range [2]*State{u, v} {
		if s.Channel != nil && s.Phase != PhaseSleeper && s.Phase != PhaseRanked &&
			s.channelSum() == int64(p.N) {
			becomeSleeper(s)
		}
	}
}

// Protocol is the standalone AssignRanks_r population protocol used to
// validate Lemma D.1 (experiment T3). All agents start in leader election,
// modelling the configuration right after a full reset's awakening.
type Protocol struct {
	params Params
	agents []*State
	sample coin.Sampler
}

var _ sim.Protocol = (*Protocol)(nil)

// NewProtocol returns a standalone AssignRanks_r over n agents with
// parameter r, drawing randomness from src.
func NewProtocol(n, r int, src *rng.PRNG) (*Protocol, error) {
	p := DefaultParams(n, r)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	pr := &Protocol{params: p, agents: make([]*State, n), sample: coin.FromPRNG(src)}
	for i := range pr.agents {
		pr.agents[i] = InitState(p)
	}
	return pr, nil
}

// N returns the population size.
func (pr *Protocol) N() int { return len(pr.agents) }

// Interact applies one AssignRanks_r interaction.
func (pr *Protocol) Interact(a, b int) {
	Interact(pr.params, pr.agents[a], pr.agents[b], pr.sample, pr.sample)
}

// Correct reports whether every agent is ranked and the ranks form a
// permutation of [n].
func (pr *Protocol) Correct() bool {
	seen := make([]bool, len(pr.agents))
	for _, s := range pr.agents {
		if !s.Ranked() {
			return false
		}
		r := int(s.Rank)
		if r < 1 || r > len(pr.agents) || seen[r-1] {
			return false
		}
		seen[r-1] = true
	}
	return true
}

// AllRanked reports whether every agent has committed to a rank.
func (pr *Protocol) AllRanked() bool {
	for _, s := range pr.agents {
		if !s.Ranked() {
			return false
		}
	}
	return true
}

// Ranks returns the current rank beliefs of all agents.
func (pr *Protocol) Ranks() []int32 {
	out := make([]int32, len(pr.agents))
	for i, s := range pr.agents {
		out[i] = s.Rank
	}
	return out
}

// Phases returns a count of agents per phase, for tests and tracing.
func (pr *Protocol) Phases() map[Phase]int {
	out := make(map[Phase]int, 6)
	for _, s := range pr.agents {
		out[s.Phase]++
	}
	return out
}

// State returns agent i's state for inspection by tests.
func (pr *Protocol) State(i int) *State { return pr.agents[i] }

// CheckInvariants verifies structural invariants that must hold in every
// reachable configuration of a clean execution: unique deputy ids, unique
// labels, valid channels (no entry exceeding the issuing deputy's counter
// when that deputy exists), and badge-pool disjointness.
func (pr *Protocol) CheckInvariants() error {
	p := pr.params
	deputyCounter := make(map[int32]int32, p.R)
	labels := make(map[Label]int)
	badges := make([]bool, p.R+1)
	for i, s := range pr.agents {
		switch s.Phase {
		case PhaseDeputy:
			if s.DeputyID < 1 || s.DeputyID > p.R {
				return fmt.Errorf("agent %d: deputy id %d out of range", i, s.DeputyID)
			}
			if _, dup := deputyCounter[s.DeputyID]; dup {
				return fmt.Errorf("duplicate deputy id %d", s.DeputyID)
			}
			deputyCounter[s.DeputyID] = s.Counter
			if err := markBadges(badges, s.DeputyID, s.DeputyID); err != nil {
				return fmt.Errorf("agent %d: %w", i, err)
			}
		case PhaseSheriff:
			if err := markBadges(badges, s.LowBadge, s.HighBadge); err != nil {
				return fmt.Errorf("agent %d: %w", i, err)
			}
		}
		if s.HasLabel {
			if prev, dup := labels[s.Label]; dup {
				return fmt.Errorf("agents %d and %d share label %+v", prev, i, s.Label)
			}
			labels[s.Label] = i
		}
	}
	for i, s := range pr.agents {
		if s.Channel == nil {
			continue
		}
		for d, val := range s.Channel {
			if cnt, ok := deputyCounter[int32(d+1)]; ok && val > cnt {
				return fmt.Errorf("agent %d: channel[%d] = %d exceeds deputy counter %d", i, d, val, cnt)
			}
		}
	}
	return nil
}

// markBadges marks the badge range [lo, hi] as used, failing on overlap.
func markBadges(badges []bool, lo, hi int32) error {
	if lo < 1 || hi >= int32(len(badges)) || lo > hi {
		return fmt.Errorf("badge range [%d, %d] invalid", lo, hi)
	}
	for b := lo; b <= hi; b++ {
		if badges[b] {
			return fmt.Errorf("badge %d held twice", b)
		}
		badges[b] = true
	}
	return nil
}
