package ranking

import (
	"testing"

	"sspp/internal/coin"
	"sspp/internal/rng"
)

// FuzzInteractTotal drives AssignRanks_r with fuzz-chosen agent states and
// schedules: the transition function must be total (no panics) and keep
// ranks in range, whatever the phases and fields.
func FuzzInteractTotal(f *testing.F) {
	f.Add(uint64(1), []byte{0, 1, 2, 3, 4, 5})
	f.Add(uint64(9), []byte{5, 4, 3, 2, 1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, seed uint64, raw []byte) {
		const n, r = 8, 4
		p := DefaultParams(n, r)
		src := rng.New(seed)
		sample := coin.FromPRNG(src)
		agents := make([]*State, n)
		for i := range agents {
			agents[i] = InitState(p)
			// Scramble phase and fields from the fuzz input.
			if len(raw) > 0 {
				b := raw[i%len(raw)]
				agents[i].Phase = Phase(b % 6)
				agents[i].LowBadge = int32(b % 5)
				agents[i].HighBadge = int32((b >> 2) % 5)
				agents[i].DeputyID = int32(b%int32OK(r)) + 1
				agents[i].Counter = int32(b % 9)
				agents[i].HasLabel = b%2 == 0
				agents[i].Label = Label{Deputy: int32(b%4) + 1, Serial: int32(b%7) + 1}
				agents[i].SleepT = int32(b % 50)
				// Stay inside the paper's type-valid space: rank ∈ [1, n].
				agents[i].Rank = int32(b%uint8(n)) + 1
			}
		}
		for i := 0; i+1 < len(raw) && i < 300; i += 2 {
			a := int(raw[i]) % n
			b := int(raw[i+1]) % n
			if a == b {
				b = (b + 1) % n
			}
			Interact(p, agents[a], agents[b], sample, sample)
		}
		for i, s := range agents {
			if s.Phase == PhaseRanked && (s.Rank < 1 || s.Rank > int32(p.N)+int32(p.R)*p.LabelCap) {
				t.Fatalf("agent %d ranked with impossible rank %d", i, s.Rank)
			}
		}
	})
}

// int32OK avoids a zero modulus.
func int32OK(v int) byte {
	if v < 1 {
		return 1
	}
	return byte(v)
}
