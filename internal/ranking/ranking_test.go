package ranking

import (
	"math"
	"testing"
	"testing/quick"

	"sspp/internal/coin"
	"sspp/internal/rng"
	"sspp/internal/sim"
)

func TestDefaultParamsValidate(t *testing.T) {
	cases := []struct{ n, r int }{
		{8, 1}, {8, 4}, {64, 1}, {64, 8}, {64, 32}, {128, 11}, {256, 128},
	}
	for _, c := range cases {
		p := DefaultParams(c.n, c.r)
		if err := p.Validate(); err != nil {
			t.Errorf("DefaultParams(%d, %d): %v", c.n, c.r, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []Params{
		{N: 1, R: 1, LabelCap: 4, LECount0: 1, SleepCap: 1, IDSpace: 8},
		{N: 8, R: 0, LabelCap: 4, LECount0: 1, SleepCap: 1, IDSpace: 512},
		{N: 8, R: 5, LabelCap: 4, LECount0: 1, SleepCap: 1, IDSpace: 512},
		{N: 8, R: 2, LabelCap: 2, LECount0: 1, SleepCap: 1, IDSpace: 512}, // pool < n
		{N: 8, R: 2, LabelCap: 8, LECount0: 0, SleepCap: 1, IDSpace: 512},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, p)
		}
	}
}

func TestPhaseString(t *testing.T) {
	for ph, want := range map[Phase]string{
		PhaseLeaderElection: "leader-election",
		PhaseSheriff:        "sheriff",
		PhaseDeputy:         "deputy",
		PhaseRecipient:      "recipient",
		PhaseSleeper:        "sleeper",
		PhaseRanked:         "ranked",
		Phase(99):           "phase(99)",
	} {
		if got := ph.String(); got != want {
			t.Errorf("Phase(%d).String() = %q, want %q", ph, got, want)
		}
	}
}

func TestRankFromLabelBijectionProperty(t *testing.T) {
	// Given any per-deputy counts summing to n, the lexicographic mapping
	// must be a bijection onto [1, n].
	f := func(seed uint64) bool {
		r := rng.New(seed)
		numDep := 1 + r.Intn(8)
		counts := make([]int32, numDep)
		n := 0
		for i := range counts {
			counts[i] = int32(1 + r.Intn(6))
			n += int(counts[i])
		}
		seen := make([]bool, n)
		for d := int32(1); d <= int32(numDep); d++ {
			for j := int32(1); j <= counts[d-1]; j++ {
				s := &State{HasLabel: true, Label: Label{Deputy: d, Serial: j}, Channel: counts, Rank: 1}
				rank := s.rankFromLabel()
				if rank < 1 || int(rank) > n || seen[rank-1] {
					return false
				}
				seen[rank-1] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRankFromLabelWithoutInfo(t *testing.T) {
	s := &State{Rank: 1}
	if got := s.rankFromLabel(); got != 1 {
		t.Fatalf("labelless agent rank = %d, want 1", got)
	}
}

func TestBecomeSheriffSingleBadge(t *testing.T) {
	p := DefaultParams(8, 1)
	s := InitState(p)
	s.becomeSheriff(p)
	if s.Phase != PhaseDeputy {
		t.Fatalf("r=1 sheriff should immediately deputize, got %v", s.Phase)
	}
	if s.DeputyID != 1 || s.Counter != 1 || !s.HasLabel || s.Label != (Label{1, 1}) {
		t.Fatalf("bad deputy state: %+v", s)
	}
	if s.Channel[0] != 1 {
		t.Fatalf("deputy channel[0] = %d, want 1", s.Channel[0])
	}
}

func TestDeputizeSplitsBadges(t *testing.T) {
	p := DefaultParams(16, 4)
	w := InitState(p)
	w.becomeSheriff(p) // badges [1,4]
	x := InitState(p)
	x.Phase = PhaseRecipient
	deputize(p, w, x)
	if w.Phase != PhaseSheriff || w.LowBadge != 1 || w.HighBadge != 2 {
		t.Fatalf("w = %+v, want sheriff [1,2]", w)
	}
	if x.Phase != PhaseSheriff || x.LowBadge != 3 || x.HighBadge != 4 {
		t.Fatalf("x = %+v, want sheriff [3,4]", x)
	}
	// Split again: both should deputize.
	y := InitState(p)
	y.Phase = PhaseRecipient
	deputize(p, w, y)
	if w.Phase != PhaseDeputy || w.DeputyID != 1 {
		t.Fatalf("w = %+v, want deputy 1", w)
	}
	if y.Phase != PhaseDeputy || y.DeputyID != 2 {
		t.Fatalf("y = %+v, want deputy 2", y)
	}
}

func TestDeputizeDegeneratePool(t *testing.T) {
	p := DefaultParams(16, 4)
	w := InitState(p)
	w.Phase = PhaseSheriff
	w.LowBadge, w.HighBadge = 9, 3 // adversarial garbage
	x := InitState(p)
	x.Phase = PhaseRecipient
	deputize(p, w, x)
	if w.Phase != PhaseDeputy {
		t.Fatalf("degenerate sheriff should collapse to deputy, got %v", w.Phase)
	}
	if w.DeputyID < 1 || w.DeputyID > p.R {
		t.Fatalf("deputy id %d out of range", w.DeputyID)
	}
}

func TestLabelingGatedOnQuorum(t *testing.T) {
	p := DefaultParams(16, 4)
	w := InitState(p)
	w.Phase = PhaseDeputy
	w.DeputyID, w.Counter = 1, 1
	w.Channel[0] = 1 // sum 1 < r: labeling must not fire
	x := InitState(p)
	x.Phase = PhaseRecipient
	labeling(p, w, x)
	if x.HasLabel {
		t.Fatal("labeling fired before all deputies existed")
	}
	for i := int32(0); i < 4; i++ {
		w.Channel[i] = 1 // all deputies known
	}
	labeling(p, w, x)
	if !x.HasLabel || x.Label != (Label{Deputy: 1, Serial: 2}) {
		t.Fatalf("label = %+v, want (1,2)", x.Label)
	}
	if w.Counter != 2 || w.Channel[0] != 2 {
		t.Fatalf("deputy state after labeling: %+v", w)
	}
}

func TestLabelingPoolExhaustion(t *testing.T) {
	p := DefaultParams(16, 4)
	w := InitState(p)
	w.Phase = PhaseDeputy
	w.DeputyID, w.Counter = 1, p.LabelCap
	for i := range w.Channel {
		w.Channel[i] = 1
	}
	x := InitState(p)
	x.Phase = PhaseRecipient
	labeling(p, w, x)
	if x.HasLabel {
		t.Fatal("exhausted deputy handed out a label")
	}
}

func TestSleepEpidemicAndWake(t *testing.T) {
	p := DefaultParams(8, 2)
	sl := InitState(p)
	sl.Phase = PhaseSleeper
	sl.SleepT = 1
	rec := InitState(p)
	rec.Phase = PhaseRecipient
	sleep(p, sl, rec)
	if rec.Phase != PhaseSleeper || rec.SleepT != 1 {
		t.Fatalf("recipient not pulled into sleep: %+v", rec)
	}
	// Expire the timer: both wake.
	sl.SleepT = p.SleepCap
	sleep(p, sl, rec)
	if sl.Phase != PhaseRanked || rec.Phase != PhaseRanked {
		t.Fatalf("phases after wake: %v %v", sl.Phase, rec.Phase)
	}
}

func TestRankedWakesSleeper(t *testing.T) {
	p := DefaultParams(8, 2)
	rk := &State{Phase: PhaseRanked, Rank: 3}
	sl := InitState(p)
	sl.Phase = PhaseSleeper
	sl.HasLabel = true
	sl.Label = Label{Deputy: 1, Serial: 2}
	sl.Channel = []int32{4, 4}
	sleep(p, sl, rk)
	if sl.Phase != PhaseRanked {
		t.Fatalf("sleeper not woken by ranked agent: %v", sl.Phase)
	}
	if sl.Rank != 2 {
		t.Fatalf("woken rank = %d, want 2", sl.Rank)
	}
	if rk.Rank != 3 {
		t.Fatal("ranked agent must not change")
	}
}

func TestMergeChannelsMaxAndSleepTransition(t *testing.T) {
	p := DefaultParams(8, 2)
	u := InitState(p)
	u.Phase = PhaseRecipient
	u.Channel = []int32{5, 1}
	v := InitState(p)
	v.Phase = PhaseRecipient
	v.Channel = []int32{1, 2}
	mergeChannels(p, u, v)
	for i, want := range []int32{5, 2} {
		if u.Channel[i] != want || v.Channel[i] != want {
			t.Fatalf("channel[%d] = %d/%d, want %d", i, u.Channel[i], v.Channel[i], want)
		}
	}
	if u.Phase == PhaseSleeper || v.Phase == PhaseSleeper {
		t.Fatal("sum 7 < n=8 must not trigger sleep")
	}
}

func TestMergeChannelsSumTriggersSleep(t *testing.T) {
	p := DefaultParams(8, 2)
	u := InitState(p)
	u.Phase = PhaseRecipient
	u.Channel = []int32{4, 4}
	v := InitState(p)
	v.Phase = PhaseRecipient
	v.Channel = []int32{4, 4}
	mergeChannels(p, u, v)
	if u.Phase != PhaseSleeper || v.Phase != PhaseSleeper {
		t.Fatalf("sum == n should trigger sleep, got %v/%v", u.Phase, v.Phase)
	}
}

func TestInteractIsTotal(t *testing.T) {
	// Every phase pair must be handled without panicking, including with
	// adversarial states.
	p := DefaultParams(8, 2)
	r := rng.New(1)
	sample := coin.FromPRNG(r)
	phases := []Phase{PhaseLeaderElection, PhaseSheriff, PhaseDeputy, PhaseRecipient, PhaseSleeper, PhaseRanked}
	for _, pu := range phases {
		for _, pv := range phases {
			u, v := InitState(p), InitState(p)
			u.Phase, v.Phase = pu, pv
			u.LowBadge, u.HighBadge = 1, 2
			v.LowBadge, v.HighBadge = 1, 2 // deliberately conflicting
			u.DeputyID, v.DeputyID = 1, 1
			Interact(p, u, v, sample, sample)
		}
	}
}

// TestLemmaD10FastLeaderElect: FastLeaderElect elects exactly one leader
// within O(n·log n) interactions, across seeds (experiment T4's core).
func TestLemmaD10FastLeaderElect(t *testing.T) {
	const n = 128
	bound := uint64(200 * float64(n) * math.Log(n))
	failures := 0
	for seed := uint64(0); seed < 10; seed++ {
		f := NewFastLE(n, coin.FromPRNG(rng.New(seed)))
		res := sim.Run(f, rng.New(seed+1000), sim.Options{
			MaxInteractions:    bound,
			StopAfterStableFor: uint64(4 * n),
		})
		if !res.Stabilized {
			failures++
			t.Logf("seed %d: leaders=%d done=%v", seed, f.Leaders(), f.AllDone())
		}
	}
	if failures > 0 {
		t.Fatalf("%d/10 elections failed (w.h.p. event)", failures)
	}
}

func TestFastLEUniqueIDsGiveUniqueLeader(t *testing.T) {
	f := NewFastLE(16, coin.FromPRNG(rng.New(3)))
	r := rng.New(4)
	for i := 0; i < 100000 && !f.AllDone(); i++ {
		a, b := r.Pair(16)
		f.Interact(a, b)
	}
	if !f.AllDone() {
		t.Fatal("election did not conclude")
	}
	if got := f.Leaders(); got != 1 {
		t.Fatalf("leaders = %d, want 1", got)
	}
}

// TestLemmaD1AssignRanks: from a clean start the protocol produces a correct
// ranking and then remains silent (experiment T3's core).
func TestLemmaD1AssignRanks(t *testing.T) {
	cases := []struct{ n, r int }{{32, 1}, {32, 4}, {32, 16}, {64, 8}}
	for _, c := range cases {
		for seed := uint64(0); seed < 3; seed++ {
			pr, err := NewProtocol(c.n, c.r, rng.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			bound := uint64(400 * float64(c.n*c.n) / float64(c.r) * math.Log(float64(c.n)))
			res := sim.Run(pr, rng.New(seed+77), sim.Options{
				MaxInteractions:    bound,
				StopAfterStableFor: uint64(4 * c.n),
				Invariant:          pr.CheckInvariants,
			})
			if res.Err != nil {
				t.Fatalf("n=%d r=%d seed=%d: invariant: %v", c.n, c.r, seed, res.Err)
			}
			if !res.Stabilized {
				t.Fatalf("n=%d r=%d seed=%d: no ranking after %d interactions (phases %v)",
					c.n, c.r, seed, res.Interactions, pr.Phases())
			}
		}
	}
}

// TestAssignRanksSilence: once all agents are ranked, further interactions
// change nothing (the protocol is silent, as Lemma D.1 requires).
func TestAssignRanksSilence(t *testing.T) {
	pr, err := NewProtocol(32, 4, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(6)
	for i := 0; i < 4_000_000 && !pr.Correct(); i++ {
		a, b := r.Pair(32)
		pr.Interact(a, b)
	}
	if !pr.Correct() {
		t.Fatal("ranking did not complete")
	}
	before := pr.Ranks()
	sim.Steps(pr, r, 50_000)
	after := pr.Ranks()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("rank of agent %d changed after silence: %d -> %d", i, before[i], after[i])
		}
	}
}

func TestProtocolAccessors(t *testing.T) {
	pr, err := NewProtocol(8, 2, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if pr.N() != 8 {
		t.Fatalf("N = %d", pr.N())
	}
	if pr.Correct() || pr.AllRanked() {
		t.Fatal("fresh protocol cannot be correct")
	}
	if got := pr.Phases()[PhaseLeaderElection]; got != 8 {
		t.Fatalf("fresh phases: %v", pr.Phases())
	}
	if pr.State(0) == nil || len(pr.Ranks()) != 8 {
		t.Fatal("accessors broken")
	}
	if err := pr.CheckInvariants(); err != nil {
		t.Fatalf("fresh invariants: %v", err)
	}
}

func TestNewProtocolRejectsBadParams(t *testing.T) {
	if _, err := NewProtocol(8, 7, rng.New(1)); err == nil {
		t.Fatal("expected error for r > n/2")
	}
}
