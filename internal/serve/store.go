// store.go is the optional on-disk layer under the in-memory LRU: cell
// results and trial recordings persisted as plain files named by content
// address, so a restarted server (or a colleague pointed at the same
// directory) serves warm bytes without re-simulating. Writes are atomic
// (temp file + rename in the same directory), so a crashed write can never
// leave a truncated result that a later lookup would serve.
package serve

import (
	"fmt"
	"os"
	"path/filepath"
)

// diskStore persists result bytes under dir/cells/<address>.json and
// replay bytes under dir/replays/<address>-<seed>.json. Addresses are
// lowercase hex SHA-256 (path-safe by construction); the methods are safe
// for concurrent use because distinct keys touch distinct files and equal
// keys always carry equal bytes.
type diskStore struct {
	dir string
}

// newDiskStore creates the store's directory layout.
func newDiskStore(dir string) (*diskStore, error) {
	for _, sub := range []string{"cells", "replays"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("serve: store dir: %w", err)
		}
	}
	return &diskStore{dir: dir}, nil
}

func (d *diskStore) cellPath(key string) string {
	return filepath.Join(d.dir, "cells", key+".json")
}

func (d *diskStore) replayPath(key string, seed int) string {
	return filepath.Join(d.dir, "replays", fmt.Sprintf("%s-%d.json", key, seed))
}

// read returns the bytes at path, or nil if the file does not exist.
func (d *diskStore) read(path string) []byte {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	return b
}

// write atomically persists b at path; errors are returned so the caller
// can log them, but a failed persist never fails the request — the disk
// layer is an accelerator, not the source of truth.
func (d *diskStore) write(path string, b []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, path)
}

// getCell returns the persisted result bytes for the address (nil if absent).
func (d *diskStore) getCell(key string) []byte { return d.read(d.cellPath(key)) }

// putCell persists the result bytes for the address.
func (d *diskStore) putCell(key string, b []byte) error { return d.write(d.cellPath(key), b) }

// getReplay returns the persisted replay bytes (nil if absent).
func (d *diskStore) getReplay(key string, seed int) []byte { return d.read(d.replayPath(key, seed)) }

// putReplay persists the replay bytes.
func (d *diskStore) putReplay(key string, seed int, b []byte) error {
	return d.write(d.replayPath(key, seed), b)
}
