// cover_test.go exercises the service surfaces the main tests reach only
// incidentally: the health endpoint, the workload-phase compiler, replay
// persistence, LRU eviction under a tiny cache, and the not-found paths.

package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"sspp"
)

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(b), `"ok": true`) {
		t.Fatalf("healthz: status %d, body %s", resp.StatusCode, b)
	}
}

// TestPhaseSpecCompile maps every phase kind through its public
// constructor; the kinds must stay in sync with the sspp workload API.
func TestPhaseSpecCompile(t *testing.T) {
	specs := []PhaseSpec{
		{Kind: "transient-burst", At: 100, K: 4, Seed: 7},
		{Kind: "reinjection", At: 200, Class: "two-leaders", Seed: 7},
		{Kind: "join", At: 300, Seed: 7},
		{Kind: "leave", At: 400, Seed: 7},
		{Kind: "replacement-churn", Start: 100, End: 900, Rate: 0.01, Seed: 7},
		{Kind: "join-leave-churn", Start: 100, End: 900, Rate: 0.01, JoinFrac: 0.5, Seed: 7},
		{Kind: "churn-bursts", Start: 100, End: 900, Every: 200, Joins: 2, Leaves: 2, Seed: 7},
		{Kind: "population-step", At: 500, Delta: 8, Seed: 7},
	}
	for _, p := range specs {
		if _, err := p.compile(); err != nil {
			t.Errorf("compile(%q): %v", p.Kind, err)
		}
	}
	if _, err := (PhaseSpec{Kind: "meteor-strike"}).compile(); err == nil {
		t.Error("unknown phase kind compiled")
	}
}

// TestWorkloadGridEndToEnd submits a grid with a workload schedule: the
// phases must compile into the per-cell ensemble, move the content
// address, and produce results matching a direct sspp run of the same
// spec.
func TestWorkloadGridEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	spec := smallGrid()
	spec.Workload = []PhaseSpec{{Kind: "transient-burst", At: 500, K: 4, Seed: 7}}
	code, body, _ := submit(t, ts, spec, "")
	if code != http.StatusOK {
		t.Fatalf("workload submit: status %d, body %s", code, body)
	}
	var gr GridResult
	if err := json.Unmarshal(body, &gr); err != nil {
		t.Fatal(err)
	}
	var cr CellResult
	if err := json.Unmarshal(gr.Cells[0], &cr); err != nil {
		t.Fatal(err)
	}
	if len(cr.Spec.Workload) != 1 || cr.Spec.Workload[0].Kind != "transient-burst" {
		t.Fatalf("resolved spec lost the workload: %+v", cr.Spec.Workload)
	}

	// The workload is part of the content address.
	plain := smallGrid()
	plainCells, err := plain.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if cr.Hash == plainCells[0].Hash() {
		t.Fatal("workload did not move the cell hash")
	}

	// Same spec straight through the public API: identical cell.
	direct, err := sspp.NewEnsemble(sspp.Grid{
		Protocols: []string{cr.Spec.Protocol},
		Backend:   cr.Spec.Backend,
		Points:    []sspp.Point{cr.Spec.Point},
		Seeds:     cr.Spec.Seeds,
		BaseSeed:  cr.Spec.BaseSeed,
		Workload:  sspp.NewWorkload(sspp.TransientBurst(500, 4, 7)),
	}, sspp.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	want := direct.Run().Cells[0]
	if cr.Cell.Recovered != want.Recovered || !bytes.Equal(mustJSON(t, cr.Cell.Samples), mustJSON(t, want.Samples)) {
		t.Fatalf("served workload cell diverges from the direct run:\nserve: %+v\ndirect: %+v", cr.Cell, want)
	}

	// An unknown phase kind is rejected up front.
	bad := smallGrid()
	bad.Workload = []PhaseSpec{{Kind: "meteor-strike"}}
	if code, body, _ := submit(t, ts, bad, ""); code != http.StatusBadRequest {
		t.Fatalf("unknown phase kind: status %d, body %s", code, body)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestReplayPersistsToDisk asserts the replay store round-trip: the first
// request computes and persists, the repeat serves the identical bytes
// from disk without taking a pool slot.
func TestReplayPersistsToDisk(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Dir: t.TempDir()})

	code, body, _ := submit(t, ts, smallGrid(), "")
	if code != http.StatusOK {
		t.Fatalf("submit: status %d", code)
	}
	var gr GridResult
	if err := json.Unmarshal(body, &gr); err != nil {
		t.Fatal(err)
	}
	var cr CellResult
	if err := json.Unmarshal(gr.Cells[0], &cr); err != nil {
		t.Fatal(err)
	}

	get := func(url string) (int, []byte, string) {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, b, resp.Header.Get("X-Sppd-Cache")
	}

	url := fmt.Sprintf("%s/v1/cells/%s/replay?seed=0", ts.URL, cr.Hash)
	code, first, src := get(url)
	if code != http.StatusOK || src != "computed" {
		t.Fatalf("first replay: status %d, source %q", code, src)
	}
	code, second, src := get(url)
	if code != http.StatusOK || src != "disk" {
		t.Fatalf("repeat replay: status %d, source %q", code, src)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("disk-served replay is not byte-identical to the computed one")
	}

	if code, _, _ := get(fmt.Sprintf("%s/v1/cells/%s/replay?seed=banana", ts.URL, cr.Hash)); code != http.StatusBadRequest {
		t.Fatalf("malformed seed: status %d", code)
	}
}

// TestLRUEvictionFallsBackToDisk pins the cache hierarchy with a
// one-entry LRU: computing a second cell evicts the first from memory,
// and the evicted cell comes back from disk (promoted), not a re-compute.
func TestLRUEvictionFallsBackToDisk(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, CacheEntries: 1, Dir: t.TempDir()})

	first := smallGrid()
	second := smallGrid()
	second.BaseSeed = 1

	for _, g := range []GridSpec{first, second} {
		if code, body, _ := submit(t, ts, g, ""); code != http.StatusOK {
			t.Fatalf("submit: status %d, body %s", code, body)
		}
	}
	_, _, resp := submit(t, ts, first, "")
	if got := resp.Header.Get("X-Sppd-Cache"); got != "computed=0 dedup=0 memory=0 disk=1" {
		t.Fatalf("evicted cell provenance = %q, want a disk hit", got)
	}
	if got := s.computed.Load(); got != 2 {
		t.Fatalf("computed %d cells, want 2 (eviction must not force a re-compute)", got)
	}
}

func TestUnknownJobAndCellAre404(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	for _, path := range []string{"/v1/grids/j-999", "/v1/grids/j-999/events", "/v1/cells/feedface/replay"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}
