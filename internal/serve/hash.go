// hash.go content-addresses cells. A cell's address is the SHA-256 of a
// canonical, field-ordered binary encoding of its resolved CellSpec — not
// of its JSON (map-free, but field order and omitempty make JSON a fragile
// canonical form) — prefixed by three version numbers:
//
//   - HashVersion: the encoding itself (field set and order below);
//   - EngineEpoch: the simulation semantics. Bump it whenever an engine
//     change alters what any cell computes (a PRNG tweak, a transition-rule
//     fix, a budget-default change) — every cached result is then invisible
//     to lookups, which is exactly right: it no longer describes what the
//     engine would compute;
//   - sspp.EnsembleSchemaVersion: the result JSON layout, hashed so cached
//     bytes always carry the layout the current engine would emit.
//
// The encoding is injective on CellSpec: every variable-length field is
// length-prefixed and every field is written unconditionally in declaration
// order, so no two distinct specs share an encoding.
package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"

	"sspp"
)

const (
	// HashVersion identifies the canonical CellSpec encoding below.
	HashVersion = 1
	// EngineEpoch identifies the engine's simulation semantics; see above.
	EngineEpoch = 1
)

// hasher accumulates the canonical encoding.
type hasher struct {
	buf []byte
}

func (h *hasher) u64(v uint64) {
	h.buf = binary.AppendUvarint(h.buf, v)
}

func (h *hasher) i64(v int64) {
	h.buf = binary.AppendVarint(h.buf, v)
}

func (h *hasher) f64(v float64) {
	h.buf = binary.BigEndian.AppendUint64(h.buf, math.Float64bits(v))
}

func (h *hasher) str(s string) {
	h.u64(uint64(len(s)))
	h.buf = append(h.buf, s...)
}

func (h *hasher) bool(v bool) {
	if v {
		h.buf = append(h.buf, 1)
	} else {
		h.buf = append(h.buf, 0)
	}
}

// Hash returns the cell's content address: 64 lowercase hex digits.
func (c *CellSpec) Hash() string {
	var h hasher
	h.u64(HashVersion)
	h.u64(EngineEpoch)
	h.u64(sspp.EnsembleSchemaVersion)
	h.str(c.Protocol)
	h.str(c.Backend)
	h.str(c.Topology)
	h.str(c.Clock)
	h.i64(int64(c.Point.N))
	h.i64(int64(c.Point.R))
	h.str(c.Adversary)
	h.i64(int64(c.Seeds))
	h.u64(c.BaseSeed)
	h.u64(c.MaxInteractions)
	h.u64(c.Confirm)
	h.i64(int64(c.TransientK))
	h.i64(int64(c.Tau))
	h.bool(c.SyntheticCoins)
	h.u64(uint64(len(c.Workload)))
	for _, p := range c.Workload {
		h.str(p.Kind)
		h.u64(p.At)
		h.u64(p.Start)
		h.u64(p.End)
		h.u64(p.Every)
		h.i64(int64(p.K))
		h.i64(int64(p.Delta))
		h.i64(int64(p.Joins))
		h.i64(int64(p.Leaves))
		h.f64(p.Rate)
		h.f64(p.JoinFrac)
		h.str(p.Class)
		h.u64(p.Seed)
	}
	sum := sha256.Sum256(h.buf)
	return hex.EncodeToString(sum[:])
}
