package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"sspp"
)

// goldenGrid crosses every axis the hash covers: protocols, backends,
// topologies, clocks, points, adversaries — plus every scalar knob and a
// workload schedule exercising string, integer and float phase fields.
// 2·2·2·2·2·2 = 64 cells. The spec is for hashing only (species × ring
// combinations would fail validation; content addressing is defined on
// resolved specs, valid or not).
func goldenGrid() GridSpec {
	return GridSpec{
		Protocols:   []string{sspp.ProtocolElectLeader, sspp.ProtocolCIW},
		Backends:    []string{sspp.BackendAgent, sspp.BackendSpecies},
		Topologies:  []string{"complete", "random-regular(8)"},
		Clocks:      []string{sspp.ClockDiscrete, sspp.ClockContinuous},
		Points:      []sspp.Point{{N: 64, R: 8}, {N: 128, R: 16}},
		Adversaries: []string{"", string(sspp.AdversaryTwoLeaders)},
		Seeds:       3,
		BaseSeed:    7,

		MaxInteractions: 50000,
		Confirm:         640,
		Tau:             9,
		Workload: []PhaseSpec{
			{Kind: "transient-burst", At: 1000, K: 4, Seed: 11},
			{Kind: "replacement-churn", Start: 2000, End: 3000, Rate: 0.125, Class: string(sspp.AdversaryRandomGarbage), Seed: 12},
			{Kind: "join-leave-churn", Start: 3000, End: 4000, Rate: 0.0625, JoinFrac: 0.75, Seed: 13},
		},
	}
}

// TestCanonicalHashGolden pins the content-address scheme: the hashes below
// are load-bearing bytes. If this test fails because the canonical encoding
// changed on purpose, bump HashVersion (or EngineEpoch for an engine
// semantics change) and re-pin — a silent change would alias new results
// onto stale cache entries.
func TestCanonicalHashGolden(t *testing.T) {
	g := goldenGrid()
	cells, err := g.Cells()
	if err != nil {
		t.Fatalf("Cells: %v", err)
	}
	if len(cells) != 64 {
		t.Fatalf("golden grid crosses to %d cells, want 64", len(cells))
	}

	hashes := make([]string, len(cells))
	seen := make(map[string]int)
	for i := range cells {
		hashes[i] = cells[i].Hash()
		if prev, dup := seen[hashes[i]]; dup {
			t.Fatalf("cells %d and %d collide on %s", prev, i, hashes[i])
		}
		seen[hashes[i]] = i
	}

	// First and last cell pinned in full, the whole set pinned through a
	// combined digest over the 64 hex strings in decomposition order.
	const (
		wantFirst    = "85a5474fe27817125c7fa714062ba1f0919478be45cb323e024f85acbe691954"
		wantLast     = "482f832e27013ce8e9a2a8f3392000c35a59641a5117e13c6a81867db540d42c"
		wantCombined = "e07f625b901edcab1f26aac9663486994b9b950640f6cddf5ed75017cec98bfa"
	)
	combined := sha256.New()
	for _, h := range hashes {
		combined.Write([]byte(h))
	}
	if hashes[0] != wantFirst {
		t.Errorf("cell 0 hash:\n got %s\nwant %s", hashes[0], wantFirst)
	}
	if hashes[63] != wantLast {
		t.Errorf("cell 63 hash:\n got %s\nwant %s", hashes[63], wantLast)
	}
	if got := hex.EncodeToString(combined.Sum(nil)); got != wantCombined {
		t.Errorf("combined digest over all 64 cell hashes:\n got %s\nwant %s", got, wantCombined)
	}
	if t.Failed() {
		t.Logf("regeneration values: first=%s last=%s combined=%s",
			hashes[0], hashes[63], hex.EncodeToString(combined.Sum(nil)))
	}
}

// TestHashSelectorInvariance checks that spelling never leaks into the
// address: default selectors hash like their explicit forms, and the two
// topology-parameter spellings canonicalize together.
func TestHashSelectorInvariance(t *testing.T) {
	base := GridSpec{Points: []sspp.Point{{N: 32, R: 8}}, Seeds: 2}
	explicit := GridSpec{
		Protocols:  []string{sspp.ProtocolElectLeader},
		Backends:   []string{sspp.BackendAgent},
		Topologies: []string{"complete"},
		Clocks:     []string{sspp.ClockDiscrete},
		Points:     []sspp.Point{{N: 32, R: 8}},
		Seeds:      2,
	}
	h1 := mustOneCell(t, base).Hash()
	h2 := mustOneCell(t, explicit).Hash()
	if h1 != h2 {
		t.Errorf("default selectors hash %s, explicit forms %s", h1, h2)
	}

	flagForm := GridSpec{Topologies: []string{"random-regular=8"}, Points: []sspp.Point{{N: 32, R: 8}}, Seeds: 2}
	nameForm := GridSpec{Topologies: []string{"random-regular(8)"}, Points: []sspp.Point{{N: 32, R: 8}}, Seeds: 2}
	if a, b := mustOneCell(t, flagForm).Hash(), mustOneCell(t, nameForm).Hash(); a != b {
		t.Errorf("topology spellings hash apart: %s vs %s", a, b)
	}

	// The auto selector resolves before hashing: past the species threshold
	// it addresses the same cell as an explicit species selector.
	big := sspp.Point{N: sspp.SpeciesAutoThreshold, R: 8}
	auto := GridSpec{Backends: []string{sspp.BackendAuto}, Points: []sspp.Point{big}, Seeds: 2}
	speciesForm := GridSpec{Backends: []string{sspp.BackendSpecies}, Points: []sspp.Point{big}, Seeds: 2}
	if a, b := mustOneCell(t, auto).Hash(), mustOneCell(t, speciesForm).Hash(); a != b {
		t.Errorf("auto past threshold hashes %s, explicit species %s", a, b)
	}

	// The checkpoint cadence is telemetry, not content: it must not move
	// the address.
	observed := base
	observed.CheckpointEvery = 100
	if a, b := mustOneCell(t, base).Hash(), mustOneCell(t, observed).Hash(); a != b {
		t.Errorf("checkpoint cadence moved the address: %s vs %s", a, b)
	}

	// And every scalar knob must move it.
	knobs := []func(*GridSpec){
		func(g *GridSpec) { g.Seeds = 3 },
		func(g *GridSpec) { g.BaseSeed = 1 },
		func(g *GridSpec) { g.MaxInteractions = 1 },
		func(g *GridSpec) { g.Confirm = 1 },
		func(g *GridSpec) { g.TransientK = 1 },
		func(g *GridSpec) { g.Tau = 1 },
		func(g *GridSpec) { g.SyntheticCoins = true },
		func(g *GridSpec) { g.Workload = []PhaseSpec{{Kind: "leave", At: 1}} },
	}
	for i, knob := range knobs {
		spec := base
		knob(&spec)
		if got := mustOneCell(t, spec).Hash(); got == h1 {
			t.Errorf("knob %d did not move the address", i)
		}
	}
}

func mustOneCell(t *testing.T, g GridSpec) *CellSpec {
	t.Helper()
	cells, err := g.Cells()
	if err != nil {
		t.Fatalf("Cells: %v", err)
	}
	if len(cells) != 1 {
		t.Fatalf("grid crosses to %d cells, want 1", len(cells))
	}
	return &cells[0]
}
