// Package serve implements the sppd simulation service: an HTTP JSON API
// that accepts Ensemble grid specs, decomposes them into content-addressed
// cells, runs cells on a bounded worker pool with singleflight dedup, and
// caches results in an in-memory LRU backed by an optional on-disk store.
//
// The whole design rests on one property of the public Ensemble layer: a
// trial's randomness is derived per (cell config, seed index) independently
// of the grid layout and the worker count (deriveSeedStreams in
// ensemble.go), so the cell computed by a one-cell grid is byte-identical
// to the same cell inside any larger grid. That makes cells — not grids —
// the cacheable unit: overlapping grids from different clients share cells,
// and a warm repeat of any previously computed grid is assembled from
// cached bytes without simulating anything.
//
// spec.go defines the request surface (GridSpec), its decomposition into
// resolved per-cell configs (CellSpec), and the compilation of a CellSpec
// back into a one-cell sspp.Grid. hash.go canonically encodes a CellSpec
// into its content address. server.go serves the HTTP API.
package serve

import (
	"fmt"

	"sspp"
)

// GridSpec is the request body of POST /v1/grids: the declarative cross
// product the public sspp.Grid accepts, plus a backend axis (sspp.Grid fixes
// one backend per grid; the service crosses them because cells are
// independent). Empty axes default exactly like sspp.Grid: the paper's
// ElectLeader_r, the agent backend, the complete topology, the discrete
// clock, a single clean start, 5 seeds.
type GridSpec struct {
	// Protocols are registry protocol names (GET /v1/protocols lists them).
	Protocols []string `json:"protocols,omitempty"`
	// Backends are sspp backend selectors: "agent", "species" or "auto"
	// ("auto" resolves per point before hashing, so a cell's content address
	// never depends on selector spelling).
	Backends []string `json:"backends,omitempty"`
	// Topologies are topology names in sspp.ParseTopology syntax
	// ("complete", "ring", "torus", "random-regular(8)", "erdos-renyi(0.1)").
	Topologies []string `json:"topologies,omitempty"`
	// Clocks are simulation clock names ("discrete", "continuous",
	// "continuous-exact").
	Clocks []string `json:"clocks,omitempty"`
	// Points are the (n, r) parameter points (at least one).
	Points []sspp.Point `json:"points"`
	// Adversaries are starting-configuration class names; an explicit ""
	// entry adds a clean-start column.
	Adversaries []string `json:"adversaries,omitempty"`
	// Seeds is the number of independent trials per cell (default 5).
	Seeds int `json:"seeds,omitempty"`
	// BaseSeed offsets all trial randomness.
	BaseSeed uint64 `json:"base_seed,omitempty"`
	// MaxInteractions is the per-trial budget (0: the protocol's default).
	MaxInteractions uint64 `json:"max_interactions,omitempty"`
	// Confirm overrides the confirmation window (0: per-run default).
	Confirm uint64 `json:"confirm,omitempty"`
	// TransientK switches trials to the stabilize-corrupt-recover shape.
	TransientK int `json:"transient_k,omitempty"`
	// Tau is the "loosele" timeout parameter (0: 4·ln n).
	Tau int32 `json:"tau,omitempty"`
	// SyntheticCoins runs trials fully derandomized ("electleader" only).
	SyntheticCoins bool `json:"synthetic_coins,omitempty"`
	// Workload attaches a disruption schedule to every trial (exclusive with
	// TransientK; see the sspp workload phase constructors).
	Workload []PhaseSpec `json:"workload,omitempty"`
	// CheckpointEvery, when positive, streams an Observe checkpoint over the
	// job's SSE feed every that many interactions of every trial. Checkpoints
	// are attached only where observation is provably inert (agent backend,
	// discrete clock — see sspp.ObserveTrials), so the cadence is NOT part of
	// any cell's content address: observed and unobserved computations of the
	// same cell are bit-identical.
	CheckpointEvery uint64 `json:"checkpoint_every,omitempty"`
}

// PhaseSpec is the JSON form of one workload phase, mirroring the public
// sspp constructors; Kind selects which one.
type PhaseSpec struct {
	// Kind is one of "transient-burst", "reinjection", "join", "leave",
	// "replacement-churn", "join-leave-churn", "churn-bursts",
	// "population-step".
	Kind string `json:"kind"`
	// At is the firing time of instantaneous phases (interactions).
	At uint64 `json:"at,omitempty"`
	// Start and End bound the window of process phases (interactions).
	Start uint64 `json:"start,omitempty"`
	End   uint64 `json:"end,omitempty"`
	// Every is the burst period of "churn-bursts".
	Every uint64 `json:"every,omitempty"`
	// K is the burst size of "transient-burst".
	K int `json:"k,omitempty"`
	// Delta is the population change of "population-step".
	Delta int `json:"delta,omitempty"`
	// Joins and Leaves are the per-burst sizes of "churn-bursts".
	Joins  int `json:"joins,omitempty"`
	Leaves int `json:"leaves,omitempty"`
	// Rate is the event rate of the churn processes (events per interaction).
	Rate float64 `json:"rate,omitempty"`
	// JoinFrac is the join fraction of "join-leave-churn".
	JoinFrac float64 `json:"join_frac,omitempty"`
	// Class is the adversary class of phases that inject or shape joiners.
	Class string `json:"class,omitempty"`
	// Seed seeds the phase's own randomness.
	Seed uint64 `json:"seed,omitempty"`
}

// compile maps the spec to its public constructor.
func (p PhaseSpec) compile() (sspp.WorkloadPhase, error) {
	class := sspp.Adversary(p.Class)
	switch p.Kind {
	case "transient-burst":
		return sspp.TransientBurst(p.At, p.K, p.Seed), nil
	case "reinjection":
		return sspp.Reinjection(p.At, class, p.Seed), nil
	case "join":
		return sspp.JoinAt(p.At, class, p.Seed), nil
	case "leave":
		return sspp.LeaveAt(p.At, p.Seed), nil
	case "replacement-churn":
		return sspp.ReplacementChurn(p.Start, p.End, p.Rate, class, p.Seed), nil
	case "join-leave-churn":
		return sspp.JoinLeaveChurn(p.Start, p.End, p.Rate, p.JoinFrac, class, p.Seed), nil
	case "churn-bursts":
		return sspp.ChurnBursts(p.Start, p.End, p.Every, p.Joins, p.Leaves, class, p.Seed), nil
	case "population-step":
		return sspp.PopulationStep(p.At, p.Delta, class, p.Seed), nil
	default:
		return sspp.WorkloadPhase{}, fmt.Errorf("serve: unknown workload phase kind %q", p.Kind)
	}
}

// CellSpec is one fully resolved cell of a GridSpec: every axis value made
// explicit and every selector resolved ("" → "electleader", "auto" → the
// concrete backend, "" → "discrete", topology names canonicalized). The
// resolved form is what gets content-addressed (hash.go): two requests that
// mean the same cell always hash to the same address, however they spelled
// their selectors.
type CellSpec struct {
	Protocol  string     `json:"protocol"`
	Backend   string     `json:"backend"`
	Topology  string     `json:"topology"`
	Clock     string     `json:"clock"`
	Point     sspp.Point `json:"point"`
	Adversary string     `json:"adversary,omitempty"`
	Seeds     int        `json:"seeds"`
	BaseSeed  uint64     `json:"base_seed"`

	MaxInteractions uint64      `json:"max_interactions,omitempty"`
	Confirm         uint64      `json:"confirm,omitempty"`
	TransientK      int         `json:"transient_k,omitempty"`
	Tau             int32       `json:"tau,omitempty"`
	SyntheticCoins  bool        `json:"synthetic_coins,omitempty"`
	Workload        []PhaseSpec `json:"workload,omitempty"`
}

// protocolCompactable reports whether the named registry protocol has a
// species form, from the public capability table.
func protocolCompactable(name string) bool {
	for _, info := range sspp.Protocols() {
		if info.Name != name {
			continue
		}
		for _, c := range info.Capabilities {
			if c == sspp.CapabilityCompactable {
				return true
			}
		}
	}
	return false
}

// resolveBackend mirrors the public backend resolution for hashing: the
// cell's content address must name the backend that will actually run, not
// the selector. Validation proper is sspp's job (compileGrid + NewEnsemble
// reject illegal combinations); this only needs the auto rule — species for
// compactable protocols at populations of SpeciesAutoThreshold or more.
// Like sspp's resolveBackend, an auto resolution that lands on species for
// an illegal combination (non-complete topology, synthetic coins) resolves
// to species anyway and fails per-cell validation, rather than silently
// degrading a million-agent run to the agent backend.
func resolveBackend(selector, protocol string, n int) (string, error) {
	switch selector {
	case "", sspp.BackendAgent:
		return sspp.BackendAgent, nil
	case sspp.BackendSpecies:
		return sspp.BackendSpecies, nil
	case sspp.BackendAuto:
		if protocolCompactable(protocol) && n >= sspp.SpeciesAutoThreshold {
			return sspp.BackendSpecies, nil
		}
		return sspp.BackendAgent, nil
	default:
		return "", fmt.Errorf("serve: unknown backend %q (want %q, %q or %q)",
			selector, sspp.BackendAgent, sspp.BackendSpecies, sspp.BackendAuto)
	}
}

// Cells decomposes the grid into resolved cell specs, in declaration order
// (protocols outermost, then backends, topologies, clocks, points,
// adversaries — the Ensemble aggregation order with the backend axis
// added). Resolution errors (unknown protocol, backend or clock, malformed
// topology) fail the whole grid; semantic validation happens when each cell
// compiles to a one-cell Ensemble.
func (g *GridSpec) Cells() ([]CellSpec, error) {
	if len(g.Points) == 0 {
		return nil, fmt.Errorf("serve: grid spec has no points")
	}
	if g.Seeds < 0 {
		return nil, fmt.Errorf("serve: grid spec has negative seed count %d", g.Seeds)
	}
	seeds := g.Seeds
	if seeds == 0 {
		seeds = 5
	}
	protos := g.Protocols
	if len(protos) == 0 {
		protos = []string{""}
	}
	known := make(map[string]bool)
	for _, info := range sspp.Protocols() {
		known[info.Name] = true
	}
	backends := g.Backends
	if len(backends) == 0 {
		backends = []string{""}
	}
	topos := g.Topologies
	if len(topos) == 0 {
		topos = []string{""}
	}
	clocks := g.Clocks
	if len(clocks) == 0 {
		clocks = []string{""}
	}
	advs := g.Adversaries
	if len(advs) == 0 {
		advs = []string{""}
	}
	var out []CellSpec
	for _, proto := range protos {
		rproto := proto
		if rproto == "" {
			rproto = sspp.ProtocolElectLeader
		}
		if !known[rproto] {
			return nil, fmt.Errorf("serve: unknown protocol %q (GET /v1/protocols lists the registry)", proto)
		}
		for _, backend := range backends {
			for _, topo := range topos {
				top, err := sspp.ParseTopology(topo)
				if err != nil {
					return nil, err
				}
				for _, clock := range clocks {
					rclock := clock
					if rclock == "" {
						rclock = sspp.ClockDiscrete
					}
					switch rclock {
					case sspp.ClockDiscrete, sspp.ClockContinuous, sspp.ClockContinuousExact:
					default:
						return nil, fmt.Errorf("serve: unknown clock %q (want %q, %q or %q)",
							clock, sspp.ClockDiscrete, sspp.ClockContinuous, sspp.ClockContinuousExact)
					}
					for _, pt := range g.Points {
						rbackend, err := resolveBackend(backend, rproto, pt.N)
						if err != nil {
							return nil, err
						}
						for _, adv := range advs {
							out = append(out, CellSpec{
								Protocol:        rproto,
								Backend:         rbackend,
								Topology:        top.Name(),
								Clock:           rclock,
								Point:           pt,
								Adversary:       adv,
								Seeds:           seeds,
								BaseSeed:        g.BaseSeed,
								MaxInteractions: g.MaxInteractions,
								Confirm:         g.Confirm,
								TransientK:      g.TransientK,
								Tau:             g.Tau,
								SyntheticCoins:  g.SyntheticCoins,
								Workload:        g.Workload,
							})
						}
					}
				}
			}
		}
	}
	return out, nil
}

// compileGrid compiles the cell back into a one-cell sspp.Grid with every
// axis explicit, so the computed sspp.Cell is stamped with its protocol,
// topology and clock names — cached cell bytes must be self-describing,
// not dependent on which axes the submitting grid happened to cross.
func (c *CellSpec) compileGrid() (sspp.Grid, error) {
	top, err := sspp.ParseTopology(c.Topology)
	if err != nil {
		return sspp.Grid{}, err
	}
	g := sspp.Grid{
		Protocols:       []string{c.Protocol},
		Topologies:      []sspp.Topology{top},
		Clocks:          []string{c.Clock},
		Points:          []sspp.Point{c.Point},
		Seeds:           c.Seeds,
		BaseSeed:        c.BaseSeed,
		MaxInteractions: c.MaxInteractions,
		Confirm:         c.Confirm,
		TransientK:      c.TransientK,
		Tau:             c.Tau,
		SyntheticCoins:  c.SyntheticCoins,
		Backend:         c.Backend,
	}
	if c.Adversary != "" {
		g.Adversaries = []sspp.Adversary{sspp.Adversary(c.Adversary)}
	}
	if len(c.Workload) > 0 {
		phases := make([]sspp.WorkloadPhase, len(c.Workload))
		for i, p := range c.Workload {
			if phases[i], err = p.compile(); err != nil {
				return sspp.Grid{}, err
			}
		}
		g.Workload = sspp.NewWorkload(phases...)
	}
	return g, nil
}

// ensemble builds the validated one-cell Ensemble for the cell. The
// per-cell ensemble runs its seeds sequentially (Workers(1)): the service
// parallelizes across cells on its own bounded pool, and nesting a second
// pool inside each cell would oversubscribe it. Results are byte-identical
// either way — that is the Ensemble layer's worker-count contract.
func (c *CellSpec) ensemble() (*sspp.Ensemble, error) {
	g, err := c.compileGrid()
	if err != nil {
		return nil, err
	}
	return sspp.NewEnsemble(g, sspp.Workers(1))
}

// observationInert reports whether Observe checkpoints can be attached to
// this cell's trials without perturbing their results: agent backend under
// the discrete clock (see sspp.ObserveTrials). Everywhere else the stepping
// loop consumes randomness in chunk-shaped draws whose boundaries the
// observation cadence would move.
func (c *CellSpec) observationInert() bool {
	return c.Backend == sspp.BackendAgent && c.Clock == sspp.ClockDiscrete
}
