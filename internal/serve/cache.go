// cache.go is the in-memory result cache: a plain LRU over marshaled cell
// bytes, keyed by content address. Values are immutable once inserted
// (results are deterministic, so a key can only ever map to one byte
// string), which keeps the concurrency story trivial: the cache hands out
// the stored slice itself and callers must not mutate it.
package serve

import "container/list"

// lruCache is an LRU map from content address to marshaled CellResult
// bytes. Not safe for concurrent use; the Server serializes access.
type lruCache struct {
	max   int
	order *list.List               // front = most recently used
	items map[string]*list.Element // address -> element holding *lruEntry
}

type lruEntry struct {
	key   string
	bytes []byte
}

func newLRUCache(max int) *lruCache {
	return &lruCache{max: max, order: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached bytes for key (nil if absent) and marks the entry
// most recently used.
func (c *lruCache) get(key string) []byte {
	el, ok := c.items[key]
	if !ok {
		return nil
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).bytes
}

// put inserts the bytes under key, evicting least-recently-used entries
// over capacity. Re-inserting an existing key only refreshes its recency:
// results are deterministic, so the bytes cannot have changed.
func (c *lruCache) put(key string, b []byte) {
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, bytes: b})
	for c.order.Len() > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*lruEntry).key)
	}
}

// len returns the number of cached entries.
func (c *lruCache) len() int { return c.order.Len() }
