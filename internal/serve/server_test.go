package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"sspp"
)

// newTestServer builds a Server and an httptest front end.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewServer(opts)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// submit POSTs the grid spec and returns (status, body, response).
func submit(t *testing.T, ts *httptest.Server, spec GridSpec, query string) (int, []byte, *http.Response) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	resp, err := http.Post(ts.URL+"/v1/grids"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/grids: %v", err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, b, resp
}

// smallGrid is the canonical cheap test grid: one agent-backend cell.
func smallGrid() GridSpec {
	return GridSpec{Points: []sspp.Point{{N: 32, R: 8}}, Seeds: 2}
}

func TestSubmitComputesAndWarmRepeatIsByteIdentical(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2})

	code, cold, resp := submit(t, ts, smallGrid(), "")
	if code != http.StatusOK {
		t.Fatalf("cold submit: status %d, body %s", code, cold)
	}
	if got := resp.Header.Get("X-Sppd-Cache"); got != "computed=1 dedup=0 memory=0 disk=0" {
		t.Fatalf("cold provenance = %q", got)
	}
	if got := s.computed.Load(); got != 1 {
		t.Fatalf("cold submit computed %d cells, want 1", got)
	}

	code, warm, resp := submit(t, ts, smallGrid(), "")
	if code != http.StatusOK {
		t.Fatalf("warm submit: status %d, body %s", code, warm)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("warm repeat is not byte-identical to the cold compute:\ncold: %s\nwarm: %s", cold, warm)
	}
	if got := resp.Header.Get("X-Sppd-Cache"); got != "computed=0 dedup=0 memory=1 disk=0" {
		t.Fatalf("warm provenance = %q", got)
	}
	if got := s.computed.Load(); got != 1 {
		t.Fatalf("warm repeat re-simulated: computed %d cells, want still 1", got)
	}

	// The result must decode and carry the resolved one-cell grid.
	var gr GridResult
	if err := json.Unmarshal(warm, &gr); err != nil {
		t.Fatalf("decode GridResult: %v", err)
	}
	if gr.SchemaVersion != ResultSchemaVersion || len(gr.Cells) != 1 {
		t.Fatalf("GridResult = schema %d, %d cells; want schema %d, 1 cell",
			gr.SchemaVersion, len(gr.Cells), ResultSchemaVersion)
	}
	var cr CellResult
	if err := json.Unmarshal(gr.Cells[0], &cr); err != nil {
		t.Fatalf("decode CellResult: %v", err)
	}
	if cr.Spec.Protocol != sspp.ProtocolElectLeader || cr.Spec.Backend != sspp.BackendAgent ||
		cr.Spec.Topology != "complete" || cr.Spec.Clock != sspp.ClockDiscrete {
		t.Fatalf("cell spec not resolved: %+v", cr.Spec)
	}
	if cr.Hash != cr.Spec.Hash() {
		t.Fatalf("stamped hash %s != recomputed %s", cr.Hash, cr.Spec.Hash())
	}
	if cr.Cell.Recovered != 2 {
		t.Fatalf("cell recovered %d/2 trials", cr.Cell.Recovered)
	}
}

// TestSingleflightDedup floods the server with identical concurrent
// submissions: exactly one simulation must run, everyone must get the same
// bytes. Run under -race this also exercises the flight/cache locking.
func TestSingleflightDedup(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2})

	const clients = 8
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(GridSpec{Points: []sspp.Point{{N: 64, R: 8}}, Seeds: 3})
			resp, err := http.Post(ts.URL+"/v1/grids", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()

	if got := s.computed.Load(); got != 1 {
		t.Fatalf("%d concurrent identical submissions computed %d cells, want 1 (dedup=%d memory=%d)",
			clients, got, s.deduped.Load(), s.memHits.Load())
	}
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("client %d got different bytes than client 0", i)
		}
	}
}

// TestDecompositionMatchesEnsemble submits a multi-axis grid and checks
// every served cell against the same cross product run directly through
// the public Ensemble: the service decomposes, caches and reassembles, but
// the numbers must be exactly the Ensemble's.
func TestDecompositionMatchesEnsemble(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4})

	spec := GridSpec{
		Protocols:   []string{sspp.ProtocolElectLeader, sspp.ProtocolCIW},
		Points:      []sspp.Point{{N: 24, R: 6}, {N: 32, R: 8}},
		Adversaries: []string{"", string(sspp.AdversaryTwoLeaders)},
		Seeds:       2,
		BaseSeed:    99,
	}
	code, body, _ := submit(t, ts, spec, "")
	if code != http.StatusOK {
		t.Fatalf("submit: status %d, body %s", code, body)
	}
	var gr GridResult
	if err := json.Unmarshal(body, &gr); err != nil {
		t.Fatalf("decode GridResult: %v", err)
	}

	direct, err := sspp.NewEnsemble(sspp.Grid{
		Protocols:   spec.Protocols,
		Points:      spec.Points,
		Adversaries: []sspp.Adversary{"", sspp.AdversaryTwoLeaders},
		Seeds:       spec.Seeds,
		BaseSeed:    spec.BaseSeed,
	})
	if err != nil {
		t.Fatalf("NewEnsemble: %v", err)
	}
	want := direct.Run()
	if len(gr.Cells) != len(want.Cells) {
		t.Fatalf("served %d cells, ensemble has %d", len(gr.Cells), len(want.Cells))
	}
	// The service's decomposition order with a single backend is the
	// Ensemble's declaration order, so cells align by index.
	for i, raw := range gr.Cells {
		var cr CellResult
		if err := json.Unmarshal(raw, &cr); err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		w := want.Cells[i]
		if cr.Cell.Point != w.Point || cr.Cell.Adversary != w.Adversary {
			t.Fatalf("cell %d is (%+v, %q), ensemble has (%+v, %q)",
				i, cr.Cell.Point, cr.Cell.Adversary, w.Point, w.Adversary)
		}
		if cr.Cell.Recovered != w.Recovered || cr.Cell.Failures != w.Failures {
			t.Fatalf("cell %d recovered %d/%d failures, ensemble %d/%d",
				i, cr.Cell.Recovered, cr.Cell.Failures, w.Recovered, w.Failures)
		}
		if !reflect.DeepEqual(cr.Cell.Samples, w.Samples) {
			t.Fatalf("cell %d samples %v, ensemble %v", i, cr.Cell.Samples, w.Samples)
		}
		if cr.Cell.Interactions != w.Interactions {
			t.Fatalf("cell %d interactions %+v, ensemble %+v", i, cr.Cell.Interactions, w.Interactions)
		}
	}
}

// TestOverlappingGridsShareCells submits a superset grid after a subset:
// the shared cell must come from cache, only the new cells compute.
func TestOverlappingGridsShareCells(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2})

	code, _, _ := submit(t, ts, smallGrid(), "")
	if code != http.StatusOK {
		t.Fatalf("subset submit: status %d", code)
	}
	super := smallGrid()
	super.Points = append(super.Points, sspp.Point{N: 48, R: 8})
	code, _, resp := submit(t, ts, super, "")
	if code != http.StatusOK {
		t.Fatalf("superset submit: status %d", code)
	}
	if got := resp.Header.Get("X-Sppd-Cache"); got != "computed=1 dedup=0 memory=1 disk=0" {
		t.Fatalf("superset provenance = %q", got)
	}
	if got := s.computed.Load(); got != 2 {
		t.Fatalf("computed %d cells total, want 2 (1 + 1 new)", got)
	}
}

func TestDiskStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, Options{Workers: 2, Dir: dir})
	code, cold, _ := submit(t, ts1, smallGrid(), "")
	if code != http.StatusOK {
		t.Fatalf("cold submit: status %d", code)
	}

	// A fresh server over the same directory: empty LRU, warm disk.
	s2, ts2 := newTestServer(t, Options{Workers: 2, Dir: dir})
	code, warm, resp := submit(t, ts2, smallGrid(), "")
	if code != http.StatusOK {
		t.Fatalf("warm submit: status %d", code)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("disk-warm repeat differs from the original compute")
	}
	if got := resp.Header.Get("X-Sppd-Cache"); got != "computed=0 dedup=0 memory=0 disk=1" {
		t.Fatalf("disk provenance = %q", got)
	}
	if got := s2.computed.Load(); got != 0 {
		t.Fatalf("restarted server re-simulated %d cells", got)
	}
}

func TestCellEndpointAndValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	// Unknown cells 404 without simulating.
	resp, err := http.Get(ts.URL + "/v1/cells/" + strings.Repeat("ab", 32))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown cell: status %d, want 404", resp.StatusCode)
	}

	// Invalid grids reject up front: species backend on a ring topology.
	bad := GridSpec{
		Backends:   []string{sspp.BackendSpecies},
		Topologies: []string{"ring"},
		Points:     []sspp.Point{{N: 32, R: 8}},
		Seeds:      1,
	}
	code, body, _ := submit(t, ts, bad, "")
	if code != http.StatusBadRequest {
		t.Fatalf("species-on-ring: status %d, body %s, want 400", code, body)
	}

	// Unknown fields reject (typo safety).
	resp, err = http.Post(ts.URL+"/v1/grids", "application/json",
		strings.NewReader(`{"points":[{"n":32,"r":8}],"sedes":3}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d, want 400", resp.StatusCode)
	}

	// A computed cell is retrievable by content address, byte-identical to
	// its embedded GridResult form.
	code, body, _ = submit(t, ts, smallGrid(), "")
	if code != http.StatusOK {
		t.Fatalf("submit: status %d", code)
	}
	var gr GridResult
	if err := json.Unmarshal(body, &gr); err != nil {
		t.Fatal(err)
	}
	var cr CellResult
	if err := json.Unmarshal(gr.Cells[0], &cr); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/v1/cells/" + cr.Hash)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET cell: status %d", resp.StatusCode)
	}
	if !bytes.Equal(direct, []byte(gr.Cells[0])) {
		t.Fatalf("cell endpoint bytes differ from the grid's embedded cell")
	}
}

// TestAsyncJobAndSSE drives the asynchronous flow: submit with ?async=1,
// stream the SSE feed to completion, then fetch the result — and checks
// checkpoints arrive for an observation-inert cell.
func TestAsyncJobAndSSE(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	spec := smallGrid()
	spec.CheckpointEvery = 16 // small cadence so a 32-agent run emits several
	code, body, resp := submit(t, ts, spec, "?async=1")
	if code != http.StatusAccepted {
		t.Fatalf("async submit: status %d, body %s", code, body)
	}
	var accepted struct {
		Job    string   `json:"job"`
		Status string   `json:"status"`
		Cells  []string `json:"cells"`
	}
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}
	if accepted.Job == "" || accepted.Job != resp.Header.Get("X-Sppd-Job") || len(accepted.Cells) != 1 {
		t.Fatalf("accepted = %+v, header job %q", accepted, resp.Header.Get("X-Sppd-Job"))
	}

	events, err := http.Get(ts.URL + "/v1/grids/" + accepted.Job + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer events.Body.Close()
	if ct := events.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	counts := map[string]int{}
	sc := bufio.NewScanner(events.Body)
	for sc.Scan() {
		if name, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
			counts[name]++
		}
	}
	if counts["checkpoint"] == 0 || counts["cell"] != 1 || counts["done"] != 1 {
		t.Fatalf("event counts %v: want checkpoints > 0, one cell, one done", counts)
	}

	// The finished job serves the result, byte-identical to a fresh
	// synchronous submission of the same grid.
	jobResp, err := http.Get(ts.URL + "/v1/grids/" + accepted.Job)
	if err != nil {
		t.Fatal(err)
	}
	jobBody, _ := io.ReadAll(jobResp.Body)
	jobResp.Body.Close()
	if jobResp.StatusCode != http.StatusOK {
		t.Fatalf("job fetch: status %d, body %s", jobResp.StatusCode, jobBody)
	}
	_, syncBody, _ := submit(t, ts, smallGrid(), "")
	if !bytes.Equal(jobBody, syncBody) {
		t.Fatalf("async result differs from sync result for the same grid")
	}
}

// TestReplayRoundTrip fetches a trial recording for a cached cell and
// replays it through the public API: the reconstructed run must be
// bit-identical to the ensemble's trial (same stabilization interaction).
func TestReplayRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	code, body, _ := submit(t, ts, smallGrid(), "")
	if code != http.StatusOK {
		t.Fatalf("submit: status %d", code)
	}
	var gr GridResult
	if err := json.Unmarshal(body, &gr); err != nil {
		t.Fatal(err)
	}
	var cr CellResult
	if err := json.Unmarshal(gr.Cells[0], &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Cell.Recovered != 2 {
		t.Fatalf("cell recovered %d/2; the replay assertion needs both trials", cr.Cell.Recovered)
	}

	const seed = 1
	resp, err := http.Get(fmt.Sprintf("%s/v1/cells/%s/replay?seed=%d", ts.URL, cr.Hash, seed))
	if err != nil {
		t.Fatal(err)
	}
	replayBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay: status %d, body %s", resp.StatusCode, replayBody)
	}
	var rr ReplayResult
	if err := json.Unmarshal(replayBody, &rr); err != nil {
		t.Fatal(err)
	}
	rec, err := sspp.DecodeRecording(bytes.NewReader(rr.Recording))
	if err != nil {
		t.Fatalf("decode recording: %v", err)
	}
	if rec.Len() == 0 {
		t.Fatal("empty recording")
	}

	// Reconstruct the trial off the recording + protocol seed alone.
	sys, err := sspp.New(sspp.Config{Protocol: cr.Spec.Protocol, N: cr.Spec.Point.N,
		R: cr.Spec.Point.R, Seed: rr.ProtoSeed})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run(sspp.Until(sspp.SafeSet), sspp.WithScheduler(rec.Replay()),
		sspp.MaxInteractions(cr.Spec.MaxInteractions))
	if !res.Stabilized {
		t.Fatal("replayed trial did not stabilize")
	}
	if want := uint64(cr.Cell.Samples[seed]); res.StabilizedAt != want {
		t.Fatalf("replayed trial stabilized at %d, ensemble trial at %d", res.StabilizedAt, want)
	}

	// Replays of unsupported cells fail cleanly: adversarial starts consume
	// a private stream the public replay cannot re-derive.
	advSpec := smallGrid()
	advSpec.Adversaries = []string{string(sspp.AdversaryTwoLeaders)}
	code, body, _ = submit(t, ts, advSpec, "")
	if code != http.StatusOK {
		t.Fatalf("adversarial submit: status %d", code)
	}
	if err := json.Unmarshal(body, &gr); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(gr.Cells[0], &cr); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/v1/cells/" + cr.Hash + "/replay")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("adversarial replay: status %d, want 400", resp.StatusCode)
	}
}

// TestRequestHardening covers the server's abuse guards: content-address
// validation on the cell endpoints (the router percent-decodes path
// segments, so an unvalidated {hash} could walk "../" into the disk
// store), the request body size limit, and the per-request resource caps.
func TestRequestHardening(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Options{
		Workers: 1, Dir: dir,
		MaxBodyBytes: 512, MaxN: 100, MaxSeeds: 4, MaxTrialInteractions: 1 << 20,
	})
	// Plant a decoy .json outside the store's cells/ directory; an encoded
	// "../" traversal segment would resolve the cell path onto it.
	if err := os.WriteFile(filepath.Join(dir, "secret.json"),
		[]byte(`{"schema_version":1,"hash":"decoy"}`), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{
		"/v1/cells/..%2Fsecret",                          // traversal into the store dir
		"/v1/cells/..%2F..%2Fsecret",                     // traversal out of the store dir
		"/v1/cells/" + strings.Repeat("A", 64),           // uppercase: not canonical
		"/v1/cells/" + strings.Repeat("a", 63),           // wrong length
		"/v1/cells/" + strings.Repeat("g", 64),           // not hex
		"/v1/cells/..%2Fsecret/replay",                   // traversal via the replay endpoint
		"/v1/cells/" + strings.Repeat("A", 64) + "/replay",
	} {
		req, err := http.NewRequest("GET", ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}

	// Oversized request bodies reject with 413 before decoding.
	resp, err := http.Post(ts.URL+"/v1/grids", "application/json",
		strings.NewReader(strings.Repeat(" ", 1024)+`{"points":[{"n":32,"r":8}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", resp.StatusCode)
	}

	// Per-request resource caps reject before any cell is registered.
	for name, spec := range map[string]GridSpec{
		"n over cap":     {Points: []sspp.Point{{N: 1000, R: 8}}, Seeds: 1},
		"seeds over cap": {Points: []sspp.Point{{N: 32, R: 8}}, Seeds: 10},
		"budget over cap": {Points: []sspp.Point{{N: 32, R: 8}}, Seeds: 1,
			MaxInteractions: 1 << 30},
	} {
		code, body, _ := submit(t, ts, spec, "")
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, body %s, want 400", name, code, body)
		}
	}

	// A grid inside every limit still computes.
	if code, body, _ := submit(t, ts, smallGrid(), ""); code != http.StatusOK {
		t.Errorf("in-limit grid: status %d, body %s, want 200", code, body)
	}
}

func TestStatsAndProtocols(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	submit(t, ts, smallGrid(), "")
	submit(t, ts, smallGrid(), "")

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats["grids"].(float64) != 2 || stats["cells_computed"].(float64) != 1 ||
		stats["memory_hits"].(float64) != 1 || stats["cache_entries"].(float64) != 1 {
		t.Fatalf("stats = %v", stats)
	}

	resp, err = http.Get(ts.URL + "/v1/protocols")
	if err != nil {
		t.Fatal(err)
	}
	var protos []struct {
		Name         string   `json:"name"`
		Capabilities []string `json:"capabilities"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&protos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(protos) != len(sspp.Protocols()) {
		t.Fatalf("protocols endpoint lists %d entries, registry has %d", len(protos), len(sspp.Protocols()))
	}
}
