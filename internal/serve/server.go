// server.go is the sppd HTTP service. The API is JSON over five resource
// families (go 1.22+ method-pattern routing):
//
//	GET  /v1/healthz                  liveness
//	GET  /v1/protocols                the protocol registry with capabilities
//	POST /v1/grids                    submit a GridSpec; ?async=1 returns a
//	                                  job handle instead of blocking
//	GET  /v1/grids/{id}               job status, or the finished GridResult
//	GET  /v1/grids/{id}/events        SSE feed: cell completions, Observe
//	                                  checkpoints, the terminal event
//	GET  /v1/cells/{hash}             a cached cell by content address
//	GET  /v1/cells/{hash}/replay      a bit-exact trial recording for one
//	                                  seed of a cached cell (?seed=K)
//	GET  /v1/stats                    cache and dedup counters
//
// Caching provenance travels ONLY in the X-Sppd-Cache response header —
// never in a body — so a warm response is byte-identical to the cold
// response it repeats. Job ids likewise stay out of result bodies
// (X-Sppd-Job): two submissions of the same grid get different ids but
// identical result bytes.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"sspp"
)

// ResultSchemaVersion identifies the GridResult / CellResult / ReplayResult
// JSON layouts. Bump on any breaking change.
const ResultSchemaVersion = 1

// CellResult is the cached unit: one resolved cell spec, its content
// address, and the aggregated trial statistics the Ensemble computed for
// it. The marshaled bytes are what the cache stores and what every
// response body carries — assembled, never re-marshaled, so byte identity
// is structural rather than an accident of encoder stability.
type CellResult struct {
	SchemaVersion int       `json:"schema_version"`
	Hash          string    `json:"hash"`
	Spec          CellSpec  `json:"spec"`
	Cell          sspp.Cell `json:"cell"`
}

// GridResult is the response body of a finished grid: the cells of the
// cross product in decomposition order, each embedded verbatim as its
// cached CellResult bytes.
type GridResult struct {
	SchemaVersion int               `json:"schema_version"`
	Cells         []json.RawMessage `json:"cells"`
}

// ReplayResult is the response body of /v1/cells/{hash}/replay: the exact
// interaction schedule of one trial of the cell, with the protocol seed
// that trial ran under, so sspp.New + WithScheduler(rec.Replay()) off the
// public API reconstructs the trial bit for bit.
type ReplayResult struct {
	SchemaVersion int    `json:"schema_version"`
	Hash          string `json:"hash"`
	Seed          int    `json:"seed"`
	ProtoSeed     uint64 `json:"proto_seed"`
	// Recording is the versioned JSON written by sspp.Recording.Encode;
	// sspp.DecodeRecording reads it back.
	Recording json.RawMessage `json:"recording"`
}

// Options configures a Server.
type Options struct {
	// Workers bounds concurrent cell computations (0: GOMAXPROCS).
	Workers int
	// CacheEntries bounds the in-memory LRU (0: 4096 cells).
	CacheEntries int
	// Dir, when non-empty, enables the on-disk store under that directory.
	Dir string
	// MaxCells bounds the cross product of a single grid (0: 4096).
	MaxCells int
	// MaxBodyBytes bounds the POST /v1/grids request body (0: 1 MiB).
	MaxBodyBytes int64
	// MaxN bounds Point.N in submitted grids (0: 10,000,000 — the species
	// backend handles that comfortably; raise it for bigger deployments).
	MaxN int
	// MaxSeeds bounds the per-cell trial count (0: 10,000).
	MaxSeeds int
	// MaxTrialInteractions bounds an explicit per-trial interaction budget
	// (0: 1<<40). A spec's MaxInteractions of 0 — "use the protocol's
	// default budget" — is always allowed: that default scales with n,
	// which MaxN already bounds.
	MaxTrialInteractions uint64
}

// flight is one in-progress cell computation; concurrent requests for the
// same content address block on done and share the result (singleflight).
type flight struct {
	done  chan struct{}
	bytes []byte
	err   error
}

// job is one submitted grid.
type job struct {
	id    string
	cells []CellSpec
	keys  []string
	// checkpointEvery is the submitting grid's SSE checkpoint cadence.
	checkpointEvery uint64

	done chan struct{} // closed after result/err and sources are final

	mu sync.Mutex
	// stored holds the frames replayed to late SSE subscribers. Cell
	// completions and the terminal frame are always stored; checkpoint
	// frames are stored up to storedFrameCap (they can number in the
	// thousands per trial) and are live-only past it.
	stored  [][]byte
	subs    []chan []byte
	sources []string // per-cell provenance: computed | dedup | memory | disk
	result  []byte   // marshaled GridResult
	err     error
}

// Server implements the sppd API over a result cache and a bounded
// simulation pool.
type Server struct {
	sem           chan struct{}
	maxCells      int
	maxBody       int64
	maxN          int
	maxSeeds      int
	maxTrialInter uint64
	store         *diskStore // nil without Options.Dir

	mu     sync.Mutex
	cache  *lruCache
	flight map[string]*flight
	jobs   map[string]*job
	order  []string          // job ids in creation order, for eviction
	watch  map[string][]*job // content address -> jobs streaming checkpoints

	jobSeq atomic.Uint64

	grids    atomic.Uint64 // grids accepted
	computed atomic.Uint64 // cells actually simulated
	deduped  atomic.Uint64 // cells coalesced onto an in-flight computation
	memHits  atomic.Uint64 // cells served from the in-memory LRU
	diskHits atomic.Uint64 // cells served from the on-disk store
	replays  atomic.Uint64 // trial recordings computed
}

// maxJobs bounds the retained-job map; the oldest finished jobs are
// evicted past it (a running job is never evicted).
const maxJobs = 256

// NewServer builds a Server. The error is non-nil only when the disk store
// directory cannot be created.
func NewServer(opts Options) (*Server, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	entries := opts.CacheEntries
	if entries <= 0 {
		entries = 4096
	}
	maxCells := opts.MaxCells
	if maxCells <= 0 {
		maxCells = 4096
	}
	maxBody := opts.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = 1 << 20
	}
	maxN := opts.MaxN
	if maxN <= 0 {
		maxN = 10_000_000
	}
	maxSeeds := opts.MaxSeeds
	if maxSeeds <= 0 {
		maxSeeds = 10_000
	}
	maxTrialInter := opts.MaxTrialInteractions
	if maxTrialInter == 0 {
		maxTrialInter = 1 << 40
	}
	s := &Server{
		sem:           make(chan struct{}, workers),
		maxCells:      maxCells,
		maxBody:       maxBody,
		maxN:          maxN,
		maxSeeds:      maxSeeds,
		maxTrialInter: maxTrialInter,
		cache:         newLRUCache(entries),
		flight:        make(map[string]*flight),
		jobs:          make(map[string]*job),
		watch:         make(map[string][]*job),
	}
	if opts.Dir != "" {
		store, err := newDiskStore(opts.Dir)
		if err != nil {
			return nil, err
		}
		s.store = store
	}
	return s, nil
}

// Handler returns the API's http.Handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/protocols", s.handleProtocols)
	mux.HandleFunc("POST /v1/grids", s.handleSubmit)
	mux.HandleFunc("GET /v1/grids/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/grids/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/cells/{hash}", s.handleCell)
	mux.HandleFunc("GET /v1/cells/{hash}/replay", s.handleReplay)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleProtocols(w http.ResponseWriter, _ *http.Request) {
	type protoJSON struct {
		Name            string   `json:"name"`
		Description     string   `json:"description"`
		SelfStabilizing bool     `json:"self_stabilizing"`
		Capabilities    []string `json:"capabilities"`
	}
	var out []protoJSON
	for _, info := range sspp.Protocols() {
		out = append(out, protoJSON{info.Name, info.Description, info.SelfStabilizing, info.Capabilities})
	}
	writeJSON(w, http.StatusOK, out)
}

// checkLimits enforces the server's per-request resource caps on a decoded
// grid spec — the endpoint is unauthenticated, so a single submission must
// not be able to pin unbounded memory or CPU. maxCells bounds only the
// cross-product count; these bound the cost of each cell.
func (s *Server) checkLimits(spec *GridSpec) error {
	for _, pt := range spec.Points {
		if pt.N > s.maxN {
			return fmt.Errorf("point n=%d is over this server's %d-agent limit", pt.N, s.maxN)
		}
	}
	if spec.Seeds > s.maxSeeds {
		return fmt.Errorf("seeds=%d is over this server's %d-seed limit", spec.Seeds, s.maxSeeds)
	}
	if spec.MaxInteractions > s.maxTrialInter {
		return fmt.Errorf("max_interactions=%d is over this server's %d-interaction limit",
			spec.MaxInteractions, s.maxTrialInter)
	}
	return nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec GridSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge,
				"grid spec over this server's %d-byte body limit", tooLarge.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "bad grid spec: %v", err)
		return
	}
	if err := s.checkLimits(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cells, err := spec.Cells()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(cells) > s.maxCells {
		httpError(w, http.StatusBadRequest,
			"grid crosses to %d cells, over this server's %d-cell limit", len(cells), s.maxCells)
		return
	}
	// Fail fast: every cell must compile to a valid one-cell Ensemble
	// before anything runs, so an illegal combination deep in the cross
	// product rejects the whole grid instead of surfacing mid-run.
	keys := make([]string, len(cells))
	for i := range cells {
		if _, err := cells[i].ensemble(); err != nil {
			httpError(w, http.StatusBadRequest, "cell %d (%s): %v", i, cells[i].Hash()[:12], err)
			return
		}
		keys[i] = cells[i].Hash()
	}
	j := s.newJob(spec, cells, keys)
	s.grids.Add(1)
	go s.runJob(j)

	w.Header().Set("X-Sppd-Job", j.id)
	if r.URL.Query().Get("async") == "1" {
		writeJSON(w, http.StatusAccepted, map[string]any{
			"job": j.id, "status": "running", "cells": keys,
		})
		return
	}
	<-j.done
	s.writeJobResult(w, j)
}

// newJob registers a job and its checkpoint watches.
func (s *Server) newJob(spec GridSpec, cells []CellSpec, keys []string) *job {
	j := &job{
		id:              fmt.Sprintf("j-%d", s.jobSeq.Add(1)),
		cells:           cells,
		keys:            keys,
		checkpointEvery: spec.CheckpointEvery,
		done:            make(chan struct{}),
		sources:         make([]string, len(cells)),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictJobsLocked()
	if j.checkpointEvery > 0 {
		for i, key := range keys {
			if cells[i].observationInert() {
				s.watch[key] = append(s.watch[key], j)
			}
		}
	}
	return j
}

// evictJobsLocked drops the oldest finished jobs over maxJobs.
func (s *Server) evictJobsLocked() {
	for len(s.jobs) > maxJobs {
		evicted := false
		for i, id := range s.order {
			j, ok := s.jobs[id]
			if !ok {
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
			select {
			case <-j.done:
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
			default:
				continue
			}
			break
		}
		if !evicted {
			return // everything old is still running; let the map grow
		}
	}
}

// runJob computes every cell of the job (concurrently, bounded by the
// server pool), assembles the GridResult, and closes the job.
func (s *Server) runJob(j *job) {
	results := make([][]byte, len(j.cells))
	errs := make([]error, len(j.cells))
	var wg sync.WaitGroup
	for i := range j.cells {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, source, err := s.cellBytes(&j.cells[i], j.keys[i], j.checkpointEvery)
			results[i], errs[i] = b, err
			j.mu.Lock()
			j.sources[i] = source
			j.mu.Unlock()
			if err != nil {
				j.emit("cell", map[string]any{"index": i, "hash": j.keys[i], "error": err.Error()}, true)
			} else {
				j.emit("cell", map[string]any{"index": i, "hash": j.keys[i], "source": source}, true)
			}
		}(i)
	}
	wg.Wait()

	var firstErr error
	for _, err := range errs {
		if err != nil {
			firstErr = err
			break
		}
	}
	j.mu.Lock()
	if firstErr != nil {
		j.err = firstErr
	} else {
		raw := make([]json.RawMessage, len(results))
		for i, b := range results {
			raw[i] = b
		}
		j.result, j.err = json.Marshal(GridResult{SchemaVersion: ResultSchemaVersion, Cells: raw})
	}
	j.mu.Unlock()

	s.mu.Lock()
	for _, key := range j.keys {
		watchers := s.watch[key]
		for i, wj := range watchers {
			if wj == j {
				s.watch[key] = append(watchers[:i:i], watchers[i+1:]...)
				break
			}
		}
		if len(s.watch[key]) == 0 {
			delete(s.watch, key)
		}
	}
	s.mu.Unlock()

	if j.err != nil {
		j.emit("error", map[string]string{"error": j.err.Error()}, true)
	} else {
		j.emit("done", map[string]string{"job": j.id}, true)
	}
	close(j.done)
}

// cellBytes returns the marshaled CellResult for the cell, from (in order)
// the in-memory LRU, an identical in-flight computation, the disk store,
// or a fresh simulation on the bounded pool. The source return names which
// (memory | dedup | disk | computed).
func (s *Server) cellBytes(cs *CellSpec, key string, checkpointEvery uint64) (b []byte, source string, err error) {
	s.mu.Lock()
	if b := s.cache.get(key); b != nil {
		s.mu.Unlock()
		s.memHits.Add(1)
		return b, "memory", nil
	}
	if fl, ok := s.flight[key]; ok {
		s.mu.Unlock()
		s.deduped.Add(1)
		<-fl.done
		return fl.bytes, "dedup", fl.err
	}
	fl := &flight{done: make(chan struct{})}
	s.flight[key] = fl
	s.mu.Unlock()

	defer func() {
		fl.bytes, fl.err = b, err
		s.mu.Lock()
		delete(s.flight, key)
		if err == nil {
			s.cache.put(key, b)
		}
		s.mu.Unlock()
		close(fl.done)
	}()

	if s.store != nil {
		if b := s.store.getCell(key); b != nil {
			s.diskHits.Add(1)
			return b, "disk", nil
		}
	}

	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	g, err := cs.compileGrid()
	if err != nil {
		return nil, "", err
	}
	// Each cell's seeds run sequentially (Workers(1)); the server pool is
	// the only parallelism. Checkpoints attach only where observation is
	// provably inert (see CellSpec.observationInert), so the observed
	// computation is bit-identical to an unobserved one and the cadence
	// stays out of the content address. When concurrent jobs race to
	// compute the same cell, the winner's cadence drives everyone's feed —
	// checkpoints are best-effort telemetry, not part of the result.
	opts := []sspp.EnsembleOption{sspp.Workers(1)}
	if checkpointEvery > 0 && cs.observationInert() {
		opts = append(opts, sspp.ObserveTrials(checkpointEvery, func(obs sspp.TrialObservation) {
			s.broadcast(key, obs)
		}))
	}
	ens, err := sspp.NewEnsemble(g, opts...)
	if err != nil {
		return nil, "", err
	}
	res := ens.Run()
	s.computed.Add(1)
	b, err = json.Marshal(CellResult{
		SchemaVersion: ResultSchemaVersion,
		Hash:          key,
		Spec:          *cs,
		Cell:          res.Cells[0],
	})
	if err != nil {
		return nil, "", err
	}
	if s.store != nil {
		s.store.putCell(key, b) // best effort: the disk layer is an accelerator
	}
	return b, "computed", nil
}

// broadcast fans one trial checkpoint out to every job watching the cell.
func (s *Server) broadcast(key string, obs sspp.TrialObservation) {
	s.mu.Lock()
	watchers := append([]*job(nil), s.watch[key]...)
	s.mu.Unlock()
	if len(watchers) == 0 {
		return
	}
	payload := map[string]any{
		"hash": key,
		"seed": obs.Seed,
		"snapshot": map[string]any{
			"interactions":  obs.Snapshot.Interactions,
			"parallel_time": obs.Snapshot.ParallelTime,
			"leaders":       obs.Snapshot.Leaders,
			"resetting":     obs.Snapshot.Resetting,
			"ranking":       obs.Snapshot.Ranking,
			"verifying":     obs.Snapshot.Verifying,
			"hard_resets":   obs.Snapshot.HardResets,
			"in_safe_set":   obs.Snapshot.InSafeSet,
		},
	}
	for _, j := range watchers {
		j.emit("checkpoint", payload, false)
	}
}

// storedFrameCap bounds the checkpoint frames a job retains for replay to
// late subscribers; sticky frames (cell completions, the terminal frame)
// are always retained.
const storedFrameCap = 1024

// emit frames an SSE event and delivers it: stored frames replay to late
// subscribers, live frames go to current subscribers only. A slow
// subscriber's full channel drops frames rather than blocking simulation.
func (j *job) emit(event string, payload any, sticky bool) {
	data, err := json.Marshal(payload)
	if err != nil {
		return
	}
	frame := []byte(fmt.Sprintf("event: %s\ndata: %s\n\n", event, data))
	j.mu.Lock()
	defer j.mu.Unlock()
	if sticky || len(j.stored) < storedFrameCap {
		j.stored = append(j.stored, frame)
	}
	for _, ch := range j.subs {
		select {
		case ch <- frame:
		default:
		}
	}
}

// subscribe returns the replay of stored frames plus a live channel, and
// an unsubscribe func.
func (j *job) subscribe() (replay [][]byte, ch chan []byte, cancel func()) {
	ch = make(chan []byte, 256)
	j.mu.Lock()
	replay = append([][]byte(nil), j.stored...)
	j.subs = append(j.subs, ch)
	j.mu.Unlock()
	cancel = func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		for i, c := range j.subs {
			if c == ch {
				j.subs = append(j.subs[:i:i], j.subs[i+1:]...)
				return
			}
		}
	}
	return replay, ch, cancel
}

func (s *Server) job(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// writeJobResult serves a finished job: the GridResult bytes with cache
// provenance in X-Sppd-Cache ("computed=1 dedup=0 memory=3 disk=0").
func (s *Server) writeJobResult(w http.ResponseWriter, j *job) {
	j.mu.Lock()
	result, err, sources := j.result, j.err, append([]string(nil), j.sources...)
	j.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	counts := map[string]int{}
	for _, src := range sources {
		counts[src]++
	}
	w.Header().Set("X-Sppd-Cache", fmt.Sprintf("computed=%d dedup=%d memory=%d disk=%d",
		counts["computed"], counts["dedup"], counts["memory"], counts["disk"]))
	w.Header().Set("X-Sppd-Job", j.id)
	w.Header().Set("Content-Type", "application/json")
	w.Write(result)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	select {
	case <-j.done:
		s.writeJobResult(w, j)
	default:
		writeJSON(w, http.StatusAccepted, map[string]any{
			"job": j.id, "status": "running", "cells": j.keys,
		})
	}
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	replay, ch, cancel := j.subscribe()
	defer cancel()
	for _, frame := range replay {
		w.Write(frame)
	}
	flusher.Flush()
	// A post-completion subscriber returns immediately — but the job may
	// have finished between subscribe() (replay copied) and here, with the
	// terminal frame enqueued on ch rather than in the replay, so drain ch
	// before returning.
	select {
	case <-j.done:
		for {
			select {
			case frame := <-ch:
				w.Write(frame)
				flusher.Flush()
			default:
				return
			}
		}
	default:
	}
	for {
		select {
		case frame := <-ch:
			w.Write(frame)
			flusher.Flush()
		case <-j.done:
			// Drain what the emitter enqueued before closing.
			for {
				select {
				case frame := <-ch:
					w.Write(frame)
					flusher.Flush()
				default:
					return
				}
			}
		case <-r.Context().Done():
			return
		}
	}
}

// lookupCell fetches cached cell bytes by content address: LRU first, then
// disk (promoting the hit into the LRU). No simulation — /v1/cells is a
// read-only view of the cache.
func (s *Server) lookupCell(key string) (b []byte, source string) {
	s.mu.Lock()
	b = s.cache.get(key)
	s.mu.Unlock()
	if b != nil {
		s.memHits.Add(1)
		return b, "memory"
	}
	if s.store != nil {
		if b = s.store.getCell(key); b != nil {
			s.diskHits.Add(1)
			s.mu.Lock()
			s.cache.put(key, b)
			s.mu.Unlock()
			return b, "disk"
		}
	}
	return nil, ""
}

// validHash reports whether key is a well-formed cell content address:
// exactly 64 lowercase hex characters (the SHA-256 encoding hash.go
// emits). The router percent-decodes path segments, so an unvalidated
// {hash} could smuggle "../" into diskStore paths; anything but a
// canonical address is rejected before it reaches the cache or the store.
func validHash(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

func (s *Server) handleCell(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("hash")
	if !validHash(key) {
		httpError(w, http.StatusNotFound, "no cached cell %q (addresses are 64 lowercase hex characters)", key)
		return
	}
	b, source := s.lookupCell(key)
	if b == nil {
		httpError(w, http.StatusNotFound, "no cached cell %q (cells appear once a grid computes them)", key)
		return
	}
	w.Header().Set("X-Sppd-Cache", source)
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

func (s *Server) handleReplay(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("hash")
	if !validHash(key) {
		httpError(w, http.StatusNotFound, "no cached cell %q (addresses are 64 lowercase hex characters)", key)
		return
	}
	seed := 0
	if q := r.URL.Query().Get("seed"); q != "" {
		var err error
		if seed, err = strconv.Atoi(q); err != nil {
			httpError(w, http.StatusBadRequest, "bad seed %q: %v", q, err)
			return
		}
	}
	cellBytes, _ := s.lookupCell(key)
	if cellBytes == nil {
		httpError(w, http.StatusNotFound, "no cached cell %q (replays derive from cached cells)", key)
		return
	}
	if s.store != nil {
		if b := s.store.getReplay(key, seed); b != nil {
			w.Header().Set("X-Sppd-Cache", "disk")
			w.Header().Set("Content-Type", "application/json")
			w.Write(b)
			return
		}
	}
	var cr CellResult
	if err := json.Unmarshal(cellBytes, &cr); err != nil {
		httpError(w, http.StatusInternalServerError, "corrupt cached cell: %v", err)
		return
	}
	ens, err := cr.Spec.ensemble()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	// A replay re-runs one full trial, so it takes a pool slot like any
	// other simulation. Released by defer so a panicking trial (recovered
	// by net/http) cannot leak the slot and shrink the pool.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	rec, protoSeed, err := ens.TrialRecording(0, seed)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var buf bytes.Buffer
	if err := rec.Encode(&buf); err != nil {
		httpError(w, http.StatusInternalServerError, "encode recording: %v", err)
		return
	}
	s.replays.Add(1)
	b, err := json.Marshal(ReplayResult{
		SchemaVersion: ResultSchemaVersion,
		Hash:          key,
		Seed:          seed,
		ProtoSeed:     protoSeed,
		Recording:     buf.Bytes(),
	})
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if s.store != nil {
		s.store.putReplay(key, seed, b) // best effort
	}
	w.Header().Set("X-Sppd-Cache", "computed")
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	entries := s.cache.len()
	inflight := len(s.flight)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"grids":          s.grids.Load(),
		"cells_computed": s.computed.Load(),
		"dedup_hits":     s.deduped.Load(),
		"memory_hits":    s.memHits.Load(),
		"disk_hits":      s.diskHits.Load(),
		"replays":        s.replays.Load(),
		"cache_entries":  entries,
		"in_flight":      inflight,
		"workers":        cap(s.sem),
		"hash_version":   HashVersion,
		"engine_epoch":   EngineEpoch,
		"schema_version": ResultSchemaVersion,
	})
}
