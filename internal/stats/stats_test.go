package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestAccBasics(t *testing.T) {
	var a Acc
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d, want 8", a.N())
	}
	if !almostEqual(a.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", a.Mean())
	}
	// Population variance of this classic sample is 4; unbiased = 32/7.
	if !almostEqual(a.Var(), 32.0/7.0, 1e-12) {
		t.Fatalf("Var = %v, want %v", a.Var(), 32.0/7.0)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v, want 2/9", a.Min(), a.Max())
	}
}

func TestAccEmptyAndSingle(t *testing.T) {
	var a Acc
	if a.Mean() != 0 || a.Var() != 0 || a.CI95() != 0 {
		t.Fatal("empty accumulator should be all zero")
	}
	a.Add(3)
	if a.Mean() != 3 || a.Var() != 0 {
		t.Fatalf("single sample: mean %v var %v", a.Mean(), a.Var())
	}
}

func TestMeanBetweenMinMaxProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		var a Acc
		for _, x := range xs {
			a.Add(x)
		}
		return a.Mean() >= a.Min()-1e-9 && a.Mean() <= a.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		a := math.Mod(math.Abs(p1), 1)
		b := math.Mod(math.Abs(p2), 1)
		if a > b {
			a, b = b, a
		}
		return Quantile(xs, a) <= Quantile(xs, b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 100})
	if s.N != 5 || s.Median != 3 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("unexpected summary %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 3 + 2x
	f := LinearFit(xs, ys)
	if !almostEqual(f.Slope, 2, 1e-9) || !almostEqual(f.Intercept, 3, 1e-9) {
		t.Fatalf("fit = %+v, want slope 2 intercept 3", f)
	}
	if !almostEqual(f.R2, 1, 1e-9) {
		t.Fatalf("R2 = %v, want 1", f.R2)
	}
}

func TestLogLogFitRecoversExponent(t *testing.T) {
	xs := []float64{8, 16, 32, 64, 128}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 0.5 * math.Pow(x, 1.7)
	}
	f := LogLogFit(xs, ys)
	if !almostEqual(f.Slope, 1.7, 1e-9) {
		t.Fatalf("exponent = %v, want 1.7", f.Slope)
	}
}

func TestLinearFitPanics(t *testing.T) {
	cases := []struct {
		name   string
		xs, ys []float64
	}{
		{"mismatch", []float64{1, 2}, []float64{1}},
		{"short", []float64{1}, []float64{1}},
		{"constantX", []float64{2, 2, 2}, []float64{1, 2, 3}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			LinearFit(c.xs, c.ys)
		})
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1, 2.5, 9.99, 10, -1, 11} {
		h.Add(x)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 5 {
		t.Fatalf("in-range count = %d, want 5", total)
	}
	if h.Under != 1 || h.Over != 1 {
		t.Fatalf("under/over = %d/%d, want 1/1", h.Under, h.Over)
	}
	if h.Render(20) == "" {
		t.Fatal("empty render")
	}
}

func TestHistogramConservationProperty(t *testing.T) {
	f := func(raw []float64) bool {
		h := NewHistogram(-100, 100, 13)
		n := 0
		for _, x := range raw {
			if math.IsNaN(x) {
				continue
			}
			h.Add(x)
			n++
		}
		total := h.Under + h.Over
		for _, c := range h.Counts {
			total += c
		}
		return total == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanOfAndMaxOf(t *testing.T) {
	if MeanOf(nil) != 0 {
		t.Fatal("MeanOf(nil) should be 0")
	}
	if got := MeanOf([]float64{1, 2, 3}); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("MeanOf = %v", got)
	}
	if got := MaxOf([]float64{1, 9, 3}); got != 9 {
		t.Fatalf("MaxOf = %v", got)
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	var small, large Acc
	for i := 0; i < 10; i++ {
		small.Add(float64(i % 5))
	}
	for i := 0; i < 1000; i++ {
		large.Add(float64(i % 5))
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI95 did not shrink: %v >= %v", large.CI95(), small.CI95())
	}
}
