// Package stats provides the small statistical toolkit used by the
// experiment harness: online accumulators, sample summaries, quantiles,
// normal-approximation confidence intervals, least-squares fits (used for
// log-log scaling-exponent estimates), and fixed-width text histograms.
//
// The package is deliberately minimal and dependency-free; it only needs to
// support the evaluation of the reproduction experiments in EXPERIMENTS.md.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Acc is an online mean/variance accumulator using Welford's algorithm.
// The zero value is an empty accumulator ready for use.
type Acc struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates x into the accumulator.
func (a *Acc) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of samples added.
func (a *Acc) N() int { return a.n }

// Mean returns the sample mean, or 0 if no samples were added.
func (a *Acc) Mean() float64 { return a.mean }

// Var returns the unbiased sample variance, or 0 for fewer than two samples.
func (a *Acc) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Std returns the unbiased sample standard deviation.
func (a *Acc) Std() float64 { return math.Sqrt(a.Var()) }

// Min returns the smallest sample added, or 0 if empty.
func (a *Acc) Min() float64 { return a.min }

// Max returns the largest sample added, or 0 if empty.
func (a *Acc) Max() float64 { return a.max }

// CI95 returns the half-width of the 95% confidence interval for the mean
// under a normal approximation (1.96·σ/√n). It returns 0 for n < 2.
func (a *Acc) CI95() float64 {
	if a.n < 2 {
		return 0
	}
	return 1.96 * a.Std() / math.Sqrt(float64(a.n))
}

// Summary is a full descriptive summary of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
	P10    float64
	P90    float64
	CI95   float64
}

// Summarize computes a Summary of xs. It does not modify xs.
func Summarize(xs []float64) Summary {
	var a Acc
	for _, x := range xs {
		a.Add(x)
	}
	s := Summary{
		N:    a.N(),
		Mean: a.Mean(),
		Std:  a.Std(),
		Min:  a.Min(),
		Max:  a.Max(),
		CI95: a.CI95(),
	}
	if len(xs) > 0 {
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		s.Median = Quantile(sorted, 0.5)
		s.P10 = Quantile(sorted, 0.1)
		s.P90 = Quantile(sorted, 0.9)
	}
	return s
}

// String renders the summary compactly, e.g. "µ=12.3 ±1.1 (med 12.0, n=30)".
func (s Summary) String() string {
	return fmt.Sprintf("µ=%.4g ±%.2g (med %.4g, n=%d)", s.Mean, s.CI95, s.Median, s.N)
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) of a sorted sample using
// linear interpolation. It panics if sorted is empty.
func Quantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Fit holds the result of an ordinary least-squares line fit y = a + b·x.
type Fit struct {
	Intercept float64 // a
	Slope     float64 // b
	R2        float64 // coefficient of determination
}

// LinearFit fits y = a + b·x by ordinary least squares. It panics when the
// slices have different lengths or fewer than two points, or when all xs are
// identical.
func LinearFit(xs, ys []float64) Fit {
	if len(xs) != len(ys) {
		panic("stats: LinearFit length mismatch")
	}
	if len(xs) < 2 {
		panic("stats: LinearFit needs at least two points")
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		panic("stats: LinearFit with constant x")
	}
	b := sxy / sxx
	a := my - b*mx
	r2 := 1.0
	if syy > 0 {
		var ssRes float64
		for i := range xs {
			res := ys[i] - (a + b*xs[i])
			ssRes += res * res
		}
		r2 = 1 - ssRes/syy
	}
	return Fit{Intercept: a, Slope: b, R2: r2}
}

// LogLogFit fits log(y) = a + b·log(x): the scaling-exponent estimator used
// to verify asymptotic claims (e.g. "time grows like n^b"). All inputs must
// be strictly positive.
func LogLogFit(xs, ys []float64) Fit {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			panic("stats: LogLogFit requires positive samples")
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	return LinearFit(lx, ly)
}

// Histogram is a fixed-bin histogram over a closed interval.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int // samples below Lo
	Over   int // samples above Hi
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi].
// It panics when bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: NewHistogram with bins <= 0")
	}
	if hi <= lo {
		panic("stats: NewHistogram with hi <= lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records x into its bin.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x > h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i == len(h.Counts) { // x == Hi
			i--
		}
		h.Counts[i]++
	}
}

// Render draws the histogram as rows of '#' characters with width columns.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	maxC := 1
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	binW := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		bar := strings.Repeat("#", c*width/maxC)
		fmt.Fprintf(&b, "[%10.4g, %10.4g) %6d %s\n", h.Lo+float64(i)*binW, h.Lo+float64(i+1)*binW, c, bar)
	}
	if h.Under > 0 {
		fmt.Fprintf(&b, "underflow: %d\n", h.Under)
	}
	if h.Over > 0 {
		fmt.Fprintf(&b, "overflow: %d\n", h.Over)
	}
	return b.String()
}

// MeanOf is a convenience helper returning the mean of xs (0 when empty).
func MeanOf(xs []float64) float64 {
	var a Acc
	for _, x := range xs {
		a.Add(x)
	}
	return a.Mean()
}

// MaxOf returns the maximum of xs; it panics when xs is empty.
func MaxOf(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: MaxOf of empty sample")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
