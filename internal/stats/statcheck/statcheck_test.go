package statcheck

import (
	"math"
	"testing"

	"sspp/internal/rng"
)

// near reports |a−b| ≤ tol.
func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestKolmogorovSmirnovReference pins the statistic and p-value against an
// independent reference implementation (same asymptotic formulas, computed
// outside Go).
func TestKolmogorovSmirnovReference(t *testing.T) {
	x := []float64{1.1, 2.3, 3.1, 4.2, 5.5, 6.1, 7.7, 8.2}
	y := []float64{1.9, 2.8, 3.3, 4.9, 5.1, 6.6, 7.1, 9.4}
	r := KolmogorovSmirnov(x, y)
	if !near(r.Stat, 0.125, 1e-12) || !near(r.P, 0.999999479887226, 1e-9) {
		t.Fatalf("case 1: got %v", r)
	}

	a := []float64{1, 2, 2, 3, 3, 3, 4}
	b := []float64{2, 3, 3, 4, 4, 5, 5}
	r = KolmogorovSmirnov(a, b)
	if !near(r.Stat, 3.0/7.0, 1e-12) || !near(r.P, 0.423218294533489, 1e-9) {
		t.Fatalf("case 2 (ties): got %v", r)
	}
}

// TestMannWhitneyReference pins the deviate and p-value against the same
// reference (midranks, tie correction, continuity correction).
func TestMannWhitneyReference(t *testing.T) {
	x := []float64{1.1, 2.3, 3.1, 4.2, 5.5, 6.1, 7.7, 8.2}
	y := []float64{1.9, 2.8, 3.3, 4.9, 5.1, 6.6, 7.1, 9.4}
	r := MannWhitney(x, y)
	if !near(r.Stat, 0.15753150945315111, 1e-9) || !near(r.P, 0.8748259769492439, 1e-9) {
		t.Fatalf("case 1: got %v", r)
	}

	a := []float64{1, 2, 2, 3, 3, 3, 4}
	b := []float64{2, 3, 3, 4, 4, 5, 5}
	r = MannWhitney(a, b)
	if !near(r.Stat, 1.716687340749231, 1e-9) || !near(r.P, 0.08603631439507349, 1e-9) {
		t.Fatalf("case 2 (ties): got %v", r)
	}
}

// TestSeparatedSamplesReject: clearly shifted samples must be rejected by
// both tests at any reasonable level.
func TestSeparatedSamplesReject(t *testing.T) {
	var x, y []float64
	for i := 0; i < 30; i++ {
		x = append(x, float64(i))
		y = append(y, float64(i)+20)
	}
	ks := KolmogorovSmirnov(x, y)
	if !near(ks.Stat, 2.0/3.0, 1e-12) || ks.P > 1.2e-6 {
		t.Fatalf("KS on shifted samples: %v", ks)
	}
	mw := MannWhitney(x, y)
	if mw.P > 1e-8 {
		t.Fatalf("MW on shifted samples: %v", mw)
	}
	if CheckEquivalence("shifted", x, y, 0.01).Passed {
		t.Fatal("CheckEquivalence passed clearly different samples")
	}
}

// TestIdenticalSamples: a sample against itself is maximally equivalent.
func TestIdenticalSamples(t *testing.T) {
	x := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	ks := KolmogorovSmirnov(x, x)
	if ks.Stat != 0 || ks.P != 1 {
		t.Fatalf("KS self-test: %v", ks)
	}
	mw := MannWhitney(x, x)
	if mw.P != 1 {
		t.Fatalf("MW self-test: %v", mw)
	}
	// Degenerate: zero pooled variance.
	c := []float64{7, 7, 7}
	if r := MannWhitney(c, c); r.P != 1 {
		t.Fatalf("MW constant samples: %v", r)
	}
}

// TestNullCalibration: two independent samples from the same distribution
// must pass the equivalence check for the overwhelming majority of seeds —
// this is the soundness property the backend harness depends on (a sound
// test that rejected true nulls often would flag equivalent backends).
func TestNullCalibration(t *testing.T) {
	const rounds, size = 40, 200
	rejectKS, rejectMW := 0, 0
	src := rng.New(7)
	for round := 0; round < rounds; round++ {
		x := make([]float64, size)
		y := make([]float64, size)
		for i := range x {
			// Heavy-tailed-ish discrete values, mimicking poll-quantized
			// convergence times with ties.
			x[i] = float64(src.Intn(50) * 128)
			y[i] = float64(src.Intn(50) * 128)
		}
		if KolmogorovSmirnov(x, y).P <= 0.01 {
			rejectKS++
		}
		if MannWhitney(x, y).P <= 0.01 {
			rejectMW++
		}
	}
	// At alpha = 0.01 the expected false-reject count is 0.4; three sigma
	// above is still far below 4.
	if rejectKS > 3 || rejectMW > 3 {
		t.Fatalf("null calibration: %d/%d KS and %d/%d MW false rejections at alpha=0.01",
			rejectKS, rounds, rejectMW, rounds)
	}
}

// TestDoesNotModifyInputs: the tests must not reorder the callers' samples
// (the equivalence harness reuses them across tests and reports).
func TestDoesNotModifyInputs(t *testing.T) {
	x := []float64{5, 3, 1}
	y := []float64{4, 2, 6}
	KolmogorovSmirnov(x, y)
	MannWhitney(x, y)
	if x[0] != 5 || x[1] != 3 || x[2] != 1 || y[0] != 4 || y[1] != 2 || y[2] != 6 {
		t.Fatalf("inputs modified: x=%v y=%v", x, y)
	}
}
