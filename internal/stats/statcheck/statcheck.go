// Package statcheck provides two-sample statistical-equivalence tests for
// simulation backends: the Kolmogorov–Smirnov test on the empirical CDFs
// and the Mann–Whitney U rank test (with midranks and tie correction, since
// convergence times are measured at the polling-cadence resolution and tie
// heavily). The backend-equivalence harness (internal/species/equiv_test.go
// and the soak job) uses both: two backends simulate the same Markov chain,
// so their convergence-time distributions must be statistically
// indistinguishable — the tests must NOT reject at any small alpha.
//
// The package is dependency-free like its parent; p-values use the
// asymptotic Kolmogorov distribution and the normal approximation, which
// are accurate at the ≥200-trial sample sizes the harness runs.
package statcheck

import (
	"fmt"
	"math"
	"sort"
)

// Result is the outcome of one two-sample test.
type Result struct {
	// Stat is the test statistic: the supremum CDF distance D for
	// KolmogorovSmirnov, the absolute normal deviate |z| for MannWhitney.
	Stat float64 `json:"stat"`
	// P is the two-sided p-value for the null "both samples are drawn from
	// the same distribution". Small values reject equality; an equivalence
	// harness therefore requires P above its alpha.
	P float64 `json:"p"`
	// NX, NY are the sample sizes.
	NX int `json:"nx"`
	NY int `json:"ny"`
}

// String renders the result compactly.
func (r Result) String() string {
	return fmt.Sprintf("stat=%.4f p=%.4f (n=%d,%d)", r.Stat, r.P, r.NX, r.NY)
}

// KolmogorovSmirnov runs the two-sample Kolmogorov–Smirnov test: D is the
// supremum distance between the empirical CDFs, and P the asymptotic
// Kolmogorov p-value with the Stephens small-sample adjustment. It panics
// when either sample is empty. The inputs are not modified.
func KolmogorovSmirnov(x, y []float64) Result {
	if len(x) == 0 || len(y) == 0 {
		panic("statcheck: KolmogorovSmirnov with an empty sample")
	}
	xs := sortedCopy(x)
	ys := sortedCopy(y)
	nx, ny := len(xs), len(ys)
	var d float64
	i, j := 0, 0
	for i < nx && j < ny {
		v := xs[i]
		if ys[j] < v {
			v = ys[j]
		}
		for i < nx && xs[i] <= v {
			i++
		}
		for j < ny && ys[j] <= v {
			j++
		}
		gap := math.Abs(float64(i)/float64(nx) - float64(j)/float64(ny))
		if gap > d {
			d = gap
		}
	}
	ne := float64(nx) * float64(ny) / float64(nx+ny)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	return Result{Stat: d, P: kolmogorovQ(lambda), NX: nx, NY: ny}
}

// kolmogorovQ is the complementary Kolmogorov distribution
// Q(λ) = 2 Σ_{j≥1} (−1)^{j−1} exp(−2 j² λ²), clamped to [0, 1].
func kolmogorovQ(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	var q float64
	sign := 1.0
	for j := 1; j <= 100; j++ {
		term := sign * math.Exp(-2*float64(j)*float64(j)*lambda*lambda)
		q += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	q *= 2
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}

// MannWhitney runs the two-sample Mann–Whitney U test with midranks, tie
// correction, and continuity correction, reporting the two-sided normal
// p-value. Samples where every pooled value is identical (zero variance)
// report P = 1. It panics when either sample is empty. The inputs are not
// modified.
func MannWhitney(x, y []float64) Result {
	if len(x) == 0 || len(y) == 0 {
		panic("statcheck: MannWhitney with an empty sample")
	}
	nx, ny := len(x), len(y)
	type obs struct {
		v     float64
		fromX bool
	}
	pool := make([]obs, 0, nx+ny)
	for _, v := range x {
		pool = append(pool, obs{v, true})
	}
	for _, v := range y {
		pool = append(pool, obs{v, false})
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i].v < pool[j].v })

	n := float64(nx + ny)
	var rankSumX, tieSum float64
	for i := 0; i < len(pool); {
		j := i
		for j < len(pool) && pool[j].v == pool[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // midrank of the tie group (1-based)
		for k := i; k < j; k++ {
			if pool[k].fromX {
				rankSumX += mid
			}
		}
		t := float64(j - i)
		tieSum += t*t*t - t
		i = j
	}
	u := rankSumX - float64(nx)*float64(nx+1)/2
	mu := float64(nx) * float64(ny) / 2
	variance := float64(nx) * float64(ny) / 12 * ((n + 1) - tieSum/(n*(n-1)))
	if variance <= 0 {
		return Result{Stat: 0, P: 1, NX: nx, NY: ny}
	}
	dev := math.Abs(u-mu) - 0.5 // continuity correction toward the null
	if dev < 0 {
		dev = 0
	}
	z := dev / math.Sqrt(variance)
	return Result{Stat: z, P: math.Erfc(z / math.Sqrt2), NX: nx, NY: ny}
}

// Equivalence is a labelled pair of two-sample tests over the same samples,
// the unit the backend-equivalence harness reports on.
type Equivalence struct {
	Label  string  `json:"label"`
	KS     Result  `json:"ks"`
	MW     Result  `json:"mann_whitney"`
	Alpha  float64 `json:"alpha"`
	Passed bool    `json:"passed"`
}

// CheckEquivalence runs both tests over the samples and requires every
// p-value above alpha: two backends simulating the same chain must not be
// distinguishable at level alpha.
func CheckEquivalence(label string, x, y []float64, alpha float64) Equivalence {
	e := Equivalence{
		Label: label,
		KS:    KolmogorovSmirnov(x, y),
		MW:    MannWhitney(x, y),
		Alpha: alpha,
	}
	e.Passed = e.KS.P > alpha && e.MW.P > alpha
	return e
}

// String renders the equivalence outcome on one line.
func (e Equivalence) String() string {
	verdict := "FAIL"
	if e.Passed {
		verdict = "ok"
	}
	return fmt.Sprintf("%s: KS %v, MW %v, alpha=%.3g -> %s", e.Label, e.KS, e.MW, e.Alpha, verdict)
}

// sortedCopy returns xs sorted without modifying the input.
func sortedCopy(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	return out
}
