// constants.go collects every tunable constant of ElectLeader_r in one
// place. The paper fixes only asymptotics (Θ(log n), Θ((n/r)·log n), …); the
// concrete multipliers below are chosen so that the w.h.p. events of the
// analysis hold reliably at simulation scales. Every field documents the
// paper symbol it instantiates.

package core

import (
	"fmt"
	"math"

	"sspp/internal/ranking"
	"sspp/internal/reset"
	"sspp/internal/verify"
)

// Constants bundles the concrete parameter values of one ElectLeader_r
// instance.
type Constants struct {
	// CountdownMax is C_max = Θ((n/r)·log n) (Section 4): the number of
	// ranker-ranker interactions an agent waits before forcing itself into
	// the Verifying role. It must exceed the per-agent duration of a full
	// AssignRanks_r run w.h.p. (Lemma F.1's premise).
	CountdownMax int32
	// Reset holds R_max and D_max of PropagateReset (Appendix C).
	Reset reset.Params
	// Ranking holds the AssignRanks_r parameters (Appendix D).
	Ranking ranking.Params
	// PMax is the probation ceiling P_max = c_prob·(n/r)·log n (Section 5).
	PMax int32
	// DetectRefresh is the signature refresh constant c of Protocol 13
	// (c·log r_u interactions between refreshes).
	DetectRefresh int
	// DisableSoftReset ablates the §3.2 soft-reset mechanism: every ⊤
	// triggers a full reset (experiment A1).
	DisableSoftReset bool
	// DisableLoadBalance ablates BalanceLoad (Protocol 14): messages no
	// longer circulate (experiment A4).
	DisableLoadBalance bool
}

// DefaultConstants returns constants for population size n and trade-off
// parameter r.
//
// CountdownMax dominates the stabilization time by design: after
// AssignRanks_r becomes silent, the population simply waits out the
// countdown, which is what produces the paper's O((n²/r)·log n) headline
// bound. The multiplier leaves roughly a 2.5× margin over the measured
// per-agent duration of ranking.
func DefaultConstants(n, r int) Constants {
	if r < 1 {
		r = 1
	}
	ln := math.Log(float64(n) + 1)
	nOverR := float64(n) / float64(r)
	return Constants{
		CountdownMax:  int32(math.Ceil((20*nOverR + 160) * ln)),
		Reset:         reset.DefaultParams(n),
		Ranking:       ranking.DefaultParams(n, r),
		PMax:          verify.DefaultPMax(n, r),
		DetectRefresh: 8,
	}
}

// Validate reports whether the constants are internally consistent for a
// population of size n.
func (c Constants) Validate(n int) error {
	if c.CountdownMax < 1 {
		return fmt.Errorf("core: CountdownMax = %d < 1", c.CountdownMax)
	}
	if c.Reset.RMax < 1 || c.Reset.DMax < 1 {
		return fmt.Errorf("core: reset params %+v degenerate", c.Reset)
	}
	if c.PMax < 1 {
		return fmt.Errorf("core: PMax = %d < 1", c.PMax)
	}
	if c.DetectRefresh < 1 {
		return fmt.Errorf("core: DetectRefresh = %d < 1", c.DetectRefresh)
	}
	if c.Ranking.N != n {
		return fmt.Errorf("core: ranking params are for n = %d, protocol has n = %d", c.Ranking.N, n)
	}
	return c.Ranking.Validate()
}
