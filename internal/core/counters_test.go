// counters_test.go cross-checks the incremental predicate counters against
// ground-truth recomputation: after arbitrary interleavings of interactions
// and mutators, every O(1) predicate must agree with the O(n) scan it
// replaced.
package core

import (
	"fmt"
	"testing"

	"sspp/internal/rng"
	"sspp/internal/verify"
)

// scanLeaders is the pre-optimization O(n) Leaders implementation.
func scanLeaders(p *Protocol) int {
	c := 0
	for i := 0; i < p.N(); i++ {
		if p.RankOutput(i) == 1 {
			c++
		}
	}
	return c
}

// scanCorrectRanking is the pre-optimization O(n) CorrectRanking.
func scanCorrectRanking(p *Protocol) bool {
	seen := make([]bool, p.N())
	for i := 0; i < p.N(); i++ {
		r := p.RankOutput(i)
		if r < 1 || int(r) > p.N() || seen[r-1] {
			return false
		}
		seen[r-1] = true
	}
	return true
}

// scanRoles is the pre-optimization O(n) Roles.
func scanRoles(p *Protocol) (resetting, rankingCount, verifying int) {
	for i := 0; i < p.N(); i++ {
		switch p.Agent(i).Role {
		case RoleResetting:
			resetting++
		case RoleRanking:
			rankingCount++
		case RoleVerifying:
			verifying++
		}
	}
	return resetting, rankingCount, verifying
}

// scanAnyTop is the pre-optimization O(n) AnyTop.
func scanAnyTop(p *Protocol) bool {
	for i := 0; i < p.N(); i++ {
		a := p.Agent(i)
		if a.Role == RoleVerifying && a.SV != nil && a.SV.DC != nil && a.SV.DC.Err {
			return true
		}
	}
	return false
}

// checkCounters asserts that every incremental predicate agrees with its
// ground-truth scan, and that a full recount reproduces the exact counter
// state the incremental bookkeeping arrived at.
func checkCounters(t *testing.T, p *Protocol, ctx string) {
	t.Helper()
	if got, want := p.Leaders(), scanLeaders(p); got != want {
		t.Fatalf("%s: Leaders() = %d, scan = %d", ctx, got, want)
	}
	if got, want := p.CorrectRanking(), scanCorrectRanking(p); got != want {
		t.Fatalf("%s: CorrectRanking() = %v, scan = %v", ctx, got, want)
	}
	gr, gk, gv := p.Roles()
	wr, wk, wv := scanRoles(p)
	if gr != wr || gk != wk || gv != wv {
		t.Fatalf("%s: Roles() = (%d,%d,%d), scan = (%d,%d,%d)", ctx, gr, gk, gv, wr, wk, wv)
	}
	if got, want := p.AnyTop(), scanAnyTop(p); got != want {
		t.Fatalf("%s: AnyTop() = %v, scan = %v", ctx, got, want)
	}
	if got, want := p.AllVerifiers(), wv == p.N(); got != want {
		t.Fatalf("%s: AllVerifiers() = %v, scan = %v", ctx, got, want)
	}
	if idx, ok := p.LeaderIndex(); ok {
		if scanLeaders(p) != 1 || p.RankOutput(idx) != 1 {
			t.Fatalf("%s: LeaderIndex() = (%d, true) but agent outputs rank %d among %d leaders",
				ctx, idx, p.RankOutput(idx), scanLeaders(p))
		}
	} else if scanLeaders(p) == 1 {
		t.Fatalf("%s: LeaderIndex() not ok with exactly one leader", ctx)
	}
	incr := p.snapshotCounters()
	p.recount()
	fresh := p.snapshotCounters()
	if fmt.Sprint(incr) != fmt.Sprint(fresh) {
		t.Fatalf("%s: incremental counters diverged from recount:\n  incr:  %+v\n  fresh: %+v", ctx, incr, fresh)
	}
}

// TestCountersTrackInteractions drives the protocol from a clean start
// through stabilization and checks the counters at every polling step.
func TestCountersTrackInteractions(t *testing.T) {
	const n, r = 24, 6
	p, err := New(n, r, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	checkCounters(t, p, "initial")
	sched := rng.New(17)
	for step := 0; step < 200; step++ {
		for k := 0; k < 500; k++ {
			a, b := sched.Pair(n)
			p.Interact(a, b)
		}
		checkCounters(t, p, fmt.Sprintf("step %d", step))
		if p.InSafeSet() {
			break
		}
	}
}

// TestCountersTrackMutators exercises every Force*/Set* mutator interleaved
// with interactions and random re-mutation, checking the counters throughout.
func TestCountersTrackMutators(t *testing.T) {
	const n, r = 16, 4
	p, err := New(n, r, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(99)
	mutate := func(i int) {
		switch src.Intn(7) {
		case 0:
			p.ForceVerifier(i, int32(src.Intn(n+4)-1)) // includes clamped values
		case 1:
			p.ForceRanker(i)
		case 2:
			p.ForceTriggered(i)
		case 3:
			p.ForceDormant(i, int32(src.Intn(10)))
		case 4:
			p.SetGeneration(i, uint8(src.Intn(8)))
		case 5:
			p.SetProbation(i, int32(src.Intn(int(p.Constants().PMax)+2)))
		case 6:
			p.TamperMessages(i)
		}
	}
	for round := 0; round < 60; round++ {
		for k := 0; k < 1+src.Intn(4); k++ {
			mutate(src.Intn(n))
		}
		checkCounters(t, p, fmt.Sprintf("round %d after mutation", round))
		for k := 0; k < 200; k++ {
			a, b := src.Pair(n)
			p.Interact(a, b)
		}
		checkCounters(t, p, fmt.Sprintf("round %d after interactions", round))
	}
}

// TestInSafeSetMatchesReference compares the optimized InSafeSet against a
// from-scratch reference evaluation of the Lemma 6.1 conditions on
// configurations built by the mutators (including safe, generation-skewed,
// and probation-skewed ones).
func TestInSafeSetMatchesReference(t *testing.T) {
	const n, r = 12, 4
	reference := func(p *Protocol) bool {
		if !scanCorrectRanking(p) || scanAnyTop(p) {
			return false
		}
		_, _, v := scanRoles(p)
		if v != p.N() {
			return false
		}
		var gens [verify.Generations]bool
		distinct := 0
		for i := 0; i < p.N(); i++ {
			g := p.Agent(i).SV.Generation % verify.Generations
			if !gens[g] {
				gens[g] = true
				distinct++
			}
		}
		genOK := false
		switch distinct {
		case 1:
			genOK = true
		case 2:
			for g := 0; g < verify.Generations; g++ {
				next := (g + 1) % verify.Generations
				if !gens[g] || !gens[next] {
					continue
				}
				ok := true
				for i := 0; i < p.N(); i++ {
					a := p.Agent(i)
					if int(a.SV.Generation%verify.Generations) == g && a.SV.Probation != 0 {
						ok = false
						break
					}
				}
				if ok {
					genOK = true
					break
				}
			}
		}
		if !genOK {
			return false
		}
		return p.messagesCoherent()
	}

	build := func(setup func(p *Protocol)) *Protocol {
		p, err := New(n, r, WithSeed(2))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			p.ForceVerifier(i, int32(i+1))
		}
		setup(p)
		return p
	}
	cases := []struct {
		name  string
		setup func(p *Protocol)
	}{
		{"safe", func(p *Protocol) {}},
		{"two generations adjacent off probation", func(p *Protocol) {
			for i := 0; i < n/2; i++ {
				p.SetGeneration(i, 1)
			}
			for i := n / 2; i < n; i++ {
				p.SetProbation(i, 0)
			}
		}},
		{"two generations behind on probation", func(p *Protocol) {
			for i := 0; i < n/2; i++ {
				p.SetGeneration(i, 1)
			}
		}},
		{"three generations", func(p *Protocol) {
			p.SetGeneration(0, 1)
			p.SetGeneration(1, 2)
		}},
		{"non-adjacent generations", func(p *Protocol) {
			p.SetGeneration(0, 3)
		}},
		{"duplicate rank", func(p *Protocol) { p.ForceVerifier(0, 2) }},
		{"ranker present", func(p *Protocol) { p.ForceRanker(0) }},
		{"tampered message", func(p *Protocol) { p.TamperMessages(3) }},
		{"duplicated message", func(p *Protocol) { p.DuplicateMessage(1, 2) }},
	}
	for _, tc := range cases {
		p := build(tc.setup)
		got, want := p.InSafeSet(), reference(p)
		if got != want {
			t.Errorf("%s: InSafeSet() = %v, reference = %v", tc.name, got, want)
		}
	}
}
