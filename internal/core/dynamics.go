// dynamics.go is the identity-free half of ElectLeader_r: the full Protocol
// 1 pair transition expressed over two bare *Agent values, detached from any
// population array, index, or incremental counter. Protocol (core.go) wraps
// it with agent identities and the predicate counters; the species-backend
// compact model (compact.go) wraps the same dynamics around interned
// canonical states. Keeping exactly one copy of the transition body is what
// makes the exact-mirror equivalence test meaningful: the two backends can
// only diverge in bookkeeping, never in protocol semantics.

package core

import (
	"sspp/internal/coin"
	"sspp/internal/detect"
	"sspp/internal/ranking"
	"sspp/internal/reset"
	"sspp/internal/sim"
	"sspp/internal/verify"
)

// dynamics carries everything a pair transition needs besides the two
// agents: the constants, the verify/detect parameters, the event sink, the
// shared detect scratch, and the free lists recycling the O(g²) per-role
// states across role transitions.
type dynamics struct {
	n      int
	consts Constants
	vp     verify.Params

	events  *sim.Events
	scratch *detect.Scratch

	arFree []*ranking.State
	svFree []*verify.State
}

// releaseAR returns a's ranker state to the free list.
func (d *dynamics) releaseAR(a *Agent) {
	if a.AR != nil {
		d.arFree = append(d.arFree, a.AR)
		a.AR = nil
	}
}

// releaseSV returns a's verifier state to the free list.
func (d *dynamics) releaseSV(a *Agent) {
	if a.SV != nil {
		d.svFree = append(d.svFree, a.SV)
		a.SV = nil
	}
}

// popAR pops a recycled ranker state, or nil when the free list is empty.
func (d *dynamics) popAR() *ranking.State {
	if n := len(d.arFree); n > 0 {
		s := d.arFree[n-1]
		d.arFree[n-1] = nil
		d.arFree = d.arFree[:n-1]
		return s
	}
	return nil
}

// popSV pops a recycled verifier state, or nil when the free list is empty.
func (d *dynamics) popSV() *verify.State {
	if n := len(d.svFree); n > 0 {
		s := d.svFree[n-1]
		d.svFree[n-1] = nil
		d.svFree = d.svFree[:n-1]
		return s
	}
	return nil
}

// reinitRanker is the Reset routine (Protocol 6): a becomes a fresh ranker
// with a clean qAR and a full countdown. Discarded states are recycled
// through the free lists.
func (d *dynamics) reinitRanker(a *Agent) {
	d.releaseSV(a)
	a.Role = RoleRanking
	a.Reset = reset.State{}
	a.Countdown = d.consts.CountdownMax
	ar := a.AR // reuse the agent's own state in place when it has one
	if ar == nil {
		ar = d.popAR()
	}
	a.AR = ranking.ReinitInto(d.consts.Ranking, ar)
	a.Rank = 0
}

// triggerReset is TriggerReset (Protocol 5): a becomes a triggered resetter,
// discarding all other state.
func (d *dynamics) triggerReset(a *Agent, t uint64) {
	d.releaseAR(a)
	d.releaseSV(a)
	a.Role = RoleResetting
	a.Reset = reset.Triggered(d.consts.Reset)
	a.Rank = 0
	d.events.IncAt(EventHardReset, t)
}

// becomeVerifier is Protocol 1 lines 7–8: the ranker commits its computed
// rank and enters verification with q0,SV.
func (d *dynamics) becomeVerifier(a *Agent, t uint64) {
	rank := int32(1)
	if a.AR != nil {
		rank = a.AR.Rank
	}
	if rank < 1 {
		rank = 1
	}
	if int(rank) > d.n {
		rank = int32(d.n)
	}
	d.releaseAR(a)
	a.Role = RoleVerifying
	a.Rank = rank
	a.SV = verify.ReinitInto(d.vp, rank, d.popSV())
	a.Countdown = 0
	d.events.IncAt(EventBecameVerifier, t)
}

// applyResetOutcome applies a PropagateReset outcome to a.
func (d *dynamics) applyResetOutcome(a *Agent, o reset.Outcome, t uint64) {
	switch o {
	case reset.OutInfected:
		d.releaseAR(a)
		d.releaseSV(a)
		a.Role = RoleResetting
		a.Rank = 0
		d.events.IncAt(EventInfected, t)
	case reset.OutAwaken:
		d.reinitRanker(a)
		d.events.IncAt(EventAwaken, t)
	}
}

// interactPair applies one ElectLeader_r interaction (Protocol 1) to the
// ordered pair (u, v) at interaction time t, drawing u's and v's protocol
// randomness from su and sv. It is the complete transition relation: both
// backends route every interaction through this body.
//
//sspp:hotpath
func (d *dynamics) interactPair(u, v *Agent, su, sv coin.Sampler, t uint64) {
	// Lines 1–2: PropagateReset when the initiator is a resetter.
	if u.Role == RoleResetting {
		uo, vo := reset.Step(d.consts.Reset,
			true, &u.Reset, v.Role == RoleResetting, &v.Reset)
		d.applyResetOutcome(u, uo, t)
		d.applyResetOutcome(v, vo, t)
	}

	// Lines 3–5: two rankers execute AssignRanks_r and tick countdowns.
	if u.Role == RoleRanking && v.Role == RoleRanking {
		ranking.Interact(d.consts.Ranking, u.AR, v.AR, su, sv)
		if u.Countdown > 0 {
			u.Countdown--
		}
		if v.Countdown > 0 {
			v.Countdown--
		}
	}

	// Lines 6–8: rankers whose countdown expired, or who meet a verifier,
	// become verifiers — sequentially, so one transition can pull the
	// partner along (the epidemic of Lemma F.1).
	for _, pair := range [2][2]*Agent{{u, v}, {v, u}} {
		ai, aj := pair[0], pair[1]
		if ai.Role == RoleRanking && (ai.Countdown <= 0 || aj.Role == RoleVerifying) {
			d.becomeVerifier(ai, t)
		}
	}

	// Lines 9–10: two verifiers execute StableVerify_r.
	if u.Role == RoleVerifying && v.Role == RoleVerifying {
		uAct, vAct := verify.Interact(d.vp,
			u.Rank, u.SV, v.Rank, v.SV,
			su, sv, d.scratch, d.events, t)
		if uAct == verify.ActHardReset {
			d.triggerReset(u, t)
		}
		if vAct == verify.ActHardReset {
			d.triggerReset(v, t)
		}
	}
}

// copyAgentInto deep-copies src into dst, reusing dst's per-role state
// buffers (and the free lists) so the compact model's per-interaction
// scratch copies settle into zero allocations. The synthetic coin is copied
// by value; canonical encodings ignore it (see key.go).
func (d *dynamics) copyAgentInto(dst, src *Agent) {
	dst.Role = src.Role
	dst.Reset = src.Reset
	dst.Countdown = src.Countdown
	dst.Rank = src.Rank
	dst.Coin = src.Coin
	if src.AR == nil {
		d.releaseAR(dst)
	} else {
		ar := dst.AR
		if ar == nil {
			ar = d.popAR()
			if ar == nil {
				ar = &ranking.State{}
			}
		}
		ch := ar.Channel
		*ar = *src.AR
		if src.AR.Channel == nil {
			// nil and empty channels are distinct ranking states
			// (channelSum treats nil as "no channel"): preserve nil-ness.
			ar.Channel = nil
		} else {
			ar.Channel = append(ch[:0], src.AR.Channel...)
		}
		dst.AR = ar
	}
	if src.SV == nil {
		d.releaseSV(dst)
	} else {
		sv := dst.SV
		if sv == nil {
			sv = d.popSV()
			if sv == nil {
				sv = &verify.State{}
			}
		}
		dc := sv.DC
		*sv = *src.SV
		if src.SV.DC == nil {
			sv.DC = nil
		} else {
			sv.DC = src.SV.DC.CloneInto(dc)
		}
		dst.SV = sv
	}
}
