// compact_hooks_test.go covers the species-form churn and safe-set hooks of
// the compact model directly: join classes must intern the same states the
// agent-level churn path installs, and the count-level safe set must agree
// with Protocol.InSafeSet on the configurations TestInSafeSetConditions
// pins at the agent level.

package core

import (
	"testing"

	"sspp/internal/rng"
	"sspp/internal/species"
)

func TestCompactJoinClasses(t *testing.T) {
	p := mustNew(t, 8, 2)
	m := newCompactModel(p)
	cm := m.model(p)
	src := rng.New(3)

	clean, err := cm.Churn.Join("", p.n, nil, src)
	if err != nil {
		t.Fatal(err)
	}
	named, err := cm.Churn.Join("clean-rankers", p.n, nil, src)
	if err != nil {
		t.Fatal(err)
	}
	if clean != named {
		t.Fatalf("join %#x under %q and %#x under %q: the canonical clean join state must intern once",
			clean, "", named, "clean-rankers")
	}
	if m.tab[clean].Role != RoleRanking {
		t.Fatalf("clean join state has role %v, want a fresh ranker", m.tab[clean].Role)
	}

	trig, err := cm.Churn.Join("triggered", p.n, nil, src)
	if err != nil {
		t.Fatal(err)
	}
	if a := &m.tab[trig]; a.Role != RoleResetting || a.Rank != 0 {
		t.Fatalf("triggered join state has role %v rank %d, want a resetting agent with no rank", a.Role, a.Rank)
	}

	// Classes that corrupt per-agent fields with adversary randomness have
	// no count-level form.
	if _, err := cm.Churn.Join("random-garbage", p.n, nil, src); err == nil {
		t.Fatal("random-garbage accepted as a species join class")
	}
	// Replacement churn only: the model pins the population size.
	if cm.Churn.MinN != p.n || cm.Churn.MaxN != p.n {
		t.Fatalf("churn bounds [%d, %d], want replacement-only [%d, %d]", cm.Churn.MinN, cm.Churn.MaxN, p.n, p.n)
	}
}

// shrunkView misreports the population size by one, exercising the safe
// set's population check.
type shrunkView struct{ *species.System }

func (v shrunkView) N() int { return v.System.N() - 1 }

// TestCompactSafeSetMirrorsAgentLevel mirrors TestInSafeSetConditions over
// the count multiset: for each pinned configuration, the compact model's
// safe set must return exactly what Protocol.InSafeSet returns.
func TestCompactSafeSetMirrorsAgentLevel(t *testing.T) {
	allVerifiers := func(p *Protocol) {
		for i := 0; i < p.n; i++ {
			p.ForceVerifier(i, int32(i+1))
		}
	}
	cases := []struct {
		name   string
		mutate func(p *Protocol)
		want   bool
	}{
		{"fresh rankers", func(*Protocol) {}, false},
		{"single-generation verifiers", allVerifiers, true},
		{"behind generation on probation", func(p *Protocol) {
			allVerifiers(p)
			p.SetGeneration(0, 1)
		}, false},
		{"adjacent generations, behind off probation", func(p *Protocol) {
			allVerifiers(p)
			p.SetGeneration(0, 1)
			for i := 1; i < p.n; i++ {
				p.SetProbation(i, 0)
			}
		}, true},
		{"generation gap 2", func(p *Protocol) {
			allVerifiers(p)
			p.SetGeneration(0, 2)
			for i := 1; i < p.n; i++ {
				p.SetProbation(i, 0)
			}
		}, false},
		{"duplicate rank", func(p *Protocol) {
			allVerifiers(p)
			p.ForceVerifier(0, 2)
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := mustNew(t, 8, 2)
			tc.mutate(p)
			m := newCompactModel(p)
			sp, err := species.NewSystem(m.model(p), 1)
			if err != nil {
				t.Fatal(err)
			}
			if got := m.safeSet(sp); got != tc.want {
				t.Fatalf("species safe set = %v, want %v", got, tc.want)
			}
			if agent := p.InSafeSet(); agent != tc.want {
				t.Fatalf("agent-level safe set = %v disagrees with the pinned expectation %v", agent, tc.want)
			}
			if tc.want {
				// A population-size mismatch must fail the safe set
				// regardless of the configuration.
				if m.safeSet(shrunkView{sp}) {
					t.Fatal("safe set accepted a view with the wrong population size")
				}
			}
		})
	}
}

// TestCompactPublicEntry exercises the exported Compact method (the mirror
// tests build the model through newCompactModel to reach the intern table).
func TestCompactPublicEntry(t *testing.T) {
	p := mustNew(t, 8, 2)
	cm := p.Compact()
	if cm.Init == nil || cm.React == nil || cm.SafeSet == nil || cm.Churn == nil || cm.Release == nil {
		t.Fatal("Compact must populate the full model surface")
	}
}
