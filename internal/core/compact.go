// compact.go implements the Compactable capability for ElectLeader_r: the
// composite (ranking, verify, detect, probation) per-agent state is too rich
// for a packed key, so the model interns canonical encodings (key.go) in a
// table it owns — the NameRank pattern (internal/baseline/compact.go) — and
// runs the exact same pair dynamics (dynamics.go) over deep copies of the
// interned states. Unlike the baselines, ElectLeader_r's reachable state
// space is effectively unbounded (probation timers, countdowns and message
// multisets make almost every interaction mint fresh states), so the model
// also wires the engine's Release hook: dead table entries are evicted and
// their keys recycled, bounding the table at O(occupied states) instead of
// O(interactions).
//
// The model draws all protocol randomness from the instance's own PRNG and
// deliberately ignores the engine-passed source: with matched seeds, an
// agent-level instance and a species run of its compact model consume the
// identical random sequence, which is what makes the exact-mirror
// equivalence test (compact_test.go) bit-for-bit rather than statistical.

package core

import (
	"fmt"

	"sspp/internal/coin"
	"sspp/internal/detect"
	"sspp/internal/reset"
	"sspp/internal/rng"
	"sspp/internal/sim"
	"sspp/internal/verify"
)

var _ sim.Compactable = (*Protocol)(nil)

// compactModel is the interning machinery behind Compact: a table of
// canonical agent states indexed by key, the intern map from canonical
// encoding to key, and the scratch that keeps the per-interaction deep
// copies allocation-free once warm.
type compactModel struct {
	// dyn shares the instance's constants, parameters and event sink, but
	// owns its scratch and free lists: a species run must not disturb the
	// template instance's recycling pools.
	dyn    dynamics
	n      int
	sample coin.Sampler
	clock  uint64

	tab    []Agent           // interned canonical states, indexed by key
	names  []string          // canonical encodings, parallel to tab
	intern map[string]uint64 // canonical encoding → key
	free   []uint64          // recycled keys (released table slots)
	enc    []byte            // encoding scratch

	u, v Agent // React's working copies
	jw   Agent // Join's working copy

	// Safe-set scratch: epoch-tagged rank-distinctness array plus the
	// coherence-walk buffers, mirroring Protocol's (correct.go).
	rankEpoch []uint64
	epoch     uint64
	cohRanks  []int32
	cohStates []*detect.State
	coh       *detect.CohScratch
}

// keyOf interns a's canonical encoding and returns its key, deep-copying the
// state into the table on first sight. Keys of released states are reused,
// so a key is only meaningful while its state stays occupied — exactly the
// engine's contract for Release-bearing models.
func (m *compactModel) keyOf(a *Agent) uint64 {
	m.enc = appendAgentKey(m.enc[:0], a)
	if id, ok := m.intern[string(m.enc)]; ok {
		return id
	}
	var id uint64
	if k := len(m.free); k > 0 {
		id = m.free[k-1]
		m.free = m.free[:k-1]
	} else {
		id = uint64(len(m.tab))
		m.tab = append(m.tab, Agent{})
		m.names = append(m.names, "")
	}
	m.dyn.copyAgentInto(&m.tab[id], a)
	name := string(m.enc)
	m.intern[name] = id
	m.names[id] = name
	return id
}

// release evicts key's table entry: the intern mapping dies, the per-role
// states return to the free lists, and the key becomes reusable.
func (m *compactModel) release(key uint64) {
	name := m.names[key]
	if name == "" {
		return
	}
	delete(m.intern, name)
	m.names[key] = ""
	a := &m.tab[key]
	m.dyn.releaseAR(a)
	m.dyn.releaseSV(a)
	*a = Agent{}
	m.free = append(m.free, key)
}

// react applies one ElectLeader_r interaction to the ordered state pair: the
// interned states are deep-copied into working agents, the shared pair
// dynamics run, and the successors are interned. The engine's source is
// ignored — see the package comment.
//
//sspp:hotpath
func (m *compactModel) react(a, b uint64, _ *rng.PRNG) (uint64, uint64) {
	m.dyn.copyAgentInto(&m.u, &m.tab[a])
	m.dyn.copyAgentInto(&m.v, &m.tab[b])
	m.clock++
	m.dyn.interactPair(&m.u, &m.v, m.sample, m.sample, m.clock)
	return m.keyOf(&m.u), m.keyOf(&m.v)
}

// join returns the key of an agent joining under the named adversary class.
// The class names mirror internal/adversary (which cannot be imported here:
// it depends on this package). Classes that corrupt per-agent fields with
// the adversary's randomness (random-garbage) have no count-level form.
func (m *compactModel) join(class string, _ int, _ sim.CountView, _ *rng.PRNG) (uint64, error) {
	jw := &m.jw
	switch class {
	case "", "clean-rankers":
		m.dyn.reinitRanker(jw)
	case "triggered":
		m.dyn.releaseAR(jw)
		m.dyn.releaseSV(jw)
		jw.Role = RoleResetting
		jw.Reset = reset.Triggered(m.dyn.consts.Reset)
		jw.Countdown = 0
		jw.Rank = 0
	default:
		return 0, fmt.Errorf("core: class %q not realizable as an electleader species join state", class)
	}
	return m.keyOf(jw), nil
}

// safeSet mirrors Protocol.InSafeSet (correct.go) over the count multiset:
// all agents verifiers with a distinct in-range rank, no detector in ⊤, at
// most two adjacent generations with the behind one off probation, then the
// per-generation message-coherence walk. detect.Coherent is order-
// independent, so the unspecified CountView iteration order is safe.
func (m *compactModel) safeSet(v sim.CountView) bool {
	if v.N() != m.n {
		return false
	}
	m.epoch++
	var genCount, probCount [verify.Generations]int64
	ok := true
	v.Each(func(key uint64, c int64) bool {
		a := &m.tab[key]
		// A duplicated full state duplicates its rank, so c must be 1.
		if c != 1 || a.Role != RoleVerifying || a.SV == nil {
			ok = false
			return false
		}
		r := a.Rank
		if r < 1 || int(r) > m.n || m.rankEpoch[r-1] == m.epoch {
			ok = false
			return false
		}
		m.rankEpoch[r-1] = m.epoch
		if a.SV.DC != nil && a.SV.DC.Err {
			ok = false
			return false
		}
		g := a.SV.Generation % verify.Generations
		genCount[g]++
		if a.SV.Probation != 0 {
			probCount[g]++
		}
		return true
	})
	if !ok {
		return false
	}
	distinct := 0
	for g := 0; g < verify.Generations; g++ {
		if genCount[g] > 0 {
			distinct++
		}
	}
	switch distinct {
	case 1:
	case 2:
		adjacent := false
		for g := 0; g < verify.Generations; g++ {
			next := (g + 1) % verify.Generations
			if genCount[g] > 0 && genCount[next] > 0 && probCount[g] == 0 {
				adjacent = true
				break
			}
		}
		if !adjacent {
			return false
		}
	default:
		return false
	}
	if m.coh == nil {
		m.coh = detect.NewCohScratch()
	}
	for gen := uint8(0); gen < verify.Generations; gen++ {
		if genCount[gen] == 0 {
			continue
		}
		m.cohRanks = m.cohRanks[:0]
		m.cohStates = m.cohStates[:0]
		v.Each(func(key uint64, _ int64) bool {
			a := &m.tab[key]
			if a.SV.Generation%verify.Generations == gen {
				m.cohRanks = append(m.cohRanks, a.Rank)
				m.cohStates = append(m.cohStates, a.SV.DC)
			}
			return true
		})
		if !detect.Coherent(m.dyn.vp.Detect, m.cohRanks, m.cohStates, m.coh) {
			return false
		}
	}
	return true
}

// Compact describes ElectLeader_r in species form: interned canonical state
// keys over the shared pair dynamics, with Release-based table eviction. The
// model captures the instance — a species run starts from exactly this
// instance's configuration and consumes its protocol PRNG. Per-agent
// identity surfaces (LeaderIndex, snapshots, transient injection) do not
// survive compaction; the engine degrades them per the capability table
// (DESIGN.md §8). Synthetic-coin mode has no species form at all: the coin
// state is per-agent identity by construction (Appendix B), and the backend
// resolver rejects the combination before ever calling Compact.
func (p *Protocol) Compact() sim.CompactModel {
	if p.synthetic {
		panic("core: synthetic-coin mode has no species form (per-agent coin state); run the agent backend")
	}
	return newCompactModel(p).model(p)
}

// model assembles the sim.CompactModel view over m, capturing p for Init.
func (m *compactModel) model(p *Protocol) sim.CompactModel {
	return m.modelWith(func() ([]uint64, []int64) {
		order := make([]uint64, 0, 8)
		counts := make(map[uint64]int64, 8)
		for i := range p.agents {
			k := m.keyOf(&p.agents[i])
			if counts[k] == 0 {
				order = append(order, k)
			}
			counts[k]++
		}
		occ := make([]int64, len(order))
		for i, k := range order {
			occ[i] = counts[k]
		}
		return order, occ
	})
}

// CompactClean builds ElectLeader_r's species form directly in the clean
// post-awakening configuration — one interned clean-ranker state with count
// n — without constructing the O(n·r) agent instance Compact starts from.
// The clean start is identity-free by construction (every agent a fresh
// ranker, and canonical keys exclude the inert coin state), so the result is
// bit-for-bit equivalent to core.New(n, r, opts...).Compact() at matched
// seeds: New consumes no PRNG draws during construction, and reinitRanker is
// deterministic, so both forms enter React with identical intern tables and
// identical sampling streams (pinned by TestCompactCleanMirrorsCompact).
// Synthetic-coin mode has no species form and is rejected.
func CompactClean(n, r int, opts ...Option) (sim.CompactModel, error) {
	m, err := newCleanCompactModel(n, r, opts...)
	if err != nil {
		return sim.CompactModel{}, err
	}
	return m.cleanModel(), nil
}

// cleanModel assembles the species form over the clean post-awakening
// configuration: a single interned fresh-ranker state holding all n agents.
func (m *compactModel) cleanModel() sim.CompactModel {
	return m.modelWith(func() ([]uint64, []int64) {
		var clean Agent
		m.dyn.reinitRanker(&clean)
		return []uint64{m.keyOf(&clean)}, []int64{int64(m.n)}
	})
}

// newCleanCompactModel builds the interning machinery of CompactClean
// without an instance. Split from CompactClean so the equivalence test can
// reach the intern table, mirroring newCompactModel's role for Compact.
func newCleanCompactModel(n, r int, opts ...Option) (*compactModel, error) {
	cfg := config{seed: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.synthetic {
		return nil, fmt.Errorf("core: synthetic-coin mode has no species form (per-agent coin state); run the agent backend")
	}
	consts := DefaultConstants(n, r)
	if cfg.consts != nil {
		consts = *cfg.consts
	}
	if err := consts.Validate(n); err != nil {
		return nil, err
	}
	dp := detect.NewParamsWithRefresh(n, r, consts.DetectRefresh)
	dp.SetNoBalance(consts.DisableLoadBalance)
	return &compactModel{
		dyn: dynamics{
			n:       n,
			consts:  consts,
			vp:      verify.Params{PMax: consts.PMax, Detect: dp, HardOnly: consts.DisableSoftReset},
			events:  cfg.events,
			scratch: detect.NewScratch(),
		},
		n:         n,
		sample:    coin.FromPRNG(rng.New(cfg.seed)),
		intern:    make(map[string]uint64),
		rankEpoch: make([]uint64, n),
	}, nil
}

// newCompactModel builds the interning machinery for a species run of p.
// Split from Compact so the exact-mirror test can reach the intern table.
func newCompactModel(p *Protocol) *compactModel {
	return &compactModel{
		dyn: dynamics{
			n:       p.dyn.n,
			consts:  p.dyn.consts,
			vp:      p.dyn.vp,
			events:  p.dyn.events,
			scratch: detect.NewScratch(),
		},
		n:         p.n,
		sample:    coin.FromPRNG(p.src),
		intern:    make(map[string]uint64),
		rankEpoch: make([]uint64, p.n),
	}
}

// modelWith assembles the sim.CompactModel view over m with the given
// initial-configuration builder (Compact interns an instance's agents;
// CompactClean interns the single clean-ranker state).
func (m *compactModel) modelWith(init func() ([]uint64, []int64)) sim.CompactModel {
	return sim.CompactModel{
		Init:    init,
		React:   m.react,
		Leader:  func(key uint64) bool { return rankOutputOf(&m.tab[key]) == 1 },
		Rank:    func(key uint64) int32 { return rankOutputOf(&m.tab[key]) },
		SafeSet: m.safeSet,
		Churn: &sim.CompactChurn{
			MinN: m.n,
			MaxN: m.n,
			Join: m.join,
		},
		Release: m.release,
	}
}
