// statespace.go computes the state-space sizes of ElectLeader_r and its
// modules, following the structure of Figures 1–4: each role's space is the
// cross product of its active fields, and the total is the disjoint union of
// the roles' spaces. Sizes are astronomically large (2^O(r²·log n)), so all
// arithmetic is done on log₂ values; cross products become sums and disjoint
// unions become log-sum-exp. These formulas drive experiment T2, which
// compares the trade-off against the state counts of [16], [17] and [20].

package core

import "math"

// log2SumExp2 returns log₂(Σ 2^x_i) computed stably.
func log2SumExp2(xs ...float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	if math.IsInf(m, -1) {
		return m
	}
	var s float64
	for _, x := range xs {
		s += math.Exp2(x - m)
	}
	return m + math.Log2(s)
}

// lg returns log₂(x) for positive x and 0 otherwise (empty fields contribute
// nothing to a cross product).
func lg(x float64) float64 {
	if x <= 1 {
		return 0
	}
	return math.Log2(x)
}

// DetectBits returns log₂ of the DetectCollision_r state space for a group
// of size g (Fig. 3):
//
//	{⊤} ⊎ ( [g⁵] × [Θ(log g)] × [(2g⁸)^(2g²)] × [(g⁷)^(2g²)] )
//
// which is 2^O(g²·log g).
func DetectBits(g float64) float64 {
	if g < 1 {
		return 0
	}
	signature := 5 * lg(g)
	counter := lg(8 * math.Log(g+1))
	msgs := 2 * g * g * lg(2*math.Pow(g, 8))
	obs := 2 * g * g * 7 * lg(g)
	return log2SumExp2(0, signature+counter+msgs+obs)
}

// RankingBits returns log₂ of the AssignRanks_r state space for population
// size n and parameter r (Appendix D), which is 2^O(r·log n). The dominant
// term is the channel field: (⌈cn/r⌉+1)^r.
func RankingBits(n, r float64) float64 {
	if r < 1 {
		r = 1
	}
	labelCap := math.Ceil(2*n/r) + 1
	channel := r * lg(labelCap)
	le := 2*lg(n*n*n) + lg(40*math.Log(n+1)) + 2 // ID, MinID, LECount, two bits
	sheriff := 2 * lg(r)
	deputy := lg(r) + lg(labelCap)
	label := lg(r*labelCap + 1)
	sleeper := label + lg(24*math.Log(n+1))
	rank := lg(n)
	return rank + log2SumExp2(
		le,
		channel+sheriff,
		channel+deputy,
		channel+label,   // recipient
		channel+sleeper, // sleeper
		0,               // ranked (rank only)
	)
}

// VerifyBits returns log₂ of the StableVerify_r state space (Fig. 2):
// ℤ₆ × [Θ((n/r)·log n)] × Q_DC.
func VerifyBits(n, r float64) float64 {
	g := groupSize(n, r)
	return lg(6) + lg(24*n/r*math.Log(n+1)) + DetectBits(g)
}

// ElectLeaderBits returns log₂ of the full ElectLeader_r state space
// (Fig. 1): {roles} × (Q_PR ⊎ countdown×Q_AR ⊎ rank×Q_SV), which is
// 2^O(r²·log n). This is the quantity Theorem 1.1 bounds.
func ElectLeaderBits(n, r float64) float64 {
	if r < 1 {
		r = 1
	}
	resetBits := lg(60*math.Log(n+1)) + lg(120*math.Log(n+1)) // resetCount × delayTimer
	countdown := lg((20*n/r + 160) * math.Log(n+1))
	return lg(3) + log2SumExp2(
		resetBits,
		countdown+RankingBits(n, r),
		lg(n)+VerifyBits(n, r),
	)
}

// groupSize returns the maximum group size of the partition of [n] into
// ⌈n/r⌉ groups.
func groupSize(n, r float64) float64 {
	if r < 1 {
		r = 1
	}
	numGroups := math.Ceil(n / r)
	return math.Ceil(n / numGroups)
}

// BurmanBits returns log₂ of the state count of the time-optimal regime of
// Sublinear-Time-SSR (Burman et al., PODC'21): achieving O(n·log n)
// interactions requires H = Θ(log n), hence 2^Θ(n^H) = 2^(n^Θ(log n))
// states — super-polynomial bit complexity, the baseline Theorem 1.1
// improves to sub-cubic. We instantiate H = log₂(n) − 1.
func BurmanBits(n float64) float64 {
	return BurmanSublinearBits(n, lg(n)-1)
}

// BurmanSublinearBits returns log₂ of the state count of
// Sublinear-Time-SSR for parameter H (2^Θ(n^H)·log n states for time
// O(log n · n^(1/(H+1)))), the trade-off ElectLeader_r supersedes.
func BurmanSublinearBits(n, h float64) float64 {
	return math.Pow(n, h) + lg(lg(n))
}

// CaiIzumiWadaBits returns log₂ of the n states of the silent protocol of
// Cai, Izumi, and Wada (state-optimal anchor, Θ(n²) expected time).
func CaiIzumiWadaBits(n float64) float64 { return lg(n) }

// GasieniecBits returns log₂ of the n + O(log n) states of Gąsieniec,
// Grodzicki, and Stachowiak (2025), the near-state-optimal silent protocol.
func GasieniecBits(n float64) float64 { return lg(n + 8*math.Log(n+1)) }
