// compact_test.go property-tests ElectLeader_r's species form against the
// agent-level implementation it must mirror, the same way the baselines are
// tested (internal/baseline/compact_test.go): the same recorded schedule is
// applied to both representations, and the species multiset must equal the
// reference multiset of agent states exactly — not statistically — at every
// checkpoint. The mirror is bit-for-bit because the compact model consumes
// the template instance's protocol PRNG (see compact.go): two same-seeded
// instances driven through identical state pairs draw identical randomness.

package core

import (
	"testing"

	"sspp/internal/rng"
	"sspp/internal/sim"
	"sspp/internal/species"
)

const (
	mirrorSteps = 100_000
	mirrorEvery = 5_000
)

// compareCounts requires the species multiset to equal the reference
// multiset of agent states, related through the model's intern table.
func compareCounts(t *testing.T, step int, p *Protocol, sp *species.System, m *compactModel) {
	t.Helper()
	ref := make(map[uint64]int64, p.n)
	for i := range p.agents {
		ref[m.keyOf(&p.agents[i])]++
	}
	if sp.Occupied() != len(ref) {
		t.Fatalf("interaction %d: species occupies %d states, reference %d", step, sp.Occupied(), len(ref))
	}
	var sum int64
	sp.Each(func(key uint64, c int64) bool {
		if ref[key] != c {
			t.Fatalf("interaction %d: state %#x count %d, reference %d", step, key, c, ref[key])
		}
		sum += c
		return true
	})
	if sum != int64(p.n) {
		t.Fatalf("interaction %d: species counts sum to %d, want n=%d", step, sum, p.n)
	}
}

// TestElectLeaderSpeciesMirrorsAgentLevel: 10⁵ recorded interactions applied
// to an agent-level instance and to a species run of a same-seeded
// instance's compact model leave identical multisets at every checkpoint,
// and replaying the recording reproduces the agent-level run exactly.
func TestElectLeaderSpeciesMirrorsAgentLevel(t *testing.T) {
	const (
		n    = 256
		r    = 16
		seed = 42
	)
	agent, err := New(n, r, WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	template, err := New(n, r, WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	m := newCompactModel(template)
	sp, err := species.NewSystem(m.model(template), 1)
	if err != nil {
		t.Fatal(err)
	}

	rec := sim.NewRecorder(rng.New(77))
	for i := 0; i < mirrorSteps; i++ {
		a, b := rec.Pair(n)
		// keyOf reads the pre-interaction agent states; a state held by a
		// live agent is occupied on the species side too, so its intern
		// entry cannot have been released.
		if err := sp.ApplyPair(m.keyOf(&agent.agents[a]), m.keyOf(&agent.agents[b])); err != nil {
			t.Fatalf("interaction %d (%d, %d): %v", i, a, b, err)
		}
		agent.Interact(a, b)
		if (i+1)%mirrorEvery == 0 {
			compareCounts(t, i+1, agent, sp, m)
			if err := sp.SelfCheck(); err != nil {
				t.Fatalf("interaction %d: %v", i+1, err)
			}
		}
	}
	compareCounts(t, mirrorSteps, agent, sp, m)
	if err := sp.SelfCheck(); err != nil {
		t.Fatal(err)
	}

	// The intern table must stay bounded by the occupied-state count plus
	// the two transients of the last interaction — the Release hook at work.
	if live := len(m.tab) - len(m.free); live > sp.Occupied()+2 {
		t.Fatalf("intern table holds %d live entries for %d occupied states", live, sp.Occupied())
	}

	// Replay the captured schedule into a fresh instance: the exact final
	// configuration must come back (the reproducibility contract the mirror
	// test itself rests on).
	replayed, err := New(n, r, WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	sim.StepsSched(replayed, rec.Recording().Replay(), mirrorSteps)
	var want, got []byte
	for i := 0; i < n; i++ {
		want = appendAgentKey(want[:0], &agent.agents[i])
		got = appendAgentKey(got[:0], &replayed.agents[i])
		if string(want) != string(got) {
			t.Fatalf("replay diverged at agent %d", i)
		}
	}
}

// TestCompactModelReleaseRecyclesKeys pins the intern-table lifecycle: a
// clean start interns one state for the whole population, released keys are
// recycled for the next fresh state, and a released encoding is genuinely
// forgotten (re-interning it mints a live entry again).
func TestCompactModelReleaseRecyclesKeys(t *testing.T) {
	p, err := New(64, 8, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	m := newCompactModel(p)
	keys, counts := m.model(p).Init()
	if len(keys) != 1 || counts[0] != 64 {
		t.Fatalf("clean start interned %d states (counts %v), want the single fresh-ranker state × 64", len(keys), counts)
	}

	var a Agent
	m.dyn.copyAgentInto(&a, &p.agents[0])
	a.Countdown--
	k1 := m.keyOf(&a)
	if k1 == keys[0] {
		t.Fatal("distinct states interned to the same key")
	}
	if m.keyOf(&a) != k1 {
		t.Fatal("re-interning an identical state minted a new key")
	}

	m.release(k1)
	if m.names[k1] != "" {
		t.Fatal("release left the canonical name behind")
	}
	a.Countdown--
	if k2 := m.keyOf(&a); k2 != k1 {
		t.Fatalf("fresh state got key %d, want the recycled %d", k2, k1)
	}
	// Double release must be a no-op (the engine may reap a key that a
	// later delta in the same event already re-populated and re-emptied).
	m.release(k1)
	m.release(k1)
	if got := len(m.free); got != 1 {
		t.Fatalf("free list holds %d keys after double release, want 1", got)
	}
}

// TestCompactCleanMirrorsCompact pins the clean-start constructor against
// the instance-backed one at matched seeds: both forms must intern the same
// single clean-ranker configuration and, driven through the identical
// recorded schedule, leave bit-identical multisets (same counts under the
// same canonical encodings) at every checkpoint — the equivalence that lets
// System skip the O(n·r) agent-instance transient on species builds.
func TestCompactCleanMirrorsCompact(t *testing.T) {
	const (
		n    = 256
		r    = 16
		seed = 42
	)
	template, err := New(n, r, WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	oldM := newCompactModel(template)
	oldSp, err := species.NewSystem(oldM.model(template), 1)
	if err != nil {
		t.Fatal(err)
	}
	cleanM, err := newCleanCompactModel(n, r, WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	cleanModel := cleanM.cleanModel()
	newSp, err := species.NewSystem(cleanModel, 1)
	if err != nil {
		t.Fatal(err)
	}

	keys, counts := cleanModel.Init()
	if len(keys) != 1 || counts[0] != n {
		t.Fatalf("clean start interned %d states (counts %v), want the single fresh-ranker state × %d", len(keys), counts, n)
	}

	// Drive both species systems through the same reference agent run: the
	// reference supplies the pair schedule as state keys, translated through
	// each model's own intern table. Canonical encodings must agree at every
	// checkpoint — the two tables may assign different numeric keys, so the
	// comparison goes through the names.
	ref, err := New(n, r, WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(77)
	for i := 0; i < mirrorSteps; i++ {
		a := src.Intn(n)
		b := src.Intn(n - 1)
		if b >= a {
			b++
		}
		if err := oldSp.ApplyPair(oldM.keyOf(&ref.agents[a]), oldM.keyOf(&ref.agents[b])); err != nil {
			t.Fatalf("interaction %d (old form): %v", i, err)
		}
		if err := newSp.ApplyPair(cleanM.keyOf(&ref.agents[a]), cleanM.keyOf(&ref.agents[b])); err != nil {
			t.Fatalf("interaction %d (clean form): %v", i, err)
		}
		ref.Interact(a, b)
		if (i+1)%mirrorEvery == 0 {
			compareCounts(t, i+1, ref, oldSp, oldM)
			compareCounts(t, i+1, ref, newSp, cleanM)
		}
	}
	compareCounts(t, mirrorSteps, ref, oldSp, oldM)
	compareCounts(t, mirrorSteps, ref, newSp, cleanM)
}

// TestCompactCleanRefusesSyntheticCoins pins the capability boundary for the
// clean-start constructor, mirroring TestCompactRefusesSyntheticCoins.
func TestCompactCleanRefusesSyntheticCoins(t *testing.T) {
	if _, err := CompactClean(32, 4, WithSyntheticCoins()); err == nil {
		t.Fatal("CompactClean accepted synthetic-coin mode")
	}
}

// TestCompactRefusesSyntheticCoins pins the capability boundary: the
// Appendix B coin state is per-agent identity, so synthetic-mode instances
// must not silently compact.
func TestCompactRefusesSyntheticCoins(t *testing.T) {
	p, err := New(32, 4, WithSyntheticCoins())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Compact() accepted a synthetic-coin instance")
		}
	}()
	p.Compact()
}
