// Package core implements ElectLeader_r (Section 4, Protocol 1), the
// paper's self-stabilizing leader-election-and-ranking protocol, by
// composing the three role modules:
//
//   - Resetting agents run PropagateReset (internal/reset, Appendix C),
//   - Ranking agents run AssignRanks_r (internal/ranking, Appendix D) under
//     a countdown that forces the transition to verification,
//   - Verifying agents run StableVerify_r (internal/verify, Section 5),
//     which embeds DetectCollision_r (internal/detect, Section 5.1).
//
// The agent with rank 1 is the leader. Starting from any configuration the
// protocol reaches, w.h.p. within O((n²/r)·log n) interactions, a safe
// configuration in which the ranking is a permutation of [n] and never
// changes again (Theorem 1.1).
package core

import (
	"fmt"

	"sspp/internal/coin"
	"sspp/internal/detect"
	"sspp/internal/ranking"
	"sspp/internal/reset"
	"sspp/internal/rng"
	"sspp/internal/sim"
	"sspp/internal/verify"
)

// Role is an agent's top-level role (Section 4, Fig. 1).
type Role uint8

const (
	// RoleRanking: the agent executes AssignRanks_r.
	RoleRanking Role = iota
	// RoleResetting: the agent executes PropagateReset.
	RoleResetting
	// RoleVerifying: the agent executes StableVerify_r.
	RoleVerifying
)

// String returns the role name.
func (r Role) String() string {
	switch r {
	case RoleRanking:
		return "ranking"
	case RoleResetting:
		return "resetting"
	case RoleVerifying:
		return "verifying"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// Agent is the full per-agent state of ElectLeader_r. Only the fields of the
// current role are meaningful; role transitions nil/zero the rest, matching
// the paper's "inactive fields are deleted" convention (which is also what
// bounds the state space as a disjoint union, Fig. 1).
type Agent struct {
	// Role is the agent's current role.
	Role Role
	// Reset is the PropagateReset state (RoleResetting).
	Reset reset.State
	// Countdown forces rankers into verification (RoleRanking).
	Countdown int32
	// AR is the AssignRanks_r state qAR (RoleRanking).
	AR *ranking.State
	// Rank is the committed rank (RoleVerifying).
	Rank int32
	// SV is the StableVerify_r state qSV (RoleVerifying).
	SV *verify.State
	// Coin is the synthetic-coin state (Appendix B), maintained in every
	// role when the protocol runs in derandomized mode.
	Coin coin.State
}

// Event names recorded by the protocol (in addition to the verify.Event*
// names emitted by StableVerify_r).
const (
	// EventHardReset counts TriggerReset executions.
	EventHardReset = "core.hard_reset"
	// EventInfected counts computing→resetting infections.
	EventInfected = "core.infected"
	// EventAwaken counts resetter→ranker awakenings (Reset, Protocol 6).
	EventAwaken = "core.awaken"
	// EventBecameVerifier counts ranker→verifier transitions.
	EventBecameVerifier = "core.became_verifier"
)

// Protocol is one ElectLeader_r instance. It implements sim.Protocol. It is
// not safe for concurrent use.
type Protocol struct {
	n int
	r int

	// dyn is the identity-free transition machinery (dynamics.go): the
	// constants, verify/detect parameters, event sink, detect scratch and
	// per-role free lists, shared verbatim with the compact model.
	dyn dynamics

	agents   []Agent
	samplers []coin.Sampler

	synthetic bool
	src       *rng.PRNG
	clock     uint64

	// Incremental predicate counters (counters.go). Maintained by
	// untrack/track around every agent mutation, they make the correctness
	// predicates and the cheap gates of InSafeSet O(1).
	roleCount  [3]int                  // agents per Role
	genCount   [verify.Generations]int // verifiers per generation (mod 6)
	probCount  [verify.Generations]int // verifiers on probation, per generation
	topCount   int                     // verifiers in ⊤
	rankCount  []int32                 // agents per in-range rank output
	rankExcess int                     // Σ_rank max(0, rankCount-1)
	rankOOR    int                     // agents with out-of-range rank output
	leaderSum  int                     // Σ of indices of rank-1 agents

	// Reusable buffers of the safe-set coherence check (correct.go).
	coh       *detect.CohScratch
	cohRanks  []int32
	cohStates []*detect.State
}

var _ sim.Protocol = (*Protocol)(nil)

// config collects the options of New.
type config struct {
	seed      uint64
	consts    *Constants
	synthetic bool
	events    *sim.Events
}

// Option configures New.
type Option func(*config)

// WithSeed sets the seed of the protocol-internal randomness (identifier
// draws and signature refreshes). The scheduler randomness is separate and
// supplied by the runner. Default seed: 1.
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// WithConstants overrides the default constants.
func WithConstants(consts Constants) Option {
	return func(c *config) { cc := consts; c.consts = &cc }
}

// WithSyntheticCoins runs the protocol in the derandomized mode of Appendix
// B: all protocol sampling is served from per-agent synthetic coins fed only
// by scheduler randomness, instead of from the PRNG.
func WithSyntheticCoins() Option { return func(c *config) { c.synthetic = true } }

// WithEvents attaches an event sink recording resets, detections and role
// transitions.
func WithEvents(ev *sim.Events) Option { return func(c *config) { c.events = ev } }

// ValidateParams reports whether New would accept (n, r) with default
// constants, without building the population — an O(1) check for grid
// validation.
func ValidateParams(n, r int) error {
	return DefaultConstants(n, r).Validate(n)
}

// New builds an ElectLeader_r instance over n agents with trade-off
// parameter 1 ≤ r ≤ n/2. The initial configuration is the clean
// post-awakening one: every agent a fresh ranker (use the adversary package
// or the Force* mutators for other starting configurations).
func New(n, r int, opts ...Option) (*Protocol, error) {
	cfg := config{seed: 1}
	for _, o := range opts {
		o(&cfg)
	}
	consts := DefaultConstants(n, r)
	if cfg.consts != nil {
		consts = *cfg.consts
	}
	if err := consts.Validate(n); err != nil {
		return nil, err
	}
	dp := detect.NewParamsWithRefresh(n, r, consts.DetectRefresh)
	dp.SetNoBalance(consts.DisableLoadBalance)
	p := &Protocol{
		n: n,
		r: r,
		dyn: dynamics{
			n:       n,
			consts:  consts,
			vp:      verify.Params{PMax: consts.PMax, Detect: dp, HardOnly: consts.DisableSoftReset},
			events:  cfg.events,
			scratch: detect.NewScratch(),
		},
		agents:    make([]Agent, n),
		samplers:  make([]coin.Sampler, n),
		synthetic: cfg.synthetic,
		src:       rng.New(cfg.seed),
		rankCount: make([]int32, n),
	}
	width := coin.WidthFor(int(consts.Ranking.IDSpace))
	prngSampler := coin.FromPRNG(p.src)
	for i := range p.agents {
		p.agents[i].Coin = coin.NewState(width, uint64(i)+cfg.seed*0x9E37)
		if cfg.synthetic {
			p.samplers[i] = p.agents[i].Coin.Sample
		} else {
			p.samplers[i] = prngSampler
		}
	}
	for i := range p.agents {
		p.reinitRanker(i)
	}
	p.recount()
	return p, nil
}

// N returns the population size.
func (p *Protocol) N() int { return p.n }

// R returns the trade-off parameter r.
func (p *Protocol) R() int { return p.r }

// Constants returns the protocol's constants.
func (p *Protocol) Constants() Constants { return p.dyn.consts }

// VerifyParams returns the StableVerify_r parameters (tests and the
// adversary package need them to build type-valid states).
func (p *Protocol) VerifyParams() verify.Params { return p.dyn.vp }

// Clock returns the number of interactions applied so far.
func (p *Protocol) Clock() uint64 { return p.clock }

// Events returns the attached event sink (possibly nil).
func (p *Protocol) Events() *sim.Events { return p.dyn.events }

// Agent returns agent i's state for inspection. Mutations should go through
// the Force* methods, which keep states type-valid.
func (p *Protocol) Agent(i int) *Agent { return &p.agents[i] }

// reinitRanker is the Reset routine (Protocol 6) on agent i (dynamics.go).
func (p *Protocol) reinitRanker(i int) { p.dyn.reinitRanker(&p.agents[i]) }

// triggerReset is TriggerReset (Protocol 5) on agent i (dynamics.go).
func (p *Protocol) triggerReset(i int) { p.dyn.triggerReset(&p.agents[i], p.clock) }

// becomeVerifier is Protocol 1 lines 7–8 on agent i (dynamics.go).
func (p *Protocol) becomeVerifier(i int) { p.dyn.becomeVerifier(&p.agents[i], p.clock) }

// Interact applies one ElectLeader_r interaction (Protocol 1) to the ordered
// pair (a, b). Only the two participating agents can change, so the
// incremental counters are maintained by bracketing the transition with
// untrack/track on exactly those two.
//
//sspp:hotpath
func (p *Protocol) Interact(a, b int) {
	p.untrack(a)
	p.untrack(b)
	p.interact(a, b)
	p.track(a)
	p.track(b)
}

// interact is the tracking-free transition body of Interact: the clock
// tick, the synthetic-coin observation (the only per-agent-identity piece
// of the transition), then the shared pair dynamics.
//
//sspp:hotpath
func (p *Protocol) interact(a, b int) {
	p.clock++
	u, v := &p.agents[a], &p.agents[b]
	if p.synthetic {
		coin.Observe(&u.Coin, &v.Coin)
	}
	p.dyn.interactPair(u, v, p.samplers[a], p.samplers[b], p.clock)
}
