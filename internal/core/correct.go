// correct.go defines the output mapping and correctness predicates of
// ElectLeader_r, plus the checkable core of the safe-set predicate of
// Lemma 6.1.

package core

import (
	"sspp/internal/detect"
	"sspp/internal/verify"
)

// RankOutput returns agent i's current rank output: committed rank for
// verifiers, the AssignRanks_r belief for rankers (initialized to 1, per
// Appendix D), and the degenerate belief 1 for resetters.
func (p *Protocol) RankOutput(i int) int32 {
	a := &p.agents[i]
	switch a.Role {
	case RoleVerifying:
		return a.Rank
	case RoleRanking:
		if a.AR != nil {
			return a.AR.Rank
		}
		return 1
	default:
		return 1
	}
}

// IsLeader reports whether agent i currently outputs "leader" (rank 1).
func (p *Protocol) IsLeader(i int) bool { return p.RankOutput(i) == 1 }

// Leaders returns the number of agents currently outputting "leader".
func (p *Protocol) Leaders() int {
	c := 0
	for i := range p.agents {
		if p.IsLeader(i) {
			c++
		}
	}
	return c
}

// Correct reports whether exactly one agent outputs "leader" — the
// correctness predicate of self-stabilizing leader election.
func (p *Protocol) Correct() bool { return p.Leaders() == 1 }

// CorrectRanking reports whether the rank outputs form a permutation of
// [1, n] — the stronger ranking correctness the protocol actually
// establishes.
func (p *Protocol) CorrectRanking() bool {
	seen := make([]bool, p.n)
	for i := range p.agents {
		r := p.RankOutput(i)
		if r < 1 || int(r) > p.n || seen[r-1] {
			return false
		}
		seen[r-1] = true
	}
	return true
}

// Roles returns the number of agents per role.
func (p *Protocol) Roles() (resetting, rankingCount, verifying int) {
	for i := range p.agents {
		switch p.agents[i].Role {
		case RoleResetting:
			resetting++
		case RoleRanking:
			rankingCount++
		case RoleVerifying:
			verifying++
		}
	}
	return resetting, rankingCount, verifying
}

// AllVerifiers reports whether every agent is in the Verifying role.
func (p *Protocol) AllVerifiers() bool {
	for i := range p.agents {
		if p.agents[i].Role != RoleVerifying {
			return false
		}
	}
	return true
}

// AnyTop reports whether any verifier's collision detector is in ⊤.
func (p *Protocol) AnyTop() bool {
	for i := range p.agents {
		a := &p.agents[i]
		if a.Role == RoleVerifying && a.SV != nil && a.SV.DC != nil && a.SV.DC.Err {
			return true
		}
	}
	return false
}

// InSafeSet implements the checkable core of Lemma 6.1's safe set: all
// agents are verifiers with a correct ranking; the generations present span
// at most two adjacent values {i, i+1 (mod 6)}; every generation-i agent has
// probation timer 0; no collision detector is in ⊤; and, standing in for
// condition (b)'s reachability clause, each generation's message system is
// coherent (detect.CheckCoherence): every circulating message has one holder
// and matches its governor's observation, which together with the correct
// ranking implies no ⊤ can ever be raised again.
func (p *Protocol) InSafeSet() bool {
	if !p.AllVerifiers() || !p.CorrectRanking() || p.AnyTop() {
		return false
	}
	if !p.messagesCoherent() {
		return false
	}
	var gens [verify.Generations]bool
	distinct := 0
	for i := range p.agents {
		g := p.agents[i].SV.Generation % verify.Generations
		if !gens[g] {
			gens[g] = true
			distinct++
		}
	}
	switch distinct {
	case 1:
		return true
	case 2:
		// The two generations must be adjacent: find i with gens[i] and
		// gens[i+1]; all generation-i agents must be off probation.
		for g := 0; g < verify.Generations; g++ {
			next := (g + 1) % verify.Generations
			if !gens[g] || !gens[next] {
				continue
			}
			behind := uint8(g)
			ok := true
			for i := range p.agents {
				a := &p.agents[i]
				if a.SV.Generation%verify.Generations == behind && a.SV.Probation != 0 {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// messagesCoherent checks per-generation message coherence among verifiers
// (see InSafeSet). Cross-generation relations are irrelevant: agents of
// different generations never run DetectCollision_r together, and adopting
// the successor generation rebuilds the detection state from scratch.
func (p *Protocol) messagesCoherent() bool {
	buckets := make(map[uint8]int, verify.Generations)
	for i := range p.agents {
		buckets[p.agents[i].SV.Generation%verify.Generations]++
	}
	for gen := range buckets {
		ranks := make([]int32, 0, buckets[gen])
		states := make([]*detect.State, 0, buckets[gen])
		for i := range p.agents {
			a := &p.agents[i]
			if a.SV.Generation%verify.Generations == gen {
				ranks = append(ranks, a.Rank)
				states = append(states, a.SV.DC)
			}
		}
		if err := detect.CheckCoherence(p.vp.Detect, ranks, states); err != nil {
			return false
		}
	}
	return true
}

// Generations returns the set of generation values currently present among
// verifiers (empty when none).
func (p *Protocol) Generations() []uint8 {
	var present [verify.Generations]bool
	for i := range p.agents {
		a := &p.agents[i]
		if a.Role == RoleVerifying && a.SV != nil {
			present[a.SV.Generation%verify.Generations] = true
		}
	}
	out := make([]uint8, 0, verify.Generations)
	for g := uint8(0); g < verify.Generations; g++ {
		if present[g] {
			out = append(out, g)
		}
	}
	return out
}
