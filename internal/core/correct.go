// correct.go defines the output mapping and correctness predicates of
// ElectLeader_r, plus the checkable core of the safe-set predicate of
// Lemma 6.1.

package core

import (
	"sspp/internal/detect"
	"sspp/internal/verify"
)

// RankOutput returns agent i's current rank output: committed rank for
// verifiers, the AssignRanks_r belief for rankers (initialized to 1, per
// Appendix D), and the degenerate belief 1 for resetters.
func (p *Protocol) RankOutput(i int) int32 { return rankOutputOf(&p.agents[i]) }

// rankOutputOf is the identity-free output mapping shared by the agent
// backend (RankOutput) and the species-form compact model (compact.go).
func rankOutputOf(a *Agent) int32 {
	switch a.Role {
	case RoleVerifying:
		return a.Rank
	case RoleRanking:
		if a.AR != nil {
			return a.AR.Rank
		}
		return 1
	default:
		return 1
	}
}

// IsLeader reports whether agent i currently outputs "leader" (rank 1).
func (p *Protocol) IsLeader(i int) bool { return p.RankOutput(i) == 1 }

// Leaders returns the number of agents currently outputting "leader".
// O(1): maintained incrementally (counters.go).
func (p *Protocol) Leaders() int { return int(p.rankCount[0]) }

// LeaderIndex returns the index of the unique leader, or ok = false when the
// configuration does not have exactly one leader. O(1): the counters track
// the index sum of all rank-1 agents, which with exactly one leader is the
// leader itself.
func (p *Protocol) LeaderIndex() (int, bool) {
	if p.rankCount[0] != 1 {
		return 0, false
	}
	return p.leaderSum, true
}

// Correct reports whether exactly one agent outputs "leader" — the
// correctness predicate of self-stabilizing leader election. O(1).
func (p *Protocol) Correct() bool { return p.rankCount[0] == 1 }

// CorrectRanking reports whether the rank outputs form a permutation of
// [1, n] — the stronger ranking correctness the protocol actually
// establishes. O(1): with all n outputs in range and no rank held twice,
// the outputs are a permutation by pigeonhole.
func (p *Protocol) CorrectRanking() bool {
	return p.rankOOR == 0 && p.rankExcess == 0
}

// Roles returns the number of agents per role. O(1).
func (p *Protocol) Roles() (resetting, rankingCount, verifying int) {
	return p.roleCount[RoleResetting], p.roleCount[RoleRanking], p.roleCount[RoleVerifying]
}

// AllVerifiers reports whether every agent is in the Verifying role. O(1).
func (p *Protocol) AllVerifiers() bool {
	return p.roleCount[RoleVerifying] == p.n
}

// AnyTop reports whether any verifier's collision detector is in ⊤. O(1).
func (p *Protocol) AnyTop() bool { return p.topCount > 0 }

// InSafeSet implements the checkable core of Lemma 6.1's safe set: all
// agents are verifiers with a correct ranking; the generations present span
// at most two adjacent values {i, i+1 (mod 6)}; every generation-i agent has
// probation timer 0; no collision detector is in ⊤; and, standing in for
// condition (b)'s reachability clause, each generation's message system is
// coherent (detect.CheckCoherence): every circulating message has one holder
// and matches its governor's observation, which together with the correct
// ranking implies no ⊤ can ever be raised again.
func (p *Protocol) InSafeSet() bool {
	// Cheap gates, all O(1) from the incremental counters: during
	// stabilization the poll almost always fails here without touching any
	// agent state.
	if p.roleCount[RoleVerifying] != p.n || p.rankOOR != 0 || p.rankExcess != 0 || p.topCount > 0 {
		return false
	}
	distinct := 0
	for g := 0; g < verify.Generations; g++ {
		if p.genCount[g] > 0 {
			distinct++
		}
	}
	switch distinct {
	case 1:
	case 2:
		// The two generations must be adjacent: find g with both g and g+1
		// present; all generation-g (behind) agents must be off probation.
		ok := false
		for g := 0; g < verify.Generations; g++ {
			next := (g + 1) % verify.Generations
			if p.genCount[g] > 0 && p.genCount[next] > 0 && p.probCount[g] == 0 {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	default:
		return false
	}
	// Only a configuration that passed every cheap gate pays for the full
	// message-coherence walk.
	return p.messagesCoherent()
}

// messagesCoherent checks per-generation message coherence among verifiers
// (see InSafeSet). Cross-generation relations are irrelevant: agents of
// different generations never run DetectCollision_r together, and adopting
// the successor generation rebuilds the detection state from scratch. The
// check reuses scratch buffers held on the Protocol, so repeated polls do
// not allocate.
func (p *Protocol) messagesCoherent() bool {
	if p.coh == nil {
		p.coh = detect.NewCohScratch()
	}
	for gen := uint8(0); gen < verify.Generations; gen++ {
		if p.genCount[gen] == 0 {
			continue
		}
		p.cohRanks = p.cohRanks[:0]
		p.cohStates = p.cohStates[:0]
		for i := range p.agents {
			a := &p.agents[i]
			if a.SV.Generation%verify.Generations == gen {
				p.cohRanks = append(p.cohRanks, a.Rank)
				p.cohStates = append(p.cohStates, a.SV.DC)
			}
		}
		if !detect.Coherent(p.dyn.vp.Detect, p.cohRanks, p.cohStates, p.coh) {
			return false
		}
	}
	return true
}

// Generations returns the set of generation values currently present among
// verifiers (empty when none). O(1) up to building the result slice.
func (p *Protocol) Generations() []uint8 {
	out := make([]uint8, 0, verify.Generations)
	for g := uint8(0); g < verify.Generations; g++ {
		if p.genCount[g] > 0 {
			out = append(out, g)
		}
	}
	return out
}
