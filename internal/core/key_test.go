package core

import (
	"testing"

	"sspp/internal/rng"
	"sspp/internal/sim"
)

func TestAgentKeyDistinguishesRolesAndStates(t *testing.T) {
	p := mustNew(t, 8, 2, WithSeed(1))
	kRanker := string(p.AgentKey(0, nil))
	p.ForceVerifier(0, 3)
	kVerifier := string(p.AgentKey(0, nil))
	p.ForceTriggered(0)
	kResetter := string(p.AgentKey(0, nil))
	if kRanker == kVerifier || kVerifier == kResetter || kRanker == kResetter {
		t.Fatal("role changes must change the key")
	}
	p.ForceVerifier(0, 3)
	k1 := string(p.AgentKey(0, nil))
	p.SetProbation(0, 1)
	k2 := string(p.AgentKey(0, nil))
	if k1 == k2 {
		t.Fatal("probation tick must change the key")
	}
}

func TestAgentKeyEqualForEqualStates(t *testing.T) {
	p := mustNew(t, 8, 2, WithSeed(2))
	p.ForceVerifier(0, 3)
	p.ForceVerifier(1, 3) // identical q0,SV for the same rank
	a := string(p.AgentKey(0, nil))
	b := string(p.AgentKey(1, nil))
	if a != b {
		t.Fatal("identical states must produce identical keys")
	}
}

func TestAgentKeyStableAcrossCalls(t *testing.T) {
	p := mustNew(t, 8, 2, WithSeed(3))
	sim.Steps(p, rng.New(4), 500)
	for i := 0; i < 8; i++ {
		if string(p.AgentKey(i, nil)) != string(p.AgentKey(i, nil)) {
			t.Fatalf("agent %d key not deterministic", i)
		}
	}
}

func TestAgentKeyBufferReuse(t *testing.T) {
	p := mustNew(t, 8, 2, WithSeed(5))
	buf := make([]byte, 0, 64)
	a := string(p.AgentKey(0, buf))
	b := string(p.AgentKey(0, buf[:0]))
	if a != b {
		t.Fatal("buffer reuse changed the key")
	}
}
