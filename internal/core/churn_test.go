// churn_test.go covers ReplaceAgent, the replacement-churn primitive: a
// departed slot re-initialized as a fresh ranker must leave every
// incremental counter consistent, knock the configuration out of the safe
// set, and be recoverable by the ordinary protocol dynamics.

package core

import (
	"fmt"
	"testing"

	"sspp/internal/rng"
)

func TestReplaceAgentReinitializesSlot(t *testing.T) {
	const n, r = 24, 6
	p, err := New(n, r, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	sched := rng.New(7)
	stabilize := func(ctx string) {
		for step := 0; step < 400; step++ {
			for k := 0; k < 500; k++ {
				a, b := sched.Pair(n)
				p.Interact(a, b)
			}
			if p.InSafeSet() {
				return
			}
		}
		t.Fatalf("%s: no safe set within the budget", ctx)
	}
	stabilize("clean start")
	for _, i := range []int{0, n / 2, n - 1} {
		p.ReplaceAgent(i)
		checkCounters(t, p, fmt.Sprintf("after replacing agent %d", i))
	}
	// Replaced slots are fresh rankers, so an all-verifier safe configuration
	// cannot survive the replacement.
	if _, ranking, _ := p.Roles(); ranking < 3 {
		t.Fatalf("%d ranking agents after 3 replacements, want at least 3", ranking)
	}
	if p.InSafeSet() {
		t.Fatal("safe set survived the replacements")
	}
	stabilize("after replacement churn")
	checkCounters(t, p, "re-stabilized")
}
