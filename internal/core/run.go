// run.go provides safe-set-oriented execution helpers. Output correctness
// (exactly one leader) is reached as soon as AssignRanks_r finishes — well
// before the countdown moves agents into verification — so experiments that
// want the paper's stabilization notion (a configuration that remains
// correct forever, Lemma 6.1) run to the safe set instead.

package core

import (
	"sspp/internal/rng"
	"sspp/internal/sim"
)

// RunToSafeSet runs the protocol under the uniform scheduler drawn from rand
// until InSafeSet holds (polled every ⌈n/2⌉ interactions) or max
// interactions elapse. It returns the number of interactions performed and
// whether the safe set was reached. The returned count has the polling
// cadence as resolution.
func (p *Protocol) RunToSafeSet(rand *rng.PRNG, max uint64) (uint64, bool) {
	return p.RunToSafeSetSched(rand, max)
}

// RunToSafeSetSched is RunToSafeSet under an arbitrary scheduler (used by
// the scheduler-robustness extension T16).
func (p *Protocol) RunToSafeSetSched(sched sim.Scheduler, max uint64) (uint64, bool) {
	if p.InSafeSet() {
		return 0, true
	}
	cadence := uint64(p.n/2 + 1)
	var t uint64
	for t < max {
		limit := t + cadence
		if limit > max {
			limit = max
		}
		for t < limit {
			a, b := sched.Pair(p.n)
			p.Interact(a, b)
			t++
		}
		if p.InSafeSet() {
			return t, true
		}
	}
	return t, false
}

// RunToOutputStable runs until the output (exactly one leader) has held
// continuously for the given confirmation window, or max interactions
// elapse. It returns the interaction count at which the final correct
// stretch began and whether it was confirmed. This is the output-level
// stabilization measurement; RunToSafeSet is the configuration-level one.
func (p *Protocol) RunToOutputStable(rand *rng.PRNG, max, confirm uint64) (uint64, bool) {
	return p.RunToOutputStableSched(rand, max, confirm)
}

// RunToOutputStableSched is RunToOutputStable under an arbitrary scheduler.
func (p *Protocol) RunToOutputStableSched(sched sim.Scheduler, max, confirm uint64) (uint64, bool) {
	cadence := uint64(p.n/4 + 1)
	var t, stableSince uint64
	correct := p.Correct()
	for t < max {
		limit := t + cadence
		if limit > max {
			limit = max
		}
		for t < limit {
			a, b := sched.Pair(p.n)
			p.Interact(a, b)
			t++
		}
		now := p.Correct()
		if now && !correct {
			stableSince = t
		}
		correct = now
		if correct && t-stableSince >= confirm {
			return stableSince, true
		}
	}
	return 0, false
}
