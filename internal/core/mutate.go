// mutate.go provides type-valid configuration surgery for building the
// adversarial starting configurations of the recovery analysis (Lemma 6.3).
// Self-stabilization quantifies over all *type-valid* configurations — in
// particular the §5.1 restriction (an agent's own held messages match its
// observations) is part of the state space definition — so all mutators
// below preserve it.

package core

import (
	"sspp/internal/detect"
	"sspp/internal/reset"
	"sspp/internal/verify"
)

// ForceVerifier makes agent i a verifier committed to the given rank (valid
// values are clamped into [1, n]), with a fresh q0,SV built for that rank.
func (p *Protocol) ForceVerifier(i int, rank int32) {
	if rank < 1 {
		rank = 1
	}
	if int(rank) > p.n {
		rank = int32(p.n)
	}
	p.untrack(i)
	p.releaseAR(i)
	a := &p.agents[i]
	a.Role = RoleVerifying
	a.Rank = rank
	sv := a.SV // reuse the agent's own state in place when it has one
	if sv == nil {
		sv = p.popSV()
	}
	a.SV = verify.ReinitInto(p.dyn.vp, rank, sv)
	a.Countdown = 0
	a.Reset = reset.State{}
	p.track(i)
}

// ForceRanker makes agent i a fresh ranker (the Reset routine's output).
func (p *Protocol) ForceRanker(i int) {
	p.untrack(i)
	p.reinitRanker(i)
	p.track(i)
}

// ForceTriggered makes agent i a freshly triggered resetter (TriggerReset
// without the event-sink side effect, so adversarial setup does not pollute
// experiment counters).
func (p *Protocol) ForceTriggered(i int) {
	p.untrack(i)
	p.releaseAR(i)
	p.releaseSV(i)
	a := &p.agents[i]
	a.Role = RoleResetting
	a.Reset = reset.Triggered(p.dyn.consts.Reset)
	a.Rank = 0
	p.track(i)
}

// ForceDormant makes agent i a dormant resetter with the given remaining
// delay (clamped into [1, DMax]).
func (p *Protocol) ForceDormant(i int, delay int32) {
	if delay < 1 {
		delay = 1
	}
	if delay > p.dyn.consts.Reset.DMax {
		delay = p.dyn.consts.Reset.DMax
	}
	p.untrack(i)
	p.releaseAR(i)
	p.releaseSV(i)
	a := &p.agents[i]
	a.Role = RoleResetting
	a.Reset = reset.State{Count: 0, Delay: delay}
	a.Rank = 0
	p.track(i)
}

// SetGeneration sets a verifier's generation (mod 6); no-op for other roles.
func (p *Protocol) SetGeneration(i int, gen uint8) {
	a := &p.agents[i]
	if a.Role == RoleVerifying && a.SV != nil {
		p.untrack(i)
		a.SV.Generation = gen % verify.Generations
		p.track(i)
	}
}

// SetProbation sets a verifier's probation timer, clamped into [0, PMax];
// no-op for other roles.
func (p *Protocol) SetProbation(i int, v int32) {
	a := &p.agents[i]
	if a.Role != RoleVerifying || a.SV == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	if v > p.dyn.consts.PMax {
		v = p.dyn.consts.PMax
	}
	p.untrack(i)
	a.SV.Probation = v
	p.track(i)
}

// SetCountdown sets a ranker's countdown, clamped into [0, CountdownMax];
// no-op for other roles.
func (p *Protocol) SetCountdown(i int, v int32) {
	a := &p.agents[i]
	if a.Role != RoleRanking {
		return
	}
	if v < 0 {
		v = 0
	}
	if v > p.dyn.consts.CountdownMax {
		v = p.dyn.consts.CountdownMax
	}
	a.Countdown = v
}

// TamperMessages corrupts one circulating message held by verifier i that is
// governed by a foreign rank, preserving the §5.1 restriction. It reports
// whether a message was corrupted.
func (p *Protocol) TamperMessages(i int) bool {
	a := &p.agents[i]
	if a.Role != RoleVerifying || a.SV == nil || a.SV.DC == nil {
		return false
	}
	return detect.TamperForeignMessage(p.dyn.vp.Detect, a.Rank, a.SV.DC)
}

// DuplicateMessage copies a circulating message from verifier src into
// verifier dst (same rank group required), producing a two-holder message.
// It reports success.
func (p *Protocol) DuplicateMessage(src, dst int) bool {
	as, ad := &p.agents[src], &p.agents[dst]
	if as.Role != RoleVerifying || ad.Role != RoleVerifying || as.SV == nil || ad.SV == nil {
		return false
	}
	return detect.DuplicateMessageInto(p.dyn.vp.Detect, as.Rank, as.SV.DC, ad.Rank, ad.SV.DC)
}
