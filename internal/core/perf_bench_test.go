// perf_bench_test.go holds the hot-path micro-benchmarks that anchor the
// repo's performance trajectory (BENCH_*.json): steady-state Interact cost,
// the safe-set polling predicate, and end-to-end RunToSafeSet wall-clock at
// n ∈ {64, 256}. The Interact and InSafeSet targets must report 0 allocs/op
// in steady state — any regression shows up as a nonzero allocs/op column.
package core

import (
	"fmt"
	"testing"

	"sspp/internal/rng"
)

// BenchmarkInteractSteadyState measures one ElectLeader_r interaction on a
// stabilized (all-verifier) population under the uniform scheduler — the
// single hottest operation in the repository. Steady state must be
// allocation-free.
func BenchmarkInteractSteadyState(b *testing.B) {
	for _, bc := range []struct{ n, r int }{{64, 8}, {256, 64}} {
		b.Run(fmt.Sprintf("n=%d/r=%d", bc.n, bc.r), func(b *testing.B) {
			p, err := New(bc.n, bc.r, WithSeed(1))
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < bc.n; i++ {
				p.ForceVerifier(i, int32(i+1))
			}
			sched := rng.New(2)
			// Warm the scratch buffers and free lists before measuring.
			for i := 0; i < 4*bc.n; i++ {
				x, y := sched.Pair(bc.n)
				p.Interact(x, y)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x, y := sched.Pair(bc.n)
				p.Interact(x, y)
			}
		})
	}
}

// BenchmarkInSafeSetPoll measures the full safe-set predicate on a safe
// configuration — the poll RunToSafeSet executes every ⌈n/2⌉ interactions.
// It must be allocation-free.
func BenchmarkInSafeSetPoll(b *testing.B) {
	for _, bc := range []struct{ n, r int }{{64, 8}, {256, 64}} {
		b.Run(fmt.Sprintf("n=%d/r=%d", bc.n, bc.r), func(b *testing.B) {
			p, err := New(bc.n, bc.r, WithSeed(1))
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < bc.n; i++ {
				p.ForceVerifier(i, int32(i+1))
			}
			if !p.InSafeSet() {
				b.Fatal("configuration should be safe")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !p.InSafeSet() {
					b.Fatal("should be safe")
				}
			}
		})
	}
}

// BenchmarkInSafeSetPollUnsafe measures the predicate on a configuration that
// fails the cheap gates (a ranker present) — the common case during
// stabilization, which must short-circuit in O(1).
func BenchmarkInSafeSetPollUnsafe(b *testing.B) {
	const n, r = 256, 64
	p, err := New(n, r, WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p.InSafeSet() {
			b.Fatal("fresh rankers should not be safe")
		}
	}
}

// BenchmarkRunToSafeSet measures end-to-end stabilization wall-clock from a
// triggered configuration (Lemma 6.2's starting point) — the workload every
// experiment table is built from.
func BenchmarkRunToSafeSet(b *testing.B) {
	for _, bc := range []struct{ n, r int }{{64, 16}, {256, 64}} {
		b.Run(fmt.Sprintf("n=%d/r=%d", bc.n, bc.r), func(b *testing.B) {
			budget := 200 * uint64(bc.n) * uint64(bc.n)
			for i := 0; i < b.N; i++ {
				p, err := New(bc.n, bc.r, WithSeed(uint64(i)))
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < bc.n; j++ {
					p.ForceTriggered(j)
				}
				if _, ok := p.RunToSafeSet(rng.New(uint64(i)+13), budget); !ok {
					b.Fatalf("iteration %d: no stabilization within %d", i, budget)
				}
			}
		})
	}
}
