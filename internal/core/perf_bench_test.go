// perf_bench_test.go holds the hot-path micro-benchmarks that anchor the
// repo's performance trajectory (BENCH_*.json): steady-state Interact cost,
// the safe-set polling predicate, and end-to-end RunToSafeSet wall-clock at
// n ∈ {64, 256}. The Interact and InSafeSet targets must report 0 allocs/op
// in steady state — any regression shows up as a nonzero allocs/op column.
package core

import (
	"fmt"
	"testing"

	"sspp/internal/rng"
)

// BenchmarkInteractSteadyState measures one ElectLeader_r interaction on a
// stabilized (all-verifier) population under the uniform scheduler — the
// single hottest operation in the repository. Steady state must be
// allocation-free.
func BenchmarkInteractSteadyState(b *testing.B) {
	for _, bc := range []struct{ n, r int }{{64, 8}, {256, 64}} {
		b.Run(fmt.Sprintf("n=%d/r=%d", bc.n, bc.r), func(b *testing.B) {
			p, err := New(bc.n, bc.r, WithSeed(1))
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < bc.n; i++ {
				p.ForceVerifier(i, int32(i+1))
			}
			sched := rng.New(2)
			// Warm the scratch buffers and free lists before measuring.
			for i := 0; i < 4*bc.n; i++ {
				x, y := sched.Pair(bc.n)
				p.Interact(x, y)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x, y := sched.Pair(bc.n)
				p.Interact(x, y)
			}
		})
	}
}

// BenchmarkInSafeSetPoll measures the full safe-set predicate on a safe
// configuration — the poll RunToSafeSet executes every ⌈n/2⌉ interactions.
// It must be allocation-free.
func BenchmarkInSafeSetPoll(b *testing.B) {
	for _, bc := range []struct{ n, r int }{{64, 8}, {256, 64}} {
		b.Run(fmt.Sprintf("n=%d/r=%d", bc.n, bc.r), func(b *testing.B) {
			p, err := New(bc.n, bc.r, WithSeed(1))
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < bc.n; i++ {
				p.ForceVerifier(i, int32(i+1))
			}
			if !p.InSafeSet() {
				b.Fatal("configuration should be safe")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !p.InSafeSet() {
					b.Fatal("should be safe")
				}
			}
		})
	}
}

// TestInteractSteadyStateZeroAllocs pins the headline "0 allocs/op" claim as
// a hard test, not just a benchmark column someone has to read: a steady-state
// interaction on a stabilized population must not allocate. The hotpathalloc
// analyzer rejects the allocating constructs at compile time; this guard
// catches whatever slips past it (compiler escape-analysis regressions,
// allocations hidden behind non-annotated callees).
func TestInteractSteadyStateZeroAllocs(t *testing.T) {
	for _, tc := range []struct{ n, r int }{{64, 8}, {256, 64}} {
		t.Run(fmt.Sprintf("n=%d/r=%d", tc.n, tc.r), func(t *testing.T) {
			p, err := New(tc.n, tc.r, WithSeed(1))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < tc.n; i++ {
				p.ForceVerifier(i, int32(i+1))
			}
			sched := rng.New(2)
			// Warm the scratch buffers and free lists before measuring.
			for i := 0; i < 4*tc.n; i++ {
				x, y := sched.Pair(tc.n)
				p.Interact(x, y)
			}
			allocs := testing.AllocsPerRun(1000, func() {
				x, y := sched.Pair(tc.n)
				p.Interact(x, y)
			})
			if allocs != 0 {
				t.Fatalf("steady-state Interact allocated %.2f allocs/op, want 0", allocs)
			}
		})
	}
}

// TestInSafeSetPollZeroAllocs pins the other per-interaction-loop predicate:
// the safe-set poll RunToSafeSet executes every ⌈n/2⌉ interactions must not
// allocate on a safe configuration.
func TestInSafeSetPollZeroAllocs(t *testing.T) {
	for _, tc := range []struct{ n, r int }{{64, 8}, {256, 64}} {
		t.Run(fmt.Sprintf("n=%d/r=%d", tc.n, tc.r), func(t *testing.T) {
			p, err := New(tc.n, tc.r, WithSeed(1))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < tc.n; i++ {
				p.ForceVerifier(i, int32(i+1))
			}
			if !p.InSafeSet() {
				t.Fatal("configuration should be safe")
			}
			allocs := testing.AllocsPerRun(50, func() {
				if !p.InSafeSet() {
					t.Fatal("should be safe")
				}
			})
			if allocs != 0 {
				t.Fatalf("InSafeSet allocated %.2f allocs/op, want 0", allocs)
			}
		})
	}
}

// BenchmarkInSafeSetPollUnsafe measures the predicate on a configuration that
// fails the cheap gates (a ranker present) — the common case during
// stabilization, which must short-circuit in O(1).
func BenchmarkInSafeSetPollUnsafe(b *testing.B) {
	const n, r = 256, 64
	p, err := New(n, r, WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p.InSafeSet() {
			b.Fatal("fresh rankers should not be safe")
		}
	}
}

// BenchmarkRunToSafeSet measures end-to-end stabilization wall-clock from a
// triggered configuration (Lemma 6.2's starting point) — the workload every
// experiment table is built from.
func BenchmarkRunToSafeSet(b *testing.B) {
	for _, bc := range []struct{ n, r int }{{64, 16}, {256, 64}} {
		b.Run(fmt.Sprintf("n=%d/r=%d", bc.n, bc.r), func(b *testing.B) {
			budget := 200 * uint64(bc.n) * uint64(bc.n)
			for i := 0; i < b.N; i++ {
				p, err := New(bc.n, bc.r, WithSeed(uint64(i)))
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < bc.n; j++ {
					p.ForceTriggered(j)
				}
				if _, ok := p.RunToSafeSet(rng.New(uint64(i)+13), budget); !ok {
					b.Fatalf("iteration %d: no stabilization within %d", i, budget)
				}
			}
		})
	}
}
