// churn.go gives ElectLeader_r its churn story. The protocol is anonymous —
// no agent identity survives outside the slot index — so an agent leaving
// and a fresh agent arriving is indistinguishable from the departed agent's
// slot being re-initialized: replacement churn is exactly one slot reset
// with fresh randomness. Dynamic-n churn is NOT supported here: the detect
// partition and every constant are anchored at the build-time n, which is
// why the registry adapter declares equal churn bounds (replacement only).

package core

import "sspp/internal/coin"

// ReplaceAgent models an agent leaving slot i and a brand-new agent arriving
// in its place: the slot becomes a fresh ranker (the protocol's canonical
// clean join state, identical to an initial-configuration agent) with a
// newly seeded synthetic coin, as an arriving device would bring its own
// randomness.
func (p *Protocol) ReplaceAgent(i int) {
	p.untrack(i)
	a := &p.agents[i]
	a.Coin = coin.NewState(coin.WidthFor(int(p.dyn.consts.Ranking.IDSpace)), p.src.Uint64())
	if p.synthetic {
		p.samplers[i] = a.Coin.Sample
	}
	p.reinitRanker(i)
	p.track(i)
}
