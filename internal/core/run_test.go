// run_test.go covers the execution helpers of run.go, in particular the
// RunToOutputStable edge cases: an already-stable start, a confirmation
// window landing exactly on the interaction budget, and a window larger than
// the budget (unconfirmable by construction).
package core

import (
	"testing"

	"sspp/internal/rng"
)

// newStableProtocol returns a protocol in a safe configuration (identity
// ranking, all verifiers): output-correct now and forever.
func newStableProtocol(t *testing.T, n, r int) *Protocol {
	t.Helper()
	p, err := New(n, r, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		p.ForceVerifier(i, int32(i+1))
	}
	if !p.Correct() {
		t.Fatal("forced identity ranking should be output-correct")
	}
	return p
}

// TestRunToOutputStableAlreadyStable starts from a correct configuration:
// the final correct stretch begins at interaction 0.
func TestRunToOutputStableAlreadyStable(t *testing.T) {
	const n, r = 16, 4
	p := newStableProtocol(t, n, r)
	at, ok := p.RunToOutputStable(rng.New(2), 10_000, 500)
	if !ok {
		t.Fatal("stable start not confirmed")
	}
	if at != 0 {
		t.Fatalf("stableSince = %d, want 0 for an already-stable start", at)
	}
}

// TestRunToOutputStableExactBudgetBoundary confirms the window exactly when
// the budget is consumed: with correctness holding from interaction 0,
// max == confirm must succeed and max == confirm-1 must fail.
func TestRunToOutputStableExactBudgetBoundary(t *testing.T) {
	const n, r = 16, 4
	const confirm = 1024
	at, ok := newStableProtocol(t, n, r).RunToOutputStable(rng.New(3), confirm, confirm)
	if !ok {
		t.Fatalf("confirmation window ending exactly at the budget must succeed")
	}
	if at != 0 {
		t.Fatalf("stableSince = %d, want 0", at)
	}
	if _, ok := newStableProtocol(t, n, r).RunToOutputStable(rng.New(3), confirm-1, confirm); ok {
		t.Fatal("budget one short of the confirmation window must fail")
	}
}

// TestRunToOutputStableMaxBelowConfirm can never confirm: the window exceeds
// the whole budget, whatever the configuration does.
func TestRunToOutputStableMaxBelowConfirm(t *testing.T) {
	const n, r = 16, 4
	p := newStableProtocol(t, n, r)
	at, ok := p.RunToOutputStable(rng.New(4), 100, 10_000)
	if ok {
		t.Fatal("max < confirm must never confirm")
	}
	if at != 0 {
		t.Fatalf("unconfirmed run returned stableSince = %d, want 0", at)
	}
}

// TestRunToOutputStableFromTriggered exercises the normal path: from a
// triggered configuration the output stabilizes strictly after interaction 0
// and within the Theorem 1.1 budget.
func TestRunToOutputStableFromTriggered(t *testing.T) {
	const n, r = 16, 4
	p, err := New(n, r, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		p.ForceTriggered(i)
	}
	at, ok := p.RunToOutputStable(rng.New(6), 4_000_000, uint64(20*n))
	if !ok {
		t.Fatal("no output stabilization from a triggered configuration")
	}
	if at == 0 {
		t.Fatal("a triggered start cannot be output-correct at interaction 0")
	}
}

// TestRunToSafeSetAlreadySafe checks the zero-interaction fast path.
func TestRunToSafeSetAlreadySafe(t *testing.T) {
	const n, r = 16, 4
	p := newStableProtocol(t, n, r)
	took, ok := p.RunToSafeSet(rng.New(7), 1000)
	if !ok || took != 0 {
		t.Fatalf("RunToSafeSet from a safe configuration = (%d, %v), want (0, true)", took, ok)
	}
}
