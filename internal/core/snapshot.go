// snapshot.go implements the Snapshotter capability: a point-in-time export
// of the population composition and the cumulative event counters, consumed
// by the public Observe hook and the tracing tools built on it.

package core

import (
	"sspp/internal/sim"
	"sspp/internal/verify"
)

// Protocol implements the full capability set of the run engine.
var (
	_ sim.Ranker      = (*Protocol)(nil)
	_ sim.SafeSetter  = (*Protocol)(nil)
	_ sim.Snapshotter = (*Protocol)(nil)
	_ sim.Clocked     = (*Protocol)(nil)
)

// SnapshotInto fills s with the current population composition: role
// counts, leader count, cumulative reset/top events and the safe-set flag.
// Interactions is left to the caller (the engine pre-fills it).
func (p *Protocol) SnapshotInto(s *sim.Snapshot) {
	s.Resetting, s.Ranking, s.Verifying = p.Roles()
	s.Leaders = p.Leaders()
	s.HardResets = p.dyn.events.Count(EventHardReset)
	s.SoftResets = p.dyn.events.Count(verify.EventSoftReset)
	s.Tops = p.dyn.events.Count(verify.EventTop)
	s.InSafeSet = p.InSafeSet()
}
