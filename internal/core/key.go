// key.go provides a canonical binary encoding of full agent states, used by
// the observed-state-space experiment (T15): counting distinct keys over a
// run measures how much of the 2^O(r²·log n) theoretical state space a real
// execution actually visits.

package core

// AgentKey appends a canonical encoding of agent i's full state to b and
// returns the extended slice. Two agents (or one agent at two times) with
// equal keys are in the identical protocol state, including every timer,
// message and observation.
func (p *Protocol) AgentKey(i int, b []byte) []byte {
	a := &p.agents[i]
	b = append(b, byte(a.Role))
	switch a.Role {
	case RoleResetting:
		b = append(b, byte(a.Reset.Count), byte(a.Reset.Count>>8),
			byte(a.Reset.Delay), byte(a.Reset.Delay>>8))
	case RoleRanking:
		b = append(b, byte(a.Countdown), byte(a.Countdown>>8), byte(a.Countdown>>16))
		if a.AR != nil {
			b = a.AR.AppendKey(b)
		}
	case RoleVerifying:
		b = append(b, byte(a.Rank), byte(a.Rank>>8))
		if a.SV != nil {
			b = append(b, a.SV.Generation,
				byte(a.SV.Probation), byte(a.SV.Probation>>8), byte(a.SV.Probation>>16))
			if a.SV.DC != nil {
				b = a.SV.DC.AppendKey(b)
			}
		}
	}
	return b
}
