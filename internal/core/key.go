// key.go provides a canonical binary encoding of full agent states, used by
// the observed-state-space experiment (T15): counting distinct keys over a
// run measures how much of the 2^O(r²·log n) theoretical state space a real
// execution actually visits — and by the species-backend compact model
// (compact.go), whose intern table maps each canonical encoding to one
// counted species. The encoding is therefore collision-critical: every
// timer and rank is written at full width (Rank and Countdown exceed 2¹⁶
// well before the n = 10⁶ populations the species backend targets), and a
// presence byte separates a nil sub-state from a zero-valued one.

package core

// appendI32 appends v as 4 little-endian bytes.
func appendI32(b []byte, v int32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// AgentKey appends a canonical encoding of agent i's full state to b and
// returns the extended slice. Two agents (or one agent at two times) with
// equal keys are in the identical protocol state, including every timer,
// message and observation. The synthetic per-agent coin (Appendix B) is
// deliberately excluded: the real-randomness dynamics never read it, and
// the compact model refuses synthetic instances outright.
func (p *Protocol) AgentKey(i int, b []byte) []byte {
	return appendAgentKey(b, &p.agents[i])
}

// appendAgentKey is AgentKey over a bare agent, detached from any Protocol:
// the compact model encodes scratch agents that belong to no population.
func appendAgentKey(b []byte, a *Agent) []byte {
	b = append(b, byte(a.Role))
	switch a.Role {
	case RoleResetting:
		b = appendI32(b, a.Reset.Count)
		b = appendI32(b, a.Reset.Delay)
	case RoleRanking:
		b = appendI32(b, a.Countdown)
		if a.AR == nil {
			b = append(b, 0)
		} else {
			b = append(b, 1)
			b = a.AR.AppendKey(b)
		}
	case RoleVerifying:
		b = appendI32(b, a.Rank)
		if a.SV == nil {
			b = append(b, 0)
		} else {
			b = append(b, 1, a.SV.Generation)
			b = appendI32(b, a.SV.Probation)
			if a.SV.DC == nil {
				b = append(b, 0)
			} else {
				b = append(b, 1)
				b = a.SV.DC.AppendKey(b)
			}
		}
	}
	return b
}
