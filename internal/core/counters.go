// counters.go maintains the incremental predicate counters of Protocol.
// Every mutation of an agent's observable summary — its role, rank output,
// generation, probation flag, and ⊤ flag — happens inside Interact or one of
// the Force*/Set* mutators, and each of those paths brackets the mutation
// with untrack/track on the touched agents. The counters therefore stay
// exact at all times, which is what makes Leaders, Correct, CorrectRanking,
// Roles, AllVerifiers, AnyTop and the cheap gates of InSafeSet O(1).

package core

import (
	"sspp/internal/ranking"
	"sspp/internal/verify"
)

// untrack removes agent i's current summary from the counters. It must be
// called before any mutation of agent i and paired with a track call after.
func (p *Protocol) untrack(i int) {
	a := &p.agents[i]
	p.roleCount[a.Role]--
	if a.Role == RoleVerifying && a.SV != nil {
		g := a.SV.Generation % verify.Generations
		p.genCount[g]--
		if a.SV.Probation != 0 {
			p.probCount[g]--
		}
		if a.SV.DC != nil && a.SV.DC.Err {
			p.topCount--
		}
	}
	rank := p.RankOutput(i)
	if rank < 1 || int(rank) > p.n {
		p.rankOOR--
		return
	}
	c := p.rankCount[rank-1]
	p.rankCount[rank-1] = c - 1
	if c >= 2 {
		p.rankExcess--
	}
	if rank == 1 {
		p.leaderSum -= i
	}
}

// track adds agent i's current summary to the counters.
func (p *Protocol) track(i int) {
	a := &p.agents[i]
	p.roleCount[a.Role]++
	if a.Role == RoleVerifying && a.SV != nil {
		g := a.SV.Generation % verify.Generations
		p.genCount[g]++
		if a.SV.Probation != 0 {
			p.probCount[g]++
		}
		if a.SV.DC != nil && a.SV.DC.Err {
			p.topCount++
		}
	}
	rank := p.RankOutput(i)
	if rank < 1 || int(rank) > p.n {
		p.rankOOR++
		return
	}
	c := p.rankCount[rank-1]
	p.rankCount[rank-1] = c + 1
	if c >= 1 {
		p.rankExcess++
	}
	if rank == 1 {
		p.leaderSum += i
	}
}

// recount rebuilds every counter from scratch. New uses it once after
// constructing the initial configuration; tests use it to cross-check the
// incremental bookkeeping against the ground truth.
func (p *Protocol) recount() {
	p.roleCount = [3]int{}
	p.genCount = [verify.Generations]int{}
	p.probCount = [verify.Generations]int{}
	p.topCount = 0
	for i := range p.rankCount {
		p.rankCount[i] = 0
	}
	p.rankExcess = 0
	p.rankOOR = 0
	p.leaderSum = 0
	for i := range p.agents {
		p.track(i)
	}
}

// counterSnapshot captures every incremental counter, for the bookkeeping
// cross-check tests.
type counterSnapshot struct {
	roleCount  [3]int
	genCount   [verify.Generations]int
	probCount  [verify.Generations]int
	topCount   int
	rankCount  []int32
	rankExcess int
	rankOOR    int
	leaderSum  int
}

// snapshotCounters returns a deep copy of the current counters.
func (p *Protocol) snapshotCounters() counterSnapshot {
	return counterSnapshot{
		roleCount:  p.roleCount,
		genCount:   p.genCount,
		probCount:  p.probCount,
		topCount:   p.topCount,
		rankCount:  append([]int32(nil), p.rankCount...),
		rankExcess: p.rankExcess,
		rankOOR:    p.rankOOR,
		leaderSum:  p.leaderSum,
	}
}

// releaseAR returns agent i's ranker state to the free list (dynamics.go).
func (p *Protocol) releaseAR(i int) { p.dyn.releaseAR(&p.agents[i]) }

// releaseSV returns agent i's verifier state to the free list (dynamics.go).
func (p *Protocol) releaseSV(i int) { p.dyn.releaseSV(&p.agents[i]) }

// popAR pops a recycled ranker state, or nil when the free list is empty.
func (p *Protocol) popAR() *ranking.State { return p.dyn.popAR() }

// popSV pops a recycled verifier state, or nil when the free list is empty.
func (p *Protocol) popSV() *verify.State { return p.dyn.popSV() }
