package core

import (
	"math"
	"testing"

	"sspp/internal/rng"
	"sspp/internal/sim"
	"sspp/internal/verify"
)

// stabilizationBound returns a generous interaction budget for (n, r):
// a large constant times the Theorem 1.1 bound (n²/r)·log n.
func stabilizationBound(n, r int) uint64 {
	return uint64(600 * float64(n*n) / float64(r) * math.Log(float64(n)+1))
}

func mustNew(t *testing.T, n, r int, opts ...Option) *Protocol {
	t.Helper()
	p, err := New(n, r, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(32, 20); err == nil {
		t.Fatal("r > n/2 must fail")
	}
	if _, err := New(1, 1); err == nil {
		t.Fatal("n < 2 must fail")
	}
	bad := DefaultConstants(32, 4)
	bad.CountdownMax = 0
	if _, err := New(32, 4, WithConstants(bad)); err == nil {
		t.Fatal("zero countdown must fail")
	}
	mismatched := DefaultConstants(16, 4)
	if _, err := New(32, 4, WithConstants(mismatched)); err == nil {
		t.Fatal("constants for wrong n must fail")
	}
}

func TestInitialConfiguration(t *testing.T) {
	p := mustNew(t, 16, 4)
	resetting, rankers, verifiers := p.Roles()
	if resetting != 0 || verifiers != 0 || rankers != 16 {
		t.Fatalf("roles = %d/%d/%d, want all rankers", resetting, rankers, verifiers)
	}
	// All rankers believe rank 1, so all are leaders: incorrect output.
	if p.Correct() {
		t.Fatal("fresh configuration cannot be correct")
	}
	if p.Leaders() != 16 {
		t.Fatalf("Leaders = %d, want 16 (everyone believes rank 1)", p.Leaders())
	}
}

func TestRoleString(t *testing.T) {
	for r, want := range map[Role]string{
		RoleRanking:   "ranking",
		RoleResetting: "resetting",
		RoleVerifying: "verifying",
		Role(9):       "role(9)",
	} {
		if r.String() != want {
			t.Errorf("Role(%d).String() = %q, want %q", r, r.String(), want)
		}
	}
}

// TestStabilizeFromCleanStart: from the all-fresh-rankers configuration the
// protocol reaches a safe configuration with a correct ranking (the Lemma
// 6.2 path), across (n, r) and seeds.
func TestStabilizeFromCleanStart(t *testing.T) {
	cases := []struct{ n, r int }{{16, 1}, {16, 4}, {16, 8}, {32, 4}, {32, 16}}
	for _, c := range cases {
		for seed := uint64(0); seed < 2; seed++ {
			ev := sim.NewEvents()
			p := mustNew(t, c.n, c.r, WithSeed(seed), WithEvents(ev))
			took, ok := p.RunToSafeSet(rng.New(seed+500), stabilizationBound(c.n, c.r))
			if !ok {
				resetting, rankers, verifiers := p.Roles()
				t.Fatalf("n=%d r=%d seed=%d: no safe set after %d interactions "+
					"(roles %d/%d/%d, leaders %d, events %s)",
					c.n, c.r, seed, took, resetting, rankers, verifiers, p.Leaders(), ev)
			}
			if !p.CorrectRanking() || !p.Correct() {
				t.Fatalf("n=%d r=%d seed=%d: safe set without correct output", c.n, c.r, seed)
			}
		}
	}
}

// TestStabilizeFromTriggered is Lemma 6.2 proper: from a fully triggered
// configuration, the protocol hard-resets through dormancy and then ranks
// correctly.
func TestStabilizeFromTriggered(t *testing.T) {
	const n, r = 16, 4
	for seed := uint64(0); seed < 3; seed++ {
		p := mustNew(t, n, r, WithSeed(seed))
		for i := 0; i < n; i++ {
			p.ForceTriggered(i)
		}
		took, ok := p.RunToSafeSet(rng.New(seed+900), stabilizationBound(n, r))
		if !ok {
			t.Fatalf("seed %d: no safe set from triggered config after %d interactions", seed, took)
		}
	}
}

// TestClosure: once in the safe set, the configuration stays correct
// (Lemma 6.1) — no resets, no rank changes, over a long follow-up run.
func TestClosure(t *testing.T) {
	const n, r = 16, 4
	ev := sim.NewEvents()
	p := mustNew(t, n, r, WithSeed(11), WithEvents(ev))
	if _, ok := p.RunToSafeSet(rng.New(42), stabilizationBound(n, r)); !ok {
		t.Fatal("setup failed to reach the safe set")
	}
	ranksBefore := make([]int32, n)
	for i := 0; i < n; i++ {
		ranksBefore[i] = p.RankOutput(i)
	}
	hardBefore := ev.Count(EventHardReset)
	sim.Steps(p, rng.New(43), 400_000)
	if !p.Correct() || !p.CorrectRanking() {
		t.Fatal("closure violated: configuration left correctness")
	}
	for i := 0; i < n; i++ {
		if p.RankOutput(i) != ranksBefore[i] {
			t.Fatalf("agent %d changed rank %d -> %d after stabilization",
				i, ranksBefore[i], p.RankOutput(i))
		}
	}
	if ev.Count(EventHardReset) != hardBefore {
		t.Fatalf("hard reset after stabilization (%d -> %d)", hardBefore, ev.Count(EventHardReset))
	}
}

// TestRecoveryFromDuplicateRanks is the heart of self-stabilization
// (Lemma F.6 path): verifiers with duplicate ranks and expired probation
// timers must detect, escalate to a hard reset, and re-stabilize.
func TestRecoveryFromDuplicateRanks(t *testing.T) {
	const n, r = 16, 4
	for seed := uint64(0); seed < 3; seed++ {
		ev := sim.NewEvents()
		p := mustNew(t, n, r, WithSeed(seed), WithEvents(ev))
		for i := 0; i < n; i++ {
			rank := int32(i + 1)
			if i == 1 {
				rank = 1 // duplicate leader rank
			}
			p.ForceVerifier(i, rank)
			p.SetProbation(i, 0)
		}
		if p.Correct() {
			t.Fatal("setup: duplicate rank 1 should mean two leaders")
		}
		took, ok := p.RunToSafeSet(rng.New(seed+33), stabilizationBound(n, r))
		if !ok {
			t.Fatalf("seed %d: no recovery from duplicate ranks after %d interactions (events %s)",
				seed, took, ev)
		}
		if ev.Count(EventHardReset) == 0 {
			t.Fatalf("seed %d: recovery without a hard reset is impossible here", seed)
		}
	}
}

// TestSoftResetPreservesRanking is the §3.2 guarantee (experiment T9): a
// correct ranking with corrupted circulating messages and expired probation
// must repair itself via soft resets only, never changing any rank.
func TestSoftResetPreservesRanking(t *testing.T) {
	const n, r = 12, 6
	for seed := uint64(0); seed < 3; seed++ {
		ev := sim.NewEvents()
		p := mustNew(t, n, r, WithSeed(seed), WithEvents(ev))
		for i := 0; i < n; i++ {
			p.ForceVerifier(i, int32(i+1))
			p.SetProbation(i, 0)
		}
		if !p.TamperMessages(0) || !p.TamperMessages(5) {
			t.Fatal("tamper failed")
		}
		ranksBefore := make([]int32, n)
		for i := 0; i < n; i++ {
			ranksBefore[i] = p.RankOutput(i)
		}
		sim.Steps(p, rng.New(seed+77), 3_000_000)
		if got := ev.Count(EventHardReset); got != 0 {
			t.Fatalf("seed %d: %d hard resets on a correct ranking", seed, got)
		}
		if ev.Count(verify.EventSoftReset) == 0 {
			t.Fatalf("seed %d: corruption never soft-reset", seed)
		}
		for i := 0; i < n; i++ {
			if p.RankOutput(i) != ranksBefore[i] {
				t.Fatalf("seed %d: rank of agent %d changed", seed, i)
			}
		}
		if !p.InSafeSet() {
			t.Fatalf("seed %d: not back in safe set (gens %v, top %v)",
				seed, p.Generations(), p.AnyTop())
		}
	}
}

// TestRecoveryFromMixedGenerations exercises the ℰ₂→ℰ₃ ladder step
// (Lemma F.4): verifiers with scattered generations either equalize or
// hard-reset, and then stabilize.
func TestRecoveryFromMixedGenerations(t *testing.T) {
	const n, r = 16, 4
	p := mustNew(t, n, r, WithSeed(5))
	for i := 0; i < n; i++ {
		p.ForceVerifier(i, int32(i+1))
		p.SetGeneration(i, uint8(i%4)) // generations 0..3: gaps force resets
		p.SetProbation(i, 0)
	}
	took, ok := p.RunToSafeSet(rng.New(8), stabilizationBound(n, r))
	if !ok {
		t.Fatalf("no recovery from mixed generations after %d interactions (gens %v)",
			took, p.Generations())
	}
}

// TestRecoveryFromGarbageRanks: all verifiers share rank 1 (no-leader dual:
// n leaders). Detection within groups must reset and recover.
func TestRecoveryFromGarbageRanks(t *testing.T) {
	const n, r = 16, 4
	p := mustNew(t, n, r, WithSeed(6))
	for i := 0; i < n; i++ {
		p.ForceVerifier(i, 1)
		p.SetProbation(i, 0)
	}
	took, ok := p.RunToSafeSet(rng.New(9), stabilizationBound(n, r))
	if !ok {
		t.Fatalf("no recovery from all-rank-1 after %d interactions", took)
	}
}

// TestSyntheticCoinMode: the derandomized protocol (Appendix B) stabilizes
// too.
func TestSyntheticCoinMode(t *testing.T) {
	const n, r = 16, 4
	p := mustNew(t, n, r, WithSeed(7), WithSyntheticCoins())
	took, ok := p.RunToSafeSet(rng.New(10), stabilizationBound(n, r))
	if !ok {
		t.Fatalf("synthetic-coin mode failed to stabilize after %d interactions", took)
	}
}

func TestAccessors(t *testing.T) {
	p := mustNew(t, 8, 2, WithSeed(1))
	if p.N() != 8 || p.R() != 2 {
		t.Fatal("N/R accessors broken")
	}
	if p.Clock() != 0 {
		t.Fatal("fresh clock must be 0")
	}
	p.Interact(0, 1)
	if p.Clock() != 1 {
		t.Fatal("clock must tick")
	}
	if p.Agent(0) == nil {
		t.Fatal("Agent accessor broken")
	}
	if p.Constants().CountdownMax <= 0 {
		t.Fatal("Constants accessor broken")
	}
	if p.VerifyParams().PMax <= 0 {
		t.Fatal("VerifyParams accessor broken")
	}
	if p.Events() != nil {
		t.Fatal("events should be nil unless attached")
	}
	if got := len(p.Generations()); got != 0 {
		t.Fatalf("no verifiers yet: generations = %d", got)
	}
}

func TestMutatorsClamp(t *testing.T) {
	p := mustNew(t, 8, 2)
	p.ForceVerifier(0, -5)
	if p.Agent(0).Rank != 1 {
		t.Fatal("rank must clamp to 1")
	}
	p.ForceVerifier(0, 100)
	if p.Agent(0).Rank != 8 {
		t.Fatal("rank must clamp to n")
	}
	p.SetProbation(0, -1)
	if p.Agent(0).SV.Probation != 0 {
		t.Fatal("probation must clamp to 0")
	}
	p.SetProbation(0, 1<<30)
	if p.Agent(0).SV.Probation != p.Constants().PMax {
		t.Fatal("probation must clamp to PMax")
	}
	p.ForceDormant(1, -3)
	if p.Agent(1).Reset.Delay != 1 {
		t.Fatal("dormant delay must clamp to 1")
	}
	p.SetCountdown(1, 5) // agent 1 is a resetter: no-op
	if p.Agent(1).Role != RoleResetting {
		t.Fatal("SetCountdown must not change roles")
	}
	// Mutators on wrong roles are no-ops.
	p.SetGeneration(1, 3)
	if p.TamperMessages(1) {
		t.Fatal("tampering a non-verifier must fail")
	}
}

func TestInSafeSetConditions(t *testing.T) {
	p := mustNew(t, 8, 2)
	if p.InSafeSet() {
		t.Fatal("rankers are never safe")
	}
	for i := 0; i < 8; i++ {
		p.ForceVerifier(i, int32(i+1))
	}
	if !p.InSafeSet() {
		t.Fatal("correct single-generation verifiers must be safe")
	}
	// Two adjacent generations: safe only if the older one is off probation.
	p.SetGeneration(0, 1)
	if p.InSafeSet() {
		t.Fatal("gen-0 agents on probation: not safe")
	}
	for i := 1; i < 8; i++ {
		p.SetProbation(i, 0)
	}
	if !p.InSafeSet() {
		t.Fatal("adjacent generations with behind-off-probation must be safe")
	}
	// A generation gap of 2 is never safe.
	p.SetGeneration(0, 2)
	if p.InSafeSet() {
		t.Fatal("generation gap 2: not safe")
	}
	// Duplicate rank is never safe.
	p.SetGeneration(0, 0)
	p.ForceVerifier(0, 2)
	if p.InSafeSet() {
		t.Fatal("duplicate ranks: not safe")
	}
}

func TestStateSpaceFormulas(t *testing.T) {
	// Monotonicity in r at fixed n (more deputies, more states).
	if ElectLeaderBits(256, 64) <= ElectLeaderBits(256, 4) {
		t.Fatal("state bits must grow with r")
	}
	// The r = Θ(n) regime must beat Burman et al.'s super-polynomial bits.
	if ElectLeaderBits(1024, 512) >= BurmanBits(1024) {
		t.Fatal("trade-off should beat the Burman et al. bound shape")
	}
	// Sub-exponential regime: with r = log² n the bit complexity grows
	// polylogarithmically in n, so doubling n must grow the bits by far
	// less than 2× (whereas exponential-state protocols double exactly).
	bitsAt := func(n float64) float64 {
		return ElectLeaderBits(n, math.Pow(math.Log2(n), 2))
	}
	if ratio := bitsAt(2048) / bitsAt(1024); ratio >= 1.8 {
		t.Fatalf("r=log²n bit growth ratio = %.3f, want sub-exponential (< 1.8)", ratio)
	}
	if ratio := BurmanSublinearBits(2048, 1) / BurmanSublinearBits(1024, 1); ratio < 1.99 {
		t.Fatalf("H=1 baseline should double: ratio %.3f", ratio)
	}
	if CaiIzumiWadaBits(1024) != 10 {
		t.Fatalf("CIW bits = %v, want 10", CaiIzumiWadaBits(1024))
	}
	if GasieniecBits(1024) <= 10 || GasieniecBits(1024) > 11 {
		t.Fatalf("Gasieniec bits = %v, want slightly above 10", GasieniecBits(1024))
	}
	if BurmanSublinearBits(1024, 1) <= 1024 {
		t.Fatal("Sublinear-Time-SSR with H=1 needs 2^Θ(n) states")
	}
	if DetectBits(0) != 0 {
		t.Fatal("DetectBits(0) must be 0")
	}
	if lg(0.5) != 0 {
		t.Fatal("lg must clamp below 1")
	}
	if !math.IsInf(log2SumExp2(), -1) {
		t.Fatal("empty log2SumExp2 must be -inf")
	}
}
