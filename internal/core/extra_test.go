package core

import (
	"testing"

	"sspp/internal/rng"
)

func TestRunToOutputStable(t *testing.T) {
	p := mustNew(t, 16, 8, WithSeed(31))
	at, ok := p.RunToOutputStable(rng.New(32), stabilizationBound(16, 8), 200)
	if !ok {
		t.Fatal("output never stabilized")
	}
	if !p.Correct() {
		t.Fatal("reported stable but incorrect")
	}
	if at == 0 {
		t.Fatal("fresh rankers cannot be correct at t=0")
	}
}

func TestRunToOutputStableBudgetExhausted(t *testing.T) {
	p := mustNew(t, 16, 8, WithSeed(33))
	if _, ok := p.RunToOutputStable(rng.New(34), 100, 1_000_000); ok {
		t.Fatal("cannot confirm a window longer than the budget")
	}
}

func TestRunToSafeSetImmediate(t *testing.T) {
	p := mustNew(t, 8, 2)
	for i := 0; i < 8; i++ {
		p.ForceVerifier(i, int32(i+1))
	}
	took, ok := p.RunToSafeSet(rng.New(1), 100)
	if !ok || took != 0 {
		t.Fatalf("already-safe config: took=%d ok=%v", took, ok)
	}
}

func TestRunToSafeSetBudgetExhausted(t *testing.T) {
	p := mustNew(t, 16, 4, WithSeed(35))
	took, ok := p.RunToSafeSet(rng.New(36), 50)
	if ok {
		t.Fatal("50 interactions cannot suffice")
	}
	if took != 50 {
		t.Fatalf("took = %d, want 50", took)
	}
}

func TestMessagesCoherentDetectsTamper(t *testing.T) {
	p := mustNew(t, 12, 6)
	for i := 0; i < 12; i++ {
		p.ForceVerifier(i, int32(i+1))
	}
	if !p.InSafeSet() {
		t.Fatal("clean verifiers must be safe")
	}
	if !p.TamperMessages(3) {
		t.Fatal("tamper failed")
	}
	if p.InSafeSet() {
		t.Fatal("tampered messages must leave the safe set (coherence check)")
	}
}

func TestDuplicateMessageLeavesSafeSet(t *testing.T) {
	p := mustNew(t, 12, 6)
	for i := 0; i < 12; i++ {
		p.ForceVerifier(i, int32(i+1))
	}
	if !p.DuplicateMessage(0, 2) {
		t.Fatal("duplication failed")
	}
	if p.InSafeSet() {
		t.Fatal("duplicated message must leave the safe set")
	}
}

func TestDuplicateMessageWrongRoles(t *testing.T) {
	p := mustNew(t, 12, 6)
	if p.DuplicateMessage(0, 1) {
		t.Fatal("duplication between rankers must fail")
	}
}

func TestAblationConstantsWiredThrough(t *testing.T) {
	consts := DefaultConstants(12, 6)
	consts.DisableSoftReset = true
	consts.DisableLoadBalance = true
	p, err := New(12, 6, WithConstants(consts))
	if err != nil {
		t.Fatal(err)
	}
	if !p.VerifyParams().HardOnly {
		t.Fatal("HardOnly not wired through")
	}
}

func TestGenerationsAccessor(t *testing.T) {
	p := mustNew(t, 8, 2)
	for i := 0; i < 8; i++ {
		p.ForceVerifier(i, int32(i+1))
	}
	p.SetGeneration(0, 3)
	gens := p.Generations()
	if len(gens) != 2 || gens[0] != 0 || gens[1] != 3 {
		t.Fatalf("Generations = %v, want [0 3]", gens)
	}
}

func TestVerifyBitsAndRankingBits(t *testing.T) {
	if VerifyBits(256, 16) <= DetectBits(16) {
		t.Fatal("verify bits must exceed its detect component")
	}
	if RankingBits(256, 16) <= RankingBits(256, 1) {
		t.Fatal("ranking bits must grow with r")
	}
	if RankingBits(256, 0.5) != RankingBits(256, 1) {
		t.Fatal("r below 1 must clamp")
	}
	if ElectLeaderBits(256, 0) != ElectLeaderBits(256, 1) {
		t.Fatal("ElectLeaderBits must clamp r")
	}
}

func TestEventsAttached(t *testing.T) {
	ev := mustNew(t, 8, 2).Events()
	if ev != nil {
		t.Fatal("nil expected without WithEvents")
	}
}
