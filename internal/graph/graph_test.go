package graph

import (
	"testing"
)

// TestRingShape: the ring over n agents has 2n directed edges (2 for n=2),
// is connected, and every agent has out-degree 2 (1 for n=2).
func TestRingShape(t *testing.T) {
	for _, n := range []int{2, 3, 5, 16, 101} {
		g, err := Ring(n)
		if err != nil {
			t.Fatalf("Ring(%d): %v", n, err)
		}
		wantM, wantDeg := 2*n, 2
		if n == 2 {
			wantM, wantDeg = 2, 1
		}
		if g.M() != wantM {
			t.Errorf("Ring(%d): M = %d, want %d", n, g.M(), wantM)
		}
		if !g.Connected() {
			t.Errorf("Ring(%d) disconnected", n)
		}
		for a := 0; a < n; a++ {
			if deg := g.OutDegree(a); deg != wantDeg {
				t.Errorf("Ring(%d): out-degree of %d = %d, want %d", n, a, deg, wantDeg)
			}
		}
	}
	if _, err := Ring(1); err == nil {
		t.Error("Ring(1) accepted")
	}
}

// TestTorusShape: the torus is connected with out-degree ≤ 4, and the prime
// case degenerates to the ring.
func TestTorusShape(t *testing.T) {
	for _, n := range []int{4, 6, 9, 16, 36, 64, 100} {
		g, err := Torus2D(n)
		if err != nil {
			t.Fatalf("Torus2D(%d): %v", n, err)
		}
		if !g.Connected() {
			t.Errorf("Torus2D(%d) disconnected", n)
		}
		for a := 0; a < n; a++ {
			if deg := g.OutDegree(a); deg < 1 || deg > 4 {
				t.Errorf("Torus2D(%d): out-degree of %d = %d, want 1..4", n, a, deg)
			}
		}
	}
	// A 4×4 torus is 4-regular with 2·2·16 = 64 directed edges.
	g, err := Torus2D(16)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 64 {
		t.Errorf("Torus2D(16): M = %d, want 64", g.M())
	}
	// Prime n folds to the 1×n torus = the ring.
	prime, err := Torus2D(13)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := Ring(13)
	if err != nil {
		t.Fatal(err)
	}
	if prime.M() != ring.M() {
		t.Errorf("Torus2D(13): M = %d, ring has %d", prime.M(), ring.M())
	}
}

// TestRandomRegularShape: exact d-regularity (counting multiplicity),
// connectivity, and parameter validation.
func TestRandomRegularShape(t *testing.T) {
	cases := []struct{ n, d int }{{16, 2}, {16, 8}, {12, 8}, {32, 3}, {9, 4}, {64, 8}}
	for _, c := range cases {
		g, err := RandomRegular(c.n, c.d, 7)
		if err != nil {
			t.Fatalf("RandomRegular(%d, %d): %v", c.n, c.d, err)
		}
		if g.M() != c.n*c.d {
			t.Errorf("RandomRegular(%d, %d): M = %d, want %d", c.n, c.d, g.M(), c.n*c.d)
		}
		if !g.Connected() {
			t.Errorf("RandomRegular(%d, %d) disconnected", c.n, c.d)
		}
		for a := 0; a < c.n; a++ {
			if deg := g.OutDegree(a); deg != c.d {
				t.Errorf("RandomRegular(%d, %d): out-degree of %d = %d", c.n, c.d, a, deg)
			}
		}
	}
	for _, c := range []struct{ n, d int }{{8, 1}, {8, 8}, {4, 8}, {9, 3}} {
		if _, err := RandomRegular(c.n, c.d, 1); err == nil {
			t.Errorf("RandomRegular(%d, %d) accepted", c.n, c.d)
		}
	}
}

// TestErdosRenyiShape: p = 1 yields the complete graph; mid-range p yields
// a plausible edge count; invalid parameters are rejected.
func TestErdosRenyiShape(t *testing.T) {
	const n = 24
	full, err := ErdosRenyi(n, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if full.M() != n*(n-1) {
		t.Errorf("ErdosRenyi(p=1): M = %d, want %d", full.M(), n*(n-1))
	}
	if !full.Connected() {
		t.Error("complete ER graph disconnected")
	}
	half, err := ErdosRenyi(n, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	mean := n * (n - 1) / 2
	if half.M() < mean/2 || half.M() > 3*mean/2 {
		t.Errorf("ErdosRenyi(p=0.5): M = %d, implausible vs mean %d", half.M(), mean)
	}
	for _, p := range []float64{0, -0.5, 1.5} {
		if _, err := ErdosRenyi(n, p, 1); err == nil {
			t.Errorf("ErdosRenyi(p=%v) accepted", p)
		}
	}
	// p so small that the draw has no edges is an error, not a broken graph.
	if _, err := ErdosRenyi(2, 1e-12, 1); err == nil {
		t.Error("edgeless ER draw accepted")
	}
}

// TestGeneratorsDeterministicPerSeed: the same (n, seed) always yields the
// identical edge list, and a different seed changes the random families.
func TestGeneratorsDeterministicPerSeed(t *testing.T) {
	same := func(a, b *Graph) bool {
		if a.M() != b.M() {
			return false
		}
		for i := 0; i < a.M(); i++ {
			aa, ab := a.Edge(i)
			ba, bb := b.Edge(i)
			if aa != ba || ab != bb {
				return false
			}
		}
		return true
	}
	const n = 20
	gens := map[string]func(seed uint64) (*Graph, error){
		"ring":           func(uint64) (*Graph, error) { return Ring(n) },
		"torus":          func(uint64) (*Graph, error) { return Torus2D(n) },
		"random-regular": func(seed uint64) (*Graph, error) { return RandomRegular(n, 4, seed) },
		"erdos-renyi":    func(seed uint64) (*Graph, error) { return ErdosRenyi(n, 0.3, seed) },
	}
	for name, gen := range gens {
		a, err := gen(42)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := gen(42)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !same(a, b) {
			t.Errorf("%s: same seed, different edge list", name)
		}
	}
	for _, name := range []string{"random-regular", "erdos-renyi"} {
		a, _ := gens[name](1)
		b, _ := gens[name](2)
		if same(a, b) {
			t.Errorf("%s: different seeds, identical edge list", name)
		}
	}
}

// TestFromEdges: explicit edge lists are validated and preserved verbatim,
// including direction asymmetry.
func TestFromEdges(t *testing.T) {
	g, err := FromEdges("star", 4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 4 || g.Name() != "star" || g.N() != 4 {
		t.Fatalf("FromEdges: M=%d name=%q n=%d", g.M(), g.Name(), g.N())
	}
	if a, b := g.Edge(2); a != 0 || b != 3 {
		t.Fatalf("edge 2 = (%d, %d), want (0, 3)", a, b)
	}
	if g.OutDegree(0) != 3 || g.OutDegree(2) != 0 {
		t.Fatalf("out-degrees %d/%d, want 3/0", g.OutDegree(0), g.OutDegree(2))
	}
	bad := [][][2]int{
		{},        // no edges
		{{0, 0}},  // self-loop
		{{0, 4}},  // out of range
		{{-1, 2}}, // negative
	}
	for i, edges := range bad {
		if _, err := FromEdges("bad", 4, edges); err == nil {
			t.Errorf("bad edge list %d accepted", i)
		}
	}
}

// TestConnectedDetectsComponents: a two-component edge list is reported
// disconnected.
func TestConnectedDetectsComponents(t *testing.T) {
	g, err := FromEdges("split", 4, [][2]int{{0, 1}, {1, 0}, {2, 3}, {3, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Connected() {
		t.Error("two-component graph reported connected")
	}
}
