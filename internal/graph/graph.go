// Package graph implements the interaction topologies of the topology
// layer: finite directed interaction graphs over n agents, materialized as
// edge lists that a scheduler samples uniformly. The population model of the
// paper (§1.1) is the complete graph — every ordered pair of distinct
// agents — which the engine never materializes (the uniform scheduler IS
// that graph); this package provides the non-complete families the
// topology-sensitive related work calls for (rings as in arXiv:2009.10926,
// tori, random regular graphs, Erdős–Rényi graphs) plus user-supplied edge
// lists.
//
// Interactions are ordered (initiator, responder), so every generator emits
// directed edges; the built-in families are symmetric (both orientations of
// every adjacency are present). All generators are deterministic functions
// of (n, seed): the same parameters always produce the identical edge list,
// which is what makes topology runs reproducible and lets recordings store
// edge indices instead of pairs.
package graph

import (
	"fmt"
	"math"

	"sspp/internal/rng"
)

// Graph is a directed interaction graph over n agents, stored as a flat
// edge list. Parallel edges are permitted (a pair listed k times is sampled
// k times as often — the configuration-model view of a multigraph);
// self-loops are not (an agent cannot interact with itself).
type Graph struct {
	name     string
	n        int
	src, dst []int32
}

// Name returns the generator name the graph was built from (e.g. "ring").
func (g *Graph) Name() string { return g.name }

// N returns the number of agents.
func (g *Graph) N() int { return g.n }

// M returns the number of directed edges (counting multiplicity).
func (g *Graph) M() int { return len(g.src) }

// Edge returns the i-th directed edge as an ordered (initiator, responder)
// pair.
func (g *Graph) Edge(i int) (a, b int) { return int(g.src[i]), int(g.dst[i]) }

// Same reports whether g and other are the identical interaction graph:
// same population and the same directed edge list in the same order. Two
// materializations of one topology at the same (n, seed) are Same; the
// engine uses this to validate that a topology-aware schedule really
// belongs to the system it is driving.
func (g *Graph) Same(other *Graph) bool {
	if other == nil || g.n != other.n || len(g.src) != len(other.src) {
		return false
	}
	for i := range g.src {
		if g.src[i] != other.src[i] || g.dst[i] != other.dst[i] {
			return false
		}
	}
	return true
}

// OutDegree returns the number of outgoing edges of agent a (counting
// multiplicity).
func (g *Graph) OutDegree(a int) int {
	deg := 0
	for _, s := range g.src {
		if int(s) == a {
			deg++
		}
	}
	return deg
}

// Connected reports whether the graph is connected when edge directions are
// ignored (the built-in families are symmetric, so this coincides with
// strong connectivity for them). A population protocol cannot stabilize
// globally on a disconnected interaction graph: information never crosses
// between components.
func (g *Graph) Connected() bool {
	if g.n == 0 {
		return false
	}
	parent := make([]int32, g.n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	components := g.n
	for i := range g.src {
		ra, rb := find(g.src[i]), find(g.dst[i])
		if ra != rb {
			parent[ra] = rb
			components--
		}
	}
	return components == 1
}

// addBoth appends both orientations of the undirected adjacency {a, b}.
func (g *Graph) addBoth(a, b int32) {
	g.src = append(g.src, a, b)
	g.dst = append(g.dst, b, a)
}

// validate checks the invariants every Graph must satisfy: a real
// population, at least one edge, all endpoints in range, no self-loops.
func (g *Graph) validate() error {
	if g.n < 2 {
		return fmt.Errorf("graph: population size %d < 2", g.n)
	}
	if len(g.src) == 0 {
		return fmt.Errorf("graph: %q over %d agents has no edges", g.name, g.n)
	}
	for i := range g.src {
		a, b := g.src[i], g.dst[i]
		if a < 0 || int(a) >= g.n || b < 0 || int(b) >= g.n {
			return fmt.Errorf("graph: %q edge %d = (%d, %d) out of range [0, %d)", g.name, i, a, b, g.n)
		}
		if a == b {
			return fmt.Errorf("graph: %q edge %d is a self-loop at agent %d", g.name, i, a)
		}
	}
	return nil
}

// Ring returns the bidirectional cycle over n agents: agent i is adjacent
// to i±1 mod n, 2n directed edges. This is the topology of the ring
// leader-election lower bounds (arXiv:2009.10926).
func Ring(n int) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: ring needs n ≥ 2, got %d", n)
	}
	g := &Graph{name: "ring", n: n, src: make([]int32, 0, 2*n), dst: make([]int32, 0, 2*n)}
	if n == 2 {
		g.addBoth(0, 1) // a 2-cycle would duplicate the single adjacency
		return g, nil
	}
	for i := 0; i < n; i++ {
		g.addBoth(int32(i), int32((i+1)%n))
	}
	return g, nil
}

// torusDims factors n into the most nearly square w×h grid (w ≤ h). A prime
// n factors as 1×n, degenerating the torus to a ring.
func torusDims(n int) (w, h int) {
	for w = int(isqrt(uint64(n))); w > 1; w-- {
		if n%w == 0 {
			return w, n / w
		}
	}
	return 1, n
}

// isqrt returns ⌊√x⌋ via math.Sqrt with an exactness correction.
func isqrt(x uint64) uint64 {
	r := uint64(math.Sqrt(float64(x)))
	for r > 0 && r*r > x {
		r--
	}
	for (r+1)*(r+1) <= x {
		r++
	}
	return r
}

// Torus2D returns the two-dimensional w×h torus over n agents, with w×h the
// most nearly square factorization of n (w ≤ h): agent (x, y) is adjacent
// to its four grid neighbours with wraparound. Degenerate dimensions fold
// gracefully — a prime n yields the 1×n torus, which is exactly the ring —
// and duplicate adjacencies from 2-wide dimensions are emitted once.
func Torus2D(n int) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: torus needs n ≥ 2, got %d", n)
	}
	w, h := torusDims(n)
	g := &Graph{name: "torus", n: n, src: make([]int32, 0, 4*n), dst: make([]int32, 0, 4*n)}
	seen := make(map[int64]bool, 2*n)
	add := func(a, b int32) {
		if a == b {
			return
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		key := int64(lo)<<32 | int64(hi)
		if seen[key] {
			return
		}
		seen[key] = true
		g.addBoth(a, b)
	}
	at := func(x, y int) int32 { return int32(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			add(at(x, y), at((x+1)%w, y))
			add(at(x, y), at(x, (y+1)%h))
		}
	}
	return g, g.validate()
}

// RandomRegular returns a connected d-regular multigraph over n agents,
// built as the union of ⌊d/2⌋ uniformly random Hamiltonian cycles (plus one
// uniformly random perfect matching when d is odd, requiring even n). Every
// agent has exactly d incident adjacencies counting multiplicity, and the
// graph is always connected (each Hamiltonian cycle alone is). The edge
// list is a deterministic function of (n, d, seed).
func RandomRegular(n, d int, seed uint64) (*Graph, error) {
	switch {
	case d < 2:
		return nil, fmt.Errorf("graph: random-regular degree %d < 2", d)
	case n <= d:
		return nil, fmt.Errorf("graph: random-regular needs n > d, got n=%d d=%d", n, d)
	case d%2 == 1 && n%2 == 1:
		return nil, fmt.Errorf("graph: odd degree %d needs an even population, got n=%d", d, n)
	}
	r := rng.New(seed)
	g := &Graph{name: "random-regular", n: n,
		src: make([]int32, 0, 2*d*n), dst: make([]int32, 0, 2*d*n)}
	for c := 0; c < d/2; c++ {
		perm := r.Perm(n) // a uniform Hamiltonian cycle: visit agents in permutation order
		for i := 0; i < n; i++ {
			g.addBoth(int32(perm[i]), int32(perm[(i+1)%n]))
		}
	}
	if d%2 == 1 {
		perm := r.Perm(n) // pair consecutive entries: a uniform perfect matching
		for i := 0; i < n; i += 2 {
			g.addBoth(int32(perm[i]), int32(perm[i+1]))
		}
	}
	return g, g.validate()
}

// ErdosRenyi returns a G(n, p) graph: every unordered pair {i, j} is an
// adjacency independently with probability p (both orientations emitted).
// Unlike the other families the result is NOT guaranteed connected — below
// the p = ln(n)/n threshold it usually is not, and a protocol cannot
// stabilize across components; callers who need connectivity should check
// Connected. A draw with no edges at all is rejected as an error. The edge
// list is a deterministic function of (n, p, seed).
func ErdosRenyi(n int, p float64, seed uint64) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: erdos-renyi needs n ≥ 2, got %d", n)
	}
	if p <= 0 || p > 1 {
		return nil, fmt.Errorf("graph: erdos-renyi probability %v outside (0, 1]", p)
	}
	r := rng.New(seed)
	g := &Graph{name: "erdos-renyi", n: n}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				g.addBoth(int32(i), int32(j))
			}
		}
	}
	if g.M() == 0 {
		return nil, fmt.Errorf("graph: erdos-renyi(n=%d, p=%v, seed=%d) drew no edges", n, p, seed)
	}
	return g, nil
}

// FromEdges builds a graph from an explicit directed edge list (the
// user-topology escape hatch). The list is copied; it must contain at least
// one edge, all endpoints in [0, n), and no self-loops. Symmetry is NOT
// imposed: a directed edge (a, b) only lets a initiate with b responding.
func FromEdges(name string, n int, edges [][2]int) (*Graph, error) {
	if name == "" {
		name = "custom"
	}
	g := &Graph{name: name, n: n,
		src: make([]int32, 0, len(edges)), dst: make([]int32, 0, len(edges))}
	for _, e := range edges {
		g.src = append(g.src, int32(e[0]))
		g.dst = append(g.dst, int32(e[1]))
	}
	return g, g.validate()
}
