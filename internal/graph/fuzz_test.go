package graph

import "testing"

// FuzzGenerators drives every topology generator over arbitrary (n, d, p,
// seed) tuples and checks the structural contract the scheduler layer
// relies on: edge lists are deterministic per seed, every edge is an
// in-range non-self-loop pair, the families that promise connectivity
// (ring, torus, random-regular) deliver it, and degree bounds hold. The
// Erdős–Rényi family promises no connectivity (documented), so only its
// determinism and edge validity are enforced.
func FuzzGenerators(f *testing.F) {
	f.Add(8, 2, 0.3, uint64(1))
	f.Add(16, 8, 0.5, uint64(2))
	f.Add(13, 3, 0.9, uint64(3))
	f.Add(2, 4, 0.01, uint64(4))
	f.Add(101, 5, 1.0, uint64(5))
	f.Fuzz(func(t *testing.T, n, d int, p float64, seed uint64) {
		if n < 2 || n > 512 {
			n = 2 + (abs(n) % 511)
		}
		if d < 2 || d > 16 {
			d = 2 + (abs(d) % 15)
		}
		if !(p > 0 && p <= 1) {
			p = 0.5
		}

		check := func(name string, g *Graph, err error, wantConnected bool, maxDeg int) {
			if err != nil {
				return // rejected parameters are fine; accepted graphs must be sound
			}
			if err := g.validate(); err != nil {
				t.Fatalf("%s(n=%d): %v", name, n, err)
			}
			if wantConnected && !g.Connected() {
				t.Fatalf("%s(n=%d) disconnected", name, n)
			}
			if maxDeg > 0 {
				for a := 0; a < g.N(); a++ {
					if deg := g.OutDegree(a); deg > maxDeg {
						t.Fatalf("%s(n=%d): out-degree of %d = %d > %d", name, n, a, deg, maxDeg)
					}
				}
			}
		}
		identical := func(name string, a, b *Graph, errA, errB error) {
			if (errA == nil) != (errB == nil) {
				t.Fatalf("%s: same seed, different acceptance (%v vs %v)", name, errA, errB)
			}
			if errA != nil {
				return
			}
			if a.M() != b.M() {
				t.Fatalf("%s: same seed, different edge count %d vs %d", name, a.M(), b.M())
			}
			for i := 0; i < a.M(); i++ {
				aa, ab := a.Edge(i)
				ba, bb := b.Edge(i)
				if aa != ba || ab != bb {
					t.Fatalf("%s: same seed, edge %d differs", name, i)
				}
			}
		}

		ring, err := Ring(n)
		check("ring", ring, err, true, 2)
		torus, err := Torus2D(n)
		check("torus", torus, err, true, 4)

		rr1, err1 := RandomRegular(n, d, seed)
		rr2, err2 := RandomRegular(n, d, seed)
		check("random-regular", rr1, err1, true, d)
		identical("random-regular", rr1, rr2, err1, err2)
		if err1 == nil {
			for a := 0; a < n; a++ {
				if deg := rr1.OutDegree(a); deg != d {
					t.Fatalf("random-regular(n=%d, d=%d): out-degree of %d = %d", n, d, a, deg)
				}
			}
		}

		er1, err1 := ErdosRenyi(n, p, seed)
		er2, err2 := ErdosRenyi(n, p, seed)
		check("erdos-renyi", er1, err1, false, n-1)
		identical("erdos-renyi", er1, er2, err1, err2)
	})
}

func abs(x int) int {
	if x < 0 {
		if x == -x { // math.MinInt
			return 1
		}
		return -x
	}
	return x
}
