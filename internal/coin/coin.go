// Package coin implements the derandomization technique of Appendix B of
// the paper (Lemma B.1): population protocols are presented as if agents
// could sample values (almost) uniformly at random, and that sampling is
// realized using only the randomness of the uniform scheduler.
//
// Each agent maintains one coin bit that it flips on every interaction, a
// cyclic counter, and a small buffer of coin bits observed on interaction
// partners. Because the scheduler pairs agents uniformly at random, after a
// short mixing period roughly half the population shows heads at any moment
// (Berenbrink, Friedetzky, Kaaser, Kling 2019), so the observed bits are
// close to independent fair coin flips, and a window of log₂ N of them
// encodes a value that is almost uniform on [N]: every value has probability
// in [1/(2N), 2/N].
//
// Protocols in this repository consume randomness through the Sampler
// function type, so every protocol can run either in the presentation model
// (PRNG-backed, FromPRNG) or fully derandomized (State.Sample).
package coin

import "sspp/internal/rng"

// Sampler returns a value in [0, n), (almost) uniformly at random.
// Implementations must tolerate any n >= 1.
type Sampler func(n int) int

// FromPRNG returns a Sampler backed by a seeded PRNG. This is the paper's
// presentation model, where transition functions may sample directly.
func FromPRNG(r *rng.PRNG) Sampler {
	return func(n int) int {
		if n <= 1 {
			return 0
		}
		return r.Intn(n)
	}
}

// MaxWidth is the capacity of the observed-bit buffer in bits.
const MaxWidth = 64

// State is the per-agent synthetic coin of Appendix B: the agent's own coin
// bit, the cyclic write position, and the buffer of partner bits observed
// during the last Width interactions.
//
// The per-agent memory is Width + log₂(Width) + 1 bits, matching the
// O(N·log N) state blow-up of Lemma B.1.
type State struct {
	// Coin is the agent's own coin bit (0 or 1), complemented every
	// interaction.
	Coin uint8
	// Buf holds the last Width observed partner bits, cyclically.
	Buf uint64
	// Pos is the cyclic write position in [0, Width).
	Pos uint8
	// Width is the buffer size in bits (1..MaxWidth).
	Width uint8
}

// NewState returns a synthetic-coin state with the given buffer width,
// clamped to [1, MaxWidth]. The initial coin and buffer are derived
// deterministically from salt so that distinct agents start unsynchronized;
// self-stabilization does not depend on this initialization, it only
// shortens mixing in experiments.
func NewState(width int, salt uint64) State {
	if width < 1 {
		width = 1
	}
	if width > MaxWidth {
		width = MaxWidth
	}
	// splitmix64-style scrambling of the salt.
	z := salt + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return State{
		Coin:  uint8(z & 1),
		Buf:   z >> 1,
		Pos:   uint8((z >> 32) % uint64(width)),
		Width: uint8(width),
	}
}

// WidthFor returns a buffer width sufficient to sample values in [0, n)
// with the guarantees of Lemma B.1 (⌈log₂ n⌉ bits, at least 1).
func WidthFor(n int) int {
	return bitsFor(n)
}

// bitsFor returns ⌈log₂ n⌉ for n >= 2 and 1 otherwise.
func bitsFor(n int) int {
	bits := 1
	for v := 2; v < n; v <<= 1 {
		bits++
		if bits == MaxWidth {
			break
		}
	}
	return bits
}

// Observe implements the per-interaction update of Appendix B for both
// endpoints of an interaction: each agent records the partner's current coin
// bit into its buffer and advances its cyclic counter, and then both agents
// complement their own coins. The two observations use the pre-flip values,
// matching the simultaneous state update of the population model.
func Observe(u, v *State) {
	ub, vb := u.Coin, v.Coin
	u.record(vb)
	v.record(ub)
	u.Coin ^= 1
	v.Coin ^= 1
}

// record writes bit at the current cyclic position and advances it.
func (s *State) record(bit uint8) {
	if s.Width == 0 {
		// Zero value: degrade gracefully to a 1-bit buffer.
		s.Width = 1
		s.Pos = 0
	}
	mask := uint64(1) << s.Pos
	if bit != 0 {
		s.Buf |= mask
	} else {
		s.Buf &^= mask
	}
	s.Pos++
	if s.Pos >= s.Width {
		s.Pos = 0
	}
}

// Sample returns a value in [0, n) assembled from the most recently observed
// ⌈log₂ n⌉ coin bits (reduced mod n). Per Lemma B.1 the result is almost
// uniform — each value has probability in [1/(2n), 2/n] — provided the agent
// has interacted at least Width times since the last Sample so the buffer
// has fully refreshed.
func (s *State) Sample(n int) int {
	if n <= 1 {
		return 0
	}
	w := bitsFor(n)
	if int(s.Width) < w {
		w = int(s.Width)
	}
	var v uint64
	pos := int(s.Pos)
	for i := 0; i < w; i++ {
		// Walk backwards from the most recently written position.
		pos--
		if pos < 0 {
			pos = int(s.Width) - 1
		}
		v = v<<1 | (s.Buf>>uint(pos))&1
	}
	return int(v % uint64(n))
}
