package coin

import (
	"testing"
	"testing/quick"

	"sspp/internal/rng"
)

func TestBitsFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 1}, {1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := bitsFor(c.n); got != c.want {
			t.Errorf("bitsFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestWidthFor(t *testing.T) {
	if WidthFor(1_000_000) != 20 {
		t.Fatalf("WidthFor(1e6) = %d, want 20", WidthFor(1_000_000))
	}
}

func TestObserveFlipsCoins(t *testing.T) {
	u := NewState(8, 1)
	v := NewState(8, 2)
	uc, vc := u.Coin, v.Coin
	Observe(&u, &v)
	if u.Coin != uc^1 || v.Coin != vc^1 {
		t.Fatal("Observe did not complement coins")
	}
}

func TestObserveRecordsPartnerBit(t *testing.T) {
	u := NewState(4, 0)
	v := NewState(4, 0)
	u.Buf, v.Buf, u.Pos, v.Pos = 0, 0, 0, 0
	u.Coin, v.Coin = 1, 0
	Observe(&u, &v)
	// u observed v's 0; v observed u's 1.
	if u.Buf&1 != 0 {
		t.Fatalf("u should have recorded 0, buf=%b", u.Buf)
	}
	if v.Buf&1 != 1 {
		t.Fatalf("v should have recorded 1, buf=%b", v.Buf)
	}
	if u.Pos != 1 || v.Pos != 1 {
		t.Fatal("positions did not advance")
	}
}

func TestSampleBoundsProperty(t *testing.T) {
	s := NewState(32, 7)
	f := func(buf uint64, pos uint8, nRaw uint16) bool {
		s.Buf = buf
		s.Pos = pos % 32
		n := int(nRaw%500) + 1
		v := s.Sample(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleSmallN(t *testing.T) {
	s := NewState(8, 3)
	if s.Sample(1) != 0 {
		t.Fatal("Sample(1) must be 0")
	}
	if s.Sample(0) != 0 {
		t.Fatal("Sample(0) must be 0")
	}
}

func TestZeroValueRecordDegradesGracefully(t *testing.T) {
	var s State
	s.record(1) // must not panic
	if s.Width != 1 {
		t.Fatalf("Width = %d, want 1", s.Width)
	}
}

func TestNewStateClamps(t *testing.T) {
	if s := NewState(0, 1); s.Width != 1 {
		t.Fatalf("Width = %d, want 1", s.Width)
	}
	if s := NewState(1000, 1); s.Width != MaxWidth {
		t.Fatalf("Width = %d, want %d", s.Width, MaxWidth)
	}
}

func TestFromPRNG(t *testing.T) {
	sample := FromPRNG(rng.New(1))
	for i := 0; i < 1000; i++ {
		if v := sample(10); v < 0 || v >= 10 {
			t.Fatalf("out of range: %d", v)
		}
	}
	if sample(1) != 0 || sample(0) != 0 {
		t.Fatal("degenerate n must return 0")
	}
}

// TestPopulationDistribution simulates a population running only the
// synthetic-coin dynamics and verifies the Lemma B.1 guarantee: after a
// mixing period, sampled values x in [N] satisfy P[x] within roughly
// [1/(2N), 2/N]. We allow a modest extra factor for finite-sample noise.
func TestPopulationDistribution(t *testing.T) {
	const (
		n      = 64
		N      = 16
		warmup = 40 * n
		rounds = 3000
	)
	r := rng.New(42)
	agents := make([]State, n)
	for i := range agents {
		agents[i] = NewState(WidthFor(N), uint64(i))
	}
	step := func(k int) {
		for i := 0; i < k; i++ {
			a, b := r.Pair(n)
			Observe(&agents[a], &agents[b])
		}
	}
	step(warmup)
	counts := make([]int, N)
	for i := 0; i < rounds; i++ {
		// Let the buffer fully refresh between samples, as Lemma B.1
		// requires (Θ(log N) activations per agent).
		step(2 * n * int(agents[0].Width))
		counts[agents[r.Intn(n)].Sample(N)]++
	}
	lo := float64(rounds) / float64(N) / 3.0
	hi := float64(rounds) / float64(N) * 3.0
	for v, c := range counts {
		if float64(c) < lo || float64(c) > hi {
			t.Errorf("value %d sampled %d times, outside [%f, %f]", v, c, lo, hi)
		}
	}
}

// TestSampleUsesRecentBits checks the sliding-window read: after writing a
// known pattern, Sample must reflect the most recent bits.
func TestSampleUsesRecentBits(t *testing.T) {
	s := NewState(8, 0)
	s.Buf, s.Pos = 0, 0
	// Record bits 1,1,1 (most recent three).
	s.record(1)
	s.record(1)
	s.record(1)
	// Sampling [8] uses 3 bits -> value 7.
	if got := s.Sample(8); got != 7 {
		t.Fatalf("Sample(8) = %d, want 7", got)
	}
	s.record(0) // now most recent three are 1,1,0 read backwards as 0b011... direction check
	got := s.Sample(8)
	// Walking backwards from the write position: bits are 0,1,1 -> 0b011 = 3.
	if got != 3 {
		t.Fatalf("Sample(8) after extra 0 = %d, want 3", got)
	}
}
