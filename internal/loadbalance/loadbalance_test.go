package loadbalance

import (
	"math"
	"testing"
	"testing/quick"

	"sspp/internal/rng"
)

func TestInteractSplitsCeilFloor(t *testing.T) {
	p := New([]int64{5, 2, 0})
	p.Interact(0, 1)
	if p.Load(0) != 4 || p.Load(1) != 3 {
		t.Fatalf("split = (%d,%d), want (4,3)", p.Load(0), p.Load(1))
	}
	p.Interact(2, 0) // initiator gets the ceil
	if p.Load(2) != 2 || p.Load(0) != 2 {
		t.Fatalf("split = (%d,%d), want (2,2)", p.Load(2), p.Load(0))
	}
}

func TestConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + int(r.Intn(13))
		tokens := make([]int64, n)
		for i := range tokens {
			tokens[i] = int64(r.Intn(50))
		}
		p := New(tokens)
		for i := 0; i < 500; i++ {
			a, b := r.Pair(n)
			p.Interact(a, b)
			if !p.CheckConservation() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDiscrepancyNonIncreasingProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + int(r.Intn(13))
		tokens := make([]int64, n)
		for i := range tokens {
			tokens[i] = int64(r.Intn(100))
		}
		p := New(tokens)
		prev := p.Discrepancy()
		for i := 0; i < 300; i++ {
			a, b := r.Pair(n)
			p.Interact(a, b)
			d := p.Discrepancy()
			if d > prev {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPointMass(t *testing.T) {
	p := NewPointMass(8, 64)
	if p.Total() != 64 || p.Load(0) != 64 || p.Load(1) != 0 {
		t.Fatalf("unexpected point mass: %+v", p)
	}
	if p.Discrepancy() != 64 {
		t.Fatalf("Discrepancy = %d, want 64", p.Discrepancy())
	}
}

// TestTightAndSimpleBound reproduces the shape of Theorem 1 of [9]: from a
// point mass of 2n tokens, the process reaches discrepancy ≤ 3 within
// c·n·log n interactions on every tried seed, for a modest c.
func TestTightAndSimpleBound(t *testing.T) {
	const n = 128
	bound := uint64(40 * float64(n) * math.Log(n))
	for seed := uint64(0); seed < 8; seed++ {
		p := NewPointMass(n, 2*n)
		r := rng.New(seed)
		took, ok := RunUntilDiscrepancy(p, r, 3, bound)
		if !ok {
			t.Errorf("seed %d: discrepancy %d after %d interactions", seed, p.Discrepancy(), took)
		}
	}
}

func TestRunUntilDiscrepancyImmediate(t *testing.T) {
	p := New([]int64{3, 3, 3})
	took, ok := RunUntilDiscrepancy(p, rng.New(1), 1, 10)
	if !ok || took != 0 {
		t.Fatalf("expected immediate success, got took=%d ok=%v", took, ok)
	}
}

func TestRunUntilDiscrepancyTimeout(t *testing.T) {
	p := NewPointMass(16, 1600)
	took, ok := RunUntilDiscrepancy(p, rng.New(1), 0, 5)
	if ok {
		t.Fatal("expected timeout")
	}
	if took != 5 {
		t.Fatalf("took = %d, want 5", took)
	}
}

func TestNewValidation(t *testing.T) {
	for name, tokens := range map[string][]int64{
		"empty":    nil,
		"negative": {1, -1},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			New(tokens)
		})
	}
}

func TestCorrect(t *testing.T) {
	if !New([]int64{2, 1, 2}).Correct() {
		t.Fatal("discrepancy 1 should be correct")
	}
	if New([]int64{3, 1}).Correct() {
		t.Fatal("discrepancy 2 should not be correct")
	}
}
