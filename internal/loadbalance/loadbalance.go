// Package loadbalance implements the token load-balancing process of
// Berenbrink, Friedetzky, Kaaser, and Kling ("Tight & Simple Load
// Balancing", IPDPS 2019), which the paper's Lemma E.6 couples to the
// message-dispersal mechanism of DetectCollision_r.
//
// Each agent holds a number of identical tokens. When two agents interact
// they rebalance: one ends up with ⌈(x+y)/2⌉ tokens and the other with
// ⌊(x+y)/2⌋. Theorem 1 of that paper shows that from any initial discrepancy
// of O(m), all agents hold loads within a constant of each other after
// O(m·log m) interactions w.h.p.; experiment T6 reproduces this, and the
// coupling argument of Lemma E.6 transfers it to message counts.
package loadbalance

import (
	"sspp/internal/rng"
	"sspp/internal/sim"
)

// Process is a token load-balancing process over n agents.
type Process struct {
	tokens []int64
	total  int64
}

var _ sim.Protocol = (*Process)(nil)

// New returns a process with the given per-agent token counts. The slice is
// copied. It panics on an empty input or negative counts.
func New(tokens []int64) *Process {
	if len(tokens) == 0 {
		panic("loadbalance: New with empty token vector")
	}
	p := &Process{tokens: append([]int64(nil), tokens...)}
	for _, c := range p.tokens {
		if c < 0 {
			panic("loadbalance: negative token count")
		}
		p.total += c
	}
	return p
}

// NewPointMass returns a process over n agents where agent 0 holds all m
// tokens: the worst-case initial discrepancy used by experiment T6.
func NewPointMass(n int, m int64) *Process {
	tokens := make([]int64, n)
	tokens[0] = m
	return New(tokens)
}

// N returns the population size.
func (p *Process) N() int { return len(p.tokens) }

// Interact rebalances the pair: the initiator a receives ⌈(x+y)/2⌉ tokens
// and the responder b receives ⌊(x+y)/2⌋. Which endpoint receives the ceil
// is immaterial for the guarantees because the scheduler orders pairs
// uniformly (this is exactly the coupling used in Lemma E.6).
func (p *Process) Interact(a, b int) {
	sum := p.tokens[a] + p.tokens[b]
	half := sum / 2
	p.tokens[a] = sum - half
	p.tokens[b] = half
}

// Correct reports whether the maximum load discrepancy is at most 1, the
// terminal condition of the balancing process.
func (p *Process) Correct() bool { return p.Discrepancy() <= 1 }

// Discrepancy returns max load − min load over all agents.
func (p *Process) Discrepancy() int64 {
	mn, mx := p.tokens[0], p.tokens[0]
	for _, c := range p.tokens[1:] {
		if c < mn {
			mn = c
		}
		if c > mx {
			mx = c
		}
	}
	return mx - mn
}

// Total returns the (conserved) total number of tokens.
func (p *Process) Total() int64 { return p.total }

// Load returns agent i's current token count.
func (p *Process) Load(i int) int64 { return p.tokens[i] }

// CheckConservation returns true when the current loads sum to Total().
// Tests use it as a runtime invariant.
func (p *Process) CheckConservation() bool {
	var s int64
	for _, c := range p.tokens {
		s += c
	}
	return s == p.total
}

// RunUntilDiscrepancy runs the process under the uniform scheduler until the
// discrepancy is at most target or max interactions have elapsed, and
// returns the number of interactions performed and whether the target was
// reached. The discrepancy is polled every ⌈n/2⌉ interactions, so the
// returned count has that resolution.
func RunUntilDiscrepancy(p *Process, r *rng.PRNG, target int64, max uint64) (uint64, bool) {
	n := p.N()
	if p.Discrepancy() <= target {
		return 0, true
	}
	cadence := uint64(n/2 + 1)
	var t uint64
	for t < max {
		limit := t + cadence
		if limit > max {
			limit = max
		}
		for t < limit {
			a, b := r.Pair(n)
			p.Interact(a, b)
			t++
		}
		if p.Discrepancy() <= target {
			return t, true
		}
	}
	return t, false
}
