// Package rng provides a small, fast, deterministic pseudo-random number
// generator used by every simulation in this repository.
//
// The generator is xoshiro256++ seeded through splitmix64, following the
// reference constructions by Blackman and Vigna. It is not cryptographically
// secure; it is chosen for speed, reproducibility across Go releases (the
// stdlib generators have changed behaviour between versions), and the ability
// to fork statistically independent streams for sub-components of a
// simulation.
//
// All methods are deterministic functions of the seed and the call sequence,
// which makes every experiment in this repository reproducible from a single
// uint64 seed.
package rng

// PRNG is a seedable xoshiro256++ pseudo-random number generator.
//
// The zero value is not usable; construct instances with New. PRNG is not
// safe for concurrent use; fork per-goroutine streams with Fork instead of
// sharing one instance.
type PRNG struct {
	s [4]uint64
}

// New returns a PRNG seeded from seed via splitmix64 state expansion.
// Distinct seeds yield (for all practical purposes) independent streams.
func New(seed uint64) *PRNG {
	p := &PRNG{}
	p.Reseed(seed)
	return p
}

// Reseed resets the generator state as if it had been created by New(seed).
func (p *PRNG) Reseed(seed uint64) {
	sm := seed
	for i := range p.s {
		sm, p.s[i] = splitmix64(sm)
	}
	// xoshiro256++ requires a nonzero state; splitmix64 guarantees that the
	// probability of all-zero output is negligible, but we defend anyway.
	if p.s[0]|p.s[1]|p.s[2]|p.s[3] == 0 {
		p.s[0] = 0x9E3779B97F4A7C15
	}
}

// splitmix64 advances the splitmix64 state and returns the new state and
// the next output value.
func splitmix64(state uint64) (next, out uint64) {
	state += 0x9E3779B97F4A7C15
	z := state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return state, z
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly random bits.
//
//sspp:hotpath
func (p *PRNG) Uint64() uint64 {
	s := &p.s
	result := rotl(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Uint32 returns the next 32 uniformly random bits.
func (p *PRNG) Uint32() uint32 { return uint32(p.Uint64() >> 32) }

// Bool returns a uniformly random boolean.
func (p *PRNG) Bool() bool { return p.Uint64()>>63 == 1 }

// Bit returns a uniformly random bit as a uint8 (0 or 1).
func (p *PRNG) Bit() uint8 { return uint8(p.Uint64() >> 63) }

// Intn returns a uniformly random int in [0, n). It panics if n <= 0.
// It uses Lemire's nearly-divisionless unbiased bounded generation.
//
//sspp:hotpath
func (p *PRNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(p.Uint64n(uint64(n)))
}

// Int31n returns a uniformly random int32 in [0, n). It panics if n <= 0.
//
//sspp:hotpath
func (p *PRNG) Int31n(n int32) int32 {
	if n <= 0 {
		panic("rng: Int31n called with n <= 0")
	}
	return int32(p.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly random uint64 in [0, n). It panics if n == 0.
//
//sspp:hotpath
func (p *PRNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n=0")
	}
	// Lemire's method: multiply-shift with rejection to remove modulo bias.
	x := p.Uint64()
	hi, lo := mul64(x, n)
	if lo < n {
		thresh := (-n) % n
		for lo < thresh {
			x = p.Uint64()
			hi, lo = mul64(x, n)
		}
	}
	_ = lo
	return hi
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	lo1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + lo1>>32
	lo = a * b
	return hi, lo
}

// Float64 returns a uniformly random float64 in [0, 1).
func (p *PRNG) Float64() float64 {
	return float64(p.Uint64()>>11) / (1 << 53)
}

// Pair returns a uniformly random ordered pair (a, b) of distinct agent
// indices in [0, n). It panics if n < 2. This is the uniform scheduler of
// the population model (paper §1.1).
//
//sspp:hotpath
func (p *PRNG) Pair(n int) (a, b int) {
	if n < 2 {
		panic("rng: Pair called with n < 2")
	}
	a = p.Intn(n)
	b = p.Intn(n - 1)
	if b >= a {
		b++
	}
	return a, b
}

// Perm returns a uniformly random permutation of [0, n) as a slice.
func (p *PRNG) Perm(n int) []int {
	out := make([]int, n)
	for i := 1; i < n; i++ {
		j := p.Intn(i + 1)
		out[i] = out[j]
		out[j] = i
	}
	return out
}

// Shuffle randomly permutes xs in place using the Fisher–Yates algorithm.
func (p *PRNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := p.Intn(i + 1)
		swap(i, j)
	}
}

// Fork returns a new PRNG whose stream is statistically independent of the
// receiver's future output. It consumes one value from the receiver.
func (p *PRNG) Fork() *PRNG {
	return New(p.Uint64() ^ 0xD1B54A32D192ED03)
}
