package rng

import "testing"

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Uint64n(0)")
		}
	}()
	New(1).Uint64n(0)
}

func TestInt31n(t *testing.T) {
	p := New(2)
	for i := 0; i < 10000; i++ {
		if v := p.Int31n(7); v < 0 || v >= 7 {
			t.Fatalf("Int31n out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Int31n(0)")
		}
	}()
	p.Int31n(0)
}

func TestPairPanicsOnTinyN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Pair(1)")
		}
	}()
	New(1).Pair(1)
}

func TestBoolRoughlyBalanced(t *testing.T) {
	p := New(5)
	trues := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if p.Bool() {
			trues++
		}
	}
	if trues < draws/2-2000 || trues > draws/2+2000 {
		t.Fatalf("Bool bias: %d/%d", trues, draws)
	}
}

func TestUint32Range(t *testing.T) {
	p := New(6)
	seen := map[uint32]bool{}
	for i := 0; i < 100; i++ {
		seen[p.Uint32()] = true
	}
	if len(seen) < 95 {
		t.Fatalf("Uint32 produced only %d distinct values in 100 draws", len(seen))
	}
}

// TestUint64nRejectionPath exercises the Lemire rejection branch: a bound
// just below a large power of two forces occasional resampling.
func TestUint64nRejectionPath(t *testing.T) {
	p := New(7)
	const bound = (1 << 63) + (1 << 62) + 12345
	for i := 0; i < 10000; i++ {
		if v := p.Uint64n(bound); v >= bound {
			t.Fatalf("out of range: %d", v)
		}
	}
}

func TestPermZeroAndOne(t *testing.T) {
	p := New(8)
	if got := p.Perm(0); len(got) != 0 {
		t.Fatalf("Perm(0) = %v", got)
	}
	if got := p.Perm(1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Perm(1) = %v", got)
	}
}
