// dist.go adds the non-uniform draw kernels behind the continuous-time
// engine: exponential holding times (Exp), normal and gamma variates
// (Normal, Gamma — Marsaglia–Tsang), and Poisson bundle sizes (Poisson —
// inversion for small means, Hörmann's PTRS transformed rejection for
// large). All are deterministic functions of the stream state, built only
// on Uint64/Float64 so record/replay and worker-count determinism carry
// over unchanged. Poisson and Exp sit on per-leap/per-interaction paths
// and are annotated //sspp:hotpath; panics use constant strings only.

package rng

import "math"

// Exp returns an exponentially distributed variate with rate 1 (mean 1).
// Scale by 1/rate for other rates. Inversion of the survival function:
// 1-Float64() is uniform on (0, 1], so the log argument is never zero.
//
//sspp:hotpath
func (p *PRNG) Exp() float64 {
	return -math.Log(1 - p.Float64())
}

// Normal returns a standard normal variate (mean 0, variance 1) via the
// Marsaglia polar method. The paired second variate is discarded: keeping
// it would add generator state and break the "stream is a pure function
// of seed and call sequence" contract that record/replay relies on.
func (p *PRNG) Normal() float64 {
	for {
		u := 2*p.Float64() - 1
		v := 2*p.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Gamma returns a gamma variate with the given shape and scale 1, using
// the Marsaglia–Tsang squeeze method (shape ≥ 1) with the standard
// power-of-uniform boost for shape < 1. A Gamma(k) draw with integer k is
// the sum of k unit exponentials, which is how the continuous clock
// advances over a batch of k interactions in one draw. Panics if shape is
// not positive.
func (p *PRNG) Gamma(shape float64) float64 {
	if !(shape > 0) {
		panic("rng: Gamma called with shape <= 0")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) · U^(1/a). Float64 can return 0;
		// math.Pow(0, x) = 0 for x > 0, a valid (boundary) gamma draw.
		return p.Gamma(shape+1) * math.Pow(p.Float64(), 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := p.Normal()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := p.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		// log(0) = -Inf never accepts, so u = 0 just retries.
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// poissonPTRSCut is the mean above which Poisson switches from
// product-of-uniforms inversion (O(mean) uniforms per draw, exact) to
// Hörmann's PTRS transformed rejection (O(1) expected, valid for
// mean ≥ 10).
const poissonPTRSCut = 10

// Poisson returns a Poisson-distributed count with the given mean. Means
// below poissonPTRSCut use product-of-uniforms inversion; larger means use
// Hörmann's PTRS transformed rejection with squeeze steps (the τ-leaping
// bundle-size path: one expected draw per reaction channel per leap,
// regardless of how many reactions the bundle carries). A non-positive
// mean returns 0; panics on NaN or +Inf.
//
//sspp:hotpath
func (p *PRNG) Poisson(mean float64) int64 {
	if math.IsNaN(mean) {
		panic("rng: Poisson called with NaN mean")
	}
	if mean <= 0 {
		return 0
	}
	if mean < poissonPTRSCut {
		// Inversion by products: count uniforms until Πuᵢ < e^(-mean).
		limit := math.Exp(-mean)
		k := int64(-1)
		for prod := 1.0; prod > limit || k < 0; k++ {
			prod *= p.Float64()
			if prod == 0 && limit == 0 {
				break // cannot happen for mean < cut; defensive only
			}
		}
		return k
	}
	if math.IsInf(mean, 1) {
		panic("rng: Poisson called with infinite mean")
	}
	return p.poissonPTRS(mean)
}

// poissonPTRS draws a Poisson(mean) variate for mean ≥ 10 via Hörmann's
// PTRS algorithm (transformed rejection with squeeze; W. Hörmann, "The
// transformed rejection method for generating Poisson random variables",
// 1993). Expected uniforms per draw ≈ 2.3, independent of the mean.
//
//sspp:hotpath
func (p *PRNG) poissonPTRS(mean float64) int64 {
	b := 0.931 + 2.53*math.Sqrt(mean)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logMean := math.Log(mean)
	for {
		u := p.Float64() - 0.5
		v := p.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + mean + 0.43)
		if us >= 0.07 && v <= vr {
			return int64(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logMean-mean-lg {
			return int64(k)
		}
	}
}
