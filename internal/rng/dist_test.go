package rng

import (
	"math"
	"sort"
	"testing"
)

// momentCheck draws n variates and verifies the sample mean and variance
// against the analytic values within tol standard errors.
func momentCheck(t *testing.T, name string, n int, draw func() float64, mean, variance float64) {
	t.Helper()
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := draw()
		sum += x
		sumSq += x * x
	}
	m := sum / float64(n)
	v := sumSq/float64(n) - m*m
	seMean := math.Sqrt(variance / float64(n))
	if d := math.Abs(m - mean); d > 6*seMean {
		t.Errorf("%s: sample mean %g vs %g (|Δ| = %.3g > 6·SE = %.3g)", name, m, mean, d, 6*seMean)
	}
	// Loose variance check: relative error only (the variance of the sample
	// variance depends on the 4th moment; 10%% is comfortable at these n).
	if d := math.Abs(v - variance); d > 0.1*variance {
		t.Errorf("%s: sample variance %g vs %g", name, v, variance)
	}
}

func TestExpMoments(t *testing.T) {
	p := New(101)
	momentCheck(t, "Exp", 200_000, p.Exp, 1, 1)
}

func TestNormalMoments(t *testing.T) {
	p := New(102)
	momentCheck(t, "Normal", 200_000, p.Normal, 0, 1)
}

func TestGammaMoments(t *testing.T) {
	for _, shape := range []float64{0.5, 1, 2.5, 17, 400} {
		p := New(103)
		draw := func() float64 { return p.Gamma(shape) }
		momentCheck(t, "Gamma", 100_000, draw, shape, shape)
	}
}

func TestGammaPanicsOnNonPositiveShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Gamma(0) did not panic")
		}
	}()
	New(1).Gamma(0)
}

func TestPoissonMoments(t *testing.T) {
	// Means straddle the inversion/PTRS cut at 10 on both sides.
	for _, mean := range []float64{0.3, 2, 9.5, 10.5, 40, 1e4} {
		p := New(104)
		draw := func() float64 { return float64(p.Poisson(mean)) }
		momentCheck(t, "Poisson", 100_000, draw, mean, mean)
	}
}

func TestPoissonEdgeCases(t *testing.T) {
	p := New(105)
	if got := p.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
	if got := p.Poisson(-3); got != 0 {
		t.Fatalf("Poisson(-3) = %d, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Poisson(NaN) did not panic")
		}
	}()
	p.Poisson(math.NaN())
}

func TestPoissonPanicsOnInfiniteMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Poisson(+Inf) did not panic")
		}
	}()
	New(1).Poisson(math.Inf(1))
}

// poissonCDF evaluates P[X ≤ k] for X ~ Poisson(mean) by direct summation
// (stable for the moderate means used in the KS pins).
func poissonCDF(mean float64, k int64) float64 {
	logTerm := -mean // log pmf(0)
	sum := 0.0
	for i := int64(0); i <= k; i++ {
		if i > 0 {
			logTerm += math.Log(mean) - math.Log(float64(i))
		}
		sum += math.Exp(logTerm)
	}
	return sum
}

// TestPoissonKSAgainstReference pins the sampled distribution against the
// analytic CDF with a discrete one-sample Kolmogorov–Smirnov bound: for a
// discrete distribution the KS statistic of n samples exceeds the
// asymptotic 0.1%% critical value 1.949/√n with probability < 0.001 (the
// discrete-case statistic is stochastically smaller than the continuous
// one, so the continuous critical value is conservative).
func TestPoissonKSAgainstReference(t *testing.T) {
	const n = 50_000
	for _, mean := range []float64{3, 9.5, 25, 150} {
		p := New(106)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = float64(p.Poisson(mean))
		}
		sort.Float64s(samples)
		// Empirical vs analytic CDF at each distinct sample value.
		d := 0.0
		for i := 0; i < n; {
			j := i
			for j < n && samples[j] == samples[i] {
				j++
			}
			k := int64(samples[i])
			ref := poissonCDF(mean, k)
			emp := float64(j) / n
			empBelow := float64(i) / n
			refBelow := ref
			if k > 0 {
				refBelow = poissonCDF(mean, k-1)
			} else {
				refBelow = 0
			}
			if diff := math.Abs(emp - ref); diff > d {
				d = diff
			}
			if diff := math.Abs(empBelow - refBelow); diff > d {
				d = diff
			}
			i = j
		}
		crit := 1.949 / math.Sqrt(n)
		if d > crit {
			t.Errorf("Poisson(%g): KS statistic %.5f exceeds 0.1%% critical value %.5f", mean, d, crit)
		}
	}
}

// TestExpKSAgainstReference pins Exp against the unit-exponential CDF at
// the same 0.1%% KS level.
func TestExpKSAgainstReference(t *testing.T) {
	const n = 50_000
	p := New(107)
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = p.Exp()
	}
	sort.Float64s(samples)
	d := 0.0
	for i, x := range samples {
		ref := 1 - math.Exp(-x)
		if diff := math.Abs(float64(i+1)/n - ref); diff > d {
			d = diff
		}
		if diff := math.Abs(float64(i)/n - ref); diff > d {
			d = diff
		}
	}
	if crit := 1.949 / math.Sqrt(n); d > crit {
		t.Errorf("Exp: KS statistic %.5f exceeds 0.1%% critical value %.5f", d, crit)
	}
}

// TestPoissonDeterminism: the draw is a pure function of stream state, so
// identical seeds give identical bundles — the property worker-count
// determinism of τ-leaped ensembles rests on.
func TestPoissonDeterminism(t *testing.T) {
	a, b := New(9), New(9)
	for i := 0; i < 1000; i++ {
		mean := math.Exp(float64(i%16) - 2) // spans both regimes
		if av, bv := a.Poisson(mean), b.Poisson(mean); av != bv {
			t.Fatalf("Poisson streams diverge at step %d: %d != %d", i, av, bv)
		}
	}
}

// FuzzPoisson drives the sampler across arbitrary seeds and means,
// checking it always terminates with a non-negative count and never
// mutates more stream state than it reports (determinism under replay).
func FuzzPoisson(f *testing.F) {
	f.Add(uint64(1), 0.5)
	f.Add(uint64(2), 9.999)
	f.Add(uint64(3), 10.001)
	f.Add(uint64(4), 1e6)
	f.Add(uint64(5), -1.0)
	f.Fuzz(func(t *testing.T, seed uint64, mean float64) {
		if math.IsNaN(mean) || math.IsInf(mean, 0) {
			t.Skip()
		}
		if mean > 1e12 {
			mean = math.Mod(mean, 1e12)
		}
		p := New(seed)
		k := p.Poisson(mean)
		if k < 0 {
			t.Fatalf("Poisson(%g) = %d < 0", mean, k)
		}
		q := New(seed)
		if k2 := q.Poisson(mean); k2 != k {
			t.Fatalf("Poisson(%g) not deterministic: %d vs %d", mean, k, k2)
		}
	})
}

func BenchmarkPoissonPTRS(b *testing.B) {
	p := New(42)
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += p.Poisson(1e5)
	}
	benchSinkInt64 = sink
}

func BenchmarkExp(b *testing.B) {
	p := New(42)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += p.Exp()
	}
	benchSinkFloat = sink
}

var (
	benchSinkInt64 int64
	benchSinkFloat float64
)
