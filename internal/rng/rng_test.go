package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverge at step %d: %d != %d", i, av, bv)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams from distinct seeds collided %d/100 times", same)
	}
}

func TestReseed(t *testing.T) {
	a := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = a.Uint64()
	}
	a.Reseed(7)
	for i := range first {
		if got := a.Uint64(); got != first[i] {
			t.Fatalf("reseed did not reset stream at %d", i)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	p := New(3)
	f := func(nRaw uint16, _ uint8) bool {
		n := int(nRaw%1000) + 1
		v := p.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nSmallUniform(t *testing.T) {
	// Chi-square-style sanity check: counts for n=8 over many draws should
	// be close to uniform.
	p := New(99)
	const n, draws = 8, 80000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[p.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d too far from %f", i, c, want)
		}
	}
}

func TestPairDistinctAndUniform(t *testing.T) {
	p := New(5)
	const n = 6
	counts := map[[2]int]int{}
	const draws = 60000
	for i := 0; i < draws; i++ {
		a, b := p.Pair(n)
		if a == b {
			t.Fatalf("Pair returned identical indices %d", a)
		}
		if a < 0 || a >= n || b < 0 || b >= n {
			t.Fatalf("Pair out of range: (%d,%d)", a, b)
		}
		counts[[2]int{a, b}]++
	}
	want := float64(draws) / (n * (n - 1))
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("pair %v count %d too far from %f", k, c, want)
		}
	}
	if len(counts) != n*(n-1) {
		t.Fatalf("only %d of %d ordered pairs observed", len(counts), n*(n-1))
	}
}

func TestPermIsPermutation(t *testing.T) {
	p := New(11)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		perm := p.Perm(n)
		if len(perm) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range perm {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	p := New(13)
	xs := []int{1, 2, 2, 3, 5, 8, 13, 21}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	p.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: sum %d != %d", got, sum)
	}
}

func TestForkIndependence(t *testing.T) {
	a := New(17)
	b := a.Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("forked stream matched parent %d/100 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	p := New(23)
	for i := 0; i < 10000; i++ {
		v := p.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestBitBalance(t *testing.T) {
	p := New(29)
	ones := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		ones += int(p.Bit())
	}
	if math.Abs(float64(ones)-draws/2) > 5*math.Sqrt(draws/4) {
		t.Fatalf("bit bias: %d ones of %d", ones, draws)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	p := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += p.Uint64()
	}
	_ = sink
}

func BenchmarkPair(b *testing.B) {
	p := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		a, c := p.Pair(1024)
		sink += a + c
	}
	_ = sink
}
