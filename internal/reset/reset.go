// Package reset implements the PropagateReset protocol of Appendix C
// (Protocols 4–6), originally from Burman, Chen, Chen, Doty, Nowak,
// Severson, and Xu (PODC 2021), which ElectLeader_r uses as its hard-reset
// ("full reset") mechanism.
//
// A resetting agent carries a resetCount that propagates an infection: while
// the count is positive, every computing agent it initiates an interaction
// with becomes a resetter too, and interacting resetters adopt
// max(count_u, count_v) − 1. When the count hits zero the agent becomes
// dormant and waits out a delayTimer, after which it re-awakens as a fresh
// computing agent (Reset, Protocol 6); computing agents also wake dormant
// agents on contact, so awakening spreads as an epidemic.
//
// Corollary C.3: from a triggered configuration the population is fully
// dormant within O(n·log n) interactions w.h.p., and from a fully dormant
// configuration it reaches an awakening configuration within O(n·log n)
// interactions w.h.p.
//
// The package owns only the resetter-local state; role changes (who is
// Resetting versus computing) belong to the caller and are communicated via
// Outcome values, keeping this module reusable exactly like the paper's
// black-box usage.
package reset

import "math"

// Params holds the two timer ceilings of PropagateReset.
type Params struct {
	// RMax is the initial resetCount of a triggered agent (paper: Θ(log n),
	// concretely 60·log n in Lemma C.1; the constant is tunable here).
	RMax int32
	// DMax is the dormancy delay (paper: Θ(log n), with DMax = Ω(log n + RMax)).
	DMax int32
}

// DefaultParams returns parameters for a population of size n with the
// paper's asymptotics: RMax = cR·⌈ln n⌉ and DMax = 2·RMax. cR defaults to a
// value that keeps the infection alive for the full epidemic w.h.p. at
// simulation scales.
func DefaultParams(n int) Params {
	ln := int32(math.Ceil(math.Log(float64(n) + 1)))
	if ln < 1 {
		ln = 1
	}
	r := 20 * ln
	return Params{RMax: r, DMax: 2 * r}
}

// State is the per-agent local state of a resetting agent.
type State struct {
	// Count is the infection counter (resetCount). Positive: actively
	// spreading; zero: dormant.
	Count int32
	// Delay is the dormancy timer (delayTimer), armed at DMax when Count
	// reaches zero.
	Delay int32
}

// Triggered returns the state installed by TriggerReset (Protocol 5).
func Triggered(p Params) State { return State{Count: p.RMax, Delay: p.DMax} }

// Dormant reports whether the agent is dormant (waiting to re-awaken).
func (s State) Dormant() bool { return s.Count == 0 }

// Outcome tells the caller which role transition an endpoint underwent
// during a Step.
type Outcome uint8

const (
	// OutNone means the agent's role is unchanged.
	OutNone Outcome = iota
	// OutInfected means a computing agent became a resetter. Its State has
	// already been initialized by Step.
	OutInfected
	// OutAwaken means a resetter must execute Reset (Protocol 6): the caller
	// re-initializes it as a fresh computing agent (role Ranking with clean
	// AssignRanks state and a full countdown).
	OutAwaken
)

// Step applies PropagateReset (Protocol 4) to the ordered pair (u, v).
// uRes and vRes report whether each endpoint currently has role Resetting;
// following Protocol 1 line 1, callers invoke Step only when the initiator u
// is a resetter (uRes must be true). The State structs are mutated in place;
// the outcomes report infection and awakening so the caller can update
// roles. When an endpoint was not a resetter and is not infected, its State
// is ignored.
func Step(p Params, uRes bool, u *State, vRes bool, v *State) (uo, vo Outcome) {
	if !uRes {
		return OutNone, OutNone
	}
	uPrev, vPrev := u.Count, v.Count

	// Lines 1–2: infection of a computing responder.
	if u.Count > 0 && !vRes {
		vRes = true
		vo = OutInfected
		*v = State{Count: 0, Delay: p.DMax}
		vPrev = 1 // infection counts as "just became 0" if the max below is 0
	}

	// Lines 3–4: joint count decay.
	if vRes {
		m := u.Count - 1
		if v.Count-1 > m {
			m = v.Count - 1
		}
		if m < 0 {
			m = 0
		}
		u.Count, v.Count = m, m
	}

	// Lines 5–11: dormancy handling and awakening, sequentially for (u, v)
	// then (v, u); roles updated mid-loop exactly as the pseudocode implies.
	uIsRes, vIsRes := uRes, vRes
	type side struct {
		isRes *bool
		other *bool
		st    *State
		prev  int32
		out   *Outcome
	}
	sides := [2]side{
		{isRes: &uIsRes, other: &vIsRes, st: u, prev: uPrev, out: &uo},
		{isRes: &vIsRes, other: &uIsRes, st: v, prev: vPrev, out: &vo},
	}
	for _, s := range sides {
		if !*s.isRes || s.st.Count != 0 {
			continue
		}
		if s.prev > 0 {
			// resetCount just became 0: arm the dormancy timer.
			s.st.Delay = p.DMax
		} else if s.st.Delay > 0 {
			s.st.Delay--
		}
		if s.st.Delay <= 0 || !*s.other {
			// Reset(i): the agent re-awakens as a computing agent.
			*s.isRes = false
			*s.out = OutAwaken
		}
	}
	return uo, vo
}
