package reset

import (
	"math"
	"testing"

	"sspp/internal/rng"
)

// harness simulates a population running only PropagateReset, with a boolean
// role per agent, to validate the Appendix C guarantees in isolation.
type harness struct {
	p         Params
	resetting []bool
	st        []State
	awakened  int
}

func newHarness(n int, p Params) *harness {
	return &harness{p: p, resetting: make([]bool, n), st: make([]State, n)}
}

func (h *harness) trigger(i int) {
	h.resetting[i] = true
	h.st[i] = Triggered(h.p)
}

func (h *harness) interact(a, b int) {
	if !h.resetting[a] {
		return // Protocol 1 line 1: only called when the initiator resets.
	}
	uo, vo := Step(h.p, h.resetting[a], &h.st[a], h.resetting[b], &h.st[b])
	h.apply(a, uo)
	h.apply(b, vo)
}

func (h *harness) apply(i int, o Outcome) {
	switch o {
	case OutInfected:
		h.resetting[i] = true
	case OutAwaken:
		h.resetting[i] = false
		h.awakened++
	}
}

func (h *harness) countResetting() int {
	c := 0
	for _, r := range h.resetting {
		if r {
			c++
		}
	}
	return c
}

func (h *harness) fullyDormant() bool {
	for i, r := range h.resetting {
		if !r || !h.st[i].Dormant() {
			return false
		}
	}
	return true
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams(128)
	if p.RMax <= 0 || p.DMax < p.RMax {
		t.Fatalf("bad defaults: %+v", p)
	}
	small := DefaultParams(1)
	if small.RMax <= 0 {
		t.Fatalf("degenerate n: %+v", small)
	}
}

func TestTriggeredState(t *testing.T) {
	p := Params{RMax: 10, DMax: 20}
	s := Triggered(p)
	if s.Count != 10 || s.Delay != 20 {
		t.Fatalf("Triggered = %+v", s)
	}
	if s.Dormant() {
		t.Fatal("triggered state must not be dormant")
	}
	if (State{Count: 0, Delay: 5}).Dormant() != true {
		t.Fatal("count 0 must be dormant")
	}
}

func TestInfection(t *testing.T) {
	p := Params{RMax: 10, DMax: 20}
	u := Triggered(p)
	var v State
	uo, vo := Step(p, true, &u, false, &v)
	if vo != OutInfected {
		t.Fatalf("vo = %v, want OutInfected", vo)
	}
	if uo != OutNone {
		t.Fatalf("uo = %v, want OutNone", uo)
	}
	// Joint decay: both take max(10-1, 0-1, 0) = 9.
	if u.Count != 9 || v.Count != 9 {
		t.Fatalf("counts = %d,%d, want 9,9", u.Count, v.Count)
	}
}

func TestNoInfectionWhenDormant(t *testing.T) {
	p := Params{RMax: 10, DMax: 20}
	u := State{Count: 0, Delay: 5}
	var v State
	_, vo := Step(p, true, &u, false, &v)
	if vo == OutInfected {
		t.Fatal("dormant agent must not infect")
	}
}

func TestDormantWokenByComputingResponder(t *testing.T) {
	p := Params{RMax: 10, DMax: 20}
	u := State{Count: 0, Delay: 5}
	var v State
	uo, _ := Step(p, true, &u, false, &v)
	if uo != OutAwaken {
		t.Fatalf("uo = %v, want OutAwaken (computing partner wakes dormant)", uo)
	}
}

func TestDelayArmedWhenCountHitsZero(t *testing.T) {
	p := Params{RMax: 10, DMax: 20}
	u := State{Count: 1, Delay: 3}
	v := State{Count: 1, Delay: 3}
	Step(p, true, &u, true, &v)
	if u.Count != 0 || v.Count != 0 {
		t.Fatalf("counts = %d,%d, want 0,0", u.Count, v.Count)
	}
	if u.Delay != p.DMax || v.Delay != p.DMax {
		t.Fatalf("delays = %d,%d, want %d (armed on transition)", u.Delay, v.Delay, p.DMax)
	}
}

func TestDelayCountdownAndAwaken(t *testing.T) {
	p := Params{RMax: 10, DMax: 20}
	u := State{Count: 0, Delay: 2}
	v := State{Count: 0, Delay: 2}
	uo, vo := Step(p, true, &u, true, &v)
	if uo != OutNone || vo != OutNone {
		t.Fatalf("first step should only decrement: %v %v", uo, vo)
	}
	if u.Delay != 1 || v.Delay != 1 {
		t.Fatalf("delays = %d,%d, want 1,1", u.Delay, v.Delay)
	}
	uo, vo = Step(p, true, &u, true, &v)
	if uo != OutAwaken {
		t.Fatalf("uo = %v, want OutAwaken at delay 0", uo)
	}
	// Once u awakened (now computing), the sequential loop wakes v too.
	if vo != OutAwaken {
		t.Fatalf("vo = %v, want OutAwaken via epidemic", vo)
	}
}

func TestStepNonResetterInitiatorIsNoop(t *testing.T) {
	p := Params{RMax: 10, DMax: 20}
	u := State{Count: 5, Delay: 5}
	v := State{Count: 5, Delay: 5}
	uo, vo := Step(p, false, &u, true, &v)
	if uo != OutNone || vo != OutNone || u.Count != 5 || v.Count != 5 {
		t.Fatal("Step with non-resetting initiator must be a no-op")
	}
}

// TestFullCycle validates Corollary C.3 end to end: trigger one agent,
// everyone becomes resetting, then fully dormant within O(n log n), then all
// awaken within O(n log n).
func TestFullCycle(t *testing.T) {
	const n = 128
	for seed := uint64(0); seed < 5; seed++ {
		p := DefaultParams(n)
		h := newHarness(n, p)
		h.trigger(0)
		r := rng.New(seed)
		bound := uint64(200 * float64(n) * math.Log(n))

		// Phase 1: reach fully dormant with everyone resetting.
		var t1 uint64
		for ; t1 < bound && !h.fullyDormant(); t1++ {
			a, b := r.Pair(n)
			h.interact(a, b)
		}
		if !h.fullyDormant() {
			t.Fatalf("seed %d: not fully dormant after %d interactions (resetting=%d)",
				seed, t1, h.countResetting())
		}

		// Phase 2: everyone awakens.
		var t2 uint64
		for ; t2 < bound && h.countResetting() > 0; t2++ {
			a, b := r.Pair(n)
			h.interact(a, b)
		}
		if h.countResetting() != 0 {
			t.Fatalf("seed %d: %d agents still resetting after %d interactions",
				seed, h.countResetting(), t2)
		}
		if h.awakened != n {
			t.Fatalf("seed %d: awakened %d, want %d", seed, h.awakened, n)
		}
	}
}

// TestInfectionReachesAll checks that a single trigger infects the entire
// population before anyone awakens (the property RMax must be large enough
// to guarantee, per Lemma C.1).
func TestInfectionReachesAll(t *testing.T) {
	const n = 256
	for seed := uint64(0); seed < 5; seed++ {
		p := DefaultParams(n)
		h := newHarness(n, p)
		h.trigger(n / 2)
		r := rng.New(seed)
		bound := uint64(100 * float64(n) * math.Log(n))
		everyone := false
		for i := uint64(0); i < bound; i++ {
			a, b := r.Pair(n)
			h.interact(a, b)
			if h.countResetting() == n {
				everyone = true
				break
			}
			if h.awakened > 0 {
				t.Fatalf("seed %d: agent awakened before infection completed (%d resetting)",
					seed, h.countResetting())
			}
		}
		if !everyone {
			t.Fatalf("seed %d: infection incomplete (%d/%d)", seed, h.countResetting(), n)
		}
	}
}
