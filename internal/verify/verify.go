// Package verify implements StableVerify_r (Section 5, Protocol 2), the
// wrapper that turns DetectCollision_r's error reports into either a soft
// reset (re-initialize only the collision-detection state) or a hard reset
// (TriggerReset, destroying the whole configuration), following the
// probation mechanism of §3.2:
//
//   - Agents count down a probation timer (P_max = c_prob·(n/r)·log n).
//   - A ⊤ raised while the timer is zero means a long error-free period
//     preceded it; since genuine rank collisions are detected quickly
//     w.h.p., the error is attributed to a badly initialized message system
//     and only the detection layer is reset (generation++ mod 6, fresh
//     q0,DC, timer re-armed).
//   - A ⊤ raised while the timer is positive is treated as evidence of a
//     genuine collision (or of an inconsistency that survived a previous
//     soft reset), so a full reset is triggered.
//   - Soft resets spread as an epidemic: an agent one generation behind a
//     partner, with its own timer at zero, adopts the successor generation
//     and soft-resets itself; any other generation difference forces a hard
//     reset. Counting generations modulo 6 suffices (Lemma 6.1).
package verify

import (
	"math"

	"sspp/internal/coin"
	"sspp/internal/detect"
	"sspp/internal/sim"
)

// Generations is the size of the generation ring ℤ₆.
const Generations = 6

// Params holds the StableVerify_r configuration.
type Params struct {
	// PMax is the probation-timer ceiling (c_prob·(n/r)·log n).
	PMax int32
	// Detect is the DetectCollision_r configuration.
	Detect *detect.Params
	// HardOnly disables the soft-reset mechanism: every ⊤ triggers a full
	// reset, as a protocol without §3.2 would do. This is the ablation knob
	// of experiment A1 — with it set, message-layer faults destroy correct
	// rankings.
	HardOnly bool
}

// NewParams builds StableVerify_r parameters for population size n and
// trade-off parameter r with default constants.
func NewParams(n, r int) Params {
	return Params{PMax: DefaultPMax(n, r), Detect: detect.NewParams(n, r)}
}

// DefaultPMax returns the default probation ceiling c_prob·(n/r)·log n. The
// constant is chosen so that detection of a genuine collision (Lemma E.1(b))
// comfortably precedes probation expiry at simulation scales.
func DefaultPMax(n, r int) int32 {
	if r < 1 {
		r = 1
	}
	v := 24 * float64(n) / float64(r) * math.Log(float64(n)+1)
	if v < 8 {
		v = 8
	}
	return int32(math.Ceil(v))
}

// Action is a role transition StableVerify_r requests from its caller.
type Action uint8

const (
	// ActNone requests nothing.
	ActNone Action = iota
	// ActHardReset requests TriggerReset on the agent (Protocol 5).
	ActHardReset
)

// State is the per-agent local state of StableVerify_r (the qSV component of
// ElectLeader_r): the generation counter, the probation timer and the
// embedded DetectCollision_r state.
type State struct {
	// Generation is the soft-reset generation in ℤ₆.
	Generation uint8
	// Probation is the remaining probation timer.
	Probation int32
	// DC is the DetectCollision_r sub-state.
	DC *detect.State
}

// InitState returns q0,SV for an agent of the given rank: generation 0, a
// full probation timer (a freshly started verifier is on probation, so early
// errors cause a safe full reset, §3.2), and a clean q0,DC.
func InitState(p Params, rank int32) *State {
	return ReinitInto(p, rank, nil)
}

// ReinitInto resets s to q0,SV for rank, reusing the embedded detection
// buffers; a nil s allocates fresh (InitState). Role-transition hot paths use
// this to recycle the O(g²) detection state instead of re-allocating it.
func ReinitInto(p Params, rank int32, s *State) *State {
	if s == nil {
		s = &State{}
	}
	s.Generation = 0
	s.Probation = p.PMax
	s.DC = detect.ReinitInto(p.Detect, rank, s.DC)
	return s
}

// softReset re-initializes only the collision-detection layer: the agent
// joins generation gen, re-arms its probation timer, and rebuilds q0,DC from
// its (unchanged) rank, reusing the detection buffers in place.
func (s *State) softReset(p Params, rank int32, gen uint8) {
	s.Generation = gen % Generations
	s.Probation = p.PMax
	s.DC = detect.ReinitInto(p.Detect, rank, s.DC)
}

// Event names recorded by Interact.
const (
	// EventTop counts agents observed in ⊤ (per endpoint, per interaction).
	EventTop = "verify.top"
	// EventSoftReset counts soft resets (both self-triggered and epidemic).
	EventSoftReset = "verify.soft_reset"
	// EventHardReset counts hard-reset requests issued.
	EventHardReset = "verify.hard_reset"
)

// Interact applies StableVerify_r (Protocol 2) to the ordered pair of
// verifiers with the given read-only ranks. Samplers provide signature
// randomness for the embedded DetectCollision_r. Events (optional) receive
// EventTop/EventSoftReset/EventHardReset at time t. The returned actions
// tell the caller which agents must undergo a full reset.
func Interact(
	p Params,
	uRank int32, u *State,
	vRank int32, v *State,
	su, sv coin.Sampler,
	sc *detect.Scratch,
	ev *sim.Events, t uint64,
) (uAct, vAct Action) {
	// Lines 1–2: probation timers tick down on every interaction.
	if u.Probation > 0 {
		u.Probation--
	}
	if v.Probation > 0 {
		v.Probation--
	}

	// Lines 3–9: same-generation verifiers run collision detection and
	// handle any ⊤ it produces; the interaction ends here either way.
	if u.Generation == v.Generation {
		detect.Interact(p.Detect, uRank, u.DC, vRank, v.DC, su, sv, sc)
		uAct = handleTop(p, uRank, u, ev, t)
		vAct = handleTop(p, vRank, v, ev, t)
		return uAct, vAct
	}

	// Lines 10–12: soft reset via epidemic — an off-probation agent exactly
	// one generation behind adopts the successor generation.
	if u.Probation == 0 && (u.Generation+1)%Generations == v.Generation {
		u.softReset(p, uRank, v.Generation)
		ev.IncAt(EventSoftReset, t)
		return ActNone, ActNone
	}
	if v.Probation == 0 && (v.Generation+1)%Generations == u.Generation {
		v.softReset(p, vRank, u.Generation)
		ev.IncAt(EventSoftReset, t)
		return ActNone, ActNone
	}

	// Line 13: generations differ but no soft reset is permissible.
	ev.IncAt(EventHardReset, t)
	return ActHardReset, ActNone
}

// handleTop implements lines 5–8 for one endpoint: an agent in ⊤ soft-resets
// when off probation and requests a hard reset otherwise (always hard in the
// HardOnly ablation).
func handleTop(p Params, rank int32, s *State, ev *sim.Events, t uint64) Action {
	if s.DC == nil || !s.DC.Err {
		return ActNone
	}
	ev.IncAt(EventTop, t)
	if s.Probation == 0 && !p.HardOnly {
		s.softReset(p, rank, s.Generation+1)
		ev.IncAt(EventSoftReset, t)
		return ActNone
	}
	ev.IncAt(EventHardReset, t)
	return ActHardReset
}
