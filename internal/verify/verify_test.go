package verify

import (
	"testing"

	"sspp/internal/coin"
	"sspp/internal/detect"
	"sspp/internal/rng"
	"sspp/internal/sim"
)

// env bundles the fixtures shared by the tests.
type env struct {
	p      Params
	sample coin.Sampler
	sc     *detect.Scratch
	ev     *sim.Events
}

func newEnv(n, r int) *env {
	return &env{
		p:      NewParams(n, r),
		sample: coin.FromPRNG(rng.New(1)),
		sc:     detect.NewScratch(),
		ev:     sim.NewEvents(),
	}
}

func (e *env) interact(uRank int32, u *State, vRank int32, v *State) (Action, Action) {
	return Interact(e.p, uRank, u, vRank, v, e.sample, e.sample, e.sc, e.ev, 0)
}

func TestInitState(t *testing.T) {
	e := newEnv(8, 4)
	s := InitState(e.p, 3)
	if s.Generation != 0 {
		t.Fatalf("generation = %d, want 0", s.Generation)
	}
	if s.Probation != e.p.PMax {
		t.Fatalf("probation = %d, want %d (fresh verifiers are on probation)", s.Probation, e.p.PMax)
	}
	if s.DC == nil || s.DC.Err {
		t.Fatal("DC must start clean")
	}
}

func TestProbationDecrements(t *testing.T) {
	e := newEnv(8, 4)
	u, v := InitState(e.p, 1), InitState(e.p, 2)
	p0 := u.Probation
	e.interact(1, u, 2, v)
	if u.Probation != p0-1 || v.Probation != p0-1 {
		t.Fatalf("probation = %d/%d, want %d", u.Probation, v.Probation, p0-1)
	}
	u.Probation, v.Probation = 0, 0
	e.interact(1, u, 2, v)
	if u.Probation != 0 {
		t.Fatal("probation must floor at 0")
	}
}

func TestSameGenerationRunsDetection(t *testing.T) {
	e := newEnv(8, 4)
	u, v := InitState(e.p, 1), InitState(e.p, 1) // duplicate rank!
	uAct, vAct := e.interact(1, u, 1, v)
	// Fresh verifiers are on probation, so the ⊤ must hard-reset.
	if uAct != ActHardReset || vAct != ActHardReset {
		t.Fatalf("actions = %v/%v, want hard resets", uAct, vAct)
	}
	if e.ev.Count(EventTop) != 2 || e.ev.Count(EventHardReset) != 2 {
		t.Fatalf("events: %s", e.ev)
	}
}

func TestTopOffProbationSoftResets(t *testing.T) {
	e := newEnv(8, 4)
	u, v := InitState(e.p, 1), InitState(e.p, 1)
	u.Probation, v.Probation = 1, 1 // will hit 0 during the interaction
	uAct, vAct := e.interact(1, u, 1, v)
	if uAct != ActNone || vAct != ActNone {
		t.Fatalf("actions = %v/%v, want none (soft reset)", uAct, vAct)
	}
	if u.Generation != 1 || v.Generation != 1 {
		t.Fatalf("generations = %d/%d, want 1", u.Generation, v.Generation)
	}
	if u.Probation != e.p.PMax || v.Probation != e.p.PMax {
		t.Fatal("soft reset must re-arm probation")
	}
	if u.DC.Err || v.DC.Err {
		t.Fatal("soft reset must clear ⊤")
	}
	if e.ev.Count(EventSoftReset) != 2 {
		t.Fatalf("events: %s", e.ev)
	}
}

func TestGenerationEpidemic(t *testing.T) {
	e := newEnv(8, 4)
	u, v := InitState(e.p, 1), InitState(e.p, 2)
	v.Generation = 1
	u.Probation = 1 // hits 0 during the interaction; v arbitrary
	uAct, vAct := e.interact(1, u, 2, v)
	if uAct != ActNone || vAct != ActNone {
		t.Fatalf("actions = %v/%v, want none", uAct, vAct)
	}
	if u.Generation != 1 {
		t.Fatalf("u.generation = %d, want 1 (adopted)", u.Generation)
	}
	if u.Probation != e.p.PMax {
		t.Fatal("epidemic soft reset must re-arm probation")
	}
}

func TestGenerationWraparound(t *testing.T) {
	e := newEnv(8, 4)
	u, v := InitState(e.p, 1), InitState(e.p, 2)
	u.Generation, v.Generation = 5, 0 // 5+1 ≡ 0 (mod 6)
	u.Probation = 1
	uAct, _ := e.interact(1, u, 2, v)
	if uAct != ActNone || u.Generation != 0 {
		t.Fatalf("wraparound failed: action %v, generation %d", uAct, u.Generation)
	}
}

func TestBehindOnProbationHardResets(t *testing.T) {
	e := newEnv(8, 4)
	u, v := InitState(e.p, 1), InitState(e.p, 2)
	v.Generation = 1 // u behind by one but on probation
	uAct, vAct := e.interact(1, u, 2, v)
	if uAct != ActHardReset {
		t.Fatalf("uAct = %v, want hard reset", uAct)
	}
	if vAct != ActNone {
		t.Fatalf("vAct = %v, want none (Protocol 2 line 13 resets u only)", vAct)
	}
}

func TestGenerationGapHardResets(t *testing.T) {
	e := newEnv(8, 4)
	u, v := InitState(e.p, 1), InitState(e.p, 2)
	u.Generation, v.Generation = 0, 2
	u.Probation, v.Probation = 0, 0
	uAct, _ := e.interact(1, u, 2, v)
	if uAct != ActHardReset {
		t.Fatalf("gap of 2 must hard-reset, got %v", uAct)
	}
}

func TestCleanPairNoAction(t *testing.T) {
	e := newEnv(8, 4)
	u, v := InitState(e.p, 1), InitState(e.p, 2)
	for i := 0; i < 1000; i++ {
		uAct, vAct := e.interact(1, u, 2, v)
		if uAct != ActNone || vAct != ActNone {
			t.Fatalf("clean pair produced action at step %d", i)
		}
	}
	if e.ev.Count(EventTop) != 0 {
		t.Fatal("clean pair raised ⊤")
	}
}

// TestSoftResetRepairsTamperedMessages is the §3.2 scenario in miniature:
// correct ranking, zero probation, one corrupted circulating message. The ⊤
// must trigger a soft reset (not hard), after which the generation-1 states
// are clean and no further errors occur.
func TestSoftResetRepairsTamperedMessages(t *testing.T) {
	const n = 8
	e := newEnv(n, 4)
	states := make([]*State, n)
	for i := range states {
		states[i] = InitState(e.p, int32(i+1))
		states[i].Probation = 0
	}
	if !detect.TamperForeignMessage(e.p.Detect, 1, states[0].DC) {
		t.Fatal("tamper failed")
	}
	r := rng.New(42)
	hardResets := 0
	for i := 0; i < 3_000_000; i++ {
		a, b := r.Pair(n)
		ua, va := e.interact(int32(a+1), states[a], int32(b+1), states[b])
		if ua == ActHardReset || va == ActHardReset {
			hardResets++
		}
	}
	if hardResets > 0 {
		t.Fatalf("%d hard resets on a correct ranking with corrupted messages", hardResets)
	}
	if e.ev.Count(EventSoftReset) == 0 {
		t.Fatal("corruption never triggered a soft reset")
	}
	// All agents must have converged to a common generation with clean DC.
	gen := states[0].Generation
	for i, s := range states {
		if s.Generation != gen {
			t.Fatalf("agent %d in generation %d, others in %d", i, s.Generation, gen)
		}
		if s.DC.Err {
			t.Fatalf("agent %d still in ⊤", i)
		}
	}
}

// TestDuplicateRankAlwaysEscalates: with a genuine rank collision and zero
// probation timers, soft resets occur but the inconsistency reappears until
// a hard reset is finally requested (the probation mechanism's escalation).
func TestDuplicateRankAlwaysEscalates(t *testing.T) {
	const n = 8
	e := newEnv(n, 4)
	ranks := []int32{1, 1, 3, 4, 5, 6, 7, 8}
	states := make([]*State, n)
	for i := range states {
		states[i] = InitState(e.p, ranks[i])
		states[i].Probation = 0
	}
	r := rng.New(7)
	sawHard := false
	for i := 0; i < 5_000_000 && !sawHard; i++ {
		a, b := r.Pair(n)
		ua, va := e.interact(ranks[a], states[a], ranks[b], states[b])
		if ua == ActHardReset || va == ActHardReset {
			sawHard = true
		}
	}
	if !sawHard {
		t.Fatal("duplicate rank never escalated to a hard reset")
	}
}

func TestDefaultPMax(t *testing.T) {
	if DefaultPMax(64, 8) <= 0 {
		t.Fatal("PMax must be positive")
	}
	if DefaultPMax(2, 0) < 8 {
		t.Fatal("degenerate inputs must clamp")
	}
	if DefaultPMax(1024, 1) <= DefaultPMax(1024, 512) {
		t.Fatal("PMax must scale with n/r")
	}
}
