// Package trace renders population-composition timelines: how many agents
// are resetting / ranking / verifying over the course of a run, when resets
// strike, and when the leader count collapses to one. The output is a plain
// ASCII timeline suitable for terminals and logs; cmd/electsim -trace and
// the examples use it to make the phase structure of ElectLeader_r visible
// (reset wave → dormancy → ranking → countdown → verification).
package trace

import (
	"fmt"
	"io"
	"strings"
)

// Row is one timeline sample.
type Row struct {
	// T is the interaction count at the sample.
	T uint64
	// Resetting, Ranking, Verifying are the role counts.
	Resetting, Ranking, Verifying int
	// Leaders is the number of agents currently outputting "leader".
	Leaders int
	// Marks holds single-letter annotations for events since the previous
	// sample (e.g. "H" hard reset, "S" soft reset, "T" ⊤ raised).
	Marks string
	// Safe reports whether the configuration is in the safe set.
	Safe bool
}

// Timeline accumulates rows for a population of size n.
type Timeline struct {
	n    int
	rows []Row
}

// New returns an empty timeline for a population of size n. It panics if
// n <= 0.
func New(n int) *Timeline {
	if n <= 0 {
		panic("trace: population size must be positive")
	}
	return &Timeline{n: n}
}

// Add appends a sample.
func (t *Timeline) Add(r Row) { t.rows = append(t.rows, r) }

// Len returns the number of samples recorded.
func (t *Timeline) Len() int { return len(t.rows) }

// Rows returns the recorded samples (shared slice; treat as read-only).
func (t *Timeline) Rows() []Row { return t.rows }

// Render writes the timeline as one line per sample:
//
//	t=1,234  [RRRRAAAAAVVVV....]  leaders=3  HS
//
// The bar uses width characters: 'R' resetting, 'A' ranking (assigning),
// 'V' verifying, '*' for the safe set. Bars are proportional to the role
// counts, rounded with largest-remainder so they always fill exactly.
func (t *Timeline) Render(w io.Writer, width int) {
	if width <= 0 {
		width = 40
	}
	fmt.Fprintf(w, "population timeline (n=%d): R=resetting A=ranking V=verifying, *=safe set\n", t.n)
	for _, r := range t.rows {
		bar := t.bar(r, width)
		marks := r.Marks
		if marks != "" {
			marks = "  " + marks
		}
		fmt.Fprintf(w, "t=%-12s [%s] leaders=%-4d%s\n", group(r.T), bar, r.Leaders, marks)
	}
}

// bar renders the stacked role bar for one row.
func (t *Timeline) bar(r Row, width int) string {
	if r.Safe {
		return strings.Repeat("*", width)
	}
	counts := [3]int{r.Resetting, r.Ranking, r.Verifying}
	letters := [3]byte{'R', 'A', 'V'}
	total := counts[0] + counts[1] + counts[2]
	if total <= 0 {
		return strings.Repeat(".", width)
	}
	// Largest-remainder apportionment of width among the three roles.
	var cells [3]int
	var rem [3]float64
	used := 0
	for i, c := range counts {
		exact := float64(c) * float64(width) / float64(total)
		cells[i] = int(exact)
		rem[i] = exact - float64(cells[i])
		used += cells[i]
	}
	for used < width {
		best := 0
		for i := 1; i < 3; i++ {
			if rem[i] > rem[best] {
				best = i
			}
		}
		cells[best]++
		rem[best] = -1
		used++
	}
	var b strings.Builder
	b.Grow(width)
	for i, c := range cells {
		for k := 0; k < c; k++ {
			b.WriteByte(letters[i])
		}
	}
	return b.String()
}

// Summary returns a one-line digest: sample count, first safe sample, and
// the total marks seen.
func (t *Timeline) Summary() string {
	firstSafe := "-"
	marks := map[rune]int{}
	for _, r := range t.rows {
		if r.Safe && firstSafe == "-" {
			firstSafe = group(r.T)
		}
		for _, m := range r.Marks {
			marks[m]++
		}
	}
	var parts []string
	for _, m := range []rune{'H', 'S', 'T'} {
		if marks[m] > 0 {
			parts = append(parts, fmt.Sprintf("%c×%d", m, marks[m]))
		}
	}
	events := strings.Join(parts, " ")
	if events == "" {
		events = "none"
	}
	return fmt.Sprintf("%d samples, first safe at t=%s, events: %s", len(t.rows), firstSafe, events)
}

// group formats v with thousands separators.
func group(v uint64) string {
	s := fmt.Sprintf("%d", v)
	if len(s) <= 3 {
		return s
	}
	var b strings.Builder
	lead := len(s) % 3
	if lead > 0 {
		b.WriteString(s[:lead])
		b.WriteByte(',')
	}
	for i := lead; i < len(s); i += 3 {
		b.WriteString(s[i : i+3])
		if i+3 < len(s) {
			b.WriteByte(',')
		}
	}
	return b.String()
}
