package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}

func TestAddAndLen(t *testing.T) {
	tl := New(8)
	if tl.Len() != 0 {
		t.Fatal("fresh timeline not empty")
	}
	tl.Add(Row{T: 1, Ranking: 8})
	tl.Add(Row{T: 2, Verifying: 8})
	if tl.Len() != 2 || len(tl.Rows()) != 2 {
		t.Fatalf("Len = %d", tl.Len())
	}
}

func TestBarProportions(t *testing.T) {
	tl := New(8)
	bar := tl.bar(Row{Resetting: 4, Ranking: 2, Verifying: 2}, 8)
	if bar != "RRRRAAVV" {
		t.Fatalf("bar = %q, want RRRRAAVV", bar)
	}
}

func TestBarAlwaysFillsWidthProperty(t *testing.T) {
	tl := New(100)
	f := func(a, b, c uint8, wRaw uint8) bool {
		w := int(wRaw%60) + 1
		bar := tl.bar(Row{Resetting: int(a), Ranking: int(b), Verifying: int(c)}, w)
		return len(bar) == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBarSafeAndEmpty(t *testing.T) {
	tl := New(4)
	if got := tl.bar(Row{Safe: true}, 5); got != "*****" {
		t.Fatalf("safe bar = %q", got)
	}
	if got := tl.bar(Row{}, 5); got != "....." {
		t.Fatalf("empty bar = %q", got)
	}
}

func TestRender(t *testing.T) {
	tl := New(4)
	tl.Add(Row{T: 10, Resetting: 4, Marks: "H"})
	tl.Add(Row{T: 2000, Verifying: 4, Leaders: 1, Safe: true})
	var buf bytes.Buffer
	tl.Render(&buf, 8)
	out := buf.String()
	for _, want := range []string{"RRRRRRRR", "********", "leaders=1", "H", "t=2,000"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderDefaultWidth(t *testing.T) {
	tl := New(4)
	tl.Add(Row{T: 1, Ranking: 4})
	var buf bytes.Buffer
	tl.Render(&buf, 0)
	if !strings.Contains(buf.String(), strings.Repeat("A", 40)) {
		t.Fatal("default width not applied")
	}
}

func TestSummary(t *testing.T) {
	tl := New(4)
	tl.Add(Row{T: 5, Marks: "HT"})
	tl.Add(Row{T: 1500, Safe: true, Marks: "S"})
	s := tl.Summary()
	for _, want := range []string{"2 samples", "first safe at t=1,500", "H×1", "S×1", "T×1"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q: %s", want, s)
		}
	}
	empty := New(4)
	if !strings.Contains(empty.Summary(), "events: none") {
		t.Fatal("empty summary should report no events")
	}
}

func TestGroup(t *testing.T) {
	cases := map[uint64]string{1: "1", 999: "999", 1000: "1,000", 123456789: "123,456,789"}
	for v, want := range cases {
		if got := group(v); got != want {
			t.Errorf("group(%d) = %q, want %q", v, got, want)
		}
	}
}
