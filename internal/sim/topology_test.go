package sim

import (
	"testing"

	"sspp/internal/graph"
	"sspp/internal/rng"
)

// mustRing builds a ring graph or fails the test.
func mustRing(t testing.TB, n int) *graph.Graph {
	t.Helper()
	g, err := graph.Ring(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestEdgeSamplerDealsGraphEdges: every dealt pair is a directed edge of
// the graph, and the distribution covers all edges.
func TestEdgeSamplerDealsGraphEdges(t *testing.T) {
	const n = 8
	g := mustRing(t, n)
	allowed := make(map[[2]int]bool, g.M())
	for i := 0; i < g.M(); i++ {
		a, b := g.Edge(i)
		allowed[[2]int{a, b}] = true
	}
	es := NewEdgeSampler(g, rng.New(5))
	seen := make(map[[2]int]int)
	for i := 0; i < 4000; i++ {
		a, b := es.Pair(n)
		if !allowed[[2]int{a, b}] {
			t.Fatalf("pair (%d, %d) is not a ring edge", a, b)
		}
		seen[[2]int{a, b}]++
	}
	if len(seen) != g.M() {
		t.Fatalf("only %d of %d edges sampled", len(seen), g.M())
	}
}

// TestEdgeRecorderRoundTrip: a schedule recorded from an EdgeSampler is
// stored as edge indices and replays to the identical pair sequence.
func TestEdgeRecorderRoundTrip(t *testing.T) {
	const n = 12
	g := mustRing(t, n)
	rec := NewRecorder(NewEdgeSampler(g, rng.New(9)))
	var pairs [][2]int
	for i := 0; i < 500; i++ {
		a, b := rec.Pair(n)
		pairs = append(pairs, [2]int{a, b})
	}
	recording := rec.Recording()
	if !recording.EdgeIndexed() {
		t.Fatal("topology schedule recorded as explicit pairs")
	}
	if recording.Len() != len(pairs) {
		t.Fatalf("recording holds %d interactions, dealt %d", recording.Len(), len(pairs))
	}
	replay := recording.Replay()
	for i, want := range pairs {
		a, b := replay.Pair(n)
		if a != want[0] || b != want[1] {
			t.Fatalf("replayed pair %d = (%d, %d), want (%d, %d)", i, a, b, want[0], want[1])
		}
	}
	// Wrap-around replays the same schedule again.
	a, b := replay.Pair(n)
	if a != pairs[0][0] || b != pairs[0][1] {
		t.Fatalf("wrap-around pair = (%d, %d), want (%d, %d)", a, b, pairs[0][0], pairs[0][1])
	}
}

// TestPairRecorderStillPairMode: recording a non-topology scheduler keeps
// the explicit-pair format.
func TestPairRecorderStillPairMode(t *testing.T) {
	rec := NewRecorder(rng.New(3))
	rec.Pair(8)
	if rec.Recording().EdgeIndexed() {
		t.Fatal("uniform schedule recorded as edge indices")
	}
	if rec.Recording().Len() != 1 {
		t.Fatalf("Len = %d, want 1", rec.Recording().Len())
	}
}

// BenchmarkUniformPair is the complete-topology fast path: the plain PRNG
// pair draw every pre-topology run used, unchanged by the topology layer.
func BenchmarkUniformPair(b *testing.B) {
	src := rng.New(1)
	for i := 0; i < b.N; i++ {
		src.Pair(256)
	}
}

// BenchmarkEdgeSamplerPair is the non-complete path: one bounded draw plus
// an edge-list lookup.
func BenchmarkEdgeSamplerPair(b *testing.B) {
	es := NewEdgeSampler(mustRing(b, 256), rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		es.Pair(256)
	}
}
