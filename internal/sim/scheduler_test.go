package sim

import (
	"math"
	"testing"
	"testing/quick"

	"sspp/internal/rng"
)

func TestWeightedPairDistinct(t *testing.T) {
	w := NewZipf(rng.New(1), 16, 1.0)
	for i := 0; i < 20000; i++ {
		a, b := w.Pair(16)
		if a == b {
			t.Fatal("identical pair")
		}
		if a < 0 || a >= 16 || b < 0 || b >= 16 {
			t.Fatalf("out of range: (%d,%d)", a, b)
		}
	}
}

func TestWeightedSkew(t *testing.T) {
	const n = 16
	w := NewZipf(rng.New(2), n, 1.0)
	counts := make([]int, n)
	const draws = 200000
	for i := 0; i < draws; i++ {
		a, b := w.Pair(n)
		counts[a]++
		counts[b]++
	}
	// Agent 0's rate should be roughly n·H_n⁻¹ ≈ 4.7× agent 15's.
	ratio := float64(counts[0]) / float64(counts[n-1])
	if ratio < 3 {
		t.Fatalf("skew too weak: ratio %.2f", ratio)
	}
	// Expected ratio for Zipf s=1 between ranks 1 and 16 is 16 (modulo the
	// distinct-pair redraw); allow a broad band.
	if ratio > 30 {
		t.Fatalf("skew implausibly strong: ratio %.2f", ratio)
	}
}

func TestWeightedUniformWeightsMatchUniform(t *testing.T) {
	const n = 8
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 1
	}
	w := NewWeighted(rng.New(3), weights)
	counts := make([]int, n)
	const draws = 80000
	for i := 0; i < draws; i++ {
		a, _ := w.Pair(n)
		counts[a]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("agent %d count %d too far from uniform %f", i, c, want)
		}
	}
}

func TestWeightedDegenerateWeights(t *testing.T) {
	w := NewWeighted(rng.New(4), []float64{0, 0, 0, -1})
	for i := 0; i < 1000; i++ {
		a, b := w.Pair(4)
		if a == b || a < 0 || a >= 4 || b < 0 || b >= 4 {
			t.Fatal("degenerate weights must fall back to uniform")
		}
	}
}

func TestWeightedDrawInRangeProperty(t *testing.T) {
	f := func(seed uint64, sRaw uint8) bool {
		n := 4 + int(seed%13)
		s := float64(sRaw%30) / 10
		w := NewZipf(rng.New(seed), n, s)
		for i := 0; i < 50; i++ {
			a, b := w.Pair(n)
			if a == b || a < 0 || a >= n || b < 0 || b >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchMatchesPRNGPairStream(t *testing.T) {
	const n = 24
	ref := rng.New(7)
	b := NewBatch(rng.New(7), 37) // odd block size: exercises refill offsets
	for i := 0; i < 10_000; i++ {
		ra, rb := ref.Pair(n)
		ba, bb := b.Pair(n)
		if ra != ba || rb != bb {
			t.Fatalf("pair %d: PRNG (%d,%d) vs batch (%d,%d)", i, ra, rb, ba, bb)
		}
	}
}

func TestBatchPopulationChangeDiscardsBlock(t *testing.T) {
	b := NewBatch(rng.New(8), 16)
	b.Pair(10)
	for i := 0; i < 100; i++ {
		a, c := b.Pair(4) // shrink mid-block: must re-draw, stay in range
		if a == c || a < 0 || a >= 4 || c < 0 || c >= 4 {
			t.Fatalf("invalid pair (%d,%d) after population change", a, c)
		}
	}
}

func TestRecorderCapturesAndReplays(t *testing.T) {
	const n = 9
	rec := NewRecorder(rng.New(9))
	var pairs [][2]int
	for i := 0; i < 500; i++ {
		a, b := rec.Pair(n)
		pairs = append(pairs, [2]int{a, b})
	}
	if rec.Recording().Len() != 500 {
		t.Fatalf("recording holds %d pairs", rec.Recording().Len())
	}
	replay := rec.Recording().Replay()
	for i, want := range pairs {
		a, b := replay.Pair(n)
		if a != want[0] || b != want[1] {
			t.Fatalf("replay pair %d = (%d,%d), want (%d,%d)", i, a, b, want[0], want[1])
		}
	}
	// Exhausted: wraps to the start.
	a, b := replay.Pair(n)
	if a != pairs[0][0] || b != pairs[0][1] {
		t.Fatalf("wrap-around dealt (%d,%d), want (%d,%d)", a, b, pairs[0][0], pairs[0][1])
	}
}

func TestReplaySmallerPopulationFoldsPairs(t *testing.T) {
	rec := NewRecorder(rng.New(10))
	for i := 0; i < 64; i++ {
		rec.Pair(32)
	}
	replay := rec.Recording().Replay()
	for i := 0; i < 64; i++ {
		a, b := replay.Pair(5)
		if a == b || a < 0 || a >= 5 || b < 0 || b >= 5 {
			t.Fatalf("folded pair (%d,%d) invalid for n=5", a, b)
		}
	}
}

func TestReplayEmptyRecordingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	(&Recording{}).Replay().Pair(4)
}

func TestRunSchedAndStepsSched(t *testing.T) {
	p := &countdownProto{n: 8, correctAt: 50}
	res := RunSched(p, NewZipf(rng.New(5), 8, 0.5), Options{MaxInteractions: 1000, CheckEvery: 1})
	if !res.Stabilized {
		t.Fatal("weighted run did not stabilize")
	}
	q := &countdownProto{n: 8}
	StepsSched(q, NewZipf(rng.New(6), 8, 0.5), 77)
	if q.t != 77 {
		t.Fatalf("StepsSched performed %d interactions, want 77", q.t)
	}
}
