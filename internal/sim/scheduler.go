// scheduler.go abstracts the pair scheduler. The paper's model (§1.1) is
// the uniform scheduler — every ordered pair equally likely — which
// *rng.PRNG implements directly. The weighted scheduler below models
// heterogeneous contact rates (e.g. well-mixed chemical solutions with
// unequal diffusion, or devices with unequal duty cycles) and powers the
// robustness extension T16: the paper's guarantees are proved for the
// uniform case; the experiment probes how gracefully stabilization degrades
// away from it.

package sim

import (
	"math"

	"sspp/internal/rng"
)

// Scheduler draws ordered pairs of distinct agents in [0, n).
type Scheduler interface {
	Pair(n int) (a, b int)
}

// *rng.PRNG is the uniform scheduler of the population model.
var _ Scheduler = (*rng.PRNG)(nil)

// Weighted is a scheduler that picks each endpoint independently with fixed
// per-agent probabilities (re-drawing identical pairs), modelling agents
// with heterogeneous interaction rates.
type Weighted struct {
	r   *rng.PRNG
	cum []float64 // cumulative weights, cum[n-1] == 1
}

// NewWeighted builds a weighted scheduler from non-negative per-agent
// weights (at least two positive entries). The slice is not retained.
func NewWeighted(r *rng.PRNG, weights []float64) *Weighted {
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		// Degenerate input: fall back to uniform.
		for i := range cum {
			cum[i] = float64(i+1) / float64(len(cum))
		}
		total = 1
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Weighted{r: r, cum: cum}
}

// NewZipf builds a weighted scheduler with Zipf-like weights
// w_i ∝ 1/(i+1)^s. s = 0 is uniform; larger s concentrates interactions on
// low-index agents.
func NewZipf(r *rng.PRNG, n int, s float64) *Weighted {
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), s)
	}
	return NewWeighted(r, weights)
}

// Pair draws an ordered pair of distinct agents.
func (w *Weighted) Pair(n int) (a, b int) {
	if n > len(w.cum) {
		n = len(w.cum)
	}
	a = w.draw()
	b = a
	for b == a {
		b = w.draw()
	}
	if a >= n {
		a %= n
	}
	if b >= n || b == a {
		b = (a + 1) % n
	}
	return a, b
}

// draw samples one index by CDF inversion (binary search).
func (w *Weighted) draw() int {
	x := w.r.Float64()
	lo, hi := 0, len(w.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if w.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// RunSched is Run with an arbitrary scheduler.
func RunSched(p Protocol, sched Scheduler, opt Options) Result {
	return runWith(p, sched, opt)
}

// StepsSched performs exactly k interactions under an arbitrary scheduler.
func StepsSched(p Protocol, sched Scheduler, k uint64) {
	n := p.N()
	for i := uint64(0); i < k; i++ {
		a, b := sched.Pair(n)
		p.Interact(a, b)
	}
}
