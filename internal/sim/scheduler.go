// scheduler.go abstracts the pair scheduler. The paper's model (§1.1) is
// the uniform scheduler — every ordered pair equally likely — which
// *rng.PRNG implements directly. The weighted scheduler below models
// heterogeneous contact rates (e.g. well-mixed chemical solutions with
// unequal diffusion, or devices with unequal duty cycles) and powers the
// robustness extension T16: the paper's guarantees are proved for the
// uniform case; the experiment probes how gracefully stabilization degrades
// away from it. Batch amortizes draw overhead for throughput-bound sweeps,
// and Recorder/Recording capture exact schedules for replay.

package sim

import (
	"fmt"
	"math"

	"sspp/internal/graph"
	"sspp/internal/rng"
)

// Scheduler draws ordered pairs of distinct agents in [0, n).
type Scheduler interface {
	Pair(n int) (a, b int)
}

// *rng.PRNG is the uniform scheduler of the population model.
var _ Scheduler = (*rng.PRNG)(nil)

// Weighted is a scheduler that picks each endpoint independently with fixed
// per-agent probabilities (re-drawing identical pairs), modelling agents
// with heterogeneous interaction rates.
type Weighted struct {
	r   *rng.PRNG
	cum []float64 // cumulative weights, cum[n-1] == 1
}

// NewWeighted builds a weighted scheduler from non-negative per-agent
// weights (at least two positive entries). The slice is not retained.
func NewWeighted(r *rng.PRNG, weights []float64) *Weighted {
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		// Degenerate input: fall back to uniform.
		for i := range cum {
			cum[i] = float64(i+1) / float64(len(cum))
		}
		total = 1
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Weighted{r: r, cum: cum}
}

// NewZipf builds a weighted scheduler with Zipf-like weights
// w_i ∝ 1/(i+1)^s. s = 0 is uniform; larger s concentrates interactions on
// low-index agents.
func NewZipf(r *rng.PRNG, n int, s float64) *Weighted {
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), s)
	}
	return NewWeighted(r, weights)
}

// Pair draws an ordered pair of distinct agents.
func (w *Weighted) Pair(n int) (a, b int) {
	if n > len(w.cum) {
		n = len(w.cum)
	}
	a = w.draw()
	b = a
	for b == a {
		b = w.draw()
	}
	if a >= n {
		a %= n
	}
	if b >= n || b == a {
		b = (a + 1) % n
	}
	return a, b
}

// draw samples one index by CDF inversion (binary search).
func (w *Weighted) draw() int {
	x := w.r.Float64()
	lo, hi := 0, len(w.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if w.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Batch is a high-throughput uniform scheduler: it pre-draws pairs from the
// underlying PRNG in fixed-size blocks, amortizing per-draw call overhead
// across the block. The pair sequence it deals is identical to calling
// Pair on the PRNG directly, so a Batch seeded like a plain uniform
// scheduler reproduces that scheduler's schedule exactly — it only draws
// ahead. The population size must stay fixed across calls (changing n
// discards the remainder of the current block).
type Batch struct {
	src  *rng.PRNG
	n    int
	buf  []int32
	next int
}

// NewBatch builds a batched uniform scheduler drawing size pairs per refill
// (size < 1 selects a default of 1024).
func NewBatch(src *rng.PRNG, size int) *Batch {
	if size < 1 {
		size = 1024
	}
	return &Batch{src: src, buf: make([]int32, 0, 2*size)}
}

// Pair deals the next pre-drawn pair, refilling the block when exhausted.
func (b *Batch) Pair(n int) (int, int) {
	if n != b.n || b.next >= len(b.buf) {
		b.refill(n)
	}
	a, c := int(b.buf[b.next]), int(b.buf[b.next+1])
	b.next += 2
	return a, c
}

// refill draws a full block of pairs for population size n.
func (b *Batch) refill(n int) {
	b.n = n
	b.buf = b.buf[:cap(b.buf)]
	for i := 0; i+1 < len(b.buf); i += 2 {
		a, c := b.src.Pair(n)
		b.buf[i], b.buf[i+1] = int32(a), int32(c)
	}
	b.next = 0
}

// Recorder wraps a Scheduler and records every pair it deals, so a schedule
// observed once (e.g. a run that exposed a bug) can be replayed exactly.
// When the inner scheduler samples a topology's edge set (EdgePairer, e.g.
// an EdgeSampler), the recording stores one edge index per interaction
// instead of the pair, and replay resolves the indices through the same
// graph — half the memory, and exact by construction.
type Recorder struct {
	inner Scheduler
	edges EdgePairer // non-nil when inner deals topology edges
	timed Timed      // non-nil when inner reports native event times
	rec   *Recording
}

// NewRecorder builds a recording wrapper around inner. When inner reports
// native event times (Timed, e.g. a NextReaction schedule), the recording
// stores the parallel time of every interaction alongside the pairs and
// encodes as wire version 2.
func NewRecorder(inner Scheduler) *Recorder {
	r := &Recorder{inner: inner, rec: &Recording{}}
	if ep, ok := inner.(EdgePairer); ok {
		r.edges = ep
		r.rec.g = ep.Graph()
	}
	if td, ok := inner.(Timed); ok {
		r.timed = td
	}
	return r
}

// Pair deals the inner scheduler's next pair and records it (with its
// event time when the inner scheduler is time-aware).
func (r *Recorder) Pair(n int) (int, int) {
	var a, b int
	if r.edges != nil {
		var idx int32
		a, b, idx = r.edges.PairEdge(n)
		r.rec.edges = append(r.rec.edges, idx)
	} else {
		a, b = r.inner.Pair(n)
		r.rec.pairs = append(r.rec.pairs, int32(a), int32(b))
	}
	if r.timed != nil {
		r.rec.times = append(r.rec.times, r.timed.Time())
	}
	return a, b
}

// Time returns the inner scheduler's current parallel time (0 when the
// inner scheduler is not time-aware), so a Recorder around a timed
// schedule remains a valid time source itself.
func (r *Recorder) Time() float64 {
	if r.timed == nil {
		return 0
	}
	return r.timed.Time()
}

// Recording returns the schedule captured so far. The recording keeps
// growing while the Recorder is used; replay what has been captured at any
// point.
func (r *Recorder) Recording() *Recording { return r.rec }

// Graph returns the interaction graph the inner scheduler samples, or nil
// when the inner scheduler is not topology-aware. A Recorder around an
// EdgeSampler thereby remains a valid topology scheduler itself.
func (r *Recorder) Graph() *graph.Graph { return r.rec.g }

// Recording is a captured schedule: explicit pairs for generic schedulers,
// or edge indices plus the graph that resolves them for topology schedules.
type Recording struct {
	pairs []int32
	edges []int32      // edge-index mode: one index per interaction
	g     *graph.Graph // resolves edges; nil in pair mode
	// times holds the parallel time of each interaction (continuous-clock
	// captures only; empty for discrete recordings). Encoded as wire
	// version 2; discrete recordings keep the version 1 byte layout.
	times []float64
}

// Len returns the number of recorded interactions.
func (rec *Recording) Len() int {
	if rec.g != nil {
		return len(rec.edges)
	}
	return len(rec.pairs) / 2
}

// EdgeIndexed reports whether the recording stores edge indices of an
// interaction graph rather than explicit pairs.
func (rec *Recording) EdgeIndexed() bool { return rec.g != nil }

// Timed reports whether the recording carries native event times (a
// continuous-clock capture).
func (rec *Recording) Timed() bool { return len(rec.times) > 0 }

// Replay returns a Scheduler that deals the recorded schedule in order. A
// consumer that outruns the recording wraps around to its start; replaying
// an empty recording panics. Pairs recorded for a larger population are
// folded into [0, n); edge-indexed recordings resolve through their graph
// and ignore n. Timed recordings replay as a Timed scheduler: the recorded
// event times are dealt alongside the pairs, and wrap-arounds keep the
// clock monotone by restarting the recorded timeline where the previous
// lap ended.
func (rec *Recording) Replay() Scheduler {
	if rec.Timed() {
		return &timedReplayer{replayer: replayer{rec: rec}}
	}
	return &replayer{rec: rec}
}

type replayer struct {
	rec  *Recording
	next int
}

// Graph returns the graph an edge-indexed recording resolves through (nil
// for pair-mode recordings), marking edge-indexed replays as valid
// topology schedulers.
func (r *replayer) Graph() *graph.Graph { return r.rec.g }

// Pair deals the next recorded pair.
func (r *replayer) Pair(n int) (int, int) {
	if r.rec.g != nil {
		if len(r.rec.edges) == 0 {
			panic("sim: Replay of an empty Recording")
		}
		if r.next >= len(r.rec.edges) {
			r.next = 0
		}
		a, b := r.rec.g.Edge(int(r.rec.edges[r.next]))
		r.next++
		return a, b
	}
	if len(r.rec.pairs) == 0 {
		panic("sim: Replay of an empty Recording")
	}
	if r.next >= len(r.rec.pairs) {
		r.next = 0
	}
	a, b := int(r.rec.pairs[r.next]), int(r.rec.pairs[r.next+1])
	r.next += 2
	if a >= n {
		a %= n
	}
	if b >= n || b == a {
		b = (a + 1) % n
	}
	return a, b
}

// timedReplayer replays a timed recording, dealing the recorded event time
// of every interaction alongside the pair. Wrap-arounds restart the
// recorded timeline where the previous lap ended, keeping Time monotone.
type timedReplayer struct {
	replayer
	offset float64 // accumulated timeline from completed laps
	t      float64
}

// Pair deals the next recorded pair and advances the replayed clock to its
// recorded event time.
func (r *timedReplayer) Pair(n int) (int, int) {
	a, b := r.replayer.Pair(n)
	idx := r.next - 1
	if r.rec.g == nil {
		idx = r.next/2 - 1
	}
	if idx == 0 && r.t != 0 {
		r.offset = r.t // wrapped: continue past the previous lap's end
	}
	r.t = r.offset + r.rec.times[idx]
	return a, b
}

// Time returns the recorded parallel time of the most recently dealt pair.
func (r *timedReplayer) Time() float64 { return r.t }

var _ Timed = (*timedReplayer)(nil)

// RunSched is Run with an arbitrary scheduler.
func RunSched(p Protocol, sched Scheduler, opt Options) Result {
	return runWith(p, sched, opt)
}

// StepsSched performs exactly k interactions under an arbitrary scheduler.
// When p is count-based, sched must be a uniform PRNG stream (agent
// identities do not exist in species form, so a non-uniform schedule
// cannot be honored): the stream is bound as the sampling source and p
// steps in bulk; anything else panics rather than silently substituting
// uniform dynamics for the requested schedule.
func StepsSched(p Protocol, sched Scheduler, k uint64) {
	if cb, ok := AsCountBased(p); ok {
		src, uniform := sched.(*rng.PRNG)
		if !uniform {
			panic(fmt.Sprintf("sim: count-based protocol %T supports only uniform *rng.PRNG schedulers, got %T", p, sched))
		}
		cb.BindSource(src)
		cb.StepMany(k)
		return
	}
	n := p.N()
	for i := uint64(0); i < k; i++ {
		a, b := sched.Pair(n)
		p.Interact(a, b)
	}
}
