// clock_test.go covers the continuous-time scheduler layer: the TimeKeeper's
// Poisson-clock law (mean holding time 2/n, Gamma batch advance matching k
// single advances in distribution), the next-reaction scheduler's heap
// invariants, uniform jump chain, and correct global rate, plus the
// zero-allocation pins the hotpath annotations promise.

package sim

import (
	"math"
	"testing"

	"sspp/internal/graph"
	"sspp/internal/rng"
)

func TestTimeKeeperAdvanceMoments(t *testing.T) {
	const n = 64
	const draws = 200_000
	tk := NewTimeKeeper(rng.New(11), n)
	if tk.Time() != 0 {
		t.Fatalf("fresh clock at t = %g, want 0", tk.Time())
	}
	for i := 0; i < draws; i++ {
		tk.Advance()
	}
	// After k interactions t ~ Gamma(k)·2/n: mean 2k/n, sd 2√k/n.
	mean := 2 * float64(draws) / n
	sd := 2 * math.Sqrt(float64(draws)) / n
	if got := tk.Time(); math.Abs(got-mean) > 6*sd {
		t.Fatalf("after %d interactions t = %g, want %g ± %g", draws, got, mean, 6*sd)
	}
}

func TestTimeKeeperAdvanceManyMatchesLaw(t *testing.T) {
	// AdvanceMany(k) has the law of k Advance calls: same mean and variance.
	const n, k, trials = 32, 400, 4000
	tk := NewTimeKeeper(rng.New(12), n)
	var sum, sumSq float64
	prev := 0.0
	for i := 0; i < trials; i++ {
		tk.AdvanceMany(k)
		d := tk.Time() - prev
		prev = tk.Time()
		sum += d
		sumSq += d * d
	}
	gotMean := sum / trials
	gotVar := sumSq/trials - gotMean*gotMean
	wantMean := 2 * float64(k) / n // k·(2/n)
	wantVar := float64(k) * (2.0 / n) * (2.0 / n)
	if math.Abs(gotMean-wantMean) > 6*math.Sqrt(wantVar/trials) {
		t.Fatalf("batch advance mean %g, want %g", gotMean, wantMean)
	}
	if math.Abs(gotVar-wantVar) > 0.1*wantVar {
		t.Fatalf("batch advance variance %g, want %g", gotVar, wantVar)
	}
}

func TestTimeKeeperAdvanceManySmallCounts(t *testing.T) {
	tk := NewTimeKeeper(rng.New(13), 8)
	tk.AdvanceMany(0)
	if tk.Time() != 0 {
		t.Fatalf("AdvanceMany(0) moved the clock to %g", tk.Time())
	}
	tk.AdvanceMany(1)
	if tk.Time() <= 0 {
		t.Fatalf("AdvanceMany(1) left the clock at %g", tk.Time())
	}
}

func TestTimeKeeperSetNRescalesRate(t *testing.T) {
	// Doubling n halves the mean holding time; identical draw streams make
	// the ratio exact.
	a := NewTimeKeeper(rng.New(14), 100)
	b := NewTimeKeeper(rng.New(14), 200)
	for i := 0; i < 1000; i++ {
		a.Advance()
		b.Advance()
	}
	if ratio := a.Time() / b.Time(); math.Abs(ratio-2) > 1e-9 {
		t.Fatalf("time ratio at double rate = %g, want 2", ratio)
	}
}

func TestTimeKeeperSetNPanicsBelowOne(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetN(0) did not panic")
		}
	}()
	NewTimeKeeper(rng.New(15), 4).SetN(0)
}

func TestTimeKeeperDeterminism(t *testing.T) {
	a := NewTimeKeeper(rng.New(16), 10)
	b := NewTimeKeeper(rng.New(16), 10)
	for i := 0; i < 500; i++ {
		a.Advance()
		b.AdvanceMany(1)
		if a.Time() != b.Time() {
			t.Fatalf("advance %d: clocks diverge (%g vs %g) on the same stream", i, a.Time(), b.Time())
		}
	}
}

// nrHeapInvariant checks the indexed min-heap: parent keys precede children
// and pos inverts heap.
func nrHeapInvariant(t *testing.T, nr *NextReaction) {
	t.Helper()
	for i := range nr.heap {
		if nr.pos[nr.heap[i]] != int32(i) {
			t.Fatalf("pos[%d] = %d, want %d", nr.heap[i], nr.pos[nr.heap[i]], i)
		}
		if l := 2*i + 1; l < len(nr.heap) && nr.key[nr.heap[i]] > nr.key[nr.heap[l]] {
			t.Fatalf("heap violated at %d: key %g > left child %g", i, nr.key[nr.heap[i]], nr.key[nr.heap[l]])
		}
		if r := 2*i + 2; r < len(nr.heap) && nr.key[nr.heap[i]] > nr.key[nr.heap[r]] {
			t.Fatalf("heap violated at %d: key %g > right child %g", i, nr.key[nr.heap[i]], nr.key[nr.heap[r]])
		}
	}
}

func TestNextReactionDealsMonotoneValidEdges(t *testing.T) {
	g, err := graph.Ring(16)
	if err != nil {
		t.Fatal(err)
	}
	nr := NewNextReaction(g, rng.New(21), 0)
	nrHeapInvariant(t, nr)
	prev := 0.0
	for i := 0; i < 5000; i++ {
		a, b, e := nr.PairEdge(g.N())
		if wa, wb := g.Edge(int(e)); a != wa || b != wb {
			t.Fatalf("interaction %d: pair (%d,%d) does not resolve edge %d = (%d,%d)", i, a, b, e, wa, wb)
		}
		if nr.Time() < prev {
			t.Fatalf("interaction %d: time ran backwards (%g after %g)", i, nr.Time(), prev)
		}
		prev = nr.Time()
	}
	nrHeapInvariant(t, nr)
}

func TestNextReactionJumpChainUniformOverEdges(t *testing.T) {
	g, err := graph.Ring(8) // 16 directed edges
	if err != nil {
		t.Fatal(err)
	}
	nr := NewNextReaction(g, rng.New(22), 0)
	const draws = 80_000
	counts := make([]int, g.M())
	for i := 0; i < draws; i++ {
		_, _, e := nr.PairEdge(g.N())
		counts[e]++
	}
	// Equal-rate clocks make the jump chain uniform over edges: each edge
	// expects draws/M hits, sd √(draws·p(1-p)).
	want := float64(draws) / float64(g.M())
	sd := math.Sqrt(float64(draws) * (1.0 / float64(g.M())) * (1 - 1.0/float64(g.M())))
	for e, c := range counts {
		if math.Abs(float64(c)-want) > 6*sd {
			t.Fatalf("edge %d fired %d times, want %g ± %g", e, c, want, 6*sd)
		}
	}
}

func TestNextReactionGlobalRate(t *testing.T) {
	// Total firing rate is n/2 regardless of M: the mean time per
	// interaction is 2/n, as on the complete topology.
	g, err := graph.Torus2D(36)
	if err != nil {
		t.Fatal(err)
	}
	const draws = 100_000
	nr := NewNextReaction(g, rng.New(23), 0)
	for i := 0; i < draws; i++ {
		nr.Pair(g.N())
	}
	want := 2 * float64(draws) / float64(g.N())
	if got := nr.Time(); math.Abs(got-want) > 0.05*want {
		t.Fatalf("after %d interactions t = %g, want ≈ %g", draws, got, want)
	}
}

func TestNextReactionStartOffsetAndUpdateKey(t *testing.T) {
	g, err := graph.Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	const start = 7.5
	nr := NewNextReaction(g, rng.New(24), start)
	if nr.Time() != start {
		t.Fatalf("fresh scheduler at t = %g, want start %g", nr.Time(), start)
	}
	nr.Pair(g.N())
	if nr.Time() <= start {
		t.Fatalf("first firing at t = %g, want after start %g", nr.Time(), start)
	}
	// Force a specific edge to fire next via the key-update hook, in both
	// sift directions.
	nrHeapInvariant(t, nr)
	nr.UpdateKey(3, nr.Time()) // earliest possible: must fire next
	nrHeapInvariant(t, nr)
	if _, _, e := nr.PairEdge(g.N()); e != 3 {
		t.Fatalf("after UpdateKey(3, now) edge %d fired, want 3", e)
	}
	nr.UpdateKey(int32(nr.heap[0]), nr.Time()+1e9) // push the root far out
	nrHeapInvariant(t, nr)
}

func TestNextReactionDeterminism(t *testing.T) {
	g, err := graph.RandomRegular(20, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	a := NewNextReaction(g, rng.New(25), 0)
	b := NewNextReaction(g, rng.New(25), 0)
	for i := 0; i < 2000; i++ {
		aa, ab, ae := a.PairEdge(g.N())
		ba, bb, be := b.PairEdge(g.N())
		if aa != ba || ab != bb || ae != be || a.Time() != b.Time() {
			t.Fatalf("interaction %d diverges across identically seeded schedulers", i)
		}
	}
}

// TestClockHotPathsDoNotAllocate pins the zero-allocation contract of the
// //sspp:hotpath annotations on the clock layer.
func TestClockHotPathsDoNotAllocate(t *testing.T) {
	tk := NewTimeKeeper(rng.New(31), 128)
	if avg := testing.AllocsPerRun(200, tk.Advance); avg != 0 {
		t.Errorf("TimeKeeper.Advance allocates %.1f objects per call", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { tk.AdvanceMany(64) }); avg != 0 {
		t.Errorf("TimeKeeper.AdvanceMany allocates %.1f objects per call", avg)
	}
	g, err := graph.Ring(64)
	if err != nil {
		t.Fatal(err)
	}
	nr := NewNextReaction(g, rng.New(32), 0)
	if avg := testing.AllocsPerRun(200, func() { nr.Pair(g.N()) }); avg != 0 {
		t.Errorf("NextReaction.Pair allocates %.1f objects per call", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { nr.PairEdge(g.N()) }); avg != 0 {
		t.Errorf("NextReaction.PairEdge allocates %.1f objects per call", avg)
	}
}
