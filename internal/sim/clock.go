// clock.go is the continuous-time half of the scheduler layer: the paper's
// analyses are phrased in parallel time, and under the standard
// continuous-time population model interactions form a Poisson process of
// rate n/2 per unit parallel time (each of the n agents carries a rate-1/2
// pairing clock). A TimeKeeper simulates exactly that global clock for
// complete-topology runs: the jump chain (which pairs interact, in which
// order) is untouched — holding times are drawn from a separate stream — so
// a continuous-clock run deals the identical interaction sequence as the
// discrete run with the same scheduler seed, and merely equips it with
// native event times. Batch advances draw one Gamma(k) variate for k
// interactions instead of k exponentials, which keeps silent-skip and
// τ-leap bundles O(1) per batch.

package sim

import "sspp/internal/rng"

// Timed is the scheduler-side capability behind native event times: a
// scheduler (or replayed recording) that knows the parallel time at which
// its last pair was dealt reports it here. The engine uses it as the run's
// time source, and a Recorder wrapping a Timed scheduler stores per-event
// times in its Recording (wire version 2).
type Timed interface {
	// Time returns the parallel time of the most recently dealt pair (the
	// start time before any pair is dealt).
	Time() float64
}

// TimeKeeper advances the global exponential clock of the continuous-time
// population model on the complete topology: successive interactions are
// separated by Exp(rate n/2) holding times, i.e. mean 2/n units of parallel
// time each. The rate follows the live population size via SetN, so runs
// with churn accrue time at the correct instantaneous rate.
type TimeKeeper struct {
	src     *rng.PRNG
	invRate float64 // mean holding time per interaction: 2/n
	t       float64
}

// NewTimeKeeper builds a clock for population size n (n ≥ 1) starting at
// parallel time zero, drawing holding times from src. The stream must be
// dedicated to the clock: sharing the scheduler stream would perturb the
// jump chain relative to a discrete-clock run with the same seed.
func NewTimeKeeper(src *rng.PRNG, n int) *TimeKeeper {
	tk := &TimeKeeper{src: src}
	tk.SetN(n)
	return tk
}

// SetN moves the interaction rate to n/2, the continuous-time rate of a
// population of n agents. It panics when n < 1.
func (tk *TimeKeeper) SetN(n int) {
	if n < 1 {
		panic("sim: TimeKeeper.SetN called with n < 1")
	}
	tk.invRate = 2 / float64(n)
}

// Advance moves the clock past one interaction: t += Exp(1)·(2/n).
//
//sspp:hotpath
func (tk *TimeKeeper) Advance() {
	tk.t += tk.src.Exp() * tk.invRate
}

// AdvanceMany moves the clock past k interactions in one draw: the sum of k
// unit exponentials is Gamma(k), so t += Gamma(k)·(2/n) has exactly the law
// of k successive Advance calls while costing O(1). This is what keeps
// batched stepping (silent skips, τ-leap bundles) cheap under the
// continuous clock.
func (tk *TimeKeeper) AdvanceMany(k uint64) {
	if k == 0 {
		return
	}
	if k == 1 {
		tk.Advance()
		return
	}
	tk.t += tk.src.Gamma(float64(k)) * tk.invRate
}

// Time returns the current parallel time.
func (tk *TimeKeeper) Time() float64 { return tk.t }

var _ Timed = (*TimeKeeper)(nil)
