// recwire_test.go covers the versioned Recording wire format at the package
// level: pair-mode and edge-indexed round trips, re-encode stability, and
// the decoder's rejection of unknown versions and inconsistent payloads.
// The public-API golden bytes live in the root package's scheduler tests.

package sim

import (
	"bytes"
	"strings"
	"testing"

	"sspp/internal/graph"
)

func TestRecordingWirePairModeRoundTrip(t *testing.T) {
	rec := &Recording{pairs: []int32{0, 1, 2, 3, 1, 0}}
	var buf bytes.Buffer
	if err := rec.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeRecording(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Len() != 3 || dec.EdgeIndexed() {
		t.Fatalf("decoded %d edge-indexed=%v, want 3 pair-mode interactions", dec.Len(), dec.EdgeIndexed())
	}
	s := dec.Replay()
	for i, want := range [][2]int{{0, 1}, {2, 3}, {1, 0}} {
		if a, b := s.Pair(4); a != want[0] || b != want[1] {
			t.Fatalf("replayed pair %d = (%d, %d), want (%d, %d)", i, a, b, want[0], want[1])
		}
	}
	var again bytes.Buffer
	if err := dec.Encode(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("re-encoding the decoded recording changed the bytes")
	}
}

func TestRecordingWireEdgeModeRoundTrip(t *testing.T) {
	g, err := graph.FromEdges("ring", 3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	rec := &Recording{edges: []int32{0, 2, 1}, g: g}
	var buf bytes.Buffer
	if err := rec.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeRecording(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Len() != 3 || !dec.EdgeIndexed() {
		t.Fatalf("decoded %d edge-indexed=%v, want 3 edge-indexed interactions", dec.Len(), dec.EdgeIndexed())
	}
	s := dec.Replay()
	for i, want := range [][2]int{{0, 1}, {2, 0}, {1, 2}} {
		if a, b := s.Pair(3); a != want[0] || b != want[1] {
			t.Fatalf("replayed edge %d = (%d, %d), want (%d, %d)", i, a, b, want[0], want[1])
		}
	}
	var again bytes.Buffer
	if err := dec.Encode(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("re-encoding the decoded recording changed the bytes")
	}
}

// TestRecordingWireTimedRoundTrip covers the version 2 layout: a timed
// recording stamps version 2, carries one event time per interaction in
// both modes, and round-trips byte-for-byte; an untimed recording keeps
// stamping the version 1 bytes archived recordings rely on.
func TestRecordingWireTimedRoundTrip(t *testing.T) {
	g, err := graph.FromEdges("ring", 3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		rec  *Recording
	}{
		{"pair mode", &Recording{pairs: []int32{0, 1, 2, 3}, times: []float64{0.25, 1.5}}},
		{"edge mode", &Recording{edges: []int32{0, 2}, g: g, times: []float64{0.25, 1.5}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := tc.rec.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), `"version":2`) {
				t.Fatalf("timed recording encoded without a version 2 stamp: %s", buf.String())
			}
			dec, err := DecodeRecording(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if !dec.Timed() || dec.Len() != 2 {
				t.Fatalf("decoded timed=%v len=%d, want a 2-interaction timed recording", dec.Timed(), dec.Len())
			}
			var again bytes.Buffer
			if err := dec.Encode(&again); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), again.Bytes()) {
				t.Fatal("re-encoding the decoded timed recording changed the bytes")
			}
			// Replay deals the recorded times alongside the pairs, and a
			// wrap-around keeps the clock monotone.
			s := dec.Replay()
			td, ok := s.(Timed)
			if !ok {
				t.Fatal("timed recording replays without the Timed capability")
			}
			wantTimes := []float64{0.25, 1.5, 1.75, 3.0} // second lap offset by 1.5
			for i, want := range wantTimes {
				s.Pair(4)
				if got := td.Time(); got != want {
					t.Fatalf("replayed time %d = %g, want %g", i, got, want)
				}
			}
		})
	}
}

func TestDecodeRecordingWireRejections(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"future version", `{"version":3,"pairs":[0,1]}`, "version 3"},
		{"version zero", `{"version":0,"pairs":[0,1]}`, "version 0"},
		{"times on version 1", `{"version":1,"pairs":[0,1],"times":[0.5]}`, "version 2"},
		{"times length mismatch", `{"version":2,"pairs":[0,1],"times":[0.5,0.7]}`, "2 event times for 1 interactions"},
		{"times not monotone", `{"version":2,"pairs":[0,1,2,3],"times":[0.7,0.5]}`, "non-decreasing"},
		{"negative time", `{"version":2,"pairs":[0,1],"times":[-0.5]}`, "non-decreasing"},
		{"non-numeric time", `{"version":2,"pairs":[0,1],"times":["nan"]}`, "decoding"},
		{"mixed modes", `{"version":1,"n":3,"edge_list":[[0,1]],"edges":[0],"pairs":[0,1]}`, "mixes"},
		{"odd pairs", `{"version":1,"pairs":[0,1,2]}`, "odd length"},
		{"negative pair", `{"version":1,"pairs":[0,-1]}`, "negative"},
		{"edge index out of range", `{"version":1,"n":2,"edge_list":[[0,1]],"edges":[1]}`, "outside"},
		{"self-loop edge", `{"version":1,"n":2,"edge_list":[[1,1]],"edges":[0]}`, "invalid graph"},
		{"not json", `nope`, "decoding"},
	}
	for _, tc := range cases {
		if _, err := DecodeRecording(strings.NewReader(tc.doc)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}
