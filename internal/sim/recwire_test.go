// recwire_test.go covers the versioned Recording wire format at the package
// level: pair-mode and edge-indexed round trips, re-encode stability, and
// the decoder's rejection of unknown versions and inconsistent payloads.
// The public-API golden bytes live in the root package's scheduler tests.

package sim

import (
	"bytes"
	"strings"
	"testing"

	"sspp/internal/graph"
)

func TestRecordingWirePairModeRoundTrip(t *testing.T) {
	rec := &Recording{pairs: []int32{0, 1, 2, 3, 1, 0}}
	var buf bytes.Buffer
	if err := rec.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeRecording(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Len() != 3 || dec.EdgeIndexed() {
		t.Fatalf("decoded %d edge-indexed=%v, want 3 pair-mode interactions", dec.Len(), dec.EdgeIndexed())
	}
	s := dec.Replay()
	for i, want := range [][2]int{{0, 1}, {2, 3}, {1, 0}} {
		if a, b := s.Pair(4); a != want[0] || b != want[1] {
			t.Fatalf("replayed pair %d = (%d, %d), want (%d, %d)", i, a, b, want[0], want[1])
		}
	}
	var again bytes.Buffer
	if err := dec.Encode(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("re-encoding the decoded recording changed the bytes")
	}
}

func TestRecordingWireEdgeModeRoundTrip(t *testing.T) {
	g, err := graph.FromEdges("ring", 3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	rec := &Recording{edges: []int32{0, 2, 1}, g: g}
	var buf bytes.Buffer
	if err := rec.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeRecording(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Len() != 3 || !dec.EdgeIndexed() {
		t.Fatalf("decoded %d edge-indexed=%v, want 3 edge-indexed interactions", dec.Len(), dec.EdgeIndexed())
	}
	s := dec.Replay()
	for i, want := range [][2]int{{0, 1}, {2, 0}, {1, 2}} {
		if a, b := s.Pair(3); a != want[0] || b != want[1] {
			t.Fatalf("replayed edge %d = (%d, %d), want (%d, %d)", i, a, b, want[0], want[1])
		}
	}
	var again bytes.Buffer
	if err := dec.Encode(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("re-encoding the decoded recording changed the bytes")
	}
}

func TestDecodeRecordingWireRejections(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"future version", `{"version":2,"pairs":[0,1]}`, "version 2"},
		{"mixed modes", `{"version":1,"n":3,"edge_list":[[0,1]],"edges":[0],"pairs":[0,1]}`, "mixes"},
		{"odd pairs", `{"version":1,"pairs":[0,1,2]}`, "odd length"},
		{"negative pair", `{"version":1,"pairs":[0,-1]}`, "negative"},
		{"edge index out of range", `{"version":1,"n":2,"edge_list":[[0,1]],"edges":[1]}`, "outside"},
		{"self-loop edge", `{"version":1,"n":2,"edge_list":[[1,1]],"edges":[0]}`, "invalid graph"},
		{"not json", `nope`, "decoding"},
	}
	for _, tc := range cases {
		if _, err := DecodeRecording(strings.NewReader(tc.doc)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}
