// Package sim implements the population-protocol execution model of the
// paper (§1.1): n agents, and in every step a uniformly random ordered pair
// of distinct agents interacts and updates its states via the protocol's
// transition function.
//
// The package provides the Protocol abstraction, a deterministic seeded
// scheduler, a Runner that measures stabilization times, and an Events sink
// that protocols use to report notable transitions (resets, detections,
// phase changes) to experiments and tests.
//
// Throughout the repository, "time" follows the paper's convention: parallel
// time equals the number of interactions divided by n.
package sim

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"sspp/internal/rng"
)

// Protocol is a population protocol over a fixed set of agents.
//
// Implementations are single-threaded state machines: the Runner calls
// Interact sequentially, never concurrently.
type Protocol interface {
	// N returns the population size.
	N() int
	// Interact applies the transition function to the ordered pair of
	// distinct agents (a, b), where a is the initiator and b the responder.
	Interact(a, b int)
	// Correct reports whether the current configuration has correct output
	// (for leader election: exactly one agent outputs "leader").
	Correct() bool
}

// NeverStabilized is the sentinel value of Result.StabilizedAt when the run
// did not end in a correct configuration.
const NeverStabilized = ^uint64(0)

// Options configures a Runner execution.
type Options struct {
	// MaxInteractions bounds the run. Required (> 0).
	MaxInteractions uint64
	// CheckEvery is the correctness polling cadence in interactions.
	// Defaults to max(1, n/4). Smaller values tighten the measurement of
	// stabilization times at the cost of more Correct() calls.
	CheckEvery uint64
	// StopAfterStableFor, when positive, stops the run early once
	// correctness has been observed continuously for at least this many
	// interactions. For self-stabilizing protocols the safe set is closed,
	// so a window of a few n interactions is a cheap confirmation.
	StopAfterStableFor uint64
	// Invariant, when non-nil, is polled every CheckEvery interactions; a
	// non-nil error aborts the run and is reported in Result.Err. Tests use
	// this to assert protocol invariants during execution.
	Invariant func() error
	// OnCheck, when non-nil, is called at every poll with the current
	// interaction count and correctness flag (tracing hook).
	OnCheck func(interactions uint64, correct bool)
}

// Result reports the outcome of a Runner execution.
type Result struct {
	// Interactions is the number of interactions performed.
	Interactions uint64
	// Stabilized reports whether the configuration was correct at the end
	// of the run (and, when StopAfterStableFor was set, had been correct for
	// at least that long).
	Stabilized bool
	// StabilizedAt is the poll index (in interactions) at which the final
	// stretch of uninterrupted correctness began, or NeverStabilized.
	// Its resolution is CheckEvery interactions.
	StabilizedAt uint64
	// FirstCorrectAt is the first poll at which correctness was observed,
	// or NeverStabilized if it never was. A value smaller than StabilizedAt
	// indicates the configuration regressed at least once (e.g. a reset).
	FirstCorrectAt uint64
	// Flips counts observed correctness transitions (in either direction).
	Flips int
	// Err is the first invariant violation, if any.
	Err error
}

// ParallelTime returns the stabilization time in parallel-time units
// (interactions divided by n), the measure used throughout the paper.
func (r Result) ParallelTime(n int) float64 {
	if !r.Stabilized || n == 0 {
		return -1
	}
	return float64(r.StabilizedAt) / float64(n)
}

// Run executes p under the uniform random scheduler drawn from rand.
func Run(p Protocol, rand *rng.PRNG, opt Options) Result {
	return runWith(p, rand, opt)
}

// runWith executes p under an arbitrary scheduler.
func runWith(p Protocol, sched Scheduler, opt Options) Result {
	res := Result{StabilizedAt: NeverStabilized, FirstCorrectAt: NeverStabilized}
	n := p.N()
	if n < 2 {
		res.Err = fmt.Errorf("sim: population size %d < 2", n)
		return res
	}
	if opt.MaxInteractions == 0 {
		res.Err = errors.New("sim: MaxInteractions must be positive")
		return res
	}
	check := opt.CheckEvery
	if check == 0 {
		check = uint64(n / 4)
		if check == 0 {
			check = 1
		}
	}

	wasCorrect := false
	var stableSince uint64 // start of current correct stretch (valid when wasCorrect)
	var t uint64
	poll := func() bool {
		correct := p.Correct()
		if opt.OnCheck != nil {
			opt.OnCheck(t, correct)
		}
		if correct != wasCorrect {
			res.Flips++
			if correct {
				stableSince = t
				if res.FirstCorrectAt == NeverStabilized {
					res.FirstCorrectAt = t
				}
			}
			wasCorrect = correct
		}
		if opt.Invariant != nil {
			if err := opt.Invariant(); err != nil {
				res.Err = fmt.Errorf("sim: invariant violated at interaction %d: %w", t, err)
				return false
			}
		}
		return true
	}

	// Count-based backends draw their own pairs: bind the uniform stream
	// and step in bulk between polls. A non-uniform scheduler cannot be
	// honored (agent identities do not exist), so it is an error here, not
	// a silent substitution of uniform dynamics.
	cb, countBased := AsCountBased(p)
	var cbSrc *rng.PRNG
	if countBased {
		src, uniform := sched.(*rng.PRNG)
		if !uniform {
			res.Err = fmt.Errorf("sim: count-based protocol %T supports only uniform *rng.PRNG schedulers, got %T", p, sched)
			return res
		}
		cbSrc = src
	}

	// Poll the initial configuration so that a run that starts correct and
	// stays correct reports StabilizedAt = 0.
	if !poll() {
		res.Interactions = 0
		return res
	}
	if countBased {
		cb.BindSource(cbSrc)
		for t < opt.MaxInteractions {
			stepTo := t + check - t%check // next poll boundary
			if stepTo > opt.MaxInteractions {
				stepTo = opt.MaxInteractions
			}
			cb.StepMany(stepTo - t)
			t = stepTo
			if t%check == 0 {
				if !poll() {
					break
				}
				if wasCorrect && opt.StopAfterStableFor > 0 && t-stableSince >= opt.StopAfterStableFor {
					break
				}
			}
		}
	} else {
		for t = 1; t <= opt.MaxInteractions; t++ {
			a, b := sched.Pair(n)
			p.Interact(a, b)
			if t%check == 0 {
				if !poll() {
					break
				}
				if wasCorrect && opt.StopAfterStableFor > 0 && t-stableSince >= opt.StopAfterStableFor {
					break
				}
			}
		}
		if t > opt.MaxInteractions {
			t = opt.MaxInteractions
		}
	}
	res.Interactions = t
	if res.Err == nil && wasCorrect {
		res.Stabilized = true
		res.StabilizedAt = stableSince
	}
	return res
}

// Steps performs exactly k scheduler-driven interactions on p without any
// correctness polling. It is the low-level building block used by examples
// and adversarial setups that need fine-grained control. Count-based
// backends consume rand as their sampling stream and step in bulk.
func Steps(p Protocol, rand *rng.PRNG, k uint64) {
	if cb, ok := AsCountBased(p); ok {
		cb.BindSource(rand)
		cb.StepMany(k)
		return
	}
	n := p.N()
	for i := uint64(0); i < k; i++ {
		a, b := rand.Pair(n)
		p.Interact(a, b)
	}
}

// Events is a counter sink for notable protocol transitions. Protocols call
// Inc/IncAt; experiments and tests read Count/FirstAt/LastAt. The zero value
// is unusable; construct with NewEvents. Events is not safe for concurrent
// use, matching the single-threaded execution model.
type Events struct {
	counts  map[string]uint64
	firstAt map[string]uint64
	lastAt  map[string]uint64
}

// NewEvents returns an empty event sink.
func NewEvents() *Events {
	return &Events{
		counts:  make(map[string]uint64),
		firstAt: make(map[string]uint64),
		lastAt:  make(map[string]uint64),
	}
}

// Inc records one occurrence of name with no timestamp.
func (e *Events) Inc(name string) { e.IncAt(name, 0) }

// IncAt records one occurrence of name at interaction t.
func (e *Events) IncAt(name string, t uint64) {
	if e == nil {
		return
	}
	if _, ok := e.counts[name]; !ok {
		e.firstAt[name] = t
	}
	e.counts[name]++
	e.lastAt[name] = t
}

// Count returns the number of occurrences of name.
func (e *Events) Count(name string) uint64 {
	if e == nil {
		return 0
	}
	return e.counts[name]
}

// FirstAt returns the interaction at which name first occurred; ok is false
// if it never occurred.
func (e *Events) FirstAt(name string) (t uint64, ok bool) {
	if e == nil {
		return 0, false
	}
	t, ok = e.firstAt[name]
	return t, ok
}

// LastAt returns the interaction at which name last occurred; ok is false if
// it never occurred.
func (e *Events) LastAt(name string) (t uint64, ok bool) {
	if e == nil {
		return 0, false
	}
	t, ok = e.lastAt[name]
	return t, ok
}

// Reset clears all recorded events.
func (e *Events) Reset() {
	if e == nil {
		return
	}
	clear(e.counts)
	clear(e.firstAt)
	clear(e.lastAt)
}

// Names returns all recorded event names in sorted order.
func (e *Events) Names() []string {
	if e == nil {
		return nil
	}
	names := make([]string, 0, len(e.counts))
	for k := range e.counts {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// String renders all counters sorted by name, for logs and debugging.
func (e *Events) String() string {
	var b strings.Builder
	for _, k := range e.Names() {
		fmt.Fprintf(&b, "%s=%d ", k, e.counts[k])
	}
	return strings.TrimSpace(b.String())
}
