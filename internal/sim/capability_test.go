// capability_test.go checks the As* dispatch helpers: a value carrying the
// full capability surface is found by every helper, and a bare value by
// none. The helpers are one-liners, but they are the single dispatch point
// the capdispatch analyzer funnels every assertion through (DESIGN.md §11),
// so a signature drift between an interface and its helper must fail here
// rather than at a distant call site.

package sim

import (
	"testing"

	"sspp/internal/rng"
)

// allCaps implements every optional capability with no-op bodies.
type allCaps struct{}

func (allCaps) N() int                                   { return 2 }
func (allCaps) Interact(_, _ int)                        {}
func (allCaps) Correct() bool                            { return true }
func (allCaps) RankOutput(int) int32                     { return 1 }
func (allCaps) CorrectRanking() bool                     { return true }
func (allCaps) LeaderIndex() (int, bool)                 { return 0, true }
func (allCaps) InSafeSet() bool                          { return true }
func (allCaps) Inject(string, *rng.PRNG) error           { return nil }
func (allCaps) InjectTransient(int, *rng.PRNG) []int     { return nil }
func (allCaps) SnapshotInto(*Snapshot)                   {}
func (allCaps) Clock() uint64                            { return 0 }
func (allCaps) JoinAgent(string, *rng.PRNG) (int, error) { return 0, nil }
func (allCaps) LeaveAgent(int) error                     { return nil }
func (allCaps) ChurnBounds() (int, int)                  { return 2, 0 }
func (allCaps) CanChurn() bool                           { return false }
func (allCaps) JoinState(string, *rng.PRNG) error        { return nil }
func (allCaps) LeaveState(*rng.PRNG) (uint64, error)     { return 0, nil }
func (allCaps) StateKey(int) uint64                      { return 0 }
func (allCaps) Compact() CompactModel                    { return CompactModel{} }
func (allCaps) BindSource(*rng.PRNG)                     {}
func (allCaps) StepMany(uint64)                          {}
func (allCaps) StartContinuous(*rng.PRNG, bool)          {}
func (allCaps) ParallelTime() float64                    { return 0 }

func TestCapabilityHelpers(t *testing.T) {
	probes := []struct {
		name string
		ok   func(v any) bool
	}{
		{"ranker", func(v any) bool { _, ok := AsRanker(v); return ok }},
		{"leader-indexer", func(v any) bool { _, ok := AsLeaderIndexer(v); return ok }},
		{"safe-setter", func(v any) bool { _, ok := AsSafeSetter(v); return ok }},
		{"injectable", func(v any) bool { _, ok := AsInjectable(v); return ok }},
		{"snapshotter", func(v any) bool { _, ok := AsSnapshotter(v); return ok }},
		{"clocked", func(v any) bool { _, ok := AsClocked(v); return ok }},
		{"churnable", func(v any) bool { _, ok := AsChurnable(v); return ok }},
		{"count-churnable", func(v any) bool { _, ok := AsCountChurnable(v); return ok }},
		{"state-keyer", func(v any) bool { _, ok := AsStateKeyer(v); return ok }},
		{"compactable", func(v any) bool { _, ok := AsCompactable(v); return ok }},
		{"count-based", func(v any) bool { _, ok := AsCountBased(v); return ok }},
		{"continuous-stepper", func(v any) bool { _, ok := AsContinuousStepper(v); return ok }},
	}
	full := allCaps{}
	var none struct{}
	for _, p := range probes {
		if !p.ok(full) {
			t.Errorf("%s: helper does not find the capability on a full implementation", p.name)
		}
		if p.ok(&none) {
			t.Errorf("%s: helper claims the capability on a bare value", p.name)
		}
	}
}
