package sim

import (
	"errors"
	"testing"

	"sspp/internal/rng"
)

// countdownProto becomes correct after a fixed number of interactions and
// optionally regresses once for a stretch, to exercise flip tracking.
type countdownProto struct {
	n         int
	t         uint64
	correctAt uint64
	regressAt uint64 // if > 0, incorrect during [regressAt, regressAt+span)
	span      uint64
}

func (c *countdownProto) N() int { return c.n }

func (c *countdownProto) Interact(a, b int) {
	if a == b {
		panic("scheduler produced identical pair")
	}
	c.t++
}

func (c *countdownProto) Correct() bool {
	if c.t < c.correctAt {
		return false
	}
	if c.regressAt > 0 && c.t >= c.regressAt && c.t < c.regressAt+c.span {
		return false
	}
	return true
}

func TestRunStabilizes(t *testing.T) {
	p := &countdownProto{n: 8, correctAt: 100}
	res := Run(p, rng.New(1), Options{MaxInteractions: 1000, CheckEvery: 1})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Stabilized {
		t.Fatal("expected stabilization")
	}
	if res.StabilizedAt != 100 {
		t.Fatalf("StabilizedAt = %d, want 100", res.StabilizedAt)
	}
	if res.FirstCorrectAt != 100 {
		t.Fatalf("FirstCorrectAt = %d, want 100", res.FirstCorrectAt)
	}
	if res.Flips != 1 {
		t.Fatalf("Flips = %d, want 1", res.Flips)
	}
}

func TestRunTracksRegression(t *testing.T) {
	p := &countdownProto{n: 8, correctAt: 50, regressAt: 200, span: 100}
	res := Run(p, rng.New(2), Options{MaxInteractions: 1000, CheckEvery: 1})
	if !res.Stabilized {
		t.Fatal("expected stabilization")
	}
	if res.FirstCorrectAt != 50 {
		t.Fatalf("FirstCorrectAt = %d, want 50", res.FirstCorrectAt)
	}
	if res.StabilizedAt != 300 {
		t.Fatalf("StabilizedAt = %d, want 300", res.StabilizedAt)
	}
	if res.Flips != 3 {
		t.Fatalf("Flips = %d, want 3", res.Flips)
	}
}

func TestRunNeverStabilizes(t *testing.T) {
	p := &countdownProto{n: 4, correctAt: 1 << 60}
	res := Run(p, rng.New(3), Options{MaxInteractions: 500})
	if res.Stabilized {
		t.Fatal("unexpected stabilization")
	}
	if res.StabilizedAt != NeverStabilized || res.FirstCorrectAt != NeverStabilized {
		t.Fatalf("sentinels not set: %+v", res)
	}
	if res.Interactions != 500 {
		t.Fatalf("Interactions = %d, want 500", res.Interactions)
	}
}

func TestRunEarlyStop(t *testing.T) {
	p := &countdownProto{n: 4, correctAt: 10}
	res := Run(p, rng.New(4), Options{
		MaxInteractions:    1 << 30,
		CheckEvery:         1,
		StopAfterStableFor: 100,
	})
	if !res.Stabilized {
		t.Fatal("expected stabilization")
	}
	if res.Interactions >= 1<<30 || res.Interactions < 110 {
		t.Fatalf("Interactions = %d, want early stop near 110", res.Interactions)
	}
}

func TestRunInvariantAborts(t *testing.T) {
	p := &countdownProto{n: 4, correctAt: 0}
	boom := errors.New("boom")
	calls := 0
	res := Run(p, rng.New(5), Options{
		MaxInteractions: 1000,
		CheckEvery:      10,
		Invariant: func() error {
			calls++
			if calls > 3 {
				return boom
			}
			return nil
		},
	})
	if res.Err == nil || !errors.Is(res.Err, boom) {
		t.Fatalf("expected invariant error, got %v", res.Err)
	}
	if res.Stabilized {
		t.Fatal("aborted run must not be stabilized")
	}
}

func TestRunValidation(t *testing.T) {
	if res := Run(&countdownProto{n: 1}, rng.New(1), Options{MaxInteractions: 10}); res.Err == nil {
		t.Fatal("expected error for n < 2")
	}
	if res := Run(&countdownProto{n: 4}, rng.New(1), Options{}); res.Err == nil {
		t.Fatal("expected error for MaxInteractions = 0")
	}
}

func TestRunInitiallyCorrect(t *testing.T) {
	p := &countdownProto{n: 4, correctAt: 0}
	res := Run(p, rng.New(6), Options{MaxInteractions: 100, CheckEvery: 1})
	if !res.Stabilized || res.StabilizedAt != 0 {
		t.Fatalf("expected StabilizedAt=0, got %+v", res)
	}
}

func TestParallelTime(t *testing.T) {
	res := Result{Stabilized: true, StabilizedAt: 800}
	if got := res.ParallelTime(100); got != 8 {
		t.Fatalf("ParallelTime = %v, want 8", got)
	}
	res.Stabilized = false
	if got := res.ParallelTime(100); got != -1 {
		t.Fatalf("ParallelTime of unstabilized = %v, want -1", got)
	}
}

func TestSteps(t *testing.T) {
	p := &countdownProto{n: 4}
	Steps(p, rng.New(7), 123)
	if p.t != 123 {
		t.Fatalf("Steps performed %d interactions, want 123", p.t)
	}
}

func TestOnCheckHook(t *testing.T) {
	p := &countdownProto{n: 4, correctAt: 5}
	var polls int
	Run(p, rng.New(8), Options{MaxInteractions: 50, CheckEvery: 5, OnCheck: func(uint64, bool) { polls++ }})
	if polls != 11 { // initial poll + 10 cadence polls
		t.Fatalf("polls = %d, want 11", polls)
	}
}

func TestEvents(t *testing.T) {
	e := NewEvents()
	if e.Count("x") != 0 {
		t.Fatal("fresh sink should be empty")
	}
	e.IncAt("reset", 10)
	e.IncAt("reset", 30)
	e.Inc("top")
	if e.Count("reset") != 2 || e.Count("top") != 1 {
		t.Fatalf("counts wrong: %s", e)
	}
	if at, ok := e.FirstAt("reset"); !ok || at != 10 {
		t.Fatalf("FirstAt = %d,%v", at, ok)
	}
	if at, ok := e.LastAt("reset"); !ok || at != 30 {
		t.Fatalf("LastAt = %d,%v", at, ok)
	}
	if _, ok := e.FirstAt("missing"); ok {
		t.Fatal("missing event should report !ok")
	}
	if got := e.Names(); len(got) != 2 || got[0] != "reset" || got[1] != "top" {
		t.Fatalf("Names = %v", got)
	}
	if e.String() != "reset=2 top=1" {
		t.Fatalf("String = %q", e.String())
	}
	e.Reset()
	if e.Count("reset") != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestEventsNilSafe(t *testing.T) {
	var e *Events
	e.Inc("x") // must not panic
	if e.Count("x") != 0 {
		t.Fatal("nil sink should count zero")
	}
	if _, ok := e.FirstAt("x"); ok {
		t.Fatal("nil sink FirstAt should be !ok")
	}
	if _, ok := e.LastAt("x"); ok {
		t.Fatal("nil sink LastAt should be !ok")
	}
	if e.Names() != nil {
		t.Fatal("nil sink Names should be nil")
	}
	e.Reset() // must not panic
}
