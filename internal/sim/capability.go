// capability.go defines the optional capability interfaces a Protocol may
// implement on top of the minimal N/Interact/Correct contract. The run
// engine and the public facade never require them: they type-assert at the
// call site and degrade gracefully (e.g. the safe-set stop condition falls
// back to confirmed correct output for protocols without a safe set). This
// is what lets one engine drive every protocol — the paper's ElectLeader_r,
// the comparison baselines, and user-supplied protocols alike.

package sim

import "sspp/internal/rng"

// Ranker is implemented by protocols whose output is a full ranking of the
// population (leader election by rank 1), not just a leader bit.
type Ranker interface {
	// RankOutput returns agent i's current rank output (1-based; 0 or an
	// out-of-range value when the agent has not committed to a rank).
	RankOutput(i int) int32
	// CorrectRanking reports whether the rank outputs form a permutation of
	// [1, n].
	CorrectRanking() bool
}

// SafeSetter is implemented by protocols with a checkable safe set: a set of
// configurations that is closed under every interaction and in which the
// output is correct — correct forever, the paper's notion of stabilization
// (Lemma 6.1). Protocols without this capability are measured at the output
// level instead (correct output held through a confirmation window).
type SafeSetter interface {
	InSafeSet() bool
}

// Injectable is implemented by protocols that support adversarial state
// rewrites: whole-population starting configurations drawn from a named
// class, and mid-run transient corruption of k agents. Self-stabilizing
// protocols recover from both; the engine uses the capability for
// adversarial Ensemble grids and scheduled in-run fault bursts.
type Injectable interface {
	// Inject rewrites the current configuration according to the named
	// adversary class (internal/adversary class names), drawing any needed
	// randomness from src. It returns an error when the class is unknown or
	// not realizable for this protocol.
	Inject(class string, src *rng.PRNG) error
	// InjectTransient corrupts k uniformly chosen agents in place with
	// random type-valid states, returning the victim indices.
	InjectTransient(k int, src *rng.PRNG) []int
}

// Snapshot is a generic point-in-time view of a population: the fields a
// protocol cannot fill (e.g. role counts for protocols without roles) stay
// zero. Interactions is filled by the engine, the rest by the protocol's
// Snapshotter implementation (or by generic fallbacks).
type Snapshot struct {
	// Interactions is the total interactions executed so far.
	Interactions uint64
	// Resetting, Ranking, Verifying are role counts (ElectLeader_r only).
	Resetting, Ranking, Verifying int
	// Leaders is the number of agents currently outputting "leader".
	Leaders int
	// HardResets, SoftResets, Tops are cumulative event counts.
	HardResets, SoftResets, Tops uint64
	// InSafeSet reports whether the configuration is in the safe set (always
	// false for protocols without one).
	InSafeSet bool
}

// Snapshotter is implemented by protocols that can export a richer state
// summary than the generic Correct/Leaders fallback.
type Snapshotter interface {
	// SnapshotInto fills every field of s the protocol knows about; the
	// engine pre-fills Interactions.
	SnapshotInto(s *Snapshot)
}

// Clocked is implemented by protocols that count their own interactions;
// the engine then reports the protocol's clock instead of its own tally, so
// direct protocol-level steps stay visible.
type Clocked interface {
	Clock() uint64
}
