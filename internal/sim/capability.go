// capability.go defines the optional capability interfaces a Protocol may
// implement on top of the minimal N/Interact/Correct contract. The run
// engine and the public facade never require them: they type-assert at the
// call site and degrade gracefully (e.g. the safe-set stop condition falls
// back to confirmed correct output for protocols without a safe set). This
// is what lets one engine drive every protocol — the paper's ElectLeader_r,
// the comparison baselines, and user-supplied protocols alike.

package sim

import "sspp/internal/rng"

// Ranker is implemented by protocols whose output is a full ranking of the
// population (leader election by rank 1), not just a leader bit.
type Ranker interface {
	// RankOutput returns agent i's current rank output (1-based; 0 or an
	// out-of-range value when the agent has not committed to a rank).
	RankOutput(i int) int32
	// CorrectRanking reports whether the rank outputs form a permutation of
	// [1, n].
	CorrectRanking() bool
}

// LeaderIndexer is implemented by protocols that can name the index of the
// unique leader agent (ok false while zero or several agents output
// "leader"). It is a per-agent identity surface: count-based backends do not
// implement it, and the engine's Leader() degrades to (-1, false) there.
type LeaderIndexer interface {
	LeaderIndex() (int, bool)
}

// SafeSetter is implemented by protocols with a checkable safe set: a set of
// configurations that is closed under every interaction and in which the
// output is correct — correct forever, the paper's notion of stabilization
// (Lemma 6.1). Protocols without this capability are measured at the output
// level instead (correct output held through a confirmation window).
type SafeSetter interface {
	InSafeSet() bool
}

// Injectable is implemented by protocols that support adversarial state
// rewrites: whole-population starting configurations drawn from a named
// class, and mid-run transient corruption of k agents. Self-stabilizing
// protocols recover from both; the engine uses the capability for
// adversarial Ensemble grids and scheduled in-run fault bursts.
type Injectable interface {
	// Inject rewrites the current configuration according to the named
	// adversary class (internal/adversary class names), drawing any needed
	// randomness from src. It returns an error when the class is unknown or
	// not realizable for this protocol.
	Inject(class string, src *rng.PRNG) error
	// InjectTransient corrupts k uniformly chosen agents in place with
	// random type-valid states, returning the victim indices.
	InjectTransient(k int, src *rng.PRNG) []int
}

// Snapshot is a generic point-in-time view of a population: the fields a
// protocol cannot fill (e.g. role counts for protocols without roles) stay
// zero. Interactions is filled by the engine, the rest by the protocol's
// Snapshotter implementation (or by generic fallbacks).
type Snapshot struct {
	// Interactions is the total interactions executed so far.
	Interactions uint64
	// Resetting, Ranking, Verifying are role counts (ElectLeader_r only).
	Resetting, Ranking, Verifying int
	// Leaders is the number of agents currently outputting "leader".
	Leaders int
	// HardResets, SoftResets, Tops are cumulative event counts.
	HardResets, SoftResets, Tops uint64
	// InSafeSet reports whether the configuration is in the safe set (always
	// false for protocols without one).
	InSafeSet bool
}

// Snapshotter is implemented by protocols that can export a richer state
// summary than the generic Correct/Leaders fallback.
type Snapshotter interface {
	// SnapshotInto fills every field of s the protocol knows about; the
	// engine pre-fills Interactions.
	SnapshotInto(s *Snapshot)
}

// Clocked is implemented by protocols that count their own interactions;
// the engine then reports the protocol's clock instead of its own tally, so
// direct protocol-level steps stay visible.
type Clocked interface {
	Clock() uint64
}

// Churnable is implemented by agent-level protocols that support population
// churn: agents joining and leaving mid-run (the dynamic half of the
// robustness story — self-stabilization under ongoing disruption, not just
// after a single burst). Joins enter in an adversary-class-chosen state; the
// engine applies the leaves of a same-instant event group before its joins,
// so replacement-churn protocols (ChurnBounds returning (n, n)) see each
// departure paired with an arrival.
type Churnable interface {
	// JoinAgent adds one agent in the state the adversary class names (""
	// selects the protocol's canonical clean join state), drawing randomness
	// from src, and returns the new agent's index. Classes not realizable as
	// a join state return an error.
	JoinAgent(class string, src *rng.PRNG) (int, error)
	// LeaveAgent removes agent i from the population.
	LeaveAgent(i int) error
	// ChurnBounds returns the population sizes the protocol supports: churn
	// schedules must keep n within [minN, maxN] (maxN 0 means unbounded).
	// Equal bounds declare replacement churn only (leaves paired with joins
	// at the same instant).
	ChurnBounds() (minN, maxN int)
}

// CountChurnable is implemented by count-based backends whose model supports
// churn (CompactModel.Churn). The engine prefers it over Churnable: agent
// identities do not exist in species form, so joins and leaves act on the
// state multiset directly.
type CountChurnable interface {
	// CanChurn reports whether the running model declares churn hooks; the
	// method set alone cannot express this, so the engine gates on it.
	CanChurn() bool
	// ChurnBounds mirrors Churnable.ChurnBounds.
	ChurnBounds() (minN, maxN int)
	// JoinState adds one agent in the state the model's Join hook picks for
	// the class.
	JoinState(class string, src *rng.PRNG) error
	// LeaveState removes one uniformly chosen agent (count-weighted over
	// states — the same law as a uniform agent pick) and returns its state
	// key.
	LeaveState(src *rng.PRNG) (uint64, error)
}

// StateKeyer is implemented by agent-level protocols whose per-agent state
// round-trips through the species-form key encoding of their CompactModel.
// The workload tracer uses it to record pre-interaction state pairs and
// per-event count deltas, which is what makes a recorded workload replay
// bit-exactly on the count-based backend.
type StateKeyer interface {
	// StateKey returns agent i's state in the species key encoding.
	StateKey(i int) uint64
}

// CountView is a read-only view of a population represented as a multiset of
// states (the species form): state keys with their agent counts. Predicates
// supplied through CompactModel receive one to inspect the configuration
// without materializing per-agent state.
type CountView interface {
	// N returns the population size (the sum of all counts).
	N() int
	// Occupied returns the number of states with a positive count.
	Occupied() int
	// Count returns the number of agents currently in state key (0 when the
	// state is unoccupied).
	Count(key uint64) int64
	// Each calls fn for every occupied state until fn returns false. The
	// iteration order is unspecified and must not be relied on.
	Each(fn func(key uint64, count int64) bool)
}

// CompactModel is a protocol described in species form: dynamics over opaque
// uint64 state keys instead of indexed agents. Because the population model
// is symmetric — the uniform scheduler picks agents, not identities, and the
// transition depends only on the two states — the multiset of states is a
// Markov chain of its own, and a count-based engine (internal/species) can
// run it with per-interaction cost depending on the number of occupied
// states, not on n. Protocols whose per-state structure is too rich for a
// uint64 intern their states behind the keys (the model owns the table).
type CompactModel struct {
	// StateSpace, when positive, declares that every key the model ever
	// produces lies in [0, StateSpace): the engine then uses dense arrays
	// instead of a hash map for state lookup.
	StateSpace uint64
	// Diagonal declares that ordered pairs of distinct states never change
	// state (the protocol reacts only on the diagonal, like CIW's (k, k)
	// rule). The engine then skips runs of silent interactions in one
	// geometric draw instead of sampling them individually.
	Diagonal bool
	// Deterministic declares that React never draws from src: the successor
	// states are a pure function of the ordered state pair. τ-leaping
	// requires it — a reaction channel's effect is probed once per leap and
	// applied as a batched count delta, which is only sound when every
	// firing of the channel has the identical effect.
	Deterministic bool
	// Init returns the initial configuration as parallel state/count slices
	// (counts positive, keys distinct, counts summing to the population
	// size). It captures the instance the model was derived from, so a
	// species run starts exactly where the agent-level instance stood.
	Init func() (keys []uint64, counts []int64)
	// React applies the transition function to the ordered state pair
	// (a initiates, b responds) and returns the successor states, drawing
	// any randomness from src.
	React func(a, b uint64, src *rng.PRNG) (uint64, uint64)
	// Leader reports whether agents in state key output "leader". Required
	// unless Correct is provided.
	Leader func(key uint64) bool
	// Rank returns the rank output of state key (0 when uncommitted); nil
	// when the protocol has no ranking output.
	Rank func(key uint64) int32
	// Correct, when non-nil, overrides the default output predicate
	// (exactly one agent in a leader state).
	Correct func(v CountView) bool
	// SafeSet, when non-nil, reports whether the configuration is in the
	// protocol's safe set; the species system then exposes the safe-set
	// capability.
	SafeSet func(v CountView) bool
	// Churn, when non-nil, declares that the model supports population churn
	// (joins and leaves changing n mid-run); the species system then exposes
	// the CountChurnable capability.
	Churn *CompactChurn
	// Release, when non-nil, is called by the engine after a state's count
	// returns to zero (never mid-transition: only once the full interaction
	// or churn event has settled). Models that intern rich states behind
	// their keys use it to evict dead table entries and recycle the key —
	// without it, a protocol whose reachable state space is effectively
	// unbounded (ElectLeader_r's timers and message multisets) would grow
	// its intern table linearly with the interaction count. After Release,
	// the model may hand the same key out again for a different state, so
	// the engine must not cache released keys.
	Release func(key uint64)
}

// CompactChurn is the churn declaration of a CompactModel: how joins pick
// their state, and how the key space rescales when the population size
// changes (e.g. CIW's rank keys live in [1, n], so a shrink must clamp
// stranded out-of-range ranks for the protocol to stay live).
type CompactChurn struct {
	// MinN and MaxN bound the population sizes the model supports (MaxN 0
	// means unbounded); churn schedules are validated against them.
	MinN, MaxN int
	// Join returns the state key of an agent joining under the named
	// adversary class ("" selects the clean join state). n is the population
	// size after the join; v views the configuration before it (for classes
	// that copy an existing agent's state).
	Join func(class string, n int, v CountView, src *rng.PRNG) (uint64, error)
	// Rescale, when non-nil, is called whenever the population size changes:
	// it returns the new key-space bound (for dense-table growth) and an
	// optional remap merging keys that the new size makes invalid (nil when
	// every existing key stays valid). It must also update any internal
	// population-size state the model's React closure reads.
	Rescale func(n int) (stateSpace uint64, remap func(uint64) uint64)
}

// Compactable is implemented by protocols that can describe themselves as a
// CompactModel, unlocking the count-based species backend for population
// sizes far beyond what one-struct-per-agent storage reaches.
type Compactable interface {
	Compact() CompactModel
}

// CountBased is implemented by count-based backends (internal/species) that
// draw their own interaction pairs by sampling states from counts. Agent
// identities do not exist for them: the engine must not feed them pairs from
// a non-uniform scheduler, and instead binds the uniform stream and steps
// them in bulk.
type CountBased interface {
	// BindSource sets the randomness stream used for state-pair sampling
	// (the engine passes its uniform scheduler stream).
	BindSource(src *rng.PRNG)
	// StepMany executes k interactions of the uniform population model.
	StepMany(k uint64)
}

// ContinuousStepper is implemented by count-based backends that can run
// under the continuous-time clock natively: they accrue parallel time
// inside their own stepping (exponential holding times at rate n/2,
// following the live population size) and, when leaping is enabled and the
// model is deterministic, batch whole reaction bundles per draw
// (τ-leaping). The engine switches the backend into continuous mode once,
// before stepping, and reads the native clock back through ParallelTime.
type ContinuousStepper interface {
	// StartContinuous switches the backend to the continuous clock, drawing
	// holding times from timeSrc (a stream dedicated to the clock), with
	// τ-leaping enabled when leap is true and the model supports it.
	StartContinuous(timeSrc *rng.PRNG, leap bool)
	// ParallelTime returns the accumulated parallel time.
	ParallelTime() float64
}

// Capability dispatch helpers. Everything outside this file asks for a
// capability through one of these instead of type-asserting against the
// interface directly (enforced by the capdispatch analyzer, DESIGN.md §11).
// That keeps this file the single place that knows the full capability
// surface: adding or renaming a capability is a change here, not a grep for
// scattered assertions — and wrapper types that forward capabilities have
// one canonical list to mirror.

// AsRanker reports whether v exposes the full-ranking output capability.
func AsRanker(v any) (Ranker, bool) { r, ok := v.(Ranker); return r, ok }

// AsLeaderIndexer reports whether v can name the unique leader agent's
// index (a per-agent identity surface; absent on count-based backends).
func AsLeaderIndexer(v any) (LeaderIndexer, bool) { l, ok := v.(LeaderIndexer); return l, ok }

// AsSafeSetter reports whether v exposes a checkable safe set.
func AsSafeSetter(v any) (SafeSetter, bool) { s, ok := v.(SafeSetter); return s, ok }

// AsInjectable reports whether v supports adversarial state rewrites.
func AsInjectable(v any) (Injectable, bool) { i, ok := v.(Injectable); return i, ok }

// AsSnapshotter reports whether v can export a rich state summary.
func AsSnapshotter(v any) (Snapshotter, bool) { s, ok := v.(Snapshotter); return s, ok }

// AsClocked reports whether v counts its own interactions.
func AsClocked(v any) (Clocked, bool) { c, ok := v.(Clocked); return c, ok }

// AsChurnable reports whether v supports agent-level population churn.
func AsChurnable(v any) (Churnable, bool) { c, ok := v.(Churnable); return c, ok }

// AsCountChurnable reports whether v supports count-based population churn.
func AsCountChurnable(v any) (CountChurnable, bool) {
	c, ok := v.(CountChurnable)
	return c, ok
}

// AsStateKeyer reports whether v exposes the species key encoding of its
// per-agent state.
func AsStateKeyer(v any) (StateKeyer, bool) { s, ok := v.(StateKeyer); return s, ok }

// AsCompactable reports whether v can describe itself as a CompactModel.
func AsCompactable(v any) (Compactable, bool) { c, ok := v.(Compactable); return c, ok }

// AsCountBased reports whether v is a count-based backend that samples its
// own interaction pairs.
func AsCountBased(v any) (CountBased, bool) { c, ok := v.(CountBased); return c, ok }

// AsContinuousStepper reports whether v can run under the continuous-time
// clock natively (accruing parallel time inside its own stepping).
func AsContinuousStepper(v any) (ContinuousStepper, bool) {
	c, ok := v.(ContinuousStepper)
	return c, ok
}
