// topology.go is the scheduler side of the interaction-topology layer: an
// EdgeSampler turns a materialized interaction graph (internal/graph) into a
// Scheduler by drawing uniformly random edge indices from a PRNG stream.
// The complete graph never takes this path — the plain uniform scheduler
// (*rng.PRNG) IS the complete topology, with zero per-interaction overhead —
// so topology support costs nothing on the paper's model. Schedules dealt by
// an EdgeSampler are recorded as edge indices (one int32 per interaction
// instead of a pair), and replay resolves them through the same graph, so a
// replayed topology run is exact by construction.

package sim

import (
	"sspp/internal/graph"
	"sspp/internal/rng"
)

// EdgeSampler is a Scheduler over a fixed interaction graph: every Pair is
// a uniformly random directed edge of the graph, drawn from the bound PRNG
// stream. The uniform-over-edges law is the standard generalization of the
// population model to arbitrary interaction graphs (every enabled ordered
// pair equally likely per step).
type EdgeSampler struct {
	g   *graph.Graph
	src *rng.PRNG
}

// NewEdgeSampler builds an edge-set scheduler over g drawing edge indices
// from src.
func NewEdgeSampler(g *graph.Graph, src *rng.PRNG) *EdgeSampler {
	return &EdgeSampler{g: g, src: src}
}

// Pair deals a uniformly random directed edge of the graph. The population
// size argument is fixed by the graph and ignored.
//
//sspp:hotpath
func (e *EdgeSampler) Pair(int) (a, b int) {
	return e.g.Edge(e.src.Intn(e.g.M()))
}

// PairEdge deals the next pair together with the edge index it was sampled
// from, for edge-indexed recordings.
//
//sspp:hotpath
func (e *EdgeSampler) PairEdge(int) (a, b int, edge int32) {
	idx := e.src.Intn(e.g.M())
	a, b = e.g.Edge(idx)
	return a, b, int32(idx)
}

// Graph returns the interaction graph the sampler draws from.
func (e *EdgeSampler) Graph() *graph.Graph { return e.g }

// EdgePairer is the optional scheduler capability behind edge-indexed
// recordings: a scheduler that deals pairs by sampling a graph's edge set
// exposes the index of each sampled edge and the graph itself, so a
// Recorder can store one edge index per interaction and Replay can resolve
// the indices through the identical graph.
type EdgePairer interface {
	Scheduler
	PairEdge(n int) (a, b int, edge int32)
	Graph() *graph.Graph
}

var _ EdgePairer = (*EdgeSampler)(nil)

// GraphScheduler is the capability the engine probes to decide whether a
// user-supplied scheduler may drive a non-complete topology: a scheduler
// that deals pairs from an interaction graph's edge set reports that graph
// (an edge-indexed replayer reports the recording's). Schedulers without it
// — or reporting nil — deal pairs from [n]² and are rejected for topology
// runs rather than silently simulating the complete graph.
type GraphScheduler interface {
	Graph() *graph.Graph
}
