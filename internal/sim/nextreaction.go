// nextreaction.go generalizes the continuous clock to interaction graphs:
// on a non-complete topology every edge carries its own exponential clock
// (rate n/(2M) per directed edge, so the total rate stays n/2 and the jump
// chain remains uniform over edges — the same law the discrete EdgeSampler
// deals), and the next interaction is the edge whose clock fires first.
// This is Gibson–Bruck's next-reaction method specialized to equal rates:
// absolute firing times live in an indexed binary min-heap keyed by time,
// the fired edge redraws its clock and is sifted back down from the root,
// and the index (pos) supports out-of-band key updates. Each interaction
// costs O(log M) with zero allocations.

package sim

import (
	"sspp/internal/graph"
	"sspp/internal/rng"
)

// NextReaction is a continuous-time Scheduler over a fixed interaction
// graph: Pair deals the edge with the earliest clock, advances the global
// time to that clock, and redraws the edge's next firing time. It
// implements the same scheduler capabilities as EdgeSampler (EdgePairer,
// GraphScheduler) plus Timed, so recordings capture edge indices with
// native event times and the engine reads parallel time straight from the
// schedule.
type NextReaction struct {
	g       *graph.Graph
	src     *rng.PRNG
	invRate float64 // mean holding time per edge clock: 2M/n
	t       float64

	heap []int32   // heap[i] is the edge at heap position i
	pos  []int32   // pos[e] is edge e's heap position
	key  []float64 // key[e] is edge e's absolute firing time
}

// NewNextReaction builds a next-reaction scheduler over g, drawing
// exponential clocks from src, with the global clock starting at parallel
// time start (pass the system's accumulated time so successive runs
// continue the same timeline). One stream drives both halves of the
// schedule — which edge fires and when — because in the next-reaction
// method they are the same draws.
func NewNextReaction(g *graph.Graph, src *rng.PRNG, start float64) *NextReaction {
	m := g.M()
	nr := &NextReaction{
		g:       g,
		src:     src,
		invRate: 2 * float64(m) / float64(g.N()),
		t:       start,
		heap:    make([]int32, m),
		pos:     make([]int32, m),
		key:     make([]float64, m),
	}
	for e := 0; e < m; e++ {
		nr.heap[e] = int32(e)
		nr.pos[e] = int32(e)
		nr.key[e] = start + src.Exp()*nr.invRate
	}
	for i := m/2 - 1; i >= 0; i-- {
		nr.siftDown(i)
	}
	return nr
}

// Pair deals the edge with the earliest clock and advances the global time
// to it. The population size argument is fixed by the graph and ignored.
//
//sspp:hotpath
func (nr *NextReaction) Pair(int) (a, b int) {
	return nr.g.Edge(int(nr.fire()))
}

// PairEdge deals the next pair together with the edge index it fired on,
// for edge-indexed (and timed) recordings.
//
//sspp:hotpath
func (nr *NextReaction) PairEdge(int) (a, b int, edge int32) {
	e := nr.fire()
	a, b = nr.g.Edge(int(e))
	return a, b, e
}

// fire pops the earliest edge clock, advances the global time, redraws the
// edge's next firing time, and restores the heap from the root.
//
//sspp:hotpath
func (nr *NextReaction) fire() int32 {
	e := nr.heap[0]
	nr.t = nr.key[e]
	nr.key[e] = nr.t + nr.src.Exp()*nr.invRate
	nr.siftDown(0)
	return e
}

// siftDown restores the min-heap property downward from position i,
// keeping the edge→position index current.
//
//sspp:hotpath
func (nr *NextReaction) siftDown(i int) {
	h, key := nr.heap, nr.key
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		min := l
		if r := l + 1; r < n && key[h[r]] < key[h[l]] {
			min = r
		}
		if key[h[i]] <= key[h[min]] {
			return
		}
		h[i], h[min] = h[min], h[i]
		nr.pos[h[i]] = int32(i)
		nr.pos[h[min]] = int32(min)
		i = min
	}
}

// siftUp restores the min-heap property upward from position i.
//
//sspp:hotpath
func (nr *NextReaction) siftUp(i int) {
	h, key := nr.heap, nr.key
	for i > 0 {
		parent := (i - 1) / 2
		if key[h[parent]] <= key[h[i]] {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		nr.pos[h[i]] = int32(i)
		nr.pos[h[parent]] = int32(parent)
		i = parent
	}
}

// UpdateKey moves edge e's absolute firing time to when and re-sifts it in
// either direction — the indexed-heap key-update hook (used when per-edge
// rates change out of band).
func (nr *NextReaction) UpdateKey(e int32, when float64) {
	old := nr.key[e]
	nr.key[e] = when
	if when < old {
		nr.siftUp(int(nr.pos[e]))
	} else {
		nr.siftDown(int(nr.pos[e]))
	}
}

// Time returns the parallel time of the most recently dealt pair.
func (nr *NextReaction) Time() float64 { return nr.t }

// Graph returns the interaction graph the scheduler fires edges of.
func (nr *NextReaction) Graph() *graph.Graph { return nr.g }

var (
	_ EdgePairer     = (*NextReaction)(nil)
	_ GraphScheduler = (*NextReaction)(nil)
	_ Timed          = (*NextReaction)(nil)
)
