// recwire.go is the versioned wire format of captured schedules: a Recording
// encodes to JSON stamped with its version, and decoding rejects unknown
// versions and internally inconsistent payloads up front, so a schedule
// archived today replays bit-exactly against any future engine that still
// speaks its version. Pair-mode recordings store the explicit pair stream;
// edge-indexed recordings store the resolving graph's full edge list plus one
// index per interaction, reconstructing the graph on decode (graph.FromEdges)
// so replay does not depend on regenerating the topology from (name, seed).
// Version 1 is the discrete layout; version 2 adds per-interaction event
// times (continuous-clock captures). Discrete recordings still encode as
// version 1, byte for byte, so archived version-1 goldens stay stable.

package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"sspp/internal/graph"
)

// RecordingVersion identifies the newest Recording wire layout this build
// writes (timed recordings). Discrete recordings encode as version 1.
const RecordingVersion = 2

// recordingWire is the JSON layout of a Recording. Pair mode fills Pairs;
// edge-indexed mode fills Topology, N, EdgeList and Edges; timed
// (version 2) recordings additionally fill Times.
type recordingWire struct {
	Version int `json:"version"`
	// Topology is the resolving graph's generator name (edge mode only).
	Topology string `json:"topology,omitempty"`
	// N is the resolving graph's population (edge mode only).
	N int `json:"n,omitempty"`
	// EdgeList is the resolving graph's directed edge list (edge mode only).
	EdgeList [][2]int `json:"edge_list,omitempty"`
	// Edges holds one edge index per interaction (edge mode only).
	Edges []int32 `json:"edges,omitempty"`
	// Pairs holds the flat (a, b) pair stream (pair mode only).
	Pairs []int32 `json:"pairs,omitempty"`
	// Times holds one parallel-time stamp per interaction (version 2 only).
	Times []float64 `json:"times,omitempty"`
}

// Encode writes the recording as versioned JSON: version 1 for discrete
// recordings (the historical byte layout, unchanged), version 2 when the
// recording carries event times.
func (rec *Recording) Encode(w io.Writer) error {
	wire := recordingWire{Version: 1}
	if rec.Timed() {
		wire.Version = RecordingVersion
		wire.Times = rec.times
	}
	if rec.g != nil {
		wire.Topology = rec.g.Name()
		wire.N = rec.g.N()
		wire.EdgeList = make([][2]int, rec.g.M())
		for i := range wire.EdgeList {
			a, b := rec.g.Edge(i)
			wire.EdgeList[i] = [2]int{a, b}
		}
		wire.Edges = rec.edges
	} else {
		wire.Pairs = rec.pairs
	}
	enc := json.NewEncoder(w)
	return enc.Encode(wire)
}

// DecodeRecording reads a versioned JSON recording, rejecting unknown
// versions and internally inconsistent payloads (odd pair streams, edge
// indices outside the stored graph, mixed modes, event times on a
// version 1 recording or malformed ones on a version 2).
func DecodeRecording(r io.Reader) (*Recording, error) {
	var wire recordingWire
	dec := json.NewDecoder(r)
	if err := dec.Decode(&wire); err != nil {
		return nil, fmt.Errorf("sim: decoding recording: %w", err)
	}
	if wire.Version < 1 || wire.Version > RecordingVersion {
		return nil, fmt.Errorf("sim: recording version %d not supported (this build speaks versions 1-%d)", wire.Version, RecordingVersion)
	}
	if wire.Version == 1 && len(wire.Times) > 0 {
		return nil, fmt.Errorf("sim: version 1 recording carries event times (times require version 2)")
	}
	if wire.Version == 2 {
		interactions := len(wire.Edges)
		if len(wire.EdgeList) == 0 && wire.Topology == "" && wire.N == 0 {
			interactions = len(wire.Pairs) / 2
		}
		if len(wire.Times) != interactions {
			return nil, fmt.Errorf("sim: recording stores %d event times for %d interactions", len(wire.Times), interactions)
		}
		prev := 0.0
		for i, t := range wire.Times {
			if math.IsNaN(t) || math.IsInf(t, 0) || t < prev {
				return nil, fmt.Errorf("sim: recording event time %g at interaction %d is not part of a finite non-decreasing timeline", t, i)
			}
			prev = t
		}
	}
	if wire.Topology != "" || wire.N != 0 || len(wire.EdgeList) > 0 {
		if len(wire.Pairs) > 0 {
			return nil, fmt.Errorf("sim: recording mixes edge-indexed and pair modes")
		}
		g, err := graph.FromEdges(wire.Topology, wire.N, wire.EdgeList)
		if err != nil {
			return nil, fmt.Errorf("sim: recording carries an invalid graph: %w", err)
		}
		for i, e := range wire.Edges {
			if e < 0 || int(e) >= g.M() {
				return nil, fmt.Errorf("sim: recording edge index %d at interaction %d outside the stored graph (%d edges)", e, i, g.M())
			}
		}
		return &Recording{edges: wire.Edges, g: g, times: wire.Times}, nil
	}
	if len(wire.Pairs)%2 != 0 {
		return nil, fmt.Errorf("sim: recording pair stream has odd length %d", len(wire.Pairs))
	}
	for i, p := range wire.Pairs {
		if p < 0 {
			return nil, fmt.Errorf("sim: recording pair entry %d is negative (%d)", i, p)
		}
	}
	return &Recording{pairs: wire.Pairs, times: wire.Times}, nil
}
