// recwire.go is the versioned wire format of captured schedules: a Recording
// encodes to JSON stamped with RecordingVersion, and decoding rejects unknown
// versions and internally inconsistent payloads up front, so a schedule
// archived today replays bit-exactly against any future engine that still
// speaks version 1. Pair-mode recordings store the explicit pair stream;
// edge-indexed recordings store the resolving graph's full edge list plus one
// index per interaction, reconstructing the graph on decode (graph.FromEdges)
// so replay does not depend on regenerating the topology from (name, seed).

package sim

import (
	"encoding/json"
	"fmt"
	"io"

	"sspp/internal/graph"
)

// RecordingVersion identifies the Recording wire layout.
const RecordingVersion = 1

// recordingWire is the JSON layout of a Recording. Pair mode fills Pairs;
// edge-indexed mode fills Topology, N, EdgeList and Edges.
type recordingWire struct {
	Version int `json:"version"`
	// Topology is the resolving graph's generator name (edge mode only).
	Topology string `json:"topology,omitempty"`
	// N is the resolving graph's population (edge mode only).
	N int `json:"n,omitempty"`
	// EdgeList is the resolving graph's directed edge list (edge mode only).
	EdgeList [][2]int `json:"edge_list,omitempty"`
	// Edges holds one edge index per interaction (edge mode only).
	Edges []int32 `json:"edges,omitempty"`
	// Pairs holds the flat (a, b) pair stream (pair mode only).
	Pairs []int32 `json:"pairs,omitempty"`
}

// Encode writes the recording as versioned JSON.
func (rec *Recording) Encode(w io.Writer) error {
	wire := recordingWire{Version: RecordingVersion}
	if rec.g != nil {
		wire.Topology = rec.g.Name()
		wire.N = rec.g.N()
		wire.EdgeList = make([][2]int, rec.g.M())
		for i := range wire.EdgeList {
			a, b := rec.g.Edge(i)
			wire.EdgeList[i] = [2]int{a, b}
		}
		wire.Edges = rec.edges
	} else {
		wire.Pairs = rec.pairs
	}
	enc := json.NewEncoder(w)
	return enc.Encode(wire)
}

// DecodeRecording reads a versioned JSON recording, rejecting unknown
// versions and internally inconsistent payloads (odd pair streams, edge
// indices outside the stored graph, mixed modes).
func DecodeRecording(r io.Reader) (*Recording, error) {
	var wire recordingWire
	dec := json.NewDecoder(r)
	if err := dec.Decode(&wire); err != nil {
		return nil, fmt.Errorf("sim: decoding recording: %w", err)
	}
	if wire.Version != RecordingVersion {
		return nil, fmt.Errorf("sim: recording version %d not supported (this build speaks version %d)", wire.Version, RecordingVersion)
	}
	if wire.Topology != "" || wire.N != 0 || len(wire.EdgeList) > 0 {
		if len(wire.Pairs) > 0 {
			return nil, fmt.Errorf("sim: recording mixes edge-indexed and pair modes")
		}
		g, err := graph.FromEdges(wire.Topology, wire.N, wire.EdgeList)
		if err != nil {
			return nil, fmt.Errorf("sim: recording carries an invalid graph: %w", err)
		}
		for i, e := range wire.Edges {
			if e < 0 || int(e) >= g.M() {
				return nil, fmt.Errorf("sim: recording edge index %d at interaction %d outside the stored graph (%d edges)", e, i, g.M())
			}
		}
		return &Recording{edges: wire.Edges, g: g}, nil
	}
	if len(wire.Pairs)%2 != 0 {
		return nil, fmt.Errorf("sim: recording pair stream has odd length %d", len(wire.Pairs))
	}
	for i, p := range wire.Pairs {
		if p < 0 {
			return nil, fmt.Errorf("sim: recording pair entry %d is negative (%d)", i, p)
		}
	}
	return &Recording{pairs: wire.Pairs}, nil
}
