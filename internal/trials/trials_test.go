package trials

import (
	"runtime"
	"testing"
	"time"

	"sspp/internal/rng"
)

// TestRunOrderAndStreams checks that results come back in trial order and
// that each trial's PRNG stream is the i-th sequential fork of the root —
// independent of the worker count.
func TestRunOrderAndStreams(t *testing.T) {
	const n = 64
	const baseSeed = 42
	want := make([]uint64, n)
	root := rng.New(baseSeed)
	for i := 0; i < n; i++ {
		want[i] = root.Fork().Uint64()
	}
	for _, workers := range []int{1, 2, 0} {
		got := Run(workers, n, baseSeed, func(i int, src *rng.PRNG) uint64 {
			return src.Uint64()
		})
		if len(got) != n {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), n)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: trial %d drew %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestRunWorkerIndependence runs trials with deliberately skewed durations
// so completion order differs from trial order, and checks the aggregation
// is unaffected.
func TestRunWorkerIndependence(t *testing.T) {
	const n = 16
	fn := func(i int, src *rng.PRNG) int {
		if i%4 == 0 { // stagger completions
			time.Sleep(time.Millisecond)
		}
		return i * i
	}
	seq := Run(1, n, 7, fn)
	par := Run(8, n, 7, fn)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("trial %d: sequential %d != parallel %d", i, seq[i], par[i])
		}
	}
}

// TestMap checks the item-indexed wrapper.
func TestMap(t *testing.T) {
	items := []int{3, 1, 4, 1, 5, 9, 2, 6}
	got := Map(0, items, 1, func(item int, _ *rng.PRNG) int { return item * 2 })
	for i, item := range items {
		if got[i] != 2*item {
			t.Fatalf("item %d: got %d, want %d", i, got[i], 2*item)
		}
	}
}

// TestRunEmpty checks the degenerate sizes.
func TestRunEmpty(t *testing.T) {
	if got := Run(4, 0, 1, func(int, *rng.PRNG) int { return 1 }); got != nil {
		t.Fatalf("n=0: got %v, want nil", got)
	}
	got := Run(8, 1, 1, func(int, *rng.PRNG) int { return 1 })
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("n=1: got %v", got)
	}
}

// TestForkStreamsDeterministic checks that ForkStreams is a pure function of
// the root state.
func TestForkStreamsDeterministic(t *testing.T) {
	a := ForkStreams(rng.New(5), 8)
	b := ForkStreams(rng.New(5), 8)
	for i := range a {
		if a[i].Uint64() != b[i].Uint64() {
			t.Fatalf("stream %d diverged", i)
		}
	}
}

// TestDefaultWorkers checks the worker-count resolution.
func TestDefaultWorkers(t *testing.T) {
	if got := DefaultWorkers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("DefaultWorkers(0) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := DefaultWorkers(3); got != 3 {
		t.Fatalf("DefaultWorkers(3) = %d", got)
	}
}
