// Package trials implements the parallel trial engine: a worker pool that
// fans independent simulation trials (seeds × configuration points) across
// GOMAXPROCS cores while keeping every result bit-identical to a sequential
// run.
//
// Determinism rests on two rules. First, randomness: each trial receives its
// own PRNG stream, pre-forked sequentially from a root generator (rng.Fork)
// before any worker starts, so the streams do not depend on which worker
// picks up which trial. Second, aggregation: results land in a slice indexed
// by trial, so the output order is the trial order regardless of the
// completion order or the worker count. Experiment tables built on top of
// the engine are therefore byte-identical for one worker and for
// GOMAXPROCS workers.
package trials

import (
	"runtime"
	"sync"

	"sspp/internal/rng"
)

// DefaultWorkers resolves a worker-count setting: values < 1 mean
// GOMAXPROCS, anything else is returned unchanged.
func DefaultWorkers(workers int) int {
	if workers < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Run executes fn for every trial index in [0, n) across the given number of
// workers (< 1 means GOMAXPROCS) and returns the results in trial order.
// Each invocation receives a dedicated PRNG forked deterministically from
// baseSeed: stream i is the i-th sequential Fork of rng.New(baseSeed), so
// results do not depend on the worker count or on scheduling. fn must not
// share mutable state between trials.
func Run[T any](workers, n int, baseSeed uint64, fn func(trial int, src *rng.PRNG) T) []T {
	if n <= 0 {
		return nil
	}
	streams := ForkStreams(rng.New(baseSeed), n)
	results := make([]T, n)
	workers = DefaultWorkers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			results[i] = fn(i, streams[i])
		}
		return results
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				results[i] = fn(i, streams[i])
			}
		}()
	}
	wg.Wait()
	return results
}

// Map executes fn over items across the worker pool, returning outputs in
// item order. It is Run for workloads already carrying their own per-item
// seeds; the PRNG stream handed to fn is forked per item as in Run.
func Map[In, Out any](workers int, items []In, baseSeed uint64, fn func(item In, src *rng.PRNG) Out) []Out {
	return Run(workers, len(items), baseSeed, func(i int, src *rng.PRNG) Out {
		return fn(items[i], src)
	})
}

// ForkStreams pre-forks k statistically independent PRNG streams from root.
// The forks are drawn sequentially from root, so the resulting streams are a
// deterministic function of root's state and k alone.
func ForkStreams(root *rng.PRNG, k int) []*rng.PRNG {
	out := make([]*rng.PRNG, k)
	for i := range out {
		out[i] = root.Fork()
	}
	return out
}
