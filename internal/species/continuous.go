// continuous.go runs the count-based backend under the continuous-time
// population clock: interactions form a Poisson process of rate n/2 per unit
// parallel time, so k interactions advance the clock by Gamma(k)·(2/n) (one
// draw per batch, the same trick as sim.TimeKeeper.AdvanceMany). The jump
// chain is untouched — holding times come from a dedicated stream — so the
// exact continuous mode visits the identical state sequence as the discrete
// run with the same sampling seed and merely equips it with native parallel
// time. With leaping enabled (and a deterministic model) StepMany instead
// routes through the τ-leaping integrator in leap.go, falling back to exact
// stepping in doubling chunks whenever a leap is not profitable, so the
// backoff cost of repeated short leaps stays amortized.

package species

import (
	"sspp/internal/rng"
	"sspp/internal/sim"
)

// exactChunk backoff bounds: after a failed leap the backend steps exactly
// for a chunk of interactions before trying to leap again, doubling the
// chunk while leaps keep failing (and resetting on success) so the O(occ²)
// channel-enumeration cost of hopeless leap attempts is amortized.
const (
	leapExactChunkMin = 64
	leapExactChunkMax = 1 << 16
)

// The System steps natively under the continuous clock.
var _ sim.ContinuousStepper = (*System)(nil)

// StartContinuous switches the backend to the continuous-time clock:
// subsequent stepping accrues parallel time from timeSrc (a stream dedicated
// to holding times — sharing the sampling stream would perturb the jump
// chain). With leap true and a model declaring Deterministic dynamics,
// stepping additionally routes through the τ-leaping integrator.
func (s *System) StartContinuous(timeSrc *rng.PRNG, leap bool) {
	s.continuous = true
	s.timeSrc = timeSrc
	s.leap = leap && s.model.Deterministic
	s.exactChunk = leapExactChunkMin
}

// ParallelTime returns the parallel time accrued so far (0 before
// StartContinuous).
func (s *System) ParallelTime() float64 { return s.pt }

// stepContinuous executes k interactions under the continuous clock,
// leaping when enabled and profitable.
func (s *System) stepContinuous(k uint64) {
	if !s.leap {
		s.stepExactTimed(k)
		return
	}
	for k > 0 {
		consumed := s.leapOnce(k)
		if consumed == 0 {
			// Leap not profitable here (too many occupied states, or the
			// selected leap is shorter than exact stepping is worth): run an
			// exact chunk and back off so failed attempts stay amortized.
			chunk := s.exactChunk
			if chunk > k {
				chunk = k
			}
			s.stepExactTimed(chunk)
			k -= chunk
			if s.exactChunk < leapExactChunkMax {
				s.exactChunk *= 2
			}
			continue
		}
		s.exactChunk = leapExactChunkMin
		k -= consumed
	}
}

// stepExactTimed steps the exact jump chain for k interactions and advances
// the parallel-time clock past them in one Gamma draw: the sum of k unit
// exponentials at rate n/2 is Gamma(k)·(2/n).
//
//sspp:hotpath
func (s *System) stepExactTimed(k uint64) {
	if k == 0 {
		return
	}
	if s.diagonal {
		s.stepDiagonal(k)
	} else {
		s.stepAll(k)
	}
	s.pt += s.timeSrc.Gamma(float64(k)) * 2 / float64(s.n)
}
