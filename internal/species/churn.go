// churn.go implements population churn on the count-based backend: joins and
// leaves act on the state multiset directly (agent identities do not exist in
// species form), and the population size n becomes mutable mid-run. The
// stepping paths already recompute the pair mass n(n−1) per call, so the only
// extra machinery is resizing bookkeeping: growing the dense lookup table
// when the model's key space expands with n, and applying the model's Rescale
// remap when a shrink strands keys the new size makes invalid (e.g. CIW ranks
// above the new n, which could otherwise never self-correct).

package species

import (
	"fmt"

	"sspp/internal/rng"
	"sspp/internal/workload"
)

// CanChurn reports whether the running model declares churn hooks. The
// methods below exist on every System, so the engine gates on this before
// trusting the sim.CountChurnable capability.
func (s *System) CanChurn() bool { return s.model.Churn != nil }

// ChurnBounds returns the model's declared population bounds (zero values
// when the model has no churn hooks).
func (s *System) ChurnBounds() (minN, maxN int) {
	if s.model.Churn == nil {
		return 0, 0
	}
	return s.model.Churn.MinN, s.model.Churn.MaxN
}

// JoinState adds one agent in the state the model's Join hook picks for the
// adversary class. The hook sees the pre-join configuration but the post-join
// size, matching the agent-level Churnable contract.
func (s *System) JoinState(class string, src *rng.PRNG) error {
	ch := s.model.Churn
	if ch == nil {
		return fmt.Errorf("species: model has no churn hooks")
	}
	key, err := ch.Join(class, s.n+1, s, src)
	if err != nil {
		return err
	}
	s.setN(s.n + 1)
	if s.dense != nil && key >= uint64(len(s.dense)) {
		return fmt.Errorf("species: join state %#x outside the rescaled state space %d", key, len(s.dense))
	}
	s.add(key, 1)
	return nil
}

// LeaveState removes one uniformly chosen agent — count-weighted over states,
// the same law as a uniform agent pick — and returns its state key. The
// population may dip to one agent mid-event-group (a replacement pair at the
// protocol's minimum size); the workload validator guarantees every group
// boundary restores the declared bounds.
func (s *System) LeaveState(src *rng.PRNG) (uint64, error) {
	if s.model.Churn == nil {
		return 0, fmt.Errorf("species: model has no churn hooks")
	}
	if s.n <= 1 {
		return 0, fmt.Errorf("species: cannot remove an agent from a population of %d", s.n)
	}
	u := int64(src.Uint64n(uint64(s.n)))
	var key uint64
	found := false
	s.Each(func(k uint64, c int64) bool {
		if u < c {
			key, found = k, true
			return false
		}
		u -= c
		return true
	})
	if !found {
		return 0, fmt.Errorf("species: leave sampling ran past the population (corrupted counts)")
	}
	s.add(key, -1)
	s.setN(s.n - 1)
	s.reap(key)
	return key, nil
}

// setN moves the population size to nNew: it grows the key→slot lookup for
// the rescaled state space, lets the model update any internal size state its
// React closure reads, and applies the model's remap to keys the new size
// strands.
func (s *System) setN(nNew int) {
	if ch := s.model.Churn; ch != nil && ch.Rescale != nil {
		space, remap := ch.Rescale(nNew)
		s.growSpace(space)
		if remap != nil {
			s.remapKeys(remap)
		}
	}
	s.n = nNew
}

// growSpace widens the dense lookup table to cover [0, space), migrating to
// the hash map when the space outgrows the dense bound.
func (s *System) growSpace(space uint64) {
	if s.dense == nil || space <= uint64(len(s.dense)) {
		return
	}
	if space > maxDense {
		s.sparse = make(map[uint64]int32, s.occupied)
		for key, slot := range s.dense {
			if slot >= 0 {
				s.sparse[uint64(key)] = slot
			}
		}
		s.dense = nil
		return
	}
	old := len(s.dense)
	grown := make([]int32, space)
	copy(grown, s.dense)
	for i := old; i < int(space); i++ {
		grown[i] = -1
	}
	s.dense = grown
}

// remapKeys merges the counts of every occupied state the remap moves into
// its image state.
func (s *System) remapKeys(remap func(uint64) uint64) {
	type move struct {
		from, to uint64
		count    int64
	}
	var moves []move
	s.Each(func(key uint64, c int64) bool {
		if to := remap(key); to != key {
			moves = append(moves, move{key, to, c})
		}
		return true
	})
	for _, m := range moves {
		s.add(m.from, -m.count)
		s.add(m.to, m.count)
		s.reap(m.from)
	}
}

// ApplyDeltas applies a recorded event's exact effect on the state multiset
// (the trace-replay path): negative deltas first, then the size change and
// rescale bookkeeping, then positive deltas. The remap is deliberately NOT
// re-applied — the recorded deltas already include any clamp merges the
// original event performed, so re-running it would double-apply them; Rescale
// is still called so the model's internal size state and the key space stay
// in sync with the new n.
func (s *System) ApplyDeltas(deltas []workload.KeyDelta) error {
	var shift int64
	for _, d := range deltas {
		shift += d.Delta
		if d.Delta < 0 && s.Count(d.Key) < -d.Delta {
			return fmt.Errorf("species: recorded delta removes %d agents from state %#x holding %d", -d.Delta, d.Key, s.Count(d.Key))
		}
	}
	nNew := s.n + int(shift)
	if nNew < 1 {
		return fmt.Errorf("species: recorded deltas drop the population to %d", nNew)
	}
	for _, d := range deltas {
		if d.Delta < 0 {
			s.add(d.Key, d.Delta)
		}
	}
	if ch := s.model.Churn; ch != nil && ch.Rescale != nil && nNew != s.n {
		space, _ := ch.Rescale(nNew)
		s.growSpace(space)
	}
	s.n = nNew
	for _, d := range deltas {
		if d.Delta > 0 {
			if s.dense != nil && d.Key >= uint64(len(s.dense)) {
				return fmt.Errorf("species: recorded delta state %#x outside the rescaled state space %d", d.Key, len(s.dense))
			}
			s.add(d.Key, d.Delta)
		}
	}
	for _, d := range deltas {
		if d.Delta < 0 {
			s.reap(d.Key)
		}
	}
	return nil
}
