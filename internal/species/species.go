// Package species implements the count-based simulation backend: a
// population is stored as a multiset of states (state key → agent count)
// instead of one struct per agent, and interactions are drawn by sampling
// ordered state pairs from the counts. Because the population model is
// symmetric — the uniform scheduler picks agents uniformly and the
// transition depends only on the two states — the multiset is a Markov
// chain with exactly the law of the agent-level process projected to
// counts, so convergence-time distributions agree between backends (the
// equivalence is enforced statistically in equiv_test.go).
//
// Per-interaction cost depends on the number of occupied states, not on n:
// state pairs are drawn from a Walker alias table kept current under
// incremental count updates (sampler.go), and for protocols that react only
// on the diagonal (sim.CompactModel.Diagonal, e.g. CIW) whole runs of
// silent interactions are skipped with one geometric draw. This reaches
// populations of 10⁶–10⁸ agents that the agent-level backend cannot touch.
//
// A System implements sim.Protocol plus the sim.CountBased capability. Agent
// identities do not exist: Interact ignores its arguments and draws a state
// pair from the bound randomness stream, and the run engine steps the
// backend in bulk (StepMany) under uniform schedulers only.
package species

import (
	"fmt"
	"math"

	"sspp/internal/rng"
	"sspp/internal/sim"
)

// maxDense bounds the dense key→slot lookup table; models declaring a
// larger state space fall back to a hash map.
const maxDense = 1 << 27

// System is a count-based population. Construct with NewSystem and wrap
// with Capable so the engine sees exactly the capability set the model
// declares.
type System struct {
	model sim.CompactModel
	n     int

	// Slot storage: one slot per tracked state. Slots of states whose count
	// returns to zero are recycled through the free list.
	keys     []uint64
	counts   []int64
	isLeader []bool
	free     []int32

	// Key → slot lookup: dense array for models declaring a small
	// StateSpace, hash map otherwise.
	dense  []int32
	sparse map[uint64]int32

	occupied int
	leaders  int64
	clock    uint64
	diagonal bool
	samp     sampler
	src      *rng.PRNG

	// Continuous-clock state (StartContinuous, continuous.go): pt accrues
	// exponential holding times at rate n/2 from the dedicated timeSrc
	// stream, and leap enables τ-leaped bulk stepping (leap.go).
	continuous bool
	leap       bool
	pt         float64
	timeSrc    *rng.PRNG
	exactChunk uint64
	lw         leapWorkspace
}

// The System implements the minimal protocol contract, bulk stepping, and
// its own interaction clock.
var (
	_ sim.Protocol   = (*System)(nil)
	_ sim.CountBased = (*System)(nil)
	_ sim.Clocked    = (*System)(nil)
	_ sim.CountView  = (*System)(nil)
)

// NewSystem builds a System from a compact model, seeding the fallback
// sampling stream with defaultSeed (the run engine rebinds its own uniform
// stream via BindSource before stepping).
func NewSystem(model sim.CompactModel, defaultSeed uint64) (*System, error) {
	if model.Init == nil || model.React == nil {
		return nil, fmt.Errorf("species: compact model must provide Init and React")
	}
	if model.Leader == nil && model.Correct == nil {
		return nil, fmt.Errorf("species: compact model must provide Leader or Correct")
	}
	keys, counts := model.Init()
	if len(keys) != len(counts) {
		return nil, fmt.Errorf("species: Init returned %d keys but %d counts", len(keys), len(counts))
	}
	s := &System{
		model:    model,
		diagonal: model.Diagonal,
		src:      rng.New(defaultSeed),
	}
	if model.StateSpace > 0 && model.StateSpace <= maxDense {
		s.dense = make([]int32, model.StateSpace)
		for i := range s.dense {
			s.dense[i] = -1
		}
	} else {
		s.sparse = make(map[uint64]int32, len(keys))
	}
	for i, key := range keys {
		c := counts[i]
		if c <= 0 {
			return nil, fmt.Errorf("species: Init count %d for state %#x", c, key)
		}
		if s.slotOf(key) >= 0 {
			return nil, fmt.Errorf("species: Init repeats state %#x", key)
		}
		if s.dense != nil && key >= uint64(len(s.dense)) {
			return nil, fmt.Errorf("species: Init state %#x outside declared state space %d", key, model.StateSpace)
		}
		s.n += int(c)
		s.add(key, c)
	}
	if s.n < 2 {
		return nil, fmt.Errorf("species: population size %d < 2", s.n)
	}
	return s, nil
}

// Capable wraps s so that it exposes exactly the optional capabilities its
// model declares (today: the safe set). The engine's type assertions then
// see a safe-set capability only when the model defines one.
func Capable(s *System) sim.Protocol {
	if s.model.SafeSet != nil {
		return safeSetSystem{s}
	}
	return s
}

// safeSetSystem adds the SafeSetter capability for models with a SafeSet
// predicate.
type safeSetSystem struct{ *System }

// InSafeSet reports whether the configuration is in the model's safe set.
func (w safeSetSystem) InSafeSet() bool { return w.System.model.SafeSet(w.System) }

var _ sim.SafeSetter = safeSetSystem{}

// slotOf returns the slot tracking key, or -1.
func (s *System) slotOf(key uint64) int32 {
	if s.dense != nil {
		if key >= uint64(len(s.dense)) {
			return -1
		}
		return s.dense[key]
	}
	if slot, ok := s.sparse[key]; ok {
		return slot
	}
	return -1
}

// allocSlot starts tracking key (count zero) and returns its slot. A key
// outside the model's declared state space is a broken model contract
// (NewSystem validates Init; React outputs surface here), reported with
// the offending key rather than a raw index panic deep in the sampler.
func (s *System) allocSlot(key uint64) int32 {
	if s.dense != nil && key >= uint64(len(s.dense)) {
		panic(fmt.Sprintf("species: React produced state key %#x outside the declared state space %d", key, len(s.dense)))
	}
	var slot int32
	if len(s.free) > 0 {
		slot = s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
		s.keys[slot] = key
		s.counts[slot] = 0
		s.isLeader[slot] = s.model.Leader != nil && s.model.Leader(key)
	} else {
		slot = int32(len(s.keys))
		s.keys = append(s.keys, key)
		s.counts = append(s.counts, 0)
		s.isLeader = append(s.isLeader, s.model.Leader != nil && s.model.Leader(key))
		s.samp.ensure(len(s.keys))
	}
	if s.dense != nil {
		s.dense[key] = slot
	} else {
		s.sparse[key] = slot
	}
	return slot
}

// add shifts the count of state key by delta, maintaining the occupied and
// leader tallies and the sampler weights, and recycling emptied slots.
func (s *System) add(key uint64, delta int64) {
	if delta == 0 {
		return
	}
	slot := s.slotOf(key)
	if slot < 0 {
		slot = s.allocSlot(key)
	}
	old := s.counts[slot]
	c := old + delta
	if c < 0 {
		panic(fmt.Sprintf("species: state %#x count %d below zero", key, c))
	}
	s.counts[slot] = c
	switch {
	case old == 0 && c > 0:
		s.occupied++
	case old > 0 && c == 0:
		s.occupied--
	}
	if s.isLeader[slot] {
		s.leaders += delta
	}
	if s.diagonal {
		s.samp.set(slot, c*(c-1))
	} else {
		s.samp.set(slot, c)
	}
	if c == 0 {
		if s.dense != nil {
			s.dense[key] = -1
		} else {
			delete(s.sparse, key)
		}
		s.free = append(s.free, slot)
	}
}

// reap notifies the model when state key's count has returned to zero after
// a fully settled transition or churn event, so interning models
// (CompactModel.Release) can evict the dead table entry and recycle the key.
// Callers must only reap after every add of the enclosing event has been
// applied: a key consumed and re-produced by the same reaction still has
// agents and must stay live.
//
//sspp:hotpath
func (s *System) reap(key uint64) {
	if s.model.Release != nil && s.Count(key) == 0 {
		s.model.Release(key)
	}
}

// N returns the population size.
func (s *System) N() int { return s.n }

// Occupied returns the number of states with a positive count.
func (s *System) Occupied() int { return s.occupied }

// Count returns the number of agents in state key.
func (s *System) Count(key uint64) int64 {
	if slot := s.slotOf(key); slot >= 0 {
		return s.counts[slot]
	}
	return 0
}

// Each iterates the occupied states.
func (s *System) Each(fn func(key uint64, count int64) bool) {
	for slot, c := range s.counts {
		if c > 0 && !fn(s.keys[slot], c) {
			return
		}
	}
}

// Leaders returns the number of agents currently in a leader state.
func (s *System) Leaders() int { return int(s.leaders) }

// Correct reports whether the output is correct: the model's Correct
// predicate when it has one, otherwise exactly one leader.
func (s *System) Correct() bool {
	if s.model.Correct != nil {
		return s.model.Correct(s)
	}
	return s.leaders == 1
}

// CorrectRanking reports whether the rank outputs form a permutation of
// [1, n] (false for models without a rank output). A state maps all its
// agents to one rank, so a permutation requires every occupied state to
// hold exactly one agent with a distinct in-range rank.
func (s *System) CorrectRanking() bool {
	if s.model.Rank == nil {
		return false
	}
	if s.occupied != s.n {
		return false
	}
	seen := make([]bool, s.n+1)
	ok := true
	s.Each(func(key uint64, c int64) bool {
		r := s.model.Rank(key)
		if c != 1 || r < 1 || int(r) > s.n || seen[r] {
			ok = false
			return false
		}
		seen[r] = true
		return true
	})
	return ok
}

// Clock returns the number of interactions executed (including skipped
// silent runs).
func (s *System) Clock() uint64 { return s.clock }

// BindSource sets the randomness stream used for state-pair sampling.
func (s *System) BindSource(src *rng.PRNG) { s.src = src }

// Interact executes one interaction of the uniform population model. The
// agent indices are ignored — agent identities do not exist in species form;
// the state pair is drawn from the bound randomness stream.
func (s *System) Interact(_, _ int) { s.StepMany(1) }

// StepMany executes k interactions of the uniform population model. Under
// the continuous clock (StartContinuous) the same jump chain additionally
// accrues parallel time, and with leaping enabled whole reaction bundles
// are applied per draw instead of sampling interactions one by one.
func (s *System) StepMany(k uint64) {
	if s.continuous {
		s.stepContinuous(k)
		return
	}
	if s.diagonal {
		s.stepDiagonal(k)
	} else {
		s.stepAll(k)
	}
}

// stepDiagonal is the batched fast path for models that react only on the
// diagonal: the number of silent interactions before the next reactive one
// is geometric with success probability Σc(c−1) / n(n−1), so whole silent
// runs are consumed with one draw and only reactive interactions sample a
// state.
//
//sspp:hotpath
func (s *System) stepDiagonal(k uint64) {
	pairs := int64(s.n) * int64(s.n-1)
	fpairs := float64(pairs)
	for k > 0 {
		w2 := s.samp.total // Σ c(c−1): the reactive ordered-pair mass
		if w2 <= 0 {
			s.clock += k // every state is a singleton: silent forever
			return
		}
		var skip uint64
		if w2 < pairs {
			p := float64(w2) / fpairs
			u := 1 - s.src.Float64() // (0, 1]
			f := math.Log(u) / math.Log1p(-p)
			if f >= float64(k) {
				s.clock += k
				return
			}
			skip = uint64(f)
		}
		if skip >= k {
			s.clock += k
			return
		}
		k -= skip + 1
		s.clock += skip + 1
		slot := s.samp.sample(s.src)
		key := s.keys[slot]
		k1, k2 := s.model.React(key, key, s.src)
		if k1 == key && k2 == key {
			continue
		}
		s.add(key, -2)
		s.add(k1, 1)
		s.add(k2, 1)
		s.reap(key)
	}
}

// stepAll draws every interaction individually: initiator state ∝ count,
// responder state ∝ count with one agent at the initiator's state removed.
//
//sspp:hotpath
func (s *System) stepAll(k uint64) {
	for i := uint64(0); i < k; i++ {
		s.clock++
		a := s.samp.sample(s.src)
		b := s.sampleSecond(a)
		ka, kb := s.keys[a], s.keys[b]
		k1, k2 := s.model.React(ka, kb, s.src)
		if k1 == ka && k2 == kb {
			continue
		}
		s.add(ka, -1)
		s.add(kb, -1)
		s.add(k1, 1)
		s.add(k2, 1)
		s.reap(ka)
		if kb != ka {
			s.reap(kb)
		}
	}
}

// sampleSecond draws the responder slot ∝ count, with the initiator's state
// weighted by count−1 (the initiating agent cannot respond to itself).
//
//sspp:hotpath
func (s *System) sampleSecond(a int32) int32 {
	for {
		b := s.samp.sample(s.src)
		if b != a {
			return b
		}
		c := s.counts[a]
		if c >= 2 && int64(s.src.Uint64n(uint64(c))) < c-1 {
			return b
		}
	}
}

// ApplyPair applies the transition to the explicit ordered state pair
// (a, b), mirroring one agent-level interaction between an agent in state a
// and one in state b. It is the hook the mirror-equivalence property tests
// drive with a recorded agent-level schedule.
func (s *System) ApplyPair(a, b uint64) error {
	need := int64(1)
	if a == b {
		need = 2
	}
	if s.Count(a) < need || s.Count(b) < 1 {
		return fmt.Errorf("species: ApplyPair(%#x, %#x) without enough agents in those states", a, b)
	}
	k1, k2 := s.model.React(a, b, s.src)
	s.clock++
	if k1 == a && k2 == b {
		return nil
	}
	s.add(a, -1)
	s.add(b, -1)
	s.add(k1, 1)
	s.add(k2, 1)
	s.reap(a)
	if b != a {
		s.reap(b)
	}
	return nil
}

// SelfCheck audits every maintained invariant against a recount: counts sum
// to n and are non-negative, the occupied and leader tallies match, and the
// sampler's live weights and totals agree with the counts. Tests call it
// after randomized operation sequences.
func (s *System) SelfCheck() error {
	var sum, leaders, wantTotal, sideTotal int64
	occupied := 0
	for slot, c := range s.counts {
		if c < 0 {
			return fmt.Errorf("species: slot %d count %d < 0", slot, c)
		}
		sum += c
		if c > 0 {
			occupied++
			if s.isLeader[slot] {
				leaders += c
			}
			if got := s.slotOf(s.keys[slot]); got != int32(slot) {
				return fmt.Errorf("species: state %#x lookup %d, want slot %d", s.keys[slot], got, slot)
			}
		}
		w := c
		if s.diagonal {
			w = c * (c - 1)
		}
		if s.samp.live[slot] != w {
			return fmt.Errorf("species: slot %d sampler weight %d, want %d", slot, s.samp.live[slot], w)
		}
		wantTotal += w
		if ex := s.samp.live[slot] - s.samp.base[slot]; ex > 0 {
			sideTotal += ex
			if !s.samp.inSide[slot] {
				return fmt.Errorf("species: slot %d has excess %d but is not in the side buffer", slot, ex)
			}
		}
	}
	if sum != int64(s.n) {
		return fmt.Errorf("species: counts sum to %d, want n=%d", sum, s.n)
	}
	if occupied != s.occupied {
		return fmt.Errorf("species: occupied tally %d, recount %d", s.occupied, occupied)
	}
	if leaders != s.leaders {
		return fmt.Errorf("species: leader tally %d, recount %d", s.leaders, leaders)
	}
	if s.samp.total != wantTotal {
		return fmt.Errorf("species: sampler total %d, recount %d", s.samp.total, wantTotal)
	}
	if s.samp.sideTotal != sideTotal {
		return fmt.Errorf("species: sampler side total %d, recount %d", s.samp.sideTotal, sideTotal)
	}
	return nil
}
