// leap.go is the τ-leaping integrator of the count-based backend: instead of
// sampling reactive interactions one at a time, a leap spans L consecutive
// interactions of the uniform population model and fires each reaction
// channel a Poisson-distributed number of times in bulk. A channel is an
// ordered pair of occupied states whose (deterministic) transition changes
// state; over one interaction it fires with probability p_j = mass_j/P where
// mass_j is its ordered-pair count mass (c_a·c_b off the diagonal,
// c_a·(c_a−1) on it) and P = n(n−1), so over a leap of L interactions its
// firing count is ≈ Poisson(L·p_j) as long as the counts — and hence the
// p_j — move little within the leap. Leaping over interaction counts rather
// than time intervals keeps StepMany's contract exact: a leap consumes an
// integer number of interactions and never overshoots the budget, and the
// clock advances by Gamma(L)·(2/n) exactly as the unleaped chain would.
//
// The leap length comes from Cao–Gillespie–Petzold τ-selection (bounding the
// expected and fluctuating relative change of every occupied reactant state
// by ε), channels with scarce reactants are classified critical and fired at
// most once via a geometric race (the same first-success trick as the
// diagonal silent-skip), and a bundle whose net deltas would drive any count
// negative is halved and redrawn. Anything unprofitable — too many occupied
// states, a leap shorter than leapMinLen — falls back to exact stepping
// through the doubling backoff in continuous.go.

package species

import "math"

const (
	// leapEpsilon bounds the relative propensity drift tolerated within one
	// leap (Cao's ε).
	leapEpsilon = 0.05
	// leapCritCount is the reactant-count threshold below which a channel is
	// critical: its reactants are scarce enough that a Poisson bundle could
	// overdraw them, so it fires at most once per leap, exactly.
	leapCritCount = 16
	// leapMinLen is the shortest leap worth taking; below it exact stepping
	// is cheaper than channel enumeration.
	leapMinLen = 16
	// leapMaxDiagonalStates and leapMaxPairStates cap the occupied-state
	// count for channel enumeration: diagonal models probe occ channels,
	// general models probe occ² ordered pairs.
	leapMaxDiagonalStates = 4096
	leapMaxPairStates     = 96
	// leapMaxRetries bounds the halve-and-redraw attempts after a bundle
	// fails the negativity check.
	leapMaxRetries = 8
)

// leapWorkspace holds the per-leap scratch state, reused across leaps so the
// steady-state hot path allocates nothing. Channel j's reactants are slots
// (chanA, chanB), its probed successor keys (chanOut1, chanOut2); affected
// state keys accumulate in keys (first-seen order — the map is a lookup
// index only and is never iterated) with parallel τ-selection moments and
// net bundle deltas.
type leapWorkspace struct {
	chanA, chanB       []int32
	chanMass           []int64
	chanOut1, chanOut2 []uint64
	chanCrit           []bool
	critMass           int64

	keys   []uint64
	mu     []float64
	sigma2 []float64
	delta  []int64
	idx    map[uint64]int32
}

// reset clears the workspace for a new leap, keeping capacity.
//
//sspp:hotpath
func (ws *leapWorkspace) reset() {
	ws.chanA = ws.chanA[:0]
	ws.chanB = ws.chanB[:0]
	ws.chanMass = ws.chanMass[:0]
	ws.chanOut1 = ws.chanOut1[:0]
	ws.chanOut2 = ws.chanOut2[:0]
	ws.chanCrit = ws.chanCrit[:0]
	ws.critMass = 0
	if ws.idx == nil {
		ws.idx = make(map[uint64]int32)
	}
	for _, k := range ws.keys {
		delete(ws.idx, k)
	}
	ws.keys = ws.keys[:0]
	ws.mu = ws.mu[:0]
	ws.sigma2 = ws.sigma2[:0]
	ws.delta = ws.delta[:0]
}

// index returns key's position in the affected-state arrays, appending a
// fresh zeroed entry on first sight.
//
//sspp:hotpath
func (ws *leapWorkspace) index(key uint64) int {
	if i, ok := ws.idx[key]; ok {
		return int(i)
	}
	i := len(ws.keys)
	ws.idx[key] = int32(i)
	ws.keys = append(ws.keys, key)
	ws.mu = append(ws.mu, 0)
	ws.sigma2 = append(ws.sigma2, 0)
	ws.delta = append(ws.delta, 0)
	return i
}

// resetDeltas zeroes the net bundle deltas between redraw attempts, keeping
// the τ-selection moments.
//
//sspp:hotpath
func (ws *leapWorkspace) resetDeltas() {
	for i := range ws.delta {
		ws.delta[i] = 0
	}
}

// addChannelNu folds w firings of one channel (reactant keys ka, kb,
// successor keys k1, k2) into the net bundle deltas. All four keys are
// indexed before any write: index may grow the delta array, so writing
// through a stale slice header would miss the reallocation.
//
//sspp:hotpath
func (ws *leapWorkspace) addChannelNu(ka, kb, k1, k2 uint64, w int64) {
	ia, ib := ws.index(ka), ws.index(kb)
	i1, i2 := ws.index(k1), ws.index(k2)
	ws.delta[ia] -= w
	ws.delta[ib] -= w
	ws.delta[i1] += w
	ws.delta[i2] += w
}

// leapOnce attempts one τ-leap of at most budget interactions. It returns
// the number of interactions consumed, or 0 when leaping is not profitable
// here and the caller should step exactly instead.
//
//sspp:hotpath
func (s *System) leapOnce(budget uint64) uint64 {
	if s.diagonal {
		if s.occupied > leapMaxDiagonalStates {
			return 0
		}
	} else if s.occupied > leapMaxPairStates {
		return 0
	}
	ws := &s.lw
	ws.reset()
	s.enumerateChannels()
	pairs := float64(s.n) * float64(s.n-1)
	if len(ws.chanA) == 0 {
		// No reactive channel: the entire budget is silent, but time still
		// passes. (Deterministic dynamics, so this cannot change until churn
		// or injection does.)
		s.clock += budget
		s.pt += s.timeSrc.Gamma(float64(budget)) * 2 / float64(s.n)
		return budget
	}

	// τ-selection over the non-critical channels: bound each occupied
	// reactant state's expected (μ) and fluctuating (σ²) per-interaction
	// drift so relative counts move at most ε within the leap.
	var ck [4]uint64
	var cd [4]int64
	for j := range ws.chanA {
		if ws.chanCrit[j] {
			continue
		}
		p := float64(ws.chanMass[j]) / pairs
		m := 0
		for _, e := range [4]struct {
			key uint64
			nu  int64
		}{
			{s.keys[ws.chanA[j]], -1},
			{s.keys[ws.chanB[j]], -1},
			{ws.chanOut1[j], 1},
			{ws.chanOut2[j], 1},
		} {
			merged := false
			for i := 0; i < m; i++ {
				if ck[i] == e.key {
					cd[i] += e.nu
					merged = true
					break
				}
			}
			if !merged {
				ck[m], cd[m] = e.key, e.nu
				m++
			}
		}
		for i := 0; i < m; i++ {
			if cd[i] == 0 {
				continue
			}
			nu := float64(cd[i])
			at := ws.index(ck[i])
			ws.mu[at] += nu * p
			ws.sigma2[at] += nu * nu * p
		}
	}
	leapF := float64(budget)
	for i, key := range ws.keys {
		c := s.Count(key)
		if c <= 0 {
			continue // products not yet present: guarded by the negativity check
		}
		bound := leapEpsilon * float64(c)
		if bound < 1 {
			bound = 1
		}
		if mu := math.Abs(ws.mu[i]); mu > 0 && bound/mu < leapF {
			leapF = bound / mu
		}
		if sg := ws.sigma2[i]; sg > 0 && bound*bound/sg < leapF {
			leapF = bound * bound / sg
		}
	}
	leap := uint64(leapF)
	if leap < leapMinLen {
		return 0
	}

	// Critical channels fire at most once per leap: the interaction index of
	// the first critical firing is geometric in the total critical mass, and
	// a race landing inside the leap truncates it there.
	firstCrit := leap + 1
	if ws.critMass > 0 {
		pc := float64(ws.critMass) / pairs
		u := 1 - s.src.Float64() // (0, 1]
		f := math.Log(u) / math.Log1p(-pc)
		if f < float64(leap) {
			firstCrit = uint64(f) + 1
		}
	}

	for retry := 0; retry < leapMaxRetries; retry++ {
		window := leap
		fireCrit := false
		if firstCrit <= leap {
			window = firstCrit - 1
			fireCrit = true
		}
		ws.resetDeltas()
		w := float64(window)
		for j := range ws.chanA {
			if ws.chanCrit[j] {
				continue
			}
			k := s.src.Poisson(w * float64(ws.chanMass[j]) / pairs)
			if k == 0 {
				continue
			}
			ws.addChannelNu(s.keys[ws.chanA[j]], s.keys[ws.chanB[j]], ws.chanOut1[j], ws.chanOut2[j], k)
		}
		if fireCrit {
			s.fireCritical()
		}
		ok := true
		for i, key := range ws.keys {
			if d := ws.delta[i]; d < 0 && s.Count(key)+d < 0 {
				ok = false
				break
			}
		}
		if ok {
			for i, key := range ws.keys {
				if ws.delta[i] != 0 {
					s.add(key, ws.delta[i])
				}
			}
			consumed := window
			if fireCrit {
				consumed++ // window ≥ leapMinLen when no critical fires, so consumed ≥ 1 always
			}
			s.clock += consumed
			s.pt += s.timeSrc.Gamma(float64(consumed)) * 2 / float64(s.n)
			return consumed
		}
		// Overdraw: halve the leap and redraw the bundles.
		leap /= 2
		if leap < leapMinLen {
			return 0
		}
	}
	return 0
}

// enumerateChannels probes every reactive ordered state pair of the current
// configuration into the workspace: reactant slots, pair mass, successor
// keys, and the critical classification (any reactant scarcer than
// leapCritCount). Diagonal models probe only (a, a) pairs; general models
// probe all occ² ordered pairs.
//
//sspp:hotpath
func (s *System) enumerateChannels() {
	if s.diagonal {
		for slot, c := range s.counts {
			if c < 2 {
				continue
			}
			key := s.keys[slot]
			k1, k2 := s.model.React(key, key, s.src)
			if k1 == key && k2 == key {
				continue
			}
			s.pushChannel(int32(slot), int32(slot), c*(c-1), k1, k2, c < leapCritCount)
		}
		return
	}
	for a, ca := range s.counts {
		if ca <= 0 {
			continue
		}
		for b, cb := range s.counts {
			if cb <= 0 || (a == b && ca < 2) {
				continue
			}
			ka, kb := s.keys[a], s.keys[b]
			k1, k2 := s.model.React(ka, kb, s.src)
			if k1 == ka && k2 == kb {
				continue
			}
			mass := ca * cb
			if a == b {
				mass = ca * (ca - 1)
			}
			s.pushChannel(int32(a), int32(b), mass, k1, k2, ca < leapCritCount || cb < leapCritCount)
		}
	}
}

// pushChannel appends one reactive channel to the workspace.
//
//sspp:hotpath
func (s *System) pushChannel(a, b int32, mass int64, k1, k2 uint64, crit bool) {
	ws := &s.lw
	ws.chanA = append(ws.chanA, a)
	ws.chanB = append(ws.chanB, b)
	ws.chanMass = append(ws.chanMass, mass)
	ws.chanOut1 = append(ws.chanOut1, k1)
	ws.chanOut2 = append(ws.chanOut2, k2)
	ws.chanCrit = append(ws.chanCrit, crit)
	if crit {
		ws.critMass += mass
	}
}

// fireCritical picks one critical channel proportional to its mass and folds
// a single firing into the bundle deltas.
//
//sspp:hotpath
func (s *System) fireCritical() {
	ws := &s.lw
	x := int64(s.src.Uint64n(uint64(ws.critMass)))
	for j := range ws.chanA {
		if !ws.chanCrit[j] {
			continue
		}
		if x < ws.chanMass[j] {
			ws.addChannelNu(s.keys[ws.chanA[j]], s.keys[ws.chanB[j]], ws.chanOut1[j], ws.chanOut2[j], 1)
			return
		}
		x -= ws.chanMass[j]
	}
	panic("species: critical-mass race ran past the critical channels")
}
