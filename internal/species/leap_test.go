// leap_test.go exercises the τ-leaping integrator: the continuous stepper
// must honor StepMany's exact interaction accounting (budgets consume to
// zero, the clock never drifts), keep the count multiset self-consistent
// through bundle applications, fall back to exact stepping where leaping is
// unprofitable, and stay deterministic and allocation-free on the steady
// path. Distributional equivalence against the exact sampler is gated at
// the public-API level (clock_test.go at the repo root) and in the nightly
// soak; these tests pin the mechanics.

package species

import (
	"math"
	"testing"

	"sspp/internal/rng"
	"sspp/internal/sim"
)

// deterministicToy marks the toy diagonal model as deterministic so
// StartContinuous(…, true) actually enables leaping.
func deterministicToy(k int, n int64) sim.CompactModel {
	m := toyDiagonal(k, n)
	m.Deterministic = true
	return m
}

// silentToy is a model with no reactive channel at all: every ordered pair
// is silent forever.
func silentToy(n int64) sim.CompactModel {
	return sim.CompactModel{
		StateSpace: 4,
		Diagonal:   true,
		Init: func() ([]uint64, []int64) {
			return []uint64{1, 2}, []int64{n / 2, n - n/2}
		},
		React:         func(a, b uint64, _ *rng.PRNG) (uint64, uint64) { return a, b },
		Leader:        func(s uint64) bool { return s == 1 },
		Deterministic: true,
	}
}

// newContinuous builds a species system on the continuous clock.
func newContinuous(t testing.TB, m sim.CompactModel, leap bool, sampleSeed, timeSeed uint64) *System {
	t.Helper()
	sp, err := NewSystem(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	sp.BindSource(rng.New(sampleSeed))
	sp.StartContinuous(rng.New(timeSeed), leap)
	return sp
}

// TestLeapConservesInvariants leaps a reactive population through a long
// budget in uneven chunks: the interaction clock must account for every
// interaction exactly, parallel time must grow monotonically at the Poisson
// scale, and the count multiset must stay self-consistent throughout.
func TestLeapConservesInvariants(t *testing.T) {
	const n = 100_000
	sp := newContinuous(t, deterministicToy(1<<20, n), true, 3, 4)
	if !sp.leap {
		t.Fatal("leaping not enabled for a deterministic model")
	}
	var total uint64
	lastPT := 0.0
	for _, chunk := range []uint64{1, 17, 1000, 65_536, 1_000_000, 3_000_000} {
		sp.StepMany(chunk)
		total += chunk
		if sp.Clock() != total {
			t.Fatalf("clock %d after %d interactions", sp.Clock(), total)
		}
		pt := sp.ParallelTime()
		if !(pt > lastPT) || math.IsInf(pt, 0) || math.IsNaN(pt) {
			t.Fatalf("parallel time %v not increasing past %v", pt, lastPT)
		}
		lastPT = pt
		if err := sp.SelfCheck(); err != nil {
			t.Fatalf("after %d interactions: %v", total, err)
		}
	}
	// k interactions take Gamma(k)·2/n time: mean 2k/n, and at k ≈ 4e6 the
	// relative fluctuation is ~1/√k, so a factor-2 corridor is astronomically
	// safe.
	want := 2 * float64(total) / float64(n)
	if lastPT < want/2 || lastPT > want*2 {
		t.Fatalf("parallel time %v far from the Poisson scale %v", lastPT, want)
	}
	if sp.Occupied() < 2 {
		t.Fatal("the reactive cascade never spread: leaping did not fire")
	}
}

// TestLeapMatchesExactMarginals pins the leaped dynamics against the exact
// sampler distributionally on a small population: after the same interaction
// budget, per-state mean counts over independent replicas must agree within
// sampling tolerance.
func TestLeapMatchesExactMarginals(t *testing.T) {
	const (
		n        = 4096
		budget   = 8192
		replicas = 60
		k        = 6
	)
	meanCounts := func(leap bool) []float64 {
		out := make([]float64, k+2)
		for r := 0; r < replicas; r++ {
			sp := newContinuous(t, deterministicToy(k, n), leap, uint64(100+r), uint64(900+r))
			sp.StepMany(budget)
			for s := uint64(1); s <= uint64(k); s++ {
				out[s] += float64(sp.Count(s)) / replicas
			}
			if err := sp.SelfCheck(); err != nil {
				t.Fatal(err)
			}
		}
		return out
	}
	exact := meanCounts(false)
	leaped := meanCounts(true)
	for s := 1; s <= k; s++ {
		diff := math.Abs(exact[s] - leaped[s])
		// ε=0.05 τ-selection bounds the within-leap drift; across replicas the
		// standard error is ~n/√replicas-scaled. A 5% of n corridor holds with
		// huge margin when the dynamics agree and fails immediately when a
		// channel is mis-weighted (e.g. a dropped factor in the pair mass).
		if diff > 0.05*n {
			t.Fatalf("state %d: exact mean %.1f vs leaped mean %.1f", s, exact[s], leaped[s])
		}
	}
}

// TestLeapAllSilentFastPath: a model with no reactive channel consumes any
// budget in O(1) per StepMany call while still advancing parallel time.
func TestLeapAllSilentFastPath(t *testing.T) {
	const n = 1_000_000
	sp := newContinuous(t, silentToy(n), true, 5, 6)
	const budget = 1 << 40 // ~10¹² interactions: only the fast path can afford this
	sp.StepMany(budget)
	if sp.Clock() != budget {
		t.Fatalf("clock %d, want %d", sp.Clock(), uint64(budget))
	}
	want := 2 * float64(budget) / float64(n)
	if pt := sp.ParallelTime(); pt < want/2 || pt > want*2 {
		t.Fatalf("parallel time %v far from %v", pt, want)
	}
	if err := sp.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestLeapScarceCountsFallBack: with every count below the critical
// threshold the τ-selection never finds a profitable leap, so the stepper
// must route through the exact fallback and still account exactly.
func TestLeapScarceCountsFallBack(t *testing.T) {
	sp := newContinuous(t, deterministicToy(64, 24), true, 7, 8)
	const budget = 50_000
	var maxChunk uint64
	for done := uint64(0); done < budget; done += 100 {
		sp.StepMany(100)
		if sp.exactChunk > maxChunk {
			maxChunk = sp.exactChunk
		}
	}
	if sp.Clock() != budget {
		t.Fatalf("clock %d, want %d", sp.Clock(), uint64(budget))
	}
	if err := sp.SelfCheck(); err != nil {
		t.Fatal(err)
	}
	// At n=24 the τ-selection can never clear leapMinLen while the cascade is
	// live, so the stepper must have routed through the doubling exact
	// fallback at some point (the backoff resets once the model goes silent
	// and the O(1) fast path takes over, hence the running maximum).
	if maxChunk <= leapExactChunkMin {
		t.Fatal("exact-fallback backoff never engaged on a scarce population")
	}
}

// TestLeapDisabledForRandomizedModels: a model that does not declare
// Deterministic must never leap — bundled channel firings would collapse
// its per-interaction randomness.
func TestLeapDisabledForRandomizedModels(t *testing.T) {
	m := toyDiagonal(8, 1024) // Deterministic not set
	sp, err := NewSystem(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	sp.BindSource(rng.New(9))
	sp.StartContinuous(rng.New(10), true)
	if sp.leap {
		t.Fatal("leaping enabled for a model without deterministic dynamics")
	}
	sp.StepMany(10_000)
	if sp.Clock() != 10_000 {
		t.Fatalf("clock %d, want 10000", sp.Clock())
	}
	if pt := sp.ParallelTime(); pt <= 0 {
		t.Fatalf("continuous-exact stepping accrued no parallel time (%v)", pt)
	}
}

// TestContinuousExactPreservesJumpChain: with leaping off, the continuous
// clock merely equips the discrete jump chain with event times — the count
// trajectory at matched sampling seeds is identical, bit for bit.
func TestContinuousExactPreservesJumpChain(t *testing.T) {
	const n = 10_000
	discrete, err := NewSystem(deterministicToy(256, n), 1)
	if err != nil {
		t.Fatal(err)
	}
	discrete.BindSource(rng.New(42))
	cont := newContinuous(t, deterministicToy(256, n), false, 42, 1234)
	for i := 0; i < 5; i++ {
		discrete.StepMany(20_000)
		cont.StepMany(20_000)
		if discrete.Occupied() != cont.Occupied() {
			t.Fatalf("chunk %d: occupied %d vs %d", i, discrete.Occupied(), cont.Occupied())
		}
		identical := true
		discrete.Each(func(key uint64, c int64) bool {
			if cont.Count(key) != c {
				identical = false
				return false
			}
			return true
		})
		if !identical {
			t.Fatalf("chunk %d: count multisets diverge", i)
		}
	}
	if cont.ParallelTime() <= 0 {
		t.Fatal("no parallel time accrued")
	}
	if discrete.ParallelTime() != 0 {
		t.Fatalf("discrete system accrued native parallel time %v", discrete.ParallelTime())
	}
}

// TestLeapDeterminism: identical seeds produce identical trajectories and
// identical parallel times, leaped or not.
func TestLeapDeterminism(t *testing.T) {
	run := func() (*System, float64) {
		sp := newContinuous(t, deterministicToy(1024, 50_000), true, 11, 12)
		sp.StepMany(2_000_000)
		return sp, sp.ParallelTime()
	}
	a, ptA := run()
	b, ptB := run()
	if ptA != ptB {
		t.Fatalf("parallel times diverge: %v vs %v", ptA, ptB)
	}
	if a.Occupied() != b.Occupied() {
		t.Fatalf("occupied states diverge: %d vs %d", a.Occupied(), b.Occupied())
	}
	a.Each(func(key uint64, c int64) bool {
		if b.Count(key) != c {
			t.Fatalf("count of %d diverges: %d vs %d", key, c, b.Count(key))
		}
		return true
	})
}

// TestLeapHotPathsDoNotAllocate pins the zero-allocation contract of the
// τ-leap steady state (the workspace is reused across leaps) and of the
// timed exact stepper, alongside the sim-layer clock pins.
func TestLeapHotPathsDoNotAllocate(t *testing.T) {
	sp := newContinuous(t, deterministicToy(1<<20, 200_000), true, 13, 14)
	sp.StepMany(4_000_000) // reach steady state: workspace and sampler sized
	if allocs := testing.AllocsPerRun(50, func() {
		sp.StepMany(10_000)
	}); allocs != 0 {
		t.Fatalf("leaped StepMany allocates %.1f times per call", allocs)
	}
	exact := newContinuous(t, deterministicToy(1<<20, 200_000), false, 13, 14)
	exact.StepMany(100_000)
	if allocs := testing.AllocsPerRun(50, func() {
		exact.StepMany(1_000)
	}); allocs != 0 {
		t.Fatalf("timed exact StepMany allocates %.1f times per call", allocs)
	}
}
