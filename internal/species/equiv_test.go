// equiv_test.go is the backend-equivalence harness: the species backend
// simulates the same Markov chain as the agent backend, so over many
// independent trials at matched seeds the two convergence-time
// distributions must be statistically indistinguishable. The harness runs
// ≥200 paired trials per protocol at n=512 through the public engine and
// requires both the two-sample Kolmogorov–Smirnov and the Mann–Whitney
// p-values above 0.01 (internal/stats/statcheck). The sample collection is
// deterministic for every worker count (internal/trials), which the
// worker-independence test pins byte-for-byte. The soak-tagged variant
// (soak_test.go) repeats the check at large n and archives the report.

package species_test

import (
	"testing"

	"sspp"
	"sspp/internal/rng"
	"sspp/internal/stats/statcheck"
	"sspp/internal/trials"
)

// equivConfig is the shared shape of one equivalence comparison.
type equivConfig struct {
	protocol string
	n        int
	r        int // trade-off parameter (electleader only; 0 otherwise)
	trials   int
	baseSeed uint64
	// budget overrides the per-run interaction budget (0: the protocol's
	// DefaultBudget). The soak's large-n LooseLE needs it: coalescing the
	// all-timers-zero start's leader burst is Θ(n²), which outgrows the
	// registry's O(n·log n) envelope by n=4096.
	budget uint64
}

// collectSamples runs the protocol's trials on one backend and returns the
// convergence times (correct output confirmed for 4n interactions) in trial
// order, plus the trials that did not stabilize in budget. Trial randomness
// is pre-derived per index from baseSeed, so two backends sample at matched
// seeds and any worker count collects the identical slice.
func collectSamples(t *testing.T, cfg equivConfig, backend string, workers int) (samples []float64, failures int) {
	t.Helper()
	type outcome struct {
		took uint64
		ok   bool
	}
	outs := trials.Run(workers, cfg.trials, cfg.baseSeed, func(_ int, src *rng.PRNG) outcome {
		protoSeed := src.Uint64()
		schedSeed := src.Uint64()
		sys, err := sspp.New(sspp.Config{
			Protocol: cfg.protocol, N: cfg.n, R: cfg.r, Seed: protoSeed, Backend: backend,
		})
		if err != nil {
			return outcome{}
		}
		res := sys.Run(
			sspp.Until(sspp.CorrectOutput),
			sspp.Confirm(uint64(4*cfg.n)),
			sspp.SchedulerSeed(schedSeed),
			sspp.MaxInteractions(cfg.budget),
		)
		if res.Err != nil || !res.Stabilized {
			return outcome{}
		}
		return outcome{took: res.StabilizedAt, ok: true}
	})
	for _, o := range outs {
		if o.ok {
			samples = append(samples, float64(o.took))
		} else {
			failures++
		}
	}
	return samples, failures
}

// equivCases are the acceptance configurations: every compactable registry
// protocol at n=512 with 200 paired trials.
func equivCases(t *testing.T) []equivConfig {
	trialsN := 200
	if testing.Short() {
		trialsN = 60
	}
	return []equivConfig{
		{protocol: sspp.ProtocolCIW, n: 512, trials: trialsN, baseSeed: 1001},
		{protocol: sspp.ProtocolLooseLE, n: 512, trials: trialsN, baseSeed: 1002},
		{protocol: sspp.ProtocolNameRank, n: 512, trials: trialsN, baseSeed: 1003},
		{protocol: sspp.ProtocolElectLeader, n: 512, r: 128, trials: trialsN, baseSeed: 1004},
	}
}

// TestBackendEquivalence is the tier-1 statistical-equivalence gate.
func TestBackendEquivalence(t *testing.T) {
	for _, cfg := range equivCases(t) {
		cfg := cfg
		t.Run(cfg.protocol, func(t *testing.T) {
			t.Parallel()
			agent, agentFail := collectSamples(t, cfg, sspp.BackendAgent, 0)
			spec, specFail := collectSamples(t, cfg, sspp.BackendSpecies, 0)
			// The backends share seeds, budgets and stop conditions, and the
			// budgets sit far above the convergence means, so failures are
			// deterministic artifacts of the start (NameRank's name
			// collisions) that must strike both backends alike. The KS/MW
			// gate below only sees survivors; a one-sided failure rate would
			// censor exactly the pathological trials, so it is a failure in
			// its own right, not a log line.
			if diff := agentFail - specFail; diff < -2 || diff > 2 {
				t.Fatalf("failure counts diverge: agent %d, species %d", agentFail, specFail)
			}
			if len(agent) < cfg.trials*9/10 || len(spec) < cfg.trials*9/10 {
				t.Fatalf("too many failed trials: agent %d/%d, species %d/%d ok",
					len(agent), cfg.trials, len(spec), cfg.trials)
			}
			eq := statcheck.CheckEquivalence(cfg.protocol, agent, spec, 0.01)
			t.Log(eq)
			if !eq.Passed {
				t.Fatalf("backends statistically distinguishable: %v", eq)
			}
		})
	}
}

// TestEquivalenceSamplesWorkerCountIndependent pins the determinism the
// gate rests on: the species sample vector is byte-identical for one worker
// and for a parallel pool.
func TestEquivalenceSamplesWorkerCountIndependent(t *testing.T) {
	cfg := equivConfig{protocol: sspp.ProtocolCIW, n: 256, trials: 24, baseSeed: 5}
	if testing.Short() {
		cfg.trials = 8
	}
	seq, seqFail := collectSamples(t, cfg, sspp.BackendSpecies, 1)
	par, parFail := collectSamples(t, cfg, sspp.BackendSpecies, 4)
	if seqFail != parFail || len(seq) != len(par) {
		t.Fatalf("sample counts differ: %d/%d vs %d/%d", len(seq), seqFail, len(par), parFail)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("trial %d: %v sequential vs %v parallel", i, seq[i], par[i])
		}
	}
}
