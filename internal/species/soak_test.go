//go:build soak

// soak_test.go is the nightly large-n variant of the backend-equivalence
// harness (build tag "soak"): the same paired-trial KS / Mann–Whitney gate
// as equiv_test.go, but at populations where the backends genuinely
// diverge in cost, the continuous-clock gate (exact jump chain vs
// τ-leaping) at the same scale, plus a long species-only run at n=10⁷
// exercising the regime the agent backend cannot reach. The equivalence verdicts are
// written as a JSON report (ks-report.json, or $SSPP_SOAK_REPORT) that the
// nightly CI job publishes as an artifact.
//
//	go test -tags soak -run TestSoak ./internal/species

package species_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"sspp"
	"sspp/internal/rng"
	"sspp/internal/stats/statcheck"
	"sspp/internal/trials"
)

// soakReport is the archived artifact of one nightly soak run.
type soakReport struct {
	GeneratedBy string                  `json:"generated_by"`
	GoMaxProcs  int                     `json:"gomaxprocs"`
	Trials      int                     `json:"trials"`
	Alpha       float64                 `json:"alpha"`
	Checks      []statcheck.Equivalence `json:"checks"`
	Passed      bool                    `json:"passed"`
}

// reportPath resolves the artifact destination.
func reportPath() string {
	if p := os.Getenv("SSPP_SOAK_REPORT"); p != "" {
		return p
	}
	return "ks-report.json"
}

// TestSoakBackendEquivalenceLargeN runs the paired equivalence gate at
// n=4096 with 200 trials per backend and archives the verdicts.
func TestSoakBackendEquivalenceLargeN(t *testing.T) {
	const alpha = 0.01
	report := soakReport{
		GeneratedBy: "go test -tags soak -run TestSoakBackendEquivalenceLargeN ./internal/species",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Trials:      200,
		Alpha:       alpha,
		Passed:      true,
	}
	for _, cfg := range []equivConfig{
		{protocol: sspp.ProtocolCIW, n: 4096, trials: report.Trials, baseSeed: 9001},
		{protocol: sspp.ProtocolLooseLE, n: 4096, trials: report.Trials, baseSeed: 9002,
			budget: 8 * 4096 * 4096},
		{protocol: sspp.ProtocolElectLeader, n: 4096, r: 512, trials: report.Trials, baseSeed: 9005},
	} {
		start := time.Now()
		agent, agentFail := collectSamples(t, cfg, sspp.BackendAgent, 0)
		spec, specFail := collectSamples(t, cfg, sspp.BackendSpecies, 0)
		if diff := agentFail - specFail; diff < -2 || diff > 2 {
			t.Fatalf("%s: failure counts diverge: agent %d, species %d — a one-sided "+
				"timeout rate censors the KS samples", cfg.protocol, agentFail, specFail)
		}
		if len(agent) < cfg.trials*9/10 || len(spec) < cfg.trials*9/10 {
			t.Fatalf("%s: too many failed trials: agent %d, species %d", cfg.protocol, agentFail, specFail)
		}
		eq := statcheck.CheckEquivalence(cfg.protocol, agent, spec, alpha)
		t.Logf("%v (n=%d, %s)", eq, cfg.n, time.Since(start).Round(time.Millisecond))
		report.Checks = append(report.Checks, eq)
		if !eq.Passed {
			report.Passed = false
		}
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, '\n')
	if err := os.WriteFile(reportPath(), out, 0o644); err != nil {
		t.Fatalf("writing soak report: %v", err)
	}
	t.Logf("soak report written to %s", reportPath())
	if !report.Passed {
		t.Fatal("backend equivalence failed at large n; see the report artifact")
	}
}

// TestSoakChurnEquivalenceLargeN is the churn variant of the nightly gate:
// paired trials at n=4096 whose runs each absorb 10³ join/leave events (500
// periodic bursts of one leave and one join in the random-garbage class),
// with the re-stabilization-time distributions of the two backends gated by
// the same KS / Mann–Whitney check. This exercises the dynamic-n engine —
// setN, key-space rescales, count-weighted leaves — at a scale the unit
// tests do not reach.
func TestSoakChurnEquivalenceLargeN(t *testing.T) {
	const (
		n      = 4096
		count  = 100
		alpha  = 0.01
		bursts = 500 // 2 events per burst: 10³ join/leave events per run
	)
	collect := func(backend string) (samples []float64, failures int) {
		type outcome struct {
			took uint64
			ok   bool
		}
		outs := trials.Run(0, count, 9003, func(_ int, src *rng.PRNG) outcome {
			protoSeed := src.Uint64()
			schedSeed := src.Uint64()
			wlSeed := src.Uint64()
			sys, err := sspp.New(sspp.Config{
				Protocol: sspp.ProtocolCIW, N: n, Seed: protoSeed, Backend: backend,
			})
			if err != nil {
				return outcome{}
			}
			wl := sspp.NewWorkload(sspp.ChurnBursts(
				n, n+bursts*2*n+1, 2*n, 1, 1, sspp.AdversaryRandomGarbage, wlSeed))
			res := sys.Run(
				sspp.Until(sspp.CorrectOutput),
				sspp.Confirm(4*n),
				sspp.SchedulerSeed(schedSeed),
				sspp.WithWorkload(wl),
			)
			if res.Err != nil || !res.Stabilized {
				return outcome{}
			}
			return outcome{took: res.StabilizedAt, ok: true}
		})
		for _, o := range outs {
			if o.ok {
				samples = append(samples, float64(o.took))
			} else {
				failures++
			}
		}
		return samples, failures
	}
	start := time.Now()
	agent, agentFail := collect(sspp.BackendAgent)
	spec, specFail := collect(sspp.BackendSpecies)
	if diff := agentFail - specFail; diff < -2 || diff > 2 {
		t.Fatalf("failure counts diverge: agent %d, species %d", agentFail, specFail)
	}
	if len(agent) < count*9/10 || len(spec) < count*9/10 {
		t.Fatalf("too many failed trials: agent %d/%d, species %d/%d ok",
			len(agent), count, len(spec), count)
	}
	eq := statcheck.CheckEquivalence("ciw/churn", agent, spec, alpha)
	t.Logf("%v (n=%d, 10³ churn events per run, %s)", eq, n, time.Since(start).Round(time.Millisecond))
	if !eq.Passed {
		t.Fatalf("backends statistically distinguishable under churn: %v", eq)
	}
}

// TestSoakTauLeapEquivalenceLargeN is the continuous-clock variant of the
// nightly gate: paired trials at n=4096 comparing the exact continuous
// jump chain (per-event stepping with native holding times) against
// τ-leaped stepping, with the stabilization-time distributions gated by
// the same KS / Mann–Whitney check as the backend gate. The quick PR gate
// (clock_test.go at the repo root) runs n=512; this exercises the
// τ-selection and critical-channel machinery at a population where leaps
// bundle thousands of firings.
func TestSoakTauLeapEquivalenceLargeN(t *testing.T) {
	const (
		n     = 4096
		count = 200
		alpha = 0.01
	)
	collect := func(clock string) (samples []float64, failures int) {
		type outcome struct {
			took uint64
			ok   bool
		}
		outs := trials.Run(0, count, 9004, func(_ int, src *rng.PRNG) outcome {
			protoSeed := src.Uint64()
			schedSeed := src.Uint64()
			sys, err := sspp.New(sspp.Config{
				Protocol: sspp.ProtocolCIW, N: n, Seed: protoSeed,
				Backend: sspp.BackendSpecies, Clock: clock,
			})
			if err != nil {
				return outcome{}
			}
			res := sys.Run(
				sspp.Until(sspp.CorrectOutput),
				sspp.Confirm(4*n),
				sspp.SchedulerSeed(schedSeed),
			)
			if res.Err != nil || !res.Stabilized {
				return outcome{}
			}
			return outcome{took: res.StabilizedAt, ok: true}
		})
		for _, o := range outs {
			if o.ok {
				samples = append(samples, float64(o.took))
			} else {
				failures++
			}
		}
		return samples, failures
	}
	start := time.Now()
	exact, exactFail := collect(sspp.ClockContinuousExact)
	leaped, leapFail := collect(sspp.ClockContinuous)
	if diff := exactFail - leapFail; diff < -2 || diff > 2 {
		t.Fatalf("failure counts diverge: exact %d, tau-leap %d", exactFail, leapFail)
	}
	if len(exact) < count*9/10 || len(leaped) < count*9/10 {
		t.Fatalf("too many failed trials: exact %d/%d, tau-leap %d/%d ok",
			len(exact), count, len(leaped), count)
	}
	eq := statcheck.CheckEquivalence("ciw/tau-leap", exact, leaped, alpha)
	t.Logf("%v (n=%d, %s)", eq, n, time.Since(start).Round(time.Millisecond))
	if !eq.Passed {
		t.Fatalf("tau-leaped clock statistically distinguishable from the exact jump chain: %v", eq)
	}
}

// TestSoakSpeciesTenMillion drives CIW at n=10⁷ for 10⁹ interactions —
// two orders of magnitude past the agent backend's comfortable range — and
// audits the engine invariants afterwards.
func TestSoakSpeciesTenMillion(t *testing.T) {
	const n = 10_000_000
	sys, err := sspp.New(sspp.Config{Protocol: sspp.ProtocolCIW, N: n, Seed: 3, Backend: sspp.BackendSpecies})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	sys.Step(4, 1_000_000_000)
	t.Logf("CIW species n=1e7: 1e9 interactions in %s, %d leaders",
		time.Since(start).Round(time.Millisecond), sys.Leaders())
	if got := sys.Interactions(); got != 1_000_000_000 {
		t.Fatalf("interaction clock %d", got)
	}
}
