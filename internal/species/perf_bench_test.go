// perf_bench_test.go benchmarks the species backend's throughput and pins
// the acceptance budget: CIW at n=10⁶ must execute 10⁸ interactions of the
// uniform population model in under 10 seconds (the silent-skip fast path
// makes this cheap: only the ~√(2nt) reactive interactions sample a state).

package species_test

import (
	"testing"
	"time"

	"sspp/internal/baseline"
	"sspp/internal/rng"
	"sspp/internal/species"
)

// newCIWSpecies builds a species CIW at population n.
func newCIWSpecies(tb testing.TB, n int) *species.System {
	tb.Helper()
	sp, err := species.NewSystem(baseline.NewCIW(n).Compact(), 1)
	if err != nil {
		tb.Fatal(err)
	}
	return sp
}

// TestCIWSpeciesThroughputBudget is the acceptance guard: 10⁸ interactions
// at n=10⁶ in under 10 s. The engine clears it by roughly an order of
// magnitude on a 1-core 2.1 GHz Xeon, so the bound has headroom on any CI
// hardware.
func TestCIWSpeciesThroughputBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput budget is not -short")
	}
	if testing.CoverMode() != "" {
		// Coverage instrumentation slows the hot loop; the CI coverage pass
		// skips the wall-clock gate and the dedicated uninstrumented step
		// stays the one authoritative timing run.
		t.Skip("throughput budget is not meaningful under coverage instrumentation")
	}
	const (
		n            = 1_000_000
		interactions = 100_000_000
		budget       = 10 * time.Second
	)
	sp := newCIWSpecies(t, n)
	sp.BindSource(rng.New(2))
	start := time.Now()
	sp.StepMany(interactions)
	elapsed := time.Since(start)
	t.Logf("CIW species n=%d: %d interactions in %s (%d occupied states)",
		n, interactions, elapsed, sp.Occupied())
	if sp.Clock() != interactions {
		t.Fatalf("clock %d, want %d", sp.Clock(), interactions)
	}
	if elapsed > budget {
		t.Fatalf("%d interactions took %s, budget %s", interactions, elapsed, budget)
	}
	if err := sp.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkCIWSpeciesStepMany measures amortized cost per uniform
// interaction on the diagonal fast path (b.N interactions per measurement).
func BenchmarkCIWSpeciesStepMany(b *testing.B) {
	for _, n := range []int{100_000, 1_000_000} {
		b.Run(benchName(n), func(b *testing.B) {
			sp := newCIWSpecies(b, n)
			sp.BindSource(rng.New(2))
			b.ResetTimer()
			sp.StepMany(uint64(b.N))
		})
	}
}

// BenchmarkLooseLESpeciesStepMany measures the per-interaction cost of the
// ReactAll path (every interaction samples an ordered state pair).
func BenchmarkLooseLESpeciesStepMany(b *testing.B) {
	for _, n := range []int{100_000, 1_000_000} {
		b.Run(benchName(n), func(b *testing.B) {
			sp, err := species.NewSystem(baseline.NewLooseLE(n, 48).Compact(), 1)
			if err != nil {
				b.Fatal(err)
			}
			sp.BindSource(rng.New(2))
			b.ResetTimer()
			sp.StepMany(uint64(b.N))
		})
	}
}

// benchName renders a population size compactly (1e5, 1e6, ...).
func benchName(n int) string {
	e := 0
	for n >= 10 && n%10 == 0 {
		n /= 10
		e++
	}
	return "n=" + string(rune('0'+n)) + "e" + string(rune('0'+e))
}

// TestTauLeapThroughputGuard is the continuous-clock acceptance guard:
// τ-leaping must deliver at least 10× the effective interactions/s of the
// exact alias-sampler path in a reactive regime at n=10⁶ — the early CIW
// cascade, where nearly every interaction is reactive and silent-skip buys
// nothing — and the whole comparison must fit the same <10 s budget as the
// PR 4 guard.
func TestTauLeapThroughputGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput guard is not -short")
	}
	if testing.CoverMode() != "" {
		t.Skip("throughput guard is not meaningful under coverage instrumentation")
	}
	const (
		n            = 1_000_000
		interactions = 20_000_000
		budget       = 10 * time.Second
	)
	run := func(leap bool) (time.Duration, *species.System) {
		sp := newCIWSpecies(t, n)
		sp.BindSource(rng.New(7))
		sp.StartContinuous(rng.New(8), leap)
		start := time.Now()
		sp.StepMany(interactions)
		return time.Since(start), sp
	}
	exactElapsed, exactSys := run(false)
	leapElapsed, leapSys := run(true)
	t.Logf("exact: %d interactions in %s (%d occupied); leaped: %s (%d occupied)",
		interactions, exactElapsed, exactSys.Occupied(), leapElapsed, leapSys.Occupied())
	if leapSys.Clock() != interactions || exactSys.Clock() != interactions {
		t.Fatalf("clocks %d/%d, want %d", exactSys.Clock(), leapSys.Clock(), uint64(interactions))
	}
	if err := leapSys.SelfCheck(); err != nil {
		t.Fatal(err)
	}
	if exactElapsed+leapElapsed > budget {
		t.Fatalf("guard took %s total, budget %s", exactElapsed+leapElapsed, budget)
	}
	if 10*leapElapsed > exactElapsed {
		t.Fatalf("τ-leaping %s vs exact %s: speedup %.1f× below the 10× bound",
			leapElapsed, exactElapsed, float64(exactElapsed)/float64(leapElapsed))
	}
}
