package species

import (
	"math"
	"strings"
	"testing"

	"sspp/internal/rng"
	"sspp/internal/sim"
)

// toyDiagonal is a CIW-shaped diagonal model over states [1, k]: equal
// states (s, s) react to (s, s mod k + 1), everything else is silent.
func toyDiagonal(k int, n int64) sim.CompactModel {
	return sim.CompactModel{
		StateSpace: uint64(k) + 1,
		Diagonal:   true,
		Init: func() ([]uint64, []int64) {
			return []uint64{1}, []int64{n}
		},
		React: func(a, b uint64, _ *rng.PRNG) (uint64, uint64) {
			if a == b {
				return a, a%uint64(k) + 1
			}
			return a, b
		},
		Leader: func(s uint64) bool { return s == 1 },
		Rank:   func(s uint64) int32 { return int32(s) },
	}
}

func TestNewSystemValidation(t *testing.T) {
	valid := toyDiagonal(8, 16)
	if _, err := NewSystem(valid, 1); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(m *sim.CompactModel)
	}{
		{"missing Init", func(m *sim.CompactModel) { m.Init = nil }},
		{"missing React", func(m *sim.CompactModel) { m.React = nil }},
		{"missing output", func(m *sim.CompactModel) { m.Leader = nil; m.Correct = nil }},
		{"duplicate keys", func(m *sim.CompactModel) {
			m.Init = func() ([]uint64, []int64) { return []uint64{1, 1}, []int64{2, 2} }
		}},
		{"non-positive count", func(m *sim.CompactModel) {
			m.Init = func() ([]uint64, []int64) { return []uint64{1, 2}, []int64{4, 0} }
		}},
		{"length mismatch", func(m *sim.CompactModel) {
			m.Init = func() ([]uint64, []int64) { return []uint64{1, 2}, []int64{4} }
		}},
		{"population too small", func(m *sim.CompactModel) {
			m.Init = func() ([]uint64, []int64) { return []uint64{1}, []int64{1} }
		}},
		{"key outside state space", func(m *sim.CompactModel) {
			m.Init = func() ([]uint64, []int64) { return []uint64{99}, []int64{4} }
		}},
	}
	for _, tc := range cases {
		m := toyDiagonal(8, 16)
		tc.mutate(&m)
		if _, err := NewSystem(m, 1); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestSamplerDistribution drives the alias-table sampler through a fixed
// weight profile and through incremental updates, checking the empirical
// frequencies against the weights.
func TestSamplerDistribution(t *testing.T) {
	src := rng.New(11)
	checkFreqs := func(sa *sampler, weights []int64) {
		t.Helper()
		var total int64
		for _, w := range weights {
			total += w
		}
		const draws = 200_000
		counts := make([]int64, len(weights))
		for i := 0; i < draws; i++ {
			counts[sa.sample(src)]++
		}
		for slot, w := range weights {
			want := float64(w) / float64(total)
			got := float64(counts[slot]) / draws
			// Three-sigma binomial tolerance plus a small absolute floor.
			tol := 3*math.Sqrt(want*(1-want)/draws) + 1e-4
			if math.Abs(got-want) > tol {
				t.Fatalf("slot %d: frequency %.5f, want %.5f ±%.5f (weights %v)", slot, got, want, tol, weights)
			}
		}
	}

	var sa sampler
	weights := []int64{1, 5, 10, 0, 84}
	sa.ensure(len(weights))
	for i, w := range weights {
		sa.set(int32(i), w)
	}
	checkFreqs(&sa, weights)

	// Incremental updates: grow a zero slot, shrink the heavy one, zero one
	// out, and append a new slot — all without an explicit rebuild.
	updates := []struct {
		slot int32
		w    int64
	}{{3, 40}, {4, 2}, {1, 0}, {0, 63}}
	for _, u := range updates {
		weights[u.slot] = u.w
		sa.set(u.slot, u.w)
	}
	sa.ensure(6)
	sa.set(5, 17)
	weights = append(weights, 17)
	checkFreqs(&sa, weights)

	// A long random walk of updates keeps totals exact.
	for i := 0; i < 20_000; i++ {
		slot := int32(src.Intn(len(weights)))
		w := int64(src.Intn(100))
		weights[slot] = w
		sa.set(slot, w)
	}
	var want int64
	for _, w := range weights {
		want += w
	}
	if sa.total != want {
		t.Fatalf("sampler total %d after random walk, want %d", sa.total, want)
	}
	checkFreqs(&sa, weights)
}

// TestDiagonalSkipConsumesExactClock: the geometric fast path must account
// for every skipped interaction.
func TestDiagonalSkipConsumesExactClock(t *testing.T) {
	s, err := NewSystem(toyDiagonal(64, 1024), 3)
	if err != nil {
		t.Fatal(err)
	}
	var steps uint64
	for _, k := range []uint64{1, 7, 1000, 123_456} {
		s.StepMany(k)
		steps += k
		if s.Clock() != steps {
			t.Fatalf("clock %d after %d requested interactions", s.Clock(), steps)
		}
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestAllSingletonsAreSilentForever: a diagonal model with every state a
// singleton has zero reactive mass, so even an astronomical step count
// returns immediately.
func TestAllSingletonsAreSilentForever(t *testing.T) {
	m := toyDiagonal(8, 2)
	m.Init = func() ([]uint64, []int64) { return []uint64{1, 2}, []int64{1, 1} }
	s, err := NewSystem(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	s.StepMany(1 << 60)
	if s.Clock() != 1<<60 {
		t.Fatalf("clock %d", s.Clock())
	}
	if s.Count(1) != 1 || s.Count(2) != 1 || s.Occupied() != 2 {
		t.Fatal("silent configuration changed")
	}
}

// TestInteractIgnoresIndices: Interact is one sampled interaction no matter
// which agent pair the caller names.
func TestInteractIgnoresIndices(t *testing.T) {
	s, err := NewSystem(toyDiagonal(8, 64), 3)
	if err != nil {
		t.Fatal(err)
	}
	s.Interact(0, 1)
	s.Interact(63, 12)
	if s.Clock() != 2 {
		t.Fatalf("clock %d after two Interacts", s.Clock())
	}
}

// TestApplyPair exercises the test hook: explicit state-pair reactions with
// exact bookkeeping, and errors for unoccupied states.
func TestApplyPair(t *testing.T) {
	s, err := NewSystem(toyDiagonal(8, 10), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyPair(1, 1); err != nil { // (1,1) -> (1,2)
		t.Fatal(err)
	}
	if s.Count(1) != 9 || s.Count(2) != 1 {
		t.Fatalf("counts after (1,1): %d, %d", s.Count(1), s.Count(2))
	}
	if err := s.ApplyPair(2, 2); err == nil {
		t.Fatal("ApplyPair on a singleton diagonal accepted")
	}
	if err := s.ApplyPair(5, 1); err == nil {
		t.Fatal("ApplyPair with an unoccupied initiator accepted")
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestCorrectRankingAndLeaders runs the toy ranking to its permutation and
// checks the maintained predicates along the way.
func TestCorrectRankingAndLeaders(t *testing.T) {
	const n = 64
	s, err := NewSystem(toyDiagonal(n, n), 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.CorrectRanking() {
		t.Fatal("all-rank-1 start reported as a permutation")
	}
	if s.Leaders() != n {
		t.Fatalf("leaders %d at start", s.Leaders())
	}
	for i := 0; i < 10_000 && !s.CorrectRanking(); i++ {
		s.StepMany(uint64(n))
	}
	if !s.CorrectRanking() {
		t.Fatal("toy ranking did not reach a permutation")
	}
	if s.Leaders() != 1 || !s.Correct() {
		t.Fatalf("permutation with %d leaders", s.Leaders())
	}
	if s.Occupied() != n {
		t.Fatalf("permutation with %d occupied states", s.Occupied())
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestSparseLookup runs a model without a declared state space (hash-map
// lookup) and checks the same bookkeeping holds.
func TestSparseLookup(t *testing.T) {
	m := toyDiagonal(32, 256)
	m.StateSpace = 0 // force the sparse path
	s, err := NewSystem(m, 5)
	if err != nil {
		t.Fatal(err)
	}
	s.StepMany(100_000)
	if err := s.SelfCheck(); err != nil {
		t.Fatal(err)
	}
	var sum int64
	s.Each(func(_ uint64, c int64) bool { sum += c; return true })
	if sum != 256 {
		t.Fatalf("counts sum %d, want 256", sum)
	}
}

// TestCapableGatesSafeSet: the safe-set capability must appear exactly when
// the model declares a SafeSet predicate.
func TestCapableGatesSafeSet(t *testing.T) {
	plain, err := NewSystem(toyDiagonal(8, 16), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := Capable(plain).(sim.SafeSetter); ok {
		t.Fatal("model without SafeSet exposed the safe-set capability")
	}
	m := toyDiagonal(8, 16)
	m.SafeSet = func(v sim.CountView) bool { return v.Occupied() == 8 }
	withSafe, err := NewSystem(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := Capable(withSafe)
	ss, ok := p.(sim.SafeSetter)
	if !ok {
		t.Fatal("model with SafeSet lost the safe-set capability")
	}
	if ss.InSafeSet() {
		t.Fatal("all-rank-1 start reported in safe set")
	}
	if _, ok := p.(sim.CountBased); !ok {
		t.Fatal("wrapper lost the count-based capability")
	}
}

// fixedSched is a deliberately non-uniform scheduler for contract tests.
type fixedSched struct{}

func (fixedSched) Pair(n int) (int, int) { return 0, 1 % n }

// TestInternalRunnerDrivesCountBased: sim.Run must honor the supplied
// stream (distinct seeds → distinct trajectories, bulk-stepped), and
// sim.RunSched must reject non-uniform schedulers instead of silently
// substituting uniform dynamics from a stale stream.
func TestInternalRunnerDrivesCountBased(t *testing.T) {
	run := func(seed uint64) sim.Result {
		s, err := NewSystem(toyDiagonal(64, 64), 1)
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run(s, rng.New(seed), sim.Options{MaxInteractions: 50_000, StopAfterStableFor: 1})
	}
	a, b, a2 := run(3), run(4), run(3)
	if a != a2 {
		t.Fatalf("same seed diverged: %+v vs %+v", a, a2)
	}
	if a == b {
		t.Fatalf("distinct seeds produced identical results %+v — the scheduler stream is being ignored", a)
	}
	if !a.Stabilized {
		t.Fatalf("toy ranking did not stabilize through sim.Run: %+v", a)
	}

	s, err := NewSystem(toyDiagonal(8, 16), 1)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.RunSched(s, fixedSched{}, sim.Options{MaxInteractions: 100})
	if res.Err == nil {
		t.Fatal("sim.RunSched accepted a non-uniform scheduler for a count-based protocol")
	}
	if s.Clock() != 0 {
		t.Fatalf("%d interactions executed before the scheduler rejection", s.Clock())
	}
}

// TestReactOutsideStateSpacePanics: a model whose React emits a key
// outside its declared state space is a broken contract, reported with the
// offending key instead of a raw index panic inside the sampler.
func TestReactOutsideStateSpacePanics(t *testing.T) {
	m := sim.CompactModel{
		StateSpace: 2,
		Init:       func() ([]uint64, []int64) { return []uint64{0, 1}, []int64{1, 1} },
		React:      func(a, b uint64, _ *rng.PRNG) (uint64, uint64) { return 5, b },
		Leader:     func(s uint64) bool { return s == 1 },
	}
	s, err := NewSystem(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("out-of-space React key did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "state space") {
			t.Fatalf("panic %v does not name the contract", r)
		}
	}()
	s.StepMany(10)
}

// TestReactAllMatchesPairLaw: in the non-diagonal path, the responder draw
// must exclude the initiating agent — with two states of one agent each,
// every interaction pairs the two distinct states, never a state with
// itself.
func TestReactAllMatchesPairLaw(t *testing.T) {
	sawPair := 0
	m := sim.CompactModel{
		Init: func() ([]uint64, []int64) { return []uint64{0, 1}, []int64{1, 1} },
		React: func(a, b uint64, _ *rng.PRNG) (uint64, uint64) {
			if a == b {
				panic("species: paired an agent with itself")
			}
			sawPair++
			return a, b
		},
		Leader: func(s uint64) bool { return s == 0 },
	}
	s, err := NewSystem(m, 9)
	if err != nil {
		t.Fatal(err)
	}
	s.StepMany(10_000)
	if sawPair != 10_000 {
		t.Fatalf("React fired %d times, want 10000", sawPair)
	}
}
