// churn_test.go unit-tests the count-based churn surface: joins and leaves
// over the state multiset, the size-change bookkeeping (dense-table growth,
// sparse migration, shrink remaps), and the recorded-delta replay path —
// each sequence ending in a SelfCheck of every engine invariant.

package species

import (
	"strings"
	"testing"

	"sspp/internal/rng"
	"sspp/internal/sim"
	"sspp/internal/workload"
)

// toyChurn is a CIW-shaped churnable model: rank states in [1, n], clean
// joins at rank 1, "top" joins at the new maximum rank, and a shrink clamps
// stranded ranks to the new maximum.
func toyChurn(n int64) sim.CompactModel {
	m := toyDiagonal(int(n), n)
	size := int(n)
	m.Churn = &sim.CompactChurn{
		MinN: 2,
		Join: func(class string, n int, _ sim.CountView, _ *rng.PRNG) (uint64, error) {
			switch class {
			case "":
				return 1, nil
			case "top":
				return uint64(n), nil
			}
			return 0, &classError{class}
		},
		Rescale: func(n int) (uint64, func(uint64) uint64) {
			size = n
			max := uint64(n)
			return max + 1, func(key uint64) uint64 {
				if key > max {
					return max
				}
				return key
			}
		},
	}
	// React reads the live size through the closure so the diagonal rule
	// stays within [1, n] after churn.
	m.React = func(a, b uint64, _ *rng.PRNG) (uint64, uint64) {
		if a == b {
			return a, a%uint64(size) + 1
		}
		return a, b
	}
	return m
}

type classError struct{ class string }

func (e *classError) Error() string { return "species_test: unrealizable class " + e.class }

func mustSystem(t *testing.T, m sim.CompactModel) *System {
	t.Helper()
	s, err := NewSystem(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func selfCheck(t *testing.T, s *System) {
	t.Helper()
	if err := s.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestChurnGate(t *testing.T) {
	bare := mustSystem(t, toyDiagonal(8, 16))
	if bare.CanChurn() {
		t.Fatal("model without churn hooks reports CanChurn")
	}
	if err := bare.JoinState("", rng.New(2)); err == nil {
		t.Fatal("JoinState accepted without churn hooks")
	}
	if _, err := bare.LeaveState(rng.New(2)); err == nil {
		t.Fatal("LeaveState accepted without churn hooks")
	}
	churny := mustSystem(t, toyChurn(16))
	if !churny.CanChurn() {
		t.Fatal("churnable model reports CanChurn false")
	}
	if minN, maxN := churny.ChurnBounds(); minN != 2 || maxN != 0 {
		t.Fatalf("bounds (%d, %d), want (2, 0)", minN, maxN)
	}
}

func TestJoinStateByClass(t *testing.T) {
	s := mustSystem(t, toyChurn(16))
	if err := s.JoinState("", rng.New(3)); err != nil {
		t.Fatal(err)
	}
	if s.N() != 17 || s.Count(1) != 17 {
		t.Fatalf("after a clean join: n=%d, count(1)=%d", s.N(), s.Count(1))
	}
	// "top" joins at the post-join maximum rank — key 18 exists only because
	// Rescale grew the space first.
	if err := s.JoinState("top", rng.New(4)); err != nil {
		t.Fatal(err)
	}
	if s.N() != 18 || s.Count(18) != 1 {
		t.Fatalf("after a top join: n=%d, count(18)=%d", s.N(), s.Count(18))
	}
	if err := s.JoinState("bogus", rng.New(5)); err == nil {
		t.Fatal("unrealizable class accepted")
	}
	if s.N() != 18 {
		t.Fatalf("failed join changed n to %d", s.N())
	}
	selfCheck(t, s)
}

func TestLeaveStateFollowsCounts(t *testing.T) {
	s := mustSystem(t, toyChurn(16)) // all 16 agents in state 1
	key, err := s.LeaveState(rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if key != 1 || s.N() != 15 || s.Count(1) != 15 {
		t.Fatalf("leave took key %d, n=%d, count(1)=%d", key, s.N(), s.Count(1))
	}
	selfCheck(t, s)
	// Drain to one agent: the final leave must refuse.
	for s.N() > 1 {
		if _, err := s.LeaveState(rng.New(uint64(s.N()))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.LeaveState(rng.New(7)); err == nil {
		t.Fatal("leave emptied the population")
	}
	selfCheck(t, s)
}

func TestShrinkClampsStrandedKeys(t *testing.T) {
	s := mustSystem(t, toyChurn(4)) // states live in [1, 4]
	// Move everyone to the maximum rank via recorded deltas, then shrink:
	// the stranded key 4 must merge into the new maximum 3.
	if err := s.ApplyDeltas([]workload.KeyDelta{{Key: 1, Delta: -4}, {Key: 4, Delta: 4}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LeaveState(rng.New(8)); err != nil {
		t.Fatal(err)
	}
	if s.N() != 3 || s.Count(4) != 0 || s.Count(3) != 3 {
		t.Fatalf("after the shrink: n=%d, count(4)=%d, count(3)=%d", s.N(), s.Count(4), s.Count(3))
	}
	selfCheck(t, s)
}

func TestGrowSpaceMigratesToSparse(t *testing.T) {
	m := toyChurn(8)
	rescale := m.Churn.Rescale
	// A rescale past the dense bound must migrate the table to the hash map
	// without losing counts.
	m.Churn.Rescale = func(n int) (uint64, func(uint64) uint64) {
		space, remap := rescale(n)
		if n > 8 {
			space = maxDense + 1
		}
		return space, remap
	}
	s := mustSystem(t, m)
	if s.dense == nil {
		t.Fatal("system did not start dense")
	}
	if err := s.JoinState("", rng.New(9)); err != nil {
		t.Fatal(err)
	}
	if s.dense != nil || s.sparse == nil {
		t.Fatal("rescale past maxDense did not migrate to the sparse table")
	}
	if s.N() != 9 || s.Count(1) != 9 {
		t.Fatalf("after migration: n=%d, count(1)=%d", s.N(), s.Count(1))
	}
	selfCheck(t, s)
	// The migrated system keeps stepping and churning.
	s.BindSource(rng.New(10))
	s.StepMany(500)
	if _, err := s.LeaveState(rng.New(11)); err != nil {
		t.Fatal(err)
	}
	selfCheck(t, s)
}

func TestApplyDeltasValidation(t *testing.T) {
	s := mustSystem(t, toyChurn(4))
	if err := s.ApplyDeltas([]workload.KeyDelta{{Key: 1, Delta: -5}}); err == nil ||
		!strings.Contains(err.Error(), "removes") {
		t.Fatalf("overdraw accepted: %v", err)
	}
	if err := s.ApplyDeltas([]workload.KeyDelta{{Key: 1, Delta: -4}}); err == nil ||
		!strings.Contains(err.Error(), "population") {
		t.Fatalf("population drain accepted: %v", err)
	}
	if s.N() != 4 || s.Count(1) != 4 {
		t.Fatalf("rejected deltas mutated the system: n=%d, count(1)=%d", s.N(), s.Count(1))
	}
	// A replacement-shaped delta set: one agent moves state, n unchanged.
	if err := s.ApplyDeltas([]workload.KeyDelta{{Key: 1, Delta: -1}, {Key: 2, Delta: 1}}); err != nil {
		t.Fatal(err)
	}
	if s.N() != 4 || s.Count(1) != 3 || s.Count(2) != 1 {
		t.Fatalf("replacement deltas: n=%d, counts %d/%d", s.N(), s.Count(1), s.Count(2))
	}
	// A growth delta set: the key space must grow with n before the new
	// maximum-rank state is credited.
	if err := s.ApplyDeltas([]workload.KeyDelta{{Key: 5, Delta: 1}}); err != nil {
		t.Fatal(err)
	}
	if s.N() != 5 || s.Count(5) != 1 {
		t.Fatalf("growth deltas: n=%d, count(5)=%d", s.N(), s.Count(5))
	}
	selfCheck(t, s)
}

// TestChurnSequenceKeepsInvariants soaks a mixed join/leave/step sequence
// and self-checks after every mutation — the unit-level analogue of the
// public cross-backend property test.
func TestChurnSequenceKeepsInvariants(t *testing.T) {
	s := mustSystem(t, toyChurn(32))
	s.BindSource(rng.New(12))
	src := rng.New(13)
	for i := 0; i < 200; i++ {
		switch i % 4 {
		case 0:
			if err := s.JoinState("", src); err != nil {
				t.Fatal(err)
			}
		case 1:
			if err := s.JoinState("top", src); err != nil {
				t.Fatal(err)
			}
		case 2, 3:
			if _, err := s.LeaveState(src); err != nil {
				t.Fatal(err)
			}
		}
		s.StepMany(50)
		if err := s.SelfCheck(); err != nil {
			t.Fatalf("after mutation %d: %v", i, err)
		}
	}
	if s.N() != 32 {
		t.Fatalf("balanced sequence drifted n to %d", s.N())
	}
}
