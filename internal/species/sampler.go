// sampler.go implements the dynamic weighted sampler at the heart of the
// species engine: Walker/Vose alias-table sampling (O(1) expected per draw)
// over a snapshot of the weights, kept current under incremental updates by
// a side buffer plus rejection. Between rebuilds an update is O(1): weight
// decreases are absorbed by rejecting stale alias draws, weight increases
// accumulate in the side buffer, and the table is rebuilt (amortized) when
// the stale mass or the side buffer would degrade the acceptance rate.
//
// Correctness sketch: one attempt draws a point x uniform in
// [0, sideTotal + baseTotal). The side branch (x < sideTotal) returns slot i
// with probability (live[i]-base[i])⁺ / (sideTotal+baseTotal); the alias
// branch proposes slot i with probability base[i] / (sideTotal+baseTotal)
// and accepts with min(live[i], base[i]) / base[i]. Summing, an attempt
// returns slot i with probability live[i] / (sideTotal+baseTotal) and fails
// with the remaining mass, so conditioned on success the draw is exactly
// live-weighted. The rebuild policy keeps sideTotal+baseTotal ≤ 2·total, so
// the success probability stays ≥ 1/2 and a draw is O(1) expected.

package species

import "sspp/internal/rng"

// sampler draws slot indices with probability proportional to live integer
// weights. The zero value is an empty sampler; grow it with ensure and set
// weights with set. Not safe for concurrent use.
type sampler struct {
	live  []int64 // current weight per slot
	total int64   // Σ live

	// Snapshot taken at the last rebuild.
	base      []int64 // weight per slot at build time (0 for slots added later)
	baseTotal int64   // Σ base

	// Side buffer: slots whose live weight exceeds their base snapshot.
	side      []int32 // candidate slots (may contain stale entries)
	inSide    []bool  // per-slot membership flag for side
	sideTotal int64   // Σ max(0, live-base)

	// Alias table over the slots with positive base weight.
	aliasSlot []int32   // slot id per table entry
	aliasAlt  []int32   // alias entry index per table entry
	aliasProb []float64 // acceptance threshold per table entry
}

// ensure grows the per-slot arrays to hold slot ids < n.
func (sa *sampler) ensure(n int) {
	for len(sa.live) < n {
		sa.live = append(sa.live, 0)
		sa.base = append(sa.base, 0)
		sa.inSide = append(sa.inSide, false)
	}
}

// set updates slot's live weight to w ≥ 0 in O(1) amortized.
func (sa *sampler) set(slot int32, w int64) {
	old := sa.live[slot]
	if w == old {
		return
	}
	sa.total += w - old
	b := sa.base[slot]
	oldEx, newEx := old-b, w-b
	if oldEx < 0 {
		oldEx = 0
	}
	if newEx < 0 {
		newEx = 0
	}
	if newEx != oldEx {
		sa.sideTotal += newEx - oldEx
		if newEx > 0 && !sa.inSide[slot] {
			sa.side = append(sa.side, slot)
			sa.inSide[slot] = true
		}
	}
	sa.live[slot] = w
	if sa.stale() {
		sa.rebuild()
	}
}

// stale reports whether the snapshot has drifted enough to hurt the
// acceptance rate (attempt mass > 2·live mass) or the side buffer has grown
// past the linear-scan budget.
func (sa *sampler) stale() bool {
	if sa.total > 0 && sa.baseTotal+sa.sideTotal > 2*sa.total {
		return true
	}
	return len(sa.side) > 32+len(sa.aliasSlot)/4
}

// rebuild snapshots the live weights and rebuilds the alias table (Vose's
// algorithm) over the slots with positive weight. O(occupied slots).
func (sa *sampler) rebuild() {
	for _, s := range sa.side {
		sa.inSide[s] = false
	}
	sa.side = sa.side[:0]
	sa.sideTotal = 0

	m := 0
	for i, w := range sa.live {
		sa.base[i] = w
		if w > 0 {
			m++
		}
	}
	sa.baseTotal = sa.total
	sa.aliasSlot = sa.aliasSlot[:0]
	sa.aliasAlt = sa.aliasAlt[:0]
	sa.aliasProb = sa.aliasProb[:0]
	if m == 0 {
		return
	}
	// Vose's alias method over the occupied slots: scaled[i] = w_i·m/total;
	// entries below 1 take an alias from entries above 1.
	scaled := make([]float64, 0, m)
	for i, w := range sa.live {
		if w > 0 {
			sa.aliasSlot = append(sa.aliasSlot, int32(i))
			scaled = append(scaled, float64(w)*float64(m)/float64(sa.total))
		}
	}
	sa.aliasAlt = make([]int32, m)
	sa.aliasProb = make([]float64, m)
	small := make([]int32, 0, m)
	large := make([]int32, 0, m)
	for i := range scaled {
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		sa.aliasProb[s] = scaled[s]
		sa.aliasAlt[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	for _, i := range large {
		sa.aliasProb[i] = 1
		sa.aliasAlt[i] = i
	}
	for _, i := range small { // numeric leftovers; scaled[i] ≈ 1
		sa.aliasProb[i] = 1
		sa.aliasAlt[i] = i
	}
}

// sample draws a slot with probability live[slot]/total. The caller must
// ensure total > 0.
//
//sspp:hotpath
func (sa *sampler) sample(src *rng.PRNG) int32 {
	for {
		x := int64(src.Uint64n(uint64(sa.sideTotal + sa.baseTotal)))
		if x < sa.sideTotal {
			// Side branch: linear scan of the (bounded) side buffer by excess.
			for _, s := range sa.side {
				ex := sa.live[s] - sa.base[s]
				if ex <= 0 {
					continue
				}
				if x < ex {
					return s
				}
				x -= ex
			}
			continue // stale sideTotal slack; retry
		}
		// Alias branch over the base snapshot, rejection against live.
		e := src.Intn(len(sa.aliasSlot))
		if src.Float64() >= sa.aliasProb[e] {
			e = int(sa.aliasAlt[e])
		}
		slot := sa.aliasSlot[e]
		b, l := sa.base[slot], sa.live[slot]
		if l >= b || int64(src.Uint64n(uint64(b))) < l {
			return slot
		}
		// Rejected stale mass; retry (acceptance ≥ 1/2 by the rebuild policy).
	}
}
