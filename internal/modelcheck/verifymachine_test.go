package modelcheck

import "testing"

// badVerify flags configurations reached through a hard reset.
func badVerify(s State) bool { return s.(*VerifyConfig).HardReset() }

// TestVerifyClosureExhaustive is Lemma 6.1 at n=2, checked exhaustively:
// from both safe-configuration shapes (all generation 0; and the
// two-generation soft-reset wave), no schedule and no draws ever request a
// hard reset. The reachable space must close completely within the budget.
func TestVerifyClosureExhaustive(t *testing.T) {
	m, err := NewVerifyMachine(2, 2, nil, 2, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep := Explore(m, badVerify, true, Options{MaxStates: 100_000})
	if rep.Violations != 0 {
		t.Fatalf("hard reset reachable from a safe configuration: %+v", rep)
	}
	if rep.Truncated {
		t.Fatalf("expected full closure at n=2: %+v", rep)
	}
	t.Logf("verify-layer closure at n=2: %d configurations fully closed (depth %d)",
		rep.Explored, rep.MaxDepth)
}

// TestVerifyClosureBounded widens to n=3 with a slower refresh; bounded
// guarantee.
func TestVerifyClosureBounded(t *testing.T) {
	m, err := NewVerifyMachine(3, 3, nil, 2, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep := Explore(m, badVerify, true, Options{MaxStates: 15_000})
	if rep.Violations != 0 {
		t.Fatalf("hard reset reachable from a safe configuration: %+v", rep)
	}
	t.Logf("verify-layer closure at n=3: %d configurations (truncated=%v, depth %d)",
		rep.Explored, rep.Truncated, rep.MaxDepth)
}

// TestVerifyDuplicateRankEscalates is the dual: with a duplicated rank and
// tiny probation, a hard reset IS reachable (the escalation Lemma F.6
// requires).
func TestVerifyDuplicateRankEscalates(t *testing.T) {
	m, err := NewVerifyMachine(2, 2, []int32{1, 1}, 2, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep := Explore(m, badVerify, true, Options{MaxStates: 50_000})
	if rep.Violations == 0 {
		t.Fatalf("hard reset unreachable despite duplicate ranks: %+v", rep)
	}
	t.Logf("duplicate rank escalates to hard reset at depth %d", rep.FirstViolationDepth)
}

func TestVerifyMachineValidation(t *testing.T) {
	if _, err := NewVerifyMachine(1, 1, nil, 2, 1, 3); err == nil {
		t.Fatal("n < 2 must fail")
	}
	if _, err := NewVerifyMachine(2, 2, []int32{1}, 2, 1, 3); err == nil {
		t.Fatal("rank mismatch must fail")
	}
	m, err := NewVerifyMachine(2, 2, nil, 0, 0, 0) // all clamped
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Initial()) != 2 {
		t.Fatal("two initial shapes expected")
	}
}
