// Package modelcheck provides bounded exhaustive verification of the
// repository's safety-critical state machines, complementing the randomized
// tests: instead of sampling schedules, it enumerates *every* schedule (and
// every random draw) up to a configuration budget.
//
// Two checkers are provided:
//
//   - Explore: generic breadth-first search over a nondeterministic machine,
//     used to verify Lemma E.2 (no ⊤ reachable from a correct
//     initialization) exhaustively on small DetectCollision_r instances,
//     and dually that ⊤ *is* reachable whenever a rank is duplicated.
//   - CheckCIW: full state-space analysis of the n-state CIW baseline,
//     proving (for small n) that every configuration can reach a silent
//     permutation — which, under the uniform scheduler, is exactly
//     probabilistic self-stabilization.
package modelcheck

// State is one configuration of a machine. Key must be a canonical
// fingerprint: two states with equal keys must be semantically identical.
type State interface {
	Key() string
}

// Machine is a finite nondeterministic transition system.
type Machine interface {
	// Initial returns the starting configurations.
	Initial() []State
	// Successors returns every configuration reachable in one transition
	// (all scheduler choices × all random draws).
	Successors(s State) []State
}

// Options bounds an exploration.
type Options struct {
	// MaxStates caps the number of distinct configurations explored
	// (default 100000). When the cap is hit the exploration is truncated
	// and the report says so: the result is then a bounded guarantee.
	MaxStates int
}

// Report summarizes an exploration.
type Report struct {
	// Explored is the number of distinct configurations visited.
	Explored int
	// Truncated reports whether the state budget was exhausted before the
	// frontier emptied.
	Truncated bool
	// Violations is the number of explored configurations violating the
	// property.
	Violations int
	// FirstViolationDepth is the BFS depth of the first violation (-1 when
	// none was found).
	FirstViolationDepth int
	// MaxDepth is the deepest level fully or partially explored.
	MaxDepth int
}

// Explore runs a breadth-first search from the machine's initial states and
// classifies every visited state with bad (nil means no property, pure
// reachability). The search stops when the frontier is empty, the state
// budget is reached, or — as an early exit — stopOnViolation is set and a
// bad state was found.
func Explore(m Machine, bad func(State) bool, stopOnViolation bool, opt Options) Report {
	maxStates := opt.MaxStates
	if maxStates <= 0 {
		maxStates = 100_000
	}
	rep := Report{FirstViolationDepth: -1}
	seen := make(map[string]struct{}, maxStates)
	type node struct {
		s     State
		depth int
	}
	var queue []node
	push := func(s State, depth int) bool {
		k := s.Key()
		if _, ok := seen[k]; ok {
			return true
		}
		if len(seen) >= maxStates {
			rep.Truncated = true
			return false
		}
		seen[k] = struct{}{}
		queue = append(queue, node{s: s, depth: depth})
		return true
	}
	for _, s := range m.Initial() {
		push(s, 0)
	}
	for len(queue) > 0 {
		nd := queue[0]
		queue = queue[1:]
		rep.Explored++
		if nd.depth > rep.MaxDepth {
			rep.MaxDepth = nd.depth
		}
		if bad != nil && bad(nd.s) {
			rep.Violations++
			if rep.FirstViolationDepth < 0 {
				rep.FirstViolationDepth = nd.depth
			}
			if stopOnViolation {
				return rep
			}
			continue // do not expand beyond a violation
		}
		for _, succ := range m.Successors(nd.s) {
			push(succ, nd.depth+1)
		}
	}
	return rep
}
