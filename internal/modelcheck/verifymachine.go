// verifymachine.go adapts the StableVerify_r layer (probation timers,
// generations, soft resets, embedded DetectCollision_r) to the model
// checker. It verifies the heart of Lemma 6.1 exhaustively at tiny sizes:
// from a safe configuration — correct ranking, clean detection states,
// coherent generations — no schedule and no random draws can ever produce a
// hard reset or change a rank. This covers both the single-generation case
// (Lemma 6.2's endpoint) and the delicate two-generation case created by a
// propagating soft reset.

package modelcheck

import (
	"fmt"

	"sspp/internal/detect"
	"sspp/internal/verify"
)

// VerifyConfig is one configuration of the verify machine.
type VerifyConfig struct {
	states    []*verify.State
	key       string
	hardReset bool // a hard reset was requested reaching this configuration
}

// Key returns the canonical fingerprint.
func (c *VerifyConfig) Key() string { return c.key }

// HardReset reports whether reaching this configuration requested a full
// reset — the event that must be unreachable from safe configurations.
func (c *VerifyConfig) HardReset() bool { return c.hardReset }

// VerifyMachine enumerates StableVerify_r executions over fixed ranks.
type VerifyMachine struct {
	params   verify.Params
	ranks    []int32
	sigSpace int32
	scratch  *detect.Scratch
	initial  []State
}

// NewVerifyMachine builds the machine for n agents, one group (r = n), the
// given rank vector (nil = identity), signature space, refresh constant and
// probation ceiling. The initial configurations are (a) all agents in
// generation 0 with fresh q0,SV, and (b) the two-generation configuration
// where agent 0 has soft-reset into generation 1 while the rest sit at
// generation 0 with expired probation — the two safe-set shapes of
// Lemma 6.1.
func NewVerifyMachine(n, r int, ranks []int32, sigSpace int32, refresh int, pmax int32) (*VerifyMachine, error) {
	if n < 2 {
		return nil, fmt.Errorf("modelcheck: n = %d < 2", n)
	}
	if ranks == nil {
		ranks = make([]int32, n)
		for i := range ranks {
			ranks[i] = int32(i + 1)
		}
	}
	if len(ranks) != n {
		return nil, fmt.Errorf("modelcheck: %d ranks for %d agents", len(ranks), n)
	}
	if pmax < 1 {
		pmax = 1
	}
	dp := detect.NewParamsWithRefresh(n, r, refresh)
	dp.SetSigSpace(sigSpace)
	if sigSpace < 2 {
		sigSpace = 2
	}
	m := &VerifyMachine{
		params:   verify.Params{PMax: pmax, Detect: dp},
		ranks:    ranks,
		sigSpace: sigSpace,
		scratch:  detect.NewScratch(),
	}

	// Initial (a): fresh verifiers, all generation 0.
	fresh := make([]*verify.State, n)
	for i, rank := range ranks {
		fresh[i] = verify.InitState(m.params, rank)
	}
	// Initial (b): agent 0 one generation ahead (as after a self soft
	// reset), everyone else off probation — the two-generation safe shape.
	twoGen := make([]*verify.State, n)
	for i, rank := range ranks {
		twoGen[i] = verify.InitState(m.params, rank)
		if i == 0 {
			twoGen[i].Generation = 1
		} else {
			twoGen[i].Probation = 0
		}
	}
	m.initial = []State{m.wrap(fresh, false), m.wrap(twoGen, false)}
	return m, nil
}

// Initial returns the two safe-configuration shapes.
func (m *VerifyMachine) Initial() []State { return m.initial }

// wrap computes the canonical key of a state vector.
func (m *VerifyMachine) wrap(states []*verify.State, hard bool) *VerifyConfig {
	var b []byte
	if hard {
		b = append(b, 0xAA)
	}
	for _, s := range states {
		b = append(b, s.Generation, byte(s.Probation), byte(s.Probation>>8))
		if s.DC != nil {
			b = s.DC.AppendKey(b)
		}
		b = append(b, '|')
	}
	return &VerifyConfig{states: states, key: string(b), hardReset: hard}
}

// Successors enumerates every (ordered pair, draw assignment) transition.
// Hard-reset configurations are terminal (the checker flags them as
// violations before expansion anyway).
func (m *VerifyMachine) Successors(s State) []State {
	cfg := s.(*VerifyConfig)
	if cfg.hardReset {
		return nil
	}
	n := len(m.ranks)
	var out []State
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			for x := int32(0); x < m.sigSpace; x++ {
				for y := int32(0); y < m.sigSpace; y++ {
					out = append(out, m.step(cfg, a, b, x, y))
				}
			}
		}
	}
	return out
}

// step applies one StableVerify_r interaction with scripted draws.
func (m *VerifyMachine) step(cfg *VerifyConfig, a, b int, x, y int32) *VerifyConfig {
	states := make([]*verify.State, len(cfg.states))
	copy(states, cfg.states)
	states[a] = cloneVerifyState(cfg.states[a])
	states[b] = cloneVerifyState(cfg.states[b])
	draws := [2]int32{x, y}
	idx := 0
	sample := func(int) int {
		v := draws[idx%2]
		idx++
		return int(v)
	}
	ua, va := verify.Interact(m.params,
		m.ranks[a], states[a], m.ranks[b], states[b],
		sample, sample, m.scratch, nil, 0)
	hard := ua == verify.ActHardReset || va == verify.ActHardReset
	return m.wrap(states, hard)
}

// cloneVerifyState deep-copies a verify.State.
func cloneVerifyState(s *verify.State) *verify.State {
	out := &verify.State{Generation: s.Generation, Probation: s.Probation}
	if s.DC != nil {
		out.DC = s.DC.Clone()
	}
	return out
}
