package modelcheck

import (
	"fmt"
	"testing"
)

// chainMachine is a trivial machine for exercising Explore: states are
// integers 0..limit, each with successors +1 and +2.
type chainState int

func (c chainState) Key() string { return fmt.Sprintf("%d", int(c)) }

type chainMachine struct{ limit int }

func (m chainMachine) Initial() []State { return []State{chainState(0)} }

func (m chainMachine) Successors(s State) []State {
	v := int(s.(chainState))
	var out []State
	for _, d := range []int{1, 2} {
		if v+d <= m.limit {
			out = append(out, chainState(v+d))
		}
	}
	return out
}

func TestExploreExhaustsSmallMachine(t *testing.T) {
	rep := Explore(chainMachine{limit: 10}, nil, false, Options{MaxStates: 100})
	if rep.Truncated {
		t.Fatal("should not truncate")
	}
	if rep.Explored != 11 {
		t.Fatalf("explored %d, want 11", rep.Explored)
	}
	if rep.Violations != 0 || rep.FirstViolationDepth != -1 {
		t.Fatalf("unexpected violations: %+v", rep)
	}
	if rep.MaxDepth < 5 || rep.MaxDepth > 10 {
		t.Fatalf("MaxDepth = %d, want within [5, 10]", rep.MaxDepth)
	}
}

func TestExploreTruncates(t *testing.T) {
	rep := Explore(chainMachine{limit: 1000}, nil, false, Options{MaxStates: 10})
	if !rep.Truncated {
		t.Fatal("expected truncation")
	}
	if rep.Explored > 10 {
		t.Fatalf("explored %d > budget", rep.Explored)
	}
}

func TestExploreFindsViolation(t *testing.T) {
	bad := func(s State) bool { return int(s.(chainState)) == 7 }
	rep := Explore(chainMachine{limit: 10}, bad, true, Options{})
	if rep.Violations != 1 {
		t.Fatalf("violations = %d", rep.Violations)
	}
	// 7 is reachable in ⌈7/2⌉ = 4 steps at the earliest.
	if rep.FirstViolationDepth != 4 {
		t.Fatalf("first violation at depth %d, want 4", rep.FirstViolationDepth)
	}
}

func TestExploreDefaultBudget(t *testing.T) {
	rep := Explore(chainMachine{limit: 3}, nil, false, Options{})
	if rep.Explored != 4 {
		t.Fatalf("explored %d, want 4", rep.Explored)
	}
}

// TestDetectSoundnessExhaustive is the exhaustive version of Lemma E.2 for
// n = 2: with a tiny signature space the reachable configuration space
// collapses to a handful of states (balancing and restamping are idempotent
// here), and the search closes it completely — a full proof that no
// schedule and no draws can raise ⊤ from a correct initialization at this
// instance size.
func TestDetectSoundnessExhaustive(t *testing.T) {
	m, err := NewDetectMachine(2, 2, nil, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := func(s State) bool { return s.(*DetectConfig).AnyTop() }
	rep := Explore(m, bad, true, Options{MaxStates: 30_000})
	if rep.Violations != 0 {
		t.Fatalf("⊤ reachable from a correct initialization: %+v", rep)
	}
	if rep.Truncated {
		t.Fatalf("expected full closure of the reachable space: %+v", rep)
	}
	t.Logf("exhaustive soundness at n=2: reachable space fully closed with %d configurations",
		rep.Explored)
}

// TestDetectSoundnessBounded widens to n = 3 with a slower refresh period,
// where the reachable space is large: the guarantee is bounded (every
// execution prefix within the explored budget), which is exactly what
// bounded model checking provides.
func TestDetectSoundnessBounded(t *testing.T) {
	m, err := NewDetectMachine(3, 3, nil, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	bad := func(s State) bool { return s.(*DetectConfig).AnyTop() }
	rep := Explore(m, bad, true, Options{MaxStates: 20_000})
	if rep.Violations != 0 {
		t.Fatalf("⊤ reachable from a correct initialization: %+v", rep)
	}
	if rep.Explored < 1000 {
		t.Fatalf("exploration too small to be meaningful: %+v", rep)
	}
	t.Logf("bounded soundness at n=3: %d configurations, truncated=%v, depth %d",
		rep.Explored, rep.Truncated, rep.MaxDepth)
}

// TestDetectCompletenessBounded is the dual: with a duplicated rank, ⊤ IS
// reachable (and quickly — the duplicate pair's first meeting raises it).
func TestDetectCompletenessBounded(t *testing.T) {
	m, err := NewDetectMachine(3, 3, []int32{1, 1, 3}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := func(s State) bool { return s.(*DetectConfig).AnyTop() }
	rep := Explore(m, bad, true, Options{MaxStates: 30_000})
	if rep.Violations == 0 {
		t.Fatalf("⊤ unreachable despite duplicate rank: %+v", rep)
	}
	if rep.FirstViolationDepth != 1 {
		t.Fatalf("first ⊤ at depth %d, want 1 (direct meeting)", rep.FirstViolationDepth)
	}
}

func TestDetectMachineValidation(t *testing.T) {
	if _, err := NewDetectMachine(1, 1, nil, 2, 1); err == nil {
		t.Fatal("n < 2 must fail")
	}
	if _, err := NewDetectMachine(3, 3, []int32{1}, 2, 1); err == nil {
		t.Fatal("rank length mismatch must fail")
	}
}

func TestDetectMachineDeterministicKeys(t *testing.T) {
	m, err := NewDetectMachine(2, 2, nil, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := m.Initial()[0].Key()
	b := m.Initial()[0].Key()
	if a != b {
		t.Fatal("initial keys differ")
	}
	succs := m.Successors(m.Initial()[0])
	if len(succs) != 2*4 { // 2 ordered pairs × 2² draw assignments
		t.Fatalf("successors = %d, want 8", len(succs))
	}
}

// TestCheckCIW fully verifies the baseline for n = 2..5: closure (silent
// permutations) and probabilistic stabilization (everything reaches a
// permutation).
func TestCheckCIW(t *testing.T) {
	for n := 2; n <= 5; n++ {
		rep, err := CheckCIW(n)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.AllReachStable {
			t.Fatalf("n=%d: some configuration cannot reach a permutation", n)
		}
		if !rep.PermutationsSilent {
			t.Fatalf("n=%d: a permutation is not silent", n)
		}
		wantPerms := 1
		for k := 2; k <= n; k++ {
			wantPerms *= k
		}
		if rep.Permutations != wantPerms {
			t.Fatalf("n=%d: %d permutations, want %d", n, rep.Permutations, wantPerms)
		}
		t.Logf("n=%d: %d states fully verified", n, rep.States)
	}
}

func TestCheckCIWValidation(t *testing.T) {
	if _, err := CheckCIW(1); err == nil {
		t.Fatal("n=1 must fail")
	}
	if _, err := CheckCIW(9); err == nil {
		t.Fatal("n=9 must fail")
	}
}
