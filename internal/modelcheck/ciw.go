// ciw.go fully verifies the n-state CIW baseline for small n by exact state
// space analysis: the configuration space [n]^n is enumerated completely,
// and we check that (a) the silent configurations are exactly the
// permutations, and (b) every configuration can reach a permutation. Under
// the uniform random scheduler, (a) + (b) are precisely closure and
// probabilistic stabilization — i.e. self-stabilizing leader election.

package modelcheck

import (
	"fmt"
	"math"
)

// CIWReport is the result of a full CIW state-space analysis.
type CIWReport struct {
	// N is the population size analysed.
	N int
	// States is the total number of configurations (n^n).
	States int
	// Permutations is the number of silent configurations found.
	Permutations int
	// AllReachStable reports whether every configuration can reach a
	// permutation (probabilistic stabilization).
	AllReachStable bool
	// PermutationsSilent reports whether no permutation has a transition
	// that changes the configuration (closure/silence).
	PermutationsSilent bool
}

// CheckCIW exhaustively analyses the CIW protocol on n agents. It returns an
// error for n outside [2, 8] (beyond which n^n is impractical).
func CheckCIW(n int) (CIWReport, error) {
	if n < 2 || n > 8 {
		return CIWReport{}, fmt.Errorf("modelcheck: CIW analysis supports n in [2, 8], got %d", n)
	}
	total := int(math.Pow(float64(n), float64(n)))
	rep := CIWReport{N: n, States: total}

	ranks := make([]int, n)
	decode := func(id int) {
		for i := 0; i < n; i++ {
			ranks[i] = id%n + 1
			id /= n
		}
	}
	encode := func() int {
		id := 0
		for i := n - 1; i >= 0; i-- {
			id = id*n + (ranks[i] - 1)
		}
		return id
	}
	isPermutation := func() bool {
		var seen uint16
		for _, r := range ranks {
			bit := uint16(1) << (r - 1)
			if seen&bit != 0 {
				return false
			}
			seen |= bit
		}
		return true
	}

	// Forward pass: collect predecessors and classify configurations.
	preds := make([][]int32, total)
	stable := make([]bool, total)
	rep.PermutationsSilent = true
	for id := 0; id < total; id++ {
		decode(id)
		perm := isPermutation()
		if perm {
			stable[id] = true
			rep.Permutations++
		}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a == b || ranks[a] != ranks[b] {
					continue
				}
				old := ranks[b]
				ranks[b] = ranks[b]%n + 1
				succ := encode()
				ranks[b] = old
				if succ != id {
					preds[succ] = append(preds[succ], int32(id))
					if perm {
						rep.PermutationsSilent = false
					}
				}
			}
		}
	}

	// Backward reachability from the stable set.
	canReach := make([]bool, total)
	queue := make([]int, 0, total)
	for id := 0; id < total; id++ {
		if stable[id] {
			canReach[id] = true
			queue = append(queue, id)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, p := range preds[id] {
			if !canReach[p] {
				canReach[p] = true
				queue = append(queue, int(p))
			}
		}
	}
	rep.AllReachStable = true
	for id := 0; id < total; id++ {
		if !canReach[id] {
			rep.AllReachStable = false
			break
		}
	}
	return rep, nil
}
