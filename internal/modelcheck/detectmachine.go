// detectmachine.go adapts DetectCollision_r to the model checker: a
// configuration is the vector of all agents' detection states (ranks are
// fixed), and one transition is one ordered scheduler pair combined with one
// assignment of the (at most two) signature draws the interaction may
// consume. With the signature space overridden to a small value, the
// transition relation is finite and every execution prefix is enumerated.

package modelcheck

import (
	"fmt"

	"sspp/internal/detect"
)

// DetectConfig is one configuration of the detect machine.
type DetectConfig struct {
	states []*detect.State
	key    string
}

// Key returns the canonical fingerprint.
func (c *DetectConfig) Key() string { return c.key }

// AnyTop reports whether any agent raised ⊤.
func (c *DetectConfig) AnyTop() bool {
	for _, s := range c.states {
		if s.Err {
			return true
		}
	}
	return false
}

// DetectMachine enumerates DetectCollision_r executions over a fixed rank
// vector.
type DetectMachine struct {
	params   *detect.Params
	ranks    []int32
	sigSpace int32
	scratch  *detect.Scratch
}

// NewDetectMachine builds the machine for n agents with trade-off parameter
// r, the given rank vector (nil = identity), signature space sigSpace
// (clamped to ≥ 2; keep it tiny — branching is pairs × sigSpace²), and
// refresh constant c.
func NewDetectMachine(n, r int, ranks []int32, sigSpace int32, refresh int) (*DetectMachine, error) {
	if n < 2 {
		return nil, fmt.Errorf("modelcheck: n = %d < 2", n)
	}
	if ranks == nil {
		ranks = make([]int32, n)
		for i := range ranks {
			ranks[i] = int32(i + 1)
		}
	}
	if len(ranks) != n {
		return nil, fmt.Errorf("modelcheck: %d ranks for %d agents", len(ranks), n)
	}
	p := detect.NewParamsWithRefresh(n, r, refresh)
	p.SetSigSpace(sigSpace)
	if sigSpace < 2 {
		sigSpace = 2
	}
	return &DetectMachine{
		params:   p,
		ranks:    ranks,
		sigSpace: sigSpace,
		scratch:  detect.NewScratch(),
	}, nil
}

// Params exposes the underlying detection parameters.
func (m *DetectMachine) Params() *detect.Params { return m.params }

// Initial returns the clean q0,DC configuration.
func (m *DetectMachine) Initial() []State {
	states := make([]*detect.State, len(m.ranks))
	for i, rank := range m.ranks {
		states[i] = detect.InitState(m.params, rank)
	}
	return []State{m.wrap(states)}
}

// wrap computes the canonical key of a state vector.
func (m *DetectMachine) wrap(states []*detect.State) *DetectConfig {
	var b []byte
	for _, s := range states {
		b = s.AppendKey(b)
		b = append(b, '|')
	}
	return &DetectConfig{states: states, key: string(b)}
}

// Successors enumerates every (ordered pair, draw assignment) transition.
func (m *DetectMachine) Successors(s State) []State {
	cfg := s.(*DetectConfig)
	n := len(m.ranks)
	var out []State
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			// The interaction consumes at most two draws (one per possible
			// signature refresh). Enumerate all assignments; equivalent
			// outcomes deduplicate via the canonical key upstream.
			for x := int32(0); x < m.sigSpace; x++ {
				for y := int32(0); y < m.sigSpace; y++ {
					succ := m.step(cfg, a, b, x, y)
					out = append(out, succ)
				}
			}
		}
	}
	return out
}

// step applies one interaction with scripted draws.
func (m *DetectMachine) step(cfg *DetectConfig, a, b int, x, y int32) *DetectConfig {
	states := make([]*detect.State, len(cfg.states))
	copy(states, cfg.states)
	states[a] = cfg.states[a].Clone()
	states[b] = cfg.states[b].Clone()
	draws := [2]int32{x, y}
	idx := 0
	sample := func(int) int {
		v := draws[idx%2]
		idx++
		return int(v)
	}
	detect.Interact(m.params, m.ranks[a], states[a], m.ranks[b], states[b],
		sample, sample, m.scratch)
	return m.wrap(states)
}
