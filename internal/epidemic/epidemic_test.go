package epidemic

import (
	"math"
	"testing"
	"testing/quick"

	"sspp/internal/rng"
	"sspp/internal/sim"
)

func TestOneWayDirectionality(t *testing.T) {
	e := NewOneWay(4, 0)
	e.Interact(1, 0) // susceptible initiator: no transmission
	if e.Infected() != 1 {
		t.Fatal("one-way epidemic transmitted against direction")
	}
	e.Interact(0, 1)
	if !e.IsInfected(1) || e.Infected() != 2 {
		t.Fatal("one-way epidemic failed to transmit with direction")
	}
}

func TestTwoWayBothDirections(t *testing.T) {
	e := NewTwoWay(4, 0)
	e.Interact(1, 0)
	if !e.IsInfected(1) {
		t.Fatal("two-way epidemic failed on responder->initiator")
	}
	e.Interact(2, 3)
	if e.Infected() != 2 {
		t.Fatal("two susceptible agents should not create infection")
	}
}

func TestDuplicateSources(t *testing.T) {
	e := NewOneWay(4, 1, 1, 2)
	if e.Infected() != 2 {
		t.Fatalf("Infected = %d, want 2", e.Infected())
	}
}

func TestMonotonicityProperty(t *testing.T) {
	r := rng.New(9)
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		n := 8 + int(rr.Intn(16))
		e := NewTwoWay(n, rr.Intn(n))
		prev := e.Infected()
		for i := 0; i < 200; i++ {
			a, b := r.Pair(n)
			e.Interact(a, b)
			if e.Infected() < prev {
				return false
			}
			prev = e.Infected()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCompletion(t *testing.T) {
	r := rng.New(10)
	for _, twoWay := range []bool{false, true} {
		e := CompletionTime(64, r, twoWay)
		if e == 0 {
			t.Fatal("zero completion time")
		}
	}
}

// TestLemmaA2Bound spot-checks Lemma A.2: a two-way epidemic completes well
// within c·n·ln(n) interactions for a modest constant, on every tried seed.
func TestLemmaA2Bound(t *testing.T) {
	const n = 256
	bound := uint64(20 * float64(n) * math.Log(n))
	for seed := uint64(0); seed < 10; seed++ {
		r := rng.New(seed)
		got := CompletionTime(n, r, true)
		if got > bound {
			t.Errorf("seed %d: completion %d exceeds %d", seed, got, bound)
		}
	}
}

func TestRunnerIntegration(t *testing.T) {
	e := NewTwoWay(64, 0)
	res := sim.Run(e, rng.New(11), sim.Options{MaxInteractions: 1 << 20, CheckEvery: 1})
	if !res.Stabilized {
		t.Fatal("epidemic did not complete")
	}
	if res.Flips != 1 {
		t.Fatalf("epidemic correctness should flip exactly once, got %d", res.Flips)
	}
}

func TestMinEpidemic(t *testing.T) {
	m := NewMin([]int64{5, 3, 9, 3, 7})
	if m.GlobalMin() != 3 {
		t.Fatalf("GlobalMin = %d, want 3", m.GlobalMin())
	}
	if m.Correct() {
		t.Fatal("should not be correct initially")
	}
	r := rng.New(12)
	for i := 0; i < 1000 && !m.Correct(); i++ {
		a, b := r.Pair(m.N())
		m.Interact(a, b)
	}
	if !m.Correct() {
		t.Fatal("min epidemic did not converge")
	}
	for i := 0; i < m.N(); i++ {
		if m.Value(i) != 3 {
			t.Fatalf("agent %d holds %d, want 3", i, m.Value(i))
		}
	}
}

func TestMinEpidemicAllEqual(t *testing.T) {
	m := NewMin([]int64{4, 4, 4})
	if !m.Correct() {
		t.Fatal("uniform values should be immediately correct")
	}
	m.Interact(0, 1) // no-op path
	if !m.Correct() {
		t.Fatal("no-op interaction broke correctness")
	}
}

func TestMinEpidemicPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMin(nil)
}

// TestMinNeverIncreasesProperty: under arbitrary interactions, no agent's
// value may ever increase (values only move toward the minimum).
func TestMinNeverIncreasesProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 4 + int(r.Intn(12))
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(r.Intn(100))
		}
		m := NewMin(vals)
		for i := 0; i < 300; i++ {
			a, b := r.Pair(n)
			va, vb := m.Value(a), m.Value(b)
			m.Interact(a, b)
			if m.Value(a) > va || m.Value(b) > vb {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
