// Package epidemic implements the information-spreading primitives that the
// paper's analysis relies on throughout (Lemma A.2): one-way and two-way
// infection epidemics and the min-value epidemic used by FastLeaderElect
// (Appendix D.2) and by the broadcast of deputy counters (Appendix D).
//
// Lemma A.2 states that there is a constant c_epi < 7 such that n epidemics
// started simultaneously all complete within c_epi·n·log n interactions
// w.h.p. Experiment T5 measures this constant empirically.
package epidemic

import (
	"sspp/internal/rng"
	"sspp/internal/sim"
)

// OneWay is a one-way infection epidemic: when an infected initiator meets a
// susceptible responder, the responder becomes infected. Interactions in the
// other direction do not transmit.
type OneWay struct {
	infected []bool
	count    int
}

var _ sim.Protocol = (*OneWay)(nil)

// NewOneWay returns a one-way epidemic over n agents with the given sources
// initially infected.
func NewOneWay(n int, sources ...int) *OneWay {
	e := &OneWay{infected: make([]bool, n)}
	for _, s := range sources {
		if !e.infected[s] {
			e.infected[s] = true
			e.count++
		}
	}
	return e
}

// N returns the population size.
func (e *OneWay) N() int { return len(e.infected) }

// Interact transmits the infection from initiator a to responder b.
func (e *OneWay) Interact(a, b int) {
	if e.infected[a] && !e.infected[b] {
		e.infected[b] = true
		e.count++
	}
}

// Correct reports whether every agent is infected.
func (e *OneWay) Correct() bool { return e.count == len(e.infected) }

// Infected returns the number of infected agents.
func (e *OneWay) Infected() int { return e.count }

// IsInfected reports whether agent i is infected.
func (e *OneWay) IsInfected(i int) bool { return e.infected[i] }

// TwoWay is a two-way infection epidemic: an interaction between an infected
// and a susceptible agent infects the susceptible one regardless of
// direction. This matches the epidemics of the paper's Lemma A.2.
type TwoWay struct {
	OneWay
}

var _ sim.Protocol = (*TwoWay)(nil)

// NewTwoWay returns a two-way epidemic over n agents with the given sources
// initially infected.
func NewTwoWay(n int, sources ...int) *TwoWay {
	return &TwoWay{OneWay: *NewOneWay(n, sources...)}
}

// Interact transmits the infection in either direction.
func (e *TwoWay) Interact(a, b int) {
	e.OneWay.Interact(a, b)
	e.OneWay.Interact(b, a)
}

// Min is the min-value (two-way) epidemic: both interaction partners adopt
// the minimum of their values. FastLeaderElect (Appendix D.2, Eq. 10) uses
// exactly this to spread the minimum identifier.
type Min struct {
	values []int64
	min    int64
	done   int // number of agents currently holding the global minimum
}

var _ sim.Protocol = (*Min)(nil)

// NewMin returns a min-epidemic over the given initial values. The slice is
// copied. It panics on an empty input.
func NewMin(values []int64) *Min {
	if len(values) == 0 {
		panic("epidemic: NewMin with empty values")
	}
	m := &Min{values: append([]int64(nil), values...)}
	m.min = m.values[0]
	for _, v := range m.values[1:] {
		if v < m.min {
			m.min = v
		}
	}
	for _, v := range m.values {
		if v == m.min {
			m.done++
		}
	}
	return m
}

// N returns the population size.
func (m *Min) N() int { return len(m.values) }

// Interact makes both agents adopt the smaller of their two values.
func (m *Min) Interact(a, b int) {
	va, vb := m.values[a], m.values[b]
	if va == vb {
		return
	}
	lo := va
	if vb < va {
		lo = vb
	}
	if va != lo {
		m.values[a] = lo
		if lo == m.min {
			m.done++
		}
	}
	if vb != lo {
		m.values[b] = lo
		if lo == m.min {
			m.done++
		}
	}
}

// Correct reports whether every agent holds the global minimum.
func (m *Min) Correct() bool { return m.done == len(m.values) }

// Value returns agent i's current value.
func (m *Min) Value(i int) int64 { return m.values[i] }

// GlobalMin returns the global minimum of the initial values.
func (m *Min) GlobalMin() int64 { return m.min }

// CompletionTime runs an epidemic from a single uniformly chosen source
// until every agent is infected and returns the number of interactions it
// took. twoWay selects the transmission rule. This is the measurement behind
// experiment T5 (Lemma A.2).
func CompletionTime(n int, r *rng.PRNG, twoWay bool) uint64 {
	var p sim.Protocol
	src := r.Intn(n)
	if twoWay {
		p = NewTwoWay(n, src)
	} else {
		p = NewOneWay(n, src)
	}
	var t uint64
	for !p.Correct() {
		a, b := r.Pair(n)
		p.Interact(a, b)
		t++
	}
	return t
}
