// electspecies.go implements experiment S3: the cost profile of
// ElectLeader_r's species form (internal/core/compact.go). Unlike CIW or
// LooseLE, whose states pack into O(1) words, an ElectLeader_r state is
// genuinely O(r) words (the AssignRanks channel) — that is the space side
// of the paper's trade-off — so compaction cannot shrink the
// per-interaction constant. Worse for throughput: the protocol keeps ~n
// distinct states (distinct random IDs, then distinct ranks, by design),
// so the count multiset degenerates to one-agent-per-state and every
// interaction pays interning (encode, hash, archive, release) on top of
// the O(r) copy — measured well under 1× agent throughput. What the
// species form buys is the count-based engine surface (uniform
// equivalence gates, count churn, the τ-leaping clocks, one engine for
// every protocol), not speed; S3 records that honestly. The second facet
// extends the T1 curve through both backends: safe-set arrival in the
// linear regime (r = n/4) at populations ~10× past the agent-only T1
// table, with the same (n²/r)·ln n normalization, at matched seeds.

package experiments

import (
	"fmt"
	"math"
	"time"

	"sspp"
	"sspp/internal/core"
	"sspp/internal/rng"
	"sspp/internal/sim"
	"sspp/internal/species"
	"sspp/internal/stats"
)

// s3ThroughputPoints are the (n, r) cells of the throughput facet: n-scaling
// at small fixed r, then r-scaling at fixed n (the cost side of the
// space-time trade-off — per-interaction time grows with r on both
// backends).
func s3ThroughputPoints(quick bool) []struct{ n, r int } {
	if quick {
		return []struct{ n, r int }{
			{10_000, 64}, {100_000, 64}, {10_000, 1024},
		}
	}
	return []struct{ n, r int }{
		{100_000, 64}, {1_000_000, 64},
		{10_000, 16}, {10_000, 256}, {10_000, 4096},
	}
}

// s3SafeSetSizes are the extended-range T1 populations (linear regime,
// r = n/4, where Theorem 1.1's (n²/r)·log n bound is Θ(n·log n) and
// safe-set arrival stays affordable at populations the agent-only T1 table
// (n ≤ 96) never reaches). n=1024 is the full-mode ceiling: arrival time
// scales as n·log n but the per-interaction O(r) copy makes total work
// ~n²·log n, a couple of minutes across seeds and backends already.
func s3SafeSetSizes(quick bool) []int {
	if quick {
		return []int{256, 512}
	}
	return []int{256, 512, 1024}
}

// S3ElectLeaderSpecies measures agent-vs-species ElectLeader_r: raw
// interaction throughput over (n, r), and safe-set arrival from the cold
// start at r = n/4.
func S3ElectLeaderSpecies(cfg Config) *Table {
	t := &Table{
		ID:    "S3",
		Title: "ElectLeader_r species form: throughput over (n, r) and extended-range safe-set arrival",
		Claim: "per-interaction cost is O(r) on both backends (the state IS O(r) words — the paper's space side), " +
			"and ElectLeader_r keeps ~n distinct states (distinct ranks by design), so the species form pays " +
			"interning on top of the copy with no count-merging to exploit: expect well under 1x agent throughput. " +
			"The species form buys the count-based engine surface, not speed; the safe-set facet extends the T1 " +
			"curve (norm ~ flat at r = n/4, species/agent arrival ratio ~ 1.0)",
		Header: []string{"facet", "n", "r", "backend", "interactions", "elapsed", "M int/s", "occupied", "norm", "vs agent"},
	}

	// Facet 1: raw throughput at a fixed per-agent interaction budget, from
	// the cold start (the reset/ranking phases, where states are widely
	// shared and the intern table is small).
	perAgent := uint64(10)
	if cfg.Quick {
		perAgent = 2
	}
	for _, pt := range s3ThroughputPoints(cfg.Quick) {
		budget := perAgent * uint64(pt.n)
		var agentElapsed time.Duration
		for _, backend := range []string{"agent", "species"} {
			agent, err := core.New(pt.n, pt.r, core.WithSeed(cfg.BaseSeed+31))
			if err != nil {
				t.Note("n=%d r=%d: %v", pt.n, pt.r, err)
				continue
			}
			var p sim.Protocol = agent
			if backend == "species" {
				sp, err := species.NewSystem(agent.Compact(), 1)
				if err != nil {
					t.Note("n=%d r=%d: %v", pt.n, pt.r, err)
					continue
				}
				p = sp
			}
			src := rng.New(cfg.BaseSeed + 17)
			start := time.Now() //sspp:allow rngdiscipline -- backend cost profile is a wall-clock measurement by design
			sim.Steps(p, src, budget)
			elapsed := time.Since(start) //sspp:allow rngdiscipline -- backend cost profile is a wall-clock measurement by design
			occ := "-"
			speedup := ""
			if sp, ok := p.(*species.System); ok {
				occ = fmtU(uint64(sp.Occupied()))
				if elapsed > 0 && agentElapsed > 0 {
					speedup = fmt.Sprintf("%.2fx", float64(agentElapsed)/float64(elapsed))
				}
			} else {
				agentElapsed = elapsed
			}
			rate := float64(budget) / elapsed.Seconds() / 1e6
			t.Append("throughput", fmtU(uint64(pt.n)), fmtU(uint64(pt.r)), backend, fmtU(budget),
				elapsed.Round(time.Millisecond).String(), fmtF(rate, 1), occ, "-", speedup)
		}
	}

	// Facet 2: the extended-range T1 curve — safe-set arrival (Lemma 6.1,
	// Until(SafeSet) through the public engine) in the linear regime on both
	// backends at matched seeds. The norm column carries T1's
	// interactions/((n²/r)·ln n) normalization so the rows continue that
	// table's curve; the "vs agent" ratio of the mean arrival times should
	// hover near 1.0 (the backends simulate the same chain).
	for _, n := range s3SafeSetSizes(cfg.Quick) {
		r := n / 4
		var agentMean float64
		for _, backend := range []string{"agent", "species"} {
			var times []float64
			fails := 0
			for s := 0; s < cfg.seeds(); s++ {
				src := rng.New(cfg.BaseSeed + 23 + uint64(s))
				protoSeed := src.Uint64()
				schedSeed := src.Uint64()
				sys, err := sspp.New(sspp.Config{
					Protocol: sspp.ProtocolElectLeader, N: n, R: r,
					Seed: protoSeed, Backend: backend,
				})
				if err != nil {
					fails++
					continue
				}
				res := sys.Run(sspp.Until(sspp.SafeSet), sspp.SchedulerSeed(schedSeed))
				if !res.Stabilized {
					fails++
					continue
				}
				times = append(times, float64(res.StabilizedAt))
			}
			if len(times) == 0 {
				t.Append("safe-set", fmtU(uint64(n)), fmtU(uint64(r)), backend,
					"-", "-", "-", "-", "-", fmt.Sprintf("%d fails", fails))
				continue
			}
			s := stats.Summarize(times)
			norm := s.Mean / (float64(n*n) / float64(r) * math.Log(float64(n)))
			ratio := ""
			if backend == "agent" {
				agentMean = s.Mean
			} else if agentMean > 0 {
				ratio = fmtF(s.Mean/agentMean, 2)
			}
			t.Append("safe-set", fmtU(uint64(n)), fmtU(uint64(r)), backend,
				fmtU(uint64(s.Mean)), "-", "-", "-", fmtF(norm, 2), ratio)
		}
	}

	t.Note("throughput budget is %d interactions per agent per row from the cold start; the vs-agent column is agent/species wall time (throughput) or species/agent mean arrival (safe-set)", perAgent)
	t.Note("equivalence is gated separately: KS/Mann-Whitney at n=512 r=128 (internal/species/equiv_test.go) and the exact schedule mirror (internal/core/compact_test.go)")
	return t
}
