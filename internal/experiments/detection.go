// detection.go implements the collision-detection experiments: detection
// latency under duplicate ranks (T7) and soundness under correct rankings
// (T8) — the two halves of Lemma E.1.

package experiments

import (
	"math"

	"sspp/internal/detect"
	"sspp/internal/rng"
	"sspp/internal/sim"
	"sspp/internal/stats"
)

// T7DetectionLatency validates Lemma E.1(b): from a configuration with a
// duplicated rank, DetectCollision_r raises ⊤ within O((n²/r)·log n)
// interactions, for every initialization of the detection layer.
func T7DetectionLatency(cfg Config) *Table {
	t := &Table{
		ID:     "T7",
		Title:  "DetectCollision_r: latency to ⊤ with one duplicated rank",
		Claim:  "Lemma E.1(b): ⊤ within O((n²/r)·log n) interactions w.h.p.; norm ≈ flat in r",
		Header: []string{"n", "r", "mean interactions", "p90", "norm (n²/r·ln n)", "misses"},
	}
	ns := []int{32}
	if !cfg.Quick {
		ns = []int{32, 64}
	}
	for _, n := range ns {
		for _, r := range []int{2, 4, 8, 16} {
			if r > n/2 {
				continue
			}
			times, misses := seedTimes(cfg, 2*cfg.seeds(), func(s int) (float64, bool) {
				seed := cfg.BaseSeed + uint64(s)
				ranks := make([]int32, n)
				for i := range ranks {
					ranks[i] = int32(i + 1)
				}
				ranks[1] = 1 // duplicate inside the first group
				h, err := detect.NewHarness(n, r, ranks, rng.New(seed))
				if err != nil {
					return 0, false
				}
				res := sim.Run(h, rng.New(seed+41), sim.Options{
					MaxInteractions:    safeSetBudget(n, r),
					CheckEvery:         uint64(n / 2),
					StopAfterStableFor: 1,
				})
				return float64(res.StabilizedAt), res.Stabilized
			})
			if len(times) == 0 {
				t.Append(itoa(n), itoa(r), "-", "-", "-", itoa(misses))
				continue
			}
			s := stats.Summarize(times)
			norm := s.Mean / (float64(n*n) / float64(r) * math.Log(float64(n)))
			t.Append(itoa(n), itoa(r), fmtU(uint64(s.Mean)), fmtU(uint64(s.P90)),
				fmtF(norm, 3), itoa(misses))
		}
	}
	t.Note("duplicate placed inside one group; detection requires in-group interactions, " +
		"hence the (n/r)² slow-down the trade-off pays")
	return t
}

// T8Soundness validates Lemma E.1(a): from the clean initialization on a
// correct ranking, no ⊤ is ever raised. The table reports total interactions
// simulated and the number of false positives (which must be zero), plus the
// preserved invariants.
func T8Soundness(cfg Config) *Table {
	t := &Table{
		ID:     "T8",
		Title:  "DetectCollision_r: soundness on correct rankings",
		Claim:  "Lemma E.1(a): zero false ⊤ from q0,DC on a correct ranking, ever",
		Header: []string{"n", "r", "interactions simulated", "false ⊤", "conservation", "restriction"},
	}
	cases := []struct{ n, r int }{{16, 2}, {16, 8}, {32, 8}}
	if !cfg.Quick {
		cases = append(cases, []struct{ n, r int }{{32, 16}, {64, 8}}...)
	}
	perSeed := uint64(60_000)
	type outcome struct {
		ran                       bool
		tops                      int
		conservation, restriction string
	}
	for _, c := range cases {
		results := seedTrials(cfg, cfg.seeds(), func(s int) outcome {
			seed := cfg.BaseSeed + uint64(s)
			h, err := detect.NewHarness(c.n, c.r, nil, rng.New(seed))
			if err != nil {
				return outcome{}
			}
			r := rng.New(seed + 51)
			for i := uint64(0); i < perSeed; i++ {
				a, b := r.Pair(c.n)
				h.Interact(a, b)
			}
			out := outcome{ran: true, tops: h.TopCount()}
			if err := h.CheckMessageConservation(); err != nil {
				out.conservation = err.Error()
			}
			if err := h.CheckRestriction(); err != nil {
				out.restriction = err.Error()
			}
			return out
		})
		var total uint64
		falseTops := 0
		conservation, restriction := "ok", "ok"
		for _, o := range results {
			if !o.ran {
				continue
			}
			total += perSeed
			falseTops += o.tops
			if o.conservation != "" {
				conservation = o.conservation
			}
			if o.restriction != "" {
				restriction = o.restriction
			}
		}
		t.Append(itoa(c.n), itoa(c.r), fmtU(total), itoa(falseTops), conservation, restriction)
	}
	return t
}
