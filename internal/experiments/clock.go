// clock.go implements experiment S2: the continuous-clock cost table. The
// species backend's exact continuous stepper equips every interaction of
// the jump chain with an exponential holding time (rate n/2), which keeps
// the trajectory bit-identical to the discrete clock but pays a per-event
// draw; τ-leaping (internal/species/leap.go) bundles whole Poisson batches
// of channel firings per leap and only falls back to exact stepping when
// counts run scarce or the occupied-state set grows past the leap bounds.
// S2 measures both arms driving the same protocols at n ∈ {10⁵, 10⁶, 10⁷}
// and records the native parallel time each arm reports — the two curves
// must agree at the Poisson scale 2·interactions/n while the leaped arm
// runs an order of magnitude faster in reactive regimes (the 10× floor is
// enforced by TestTauLeapThroughputGuard; distributional equivalence by
// the KS/Mann-Whitney gate in clock_test.go at the repo root).

package experiments

import (
	"fmt"
	"time"

	"sspp/internal/baseline"
	"sspp/internal/rng"
	"sspp/internal/sim"
	"sspp/internal/species"
)

// s2Sizes are the S2 population sizes (the same scale ladder as S1).
var s2Sizes = []int{100_000, 1_000_000, 10_000_000}

// s2Protocol describes one S2 protocol row: a compactable constructor and
// the regime note explaining which τ-leap path it exercises.
type s2Protocol struct {
	name  string
	build func(n int) sim.CompactModel
}

// s2Protocols are the deterministic compactable protocols S2 sweeps. CIW's
// early cascade is the leap-friendly regime (few occupied states, nearly
// every interaction reactive); LooseLE exercises the pair-channel path,
// leaping while its occupied set is small and routing through the exact
// fallback once states proliferate toward 2(τ+1).
func s2Protocols() []s2Protocol {
	return []s2Protocol{
		{
			name:  "ciw",
			build: func(n int) sim.CompactModel { return baseline.NewCIW(n).Compact() },
		},
		{
			name:  "loosele",
			build: func(n int) sim.CompactModel { return baseline.NewLooseLE(n, 48).Compact() },
		},
	}
}

// S2TauLeapClock measures exact-vs-τ-leaped continuous stepping per
// protocol and population size.
func S2TauLeapClock(cfg Config) *Table {
	t := &Table{
		ID:    "S2",
		Title: "continuous-clock throughput at n = 1e5..1e7 (exact jump chain vs tau-leaping)",
		Claim: "tau-leaping preserves the continuous-time law (KS/Mann-Whitney gated at the public API) " +
			"while bundling Poisson batches per channel; >= 10x over the exact sampler in reactive regimes " +
			"(guarded in internal/species), graceful exact fallback when counts run scarce or states proliferate",
		Header: []string{"protocol", "n", "clock", "interactions", "elapsed", "M int/s", "parallel time", "occupied", "speedup"},
	}
	perAgent := uint64(10)
	if cfg.Quick {
		perAgent = 2
	}
	for _, proto := range s2Protocols() {
		for _, n := range s2Sizes {
			budget := perAgent * uint64(n)
			var exactElapsed time.Duration
			for _, arm := range []struct {
				name string
				leap bool
			}{{"continuous-exact", false}, {"tau-leap", true}} {
				sp, err := species.NewSystem(proto.build(n), 1)
				if err != nil {
					t.Note("%s n=%d: %v", proto.name, n, err)
					continue
				}
				sp.BindSource(rng.New(cfg.BaseSeed + 29))
				sp.StartContinuous(rng.New(cfg.BaseSeed+31), arm.leap)
				start := time.Now() //sspp:allow rngdiscipline -- clock speedup is a wall-clock measurement by design
				sp.StepMany(budget)
				elapsed := time.Since(start) //sspp:allow rngdiscipline -- clock speedup is a wall-clock measurement by design
				speedup := ""
				if arm.leap {
					if elapsed > 0 && exactElapsed > 0 {
						speedup = fmt.Sprintf("%.1fx", float64(exactElapsed)/float64(elapsed))
					}
				} else {
					exactElapsed = elapsed
				}
				rate := float64(budget) / elapsed.Seconds() / 1e6
				t.Append(proto.name, fmtU(uint64(n)), arm.name, fmtU(budget),
					elapsed.Round(time.Millisecond).String(), fmtF(rate, 1),
					fmtF(sp.ParallelTime(), 3), fmtU(uint64(sp.Occupied())), speedup)
			}
		}
	}
	t.Note("budget is %d interactions per agent per row (quick mode shrinks it); the speedup column is exact/tau-leap wall time", perAgent)
	t.Note("both arms report native parallel time (expected scale 2*interactions/n); the curves must agree up to Poisson fluctuation")
	t.Note("loosele leaps while its occupied set stays under the pair-channel bound; once states proliferate toward 2(tau+1) the leaped arm routes through the exact fallback and reports parity")
	return t
}
